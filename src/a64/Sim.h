//===- a64/Sim.h - AArch64 subset simulator ---------------------*- C++ -*-===//
///
/// \file
/// An AArch64 instruction-set simulator covering the subset emitted by the
/// back-ends in this repository. The paper evaluates its AArch64 back-end
/// on an Apple M1 (§5.2.1); no AArch64 hardware is available in this
/// reproduction, so generated code runs on this simulator instead and
/// run-time comparisons between back-ends use simulated cycle counts
/// (see DESIGN.md, substitutions). Because the decoder is written against
/// the architecture (not against our encoder), it doubles as an
/// encode/decode cross-check in the tests.
///
/// The simulator executes in the host address space: loads and stores
/// dereference host pointers directly, so code mapped with JITMapper
/// (including its data sections) runs unchanged. Calls to external symbols
/// are bridged to host C++ callbacks via registered bridge addresses.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_A64_SIM_H
#define TPDE_A64_SIM_H

#include "asmx/JITMapper.h"
#include "support/Common.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tpde::a64 {

class Sim;

/// A host function callable from simulated code. It reads arguments from
/// and writes results to the simulated register file (AAPCS64: X0-X7,
/// V0-V7 for arguments, X0/V0 for results).
using HostFn = std::function<void(Sim &)>;

/// Simulator CPU state and execution engine.
class Sim {
public:
  /// Creates a simulator with a private \p StackBytes-byte stack.
  explicit Sim(u64 StackBytes = 1 << 20);

  // --- Architectural state ------------------------------------------------
  u64 X[32] = {}; ///< X0-X30; X[31] is SP.
  u64 V[32] = {}; ///< FP/SIMD registers (low 64 bits).
  bool N = false, Z = false, C = false, VF = false;
  u64 PC = 0;

  u64 &sp() { return X[31]; }
  double d(unsigned I) const {
    double Val;
    __builtin_memcpy(&Val, &V[I], 8);
    return Val;
  }
  void setD(unsigned I, double Val) { __builtin_memcpy(&V[I], &Val, 8); }
  float s(unsigned I) const {
    float Val;
    __builtin_memcpy(&Val, &V[I], 4);
    return Val;
  }
  void setS(unsigned I, float Val) {
    V[I] = 0;
    __builtin_memcpy(&V[I], &Val, 4);
  }

  // --- Statistics ------------------------------------------------------------
  u64 InstCount = 0;
  u64 Cycles = 0;
  bool Trapped = false; ///< Set when a BRK instruction was executed.

  // --- Host bridging ------------------------------------------------------------
  /// Registers \p Fn under \p Name and returns the bridge address to hand
  /// to the JITMapper resolver. Jumping/calling to that address invokes
  /// the host function and returns to the simulated caller (X30).
  u64 registerHost(const std::string &Name, HostFn Fn);
  /// Resolver adapter for JITMapper::map.
  void *resolve(std::string_view Name);

  // --- Execution -----------------------------------------------------------------
  /// Runs from \p Entry until the halt address is reached or \p MaxInsts
  /// instructions were executed. Returns false on trap/limit.
  bool run(u64 Entry, u64 MaxInsts = ~0ull);

  /// Calls a function like a C caller would: integer/pointer arguments in
  /// X0.., FP arguments in V0.. (per \p ArgIsFp), fresh stack, LR = halt.
  /// Returns X0 (or use d(0)/s(0) for FP results).
  u64 call(u64 Entry, const std::vector<u64> &Args = {},
           const std::vector<bool> &ArgIsFp = {});

  u64 stackTop() const { return StackTop; }

private:
  bool step(); ///< Executes one instruction; false to stop.
  bool condHolds(unsigned Cond) const;
  u64 addWithCarry(u64 A, u64 B, bool CarryIn, bool Is64, bool SetFlags);

  std::unique_ptr<u8[]> Stack;
  u64 StackTop = 0;
  u64 HaltAddr = 0;
  std::vector<std::unique_ptr<u64>> BridgeSlots;
  std::unordered_map<u64, HostFn> HostByAddr;
  std::unordered_map<std::string, u64> BridgeByName;
};

/// Convenience wrapper that maps an Assembler's output for simulation:
/// applies relocations in host address space (resolving undefined symbols
/// to simulator bridge addresses) and exposes symbol lookup.
class SimModule {
public:
  /// Maps \p Asm; undefined symbols must have been registered on \p S
  /// beforehand via registerHost. Returns false on unresolved symbols.
  bool map(const asmx::Assembler &Asm, Sim &S);

  u64 address(std::string_view Name) const {
    void *P = JIT.address(Name);
    return reinterpret_cast<u64>(P);
  }

private:
  asmx::JITMapper JIT;
};

} // namespace tpde::a64

#endif // TPDE_A64_SIM_H
