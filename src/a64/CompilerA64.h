//===- a64/CompilerA64.h - AArch64 target mixin for TPDE --------*- C++ -*-===//
///
/// \file
/// The architecture-specific part of the TPDE framework for AArch64
/// (AAPCS64), composed as a CRTP mixin between CompilerBase and the
/// IR-specific instruction compilers (paper §3.1.4) — the second target
/// the paper's §5 case study supports. It provides:
///
///  * the register bank configuration (X0-X28 minus reserved, V0-V31),
///  * prologue/epilogue generation with end-of-function patching: frame
///    size and callee-saved saves/restores are only known after register
///    allocation, so placeholder space is reserved and padded with NOPs
///    (paper §3.4.2),
///  * AAPCS64 argument/return assignment and call sequence generation,
///  * the spill/reload/move primitives the framework core requires.
///
/// X16/X17 are reserved: X16 as encoder-internal scratch for out-of-range
/// offsets/immediates, X17 for the instruction compilers (e.g., building
/// FP constants). X18 is the platform register, X29/X30 frame/link.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_A64_COMPILERA64_H
#define TPDE_A64_COMPILERA64_H

#include "a64/Encoder.h"
#include "core/CompilerBase.h"

#include <span>

namespace tpde::a64 {

/// Register bank configuration for AArch64. Ids 0-30 are X0..X30 (bank 0,
/// id 31 = SP, never allocated), 32-63 are V0..V31 (bank 1).
struct A64Config {
  static constexpr u8 NumBanks = 2;
  static constexpr u8 RegsPerBank = 32;
  static constexpr u8 regId(u8 Bank, u8 Idx) { return Bank * 32 + Idx; }
  static constexpr u8 bankOf(u8 Id) { return Id >> 5; }
  static constexpr u8 idxOf(u8 Id) { return Id & 31; }
  /// X0-X15 and X19-X28 (X16/X17 scratch, X18 platform, X29 FP, X30 LR).
  static constexpr u32 Allocatable[2] = {0x1FF8FFFFu, 0xFFFFFFFFu};
  static constexpr u32 CalleeSaved[2] = {0x1FF80000u, 0x0000FF00u};
  /// Callee-saved registers without special purpose, usable as fixed
  /// registers for loop values (§3.4.5); X19-X22 and V8-V11 stay general.
  static constexpr u32 FixedRegPool[2] = {0x1F800000u, 0x0000F000u};
  /// Save area for X19-X28 and V8-V15 below the frame pointer.
  static constexpr u32 CalleeSaveAreaSize = 144;
};

inline AsmReg ar(core::Reg R) { return AsmReg(R.Id); }

/// AAPCS64 argument assignment: X0-X7 and V0-V7, then the stack.
class CCAssignerAAPCS {
public:
  struct Loc {
    bool InReg = false;
    u8 RegId = 0xFF;
    i32 StackOff = 0;
  };

  /// Assigns all parts of one value. Multi-part values go either entirely
  /// to registers or entirely to the stack.
  void assignValue(const u8 *Banks, u8 NumParts, Loc *Out) {
    u8 NeedGP = 0, NeedFP = 0;
    for (u8 P = 0; P < NumParts; ++P)
      (Banks[P] == 0 ? NeedGP : NeedFP) += 1;
    if (GPUsed + NeedGP <= 8 && FPUsed + NeedFP <= 8) {
      for (u8 P = 0; P < NumParts; ++P) {
        Out[P].InReg = true;
        if (Banks[P] == 0)
          Out[P].RegId = GPUsed++;
        else
          Out[P].RegId = static_cast<u8>(32 + FPUsed++);
      }
      return;
    }
    if (NumParts > 1)
      StackBytes = static_cast<u32>(alignTo(StackBytes, 16));
    for (u8 P = 0; P < NumParts; ++P) {
      Out[P].InReg = false;
      Out[P].StackOff = static_cast<i32>(StackBytes);
      StackBytes += 8;
    }
  }

  u32 stackBytes() const { return StackBytes; }

  static constexpr u8 GPRetRegs[2] = {0, 1};   // x0, x1
  static constexpr u8 FPRetRegs[2] = {32, 33}; // v0, v1

private:
  u8 GPUsed = 0, FPUsed = 0;
  u32 StackBytes = 0;
};

template <core::IRAdapter Adapter, typename Derived>
class CompilerA64 : public core::CompilerBase<Adapter, Derived, A64Config> {
public:
  using Base = core::CompilerBase<Adapter, Derived, A64Config>;
  using ValRef = typename Adapter::ValRef;
  using ValuePartRef = typename Base::ValuePartRef;
  using PendingMove = typename Base::PendingMove;
  using Base::derived;

  CompilerA64(Adapter &A, asmx::Assembler &Asm) : Base(A, Asm), E(Asm) {}

  Emitter E;

  // =====================================================================
  // Primitives required by CompilerBase. Spill slots are always accessed
  // with the full 8 bytes so register contents round-trip bit-exactly.
  // =====================================================================

  void emitMoveRR(u8 Bank, u32 Size, core::Reg Dst, core::Reg Src) {
    if (Bank == 0)
      E.movRR(8, ar(Dst), ar(Src));
    else
      E.fpMovRR(8, ar(Dst), ar(Src));
  }
  void emitSlotStore(u8 Bank, u32 Size, i32 Off, core::Reg Src) {
    E.str(8, Mem(FP, Off), ar(Src));
  }
  void emitSlotLoad(u8 Bank, u32 Size, core::Reg Dst, i32 Off) {
    E.ldr(8, ar(Dst), Mem(FP, Off));
  }
  void emitJumpLabel(asmx::Label L) { E.bLabel(L); }

  // =====================================================================
  // Prologue / epilogue with end-of-function patching (§3.4.2)
  // =====================================================================

  void beginFunc(asmx::SymRef Sym) {
    asmx::Section &T = this->Asm.text();
    T.alignToBoundary(16);
    FuncStart = T.size();
    this->Asm.defineSymbol(Sym, asmx::SecKind::Text, FuncStart, 0);
    E.stpPre(FP, LR, SP, -16);
    E.movSP(FP, SP);
    FramePatchOff = T.size();
    E.frameSubPlaceholder();
    SaveAreaOff = T.size();
    E.nops(SaveRestoreBytes);
    RestoreAreaOffs.clear();
  }

  /// Emits an epilogue: placeholder restores, frame teardown, return.
  void emitEpilogue() {
    RestoreAreaOffs.push_back(E.offset());
    E.nops(SaveRestoreBytes);
    E.movSP(SP, FP);
    E.ldpPost(FP, LR, SP, 16);
    E.ret();
  }

  void finishFunc(asmx::SymRef Sym) {
    asmx::Section &T = this->Asm.text();
    this->Asm.setSymbolSize(Sym, T.size() - FuncStart);
    u32 FrameSize = static_cast<u32>(
        alignTo(static_cast<u64>(-this->Frame.lowWaterMark()), 16));
    Emitter::patchFrameSub(T, FramePatchOff, FrameSize);

    // Fill the save/restore areas with actual instructions for the
    // callee-saved registers that were used; pad the rest with NOPs. The
    // scratch assemblers are members reset (not freed) per function.
    asmx::Assembler &TmpSave = SaveScratchAsm, &TmpRestore = RestoreScratchAsm;
    TmpSave.reset();
    TmpRestore.reset();
    Emitter SaveE(TmpSave), RestoreE(TmpRestore);
    for (u8 Bank = 0; Bank < 2; ++Bank) {
      u32 CSRMask = this->UsedCalleeSaved[Bank] & A64Config::CalleeSaved[Bank];
      for (u32 M = CSRMask; M;) {
        u8 Idx = static_cast<u8>(countTrailingZeros(M));
        M &= M - 1;
        AsmReg R(A64Config::regId(Bank, Idx));
        SaveE.str(8, Mem(FP, csrSlotOff(Bank, Idx)), R);
        RestoreE.ldr(8, R, Mem(FP, csrSlotOff(Bank, Idx)));
      }
    }
    assert(TmpSave.text().size() <= SaveRestoreBytes && "save area overflow");
    SaveE.nops(SaveRestoreBytes - static_cast<unsigned>(TmpSave.text().size()));
    RestoreE.nops(SaveRestoreBytes -
                  static_cast<unsigned>(TmpRestore.text().size()));
    std::copy(TmpSave.text().Data.begin(), TmpSave.text().Data.end(),
              T.Data.begin() + SaveAreaOff);
    for (u64 Off : RestoreAreaOffs)
      std::copy(TmpRestore.text().Data.begin(), TmpRestore.text().Data.end(),
                T.Data.begin() + Off);
    derived()->emitUnwindInfo(Sym, FuncStart, T.size());
  }

  /// Default: no unwind info; overridden/extended by users that need it.
  void emitUnwindInfo(asmx::SymRef, u64, u64) {}

  /// Frame-pointer-relative slot of a callee-saved register.
  static i32 csrSlotOff(u8 Bank, u8 Idx) {
    if (Bank == 0) {
      assert(Idx >= 19 && Idx <= 28 && "not a callee-saved GP register");
      return -8 * static_cast<i32>(Idx - 18);
    }
    assert(Idx >= 8 && Idx <= 15 && "not a callee-saved FP register");
    return -(80 + 8 * static_cast<i32>(Idx - 7));
  }

  // =====================================================================
  // Arguments (AAPCS64)
  // =====================================================================

  void setupArguments() {
    CCAssignerAAPCS CC;
    for (ValRef V : this->A.funcArgs()) {
      u32 VN = this->A.valNumber(V);
      this->ensureAssignment(V, VN);
      core::Assignment &As = this->Assigns[VN];
      u8 Banks[core::Assignment::MaxParts];
      CCAssignerAAPCS::Loc Locs[core::Assignment::MaxParts];
      for (u8 P = 0; P < As.PartCount; ++P)
        Banks[P] = this->A.valPartBank(V, P);
      CC.assignValue(Banks, As.PartCount, Locs);
      for (u8 P = 0; P < As.PartCount; ++P) {
        if (Locs[P].InReg) {
          core::Reg R(Locs[P].RegId);
          this->Regs.markUsed(R, VN, P);
          As.Parts[P].RegId = R.Id;
        } else {
          // Incoming stack slot: [x29 + 16 + off]; parts are consecutive.
          if (P == 0)
            As.FrameOff = 16 + Locs[P].StackOff;
          As.Parts[P].Flags |= core::ValuePart::StackValid;
        }
      }
      if (As.RefCount == 0)
        this->freeValue(VN);
    }
  }

  // =====================================================================
  // Calls (AAPCS64)
  // =====================================================================

  /// Generates a complete call sequence: argument assignment and moves
  /// (parallel-move safe), caller-saved spilling, stack arguments, the
  /// call itself, and result binding. \p Result may be null for void.
  void genCall(asmx::SymRef Callee, std::span<const ValRef> Args,
               const ValRef *Result, bool Vararg = false) {
    (void)Vararg; // AAPCS64 needs no vector-register count
    CCAssignerAAPCS CC;
    auto &Places = CallPlaces; // scratch member (docs/PERF.md)
    Places.clear();
    for (ValRef V : Args) {
      u8 N = static_cast<u8>(this->A.valPartCount(V));
      u8 Banks[core::Assignment::MaxParts];
      CCAssignerAAPCS::Loc Locs[core::Assignment::MaxParts];
      for (u8 P = 0; P < N; ++P)
        Banks[P] = this->A.valPartBank(V, P);
      CC.assignValue(Banks, N, Locs);
      for (u8 P = 0; P < N; ++P)
        Places.push_back(Place{V, P, Locs[P], Banks[P]});
    }

    // 1. All dirty caller-saved registers holding values must be spilled:
    //    the call clobbers them.
    this->forEachOwnedReg([&](core::Reg R, u32 VN, u8 Part) {
      if (isCallerSaved(R))
        this->spillPart(VN, Part);
    });

    // 2. Stack arguments.
    u32 StackBytes = static_cast<u32>(alignTo(CC.stackBytes(), 16));
    if (StackBytes)
      E.subRI(8, SP, SP, StackBytes);
    for (Place &P : Places) {
      if (P.L.InReg)
        continue;
      ValuePartRef Ref = this->valRef(P.V, P.Part);
      core::Reg R = Ref.asReg();
      E.str(8, Mem(SP, P.L.StackOff), ar(R));
    }

    // 3. Register arguments as a parallel move set.
    u32 ArgRegMask[2] = {0, 0};
    for (const Place &P : Places)
      if (P.L.InReg)
        ArgRegMask[A64Config::bankOf(P.L.RegId)] |=
            u32(1) << A64Config::idxOf(P.L.RegId);
    auto &Moves = CallMoves;
    auto &Holds = CallHolds;
    Moves.clear();
    Holds.clear();
    for (Place &P : Places) {
      if (!P.L.InReg)
        continue;
      ValuePartRef Ref = this->valRef(P.V, P.Part);
      Ref.lockReg();
      PendingMove Mv;
      Mv.Dst = core::MoveLoc::reg(core::Reg(P.L.RegId));
      Mv.Src = Ref.loc();
      Mv.SrcVal = P.V;
      Mv.SrcPart = P.Part;
      Mv.Bank = P.Bank;
      Moves.push_back(Mv);
      Holds.push_back(std::move(Ref));
    }
    // Evict argument registers whose current holders are not move sources.
    for (u8 Bank = 0; Bank < 2; ++Bank) {
      for (u32 M = ArgRegMask[Bank]; M;) {
        u8 Idx = static_cast<u8>(countTrailingZeros(M));
        M &= M - 1;
        core::Reg R(A64Config::regId(Bank, Idx));
        if (this->Regs.isUsed(R) && !this->Regs.isLocked(R))
          this->evictSpecific(R);
      }
    }
    std::array<u32, 2> Allow = {~ArgRegMask[0], ~ArgRegMask[1]};
    this->resolveParallelMoves(Moves, Allow);
    Holds.clear(); // unlock sources, consume uses

    // 4. Clear every caller-saved association (clobbered by the call).
    this->forEachOwnedReg([&](core::Reg R, u32 VN, u8 Part) {
      if (!isCallerSaved(R))
        return;
      core::ValuePart &VP = this->Assigns[VN].Parts[Part];
      assert((VP.stackValid() || this->Assigns[VN].RefCount == 0) &&
             "live value lost across call");
      VP.RegId = 0xFF;
      this->Regs.markFree(R);
    });

    E.blSym(Callee);
    if (StackBytes)
      E.addRI(8, SP, SP, StackBytes);

    // 5. Bind results (x0/x1, v0/v1).
    if (Result) {
      ValRef RV = *Result;
      u32 VN = this->A.valNumber(RV);
      this->ensureAssignment(RV, VN);
      core::Assignment &As = this->Assigns[VN];
      if (As.RefCount != 0) {
        u8 GPUsed = 0, FPUsed = 0;
        for (u8 P = 0; P < As.PartCount; ++P) {
          u8 Bank = this->A.valPartBank(RV, P);
          core::Reg RetR(Bank == 0 ? CCAssignerAAPCS::GPRetRegs[GPUsed++]
                                   : CCAssignerAAPCS::FPRetRegs[FPUsed++]);
          if (As.Parts[P].isFixed()) {
            emitMoveRR(Bank, 8, core::Reg(As.Parts[P].RegId), RetR);
            As.Parts[P].Flags &= ~core::ValuePart::StackValid;
          } else {
            this->Regs.markUsed(RetR, VN, P);
            As.Parts[P].RegId = RetR.Id;
            As.Parts[P].Flags &= ~core::ValuePart::StackValid;
          }
        }
      }
    }
  }

  /// Moves the (optional) return value into the AAPCS64 return registers
  /// and emits an epilogue.
  void emitReturn(const ValRef *RetVal) {
    if (RetVal) {
      u8 N = static_cast<u8>(this->A.valPartCount(*RetVal));
      auto &Moves = CallMoves;
      auto &Holds = CallHolds;
      Moves.clear();
      Holds.clear();
      u8 GPUsed = 0, FPUsed = 0;
      u32 RetMask[2] = {0, 0};
      for (u8 P = 0; P < N; ++P) {
        ValuePartRef Ref = this->valRef(*RetVal, P);
        u8 Bank = Ref.bank();
        u8 RegId = Bank == 0 ? CCAssignerAAPCS::GPRetRegs[GPUsed++]
                             : CCAssignerAAPCS::FPRetRegs[FPUsed++];
        RetMask[Bank] |= u32(1) << A64Config::idxOf(RegId);
        Ref.lockReg();
        PendingMove Mv;
        Mv.Dst = core::MoveLoc::reg(core::Reg(RegId));
        Mv.Src = Ref.loc();
        Mv.SrcVal = *RetVal;
        Mv.SrcPart = P;
        Mv.Bank = Bank;
        Moves.push_back(Mv);
        Holds.push_back(std::move(Ref));
      }
      std::array<u32, 2> Allow = {~RetMask[0], ~RetMask[1]};
      this->resolveParallelMoves(Moves, Allow);
      Holds.clear();
    }
    emitEpilogue();
  }

  static bool isCallerSaved(core::Reg R) {
    u8 Bank = A64Config::bankOf(R.Id);
    u32 Bit = u32(1) << A64Config::idxOf(R.Id);
    return (A64Config::Allocatable[Bank] & Bit) &&
           !(A64Config::CalleeSaved[Bank] & Bit);
  }

protected:
  /// 10 GP + 8 FP callee-saved registers, one 4-byte STR/LDR each.
  static constexpr unsigned SaveRestoreBytes = 72;
  u64 FuncStart = 0;
  u64 FramePatchOff = 0;
  u64 SaveAreaOff = 0;
  std::vector<u64> RestoreAreaOffs;

  struct Place {
    ValRef V;
    u8 Part;
    CCAssignerAAPCS::Loc L;
    u8 Bank;
  };
  // Per-call scratch, reused across calls/functions (docs/PERF.md).
  support::SmallVector<Place, 16> CallPlaces;
  typename Base::MoveVec CallMoves;
  support::SmallVector<ValuePartRef, 16> CallHolds;
  // Prologue/epilogue patching scratch (finishFunc).
  asmx::Assembler SaveScratchAsm, RestoreScratchAsm;
};

} // namespace tpde::a64

#endif // TPDE_A64_COMPILERA64_H
