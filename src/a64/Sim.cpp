//===- a64/Sim.cpp - AArch64 subset simulator -----------------------------===//

#include "a64/Sim.h"

#include <cmath>
#include <cstring>
#include <limits>

using namespace tpde;
using namespace tpde::a64;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

namespace {

u64 loadBytes(u64 Addr, unsigned Bytes) {
  u64 V = 0;
  std::memcpy(&V, reinterpret_cast<const void *>(Addr), Bytes);
  return V;
}

void storeBytes(u64 Addr, u64 V, unsigned Bytes) {
  std::memcpy(reinterpret_cast<void *>(Addr), &V, Bytes);
}

/// Applies a shift-type/amount to an operand (logical/addsub shifted reg).
u64 doShift(u64 V, unsigned Type, unsigned Amt, bool Is64) {
  unsigned Size = Is64 ? 64 : 32;
  Amt &= Size - 1;
  if (!Is64)
    V &= 0xFFFFFFFFull;
  switch (Type) {
  case 0: // LSL
    V = Amt ? V << Amt : V;
    break;
  case 1: // LSR
    V = Amt ? V >> Amt : V;
    break;
  case 2: // ASR
    V = static_cast<u64>(signExtend(V, Size) >> Amt);
    break;
  case 3: // ROR
    V = Amt ? ((V >> Amt) | (V << (Size - Amt))) : V;
    break;
  }
  return Is64 ? V : (V & 0xFFFFFFFFull);
}

/// ExtendReg for the extended-register and register-offset forms.
u64 extendReg(u64 V, unsigned Option) {
  switch (Option) {
  case 0:
    return V & 0xFF; // UXTB
  case 1:
    return V & 0xFFFF; // UXTH
  case 2:
    return V & 0xFFFFFFFF; // UXTW
  case 3:
    return V; // UXTX / LSL
  case 4:
    return static_cast<u64>(signExtend(V, 8)); // SXTB
  case 5:
    return static_cast<u64>(signExtend(V, 16)); // SXTH
  case 6:
    return static_cast<u64>(signExtend(V, 32)); // SXTW
  case 7:
    return V; // SXTX
  }
  TPDE_UNREACHABLE("bad extend option");
}

/// Decodes an A64 logical (bitmask) immediate.
u64 decodeBitmask(u32 NBit, u32 Immr, u32 Imms, unsigned RegSize) {
  u32 Marker = (NBit << 6) | (~Imms & 0x3F);
  assert(Marker != 0 && "reserved bitmask encoding");
  unsigned Len = 31 - static_cast<unsigned>(__builtin_clz(Marker));
  unsigned E = 1u << Len;
  unsigned S = Imms & (E - 1);
  unsigned R = Immr & (E - 1);
  u64 Pattern = S == 63 ? ~0ull : (u64(1) << (S + 1)) - 1;
  if (R)
    Pattern = (Pattern >> R) | (Pattern << (E - R));
  if (E < 64)
    Pattern &= (u64(1) << E) - 1;
  while (E < 64) {
    Pattern |= Pattern << E;
    E *= 2;
  }
  return RegSize == 32 ? (Pattern & 0xFFFFFFFFull) : Pattern;
}

/// Saturating double/float -> signed integer conversion (FCVTZS).
template <typename F> i64 fcvtzs(F V, bool To64) {
  if (std::isnan(V))
    return 0;
  if (To64) {
    if (V >= static_cast<F>(std::numeric_limits<i64>::max()))
      return std::numeric_limits<i64>::max();
    if (V <= static_cast<F>(std::numeric_limits<i64>::min()))
      return std::numeric_limits<i64>::min();
    return static_cast<i64>(V);
  }
  if (V >= static_cast<F>(std::numeric_limits<i32>::max()))
    return std::numeric_limits<i32>::max();
  if (V <= static_cast<F>(std::numeric_limits<i32>::min()))
    return std::numeric_limits<i32>::min();
  return static_cast<i32>(V);
}

} // namespace

// ---------------------------------------------------------------------------
// Construction / host bridging
// ---------------------------------------------------------------------------

Sim::Sim(u64 StackBytes) {
  Stack = std::make_unique<u8[]>(StackBytes);
  StackTop = (reinterpret_cast<u64>(Stack.get()) + StackBytes) & ~u64(15);
  HaltAddr = reinterpret_cast<u64>(&HaltAddr); // never valid code
}

u64 Sim::registerHost(const std::string &Name, HostFn Fn) {
  BridgeSlots.push_back(std::make_unique<u64>(0));
  u64 Addr = reinterpret_cast<u64>(BridgeSlots.back().get());
  HostByAddr.emplace(Addr, std::move(Fn));
  BridgeByName[Name] = Addr;
  return Addr;
}

void *Sim::resolve(std::string_view Name) {
  auto It = BridgeByName.find(std::string(Name));
  if (It == BridgeByName.end())
    return nullptr;
  return reinterpret_cast<void *>(It->second);
}

bool SimModule::map(const asmx::Assembler &Asm, Sim &S) {
  return JIT.map(
      Asm, [&S](std::string_view Name) { return S.resolve(Name); },
      asmx::JITMapper::StubArch::A64);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

bool Sim::condHolds(unsigned Cond) const {
  switch (Cond) {
  case 0x0:
    return Z;
  case 0x1:
    return !Z;
  case 0x2:
    return C;
  case 0x3:
    return !C;
  case 0x4:
    return N;
  case 0x5:
    return !N;
  case 0x6:
    return VF;
  case 0x7:
    return !VF;
  case 0x8:
    return C && !Z;
  case 0x9:
    return !(C && !Z);
  case 0xA:
    return N == VF;
  case 0xB:
    return N != VF;
  case 0xC:
    return !Z && N == VF;
  case 0xD:
    return !(!Z && N == VF);
  default:
    return true; // AL / NV
  }
}

u64 Sim::addWithCarry(u64 A, u64 B, bool CarryIn, bool Is64, bool SetFlags) {
  u64 Res;
  bool COut, VOut;
  if (Is64) {
    unsigned __int128 U =
        static_cast<unsigned __int128>(A) + B + (CarryIn ? 1 : 0);
    Res = static_cast<u64>(U);
    COut = static_cast<u64>(U >> 64) != 0;
    __int128 SS = static_cast<__int128>(static_cast<i64>(A)) +
                  static_cast<i64>(B) + (CarryIn ? 1 : 0);
    VOut = SS != static_cast<i64>(Res);
  } else {
    A &= 0xFFFFFFFFull;
    B &= 0xFFFFFFFFull;
    u64 U = A + B + (CarryIn ? 1 : 0);
    Res = U & 0xFFFFFFFFull;
    COut = (U >> 32) != 0;
    i64 SS = static_cast<i64>(static_cast<i32>(A)) +
             static_cast<i32>(B) + (CarryIn ? 1 : 0);
    VOut = SS != static_cast<i64>(static_cast<i32>(Res));
  }
  if (SetFlags) {
    N = Is64 ? (Res >> 63) & 1 : (Res >> 31) & 1;
    Z = Res == 0;
    C = COut;
    VF = VOut;
  }
  return Res;
}

bool Sim::run(u64 Entry, u64 MaxInsts) {
  PC = Entry;
  u64 Budget = MaxInsts;
  while (true) {
    if (PC == HaltAddr)
      return true;
    auto It = HostByAddr.find(PC);
    if (It != HostByAddr.end()) {
      It->second(*this);
      Cycles += 20; // fixed call-out cost
      PC = X[30];
      continue;
    }
    if (Budget-- == 0)
      return false;
    if (!step())
      return false;
  }
}

u64 Sim::call(u64 Entry, const std::vector<u64> &Args,
              const std::vector<bool> &ArgIsFp) {
  sp() = StackTop;
  X[30] = HaltAddr;
  unsigned GP = 0, FP = 0;
  for (size_t I = 0; I < Args.size(); ++I) {
    bool IsFp = I < ArgIsFp.size() && ArgIsFp[I];
    if (IsFp)
      V[FP++] = Args[I];
    else
      X[GP++] = Args[I];
  }
  bool OK = run(Entry);
  assert(OK && "simulated call trapped or exceeded instruction budget");
  (void)OK;
  return X[0];
}

bool Sim::step() {
  const u32 W = static_cast<u32>(loadBytes(PC, 4));
  ++InstCount;
  ++Cycles;
  const bool Is64 = (W >> 31) != 0;
  const unsigned Rd = W & 31, Rn = (W >> 5) & 31, Rm = (W >> 16) & 31;
  u64 NextPC = PC + 4;

  auto xr = [&](unsigned R) -> u64 { return R == 31 ? 0 : X[R]; };
  auto xsp = [&](unsigned R) -> u64 { return X[R]; };
  auto wr = [&](unsigned R, u64 Val, bool W64) {
    if (R != 31)
      X[R] = W64 ? Val : (Val & 0xFFFFFFFFull);
  };
  auto wsp = [&](unsigned R, u64 Val, bool W64) {
    X[R] = W64 ? Val : (Val & 0xFFFFFFFFull);
  };
  auto setNZLogic = [&](u64 Res, bool W64) {
    N = W64 ? (Res >> 63) & 1 : (Res >> 31) & 1;
    Z = (W64 ? Res : (Res & 0xFFFFFFFFull)) == 0;
    C = false;
    VF = false;
  };

  if (W == 0xD503201Fu) {
    // NOP
  } else if ((W & 0xFFE0001Fu) == 0xD4200000u) {
    Trapped = true; // BRK
    return false;
  } else if ((W & 0xFF9FFC1Fu) == 0xD61F0000u) {
    // BR / BLR / RET
    unsigned Opc = (W >> 21) & 3;
    u64 Target = xr(Rn);
    if (Opc == 1)
      X[30] = PC + 4;
    NextPC = Target;
  } else if ((W & 0x7C000000u) == 0x14000000u) {
    // B / BL
    if (W >> 31)
      X[30] = PC + 4;
    NextPC = PC + signExtend(W & 0x03FFFFFF, 26) * 4;
  } else if ((W & 0xFF000010u) == 0x54000000u) {
    // B.cond
    if (condHolds(W & 0xF))
      NextPC = PC + signExtend((W >> 5) & 0x7FFFF, 19) * 4;
  } else if ((W & 0x7E000000u) == 0x34000000u) {
    // CBZ / CBNZ
    u64 Val = xr(Rd);
    if (!Is64)
      Val &= 0xFFFFFFFFull;
    bool WantNZ = (W >> 24) & 1;
    if ((Val == 0) != WantNZ)
      NextPC = PC + signExtend((W >> 5) & 0x7FFFF, 19) * 4;
  } else if ((W & 0xBF000000u) == 0x18000000u) {
    // LDR (literal); used by the JIT call stubs.
    u64 Addr = PC + signExtend((W >> 5) & 0x7FFFF, 19) * 4;
    bool Wide = (W >> 30) & 1;
    wr(Rd, loadBytes(Addr, Wide ? 8 : 4), true);
    Cycles += 3;
  } else if ((W & 0x1F000000u) == 0x10000000u) {
    // ADR / ADRP
    i64 Imm = (signExtend((W >> 5) & 0x7FFFF, 19) << 2) |
              static_cast<i64>((W >> 29) & 3);
    if (W >> 31)
      wr(Rd, (PC & ~u64(0xFFF)) + (static_cast<u64>(Imm) << 12), true);
    else
      wr(Rd, PC + Imm, true);
  } else if ((W & 0x1F000000u) == 0x11000000u) {
    // ADD/SUB immediate
    bool Sub = (W >> 30) & 1, S = (W >> 29) & 1;
    u64 Imm = (W >> 10) & 0xFFF;
    if ((W >> 22) & 1)
      Imm <<= 12;
    u64 A = xsp(Rn);
    u64 Res = addWithCarry(A, Sub ? ~Imm : Imm, Sub, Is64, S);
    if (S)
      wr(Rd, Res, Is64);
    else
      wsp(Rd, Res, Is64);
  } else if ((W & 0x1F800000u) == 0x12000000u) {
    // Logical immediate
    unsigned Opc = (W >> 29) & 3;
    u64 Imm = decodeBitmask((W >> 22) & 1, (W >> 16) & 0x3F, (W >> 10) & 0x3F,
                            Is64 ? 64 : 32);
    u64 A = xr(Rn);
    u64 Res = Opc == 1 ? (A | Imm) : Opc == 2 ? (A ^ Imm) : (A & Imm);
    if (!Is64)
      Res &= 0xFFFFFFFFull;
    if (Opc == 3) {
      setNZLogic(Res, Is64);
      wr(Rd, Res, Is64);
    } else {
      wsp(Rd, Res, Is64); // Rd = 31 is SP for AND/ORR/EOR immediate
    }
  } else if ((W & 0x1F800000u) == 0x12800000u) {
    // MOVN / MOVZ / MOVK
    unsigned Opc = (W >> 29) & 3, Hw = (W >> 21) & 3;
    u64 Imm = static_cast<u64>((W >> 5) & 0xFFFF) << (16 * Hw);
    u64 Res;
    if (Opc == 0)
      Res = ~Imm;
    else if (Opc == 2)
      Res = Imm;
    else
      Res = (xr(Rd) & ~(u64(0xFFFF) << (16 * Hw))) | Imm;
    wr(Rd, Res, Is64);
  } else if ((W & 0x1F800000u) == 0x13000000u) {
    // SBFM / UBFM
    unsigned Opc = (W >> 29) & 3;
    unsigned Immr = (W >> 16) & 0x3F, Imms = (W >> 10) & 0x3F;
    unsigned Size = Is64 ? 64 : 32;
    u64 Src = xr(Rn);
    if (!Is64)
      Src &= 0xFFFFFFFFull;
    u64 Res;
    if (Imms >= Immr) {
      unsigned Len = Imms - Immr + 1;
      u64 Field = (Src >> Immr) & (Len >= 64 ? ~0ull : (u64(1) << Len) - 1);
      Res = Opc == 0 ? static_cast<u64>(signExtend(Field, Len)) : Field;
    } else {
      unsigned Len = Imms + 1;
      u64 Field = Src & ((u64(1) << Len) - 1);
      if (Opc == 0)
        Field = static_cast<u64>(signExtend(Field, Len));
      Res = Field << (Size - Immr);
    }
    wr(Rd, Res, Is64);
  } else if ((W & 0x1F800000u) == 0x13800000u) {
    // EXTR
    unsigned Lsb = (W >> 10) & 0x3F;
    unsigned Size = Is64 ? 64 : 32;
    u64 Hi = xr(Rn), Lo = xr(Rm);
    if (!Is64) {
      Hi &= 0xFFFFFFFFull;
      Lo &= 0xFFFFFFFFull;
    }
    u64 Res = Lsb == 0 ? Lo : ((Lo >> Lsb) | (Hi << (Size - Lsb)));
    wr(Rd, Res, Is64);
  } else if ((W & 0x1F000000u) == 0x0A000000u) {
    // Logical shifted register (AND/ORR/EOR/ANDS, N = BIC/ORN/EON/BICS)
    unsigned Opc = (W >> 29) & 3;
    u64 M = doShift(xr(Rm), (W >> 22) & 3, (W >> 10) & 0x3F, Is64);
    if ((W >> 21) & 1)
      M = Is64 ? ~M : (~M & 0xFFFFFFFFull);
    u64 A = xr(Rn);
    u64 Res = Opc == 1 ? (A | M) : Opc == 2 ? (A ^ M) : (A & M);
    if (!Is64)
      Res &= 0xFFFFFFFFull;
    if (Opc == 3)
      setNZLogic(Res, Is64);
    wr(Rd, Res, Is64);
  } else if ((W & 0x1F200000u) == 0x0B000000u) {
    // ADD/SUB shifted register
    bool Sub = (W >> 30) & 1, S = (W >> 29) & 1;
    u64 M = doShift(xr(Rm), (W >> 22) & 3, (W >> 10) & 0x3F, Is64);
    u64 Res = addWithCarry(xr(Rn), Sub ? ~M : M, Sub, Is64, S);
    wr(Rd, Res, Is64);
  } else if ((W & 0x1F200000u) == 0x0B200000u) {
    // ADD/SUB extended register (SP-capable)
    bool Sub = (W >> 30) & 1, S = (W >> 29) & 1;
    u64 M = extendReg(xr(Rm), (W >> 13) & 7) << ((W >> 10) & 7);
    u64 Res = addWithCarry(xsp(Rn), Sub ? ~M : M, Sub, Is64, S);
    if (S)
      wr(Rd, Res, Is64);
    else
      wsp(Rd, Res, Is64);
  } else if ((W & 0x1FE0FC00u) == 0x1A000000u) {
    // ADC(S) / SBC(S)
    bool Sub = (W >> 30) & 1, S = (W >> 29) & 1;
    u64 M = xr(Rm);
    if (Sub)
      M = Is64 ? ~M : (~M & 0xFFFFFFFFull);
    u64 Res = addWithCarry(xr(Rn), M, C, Is64, S);
    wr(Rd, Res, Is64);
  } else if ((W & 0x1FE00800u) == 0x1A800000u) {
    // CSEL / CSINC / CSINV / CSNEG
    bool Op = (W >> 30) & 1;
    unsigned Op2 = (W >> 10) & 3, Cnd = (W >> 12) & 0xF;
    u64 Res;
    if (condHolds(Cnd)) {
      Res = xr(Rn);
    } else {
      Res = xr(Rm);
      if (!Op && Op2 == 1)
        Res += 1;
      else if (Op && Op2 == 0)
        Res = ~Res;
      else if (Op && Op2 == 1)
        Res = 0 - Res;
    }
    wr(Rd, Res, Is64);
  } else if ((W & 0x1FE00000u) == 0x1AC00000u) {
    // Data-processing 2-source
    unsigned Opcode = (W >> 10) & 0x3F;
    u64 A = xr(Rn), B = xr(Rm);
    if (!Is64) {
      A &= 0xFFFFFFFFull;
      B &= 0xFFFFFFFFull;
    }
    u64 Res = 0;
    switch (Opcode) {
    case 0x2: // UDIV
      Res = B == 0 ? 0 : (Is64 ? A / B : (A & 0xFFFFFFFF) / (B & 0xFFFFFFFF));
      Cycles += 11;
      break;
    case 0x3: { // SDIV
      Cycles += 11;
      if (B == 0) {
        Res = 0;
        break;
      }
      if (Is64) {
        i64 SA = static_cast<i64>(A), SB = static_cast<i64>(B);
        Res = (SA == std::numeric_limits<i64>::min() && SB == -1)
                  ? A
                  : static_cast<u64>(SA / SB);
      } else {
        i32 SA = static_cast<i32>(A), SB = static_cast<i32>(B);
        Res = (SA == std::numeric_limits<i32>::min() && SB == -1)
                  ? A
                  : static_cast<u64>(static_cast<u32>(SA / SB));
      }
      break;
    }
    case 0x8: // LSLV
      Res = doShift(A, 0, B & (Is64 ? 63 : 31), Is64);
      break;
    case 0x9: // LSRV
      Res = doShift(A, 1, B & (Is64 ? 63 : 31), Is64);
      break;
    case 0xA: // ASRV
      Res = doShift(A, 2, B & (Is64 ? 63 : 31), Is64);
      break;
    default:
      fatalError("a64 sim: unknown 2-source opcode");
    }
    wr(Rd, Res, Is64);
  } else if ((W & 0x1F000000u) == 0x1B000000u) {
    // Data-processing 3-source
    unsigned Op31 = (W >> 21) & 7;
    bool O0 = (W >> 15) & 1;
    unsigned Ra = (W >> 10) & 31;
    Cycles += 2;
    if (Op31 == 0) {
      u64 Prod = xr(Rn) * xr(Rm);
      u64 Res = O0 ? xr(Ra) - Prod : xr(Ra) + Prod;
      wr(Rd, Res, Is64);
    } else if (Op31 == 2) {
      __int128 P = static_cast<__int128>(static_cast<i64>(xr(Rn))) *
                   static_cast<i64>(xr(Rm));
      wr(Rd, static_cast<u64>(P >> 64), true);
      Cycles += 2;
    } else if (Op31 == 6) {
      unsigned __int128 P = static_cast<unsigned __int128>(xr(Rn)) * xr(Rm);
      wr(Rd, static_cast<u64>(P >> 64), true);
      Cycles += 2;
    } else {
      fatalError("a64 sim: unknown 3-source op");
    }
  } else if ((W & 0x3E000000u) == 0x28000000u) {
    // LDP / STP (64-bit GP pairs)
    unsigned Mode = (W >> 23) & 7;
    bool Load = (W >> 22) & 1;
    i64 Imm = signExtend((W >> 15) & 0x7F, 7) * 8;
    unsigned Rt2 = (W >> 10) & 31;
    u64 Base = xsp(Rn);
    u64 EA = Mode == 1 ? Base : Base + Imm; // post-index uses base
    if (Load) {
      u64 A = loadBytes(EA, 8), B = loadBytes(EA + 8, 8);
      wr(Rd, A, true);
      wr(Rt2, B, true);
    } else {
      storeBytes(EA, xr(Rd), 8);
      storeBytes(EA + 8, xr(Rt2), 8);
    }
    if (Mode == 3)
      wsp(Rn, Base + Imm, true); // pre-index writeback
    else if (Mode == 1)
      wsp(Rn, Base + Imm, true); // post-index writeback
    Cycles += 3;
  } else if ((W & 0x3A000000u) == 0x38000000u) {
    // Load/store register (unsigned, unscaled, register offset)
    unsigned SizeLog2 = (W >> 30) & 3;
    bool IsVec = (W >> 26) & 1;
    unsigned Opc = (W >> 22) & 3;
    u64 EA;
    if ((W >> 24) & 1) {
      EA = xsp(Rn) + (static_cast<u64>((W >> 10) & 0xFFF) << SizeLog2);
    } else if ((W >> 21) & 1) {
      u64 Off = extendReg(xr(Rm), (W >> 13) & 7);
      if ((W >> 12) & 1)
        Off <<= SizeLog2;
      EA = xsp(Rn) + Off;
    } else {
      EA = xsp(Rn) + signExtend((W >> 12) & 0x1FF, 9);
    }
    unsigned Bytes = 1u << SizeLog2;
    Cycles += 3;
    if (IsVec) {
      if (Opc == 1)
        V[Rd] = loadBytes(EA, Bytes);
      else
        storeBytes(EA, V[Rd], Bytes);
    } else if (Opc == 0) {
      storeBytes(EA, xr(Rd), Bytes);
    } else if (Opc == 1) {
      wr(Rd, loadBytes(EA, Bytes), true); // zero-extending load
    } else {
      i64 SV = signExtend(loadBytes(EA, Bytes), Bytes * 8);
      wr(Rd, Opc == 2 ? static_cast<u64>(SV)
                      : (static_cast<u64>(SV) & 0xFFFFFFFFull),
         true);
    }
  } else if ((W & 0x5F200000u) == 0x1E200000u) {
    // Scalar FP
    bool Dbl = (W >> 22) & 1;
    Cycles += 2;
    if (((W >> 10) & 0x3F) == 0 && ((W >> 21) & 1)) {
      // Conversions between integer and FP.
      unsigned RmodeOpc = (W >> 16) & 0x1F;
      bool Sf = (W >> 31) != 0;
      switch (RmodeOpc) {
      case 0x02: { // SCVTF
        i64 SV = Sf ? static_cast<i64>(xr(Rn))
                    : static_cast<i64>(static_cast<i32>(xr(Rn)));
        if (Dbl)
          setD(Rd & 31, static_cast<double>(SV));
        else
          setS(Rd & 31, static_cast<float>(SV));
        break;
      }
      case 0x18: { // FCVTZS
        i64 Res = Dbl ? fcvtzs(d(Rn), Sf) : fcvtzs(s(Rn), Sf);
        wr(Rd, Sf ? static_cast<u64>(Res)
                  : (static_cast<u64>(Res) & 0xFFFFFFFFull),
           true);
        break;
      }
      case 0x07: // FMOV to FP
        V[Rd] = Sf ? xr(Rn) : (xr(Rn) & 0xFFFFFFFFull);
        break;
      case 0x06: // FMOV from FP
        wr(Rd, Sf ? V[Rn] : (V[Rn] & 0xFFFFFFFFull), true);
        break;
      default:
        fatalError("a64 sim: unknown int<->fp conversion");
      }
    } else if (((W >> 10) & 0x1F) == 0x10) {
      // FP data-processing, 1 source.
      unsigned Opcode = (W >> 15) & 0x3F;
      switch (Opcode) {
      case 0: // FMOV
        V[Rd] = Dbl ? V[Rn] : (V[Rn] & 0xFFFFFFFFull);
        break;
      case 2: // FNEG
        if (Dbl)
          setD(Rd, -d(Rn));
        else
          setS(Rd, -s(Rn));
        break;
      case 3: // FSQRT
        Cycles += 12;
        if (Dbl)
          setD(Rd, std::sqrt(d(Rn)));
        else
          setS(Rd, std::sqrt(s(Rn)));
        break;
      case 4: // FCVT to single
        setS(Rd, static_cast<float>(d(Rn)));
        break;
      case 5: // FCVT to double
        setD(Rd, static_cast<double>(s(Rn)));
        break;
      default:
        fatalError("a64 sim: unknown fp 1-source op");
      }
    } else if (((W >> 10) & 0xF) == 0x8) {
      // FCMP
      double A = Dbl ? d(Rn) : s(Rn);
      double B = Dbl ? d(Rm) : s(Rm);
      if (std::isnan(A) || std::isnan(B)) {
        N = false;
        Z = false;
        C = true;
        VF = true;
      } else if (A == B) {
        N = false;
        Z = true;
        C = true;
        VF = false;
      } else if (A < B) {
        N = true;
        Z = false;
        C = false;
        VF = false;
      } else {
        N = false;
        Z = false;
        C = true;
        VF = false;
      }
    } else if (((W >> 10) & 3) == 3) {
      // FCSEL
      unsigned Cnd = (W >> 12) & 0xF;
      u64 Res = condHolds(Cnd) ? V[Rn] : V[Rm];
      V[Rd] = Dbl ? Res : (Res & 0xFFFFFFFFull);
    } else if (((W >> 10) & 3) == 2) {
      // FP data-processing, 2 source.
      unsigned Opcode = (W >> 12) & 0xF;
      auto apply = [&](auto A, auto B) {
        switch (Opcode) {
        case 0:
          return A * B;
        case 1:
          Cycles += 8;
          return A / B;
        case 2:
          return A + B;
        case 3:
          return A - B;
        case 4:
          return A > B ? A : B;
        case 5:
          return A < B ? A : B;
        }
        fatalError("a64 sim: unknown fp 2-source op");
      };
      if (Dbl)
        setD(Rd, apply(d(Rn), d(Rm)));
      else
        setS(Rd, apply(s(Rn), s(Rm)));
    } else {
      fatalError("a64 sim: unknown fp instruction");
    }
  } else {
    std::fprintf(stderr, "a64 sim: unknown instruction %08x at %#llx\n", W,
                 static_cast<unsigned long long>(PC));
    fatalError("a64 sim: cannot decode instruction");
  }

  PC = NextPC;
  return true;
}
