//===- a64/Encoder.cpp - AArch64 instruction encoder ----------------------===//
//
// Every public method batches its instruction words through the section
// write cursor (Emitter::begin/putW/commit): space for the longest
// possible encoding is reserved up front, words are raw stores, and the
// final length is committed once — one bounds check per emitter call
// (docs/PERF.md "Emission is batched"), matching the x64 encoder.
//
//===----------------------------------------------------------------------===//

#include "a64/Encoder.h"

using namespace tpde;
using namespace tpde::a64;

// ---------------------------------------------------------------------------
// Logical (bitmask) immediates
// ---------------------------------------------------------------------------

bool tpde::a64::encodeLogicalImm(u64 Imm, unsigned RegSize, u32 &N, u32 &Immr,
                                 u32 &Imms) {
  assert((RegSize == 32 || RegSize == 64) && "bad register size");
  if (RegSize == 32) {
    Imm &= 0xFFFFFFFFull;
    Imm |= Imm << 32;
  }
  if (Imm == 0 || Imm == ~0ull)
    return false; // all-zero / all-one patterns are not encodable

  // Find the smallest element size whose pattern replicates to the value.
  unsigned E = 64;
  while (E > 2) {
    unsigned Half = E / 2;
    u64 Mask = (u64(1) << Half) - 1;
    if ((Imm & Mask) != ((Imm >> Half) & Mask))
      break;
    E = Half;
  }
  u64 Mask = E == 64 ? ~0ull : (u64(1) << E) - 1;
  u64 P = Imm & Mask;
  unsigned K = popCount(P);
  if (K == 0 || K == E)
    return false;

  unsigned R;
  unsigned T = countTrailingZeros(P);
  u64 RunK = K == 64 ? ~0ull : (u64(1) << K) - 1;
  if ((P >> T) == RunK) {
    // Contiguous run of ones starting at bit T.
    R = (E - T) % E;
  } else {
    // Must be a wrapped run: the zeros form one contiguous run.
    u64 Z = ~P & Mask;
    unsigned TZ = countTrailingZeros(Z);
    if ((Z >> TZ) != (u64(1) << (E - K)) - 1)
      return false;
    unsigned CTO = countTrailingZeros(~P); // trailing ones of P
    R = K - CTO;
  }

  u32 ImmsBase;
  switch (E) {
  case 64:
    N = 1;
    ImmsBase = 0x00;
    break;
  case 32:
    N = 0;
    ImmsBase = 0x00;
    break;
  case 16:
    N = 0;
    ImmsBase = 0x20;
    break;
  case 8:
    N = 0;
    ImmsBase = 0x30;
    break;
  case 4:
    N = 0;
    ImmsBase = 0x38;
    break;
  case 2:
    N = 0;
    ImmsBase = 0x3C;
    break;
  default:
    TPDE_UNREACHABLE("bad element size");
  }
  Imms = ImmsBase | (K - 1);
  Immr = R & (E - 1);
  return true;
}

// ---------------------------------------------------------------------------
// Moves and immediates
// ---------------------------------------------------------------------------

void Emitter::movRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Dst.bank() == 0 && Src.bank() == 0 && "GP move");
  // ORR Dst, XZR, Src. Register 31 is XZR in this form.
  word(sf(Sz) | 0x2A0003E0u | (u32(Src.hw()) << 16) | Dst.hw());
}

void Emitter::movSP(AsmReg Dst, AsmReg Src) {
  // ADD Dst, Src, #0 — register 31 is SP in the immediate form.
  word(0x91000000u | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::movRIIn(AsmReg Dst, u64 Imm) {
  // Count 16-bit chunks equal to 0 and to 0xFFFF to pick MOVZ vs MOVN.
  unsigned ZeroChunks = 0, OneChunks = 0;
  for (unsigned I = 0; I < 4; ++I) {
    u16 C = static_cast<u16>(Imm >> (16 * I));
    ZeroChunks += C == 0;
    OneChunks += C == 0xFFFF;
  }
  const u32 Rd = Dst.hw();
  if (OneChunks > ZeroChunks) {
    // MOVN path: start from all-ones.
    bool First = true;
    for (unsigned I = 0; I < 4; ++I) {
      u16 C = static_cast<u16>(Imm >> (16 * I));
      if (C == 0xFFFF)
        continue;
      if (First) {
        putW(0x92800000u | (u32(I) << 21) | (u32(u16(~C)) << 5) | Rd); // MOVN
        First = false;
      } else {
        putW(0xF2800000u | (u32(I) << 21) | (u32(C) << 5) | Rd); // MOVK
      }
    }
    if (First)
      putW(0x92800000u | Rd); // Imm == ~0: MOVN Dst, #0
    return;
  }
  bool First = true;
  for (unsigned I = 0; I < 4; ++I) {
    u16 C = static_cast<u16>(Imm >> (16 * I));
    if (C == 0)
      continue;
    if (First) {
      putW(0xD2800000u | (u32(I) << 21) | (u32(C) << 5) | Rd); // MOVZ
      First = false;
    } else {
      putW(0xF2800000u | (u32(I) << 21) | (u32(C) << 5) | Rd); // MOVK
    }
  }
  if (First)
    putW(0xD2800000u | Rd); // Imm == 0: MOVZ Dst, #0
}

void Emitter::movRI(AsmReg Dst, u64 Imm) {
  begin(16); // at most MOVZ/MOVN + 3 MOVK
  movRIIn(Dst, Imm);
  commit();
}

// ---------------------------------------------------------------------------
// Integer arithmetic
// ---------------------------------------------------------------------------

void Emitter::addRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2,
                     bool SetFlags, u8 Shift) {
  u32 W = sf(Sz) | 0x0B000000u | (SetFlags ? (1u << 29) : 0);
  word(W | (u32(Src2.hw()) << 16) | (u32(Shift) << 10) |
       (u32(Src1.hw()) << 5) | Dst.hw());
}

void Emitter::subRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2,
                     bool SetFlags, u8 Shift) {
  u32 W = sf(Sz) | 0x4B000000u | (SetFlags ? (1u << 29) : 0);
  word(W | (u32(Src2.hw()) << 16) | (u32(Shift) << 10) |
       (u32(Src1.hw()) << 5) | Dst.hw());
}

/// Emits ADD/SUB immediate; \p SubOp selects subtraction.
static u32 addSubImmWord(u8 Sz, bool SubOp, bool SetFlags, AsmReg Dst,
                         AsmReg Src, u32 Imm12, bool Shift12) {
  u32 W = (Sz == 8 ? (1u << 31) : 0) | 0x11000000u;
  if (SubOp)
    W |= 1u << 30;
  if (SetFlags)
    W |= 1u << 29;
  if (Shift12)
    W |= 1u << 22;
  return W | (Imm12 << 10) | (u32(Src.hw()) << 5) | Dst.hw();
}

void Emitter::addSubRIIn(u8 Sz, bool SubOp, AsmReg Dst, AsmReg Src, u64 Imm,
                         bool SetFlags) {
  if (Imm < 4096) {
    putW(addSubImmWord(Sz, SubOp, SetFlags, Dst, Src, static_cast<u32>(Imm),
                       false));
    return;
  }
  assert(!SetFlags && "flag-setting add/sub requires an imm12 immediate");
  if ((Imm & 0xFFF) == 0 && Imm < (u64(4096) << 12)) {
    putW(addSubImmWord(Sz, SubOp, false, Dst, Src,
                       static_cast<u32>(Imm >> 12), true));
    return;
  }
  if (Imm < (u64(4096) << 12)) {
    putW(addSubImmWord(Sz, SubOp, false, Dst, Src,
                       static_cast<u32>(Imm & 0xFFF), false));
    putW(addSubImmWord(Sz, SubOp, false, Dst, Dst,
                       static_cast<u32>(Imm >> 12), true));
    return;
  }
  assert(!(Src == X16) && !(Dst == X16) && "X16 is encoder scratch");
  movRIIn(X16, Imm);
  const u32 OpBit = SubOp ? (1u << 30) : 0;
  if (Src.hw() == 31 || Dst.hw() == 31) {
    // ADD/SUB (extended register), UXTX: valid with SP.
    putW(sf(Sz) | 0x0B206000u | OpBit | (u32(X16.hw()) << 16) |
         (u32(Src.hw()) << 5) | Dst.hw());
  } else {
    // ADD/SUB (shifted register) with X16.
    putW(sf(Sz) | 0x0B000000u | OpBit | (u32(X16.hw()) << 16) |
         (u32(Src.hw()) << 5) | Dst.hw());
  }
}

void Emitter::addRI(u8 Sz, AsmReg Dst, AsmReg Src, u64 Imm, bool SetFlags) {
  begin(20); // worst case: 4-word X16 materialization + the add
  addSubRIIn(Sz, /*SubOp=*/false, Dst, Src, Imm, SetFlags);
  commit();
}

void Emitter::subRI(u8 Sz, AsmReg Dst, AsmReg Src, u64 Imm, bool SetFlags) {
  begin(20);
  addSubRIIn(Sz, /*SubOp=*/true, Dst, Src, Imm, SetFlags);
  commit();
}

void Emitter::adcsRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  word(sf(Sz) | 0x3A000000u | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) |
       Dst.hw());
}

void Emitter::sbcsRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  word(sf(Sz) | 0x7A000000u | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) |
       Dst.hw());
}

// ---------------------------------------------------------------------------
// Logical
// ---------------------------------------------------------------------------

void Emitter::logicRRR(LogicOp Op, u8 Sz, AsmReg Dst, AsmReg Src1,
                       AsmReg Src2) {
  u32 W = sf(Sz) | 0x0A000000u | (u32(static_cast<u8>(Op)) << 29);
  word(W | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) | Dst.hw());
}

void Emitter::mvnRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  // ORN Dst, XZR, Src.
  word(sf(Sz) | 0x2A2003E0u | (u32(Src.hw()) << 16) | Dst.hw());
}

void Emitter::logicRI(LogicOp Op, u8 Sz, AsmReg Dst, AsmReg Src, u64 Imm) {
  begin(20); // worst case: 4-word X16 materialization + the logic op
  u32 N, Immr, Imms;
  if (encodeLogicalImm(Imm, Sz == 8 ? 64 : 32, N, Immr, Imms)) {
    u32 W = sf(Sz) | 0x12000000u | (u32(static_cast<u8>(Op)) << 29);
    putW(W | (N << 22) | (Immr << 16) | (Imms << 10) | (u32(Src.hw()) << 5) |
         Dst.hw());
  } else {
    assert(!(Src == X16) && !(Dst == X16) && "X16 is encoder scratch");
    movRIIn(X16, Imm);
    putW(sf(Sz) | 0x0A000000u | (u32(static_cast<u8>(Op)) << 29) |
         (u32(X16.hw()) << 16) | (u32(Src.hw()) << 5) | Dst.hw());
  }
  commit();
}

void Emitter::cmpRI(u8 Sz, AsmReg R, u64 Imm) {
  begin(20); // worst case: 4-word X16 materialization + the compare
  if (Imm < 4096) {
    putW(addSubImmWord(Sz, true, true, XZR, R, static_cast<u32>(Imm), false));
    commit();
    return;
  }
  u64 Neg = Sz == 8 ? (0 - Imm) : ((0 - Imm) & 0xFFFFFFFFull);
  if (Neg < 4096) {
    // CMN.
    putW(addSubImmWord(Sz, false, true, XZR, R, static_cast<u32>(Neg), false));
    commit();
    return;
  }
  assert(!(R == X16) && "X16 is encoder scratch");
  movRIIn(X16, Imm);
  // SUBS XZR, R, X16.
  putW(sf(Sz) | 0x6B000000u | (u32(X16.hw()) << 16) | (u32(R.hw()) << 5) |
       XZR.hw());
  commit();
}

// ---------------------------------------------------------------------------
// Multiply / divide
// ---------------------------------------------------------------------------

void Emitter::maddRRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2,
                       AsmReg Acc) {
  word(sf(Sz) | 0x1B000000u | (u32(Src2.hw()) << 16) | (u32(Acc.hw()) << 10) |
       (u32(Src1.hw()) << 5) | Dst.hw());
}

void Emitter::msubRRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2,
                       AsmReg Acc) {
  word(sf(Sz) | 0x1B008000u | (u32(Src2.hw()) << 16) | (u32(Acc.hw()) << 10) |
       (u32(Src1.hw()) << 5) | Dst.hw());
}

void Emitter::smulh(AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  word(0x9B407C00u | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) |
       Dst.hw());
}

void Emitter::umulh(AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  word(0x9BC07C00u | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) |
       Dst.hw());
}

void Emitter::sdivRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  word(sf(Sz) | 0x1AC00C00u | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) |
       Dst.hw());
}

void Emitter::udivRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  word(sf(Sz) | 0x1AC00800u | (u32(Src2.hw()) << 16) | (u32(Src1.hw()) << 5) |
       Dst.hw());
}

// ---------------------------------------------------------------------------
// Shifts and bitfields
// ---------------------------------------------------------------------------

void Emitter::shiftRRR(ShiftOp Op, u8 Sz, AsmReg Dst, AsmReg Src, AsmReg Amt) {
  u32 Op2;
  switch (Op) {
  case ShiftOp::Lsl:
    Op2 = 0x8;
    break;
  case ShiftOp::Lsr:
    Op2 = 0x9;
    break;
  case ShiftOp::Asr:
    Op2 = 0xA;
    break;
  default:
    TPDE_UNREACHABLE("bad shift op");
  }
  word(sf(Sz) | 0x1AC00000u | (u32(Amt.hw()) << 16) | (Op2 << 10) |
       (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::shiftRI(ShiftOp Op, u8 Sz, AsmReg Dst, AsmReg Src, u8 Amt) {
  unsigned Bits = Sz == 8 ? 64 : 32;
  assert(Amt < Bits && "shift amount out of range");
  u32 NBit = Sz == 8 ? (1u << 22) : 0;
  u32 Immr, Imms;
  u32 Base;
  switch (Op) {
  case ShiftOp::Lsl:
    Base = 0x53000000u; // UBFM
    Immr = (Bits - Amt) % Bits;
    Imms = Bits - 1 - Amt;
    break;
  case ShiftOp::Lsr:
    Base = 0x53000000u; // UBFM
    Immr = Amt;
    Imms = Bits - 1;
    break;
  case ShiftOp::Asr:
    Base = 0x13000000u; // SBFM
    Immr = Amt;
    Imms = Bits - 1;
    break;
  default:
    TPDE_UNREACHABLE("bad shift op");
  }
  word(sf(Sz) | Base | NBit | (Immr << 16) | (Imms << 10) |
       (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::extrRRI(u8 Sz, AsmReg Dst, AsmReg Hi, AsmReg Lo, u8 Lsb) {
  u32 NBit = Sz == 8 ? (1u << 22) : 0;
  word(sf(Sz) | 0x13800000u | NBit | (u32(Lo.hw()) << 16) |
       (u32(Lsb) << 10) | (u32(Hi.hw()) << 5) | Dst.hw());
}

void Emitter::sxtb(AsmReg Dst, AsmReg Src) {
  word(0x93401C00u | (u32(Src.hw()) << 5) | Dst.hw()); // SBFM x, #0, #7
}
void Emitter::sxth(AsmReg Dst, AsmReg Src) {
  word(0x93403C00u | (u32(Src.hw()) << 5) | Dst.hw()); // SBFM x, #0, #15
}
void Emitter::sxtw(AsmReg Dst, AsmReg Src) {
  word(0x93407C00u | (u32(Src.hw()) << 5) | Dst.hw()); // SBFM x, #0, #31
}
void Emitter::uxtb(AsmReg Dst, AsmReg Src) {
  word(0x53001C00u | (u32(Src.hw()) << 5) | Dst.hw()); // UBFM w, #0, #7
}
void Emitter::uxth(AsmReg Dst, AsmReg Src) {
  word(0x53003C00u | (u32(Src.hw()) << 5) | Dst.hw()); // UBFM w, #0, #15
}

// ---------------------------------------------------------------------------
// Conditionals
// ---------------------------------------------------------------------------

void Emitter::csel(u8 Sz, AsmReg Dst, AsmReg IfTrue, AsmReg IfFalse, Cond C) {
  word(sf(Sz) | 0x1A800000u | (u32(IfFalse.hw()) << 16) |
       (u32(static_cast<u8>(C)) << 12) | (u32(IfTrue.hw()) << 5) | Dst.hw());
}

void Emitter::csinc(u8 Sz, AsmReg Dst, AsmReg IfTrue, AsmReg IfFalse, Cond C) {
  word(sf(Sz) | 0x1A800400u | (u32(IfFalse.hw()) << 16) |
       (u32(static_cast<u8>(C)) << 12) | (u32(IfTrue.hw()) << 5) | Dst.hw());
}

// ---------------------------------------------------------------------------
// Loads / stores
// ---------------------------------------------------------------------------

void Emitter::ldst(u8 SizeLog2, u32 Opc, bool V, AsmReg Rt, Mem M) {
  begin(20); // worst case: 4-word X16 displacement + the access
  const u32 Base = (u32(SizeLog2) << 30) | 0x38000000u |
                   (V ? (1u << 26) : 0) | (Opc << 22);
  const u32 RtRn = (u32(M.Base.hw()) << 5) | Rt.hw();
  if (M.Index.isValid()) {
    assert((M.Shift == 0 || M.Shift == SizeLog2) && "bad index shift");
    putW(Base | (1u << 21) | (u32(M.Index.hw()) << 16) | (0x3u << 13) |
         (M.Shift ? (1u << 12) : 0) | (0x2u << 10) | RtRn);
    commit();
    return;
  }
  const i64 D = M.Disp;
  const u32 Scale = u32(1) << SizeLog2;
  if (D >= 0 && (D & (Scale - 1)) == 0 && (D >> SizeLog2) < 4096) {
    // Scaled unsigned-offset form (bit 24 distinguishes it).
    putW(Base | (1u << 24) | (static_cast<u32>(D >> SizeLog2) << 10) | RtRn);
    commit();
    return;
  }
  if (D >= -256 && D <= 255) {
    // LDUR/STUR.
    putW(Base | ((static_cast<u32>(D) & 0x1FF) << 12) | RtRn);
    commit();
    return;
  }
  // Out-of-range displacement: X16 = Disp, register-offset access.
  assert(!(Rt == X16) && !(M.Base == X16) && "X16 is encoder scratch");
  movRIIn(X16, static_cast<u64>(D));
  putW(Base | (1u << 21) | (u32(X16.hw()) << 16) | (0x3u << 13) |
       (0x2u << 10) | RtRn);
  commit();
}

void Emitter::ldr(u8 Sz, AsmReg Dst, Mem M) {
  u8 SizeLog2 = Sz == 8 ? 3 : Sz == 4 ? 2 : Sz == 2 ? 1 : 0;
  ldst(SizeLog2, /*Opc=*/1, /*V=*/Dst.bank() == 1, Dst, M);
}

void Emitter::ldrSext(u8 Sz, AsmReg Dst, Mem M) {
  assert(Dst.bank() == 0 && Sz < 8 && "sign-extending GP load");
  u8 SizeLog2 = Sz == 4 ? 2 : Sz == 2 ? 1 : 0;
  ldst(SizeLog2, /*Opc=*/2, /*V=*/false, Dst, M); // LDRS* to 64 bits
}

void Emitter::str(u8 Sz, Mem M, AsmReg Src) {
  u8 SizeLog2 = Sz == 8 ? 3 : Sz == 4 ? 2 : Sz == 2 ? 1 : 0;
  ldst(SizeLog2, /*Opc=*/0, /*V=*/Src.bank() == 1, Src, M);
}

void Emitter::stpPre(AsmReg R1, AsmReg R2, AsmReg Base, i32 Imm) {
  assert(Imm % 8 == 0 && Imm / 8 >= -64 && Imm / 8 < 64 && "bad STP offset");
  word(0xA9800000u | ((static_cast<u32>(Imm / 8) & 0x7F) << 15) |
       (u32(R2.hw()) << 10) | (u32(Base.hw()) << 5) | R1.hw());
}

void Emitter::ldpPost(AsmReg R1, AsmReg R2, AsmReg Base, i32 Imm) {
  assert(Imm % 8 == 0 && Imm / 8 >= -64 && Imm / 8 < 64 && "bad LDP offset");
  word(0xA8C00000u | ((static_cast<u32>(Imm / 8) & 0x7F) << 15) |
       (u32(R2.hw()) << 10) | (u32(Base.hw()) << 5) | R1.hw());
}

// ---------------------------------------------------------------------------
// Address computation
// ---------------------------------------------------------------------------

void Emitter::leaMem(AsmReg Dst, AsmReg Base, i64 Disp) {
  if (Disp >= 0)
    addRI(8, Dst, Base, static_cast<u64>(Disp));
  else
    subRI(8, Dst, Base, 0 - static_cast<u64>(Disp)); // INT64_MIN-safe
}

void Emitter::leaSym(AsmReg Dst, asmx::SymRef S, i64 Addend) {
  begin(8);
  A.addReloc(asmx::SecKind::Text, off(), asmx::RelocKind::A64AdrPage21, S,
             Addend);
  putW(0x90000000u | Dst.hw()); // ADRP Dst, sym
  A.addReloc(asmx::SecKind::Text, off(), asmx::RelocKind::A64AddLo12, S,
             Addend);
  putW(0x91000000u | (u32(Dst.hw()) << 5) | Dst.hw()); // ADD Dst, Dst, #lo12
  commit();
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

void Emitter::bLabel(asmx::Label L) {
  u64 Off = offset();
  word(0x14000000u); // committed before the fixup may patch it
  A.addFixup(L, asmx::FixupKind::A64Branch26, Off);
}

void Emitter::bcondLabel(Cond C, asmx::Label L) {
  u64 Off = offset();
  word(0x54000000u | static_cast<u8>(C));
  A.addFixup(L, asmx::FixupKind::A64Branch19, Off);
}

void Emitter::cbzLabel(u8 Sz, AsmReg R, asmx::Label L) {
  u64 Off = offset();
  word(sf(Sz) | 0x34000000u | R.hw());
  A.addFixup(L, asmx::FixupKind::A64Branch19, Off);
}

void Emitter::cbnzLabel(u8 Sz, AsmReg R, asmx::Label L) {
  u64 Off = offset();
  word(sf(Sz) | 0x35000000u | R.hw());
  A.addFixup(L, asmx::FixupKind::A64Branch19, Off);
}

void Emitter::blSym(asmx::SymRef S) {
  u64 Off = offset();
  word(0x94000000u);
  A.addReloc(asmx::SecKind::Text, Off, asmx::RelocKind::A64Call26, S, 0);
}

void Emitter::blrReg(AsmReg R) { word(0xD63F0000u | (u32(R.hw()) << 5)); }
void Emitter::brReg(AsmReg R) { word(0xD61F0000u | (u32(R.hw()) << 5)); }
void Emitter::ret() { word(0xD65F03C0u); }
void Emitter::brk(u16 Imm) { word(0xD4200000u | (u32(Imm) << 5)); }
void Emitter::nop() { word(0xD503201Fu); }

void Emitter::nops(unsigned N) {
  assert(N % 4 == 0 && "NOP padding must be whole instructions");
  if (!N)
    return;
  begin(N); // one bounds check for the whole pad
  for (unsigned I = 0; I < N; I += 4)
    putW(0xD503201Fu);
  commit();
}

// ---------------------------------------------------------------------------
// Scalar FP
// ---------------------------------------------------------------------------

/// Type field for scalar S (Sz 4) / D (Sz 8) operations (bits 23:22).
static u32 fpType(u8 Sz) { return Sz == 8 ? (1u << 22) : 0; }

void Emitter::fpMovRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  word(0x1E204000u | fpType(Sz) | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::fpArith(FpOp Op, u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2) {
  u32 OpBits;
  switch (Op) {
  case FpOp::Mul:
    OpBits = 0x0;
    break;
  case FpOp::Div:
    OpBits = 0x1;
    break;
  case FpOp::Add:
    OpBits = 0x2;
    break;
  case FpOp::Sub:
    OpBits = 0x3;
    break;
  case FpOp::Max:
    OpBits = 0x4;
    break;
  case FpOp::Min:
    OpBits = 0x5;
    break;
  default:
    TPDE_UNREACHABLE("bad fp op");
  }
  word(0x1E200800u | fpType(Sz) | (u32(Src2.hw()) << 16) | (OpBits << 12) |
       (u32(Src1.hw()) << 5) | Dst.hw());
}

void Emitter::fpNeg(u8 Sz, AsmReg Dst, AsmReg Src) {
  word(0x1E214000u | fpType(Sz) | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::fpSqrt(u8 Sz, AsmReg Dst, AsmReg Src) {
  word(0x1E21C000u | fpType(Sz) | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::fpCmp(u8 Sz, AsmReg A, AsmReg B) {
  word(0x1E202000u | fpType(Sz) | (u32(B.hw()) << 16) | (u32(A.hw()) << 5));
}

void Emitter::fpCsel(u8 Sz, AsmReg Dst, AsmReg IfTrue, AsmReg IfFalse,
                     Cond C) {
  word(0x1E200C00u | fpType(Sz) | (u32(IfFalse.hw()) << 16) |
       (u32(static_cast<u8>(C)) << 12) | (u32(IfTrue.hw()) << 5) | Dst.hw());
}

void Emitter::fpCvt(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  // FCVT between single and double precision.
  u32 W = SrcSz == 4 ? 0x1E22C000u  // FCVT Dd, Sn
                     : 0x1E624000u; // FCVT Sd, Dn
  word(W | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::cvtSiToFp(u8 IntSz, u8 FpSz, AsmReg Dst, AsmReg Src) {
  // SCVTF <Sd|Dd>, <Wn|Xn>.
  u32 W = 0x1E220000u | fpType(FpSz) | (IntSz == 8 ? (1u << 31) : 0);
  word(W | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::cvtFpToSi(u8 FpSz, u8 IntSz, AsmReg Dst, AsmReg Src) {
  // FCVTZS <Wd|Xd>, <Sn|Dn>.
  u32 W = 0x1E380000u | fpType(FpSz) | (IntSz == 8 ? (1u << 31) : 0);
  word(W | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::fmovToFp(u8 Sz, AsmReg Dst, AsmReg Src) {
  u32 W = Sz == 8 ? 0x9E670000u : 0x1E270000u;
  word(W | (u32(Src.hw()) << 5) | Dst.hw());
}

void Emitter::fmovFromFp(u8 Sz, AsmReg Dst, AsmReg Src) {
  u32 W = Sz == 8 ? 0x9E660000u : 0x1E260000u;
  word(W | (u32(Src.hw()) << 5) | Dst.hw());
}

// ---------------------------------------------------------------------------
// Prologue patching
// ---------------------------------------------------------------------------

void Emitter::frameSubPlaceholder() {
  begin(8);
  putW(0xD10003FFu); // sub sp, sp, #0
  putW(0xD14003FFu); // sub sp, sp, #0, lsl #12
  commit();
}

void Emitter::patchFrameSub(asmx::Section &T, u64 Off, u32 FrameSize) {
  assert(FrameSize < (1u << 24) && "frame too large");
  u32 Lo = FrameSize & 0xFFF, Hi = FrameSize >> 12;
  T.patchLE<u32>(Off, 0xD10003FFu | (Lo << 10));
  T.patchLE<u32>(Off + 4, 0xD14003FFu | (Hi << 10));
}
