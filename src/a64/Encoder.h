//===- a64/Encoder.h - AArch64 instruction encoder --------------*- C++ -*-===//
///
/// \file
/// A fast, direct AArch64 (A64) machine code encoder, the second target of
/// the reproduction (paper §5: "targeting x86-64 and AArch64"). Like the
/// x86-64 encoder it appends final instruction words straight into the
/// text section with no intermediate representation, playing the role of
/// TPDE's in-house assembler (§4.1.3 rejects LLVM-MC for performance).
///
/// Register numbering: general-purpose registers are ids 0..30 (X0..X30),
/// id 31 is SP or XZR depending on the instruction (as in the
/// architecture); FP/SIMD registers are ids 32..63 (V0..V31). The upper
/// bits double as the register-bank index used by the framework's
/// register allocator.
///
/// X16/X17 (IP0/IP1) are reserved as encoder-internal scratch registers:
/// memory operands whose displacement does not fit the addressing mode and
/// unencodable logical immediates are routed through them, so callers can
/// pass arbitrary offsets and immediates.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_A64_ENCODER_H
#define TPDE_A64_ENCODER_H

// tpde-lint: hot-path -- per-function compile loop; the zero-allocation
// policy (docs/PERF.md) is machine-enforced here by scripts/tpde_lint.py.

#include "asmx/Assembler.h"
#include "support/Common.h"

namespace tpde::a64 {

/// A machine register handle (GP bank 0: ids 0-31, FP bank 1: ids 32-63).
struct AsmReg {
  u8 Id = 0xFF;
  constexpr AsmReg() = default;
  constexpr AsmReg(u8 Id) : Id(Id) {}
  constexpr bool isValid() const { return Id != 0xFF; }
  /// Register bank: 0 = general purpose, 1 = FP/SIMD.
  constexpr u8 bank() const { return Id >> 5; }
  /// Hardware encoding within the bank (0-31).
  constexpr u8 hw() const { return Id & 31; }
  constexpr bool operator==(const AsmReg &O) const { return Id == O.Id; }
};

// Canonical register ids. Id 31 encodes both SP and XZR; which one an
// instruction reads/writes follows the architectural rules.
inline constexpr AsmReg X0{0}, X1{1}, X2{2}, X3{3}, X4{4}, X5{5}, X6{6},
    X7{7}, X8{8}, X9{9}, X10{10}, X11{11}, X12{12}, X13{13}, X14{14}, X15{15},
    X16{16}, X17{17}, X18{18}, X19{19}, X20{20}, X21{21}, X22{22}, X23{23},
    X24{24}, X25{25}, X26{26}, X27{27}, X28{28}, FP{29}, LR{30}, SP{31},
    XZR{31};
inline constexpr AsmReg V0{32}, V1{33}, V2{34}, V3{35}, V4{36}, V5{37},
    V6{38}, V7{39}, V8{40}, V9{41}, V10{42}, V11{43}, V12{44}, V13{45},
    V14{46}, V15{47}, V16{48}, V17{49}, V18{50}, V19{51}, V20{52}, V21{53},
    V22{54}, V23{55}, V24{56}, V25{57}, V26{58}, V27{59}, V28{60}, V29{61},
    V30{62}, V31{63};
inline constexpr AsmReg NoReg{};

/// A64 condition codes (the architectural 4-bit encodings).
enum class Cond : u8 {
  EQ = 0x0,
  NE = 0x1,
  HS = 0x2, ///< unsigned >= (carry set)
  LO = 0x3, ///< unsigned <  (carry clear)
  MI = 0x4, ///< negative
  PL = 0x5, ///< positive or zero
  VS = 0x6, ///< overflow
  VC = 0x7, ///< no overflow
  HI = 0x8, ///< unsigned >
  LS = 0x9, ///< unsigned <=
  GE = 0xA, ///< signed >=
  LT = 0xB, ///< signed <
  GT = 0xC, ///< signed >
  LE = 0xD, ///< signed <=
  AL = 0xE,
};

/// Returns the negated condition (used for branch inversion).
inline Cond invert(Cond C) { return static_cast<Cond>(static_cast<u8>(C) ^ 1); }

/// A memory operand. Two forms are supported:
///  * Base + Disp: the encoder picks LDR/STR (scaled unsigned),
///    LDUR/STUR (signed 9-bit), or materializes Disp into X16 and uses a
///    register-offset access.
///  * Base + (Index << Shift): register-offset form. Shift must be 0 or
///    log2 of the access size.
struct Mem {
  AsmReg Base = NoReg;  ///< GP register or SP.
  AsmReg Index = NoReg; ///< If valid, addressing is Base + (Index << Shift).
  u8 Shift = 0;
  i64 Disp = 0; ///< Only used when Index is invalid.

  constexpr Mem() = default;
  constexpr Mem(AsmReg Base, i64 Disp = 0) : Base(Base), Disp(Disp) {}
  constexpr Mem(AsmReg Base, AsmReg Index, u8 Shift)
      : Base(Base), Index(Index), Shift(Shift) {}
};

/// Tries to encode \p Imm as an A64 logical ("bitmask") immediate for
/// \p RegSize-bit operations (32 or 64). On success fills N/immr/imms.
bool encodeLogicalImm(u64 Imm, unsigned RegSize, u32 &N, u32 &Immr, u32 &Imms);

/// The three shift-capable logical register operations plus the
/// flag-setting AND (opc field of the logical register/immediate class).
enum class LogicOp : u8 { And = 0, Orr = 1, Eor = 2, Ands = 3 };

/// Shift kinds for immediate shifts and the variable-shift instructions.
enum class ShiftOp : u8 { Lsl = 0, Lsr = 1, Asr = 2 };

/// Scalar FP arithmetic family (the value selects the opcode bits).
enum class FpOp : u8 { Add, Sub, Mul, Div, Min, Max };

/// Appends A64 instructions to the text section of an Assembler.
///
/// All integer operations take an operand size in bytes: 4 selects the
/// 32-bit (W) form, 8 the 64-bit (X) form. Loads and stores additionally
/// accept sizes 1 and 2. Scalar FP operations take 4 (S) or 8 (D).
class Emitter {
public:
  explicit Emitter(asmx::Assembler &A) : A(A), T(A.text()) {}

  asmx::Assembler &assembler() { return A; }
  u64 offset() const { return T.size(); }

  /// Appends a raw 32-bit instruction word (one bounds check).
  void word(u32 W) {
    begin(4);
    putW(W);
    commit();
  }

  // --- Moves and immediates ---------------------------------------------
  /// Register move via ORR; neither operand may be SP (use movSP).
  void movRR(u8 Sz, AsmReg Dst, AsmReg Src);
  /// Move involving SP on either side (ADD #0).
  void movSP(AsmReg Dst, AsmReg Src);
  /// Materializes a 64-bit immediate with the shortest MOVZ/MOVN/MOVK
  /// sequence (1-4 instructions).
  void movRI(AsmReg Dst, u64 Imm);

  // --- Integer arithmetic --------------------------------------------------
  /// Dst = Src1 +/- (Src2 << Shift); optionally setting flags. Register 31
  /// is XZR here.
  void addRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2, bool SetFlags = false,
              u8 Shift = 0);
  void subRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2, bool SetFlags = false,
              u8 Shift = 0);
  /// Dst = Src +/- Imm for arbitrary unsigned Imm; uses one or two
  /// ADD/SUB-immediate instructions, or X16 when Imm needs more than 24
  /// bits. Register 31 is SP here. SetFlags requires an imm12-encodable
  /// immediate.
  void addRI(u8 Sz, AsmReg Dst, AsmReg Src, u64 Imm, bool SetFlags = false);
  void subRI(u8 Sz, AsmReg Dst, AsmReg Src, u64 Imm, bool SetFlags = false);
  /// Add/subtract with carry, always flag-setting (ADCS/SBCS).
  void adcsRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2);
  void sbcsRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2);
  /// Dst = -Src.
  void negR(u8 Sz, AsmReg Dst, AsmReg Src) { subRRR(Sz, Dst, XZR, Src); }

  // --- Logical ----------------------------------------------------------
  void logicRRR(LogicOp Op, u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2);
  /// Logical with immediate; falls back to X16 materialization when the
  /// immediate is not a valid bitmask immediate.
  void logicRI(LogicOp Op, u8 Sz, AsmReg Dst, AsmReg Src, u64 Imm);
  /// Dst = ~Src (ORN with XZR).
  void mvnRR(u8 Sz, AsmReg Dst, AsmReg Src);

  // --- Compare / test --------------------------------------------------------
  void cmpRR(u8 Sz, AsmReg A, AsmReg B) { subRRR(Sz, XZR, A, B, true); }
  void cmpRI(u8 Sz, AsmReg R, u64 Imm);
  void tstRR(u8 Sz, AsmReg A, AsmReg B) {
    logicRRR(LogicOp::Ands, Sz, XZR, A, B);
  }
  void tstRI(u8 Sz, AsmReg R, u64 Imm) { logicRI(LogicOp::Ands, Sz, XZR, R, Imm); }

  // --- Multiply / divide ----------------------------------------------------
  /// Dst = Src1 * Src2 + Acc (MADD); mul == madd with Acc = XZR.
  void maddRRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2, AsmReg Acc);
  /// Dst = Acc - Src1 * Src2 (MSUB).
  void msubRRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2, AsmReg Acc);
  void mulRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2) {
    maddRRRR(Sz, Dst, Src1, Src2, XZR);
  }
  void smulh(AsmReg Dst, AsmReg Src1, AsmReg Src2);
  void umulh(AsmReg Dst, AsmReg Src1, AsmReg Src2);
  void sdivRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2);
  void udivRRR(u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2);

  // --- Shifts -----------------------------------------------------------------
  /// Variable shift (LSLV/LSRV/ASRV); the count is taken modulo Sz*8.
  void shiftRRR(ShiftOp Op, u8 Sz, AsmReg Dst, AsmReg Src, AsmReg Amt);
  /// Immediate shift via UBFM/SBFM aliases; Amt must be < Sz*8.
  void shiftRI(ShiftOp Op, u8 Sz, AsmReg Dst, AsmReg Src, u8 Amt);
  /// Dst = extract of (Hi:Lo) starting at bit Lsb (EXTR; the SHRD analog).
  void extrRRI(u8 Sz, AsmReg Dst, AsmReg Hi, AsmReg Lo, u8 Lsb);

  // --- Extensions -----------------------------------------------------------
  void sxtb(AsmReg Dst, AsmReg Src); ///< i8  -> i64
  void sxth(AsmReg Dst, AsmReg Src); ///< i16 -> i64
  void sxtw(AsmReg Dst, AsmReg Src); ///< i32 -> i64
  void uxtb(AsmReg Dst, AsmReg Src);
  void uxth(AsmReg Dst, AsmReg Src);
  void uxtw(AsmReg Dst, AsmReg Src) { movRR(4, Dst, Src); }

  // --- Conditionals -----------------------------------------------------------
  void csel(u8 Sz, AsmReg Dst, AsmReg IfTrue, AsmReg IfFalse, Cond C);
  void csinc(u8 Sz, AsmReg Dst, AsmReg IfTrue, AsmReg IfFalse, Cond C);
  /// Dst = C ? 1 : 0 (CSINC alias).
  void cset(AsmReg Dst, Cond C) { csinc(8, Dst, XZR, XZR, invert(C)); }

  // --- Loads / stores -----------------------------------------------------------
  /// Load of Sz bytes (1/2/4/8). GP destinations zero-extend to 64 bits;
  /// FP destinations (bank 1) load S/D registers with Sz 4/8.
  void ldr(u8 Sz, AsmReg Dst, Mem M);
  /// Sign-extending load into a 64-bit GP register (Sz 1/2/4).
  void ldrSext(u8 Sz, AsmReg Dst, Mem M);
  /// Store of Sz bytes from a GP (any Sz) or FP (Sz 4/8) register.
  void str(u8 Sz, Mem M, AsmReg Src);
  /// STP/LDP of two 64-bit GP registers with writeback, for prologue
  /// (pre-decrement) and epilogue (post-increment).
  void stpPre(AsmReg R1, AsmReg R2, AsmReg Base, i32 Imm);
  void ldpPost(AsmReg R1, AsmReg R2, AsmReg Base, i32 Imm);

  // --- Address computation ------------------------------------------------------
  /// Dst = Base + Disp (Base may be SP/FP); arbitrary Disp.
  void leaMem(AsmReg Dst, AsmReg Base, i64 Disp);
  /// Dst = &Sym + Addend via ADRP + ADD with relocations.
  void leaSym(AsmReg Dst, asmx::SymRef S, i64 Addend = 0);

  // --- Control flow ---------------------------------------------------------------
  void bLabel(asmx::Label L);
  void bcondLabel(Cond C, asmx::Label L);
  void cbzLabel(u8 Sz, AsmReg R, asmx::Label L);
  void cbnzLabel(u8 Sz, AsmReg R, asmx::Label L);
  void blSym(asmx::SymRef S);
  void blrReg(AsmReg R);
  void brReg(AsmReg R);
  void ret();
  void brk(u16 Imm = 0);
  void nop();
  /// Emits \p N bytes of NOPs; N must be a multiple of 4.
  void nops(unsigned N);

  // --- Scalar FP -------------------------------------------------------------------
  void fpMovRR(u8 Sz, AsmReg Dst, AsmReg Src);          ///< FMOV Dd/Sd, Dn/Sn
  void fpArith(FpOp Op, u8 Sz, AsmReg Dst, AsmReg Src1, AsmReg Src2);
  void fpNeg(u8 Sz, AsmReg Dst, AsmReg Src);
  void fpSqrt(u8 Sz, AsmReg Dst, AsmReg Src);
  void fpCmp(u8 Sz, AsmReg A, AsmReg B);                ///< FCMP
  void fpCsel(u8 Sz, AsmReg Dst, AsmReg IfTrue, AsmReg IfFalse, Cond C);
  void fpCvt(u8 SrcSz, AsmReg Dst, AsmReg Src);         ///< FCVT S<->D
  void cvtSiToFp(u8 IntSz, u8 FpSz, AsmReg Dst, AsmReg Src); ///< SCVTF
  void cvtFpToSi(u8 FpSz, u8 IntSz, AsmReg Dst, AsmReg Src); ///< FCVTZS
  void fmovToFp(u8 Sz, AsmReg Dst, AsmReg Src);   ///< GP -> FP bit copy
  void fmovFromFp(u8 Sz, AsmReg Dst, AsmReg Src); ///< FP -> GP bit copy

  // --- Raw access (prologue patching) ------------------------------------------------
  asmx::Section &textSection() { return T; }
  /// Patches the two-instruction `sub sp, sp, #lo; sub sp, sp, #hi, lsl 12`
  /// frame allocation emitted at \p Off for the final \p FrameSize.
  static void patchFrameSub(asmx::Section &T, u64 Off, u32 FrameSize);
  /// Emits the patchable frame allocation placeholder (8 bytes).
  void frameSubPlaceholder();

private:
  static constexpr u32 sf(u8 Sz) { return Sz == 8 ? (1u << 31) : 0; }

  // --- Batched emission -------------------------------------------------
  // Every emitter call reserves its maximum encoded length once (begin),
  // writes raw instruction words through the cursor (putW), and commits
  // the final length (commit): one bounds check per emitted instruction
  // sequence instead of one per word (see support::ByteBuffer), exactly
  // like the x64 encoder. Multi-word sequences (immediate
  // materialization, out-of-range displacements) reserve their worst
  // case up front and route through the *In() helpers, which require an
  // open cursor.
  void begin(size_t MaxBytes = 4) {
    assert(!P && "instruction already in progress");
    P = T.writeCursor(MaxBytes);
  }
  void commit() {
    T.commitCursor(P);
    P = nullptr;
  }
  /// Section offset of the cursor (valid between begin and commit).
  u64 off() const { return T.cursorOffset(P); }
  void putW(u32 W) {
    P[0] = static_cast<u8>(W);
    P[1] = static_cast<u8>(W >> 8);
    P[2] = static_cast<u8>(W >> 16);
    P[3] = static_cast<u8>(W >> 24);
    P += 4;
  }

  /// movRI body writing through an open cursor (max 16 bytes).
  void movRIIn(AsmReg Dst, u64 Imm);
  /// ADD/SUB with arbitrary immediate through an open cursor (max 20
  /// bytes, including a possible X16 materialization).
  void addSubRIIn(u8 Sz, bool SubOp, AsmReg Dst, AsmReg Src, u64 Imm,
                  bool SetFlags);

  /// Emits a load/store for the operand size (SizeLog2), operation class
  /// opc, and register class V; handles all three addressing forms.
  void ldst(u8 SizeLog2, u32 Opc, bool V, AsmReg Rt, Mem M);

  asmx::Assembler &A;
  asmx::Section &T;
  u8 *P = nullptr; ///< Pending-instruction write cursor.
};

} // namespace tpde::a64

#endif // TPDE_A64_ENCODER_H
