//===- core/CompilerBase.h - TPDE single-pass code generator ----*- C++ -*-===//
///
/// \file
/// The code generation pass of the TPDE framework (paper §3.4). It drives
/// compilation of whole modules: for every function it runs the analysis
/// pass and then compiles block by block in layout order, calling back into
/// the derived compiler for instruction semantics. The framework owns
/// register allocation (greedy, round-robin eviction, fixed-register loop
/// heuristic), value spilling, stack frame slots, phi moves with
/// parallel-move/cycle resolution, and block-boundary register state.
///
/// Class layering (all static, via CRTP — no virtual calls, §3.1.4):
///
///   CompilerBase<Adapter, Derived, Config>     (this file; IR/target agnostic)
///      ^-- CompilerX64<Adapter, Derived>       (target mixin: ABI, prologue)
///             ^-- <IR>CompilerX64              (instruction compilers)
///
/// Derived must provide:
///   emitMoveRR(bank, size, dst, src)       register-register copy
///   emitSlotStore(bank, size, off, src)    spill store to [fp + off]
///   emitSlotLoad(bank, size, dst, off)     reload from [fp + off]
///   emitJumpLabel(label)                   unconditional jump
///   materializeConstLike(val, part, dst)   constants/globals/stack vars
///   beginFunc(sym) / finishFunc(sym)       prologue placeholder + patching
///   setupArguments()                       argument assignment init
///   compileInst(val) -> bool               one IR instruction
///   defineGlobals()                        module-level data emission
///   forEachStackVar(cb(size, align))       static stack variables
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_COMPILERBASE_H
#define TPDE_CORE_COMPILERBASE_H

#include "asmx/Assembler.h"
#include "core/Adapter.h"
#include "core/Analyzer.h"
#include "core/Assignment.h"
#include "core/RegFile.h"
#include "support/Diag.h"
#include "support/SmallVector.h"

#include <array>
#include <vector>

namespace tpde::core {

/// Ablation switch (bench/ablation_fixed_regs): disables the §3.4.5
/// fixed-register heuristic for loop-carried values.
inline bool DisableFixedRegHeuristic = false;

/// A location a value (part) can occupy for parallel-move resolution.
struct MoveLoc {
  enum Kind : u8 { None, InReg, Slot, Const } K = None;
  u8 RegId = 0xFF;
  i32 Off = 0;

  static MoveLoc reg(Reg R) { return MoveLoc{InReg, R.Id, 0}; }
  static MoveLoc slot(i32 Off) { return MoveLoc{Slot, 0xFF, Off}; }
  static MoveLoc konst() { return MoveLoc{Const, 0xFF, 0}; }
  bool operator==(const MoveLoc &O) const {
    return K == O.K && RegId == O.RegId && Off == O.Off;
  }
};

template <IRAdapter Adapter, typename Derived, typename Config>
class CompilerBase {
public:
  using ValRef = typename Adapter::ValRef;
  using BlockRef = typename Adapter::BlockRef;
  using AnalyzerT = Analyzer<Adapter>;

  /// A pending parallel move (phi edges, call arguments, returns).
  struct PendingMove {
    MoveLoc Dst;
    MoveLoc Src;
    ValRef SrcVal{}; ///< For constant materialization.
    u8 SrcPart = 0;
    u8 Bank = 0;
    u8 Size = 8;
    bool Done = false;
  };

  /// Pending-move buffer type; inline storage covers typical phi/call
  /// cardinalities so collecting moves does not allocate.
  using MoveVec = support::SmallVector<PendingMove, 16>;

  CompilerBase(Adapter &A, asmx::Assembler &Asm) : A(A), Asm(Asm), An(A) {}

  Derived *derived() { return static_cast<Derived *>(this); }

  // =====================================================================
  // Value part references (paper §3.4.3). RAII: holding a reference locks
  // the register; dropping a use decrements the remaining-use count and
  // frees registers/slots when the value dies.
  // =====================================================================
  class ValuePartRef {
  public:
    ValuePartRef() = default;
    ValuePartRef(CompilerBase *C, ValRef V, u32 VN, u8 Part, bool IsUse)
        : C(C), Val(V), VN(VN), Part(Part), IsUse(IsUse) {
      Bank = C->A.valPartBank(V, Part);
      Size = static_cast<u8>(C->A.valPartSize(V, Part));
      ConstLike = VN == ~0u;
    }
    ValuePartRef(ValuePartRef &&O) noexcept { *this = std::move(O); }
    ValuePartRef &operator=(ValuePartRef &&O) noexcept {
      if (this == &O)
        return *this;
      reset();
      C = O.C;
      Val = O.Val;
      VN = O.VN;
      Part = O.Part;
      Bank = O.Bank;
      Size = O.Size;
      IsUse = O.IsUse;
      ConstLike = O.ConstLike;
      Locked = O.Locked;
      TmpReg = O.TmpReg;
      O.C = nullptr;
      return *this;
    }
    ValuePartRef(const ValuePartRef &) = delete;
    ValuePartRef &operator=(const ValuePartRef &) = delete;
    ~ValuePartRef() { reset(); }

    bool valid() const { return C != nullptr; }
    /// True for constants/globals/stack-var addresses: no assignment; the
    /// derived compiler materializes them on demand.
    bool isConstLike() const { return ConstLike; }
    /// The IR value handle (e.g., for immediate-operand folding).
    ValRef irValue() const { return Val; }
    u8 part() const { return Part; }
    u8 bank() const { return Bank; }
    u8 size() const { return Size; }
    u32 valNum() const { return VN; }

    bool hasReg() const {
      if (ConstLike)
        return TmpReg.isValid();
      return C->Assigns[VN].Parts[Part].inReg();
    }
    Reg curReg() const {
      if (ConstLike)
        return TmpReg;
      return Reg(C->Assigns[VN].Parts[Part].RegId);
    }
    /// True if the value currently has a valid stack-slot copy.
    bool inMemory() const {
      return !ConstLike && C->Assigns[VN].Parts[Part].stackValid();
    }
    /// Frame offset of this part's slot (requires inMemory()).
    i32 frameOff() const {
      assert(inMemory() && "no valid stack copy");
      return C->Assigns[VN].FrameOff + 8 * Part;
    }

    /// Ensures the value part is in a register (reloading or materializing
    /// as needed), locks it, and returns it.
    Reg asReg() {
      assert(C && "empty reference");
      if (ConstLike) {
        if (!TmpReg.isValid()) {
          TmpReg = C->allocRegRaw(Bank);
          C->Regs.markUsed(TmpReg, ~0u, 0);
          C->Regs.lock(TmpReg);
          C->derived()->materializeConstLike(Val, Part, TmpReg);
        }
        return TmpReg;
      }
      Assignment &As = C->Assigns[VN];
      ValuePart &P = As.Parts[Part];
      if (!P.inReg()) {
        Reg R = C->allocPartReg(VN, Part, Bank);
        assert(P.stackValid() && "value lost: neither register nor stack");
        C->derived()->emitSlotLoad(Bank, 8, R, As.FrameOff + 8 * Part);
      }
      lockIfNeeded();
      return Reg(P.RegId);
    }

    /// For definitions: allocates a register for the result (no load).
    Reg allocReg() {
      assert(!ConstLike && !IsUse && "allocReg on a use/constant");
      Assignment &As = C->Assigns[VN];
      ValuePart &P = As.Parts[Part];
      if (!P.inReg())
        C->allocPartReg(VN, Part, Bank);
      lockIfNeeded();
      return Reg(P.RegId);
    }

    /// Marks the register contents as modified: the stack copy (if any)
    /// no longer matches and must be rewritten on eviction.
    void setModified() {
      if (ConstLike)
        return;
      C->Assigns[VN].Parts[Part].Flags &= ~ValuePart::StackValid;
    }

    /// Releases the reference early (unlock, use-count bookkeeping).
    void reset() {
      if (!C)
        return;
      if (ConstLike) {
        if (TmpReg.isValid()) {
          C->Regs.unlock(TmpReg);
          C->Regs.markFree(TmpReg);
        }
      } else {
        if (Locked)
          C->Regs.unlock(Reg(C->Assigns[VN].Parts[Part].RegId));
        if (IsUse)
          C->decRef(VN);
        else if (C->Assigns[VN].RefCount == 0 &&
                 C->An.rangeEndsInBlock(VN, C->CurBlock))
          C->freeValue(VN);
      }
      C = nullptr;
    }

    /// Remaining uses including the one held by this reference.
    u32 remainingUses() const {
      return ConstLike ? 0 : C->Assigns[VN].RefCount;
    }
    /// True if this use is the last one and the live range ends here, so
    /// the register may be overwritten/reused (paper §3.4.3 step 3).
    bool canReuseReg() const {
      if (ConstLike || !IsUse)
        return false;
      const Assignment &As = C->Assigns[VN];
      return As.RefCount == 1 && C->An.rangeEndsInBlock(VN, C->CurBlock) &&
             !As.Parts[Part].isFixed();
    }

    /// Locks the current register (if any) for this reference's lifetime,
    /// preventing eviction during parallel-move collection.
    void lockReg() {
      if (!ConstLike && hasReg())
        lockIfNeeded();
    }

    /// Current location for parallel-move collection.
    MoveLoc loc() const {
      if (ConstLike)
        return TmpReg.isValid() ? MoveLoc::reg(TmpReg) : MoveLoc::konst();
      if (hasReg())
        return MoveLoc::reg(curReg());
      assert(inMemory() && "value lost");
      return MoveLoc::slot(C->Assigns[VN].FrameOff + 8 * Part);
    }

  private:
    void lockIfNeeded() {
      if (Locked)
        return;
      C->Regs.lock(Reg(C->Assigns[VN].Parts[Part].RegId));
      Locked = true;
    }

    friend class CompilerBase;
    CompilerBase *C = nullptr;
    ValRef Val{};
    u32 VN = ~0u;
    u8 Part = 0;
    u8 Bank = 0;
    u8 Size = 8;
    bool IsUse = false;
    bool ConstLike = false;
    bool Locked = false;
    Reg TmpReg;
  };

  /// An unevictable temporary register (paper §3.4.3 step 4).
  class ScratchReg {
  public:
    ScratchReg() = default;
    explicit ScratchReg(CompilerBase *C) : C(C) {}
    ScratchReg(ScratchReg &&O) noexcept { *this = std::move(O); }
    ScratchReg &operator=(ScratchReg &&O) noexcept {
      if (this == &O)
        return *this;
      reset();
      C = O.C;
      R = O.R;
      O.R = Reg();
      return *this;
    }
    ScratchReg(const ScratchReg &) = delete;
    ScratchReg &operator=(const ScratchReg &) = delete;
    ~ScratchReg() { reset(); }

    /// Allocates any register from \p Bank (optionally restricted).
    Reg alloc(u8 Bank, u32 AllowMask = ~0u) {
      assert(C && !R.isValid() && "scratch already allocated");
      R = C->allocRegRaw(Bank, AllowMask);
      C->Regs.markUsed(R, ~0u, 0);
      C->Regs.lock(R);
      return R;
    }
    /// Claims a specific register, evicting its current owner.
    Reg allocSpecific(Reg Want) {
      assert(C && !R.isValid() && "scratch already allocated");
      C->evictSpecific(Want);
      R = Want;
      C->Regs.markUsed(R, ~0u, 0);
      C->Regs.lock(R);
      return R;
    }
    Reg cur() const { return R; }
    bool isValid() const { return R.isValid(); }
    void reset() {
      if (R.isValid()) {
        C->Regs.unlock(R);
        C->Regs.markFree(R);
        R = Reg();
      }
    }

  private:
    friend class CompilerBase;
    CompilerBase *C = nullptr;
    Reg R;
  };

  // =====================================================================
  // Public API for instruction compilers
  // =====================================================================

  /// Handle for operand \p Part of value \p V (a use).
  ValuePartRef valRef(ValRef V, u8 Part) {
    if (A.isConstLike(V))
      return ValuePartRef(this, V, ~0u, Part, /*IsUse=*/true);
    u32 VN = A.valNumber(V);
    assert(Assigns[VN].Epoch == CurEpoch && "use before definition");
    return ValuePartRef(this, V, VN, Part, /*IsUse=*/true);
  }

  /// Handle for result \p Part of value \p V (a definition).
  ValuePartRef resultRef(ValRef V, u8 Part) {
    u32 VN = A.valNumber(V);
    ensureAssignment(V, VN);
    return ValuePartRef(this, V, VN, Part, /*IsUse=*/false);
  }

  /// Result handle that tries to reuse \p Op's register when this is its
  /// last use (paper Listing 1, result_ref_will_overwrite): on success the
  /// register is transferred; otherwise a fresh register is allocated and
  /// the operand's value copied into it. Either way the returned reference
  /// has a register holding the operand value, ready to be overwritten.
  ValuePartRef resultRefReuse(ValRef V, u8 Part, ValuePartRef &&Op) {
    ValuePartRef Res = resultRef(V, Part);
    ValuePart &RP = Assigns[Res.VN].Parts[Part];
    if (!RP.inReg() && !Op.isConstLike() && Op.canReuseReg() && Op.hasReg() &&
        Op.bank() == Res.bank()) {
      // Transfer the register from the dying operand to the result.
      Reg R = Op.curReg();
      if (Op.Locked) {
        Regs.unlock(R);
        Op.Locked = false;
      }
      Assigns[Op.VN].Parts[Op.Part].RegId = 0xFF;
      Regs.markFree(R);
      Regs.markUsed(R, Res.VN, Part);
      RP.RegId = R.Id;
      RP.Flags &= ~ValuePart::StackValid;
      Regs.lock(R);
      Res.Locked = true;
      Op.reset();
      return Res;
    }
    // Copy path.
    Reg Dst = Res.allocReg();
    emitToReg(Dst, Op);
    Res.setModified();
    Op.reset();
    return Res;
  }

  ScratchReg scratch() { return ScratchReg(this); }

  /// Copies the current value of \p Op into \p Dst.
  void emitToReg(Reg Dst, ValuePartRef &Op) {
    if (Op.isConstLike() && !Op.hasReg()) {
      derived()->materializeConstLike(Op.irValue(), Op.part(), Dst);
      return;
    }
    if (Op.hasReg()) {
      if (!(Op.curReg() == Dst))
        derived()->emitMoveRR(Op.bank(), 8, Dst, Op.curReg());
      return;
    }
    assert(Op.inMemory() && "operand value lost");
    derived()->emitSlotLoad(Op.bank(), 8, Dst, Op.frameOff());
  }

  /// Evicts whatever occupies \p R (spilling if dirty); afterwards R is
  /// free. Used for instructions with fixed register constraints.
  void evictSpecific(Reg R) {
    if (!Regs.isUsed(R))
      return;
    assert(!Regs.isLocked(R) && "evicting a locked register");
    assert(!Regs.isFixed(R) && "evicting a fixed register");
    u32 Owner = Regs.ownerVal(R);
    assert(Owner != ~0u && "evicting an anonymous scratch register");
    spillPart(Owner, Regs.ownerPart(R));
    Assigns[Owner].Parts[Regs.ownerPart(R)].RegId = 0xFF;
    Regs.markFree(R);
  }

  /// Label of a successor block (bound when the block is compiled).
  asmx::Label blockLabel(BlockRef B) {
    return BlockLabels[static_cast<u32>(A.blockAux(B))];
  }
  u32 blockIdx(BlockRef B) { return static_cast<u32>(A.blockAux(B)); }
  u32 curBlockIdx() const { return CurBlock; }
  bool blockIsNext(BlockRef B) { return blockIdx(B) == CurBlock + 1; }

  const AnalyzerT &analyzer() const { return An; }
  Adapter &adapter() { return A; }
  asmx::Assembler &assembler() { return Asm; }

  /// Symbol of function \p FuncIdx, materialized on demand: the dense
  /// compile paths (compileModule/recompileModule) register every
  /// function up front and this is a plain cached read, while the sparse
  /// range path (compileFunctionRange) creates the symbol at first use —
  /// a shard compile touching K call targets pays O(K), not O(module).
  /// The cache is epoch-guarded (asmx::EpochSymCache), so invalidating
  /// it between shard compiles is O(1).
  asmx::SymRef funcSym(u32 FuncIdx) {
    return FuncSyms.sym(FuncIdx, SymEpoch, [&] {
      auto F = A.funcRef(FuncIdx);
      return Asm.createSymbol(A.funcName(F), A.funcLinkage(F),
                              /*IsFunc=*/true);
    });
  }

  /// Epoch of the current module compile's symbol materialization caches
  /// (funcSym and the derived compiler's global-symbol table). Bumped
  /// whenever the assembler's symbol table restarts; a cache slot stamped
  /// with an older epoch holds a stale SymRef and must be re-created.
  u64 moduleSymEpoch() const { return SymEpoch; }

  /// Frame offset of stack variable index \p I.
  i32 stackVarOff(u32 I) const { return StackVarOffs[I]; }

  // =====================================================================
  // Branch generation (paper §3.4.5)
  // =====================================================================

  /// True if edges into \p B give up the register state: the target has
  /// multiple predecessors or does not immediately follow in layout.
  bool branchNeedsSpill(BlockRef B) {
    u32 Idx = blockIdx(B);
    return An.block(Idx).NumPreds > 1 || Idx != CurBlock + 1;
  }

  /// Spills all dirty registers whose values are live at the entry of any
  /// spill-needing successor; fixed registers are exempt.
  void spillBeforeBranch(std::initializer_list<BlockRef> Succs) {
    u32 NeedIdx[4];
    unsigned NumNeed = 0;
    for (BlockRef S : Succs)
      if (branchNeedsSpill(S))
        NeedIdx[NumNeed++] = blockIdx(S);
    if (!NumNeed)
      return;
    forEachOwnedReg([&](Reg R, u32 VN, u8 Part) {
      if (Regs.isFixed(R))
        return;
      for (unsigned I = 0; I < NumNeed; ++I) {
        if (An.liveAt(VN, NeedIdx[I])) {
          spillPart(VN, Part);
          return;
        }
      }
    });
  }

  /// Spills every dirty, non-fixed register. Used before conditional
  /// branches with per-edge phi moves: the move code of one edge must not
  /// implicitly spill state the other edge relies on.
  void spillAllDirty() {
    forEachOwnedReg([&](Reg R, u32 VN, u8 Part) {
      if (!Regs.isFixed(R))
        spillPart(VN, Part);
    });
  }

  /// Emits an unconditional branch to \p Target: spill, phi moves, jump
  /// (elided on fallthrough).
  void generateBranch(BlockRef Target) {
    spillBeforeBranch({Target});
    movePhis(Target);
    if (!blockIsNext(Target))
      derived()->emitJumpLabel(blockLabel(Target));
  }

  /// Emits a two-way conditional branch. \p EmitJcc emits the conditional
  /// jump to a label, optionally with inverted condition; the framework
  /// handles spilling, per-edge phi moves (critical edges become inline
  /// move blocks, equivalent to edge splitting), and fallthrough.
  template <typename EmitJccFn>
  void generateCondBranch(BlockRef TrueB, BlockRef FalseB, EmitJccFn EmitJcc) {
    if (blockIdx(TrueB) == blockIdx(FalseB)) {
      generateBranch(TrueB);
      return;
    }
    spillBeforeBranch({TrueB, FalseB});
    bool MovesT = edgeHasPhiMoves(TrueB);
    bool MovesF = edgeHasPhiMoves(FalseB);
    if (MovesT || MovesF) {
      // Per-edge move code must not spill (the other path would see stale
      // StackValid flags); make everything clean up front.
      spillAllDirty();
    }
    if (!MovesT && !MovesF) {
      if (blockIsNext(FalseB)) {
        EmitJcc(blockLabel(TrueB), false);
      } else if (blockIsNext(TrueB)) {
        EmitJcc(blockLabel(FalseB), true);
      } else {
        EmitJcc(blockLabel(TrueB), false);
        derived()->emitJumpLabel(blockLabel(FalseB));
      }
      return;
    }
    if (MovesT && !MovesF) {
      asmx::Label Skip =
          blockIsNext(FalseB) ? Asm.makeLabel() : blockLabel(FalseB);
      EmitJcc(Skip, true);
      movePhis(TrueB);
      derived()->emitJumpLabel(blockLabel(TrueB));
      if (blockIsNext(FalseB))
        Asm.bindLabel(Skip);
      return;
    }
    if (!MovesT && MovesF) {
      EmitJcc(blockLabel(TrueB), false);
      movePhis(FalseB);
      if (!blockIsNext(FalseB))
        derived()->emitJumpLabel(blockLabel(FalseB));
      return;
    }
    asmx::Label TakenMoves = Asm.makeLabel();
    EmitJcc(TakenMoves, false);
    movePhis(FalseB);
    derived()->emitJumpLabel(blockLabel(FalseB));
    Asm.bindLabel(TakenMoves);
    movePhis(TrueB);
    if (!blockIsNext(TrueB))
      derived()->emitJumpLabel(blockLabel(TrueB));
  }

  // =====================================================================
  // Module driver
  // =====================================================================

  /// Compiles all functions of the adapter's module. Returns false if any
  /// instruction could not be compiled. The assembler must be fresh (or
  /// reset()); use recompileModule() to recompile with symbol reuse.
  bool compileModule() {
    return compileModuleImpl</*EmitData=*/true>(0, A.funcCount(),
                                               /*ManageAsm=*/false);
  }

  /// Recompiles the module into the same assembler, reusing the interned
  /// symbol table built by the previous compile (module-level symbol
  /// batching): sections and relocations are rewound, but the per-module
  /// createSymbol pass is skipped entirely. Falls back to a full reset +
  /// compile when the assembler was reset (or never saw this module).
  bool recompileModule() {
    return compileModuleImpl</*EmitData=*/true>(0, A.funcCount(),
                                               /*ManageAsm=*/true);
  }

  /// Shard entry point for the parallel module driver: compiles and
  /// defines only the functions in [Begin, End). Runs in *sparse* symbol
  /// mode — no module-level registration pass at all: the shard's own
  /// function symbols, its call targets, and any referenced globals are
  /// materialized at first use (funcSym() / the derived compiler's
  /// global-symbol accessor), so the assembler's table — and with it the
  /// fragment snapshot and merge cost — is O(defined + referenced) for
  /// the shard, never O(module). Cross-shard references still relocate by
  /// name: Assembler::mergeFrom() binds the on-demand declarations to the
  /// defining shard's symbols. Global *data* is not emitted — the driver
  /// merges it from a compileGlobalsOnly() fragment. Manages the
  /// assembler itself (sparse rewind; cost proportional to the previous
  /// shard's table).
  bool compileFunctionRange(u32 Begin, u32 End) {
    return compileModuleImpl</*EmitData=*/false>(Begin, End,
                                                /*ManageAsm=*/true);
  }

  /// Emits the module-level fragment only: global data/BSS definitions
  /// plus declarations of every function. Counterpart of
  /// compileFunctionRange() for the parallel driver.
  bool compileGlobalsOnly() {
    return compileModuleImpl</*EmitData=*/true>(0, 0, /*ManageAsm=*/true);
  }

  /// Structured diagnostic of the last failed compile (Ok after success).
  /// Func is the module-order function index; Shard is filled in by the
  /// parallel driver, not here. The status (and its strings) is reused
  /// across compiles, keeping the clean-compile path allocation-free.
  const support::CompileStatus &status() const { return Status; }

  /// EmitData selects between the two module symbol strategies:
  ///
  ///  * EmitData=true (compileModule/recompileModule/compileGlobalsOnly):
  ///    the *dense* mode — global data is emitted and every module symbol
  ///    is registered up front (once per module compile; the symbol-
  ///    batching cache can skip even that on a recompile).
  ///  * EmitData=false (compileFunctionRange): the *sparse* mode — no
  ///    module-level registration pass. Symbols are materialized on
  ///    demand (funcSym(), the derived compiler's global accessor), so a
  ///    shard compile costs O(defined + referenced) symbol records. This
  ///    mode requires the derived compiler to provide declareGlobals()
  ///    (prepare the on-demand global-symbol cache, register nothing) — a
  ///    hard compile error at the call site, not a runtime assert — while
  ///    plain compileModule() keeps working for back-ends that have not
  ///    opted into parallel range compilation yet (both TIR targets have;
  ///    see TirCompilerX64/TirCompilerA64).
  template <bool EmitData>
  bool compileModuleImpl(u32 Begin, u32 End, bool ManageAsm) {
    Status.clear();
    // Optional adapter capacity hints: size the per-function scratch for
    // the module's largest function up front so the compile loop never
    // grows it incrementally (docs/PERF.md).
    if constexpr (requires { A.maxValueCount(); A.maxBlockCount(); }) {
      Assigns.reserve(A.maxValueCount());
      BlockLabels.reserve(A.maxBlockCount());
      An.reserve(A.maxValueCount(), A.maxBlockCount());
    }
    u32 N = A.funcCount();
    if constexpr (!EmitData) {
      // Sparse shard compile. The rewind drops the previous shard's
      // (sparse) symbol table at a cost proportional to that table — a
      // full reset() would refill the whole interned-name map, which for
      // a worker that has visited many shards is O(module) again. The
      // on-demand caches are invalidated by one epoch bump, and the
      // dense-mode cache is disarmed: the table no longer holds any
      // watermark-prefixed module registration.
      assert(ManageAsm && "range compiles always manage the assembler");
      Asm.rewindForRecompile(0);
      SymCacheValid = false;
      ++SymEpoch;
      sizeSymCaches(N);
      derived()->declareGlobals();
    } else {
      // Globals participate in the cache key where the derived compiler
      // exposes a count: adding/removing a module global between
      // recompiles must force the fallback, or reuse would index a stale
      // GlobalSyms table. (Renaming symbols while keeping counts is not
      // detected — the reuse contract is "same module", this guard just
      // downgrades the common mutation from UB to a clean rebuild.)
      u32 Globals = 0;
      if constexpr (requires { derived()->moduleGlobalCount(); })
        Globals = derived()->moduleGlobalCount();
      bool Reuse = false;
      if (ManageAsm) {
        // Module-level symbol batching: if the assembler still carries
        // the symbol table this compiler registered (same reset epoch,
        // same function and global counts), rewind to it instead of
        // rebuilding.
        if (SymCacheValid && SymCacheEpoch == Asm.resetEpoch() &&
            SymCacheFuncCount == N && SymCacheGlobalCount == Globals &&
            SymCacheWatermark <= Asm.symbolCount()) {
          Asm.rewindForRecompile(SymCacheWatermark);
          Reuse = true;
        } else {
          Asm.reset();
          SymCacheValid = false;
        }
      }
      if (!Reuse) {
        // The table restarts: every cached SymRef (funcSym, the derived
        // global table) is stale. On the reuse path the epoch is kept —
        // the rewound table preserves the registered prefix, so the
        // caches stay valid and the per-module createSymbol pass is
        // skipped entirely.
        ++SymEpoch;
        sizeSymCaches(N);
      }
      derived()->defineGlobals();
      if (!Reuse) {
        // Dense registration pass: every slot is stale after the epoch
        // bump above, so funcSym() materializes each in module order.
        for (u32 I = 0; I < N; ++I)
          funcSym(I);
        SymCacheValid = true;
        SymCacheEpoch = Asm.resetEpoch();
        SymCacheWatermark = Asm.symbolCount();
        SymCacheFuncCount = N;
        SymCacheGlobalCount = Globals;
      }
      assert(Asm.symbolCount() == SymCacheWatermark &&
             "module symbol setup must be identical on the reuse path");
    }
    if (End > N)
      End = N;
    for (u32 I = Begin; I < End; ++I) {
      auto F = A.funcRef(I);
      if (!A.funcIsDefinition(F))
        continue;
      if (!compileFunc(F, funcSym(I))) {
        // Built from the module-order function index and name only, so a
        // serial compile and any parallel shard compile of the same bad
        // function produce the identical diagnostic.
        Status.Err = support::CompileErr::UnsupportedInst;
        Status.Func = I;
        Status.Symbol.assign(A.funcName(F));
        Status.Message.assign("unsupported instruction in function '");
        Status.Message.append(A.funcName(F));
        Status.Message.push_back('\'');
        return false;
      }
    }
    // Module-level inconsistencies (e.g. duplicate strong symbol
    // definitions) are collected, not aborted on — fail the compile here.
    if (Asm.hasError()) {
      Status.Err = Asm.errorCode();
      Status.Message.assign(Asm.errorMessage());
      return false;
    }
    return true;
  }

  bool compileFunc(typename Adapter::FuncRef F, asmx::SymRef Sym) {
    A.switchFunc(F);
    An.analyze();

    // Lazy per-function assignment state: bumping the epoch invalidates
    // every entry at once; ensureAssignment() re-initializes on demand.
    if (Assigns.size() < A.valueCount())
      Assigns.resize(A.valueCount());
    ++CurEpoch;
    Regs.reset();
    for (u8 B = 0; B < Config::NumBanks; ++B) {
      FixedPoolFree[B] = Config::FixedRegPool[B];
      UsedCalleeSaved[B] = 0;
    }
    FixedActive.clear();
    CurBlock = 0;

    // Stack variables get fixed frame offsets below the callee-save area.
    i32 Off = -static_cast<i32>(Config::CalleeSaveAreaSize);
    StackVarOffs.clear();
    derived()->forEachStackVar([&](u64 Size, u32 Align) {
      u32 Al = Align < 8 ? 8 : Align;
      Off = -static_cast<i32>(alignTo(static_cast<u64>(-Off) + Size, Al));
      StackVarOffs.push_back(Off);
    });
    Frame.reset(Off);

    Asm.resetLabels();
    BlockLabels.clear();
    for (u32 B = 0; B < An.numBlocks(); ++B)
      BlockLabels.push_back(Asm.makeLabel());

    derived()->beginFunc(Sym);
    derived()->setupArguments();

    bool PrevFallsThrough = true; // the prologue falls into the entry block
    for (u32 B = 0; B < An.numBlocks(); ++B) {
      CurBlock = B;
      Asm.bindLabel(BlockLabels[B]);
      bool KeepRegs =
          B == 0 || (An.block(B).NumPreds == 1 && PrevFallsThrough);
      if (!KeepRegs)
        resetRegisterState();
      sweepFixedRegs();
      for (auto I : A.blockInsts(An.block(B).Ref))
        if (!derived()->compileInst(I))
          return false;
      PrevFallsThrough = blockFallsThrough(B);
    }
    derived()->finishFunc(Sym);
    A.finalizeFunc();
    return true;
  }

  // =====================================================================
  // Internal register/assignment machinery (used by the mixins too)
  // =====================================================================

  Assignment &assignment(u32 VN) { return Assigns[VN]; }

  void ensureAssignment(ValRef V, u32 VN) {
    Assignment &As = Assigns[VN];
    if (As.Epoch == CurEpoch)
      return;
    As.Epoch = CurEpoch;
    As.PartCount = static_cast<u8>(A.valPartCount(V));
    assert(As.PartCount <= Assignment::MaxParts && "too many value parts");
    As.RefCount = An.liveness(VN).RefCount;
    As.FrameOff = 0;
    for (u8 P = 0; P < As.PartCount; ++P)
      As.Parts[P] = ValuePart{};
    // Fixed-register heuristic (§3.4.5): multi-block live range fully
    // inside the innermost loop of the definition.
    const auto &LR = An.liveness(VN);
    u32 Loop = An.block(LR.First).Loop;
    if (!DisableFixedRegHeuristic && Loop != 0 && LR.Last > LR.First &&
        LR.Last <= An.loop(Loop).End) {
      for (u8 P = 0; P < As.PartCount; ++P) {
        u8 Bank = A.valPartBank(V, P);
        u32 Pool = FixedPoolFree[Bank] & ~Regs.usedMask(Bank);
        if (!Pool)
          continue; // only currently-free pool registers
        u8 Idx = static_cast<u8>(countTrailingZeros(Pool));
        Reg R(Config::regId(Bank, Idx));
        FixedPoolFree[Bank] &= ~(u32(1) << Idx);
        Regs.markUsed(R, VN, P);
        Regs.markFixed(R);
        As.Parts[P].RegId = R.Id;
        As.Parts[P].Flags |= ValuePart::FixedReg;
        UsedCalleeSaved[Bank] |= u32(1) << Idx;
      }
      FixedActive.push_back(VN);
    }
  }

  /// Allocates a register in \p Bank (free or by eviction); raw: the
  /// caller must mark it used.
  Reg allocRegRaw(u8 Bank, u32 AllowMask = ~0u) {
    Reg R = Regs.findFree(Bank, AllowMask);
    if (!R.isValid()) {
      R = Regs.pickEvictionCandidate(Bank, AllowMask);
      assert(R.isValid() && "all registers locked/fixed");
      u32 Owner = Regs.ownerVal(R);
      assert(Owner != ~0u && "unowned used register");
      spillPart(Owner, Regs.ownerPart(R));
      Assigns[Owner].Parts[Regs.ownerPart(R)].RegId = 0xFF;
      Regs.markFree(R);
    }
    u8 Idx = Config::idxOf(R.Id);
    if ((Config::CalleeSaved[Bank] >> Idx) & 1)
      UsedCalleeSaved[Bank] |= u32(1) << Idx;
    return R;
  }

  /// Allocates a register for (VN, Part) and records ownership.
  Reg allocPartReg(u32 VN, u8 Part, u8 Bank) {
    Reg R = allocRegRaw(Bank);
    Regs.markUsed(R, VN, Part);
    Assigns[VN].Parts[Part].RegId = R.Id;
    return R;
  }

  /// Writes the register copy of (VN, Part) to its stack slot if dirty.
  void spillPart(u32 VN, u8 Part) {
    Assignment &As = Assigns[VN];
    ValuePart &P = As.Parts[Part];
    if (P.stackValid() || !P.inReg() || P.isFixed())
      return;
    if (!As.hasSlot())
      As.FrameOff = Frame.alloc(As.PartCount > 1 ? 16 : 8);
    derived()->emitSlotStore(Config::bankOf(P.RegId), 8,
                             As.FrameOff + 8 * Part, Reg(P.RegId));
    P.Flags |= ValuePart::StackValid;
  }

  void decRef(u32 VN) {
    Assignment &As = Assigns[VN];
    assert(As.RefCount > 0 && "use count underflow");
    if (--As.RefCount == 0 && An.rangeEndsInBlock(VN, CurBlock))
      freeValue(VN);
  }

  /// Releases all registers and the frame slot of a dead value.
  void freeValue(u32 VN) {
    Assignment &As = Assigns[VN];
    for (u8 P = 0; P < As.PartCount; ++P) {
      ValuePart &Part = As.Parts[P];
      if (Part.inReg()) {
        Reg R(Part.RegId);
        if (Regs.isLocked(R))
          continue; // freed when the last reference drops
        if (Part.isFixed())
          FixedPoolFree[Config::bankOf(R.Id)] |= u32(1) << Config::idxOf(R.Id);
        Regs.markFree(R);
        Part.RegId = 0xFF;
        Part.Flags &= ~ValuePart::FixedReg;
      }
    }
    if (As.hasSlot()) {
      Frame.release(As.FrameOff, As.PartCount > 1 ? 16 : 8);
      As.FrameOff = 0;
    }
  }

  /// Clears all non-fixed register associations (block entry with unknown
  /// register state, §3.4.5).
  void resetRegisterState() {
    forEachOwnedReg([&](Reg R, u32 VN, u8 Part) {
      if (Regs.isFixed(R))
        return;
      assert(!Regs.isLocked(R) && "locked register at block boundary");
      ValuePart &P = Assigns[VN].Parts[Part];
      assert((P.stackValid() || Assigns[VN].RefCount == 0) &&
             "dirty live register dropped at block boundary");
      P.RegId = 0xFF;
      Regs.markFree(R);
    });
  }

  /// Frees fixed registers whose values died in earlier blocks.
  void sweepFixedRegs() {
    for (size_t I = 0; I < FixedActive.size();) {
      u32 VN = FixedActive[I];
      if (An.liveness(VN).Last >= CurBlock) {
        ++I;
        continue;
      }
      Assignment &As = Assigns[VN];
      for (u8 P = 0; P < As.PartCount; ++P) {
        ValuePart &Part = As.Parts[P];
        if (Part.isFixed() && Part.inReg()) {
          Reg R(Part.RegId);
          FixedPoolFree[Config::bankOf(R.Id)] |= u32(1) << Config::idxOf(R.Id);
          Regs.markFree(R);
          Part.RegId = 0xFF;
          Part.Flags &= ~ValuePart::FixedReg;
        }
      }
      if (As.hasSlot()) {
        Frame.release(As.FrameOff, As.PartCount > 1 ? 16 : 8);
        As.FrameOff = 0;
      }
      FixedActive[I] = FixedActive.back();
      FixedActive.pop_back();
    }
  }

  /// Iterates (register, owner value, part) over all value-owned registers.
  template <typename Fn> void forEachOwnedReg(Fn Cb) {
    for (u8 Bank = 0; Bank < Config::NumBanks; ++Bank) {
      for (u32 M = Regs.usedMask(Bank); M;) {
        u8 Idx = static_cast<u8>(countTrailingZeros(M));
        M &= M - 1;
        Reg R(Config::regId(Bank, Idx));
        u32 VN = Regs.ownerVal(R);
        if (VN != ~0u)
          Cb(R, VN, Regs.ownerPart(R));
      }
    }
  }

  // =====================================================================
  // Parallel moves (phi edges §3.4.5, call arguments, returns)
  // =====================================================================

  /// Emits the pending moves respecting read-before-write order; cycles
  /// are broken with scratch registers. Scratch allocation can be
  /// restricted per bank via \p ScratchAllow (e.g., to avoid call
  /// argument registers).
  void resolveParallelMoves(MoveVec &Moves,
                            const std::array<u32, Config::NumBanks>
                                &ScratchAllow) {
    auto &CycleTemps = MoveCycleTemps; // scratch member; not reentrant
    assert(CycleTemps.empty() && "parallel move resolution is not reentrant");
    unsigned Remaining = 0;
    for (const PendingMove &M : Moves)
      if (!M.Done)
        ++Remaining;
    while (Remaining) {
      bool Progress = false;
      for (PendingMove &M : Moves) {
        if (M.Done)
          continue;
        bool Blocked = false;
        for (const PendingMove &O : Moves)
          if (!O.Done && &O != &M && O.Src == M.Dst)
            Blocked = true;
        if (Blocked)
          continue;
        emitLocMove(M, ScratchAllow);
        M.Done = true;
        --Remaining;
        Progress = true;
      }
      if (Progress)
        continue;
      // Cycle: save one destination into a temp and redirect its readers.
      PendingMove *M = nullptr;
      for (PendingMove &Cand : Moves)
        if (!Cand.Done) {
          M = &Cand;
          break;
        }
      assert(M && "no pending move in cycle");
      ScratchReg Temp(this);
      Reg T = Temp.alloc(M->Bank, ScratchAllow[M->Bank]);
      if (M->Dst.K == MoveLoc::InReg)
        derived()->emitMoveRR(M->Bank, 8, T, Reg(M->Dst.RegId));
      else
        derived()->emitSlotLoad(M->Bank, 8, T, M->Dst.Off);
      MoveLoc TempLoc = MoveLoc::reg(T);
      for (PendingMove &O : Moves)
        if (!O.Done && O.Src == M->Dst)
          O.Src = TempLoc;
      CycleTemps.push_back(std::move(Temp));
    }
    CycleTemps.clear(); // releases the cycle-breaking registers
  }

  void emitLocMove(const PendingMove &M,
                   const std::array<u32, Config::NumBanks> &ScratchAllow) {
    if (M.Dst.K == MoveLoc::InReg) {
      Reg D(M.Dst.RegId);
      switch (M.Src.K) {
      case MoveLoc::Const:
        derived()->materializeConstLike(M.SrcVal, M.SrcPart, D);
        return;
      case MoveLoc::InReg:
        if (M.Src.RegId != M.Dst.RegId)
          derived()->emitMoveRR(M.Bank, 8, D, Reg(M.Src.RegId));
        return;
      case MoveLoc::Slot:
        derived()->emitSlotLoad(M.Bank, 8, D, M.Src.Off);
        return;
      default:
        TPDE_UNREACHABLE("bad source location");
      }
    }
    assert(M.Dst.K == MoveLoc::Slot && "bad destination location");
    if (M.Src.K == MoveLoc::InReg) {
      derived()->emitSlotStore(M.Bank, 8, M.Dst.Off, Reg(M.Src.RegId));
      return;
    }
    // Memory/const to memory: via scratch.
    ScratchReg Temp(this);
    Reg T = Temp.alloc(M.Bank, ScratchAllow[M.Bank]);
    if (M.Src.K == MoveLoc::Const)
      derived()->materializeConstLike(M.SrcVal, M.SrcPart, T);
    else
      derived()->emitSlotLoad(M.Bank, 8, T, M.Src.Off);
    derived()->emitSlotStore(M.Bank, 8, M.Dst.Off, T);
  }

  bool edgeHasPhiMoves(BlockRef Succ) { return !A.blockPhis(Succ).empty(); }

  /// Moves incoming values into the phi locations of \p Succ for the edge
  /// from the current block.
  void movePhis(BlockRef Succ) {
    auto Phis = A.blockPhis(Succ);
    if (Phis.empty())
      return;

    // Scratch members, reused across edges/functions (docs/PERF.md).
    auto &Moves = PhiMoves;
    auto &Holds = PhiHolds; // keeps locks and use counts
    auto &StaleRegPhis = PhiStaleRegs;
    Moves.clear();
    Holds.clear();
    StaleRegPhis.clear();

    for (ValRef Phi : Phis) {
      u32 PhiVN = A.valNumber(Phi);
      ensureAssignment(Phi, PhiVN);
      ValRef In{};
      bool Found = false;
      u32 NumInc = A.phiIncomingCount(Phi);
      for (u32 I = 0; I < NumInc; ++I) {
        if (static_cast<u32>(A.blockAux(A.phiIncomingBlock(Phi, I))) ==
            CurBlock) {
          In = A.phiIncomingValue(Phi, I);
          Found = true;
          break;
        }
      }
      assert(Found && "no phi incoming for this edge");
      (void)Found;
      Assignment &PhiAs = Assigns[PhiVN];
      bool SelfRef = !A.isConstLike(In) && A.valNumber(In) == PhiVN;

      if (SelfRef) {
        // Value unchanged on this edge; ensure the canonical location is
        // up to date, then consume the phi-edge use.
        for (u8 P = 0; P < PhiAs.PartCount; ++P) {
          ValuePart &DP = PhiAs.Parts[P];
          if (!DP.isFixed() && DP.inReg() && !DP.stackValid()) {
            if (!PhiAs.hasSlot())
              PhiAs.FrameOff = Frame.alloc(PhiAs.PartCount > 1 ? 16 : 8);
            derived()->emitSlotStore(A.valPartBank(Phi, P), 8,
                                     PhiAs.FrameOff + 8 * P, Reg(DP.RegId));
            DP.Flags |= ValuePart::StackValid;
          }
        }
        decRef(PhiVN);
        continue;
      }

      bool AnyNonFixedReg = false;
      for (u8 P = 0; P < PhiAs.PartCount; ++P) {
        ValuePart &DstPart = PhiAs.Parts[P];
        ValuePartRef SrcRef = valRef(In, P);
        PendingMove Mv;
        if (DstPart.isFixed()) {
          Mv.Dst = MoveLoc::reg(Reg(DstPart.RegId));
        } else {
          if (!PhiAs.hasSlot())
            PhiAs.FrameOff = Frame.alloc(PhiAs.PartCount > 1 ? 16 : 8);
          Mv.Dst = MoveLoc::slot(PhiAs.FrameOff + 8 * P);
          AnyNonFixedReg |= DstPart.inReg();
        }
        Mv.SrcVal = In;
        Mv.SrcPart = P;
        Mv.Bank = SrcRef.bank();
        Mv.Size = SrcRef.size();
        if (!SrcRef.isConstLike() && SrcRef.hasReg()) {
          Regs.lock(SrcRef.curReg());
          SrcRef.Locked = true;
        }
        Mv.Src = SrcRef.loc();
        Moves.push_back(Mv);
        Holds.push_back(std::move(SrcRef));
      }
      if (AnyNonFixedReg)
        StaleRegPhis.push_back(PhiVN);
      // The canonical location is rewritten on this edge.
      for (u8 P = 0; P < PhiAs.PartCount; ++P) {
        if (PhiAs.Parts[P].isFixed())
          PhiAs.Parts[P].Flags &= ~ValuePart::StackValid;
        else
          PhiAs.Parts[P].Flags |= ValuePart::StackValid;
      }
    }

    std::array<u32, Config::NumBanks> Allow;
    Allow.fill(~0u);
    resolveParallelMoves(Moves, Allow);

    // Drop stale (pre-move) register associations of rewritten phis.
    for (u32 PhiVN : StaleRegPhis) {
      Assignment &As = Assigns[PhiVN];
      for (u8 P = 0; P < As.PartCount; ++P) {
        ValuePart &Part = As.Parts[P];
        if (Part.inReg() && !Part.isFixed()) {
          Reg R(Part.RegId);
          if (!Regs.isLocked(R)) {
            Regs.markFree(R);
            Part.RegId = 0xFF;
          }
        }
      }
    }
    Holds.clear(); // drop locks/use counts before the next collection
    Moves.clear();
  }

protected:
  /// Whether execution can continue from block \p B into block B+1 with
  /// the compile-time register state remaining valid for that edge.
  bool blockFallsThrough(u32 B) {
    if (B + 1 >= An.numBlocks())
      return false;
    for (BlockRef S : A.blockSuccs(An.block(B).Ref))
      if (static_cast<u32>(A.blockAux(S)) == B + 1)
        return true;
    return false;
  }

  Adapter &A;
  asmx::Assembler &Asm;
  AnalyzerT An;
  std::vector<Assignment> Assigns;
  FrameAllocator Frame;
  RegFile<Config> Regs;
  std::vector<asmx::Label> BlockLabels;
  /// Per-function symbol cache for funcSym(); invalidated by SymEpoch.
  asmx::EpochSymCache FuncSyms;
  /// Diagnostic of the last failed module/range compile (see status()).
  support::CompileStatus Status;
  std::vector<i32> StackVarOffs;
  std::vector<u32> FixedActive;
  // Scratch buffers reused across phi edges and functions; cleared, never
  // freed (allocation policy: docs/PERF.md).
  MoveVec PhiMoves;
  support::SmallVector<ValuePartRef, 16> PhiHolds;
  support::SmallVector<u32, 16> PhiStaleRegs;
  support::SmallVector<ScratchReg, 4> MoveCycleTemps;
  u32 FixedPoolFree[Config::NumBanks] = {};
  u32 UsedCalleeSaved[Config::NumBanks] = {};
  u32 CurBlock = 0;
  /// Current function epoch for lazy Assigns invalidation (never 0).
  u32 CurEpoch = 0;
  // Module-level symbol batching cache (recompileModule): the assembler
  // symbol prefix [0, Watermark) holds exactly this module's globals +
  // function symbols, registered while the assembler was at reset epoch
  // SymCacheEpoch. Sparse range compiles disarm it — their tables carry
  // no module prefix.
  bool SymCacheValid = false;
  u64 SymCacheEpoch = 0;
  u32 SymCacheWatermark = 0;
  u32 SymCacheFuncCount = 0;
  u32 SymCacheGlobalCount = 0;
  /// Epoch of the funcSym()/global-symbol caches; bumped whenever the
  /// assembler's symbol table restarts (per shard compile in sparse
  /// mode), which invalidates every slot in O(1). Starts at 0 with all
  /// slots stamped 0 — the first compile bumps before any lookup.
  u64 SymEpoch = 0;

  /// Sizes the epoch-guarded symbol caches; steady-state no-op once the
  /// module's function count is stable (docs/PERF.md).
  void sizeSymCaches(u32 N) { FuncSyms.resize(N); }
};

} // namespace tpde::core

#endif // TPDE_CORE_COMPILERBASE_H
