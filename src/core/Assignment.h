//===- core/Assignment.h - Value assignments and frame slots ----*- C++ -*-===//
///
/// \file
/// Per-value state during the code generation pass (paper §3.4.1): the
/// stack frame slot used for spilling, the number of remaining uses, and
/// per-part register state. Assignments are stored in one dense array
/// indexed by the adapter-provided value number; single-part values are
/// compact, and up to two parts (e.g., i128) are stored inline.
///
/// Frame slots are handed out by a bump allocator with size-class free
/// lists so slots of dead values are reused (paper §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_ASSIGNMENT_H
#define TPDE_CORE_ASSIGNMENT_H

#include "support/Common.h"

#include <vector>

namespace tpde::core {

/// State of one value part.
struct ValuePart {
  /// Current register id, 0xFF if not in a register.
  u8 RegId = 0xFF;
  u8 Flags = 0;

  enum : u8 {
    /// The stack slot holds the current value; if clear and RegId is set,
    /// the register is the only location and must be spilled on eviction.
    StackValid = 1,
    /// The register is fixed for the value's whole live range (loop
    /// heuristic, §3.4.5); never evicted, never reset at block entry.
    FixedReg = 2,
  };

  bool inReg() const { return RegId != 0xFF; }
  bool stackValid() const { return Flags & StackValid; }
  bool isFixed() const { return Flags & FixedReg; }
};

/// Per-value assignment. PartCount <= 2 covers all IRs in this repo
/// (i128/data128 are the only multi-part values).
///
/// Assignments are initialized lazily per function: an entry is valid for
/// the current function iff its Epoch matches the compiler's epoch
/// counter. That way switching functions is an epoch bump instead of a
/// memset over the whole array (docs/PERF.md).
struct Assignment {
  static constexpr unsigned MaxParts = 2;

  /// Frame offset (relative to the frame pointer) of the spill slot;
  /// negative for locally allocated slots, positive for stack-passed
  /// arguments. 0 means "no slot allocated yet".
  i32 FrameOff = 0;
  u32 RefCount = 0;
  /// Function epoch this entry belongs to (0 = never initialized).
  u32 Epoch = 0;
  u8 PartCount = 0;
  ValuePart Parts[MaxParts];

  bool hasSlot() const { return FrameOff != 0; }
};

/// Bump allocator for spill slots with per-size free lists.
class FrameAllocator {
public:
  /// Starts allocation below \p FirstFree (a negative frame-pointer
  /// relative offset, e.g. after the callee-saved area and stack vars).
  void reset(i32 FirstFree) {
    Top = FirstFree;
    Free8.clear();
    Free16.clear();
  }

  /// Allocates a slot of \p Size bytes (8 or 16); returns its offset.
  i32 alloc(u32 Size) {
    assert((Size == 8 || Size == 16) && "unsupported spill slot size");
    std::vector<i32> &FreeList = Size == 8 ? Free8 : Free16;
    if (!FreeList.empty()) {
      i32 Off = FreeList.back();
      FreeList.pop_back();
      return Off;
    }
    Top -= static_cast<i32>(Size);
    return Top;
  }

  /// Returns a slot to the allocator. Positive offsets (incoming stack
  /// arguments) are not managed here and are ignored.
  void release(i32 Off, u32 Size) {
    if (Off >= 0)
      return;
    (Size == 8 ? Free8 : Free16).push_back(Off);
  }

  /// Bytes of frame used below the frame pointer so far.
  i32 lowWaterMark() const { return Top; }

private:
  i32 Top = 0;
  std::vector<i32> Free8;
  std::vector<i32> Free16;
};

} // namespace tpde::core

#endif // TPDE_CORE_ASSIGNMENT_H
