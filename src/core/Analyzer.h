//===- core/Analyzer.h - TPDE analysis pass ---------------------*- C++ -*-===//
///
/// \file
/// The analysis pass of the TPDE framework (paper §3.3). For one function
/// it performs, in order:
///
///  1. A temporary numbering of all (reachable) basic blocks, stored in the
///     adapter-provided per-block auxiliary storage.
///  2. Loop identification with the DFS-based algorithm of Wei et al.
///     [SAS'07], which also handles irreducible loops; the whole function
///     is wrapped in one pseudo-loop and a loop tree is built (like Kohn
///     et al. [ICDE'18]).
///  3. Block layout: reverse post-order, with each loop laid out
///     contiguously. The final layout index of each block is written back
///     into the auxiliary storage; the framework refers to blocks by this
///     index from then on.
///  4. Coarse liveness: every value gets a contiguous live range
///     [First, Last] of layout indices, a flag whether liveness ends at the
///     end of the Last block, and its number of uses. Uses inside a loop
///     that does not contain the definition extend the range to the end of
///     that loop.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_ANALYZER_H
#define TPDE_CORE_ANALYZER_H

#include "core/Adapter.h"
#include "support/Common.h"

#include <vector>

namespace tpde::core {

/// Result data of the analysis pass; lives until the next analyze() call.
template <typename Adapter> class Analyzer {
public:
  using BlockRef = typename Adapter::BlockRef;
  using ValRef = typename Adapter::ValRef;

  struct BlockInfo {
    BlockRef Ref;
    u32 Loop = 0;     ///< Innermost containing loop (0 = pseudo-root).
    u32 NumPreds = 0; ///< Number of CFG predecessors (reachable ones).
  };

  struct LoopInfo {
    u32 Parent = 0;
    u32 Level = 0; ///< 0 for the pseudo-root wrapping the function.
    u32 Begin = 0; ///< First layout index belonging to the loop.
    u32 End = 0;   ///< Last layout index belonging to the loop (inclusive).
  };

  struct LiveRange {
    u32 First = 0;
    u32 Last = 0;
    u32 RefCount = 0;
    /// True if liveness extends to the end of block Last (loop-carried or
    /// phi-edge use); false if it ends at the last in-block use.
    bool LastFull = false;
    bool HasDef = false;
  };

  explicit Analyzer(Adapter &A) : A(A) {}

  /// Runs the full analysis for the adapter's current function.
  void analyze() {
    numberBlocks();
    findLoops();
    layoutBlocks();
    computeLiveness();
  }

  /// Pre-sizes all scratch for functions up to the given value/block
  /// counts so steady-state analyze() calls never allocate.
  void reserve(u32 MaxValues, u32 MaxBlocks) {
    Live.reserve(MaxValues);
    TmpBlocks.reserve(MaxBlocks);
    ILoop.reserve(MaxBlocks);
    IsHeader.reserve(MaxBlocks);
    Dfsp.reserve(MaxBlocks);
    PostOrder.reserve(MaxBlocks);
    Layout.reserve(MaxBlocks);
    Visited.reserve(MaxBlocks);
    LoopOfHeader.reserve(MaxBlocks);
    TmpToLayout.reserve(MaxBlocks);
  }

  u32 numBlocks() const { return static_cast<u32>(Layout.size()); }
  const BlockInfo &block(u32 LayoutIdx) const { return Layout[LayoutIdx]; }
  u32 numLoops() const { return static_cast<u32>(Loops.size()); }
  const LoopInfo &loop(u32 Idx) const { return Loops[Idx]; }
  const LiveRange &liveness(u32 ValNum) const { return Live[ValNum]; }

  /// Layout index of a block (only valid after analyze()).
  u32 layoutIdx(BlockRef B) const {
    return static_cast<u32>(const_cast<Adapter &>(A).blockAux(B));
  }

  /// True if the value is live-in at the entry of layout block \p B.
  bool liveAt(u32 ValNum, u32 B) const {
    const LiveRange &L = Live[ValNum];
    return L.HasDef && L.First < B && B <= L.Last;
  }

  /// True if the value's live range is over at (the end of) instruction
  /// processing in block \p CurBlock once its RefCount reaches zero.
  bool rangeEndsInBlock(u32 ValNum, u32 CurBlock) const {
    const LiveRange &L = Live[ValNum];
    return L.Last < CurBlock || (L.Last == CurBlock && !L.LastFull);
  }

private:
  // --- Step 1: temporary numbering -------------------------------------
  void numberBlocks() {
    // Reachability walk from the entry; unreachable blocks are skipped
    // entirely. The adapter's aux storage holds the temporary number
    // (~0 marks "not yet reached").
    TmpBlocks.clear();
    u32 N = A.blockCount();
    for (u32 I = 0; I < N; ++I)
      A.blockAux(A.blockRef(I)) = ~u64(0);
    BlockRef Entry = A.blockRef(0);
    A.blockAux(Entry) = 0;
    TmpBlocks.push_back(Entry);
    WalkStack.clear();
    WalkStack.push_back(Entry);
    while (!WalkStack.empty()) {
      BlockRef B = WalkStack.back();
      WalkStack.pop_back();
      for (BlockRef S : A.blockSuccs(B)) {
        if (A.blockAux(S) == ~u64(0)) {
          A.blockAux(S) = TmpBlocks.size();
          TmpBlocks.push_back(S);
          WalkStack.push_back(S);
        }
      }
    }
  }

  u32 tmpIdx(BlockRef B) { return static_cast<u32>(A.blockAux(B)); }

  // --- Step 2: loop identification (Wei et al.) --------------------------
  void findLoops() {
    const u32 N = static_cast<u32>(TmpBlocks.size());
    ILoop.assign(N, ~0u);
    IsHeader.assign(N, false);
    Dfsp.assign(N, 0);
    PostOrder.clear();
    PostOrder.reserve(N);

    auto &Stack = DfsStack;
    Stack.clear();
    Visited.assign(N, 0);
    Stack.push_back({0, 0});
    Visited[0] = 1;
    Dfsp[0] = 1;
    while (!Stack.empty()) {
      DfsFrame &F = Stack.back();
      auto Succs = A.blockSuccs(TmpBlocks[F.B]);
      if (F.SuccIdx < Succs.size()) {
        u32 S = tmpIdx(Succs[F.SuccIdx++]);
        if (!Visited[S]) {
          Visited[S] = 1;
          Dfsp[S] = static_cast<u32>(Stack.size()) + 1;
          Stack.push_back({S, 0});
          continue;
        }
        if (Dfsp[S] > 0) {
          // Back edge: S is a loop header.
          IsHeader[S] = true;
          tagLoopHeader(F.B, S);
        } else if (ILoop[S] != ~0u) {
          u32 H = ILoop[S];
          if (Dfsp[H] > 0) {
            tagLoopHeader(F.B, H);
          } else {
            // Re-entry into an already-closed loop: irreducible. Climb the
            // loop chain to find an active enclosing header.
            while (ILoop[H] != ~0u) {
              H = ILoop[H];
              if (Dfsp[H] > 0) {
                tagLoopHeader(F.B, H);
                break;
              }
            }
          }
        }
        continue;
      }
      // Finished B.
      Dfsp[F.B] = 0;
      PostOrder.push_back(F.B);
      u32 Inner = ILoop[F.B];
      Stack.pop_back();
      if (!Stack.empty())
        tagLoopHeader(Stack.back().B, Inner);
    }
  }

  /// Wei et al. tag_lhead: records that \p B is inside the loop headed by
  /// \p H, maintaining innermost-first chains.
  void tagLoopHeader(u32 B, u32 H) {
    if (H == ~0u || B == H)
      return;
    u32 Cur1 = B, Cur2 = H;
    while (ILoop[Cur1] != ~0u) {
      u32 IH = ILoop[Cur1];
      if (IH == Cur2)
        return;
      if (Dfsp[IH] < Dfsp[Cur2]) {
        ILoop[Cur1] = Cur2;
        Cur1 = Cur2;
        Cur2 = IH;
      } else {
        Cur1 = IH;
      }
    }
    ILoop[Cur1] = Cur2;
  }

  // --- Step 3: layout ------------------------------------------------------
  void layoutBlocks() {
    const u32 N = static_cast<u32>(TmpBlocks.size());
    // Loop table: pseudo-root is loop 0.
    LoopOfHeader.assign(N, 0);
    Loops.clear();
    Loops.push_back(LoopInfo{0, 0, 0, N ? N - 1 : 0});
    for (u32 B = 0; B < N; ++B) {
      if (IsHeader[B]) {
        LoopOfHeader[B] = static_cast<u32>(Loops.size());
        Loops.push_back(LoopInfo{});
      }
    }
    // Loop of any block; parent of each loop.
    auto loopOfBlock = [&](u32 B) -> u32 {
      if (IsHeader[B])
        return LoopOfHeader[B];
      u32 H = ILoop[B];
      return H == ~0u ? 0 : LoopOfHeader[H];
    };
    for (u32 B = 0; B < N; ++B) {
      if (!IsHeader[B])
        continue;
      u32 L = LoopOfHeader[B];
      u32 PH = ILoop[B];
      Loops[L].Parent = PH == ~0u ? 0 : LoopOfHeader[PH];
    }
    for (u32 L = 1; L < Loops.size(); ++L) {
      // Levels: chains are short; a simple walk suffices.
      u32 Level = 0, P = L;
      while (P != 0) {
        P = Loops[P].Parent;
        ++Level;
      }
      Loops[L].Level = Level;
    }

    // Build per-loop item lists in RPO order: a block item or, at the
    // first encounter of an inner loop, a loop item. The outer and inner
    // item vectors are scratch members: reused across functions, so a
    // steady-state analyze() performs no allocation.
    if (Items.size() < Loops.size())
      Items.resize(Loops.size());
    for (size_t I = 0; I < Loops.size(); ++I)
      Items[I].clear();
    LoopAdded.assign(Loops.size(), 0);
    LoopAdded[0] = 1;
    auto ensureLoopAdded = [&](u32 L, auto &&Self) -> void {
      if (LoopAdded[L])
        return;
      LoopAdded[L] = 1;
      Self(Loops[L].Parent, Self);
      Items[Loops[L].Parent].push_back(Item{true, L});
    };
    for (auto It = PostOrder.rbegin(); It != PostOrder.rend(); ++It) {
      u32 B = *It;
      u32 L = loopOfBlock(B);
      ensureLoopAdded(L, ensureLoopAdded);
      Items[L].push_back(Item{false, B});
    }

    // Emit: blocks of a loop are contiguous in the layout.
    Layout.clear();
    Layout.reserve(N);
    TmpToLayout.assign(N, 0);
    auto emit = [&](u32 L, auto &&Self) -> void {
      Loops[L].Begin = static_cast<u32>(Layout.size());
      for (const Item &It : Items[L]) {
        if (It.IsLoop) {
          Self(It.Idx, Self);
        } else {
          TmpToLayout[It.Idx] = static_cast<u32>(Layout.size());
          BlockInfo BI;
          BI.Ref = TmpBlocks[It.Idx];
          BI.Loop = loopOfBlock(It.Idx);
          Layout.push_back(BI);
        }
      }
      Loops[L].End = static_cast<u32>(Layout.size()) - 1;
    };
    emit(0, emit);
    assert(Layout.size() == N && "layout dropped blocks");

    // Publish the final numbering through the adapter aux field and count
    // predecessors.
    for (u32 I = 0; I < N; ++I)
      A.blockAux(Layout[I].Ref) = I;
    for (u32 I = 0; I < N; ++I)
      for (BlockRef S : A.blockSuccs(Layout[I].Ref))
        ++Layout[static_cast<u32>(A.blockAux(S))].NumPreds;
  }

  // --- Step 4: liveness ---------------------------------------------------

  /// Extends \p L to cover a use in layout block \p UseBlock; crosses
  /// loops that contain the use but not the definition (L.First).
  void extendRange(LiveRange &L, u32 UseBlock, bool AtEnd) {
    u32 Ext = UseBlock;
    bool Full = AtEnd;
    u32 DefBlock = L.First;
    u32 Loop = Layout[UseBlock].Loop;
    while (Loop != 0 &&
           !(Loops[Loop].Begin <= DefBlock && DefBlock <= Loops[Loop].End)) {
      Ext = Loops[Loop].End;
      Full = true;
      Loop = Loops[Loop].Parent;
    }
    if (Ext > L.Last) {
      L.Last = Ext;
      L.LastFull = Full;
    } else if (Ext == L.Last) {
      L.LastFull |= Full;
    }
  }

  void computeLiveness() {
    // Entries are only ever read for values with a definition in the
    // CURRENT function (liveAt/rangeEndsInBlock run on register-owning
    // values, liveness() on assigned ones), and def() below
    // (re-)initializes every field — so switching functions only grows
    // the array; no per-function memset. Constant-like values never get
    // a def and are never queried.
    if (Live.size() < A.valueCount())
      Live.resize(A.valueCount());

    // All definitions are recorded before any use is scanned, so the def
    // can simply initialize the range.
    auto def = [&](ValRef V, u32 B) {
      LiveRange &L = Live[A.valNumber(V)];
      L.First = B;
      L.Last = B;
      L.RefCount = 0;
      L.LastFull = false;
      L.HasDef = true;
    };

    // Definitions: arguments in the entry block, then phis/instructions.
    for (ValRef V : A.funcArgs())
      def(V, 0);
    for (u32 B = 0; B < Layout.size(); ++B) {
      for (ValRef P : A.blockPhis(Layout[B].Ref))
        def(P, B);
      for (ValRef I : A.blockInsts(Layout[B].Ref))
        def(I, B);
    }
    // Uses. Instruction compilers take one ValuePartRef per part of an
    // operand, so each occurrence accounts for PartCount references.
    for (u32 B = 0; B < Layout.size(); ++B) {
      for (ValRef P : A.blockPhis(Layout[B].Ref)) {
        LiveRange &PL = Live[A.valNumber(P)];
        u32 NumInc = A.phiIncomingCount(P);
        for (u32 I = 0; I < NumInc; ++I) {
          ValRef V = A.phiIncomingValue(P, I);
          u32 PredIdx =
              static_cast<u32>(A.blockAux(A.phiIncomingBlock(P, I)));
          if (!A.isConstLike(V)) {
            LiveRange &L = Live[A.valNumber(V)];
            L.RefCount += A.valPartCount(V);
            extendRange(L, PredIdx, /*AtEnd=*/true);
          }
          // The phi itself is *written* at the end of every incoming
          // edge; its storage must stay live until the latest such write
          // (back edges!). This extends the range without adding a use.
          extendRange(PL, PredIdx, /*AtEnd=*/true);
        }
      }
      for (ValRef I : A.blockInsts(Layout[B].Ref)) {
        for (ValRef V : A.instOperands(I)) {
          if (A.isConstLike(V))
            continue;
          LiveRange &L = Live[A.valNumber(V)];
          L.RefCount += A.valPartCount(V);
          extendRange(L, B, /*AtEnd=*/false);
        }
      }
    }
  }

  struct DfsFrame {
    u32 B;
    u32 SuccIdx;
  };
  struct Item {
    bool IsLoop;
    u32 Idx;
  };

  Adapter &A;
  std::vector<BlockRef> TmpBlocks;
  std::vector<u32> ILoop;
  std::vector<u8> IsHeader;
  std::vector<u32> Dfsp;
  std::vector<u32> PostOrder;
  std::vector<BlockInfo> Layout;
  std::vector<LoopInfo> Loops;
  std::vector<LiveRange> Live;
  // Scratch reused across analyze() calls (allocation policy: docs/PERF.md).
  std::vector<BlockRef> WalkStack;
  std::vector<DfsFrame> DfsStack;
  std::vector<u8> Visited;
  std::vector<u32> LoopOfHeader;
  std::vector<std::vector<Item>> Items;
  std::vector<u8> LoopAdded;
  std::vector<u32> TmpToLayout;
};

} // namespace tpde::core

#endif // TPDE_CORE_ANALYZER_H
