//===- core/RegFile.h - Register state for single-pass codegen --*- C++ -*-===//
///
/// \file
/// Tracks the state of every allocatable machine register during the code
/// generation pass: free/used, the owning (value, part), lock counts (a
/// locked register must not be evicted; cf. paper §3.4.1 "value locking"),
/// and fixed registers (the loop heuristic of §3.4.5). Eviction candidates
/// are chosen in round-robin order, matching the paper.
///
/// Registers are identified by a small integer id; the Config type maps ids
/// to (bank, index) pairs. Bank 0 is general-purpose, bank 1 is FP/vector.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_REGFILE_H
#define TPDE_CORE_REGFILE_H

// tpde-lint: hot-path -- per-function compile loop; the zero-allocation
// policy (docs/PERF.md) is machine-enforced here by scripts/tpde_lint.py.

#include "support/Common.h"

namespace tpde::core {

/// A machine register handle used throughout the framework core.
struct Reg {
  u8 Id = 0xFF;
  constexpr Reg() = default;
  constexpr explicit Reg(u8 Id) : Id(Id) {}
  constexpr bool isValid() const { return Id != 0xFF; }
  constexpr bool operator==(const Reg &O) const { return Id == O.Id; }
};

/// Register state; template parameter supplies the target's bank layout.
template <typename Config> class RegFile {
public:
  static constexpr u8 NumBanks = Config::NumBanks;
  static constexpr u8 RegsPerBank = Config::RegsPerBank;
  static constexpr unsigned MaxRegs = NumBanks * 32;

  void reset() {
    for (u8 B = 0; B < NumBanks; ++B) {
      Used[B] = 0;
      Fixed[B] = 0;
      Clock[B] = 0;
    }
    for (unsigned I = 0; I < MaxRegs; ++I) {
      LockCnt[I] = 0;
      OwnerVal[I] = ~0u;
      OwnerPart[I] = 0;
    }
  }

  bool isUsed(Reg R) const {
    return Used[Config::bankOf(R.Id)] & bit(R);
  }
  bool isFixed(Reg R) const {
    return Fixed[Config::bankOf(R.Id)] & bit(R);
  }
  bool isLocked(Reg R) const { return LockCnt[R.Id] != 0; }

  u32 usedMask(u8 Bank) const { return Used[Bank]; }

  /// Owning value number (~0u if none) and part of a used register.
  u32 ownerVal(Reg R) const { return OwnerVal[R.Id]; }
  u8 ownerPart(Reg R) const { return OwnerPart[R.Id]; }

  /// Tries to find a free allocatable register in \p Bank (optionally
  /// restricted by \p AllowMask over bank-local indices). Returns an
  /// invalid Reg if none is free.
  Reg findFree(u8 Bank, u32 AllowMask = ~0u) const {
    u32 Free = Config::Allocatable[Bank] & ~Used[Bank] & AllowMask;
    if (!Free)
      return Reg();
    return Reg(Config::regId(Bank, static_cast<u8>(countTrailingZeros(Free))));
  }

  /// Picks an eviction candidate in round-robin order: used, not locked,
  /// not fixed. Returns an invalid Reg if every register is pinned.
  Reg pickEvictionCandidate(u8 Bank, u32 AllowMask = ~0u) {
    u32 Cand = Used[Bank] & ~Fixed[Bank] & Config::Allocatable[Bank] &
               AllowMask;
    if (!Cand)
      return Reg();
    // Exclude locked registers.
    u32 Unlocked = 0;
    for (u32 M = Cand; M;) {
      u8 Idx = static_cast<u8>(countTrailingZeros(M));
      M &= M - 1;
      if (!LockCnt[Config::regId(Bank, Idx)])
        Unlocked |= u32(1) << Idx;
    }
    if (!Unlocked)
      return Reg();
    // Round-robin: first candidate at or after the clock hand.
    u32 AtOrAfter = Unlocked & ~((u32(1) << Clock[Bank]) - 1);
    u8 Idx = static_cast<u8>(
        countTrailingZeros(AtOrAfter ? AtOrAfter : Unlocked));
    Clock[Bank] = (Idx + 1) % RegsPerBank;
    return Reg(Config::regId(Bank, Idx));
  }

  void markUsed(Reg R, u32 Val, u8 Part) {
    assert(!isUsed(R) && "register already in use");
    Used[Config::bankOf(R.Id)] |= bit(R);
    OwnerVal[R.Id] = Val;
    OwnerPart[R.Id] = Part;
  }

  void markFree(Reg R) {
    assert(isUsed(R) && "register not in use");
    assert(!LockCnt[R.Id] && "freeing a locked register");
    Used[Config::bankOf(R.Id)] &= ~bit(R);
    Fixed[Config::bankOf(R.Id)] &= ~bit(R);
    OwnerVal[R.Id] = ~0u;
  }

  void markFixed(Reg R) { Fixed[Config::bankOf(R.Id)] |= bit(R); }

  void lock(Reg R) {
    assert(isUsed(R) && "locking a free register");
    ++LockCnt[R.Id];
  }
  void unlock(Reg R) {
    assert(LockCnt[R.Id] > 0 && "unbalanced unlock");
    --LockCnt[R.Id];
  }

private:
  static u32 bit(Reg R) { return u32(1) << Config::idxOf(R.Id); }

  u32 Used[NumBanks] = {};
  u32 Fixed[NumBanks] = {};
  u8 Clock[NumBanks] = {};
  u8 LockCnt[MaxRegs] = {};
  u32 OwnerVal[MaxRegs] = {};
  u8 OwnerPart[MaxRegs] = {};
};

} // namespace tpde::core

#endif // TPDE_CORE_REGFILE_H
