//===- core/Adapter.h - The IR adapter concept ------------------*- C++ -*-===//
///
/// \file
/// The IR adapter is the only way the TPDE framework accesses an IR (paper
/// §3.2, Fig. 2). It is supplied as a template parameter, so all adapter
/// methods inline and no virtual dispatch occurs. This header documents the
/// required interface as a C++20 concept used by Analyzer and CompilerBase.
///
/// Requirements beyond the signatures:
///  * ValRef/BlockRef/FuncRef should be cheap handle types (integers).
///  * valNumber() must be a dense per-function numbering usable as an
///    array index (paper: "suitable as array index for fast lookup").
///  * blockAux() exposes 64 bits of per-block scratch storage that the
///    framework owns between switchFunc() and finalizeFunc().
///  * blockRef(0) must be the entry block.
///  * Values with isConstLike() == true (constants, global addresses,
///    stack-variable addresses) receive no assignment; the derived
///    compiler materializes them on demand (§3.4.1 "trivially
///    recomputable" / constant value parts).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_ADAPTER_H
#define TPDE_CORE_ADAPTER_H

#include "asmx/Assembler.h"
#include "support/Common.h"

#include <concepts>
#include <span>
#include <string_view>

namespace tpde::core {

template <typename A>
concept IRAdapter = requires(A Ad, const A CAd, typename A::FuncRef F,
                             typename A::BlockRef B, typename A::ValRef V,
                             u32 I) {
  typename A::FuncRef;
  typename A::BlockRef;
  typename A::ValRef;

  // --- Module-level -----------------------------------------------------
  { CAd.funcCount() } -> std::convertible_to<u32>;
  { CAd.funcRef(I) } -> std::same_as<typename A::FuncRef>;
  { CAd.funcName(F) } -> std::convertible_to<std::string_view>;
  { CAd.funcLinkage(F) } -> std::same_as<asmx::Linkage>;
  { CAd.funcIsDefinition(F) } -> std::convertible_to<bool>;

  // --- Function switching ------------------------------------------------
  { Ad.switchFunc(F) };
  { Ad.finalizeFunc() };

  // --- Current function --------------------------------------------------
  { CAd.valueCount() } -> std::convertible_to<u32>;
  { CAd.blockCount() } -> std::convertible_to<u32>;
  { CAd.blockRef(I) } -> std::same_as<typename A::BlockRef>;
  { Ad.blockAux(B) } -> std::same_as<u64 &>;
  { CAd.blockSuccs(B) } -> std::convertible_to<std::span<const typename A::BlockRef>>;
  { CAd.blockPhis(B) } -> std::convertible_to<std::span<const typename A::ValRef>>;
  { CAd.blockInsts(B) } -> std::convertible_to<std::span<const typename A::ValRef>>;
  { CAd.funcArgs() } -> std::convertible_to<std::span<const typename A::ValRef>>;

  // --- Values ---------------------------------------------------------------
  { CAd.valNumber(V) } -> std::convertible_to<u32>;
  { CAd.valPartCount(V) } -> std::convertible_to<u32>;
  { CAd.valPartSize(V, I) } -> std::convertible_to<u32>;
  { CAd.valPartBank(V, I) } -> std::convertible_to<u8>;
  { CAd.isConstLike(V) } -> std::convertible_to<bool>;

  // --- Instructions and phis --------------------------------------------
  { CAd.instOperands(V) } -> std::convertible_to<std::span<const typename A::ValRef>>;
  { CAd.phiIncomingCount(V) } -> std::convertible_to<u32>;
  { CAd.phiIncomingBlock(V, I) } -> std::same_as<typename A::BlockRef>;
  { CAd.phiIncomingValue(V, I) } -> std::same_as<typename A::ValRef>;
};

} // namespace tpde::core

#endif // TPDE_CORE_ADAPTER_H
