//===- core/ParallelCompiler.h - Sharded module compilation -----*- C++ -*-===//
///
/// \file
/// The backend-agnostic parallel module compile driver: compiles a
/// module's functions across N worker threads, each owning a private
/// asmx::Assembler + compiler instance (reset-not-freed, per docs/
/// PERF.md), then deterministically merges the per-shard text/rodata,
/// relocations, and symbol tables into one linkable/JIT-mappable module.
///
/// The driver is a template over the *worker* type — parallel compilation
/// is a framework property, not a per-target feature. A back-end opts in
/// by providing a type satisfying the ParallelCompileWorker concept:
///
///   struct MyWorker {
///     using ModuleT = ...;                 // the IR module type
///     explicit MyWorker(ModuleT &M);       // per-thread state (adapter,
///                                          // assembler, compiler)
///     asmx::Assembler &assembler();        // the worker's private output
///     bool compileGlobals();               // module-level fragment only
///                                          //   (CompilerBase::compileGlobalsOnly)
///     bool compileRange(u32 Begin, u32 End); // functions [Begin, End)
///                                          //   (CompilerBase::compileFunctionRange)
///     static u32 funcCount(const ModuleT &M);
///     static u32 funcWeight(const ModuleT &M, u32 I); // size proxy for
///                                          // shard balancing (e.g. value count)
///     const support::CompileStatus &status() const; // last failure's
///                                          // structured diagnostic
///     // optional: enables the ParallelCompileOptions::Verify pre-pass
///     static bool verifyModule(const ModuleT &M, std::string &Errors);
///   };
///
/// compileRange()/compileGlobals() are thin wrappers over the
/// CompilerBase range entry points, which in turn require the derived
/// compiler to implement the declareGlobals() hook (see
/// core/CompilerBase.h); Assembler::mergeFrom() supplies the cross-shard
/// symbol resolution. Nothing in this file knows about the target or the
/// IR.
///
/// Determinism contract: the merged output is **byte-identical regardless
/// of thread count and schedule**. This falls out of three rules:
///
///  1. The shard decomposition depends only on the module — boundaries
///     are a pure function of the per-function weights and FuncsPerShard,
///     never of the thread count.
///  2. Each shard's output is snapshotted into its own fragment assembler;
///     the work-stealing queue decides *who* compiles a shard, never
///     *where* its bytes land.
///  3. The final merge walks fragments in shard-index order on the calling
///     thread (module-level globals fragment first).
///
/// Two-pass (zero-merge) emission: with ParallelCompileOptions::
/// InPlaceEmission (the default) the driver does not serially *copy* any
/// fragment's text/data bytes into the output. The compile pass doubles
/// as an exact pre-measure — every fragment's final section sizes are
/// known once the shard pass (plus recovery) finishes — so the driver
/// reserves each fragment's slice of the output sections in shard order
/// (Assembler::reserveFrom, O(1) per shard in section bytes), lets the
/// worker pool memcpy all fragments into their disjoint slices
/// concurrently (Assembler::placeFrom), and keeps only the
/// O(symbols + relocs) stitch (Assembler::stitchFrom) on the serial
/// path. Output is byte-identical to the copy-merge fallback and to a
/// serial compile — the three primitives *are* mergeFrom, resequenced —
/// and emitStats() exposes the per-phase cost breakdown the bench rows
/// record (docs/PERF.md "Two-pass emission").
///
/// Cross-shard references (calls, global addresses) work because the code
/// generators only ever reference symbols through relocations: a shard
/// materializes a symbol on demand at its first reference (an undefined
/// declaration when the definition lives elsewhere), and
/// Assembler::mergeFrom() binds those declarations to the defining
/// shard's symbols by interned name. No shard ever registers the whole
/// module symbol table — per-shard symbol cost is O(defined +
/// referenced), so a module compile carries an O(Funcs) total symbol
/// term instead of O(Funcs^2 / FuncsPerShard). The .text bytes of the
/// merged module are identical to a single-assembler serial compile; the
/// read-only data matches the serial pool as well because mergeFrom()
/// content-deduplicates the anonymous FP-pool entries across shards; and
/// the ELF writer emits the symbol table in a canonical content order,
/// so the serial and merged objects are byte-identical end to end.
///
/// Job-aligned batching (compileJobs): the serving layer concatenates
/// several independent modules into one batch and needs each job's
/// output *separately* — byte-identical to compiling that job alone,
/// because the output is the value of a content-addressed cache entry
/// (docs/SERVICE.md). compileJobs() extends the determinism contract to
/// that shape: each job's function range is subdivided with the same
/// weighted rule a solo compile of that range would use (so no shard
/// ever straddles a job boundary), the shards run through the one
/// work-stealing pass, and every job's assembler is then rebuilt from
/// the shared module-level globals fragment plus exactly its own shards,
/// merged in shard order. Per-job failure isolation follows the same
/// rules as graceful degradation: a failing function fails its job with
/// a structured diagnostic; batch neighbors are unaffected
/// (tests/service_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_PARALLELCOMPILER_H
#define TPDE_CORE_PARALLELCOMPILER_H

#include "asmx/Assembler.h"
#include "support/Diag.h"
#include "support/FaultInjector.h"
#include "support/Sync.h"
#include "support/Timer.h"
#include "support/WorkQueue.h"

#include <algorithm>
#include <concepts>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tpde::core {

template <typename W>
concept ParallelCompileWorker =
    requires(W Wk, typename W::ModuleT &M, const typename W::ModuleT &CM,
             u32 I) {
      typename W::ModuleT;
      requires std::constructible_from<W, typename W::ModuleT &>;
      { Wk.assembler() } -> std::same_as<asmx::Assembler &>;
      { Wk.compileGlobals() } -> std::convertible_to<bool>;
      { Wk.compileRange(I, I) } -> std::convertible_to<bool>;
      { W::funcCount(CM) } -> std::convertible_to<u32>;
      { W::funcWeight(CM, I) } -> std::convertible_to<u32>;
      /// Structured diagnostic of the worker's last failed compile; the
      /// driver lifts it into the per-shard status slot.
      { std::as_const(Wk).status() }
          -> std::convertible_to<const support::CompileStatus &>;
      // optional: static u64 shardTextBound(const ModuleT &, u32 Begin,
      // u32 End) — an upper-bound text-size estimate for a shard, used
      // to pre-size the shard's fragment buffer so early compiles skip
      // the geometric-growth ladder. A *hint* only: correctness and
      // byte-identity never depend on it.
    };

struct ParallelCompileOptions {
  /// Worker threads including the calling thread; 0 means
  /// tpde::hardwareConcurrency().
  unsigned NumThreads = 0;
  /// Shard granularity in functions. Part of the determinism contract:
  /// the same module always decomposes into the same shards, whatever the
  /// thread count. Smaller shards balance better; larger shards amortize
  /// the per-shard snapshot/merge cost.
  u32 FuncsPerShard = 4;
  /// Weight shard boundaries by the per-function size proxy
  /// (WorkerT::funcWeight) instead of cutting every FuncsPerShard
  /// functions: the shard *count* stays ceil(Funcs / FuncsPerShard), but
  /// the boundaries equalize accumulated weight, so modules with a few
  /// giant functions balance across workers. Still a pure function of the
  /// module — output is independent of the thread count either way.
  bool SizeWeightedShards = true;
  /// Run the worker's verifier (WorkerT::verifyModule, when provided)
  /// before sharding; a malformed module is rejected with a VerifyFailed
  /// status and never reaches codegen. Off by default on the production
  /// path, on in the tests.
  bool Verify = false;
  /// Two-pass zero-merge emission (see the file comment): reserve every
  /// shard's output slice serially, place all text/data bytes in
  /// parallel, stitch only symbols/relocations serially. Byte-identical
  /// to the copy-merge fallback (false) for any thread count; the
  /// fallback exists for A/B measurement and debugging.
  bool InPlaceEmission = true;
};

/// Per-phase cost breakdown of the last compile()/compileJobs(), for the
/// bench rows (bench/compile_throughput.cpp) and the O(relocs)-stitch
/// claim in docs/PERF.md. Wall-clock nanoseconds via tpde::nowNs().
struct EmitStats {
  u64 CompileNs = 0; ///< Parallel shard pass incl. snapshots + recovery.
  u64 ReserveNs = 0; ///< Serial slice reservation (in-place mode only).
  u64 PlaceNs = 0;   ///< Parallel in-place byte placement (pass 2).
  u64 StitchNs = 0;  ///< Serial merge tail: rodata dedup, symbols, relocs
                     ///< (in copy-merge mode: the whole byte-copy merge).
  u64 StitchRelocs = 0; ///< Relocations rebased by the serial stitch.
  u64 PlacedBytes = 0;  ///< Text+data bytes written by parallel placement.
  bool InPlace = false; ///< Which emission path the last compile used.
};

/// Reusable parallel compilation pipeline for one module. Construction
/// spawns the worker pool; compile() may be called repeatedly (e.g. a JIT
/// recompiling on deoptimization) and is allocation-free in steady state:
/// workers reuse their compiler/assembler state via the module-level
/// symbol-batching fast path, and all fragments retain their capacity.
template <ParallelCompileWorker WorkerT>
class ParallelModuleCompiler {
public:
  using ModuleT = typename WorkerT::ModuleT;

  explicit ParallelModuleCompiler(ModuleT &M, ParallelCompileOptions Opts = {})
      : M(M), Opts(Opts) {
    unsigned N = Opts.NumThreads;
    if (N == 0)
      N = tpde::hardwareConcurrency();
    if (this->Opts.FuncsPerShard == 0)
      this->Opts.FuncsPerShard = 1;
    Workers.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Workers.push_back(std::make_unique<Worker>(M));
    // Worker 0 is the calling thread; only 1..N-1 get their own thread.
    for (unsigned I = 1; I < N; ++I)
      Workers[I]->Thread = tpde::Thread([this, I] { workerMain(I); });
  }

  ~ParallelModuleCompiler() {
    {
      LockGuard L(Mtx);
      Stop = true;
    }
    JobCV.notify_all();
    for (auto &W : Workers)
      if (W->Thread.joinable())
        W->Thread.join();
  }

  ParallelModuleCompiler(const ParallelModuleCompiler &) = delete;
  ParallelModuleCompiler &operator=(const ParallelModuleCompiler &) = delete;

  /// Compiles the module into \p Out (which is reset first). Returns
  /// false if any function failed to compile or the merged module is
  /// inconsistent; status()/diagnostics() carry the structured errors.
  ///
  /// Failure semantics (graceful degradation): a failed shard's fragment
  /// is discarded and the shard is recompiled function-by-function on the
  /// calling thread with fresh worker state — good functions land in the
  /// output, each bad function is quarantined with one precise diagnostic.
  /// A module with K bad functions therefore compiles everything else
  /// (byte-identical to a serial compile of the good subset) and reports
  /// exactly K diagnostics, ordered by shard then function index —
  /// independent of thread count and schedule (first-error-wins keyed by
  /// shard order, never thread arrival).
  bool compile(asmx::Assembler &Out) {
    FirstStatus.clear();
    Diags.clear();
    Stats = EmitStats{};
    if (Opts.Verify && !verifyGate()) {
      Out.reset();
      return false;
    }
    computeShardBounds();
    u64 T0 = nowNs();
    runParallelPass();
    Stats.CompileNs += nowNs() - T0;

    // Deterministic merge: globals fragment first, then every shard in
    // shard-index order — independent of which worker compiled what. The
    // destination's interned-name pool is arena-backed, so a merge can
    // throw bad_alloc — turn that into a module-level diagnostic instead
    // of unwinding out of compile().
    Out.reset();
    try {
      Out.mergeFrom(GlobalsFrag);
      if (Opts.InPlaceEmission)
        emitShardsInPlace(Out);
      else
        mergeShardsByCopy(Out);
    } catch (...) {
      support::CompileStatus D;
      D.Err = support::CompileErr::OutOfMemory;
      D.Message = "allocation failed merging the module";
      Diags.push_back(std::move(D));
    }
    if (Out.hasError() && Diags.empty()) {
      support::CompileStatus D;
      D.Err = support::CompileErr::MergeError;
      D.Message.assign(Out.errorMessage());
      Diags.push_back(std::move(D));
    }
    if (!Diags.empty()) {
      FirstStatus = Diags.front();
      return false;
    }
    return !Out.hasError();
  }

  /// Compiles a batch of K independent jobs that the caller concatenated
  /// into the module: job J is the function range
  /// [JobBounds[J], JobBounds[J+1]) (JobBounds has K+1 entries,
  /// JobBounds[0] == 0, back() == funcCount), and job J's output is
  /// merged into *Outs[J] (reset first).
  ///
  /// Shard bounds are **job-aligned**: each job's range is subdivided
  /// independently with the same weighted rule a solo compile of those
  /// functions would use, so every shard belongs to exactly one job and
  /// job J's output is rebuilt from whole fragments — the globals
  /// fragment first, then the job's shards in index order, the exact
  /// walk compile() does for a whole module. Outs[J]'s section bytes are
  /// therefore identical to compiling job J's functions as their own
  /// module (batch neighbors change only which *declarations* the
  /// module-level fragment carries, and declarations contribute no
  /// section bytes). The compile service's content-addressed cache
  /// depends on this: a batched compile and a solo compile of the same
  /// job must be byte-identical (tests/service_test.cpp asserts it).
  ///
  /// JobStatus[J] receives job J's first diagnostic (Ok when clean); a
  /// module-level failure (verify gate, globals fragment) fails every
  /// job. Failed functions inside one job degrade gracefully exactly as
  /// in compile() — other jobs, and the failing job's good functions,
  /// still produce output. Returns true iff every job compiled cleanly.
  bool compileJobs(std::span<const u32> JobBounds,
                   std::span<asmx::Assembler *const> Outs,
                   std::span<support::CompileStatus> JobStatus) {
    assert(!JobBounds.empty() && JobBounds.front() == 0 &&
           JobBounds.back() == WorkerT::funcCount(M) &&
           Outs.size() == JobBounds.size() - 1 &&
           JobStatus.size() == Outs.size() && "malformed job batch");
    const size_t K = Outs.size();
    FirstStatus.clear();
    Diags.clear();
    Stats = EmitStats{};
    for (auto &St : JobStatus)
      St.clear();
    if (Opts.Verify && !verifyGate()) {
      for (size_t J = 0; J < K; ++J) {
        Outs[J]->reset();
        JobStatus[J] = FirstStatus;
      }
      return false;
    }
    computeShardBoundsForJobs(JobBounds);
    u64 T0 = nowNs();
    runParallelPass();
    Stats.CompileNs += nowNs() - T0;

    // Distribute the recovery diagnostics: one with a function index
    // belongs to the job whose range contains it (first-error-wins per
    // job — Diags is already (shard, func)-ordered); one without
    // (globals-fragment failure) is module-level and fails every job.
    const support::CompileStatus *ModDiag = nullptr;
    for (const support::CompileStatus &D : Diags) {
      if (D.Func == ~0u) {
        if (!ModDiag)
          ModDiag = &D;
        continue;
      }
      size_t J = static_cast<size_t>(
          std::upper_bound(JobBounds.begin() + 1, JobBounds.end(), D.Func) -
          (JobBounds.begin() + 1));
      if (JobStatus[J].ok())
        JobStatus[J] = D;
    }

    // Per-job ordered rebuilds. In-place mode shares one placement pass
    // across the whole batch: every job's slices are reserved first (the
    // job's own assembler is the destination), then the worker pool
    // places all jobs' shards concurrently, then each job is stitched in
    // shard order — each job's bytes identical to its solo compile.
    if (Opts.InPlaceEmission) {
      Stats.InPlace = true;
      preparePlans();
      u64 T = nowNs();
      for (size_t J = 0; J < K; ++J) {
        asmx::Assembler &Out = *Outs[J];
        Out.reset();
        if (ModDiag && JobStatus[J].ok())
          JobStatus[J] = *ModDiag;
        try {
          Out.mergeFrom(GlobalsFrag);
          for (u32 S = JobShardBegin[J]; S < JobShardBegin[J + 1]; ++S)
            reserveShard(Out, S);
        } catch (...) {
          // Shards not yet reserved stay unplanned (PlaceOut == null):
          // the placement and stitch passes skip them.
          if (JobStatus[J].ok()) {
            JobStatus[J].Err = support::CompileErr::OutOfMemory;
            JobStatus[J].Message = "allocation failed merging job";
          }
        }
      }
      Stats.ReserveNs += nowNs() - T;
      runPlacementPass();
      for (u32 S = 0; S < NumShards; ++S) {
        if (!PlaceFailed[S])
          continue;
        size_t J = static_cast<size_t>(
            std::upper_bound(JobShardBegin.begin() + 1, JobShardBegin.end(),
                             S) -
            (JobShardBegin.begin() + 1));
        if (JobStatus[J].ok()) {
          JobStatus[J].Err = support::CompileErr::FaultInjected;
          JobStatus[J].Message = "fault injected: section-place";
        }
      }
      T = nowNs();
      for (size_t J = 0; J < K; ++J) {
        asmx::Assembler &Out = *Outs[J];
        try {
          for (u32 S = JobShardBegin[J]; S < JobShardBegin[J + 1]; ++S) {
            if (!PlaceOut[S])
              continue;
            Stats.StitchRelocs += Frags[S]->relocs().size();
            Out.stitchFrom(*Frags[S], Plans[S]);
          }
        } catch (...) {
          if (JobStatus[J].ok()) {
            JobStatus[J].Err = support::CompileErr::OutOfMemory;
            JobStatus[J].Message = "allocation failed merging job";
          }
          continue;
        }
        if (Out.hasError() && JobStatus[J].ok()) {
          JobStatus[J].Err =
              Out.errorCode() == support::CompileErr::FaultInjected
                  ? support::CompileErr::FaultInjected
                  : support::CompileErr::MergeError;
          JobStatus[J].Message.assign(Out.errorMessage());
        }
      }
      Stats.StitchNs += nowNs() - T;
    } else {
      u64 T = nowNs();
      for (size_t J = 0; J < K; ++J) {
        asmx::Assembler &Out = *Outs[J];
        Out.reset();
        if (ModDiag && JobStatus[J].ok())
          JobStatus[J] = *ModDiag;
        try {
          Out.mergeFrom(GlobalsFrag);
          for (u32 S = JobShardBegin[J]; S < JobShardBegin[J + 1]; ++S) {
            Stats.StitchRelocs += Frags[S]->relocs().size();
            Out.mergeFrom(*Frags[S]);
          }
        } catch (...) {
          if (JobStatus[J].ok()) {
            JobStatus[J].Err = support::CompileErr::OutOfMemory;
            JobStatus[J].Message = "allocation failed merging job";
          }
          continue;
        }
        if (Out.hasError() && JobStatus[J].ok()) {
          JobStatus[J].Err =
              Out.errorCode() == support::CompileErr::FaultInjected
                  ? support::CompileErr::FaultInjected
                  : support::CompileErr::MergeError;
          JobStatus[J].Message.assign(Out.errorMessage());
        }
      }
      Stats.StitchNs += nowNs() - T;
    }

    bool AllOK = true;
    for (size_t J = 0; J < K; ++J)
      if (!JobStatus[J].ok())
        AllOK = false;
    if (!FirstStatus.ok()) {
      // verify gate already reported
    } else if (!Diags.empty()) {
      FirstStatus = Diags.front();
    } else if (!AllOK) {
      for (size_t J = 0; J < K; ++J)
        if (!JobStatus[J].ok()) {
          FirstStatus = JobStatus[J];
          break;
        }
    }
    return AllOK;
  }

  /// First diagnostic of the last compile() — deterministically the one
  /// with the lowest shard index, then lowest function index (Ok after a
  /// fully clean compile).
  const support::CompileStatus &status() const { return FirstStatus; }
  /// All diagnostics of the last compile(), ordered by shard then
  /// function index. One entry per quarantined function.
  std::span<const support::CompileStatus> diagnostics() const {
    return Diags;
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }
  u32 shardCount() const { return NumShards; }
  /// Shard S covers functions [shardBounds()[S], shardBounds()[S+1]);
  /// NumShards+1 entries, valid after the first compile().
  std::span<const u32> shardBounds() const { return ShardBounds; }
  /// Pre-recovery status slot of shard \p S from the last compile()
  /// (Ok if the shard compiled cleanly on the parallel pass). The
  /// recovery pass may still have compiled the shard's functions
  /// afterwards — diagnostics() has the final per-function picture.
  const support::CompileStatus &shardStatus(u32 S) const {
    return ShardStatus[S];
  }
  /// Per-phase cost breakdown of the last compile()/compileJobs() —
  /// which emission path ran and where the wall-clock went.
  const EmitStats &emitStats() const { return Stats; }

private:
  struct Worker {
    explicit Worker(ModuleT &M) : W(M) {}
    WorkerT W;
    tpde::Thread Thread; ///< Unjoinable for worker 0 (the calling thread).
  };

  /// What a published job asks the pool to do with each popped shard
  /// index: compile it into its fragment, or place its fragment's bytes
  /// into the pre-reserved output slice.
  enum class PassKind : u8 { Compile, Place };

  /// Shared middle of compile()/compileJobs(): fragment setup, the
  /// parallel shard pass over the current ShardBounds/NumShards, and the
  /// single-threaded recovery pass. On return every shard fragment is
  /// final and Diags holds the recovery diagnostics, ordered by shard
  /// then function.
  void runParallelPass() {
    while (Frags.size() < NumShards)
      Frags.push_back(std::make_unique<asmx::Assembler>());
    ShardFailed.assign(NumShards, 0);
    if (ShardStatus.size() < NumShards)
      ShardStatus.resize(NumShards);
    Queue.reset(NumShards, threadCount());

    // Publish the job. The mutex orders the shard/fragment setup above
    // before any worker starts draining.
    {
      LockGuard L(Mtx);
      Phase = PassKind::Compile;
      ++JobSeq;
      Pending = threadCount() - 1;
    }
    JobCV.notify_all();

    // The calling thread produces the module-level fragment (global data +
    // declarations) and then joins shard compilation as worker 0.
    bool GlobalsFailed = !compileGlobalsFrag();
    drainQueue(0, PassKind::Compile);

    {
      LockGuard L(Mtx);
      while (Pending != 0)
        DoneCV.wait(Mtx);
    }

    // Recovery pass, single-threaded on the calling thread (every worker
    // is idle past the barrier, so the per-shard slots are safe to read).
    // Shard order makes the diagnostics list deterministic. Recovery runs
    // *before* any output planning, so the slices reserved later always
    // describe the fragments' final (post-quarantine) sizes — a failed
    // shard never owns output bytes it cannot fill.
    if (GlobalsFailed && !compileGlobalsFrag())
      recordGlobalsFailure();
    for (u32 S = 0; S < NumShards; ++S)
      if (ShardFailed[S])
        retryShard(S);
  }

  /// Copy-merge fallback for compile(): the pre-PR serial byte-copy walk.
  void mergeShardsByCopy(asmx::Assembler &Out) {
    u64 T = nowNs();
    for (u32 S = 0; S < NumShards; ++S) {
      bool PrevErr = Out.hasError();
      Stats.StitchRelocs += Frags[S]->relocs().size();
      Out.mergeFrom(*Frags[S]);
      noteMergeError(Out, S, PrevErr);
    }
    Stats.StitchNs += nowNs() - T;
  }

  /// Two-pass emission for compile(): reserve every shard's slice of
  /// \p Out in shard order, place all bytes on the worker pool, stitch
  /// symbols/relocations serially. Byte-identical to mergeShardsByCopy.
  void emitShardsInPlace(asmx::Assembler &Out) {
    Stats.InPlace = true;
    preparePlans();
    u64 T = nowNs();
    for (u32 S = 0; S < NumShards; ++S)
      reserveShard(Out, S);
    Stats.ReserveNs += nowNs() - T;
    runPlacementPass();
    for (u32 S = 0; S < NumShards; ++S) {
      if (!PlaceFailed[S])
        continue;
      // Terminal placement failure: the slice was zero-filled by
      // runPlacementPass; fail the compile with a shard-attributed
      // diagnostic (the only source of a placement failure is the
      // section-place fault site).
      support::CompileStatus D;
      D.Err = support::CompileErr::FaultInjected;
      D.Shard = S;
      D.Message = "fault injected: section-place";
      Diags.push_back(std::move(D));
    }
    T = nowNs();
    for (u32 S = 0; S < NumShards; ++S) {
      bool PrevErr = Out.hasError();
      Stats.StitchRelocs += Frags[S]->relocs().size();
      Out.stitchFrom(*Frags[S], Plans[S]);
      noteMergeError(Out, S, PrevErr);
    }
    Stats.StitchNs += nowNs() - T;
  }

  /// Sizes/clears the per-shard placement scratch (capacity retained
  /// across compiles, docs/PERF.md).
  void preparePlans() {
    if (Plans.size() < NumShards)
      Plans.resize(NumShards);
    PlaceOut.assign(NumShards, nullptr);
    PlaceFailed.assign(NumShards, 0);
  }

  /// Reserves shard \p S's slice of \p Out and routes the placement pass
  /// to it. PlaceOut is set only on success, so a throwing reservation
  /// leaves the shard unplanned (skipped by placement and stitch).
  void reserveShard(asmx::Assembler &Out, u32 S) {
    Out.reserveFrom(*Frags[S], Plans[S]);
    constexpr unsigned TextI = static_cast<unsigned>(asmx::SecKind::Text);
    constexpr unsigned DataI = static_cast<unsigned>(asmx::SecKind::Data);
    Stats.PlacedBytes += Plans[S].Bytes[TextI] + Plans[S].Bytes[DataI];
    PlaceOut[S] = &Out;
  }

  /// Pass 2: the worker pool memcpys every planned shard's text/data
  /// into its pre-reserved slice. Slices are disjoint byte ranges, so
  /// the pass needs no synchronization beyond the job barrier. A
  /// placement fault is retried once on the calling thread (the fault
  /// site fires exactly once per arm); a terminal failure zero-fills
  /// the slice so neighboring shards' bytes stay intact, and leaves
  /// PlaceFailed[S] set for the caller to diagnose.
  void runPlacementPass() {
    u64 T = nowNs();
    Queue.reset(NumShards, threadCount());
    {
      LockGuard L(Mtx);
      Phase = PassKind::Place;
      ++JobSeq;
      Pending = threadCount() - 1;
    }
    JobCV.notify_all();
    drainQueue(0, PassKind::Place);
    {
      LockGuard L(Mtx);
      while (Pending != 0)
        DoneCV.wait(Mtx);
      Phase = PassKind::Compile;
    }
    for (u32 S = 0; S < NumShards; ++S) {
      if (!PlaceFailed[S])
        continue;
      if (PlaceOut[S]->placeFrom(*Frags[S], Plans[S])) {
        PlaceFailed[S] = 0;
        continue;
      }
      PlaceOut[S]->zeroSlice(Plans[S]);
    }
    Stats.PlaceNs += nowNs() - T;
  }

  /// Attributes a merge/stitch-stage inconsistency with no earlier
  /// diagnostic to the shard whose merge surfaced it.
  void noteMergeError(asmx::Assembler &Out, u32 S, bool PrevErr) {
    if (!PrevErr && Out.hasError() && Diags.empty()) {
      support::CompileStatus D;
      D.Err = Out.errorCode() == support::CompileErr::FaultInjected
                  ? support::CompileErr::FaultInjected
                  : support::CompileErr::MergeError;
      D.Shard = S;
      D.Message.assign(Out.errorMessage());
      Diags.push_back(std::move(D));
    }
  }

  /// Deterministic shard decomposition. The shard count is
  /// ceil(Funcs / FuncsPerShard) as in the unweighted scheme; with
  /// SizeWeightedShards each boundary is placed where the accumulated
  /// function weight reaches the next 1/NumShards slice of the total, so
  /// skewed modules produce balanced shards. Every shard is non-empty and
  /// the bounds depend only on the module and the options.
  void computeShardBounds() {
    const u32 NumFuncs = WorkerT::funcCount(M);
    NumShards = (NumFuncs + Opts.FuncsPerShard - 1) / Opts.FuncsPerShard;
    ShardBounds.clear();
    ShardBounds.push_back(0);
    if (NumShards == 0)
      return;
    appendWeightedBounds(0, NumFuncs, NumShards);
    assert(ShardBounds.size() == NumShards + 1 && "bad shard decomposition");
  }

  /// Job-aligned shard decomposition for compileJobs(): every job's
  /// range is subdivided on its own — shard count
  /// ceil(JobFuncs / FuncsPerShard), weighted boundaries within the job
  /// — so no shard straddles a job boundary and the bounds inside a job
  /// depend only on that job's functions, never on its batch neighbors.
  /// JobShardBegin[J] is the index of job J's first shard (K+1 entries).
  void computeShardBoundsForJobs(std::span<const u32> JobBounds) {
    ShardBounds.clear();
    ShardBounds.push_back(0);
    JobShardBegin.clear();
    JobShardBegin.push_back(0);
    NumShards = 0;
    for (size_t J = 0; J + 1 < JobBounds.size(); ++J) {
      u32 Begin = JobBounds[J], End = JobBounds[J + 1];
      u32 Shards = (End - Begin + Opts.FuncsPerShard - 1) / Opts.FuncsPerShard;
      if (Shards)
        appendWeightedBounds(Begin, End, Shards);
      NumShards += Shards;
      JobShardBegin.push_back(NumShards);
    }
    assert(ShardBounds.size() == NumShards + 1 && "bad shard decomposition");
  }

  /// Appends the boundaries subdividing [Begin, End) into \p Shards
  /// shards to ShardBounds (whose back() must already equal Begin). The
  /// rule is shared by the whole-module and the per-job decomposition —
  /// a pure function of the range's weights and FuncsPerShard.
  void appendWeightedBounds(u32 Begin, u32 End, u32 Shards) {
    assert(ShardBounds.back() == Begin && Shards > 0);
    if (!Opts.SizeWeightedShards || Shards == 1) {
      for (u32 S = 1; S < Shards; ++S)
        ShardBounds.push_back(Begin + S * Opts.FuncsPerShard);
      ShardBounds.push_back(End);
      return;
    }
    u64 Total = 0;
    for (u32 F = Begin; F < End; ++F)
      Total += weightOf(F);
    u64 Acc = 0;
    u32 S = 1; // next boundary to place
    for (u32 F = Begin; F < End && S < Shards; ++F) {
      Acc += weightOf(F);
      u32 Remaining = End - (F + 1);
      u32 ShardsLeft = Shards - S;
      // Close the current shard when its weight slice is full — or when
      // the remaining shards need every remaining function to stay
      // non-empty. At most one boundary per function keeps shards
      // non-empty on the other side.
      if (Acc * Shards >= Total * S || Remaining == ShardsLeft) {
        ShardBounds.push_back(F + 1);
        ++S;
      }
    }
    ShardBounds.push_back(End);
  }

  u64 weightOf(u32 F) const {
    u32 W = WorkerT::funcWeight(M, F);
    return W ? W : 1; // declarations and empty functions still occupy a slot
  }

  void workerMain(unsigned Id) {
    u64 Seen = 0;
    for (;;) {
      PassKind P;
      {
        LockGuard L(Mtx);
        while (!Stop && JobSeq <= Seen)
          JobCV.wait(Mtx);
        if (Stop)
          return;
        Seen = JobSeq;
        P = Phase;
      }
      drainQueue(Id, P);
      {
        LockGuard L(Mtx);
        if (--Pending == 0)
          DoneCV.notify_one();
      }
    }
  }

  void drainQueue(unsigned Id, PassKind P) {
    u32 Shard;
    while (Queue.pop(Id, Shard)) {
      if (P == PassKind::Compile)
        compileShard(Id, Shard);
      else
        placeShard(Shard);
    }
  }

  /// Pass-2 unit of work: memcpy one planned shard into its slice. The
  /// queue hands each shard to exactly one worker and the slices are
  /// disjoint, so no two threads ever write the same output byte;
  /// PlaceOut/Plans were published by the mutex before the job woke the
  /// pool. placeFrom never touches shared assembler state (not even the
  /// error slot), so failure is a per-shard flag handled after the
  /// barrier.
  void placeShard(u32 Shard) {
    if (!PlaceOut[Shard])
      return; // reservation failed; nothing owns bytes here
    if (!PlaceOut[Shard]->placeFrom(*Frags[Shard], Plans[Shard]))
      PlaceFailed[Shard] = 1;
  }

  void compileShard(unsigned Id, u32 Shard) {
    Worker &W = *Workers[Id];
    u32 Begin = ShardBounds[Shard];
    u32 End = ShardBounds[Shard + 1];
    asmx::Assembler &Frag = *Frags[Shard];
    // The queue hands each shard to exactly one worker, so this thread is
    // the only writer of the shard's slot/fragment; the Pending barrier
    // publishes the writes to the calling thread.
    support::CompileStatus &St = ShardStatus[Shard];
    St.clear();
    St.Shard = Shard;
    // Pre-size the fragment's text buffer from the worker's size bound
    // (when it provides one) so the snapshot merge of a first-time-large
    // shard skips the geometric growth ladder. Purely a capacity hint.
    Frag.reset();
    if constexpr (requires(const ModuleT &CM, u32 A) {
                    { WorkerT::shardTextBound(CM, A, A) }
                        -> std::convertible_to<u64>;
                  })
      Frag.text().ensureSpace(static_cast<size_t>(
          WorkerT::shardTextBound(std::as_const(M), Begin, End)));
    auto failShard = [&](support::CompileErr E, std::string_view Msg) {
      Frag.reset(); // never leave a poisoned fragment behind
      St.Err = E;
      St.Message.assign(Msg);
      ShardFailed[Shard] = 1;
    };
    if (support::faultPoint(support::FaultSite::ShardCompile)) {
      failShard(support::CompileErr::FaultInjected,
                "fault injected: shard-compile");
      return;
    }
    // compileRange rewinds (or resets) the worker's assembler itself; after
    // the first compile this hits the symbol-batching fast path and the
    // whole shard compile is allocation-free. A throwing compile (e.g. an
    // injected arena-growth failure) poisons only this shard: the worker's
    // state is rewound wholesale at its next compileRange.
    bool OK = false;
    try {
      OK = W.W.compileRange(Begin, End);
    } catch (...) {
      failShard(support::CompileErr::OutOfMemory,
                "allocation failed during shard compile");
      return;
    }
    if (!OK) {
      // A failed shard may hold half-emitted code with unbound labels; drop
      // it and let the recovery pass isolate the bad function.
      const support::CompileStatus &WS = W.W.status();
      failShard(WS.Err, WS.Message);
      St.Func = WS.Func;
      St.Symbol = WS.Symbol;
      return;
    }
    try {
      Frag.mergeFrom(W.W.assembler());
    } catch (...) { // arena-backed name interning in the snapshot merge
      failShard(support::CompileErr::OutOfMemory,
                "allocation failed snapshotting shard");
      return;
    }
    if (Frag.hasError())
      failShard(Frag.errorCode(), Frag.errorMessage());
  }

  /// (Re)builds the module-level fragment on the calling thread. Returns
  /// false when the compile or the snapshot merge failed; the fragment is
  /// left reset in that case.
  bool compileGlobalsFrag() {
    Worker &W0 = *Workers[0];
    GlobalsFrag.reset();
    bool OK = false;
    try {
      OK = W0.W.compileGlobals();
      if (OK)
        GlobalsFrag.mergeFrom(W0.W.assembler());
    } catch (...) {
      GlobalsFrag.reset();
      return false;
    }
    if (!OK)
      return false;
    if (GlobalsFrag.hasError()) {
      GlobalsFrag.reset();
      return false;
    }
    return true;
  }

  /// Records the module-level diagnostic after the globals fragment failed
  /// twice (initial + retry). Shard/Func stay ~0u: the failure is not
  /// attributable to a function.
  void recordGlobalsFailure() {
    Worker &W0 = *Workers[0];
    support::CompileStatus D;
    const support::CompileStatus &WS = W0.W.status();
    if (!WS.ok()) {
      D.Err = WS.Err;
      D.Message = WS.Message;
    } else {
      D.Err = support::CompileErr::AssemblerError;
      D.Message = "module-level fragment compile failed";
    }
    Diags.push_back(std::move(D));
  }

  /// Recovery for one failed shard: recompiles its functions one at a time
  /// on the calling thread with fresh worker state, merging each success
  /// into the shard fragment and quarantining each failure with a precise
  /// diagnostic. Per-function fragments merged in function order reproduce
  /// the range compile byte for byte (16-byte function alignment, by-name
  /// relocations, content-deduped constant pool), so the good subset stays
  /// identical to a serial compile of that subset.
  void retryShard(u32 S) {
    Worker &W0 = *Workers[0];
    asmx::Assembler &Frag = *Frags[S];
    Frag.reset();
    for (u32 F = ShardBounds[S]; F < ShardBounds[S + 1]; ++F) {
      bool OK = false;
      bool Threw = false;
      try {
        OK = W0.W.compileRange(F, F + 1);
      } catch (...) {
        Threw = true;
      }
      if (OK) {
        bool MergeThrew = false;
        try {
          Frag.mergeFrom(W0.W.assembler());
        } catch (...) { // arena-backed name interning in the merge
          MergeThrew = true;
        }
        if (!MergeThrew && !Frag.hasError())
          continue;
        // The merge itself failed; quarantine this function and rebuild
        // the fragment so earlier good functions are not lost.
        support::CompileStatus D;
        if (MergeThrew) {
          D.Err = support::CompileErr::OutOfMemory;
          D.Message = "allocation failed merging function";
        } else {
          D.Err = Frag.errorCode() == support::CompileErr::FaultInjected
                      ? support::CompileErr::FaultInjected
                      : support::CompileErr::MergeError;
          D.Message.assign(Frag.errorMessage());
        }
        D.Shard = S;
        D.Func = F;
        Diags.push_back(std::move(D));
        rebuildShardFragment(S, F);
        continue;
      }
      support::CompileStatus D;
      if (Threw) {
        D.Err = support::CompileErr::OutOfMemory;
        D.Message = "allocation failed compiling function";
      } else {
        const support::CompileStatus &WS = W0.W.status();
        D.Err = WS.Err;
        D.Symbol = WS.Symbol;
        D.Message = WS.Message;
      }
      D.Shard = S;
      D.Func = F;
      Diags.push_back(std::move(D));
    }
  }

  /// Rebuilds shard \p S's fragment from scratch up to (excluding) the
  /// quarantined function \p Skip after a poisoned merge. Rare (an
  /// injected merge fault); correctness over speed.
  void rebuildShardFragment(u32 S, u32 Skip) {
    Worker &W0 = *Workers[0];
    asmx::Assembler &Frag = *Frags[S];
    Frag.reset();
    for (u32 F = ShardBounds[S]; F < Skip; ++F) {
      bool OK = false;
      try {
        OK = W0.W.compileRange(F, F + 1);
        // These functions compiled and merged cleanly moments ago; a
        // repeat failure (compile or merge) means a second independent
        // fault — give up on the function silently (its diagnostic would
        // duplicate the merge one).
        if (OK)
          Frag.mergeFrom(W0.W.assembler());
      } catch (...) {
      }
    }
  }

  /// Verifier gate: rejects a malformed module with a structured
  /// diagnostic before any codegen. Only instantiated for workers that
  /// expose a static verifyModule(const ModuleT &, std::string &).
  bool verifyGate() {
    if constexpr (requires(const ModuleT &CM, std::string &E) {
                    { WorkerT::verifyModule(CM, E) } -> std::convertible_to<bool>;
                  }) {
      VerifyErrors.clear();
      if (WorkerT::verifyModule(std::as_const(M), VerifyErrors))
        return true;
      support::CompileStatus D;
      D.Err = support::CompileErr::VerifyFailed;
      D.Message = VerifyErrors;
      Diags.push_back(std::move(D));
      FirstStatus = Diags.front();
      return false;
    } else {
      return true;
    }
  }

  ModuleT &M;
  ParallelCompileOptions Opts;
  std::vector<std::unique_ptr<Worker>> Workers;
  /// Per-shard output snapshots, indexed by shard — the schedule-proof
  /// staging area between parallel compilation and the ordered merge.
  std::vector<std::unique_ptr<asmx::Assembler>> Frags;
  asmx::Assembler GlobalsFrag;
  support::WorkStealingRangeQueue Queue;
  /// Shard S = functions [ShardBounds[S], ShardBounds[S+1]); capacity is
  /// retained across compiles (docs/PERF.md).
  std::vector<u32> ShardBounds;
  /// compileJobs() only: job J owns shards
  /// [JobShardBegin[J], JobShardBegin[J+1]); K+1 entries.
  std::vector<u32> JobShardBegin;
  u32 NumShards = 0;
  /// Per-shard failure flag + status slot. Each shard has exactly one
  /// writer (the queue's exactly-once pop) and the Pending==0 barrier
  /// publishes the slots to the calling thread, so no atomics are needed
  /// and the reported first error is keyed by shard index, never by
  /// thread arrival. Capacity is retained across compiles (docs/PERF.md);
  /// only the flags are re-zeroed per compile.
  std::vector<u8> ShardFailed;
  std::vector<support::CompileStatus> ShardStatus;
  /// In-place emission scratch, all capacity-retained across compiles
  /// (docs/PERF.md): shard S's slice plan, its destination assembler
  /// (null = unplanned, skip placement/stitch; compileJobs points
  /// different shards at different job outputs), and the pass-2 failure
  /// flags (same single-writer-then-barrier discipline as ShardFailed).
  std::vector<asmx::MergePlan> Plans;
  std::vector<asmx::Assembler *> PlaceOut;
  std::vector<u8> PlaceFailed;
  /// Per-phase breakdown of the last compile (emitStats()).
  EmitStats Stats;
  /// Diagnostics of the last compile, ordered by (shard, function); built
  /// single-threaded in the recovery pass. FirstStatus mirrors the front.
  std::vector<support::CompileStatus> Diags;
  support::CompileStatus FirstStatus;
  /// Scratch for the verifier gate (reused; docs/PERF.md).
  std::string VerifyErrors;

  /// The one-mutex job handshake. Everything below is GUARDED_BY(Mtx);
  /// the per-shard result slots (ShardStatus, ShardFailed, Frags,
  /// PlaceOut, Plans, PlaceFailed) deliberately are NOT: they are
  /// published to workers by the JobSeq bump under Mtx and read back by
  /// the caller only after the Pending==0 barrier, so each slot is
  /// exclusively owned by one shard's worker between those two fences.
  /// The annotations cannot express that transfer-of-ownership protocol;
  /// TSan verifies it (CI runs the full suite under TSan).
  Mutex Mtx;
  CondVar JobCV, DoneCV;
  /// Bumped per published job; workers wait for it.
  u64 JobSeq TPDE_GUARDED_BY(Mtx) = 0;
  /// Spawned workers still draining the current job.
  unsigned Pending TPDE_GUARDED_BY(Mtx) = 0;
  /// Which pass the current job runs; written under Mtx before the
  /// JobSeq bump that wakes the pool, read by workers under the same
  /// mutex on wake.
  PassKind Phase TPDE_GUARDED_BY(Mtx) = PassKind::Compile;
  bool Stop TPDE_GUARDED_BY(Mtx) = false;
};

} // namespace tpde::core

#endif // TPDE_CORE_PARALLELCOMPILER_H
