//===- core/ParallelCompiler.h - Sharded module compilation -----*- C++ -*-===//
///
/// \file
/// The backend-agnostic parallel module compile driver: compiles a
/// module's functions across N worker threads, each owning a private
/// asmx::Assembler + compiler instance (reset-not-freed, per docs/
/// PERF.md), then deterministically merges the per-shard text/rodata,
/// relocations, and symbol tables into one linkable/JIT-mappable module.
///
/// The driver is a template over the *worker* type — parallel compilation
/// is a framework property, not a per-target feature. A back-end opts in
/// by providing a type satisfying the ParallelCompileWorker concept:
///
///   struct MyWorker {
///     using ModuleT = ...;                 // the IR module type
///     explicit MyWorker(ModuleT &M);       // per-thread state (adapter,
///                                          // assembler, compiler)
///     asmx::Assembler &assembler();        // the worker's private output
///     bool compileGlobals();               // module-level fragment only
///                                          //   (CompilerBase::compileGlobalsOnly)
///     bool compileRange(u32 Begin, u32 End); // functions [Begin, End)
///                                          //   (CompilerBase::compileFunctionRange)
///     static u32 funcCount(const ModuleT &M);
///     static u32 funcWeight(const ModuleT &M, u32 I); // size proxy for
///                                          // shard balancing (e.g. value count)
///   };
///
/// compileRange()/compileGlobals() are thin wrappers over the
/// CompilerBase range entry points, which in turn require the derived
/// compiler to implement the declareGlobals() hook (see
/// core/CompilerBase.h); Assembler::mergeFrom() supplies the cross-shard
/// symbol resolution. Nothing in this file knows about the target or the
/// IR.
///
/// Determinism contract: the merged output is **byte-identical regardless
/// of thread count and schedule**. This falls out of three rules:
///
///  1. The shard decomposition depends only on the module — boundaries
///     are a pure function of the per-function weights and FuncsPerShard,
///     never of the thread count.
///  2. Each shard's output is snapshotted into its own fragment assembler;
///     the work-stealing queue decides *who* compiles a shard, never
///     *where* its bytes land.
///  3. The final merge walks fragments in shard-index order on the calling
///     thread (module-level globals fragment first).
///
/// Cross-shard references (calls, global addresses) work because the code
/// generators only ever reference symbols through relocations: a shard
/// materializes a symbol on demand at its first reference (an undefined
/// declaration when the definition lives elsewhere), and
/// Assembler::mergeFrom() binds those declarations to the defining
/// shard's symbols by interned name. No shard ever registers the whole
/// module symbol table — per-shard symbol cost is O(defined +
/// referenced), so a module compile carries an O(Funcs) total symbol
/// term instead of O(Funcs^2 / FuncsPerShard). The .text bytes of the
/// merged module are identical to a single-assembler serial compile; the
/// read-only data matches the serial pool as well because mergeFrom()
/// content-deduplicates the anonymous FP-pool entries across shards; and
/// the ELF writer emits the symbol table in a canonical content order,
/// so the serial and merged objects are byte-identical end to end.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_CORE_PARALLELCOMPILER_H
#define TPDE_CORE_PARALLELCOMPILER_H

#include "asmx/Assembler.h"
#include "support/WorkQueue.h"

#include <atomic>
#include <concepts>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace tpde::core {

template <typename W>
concept ParallelCompileWorker =
    requires(W Wk, typename W::ModuleT &M, const typename W::ModuleT &CM,
             u32 I) {
      typename W::ModuleT;
      requires std::constructible_from<W, typename W::ModuleT &>;
      { Wk.assembler() } -> std::same_as<asmx::Assembler &>;
      { Wk.compileGlobals() } -> std::convertible_to<bool>;
      { Wk.compileRange(I, I) } -> std::convertible_to<bool>;
      { W::funcCount(CM) } -> std::convertible_to<u32>;
      { W::funcWeight(CM, I) } -> std::convertible_to<u32>;
    };

struct ParallelCompileOptions {
  /// Worker threads including the calling thread; 0 means
  /// std::thread::hardware_concurrency().
  unsigned NumThreads = 0;
  /// Shard granularity in functions. Part of the determinism contract:
  /// the same module always decomposes into the same shards, whatever the
  /// thread count. Smaller shards balance better; larger shards amortize
  /// the per-shard snapshot/merge cost.
  u32 FuncsPerShard = 4;
  /// Weight shard boundaries by the per-function size proxy
  /// (WorkerT::funcWeight) instead of cutting every FuncsPerShard
  /// functions: the shard *count* stays ceil(Funcs / FuncsPerShard), but
  /// the boundaries equalize accumulated weight, so modules with a few
  /// giant functions balance across workers. Still a pure function of the
  /// module — output is independent of the thread count either way.
  bool SizeWeightedShards = true;
};

/// Reusable parallel compilation pipeline for one module. Construction
/// spawns the worker pool; compile() may be called repeatedly (e.g. a JIT
/// recompiling on deoptimization) and is allocation-free in steady state:
/// workers reuse their compiler/assembler state via the module-level
/// symbol-batching fast path, and all fragments retain their capacity.
template <ParallelCompileWorker WorkerT>
class ParallelModuleCompiler {
public:
  using ModuleT = typename WorkerT::ModuleT;

  explicit ParallelModuleCompiler(ModuleT &M, ParallelCompileOptions Opts = {})
      : M(M), Opts(Opts) {
    unsigned N = Opts.NumThreads;
    if (N == 0) {
      N = std::thread::hardware_concurrency();
      if (N == 0)
        N = 1;
    }
    if (this->Opts.FuncsPerShard == 0)
      this->Opts.FuncsPerShard = 1;
    Workers.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Workers.push_back(std::make_unique<Worker>(M));
    // Worker 0 is the calling thread; only 1..N-1 get their own thread.
    for (unsigned I = 1; I < N; ++I)
      Workers[I]->Thread = std::thread([this, I] { workerMain(I); });
  }

  ~ParallelModuleCompiler() {
    {
      std::lock_guard<std::mutex> L(Mtx);
      Stop = true;
    }
    JobCV.notify_all();
    for (auto &W : Workers)
      if (W->Thread.joinable())
        W->Thread.join();
  }

  ParallelModuleCompiler(const ParallelModuleCompiler &) = delete;
  ParallelModuleCompiler &operator=(const ParallelModuleCompiler &) = delete;

  /// Compiles the module into \p Out (which is reset first). Returns
  /// false if any function failed to compile or the merged module is
  /// inconsistent (Out.hasError() has the details).
  bool compile(asmx::Assembler &Out) {
    computeShardBounds();
    while (Frags.size() < NumShards)
      Frags.push_back(std::make_unique<asmx::Assembler>());
    Failed.store(false, std::memory_order_relaxed);
    Queue.reset(NumShards, threadCount());

    // Publish the job. The mutex orders the shard/fragment setup above
    // before any worker starts draining.
    {
      std::lock_guard<std::mutex> L(Mtx);
      ++JobSeq;
      Pending = threadCount() - 1;
    }
    JobCV.notify_all();

    // The calling thread produces the module-level fragment (global data +
    // declarations) and then joins shard compilation as worker 0.
    Worker &W0 = *Workers[0];
    bool GlobalsOK = W0.W.compileGlobals();
    GlobalsFrag.reset();
    GlobalsFrag.mergeFrom(W0.W.assembler());
    if (!GlobalsOK)
      Failed.store(true, std::memory_order_relaxed);
    drainQueue(0);

    {
      std::unique_lock<std::mutex> L(Mtx);
      DoneCV.wait(L, [this] { return Pending == 0; });
    }

    // Deterministic merge: globals fragment first, then every shard in
    // shard-index order — independent of which worker compiled what.
    Out.reset();
    Out.mergeFrom(GlobalsFrag);
    for (u32 S = 0; S < NumShards; ++S)
      Out.mergeFrom(*Frags[S]);
    return !Failed.load(std::memory_order_relaxed) && !Out.hasError();
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }
  u32 shardCount() const { return NumShards; }
  /// Shard S covers functions [shardBounds()[S], shardBounds()[S+1]);
  /// NumShards+1 entries, valid after the first compile().
  std::span<const u32> shardBounds() const { return ShardBounds; }

private:
  struct Worker {
    explicit Worker(ModuleT &M) : W(M) {}
    WorkerT W;
    std::thread Thread; ///< Unjoinable for worker 0 (the calling thread).
  };

  /// Deterministic shard decomposition. The shard count is
  /// ceil(Funcs / FuncsPerShard) as in the unweighted scheme; with
  /// SizeWeightedShards each boundary is placed where the accumulated
  /// function weight reaches the next 1/NumShards slice of the total, so
  /// skewed modules produce balanced shards. Every shard is non-empty and
  /// the bounds depend only on the module and the options.
  void computeShardBounds() {
    const u32 NumFuncs = WorkerT::funcCount(M);
    NumShards = (NumFuncs + Opts.FuncsPerShard - 1) / Opts.FuncsPerShard;
    ShardBounds.clear();
    ShardBounds.push_back(0);
    if (NumShards == 0)
      return;
    if (!Opts.SizeWeightedShards || NumShards == 1) {
      for (u32 S = 1; S < NumShards; ++S)
        ShardBounds.push_back(S * Opts.FuncsPerShard);
      ShardBounds.push_back(NumFuncs);
      return;
    }
    u64 Total = 0;
    for (u32 F = 0; F < NumFuncs; ++F)
      Total += weightOf(F);
    u64 Acc = 0;
    u32 S = 1; // next boundary to place
    for (u32 F = 0; F < NumFuncs && S < NumShards; ++F) {
      Acc += weightOf(F);
      u32 Remaining = NumFuncs - (F + 1);
      u32 ShardsLeft = NumShards - S;
      // Close the current shard when its weight slice is full — or when
      // the remaining shards need every remaining function to stay
      // non-empty. At most one boundary per function keeps shards
      // non-empty on the other side.
      if (Acc * NumShards >= Total * S || Remaining == ShardsLeft) {
        ShardBounds.push_back(F + 1);
        ++S;
      }
    }
    ShardBounds.push_back(NumFuncs);
    assert(ShardBounds.size() == NumShards + 1 && "bad shard decomposition");
  }

  u64 weightOf(u32 F) const {
    u32 W = WorkerT::funcWeight(M, F);
    return W ? W : 1; // declarations and empty functions still occupy a slot
  }

  void workerMain(unsigned Id) {
    u64 Seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> L(Mtx);
        JobCV.wait(L, [&] { return Stop || JobSeq > Seen; });
        if (Stop)
          return;
        Seen = JobSeq;
      }
      drainQueue(Id);
      {
        std::lock_guard<std::mutex> L(Mtx);
        if (--Pending == 0)
          DoneCV.notify_one();
      }
    }
  }

  void drainQueue(unsigned Id) {
    u32 Shard;
    while (Queue.pop(Id, Shard))
      compileShard(Id, Shard);
  }

  void compileShard(unsigned Id, u32 Shard) {
    Worker &W = *Workers[Id];
    u32 Begin = ShardBounds[Shard];
    u32 End = ShardBounds[Shard + 1];
    // compileRange rewinds (or resets) the worker's assembler itself; after
    // the first compile this hits the symbol-batching fast path and the
    // whole shard compile is allocation-free.
    bool OK = W.W.compileRange(Begin, End);
    asmx::Assembler &Frag = *Frags[Shard];
    Frag.reset();
    if (OK) {
      Frag.mergeFrom(W.W.assembler());
    } else {
      // A failed shard may hold half-emitted code with unbound labels; drop
      // it (the compile reports failure) instead of merging garbage.
      Failed.store(true, std::memory_order_relaxed);
    }
  }

  ModuleT &M;
  ParallelCompileOptions Opts;
  std::vector<std::unique_ptr<Worker>> Workers;
  /// Per-shard output snapshots, indexed by shard — the schedule-proof
  /// staging area between parallel compilation and the ordered merge.
  std::vector<std::unique_ptr<asmx::Assembler>> Frags;
  asmx::Assembler GlobalsFrag;
  support::WorkStealingRangeQueue Queue;
  /// Shard S = functions [ShardBounds[S], ShardBounds[S+1]); capacity is
  /// retained across compiles (docs/PERF.md).
  std::vector<u32> ShardBounds;
  u32 NumShards = 0;
  std::atomic<bool> Failed{false};

  std::mutex Mtx;
  std::condition_variable JobCV, DoneCV;
  u64 JobSeq = 0;       ///< Bumped per compile(); workers wait for it.
  unsigned Pending = 0; ///< Spawned workers still draining the current job.
  bool Stop = false;
};

} // namespace tpde::core

#endif // TPDE_CORE_PARALLELCOMPILER_H
