//===- workloads/Generator.cpp - Synthetic TIR program generation ---------===//

#include "workloads/Generator.h"

using namespace tpde;
using namespace tpde::tir;
using namespace tpde::workloads;

namespace {

/// Builds one structured, always-terminating function. Loops have constant
/// trip counts; all memory accesses are masked into a scratch global.
class FuncGen {
public:
  FuncGen(Module &M, const std::string &Name, const Profile &P, u32 Scratch,
          u32 FuncIdxLimit)
      : M(M), R(P.Seed ^ std::hash<std::string>{}(Name)), P(P),
        B(M, Name, Type::I64, {Type::I64, Type::I64}), Scratch(Scratch),
        CallLimit(FuncIdxLimit) {}

  u32 run() {
    BlockRef Entry = B.addBlock("entry");
    B.setInsertPoint(Entry);
    if (P.SSAForm) {
      Pool = {B.arg(0), B.arg(1), B.constInt(Type::I64, 17),
              B.constInt(Type::I64, -42)};
    } else {
      // -O0 flavor: locals live in stack slots.
      for (u32 I = 0; I < 8; ++I)
        Slots.push_back(B.stackVar(8, 8));
      B.store(B.arg(0), Slots[0]);
      B.store(B.arg(1), Slots[1]);
      for (u32 I = 2; I < 8; ++I)
        B.store(B.constInt(Type::I64, static_cast<i64>(I * 1337 + 7)),
                Slots[I]);
    }
    genSeq(0, P.RegionBudget);
    // Fold a few values into the return.
    ValRef Acc = readVal();
    Acc = B.binop(Op::Xor, Acc, readVal());
    Acc = B.binop(Op::Add, Acc, readVal());
    B.ret(Acc);
    B.finish();
    return B.funcIndex();
  }

private:
  Module &M;
  Rng R;
  Profile P;
  FunctionBuilder B;
  u32 Scratch;
  u32 CallLimit;
  std::vector<ValRef> Pool;  ///< SSA mode: available i64 values.
  std::vector<ValRef> Slots; ///< O0 mode: i64 stack slots.

  ValRef c64(i64 V) { return B.constInt(Type::I64, V); }

  ValRef readVal() {
    if (P.SSAForm)
      return Pool[R.below(Pool.size())];
    return B.load(Type::I64, Slots[R.below(Slots.size())]);
  }

  void writeVal(ValRef V) {
    if (P.SSAForm) {
      if (Pool.size() < 24)
        Pool.push_back(V);
      else
        Pool[R.below(Pool.size())] = V;
      return;
    }
    B.store(V, Slots[R.below(Slots.size())]);
  }

  // --- Straight-line instruction recipes -------------------------------

  void emitInsts(u32 N) {
    for (u32 I = 0; I < N; ++I) {
      u32 Roll = static_cast<u32>(R.below(100));
      if (Roll < P.MemoryPct) {
        emitMemoryOp();
      } else if (Roll < P.MemoryPct + P.FloatPct) {
        emitFloatOp();
      } else if (Roll < P.MemoryPct + P.FloatPct + P.CallPct &&
                 CallLimit > 0) {
        emitCall();
      } else if (Roll < P.MemoryPct + P.FloatPct + P.CallPct + P.I128Pct) {
        emitI128Op();
      } else if (Roll <
                 P.MemoryPct + P.FloatPct + P.CallPct + P.I128Pct +
                     P.NarrowPct) {
        emitNarrowOp();
      } else {
        emitIntOp();
      }
    }
  }

  void emitIntOp() {
    ValRef A = readVal(), Bv = readVal();
    ValRef Res;
    switch (R.below(10)) {
    case 0:
      Res = B.binop(Op::Add, A, Bv);
      break;
    case 1:
      Res = B.binop(Op::Sub, A, Bv);
      break;
    case 2:
      Res = B.binop(Op::Mul, A, Bv);
      break;
    case 3:
      Res = B.binop(Op::And, A, Bv);
      break;
    case 4:
      Res = B.binop(Op::Or, A, Bv);
      break;
    case 5:
      Res = B.binop(Op::Xor, A, Bv);
      break;
    case 6: {
      ValRef Amt = B.binop(Op::And, Bv, c64(63));
      Op O = R.chance(1, 2) ? Op::Shl
                            : (R.chance(1, 2) ? Op::LShr : Op::AShr);
      Res = B.binop(O, A, Amt);
      break;
    }
    case 7: {
      // Guarded division: positive dividend, non-zero divisor.
      ValRef Divd = B.binop(Op::And, A, c64(0x7fffffffffffffffll));
      ValRef Divr = B.binop(Op::Or, Bv, c64(1));
      Op O = R.chance(1, 2) ? (R.chance(1, 2) ? Op::SDiv : Op::SRem)
                            : (R.chance(1, 2) ? Op::UDiv : Op::URem);
      Res = B.binop(O, Divd, Divr);
      break;
    }
    case 8: {
      ValRef C = B.icmp(static_cast<ICmp>(R.below(10)), A, Bv);
      Res = B.select(C, A, Bv);
      break;
    }
    default: {
      ValRef C = B.icmp(static_cast<ICmp>(R.below(10)), A, Bv);
      Res = B.cast(Op::Zext, Type::I64, C);
      break;
    }
    }
    writeVal(Res);
  }

  void emitNarrowOp() {
    static constexpr Type NarrowTys[3] = {Type::I8, Type::I16, Type::I32};
    Type Ty = NarrowTys[R.below(3)];
    ValRef A = B.cast(Op::Trunc, Ty, readVal());
    ValRef Bv = B.cast(Op::Trunc, Ty, readVal());
    Op Ops[6] = {Op::Add, Op::Sub, Op::Mul, Op::And, Op::Or, Op::Xor};
    ValRef Res = B.binop(Ops[R.below(6)], A, Bv);
    Res = R.chance(1, 2) ? B.cast(Op::Sext, Type::I64, Res)
                         : B.cast(Op::Zext, Type::I64, Res);
    writeVal(Res);
  }

  void emitFloatOp() {
    ValRef A = B.cast(Op::SiToFp, Type::F64, readVal());
    ValRef Bv = B.cast(Op::SiToFp, Type::F64, readVal());
    ValRef Res;
    switch (R.below(5)) {
    case 0:
      Res = B.binop(Op::FAdd, A, Bv);
      break;
    case 1:
      Res = B.binop(Op::FSub, A, Bv);
      break;
    case 2:
      Res = B.binop(Op::FMul, A, Bv);
      break;
    case 3:
      Res = B.binop(Op::FDiv, A,
                    B.binop(Op::FAdd, Bv, B.constF64(1.5)));
      break;
    default: {
      ValRef C = B.fcmp(static_cast<FCmp>(R.below(6)), A, Bv);
      writeVal(B.cast(Op::Zext, Type::I64, C));
      return;
    }
    }
    writeVal(B.cast(Op::FpToSi, Type::I64, Res));
  }

  void emitMemoryOp() {
    ValRef Idx = B.binop(Op::And, readVal(), c64(63));
    ValRef Ptr = B.ptrAdd(B.globalAddr(Scratch), Idx, 8, 0);
    if (R.chance(1, 2)) {
      writeVal(B.load(Type::I64, Ptr));
    } else {
      B.store(readVal(), Ptr);
      // Narrow access variety.
      if (R.chance(1, 4)) {
        ValRef P8 = B.ptrAdd(B.globalAddr(Scratch), Idx, 1, 64);
        B.store(B.cast(Op::Trunc, Type::I8, readVal()), P8);
        writeVal(B.cast(Op::Zext, Type::I64, B.load(Type::I8, P8)));
      }
    }
  }

  void emitI128Op() {
    ValRef A = B.cast(Op::Zext, Type::I128, readVal());
    ValRef Bv = B.cast(Op::Zext, Type::I128, readVal());
    ValRef Wide = B.binop(Op::Shl, Bv, B.constInt(Type::I128, 64));
    ValRef X = B.binop(Op::Or, A, Wide);
    ValRef Y = B.cast(Op::Zext, Type::I128, readVal());
    Op Ops[5] = {Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor};
    ValRef Res = B.binop(Ops[R.below(5)], X, Y);
    ValRef Hi = B.binop(Op::LShr, Res, B.constInt(Type::I128, 64));
    ValRef Folded = B.binop(Op::Xor, B.cast(Op::Trunc, Type::I64, Res),
                            B.cast(Op::Trunc, Type::I64, Hi));
    writeVal(Folded);
  }

  void emitCall() {
    u32 Callee = static_cast<u32>(R.below(CallLimit));
    ValRef Res = B.call(Callee, Type::I64, {readVal(), readVal()});
    writeVal(Res);
  }

  // --- Structured control flow ------------------------------------------

  void genSeq(u32 Depth, u32 Budget) {
    while (Budget > 0) {
      u32 Roll = static_cast<u32>(R.below(100));
      if (Depth < 3 && Roll < P.BranchPct && Budget >= 3) {
        genIf(Depth);
        Budget -= 3;
      } else if (Depth < P.MaxLoopDepth && Roll < P.BranchPct + 25 &&
                 Budget >= 4) {
        genLoop(Depth);
        Budget -= 4;
      } else {
        emitInsts(P.InstsPerBlock);
        Budget -= 1;
      }
    }
  }

  void genIf(u32 Depth) {
    ValRef C = B.icmp(static_cast<ICmp>(R.below(10)), readVal(), readVal());
    BlockRef ThenB = B.addBlock(), ElseB = B.addBlock(), JoinB = B.addBlock();
    B.condBr(C, ThenB, ElseB);

    std::vector<ValRef> Saved = Pool;
    B.setInsertPoint(ThenB);
    emitInsts(P.InstsPerBlock / 2 + 1);
    if (Depth < 2 && R.chance(1, 3))
      genSeq(Depth + 1, 2);
    ValRef TV = readVal();
    BlockRef ThenEnd = B.insertPoint();
    B.br(JoinB);

    Pool = Saved;
    B.setInsertPoint(ElseB);
    emitInsts(P.InstsPerBlock / 2 + 1);
    ValRef EV = readVal();
    BlockRef ElseEnd = B.insertPoint();
    B.br(JoinB);

    Pool = Saved;
    B.setInsertPoint(JoinB);
    if (P.SSAForm) {
      ValRef Phi = B.phi(Type::I64);
      B.addPhiIncoming(Phi, ThenEnd, TV);
      B.addPhiIncoming(Phi, ElseEnd, EV);
      writeVal(Phi);
    }
  }

  void genLoop(u32 Depth) {
    i64 Trip = R.range(1, static_cast<i64>(P.MaxLoopTrip));
    BlockRef Pre = B.insertPoint();
    BlockRef Header = B.addBlock(), Exit = B.addBlock();

    if (P.SSAForm) {
      ValRef AccInit = readVal();
      B.br(Header);
      B.setInsertPoint(Header);
      ValRef IPhi = B.phi(Type::I64);
      ValRef AccPhi = B.phi(Type::I64);
      std::vector<ValRef> Saved = Pool;
      Pool.push_back(IPhi);
      Pool.push_back(AccPhi);
      emitInsts(P.InstsPerBlock);
      if (Depth + 1 < P.MaxLoopDepth && R.chance(1, 3))
        genSeq(Depth + 1, 2);
      ValRef Mixin = readVal();
      ValRef Acc2 = B.binop(Op::Add, AccPhi, Mixin);
      ValRef I2 = B.binop(Op::Add, IPhi, c64(1));
      ValRef C = B.icmp(ICmp::Slt, I2, c64(Trip));
      BlockRef Latch = B.insertPoint();
      B.condBr(C, Header, Exit);
      B.addPhiIncoming(IPhi, Pre, c64(0));
      B.addPhiIncoming(IPhi, Latch, I2);
      B.addPhiIncoming(AccPhi, Pre, AccInit);
      B.addPhiIncoming(AccPhi, Latch, Acc2);
      Pool = Saved;
      B.setInsertPoint(Exit);
      Pool.push_back(Acc2);
      return;
    }
    // O0 flavor: counter lives in a stack slot; no phis.
    ValRef ISlot = B.stackVar(8, 8);
    B.store(c64(0), ISlot);
    B.br(Header);
    B.setInsertPoint(Header);
    emitInsts(P.InstsPerBlock);
    if (Depth + 1 < P.MaxLoopDepth && R.chance(1, 3))
      genSeq(Depth + 1, 2);
    ValRef I = B.load(Type::I64, ISlot);
    ValRef I2 = B.binop(Op::Add, I, c64(1));
    B.store(I2, ISlot);
    ValRef C = B.icmp(ICmp::Slt, I2, c64(Trip));
    B.condBr(C, Header, Exit);
    B.setInsertPoint(Exit);
  }
};

u32 ensureScratchGlobal(Module &M) {
  for (u32 I = 0; I < M.Globals.size(); ++I)
    if (M.Globals[I].Name == "wl_scratch")
      return I;
  // 64 i64 slots plus 64 bytes for narrow accesses.
  std::vector<u8> Init(576);
  for (size_t I = 0; I < Init.size(); ++I)
    Init[I] = static_cast<u8>(I * 31 + 7);
  return addGlobal(M, "wl_scratch", 576, 16, /*ReadOnly=*/false,
                   std::move(Init));
}

} // namespace

u32 tpde::workloads::genFunction(Module &M, const std::string &Name,
                                 Profile P) {
  u32 Scratch = ensureScratchGlobal(M);
  u32 Limit = 0;
  // Only call previously generated i64(i64,i64) functions; cap call depth
  // by construction (a function can only call lower-numbered ones).
  for (u32 I = 0; I < M.Funcs.size(); ++I)
    if (!M.Funcs[I].IsDeclaration && M.Funcs[I].ParamTys.size() == 2 &&
        M.Funcs[I].RetTy == Type::I64)
      Limit = I + 1;
  FuncGen G(M, Name, P, Scratch, P.CallPct ? Limit : 0);
  return G.run();
}

void tpde::workloads::genModule(Module &M, const Profile &P) {
  u32 Scratch = ensureScratchGlobal(M);
  (void)Scratch;
  std::vector<u32> Fns;
  for (u32 I = 0; I < P.NumFuncs; ++I) {
    Profile FP = P;
    FP.Seed = P.Seed * 1000003 + I;
    Fns.push_back(genFunction(M, "f" + std::to_string(I), FP));
  }
  // Driver: xors all function results.
  FunctionBuilder B(M, "main_entry", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef Acc = B.constInt(Type::I64, 0);
  for (u32 I = 0; I < Fns.size(); ++I) {
    ValRef A = B.binop(Op::Xor, B.arg(0), B.constInt(Type::I64, I));
    ValRef Bv = B.binop(Op::Add, B.arg(1), B.constInt(Type::I64, I * 3));
    Acc = B.binop(Op::Xor, Acc, B.call(Fns[I], Type::I64, {A, Bv}));
  }
  B.ret(Acc);
  B.finish();
}

std::vector<uir::QueryPlan>
tpde::workloads::genQueryPlans(const QueryProfile &P) {
  std::vector<uir::QueryPlan> Out;
  Out.reserve(P.NumQueries);
  Rng R(P.Seed * 0x9e3779b97f4a7c15ull + 0x7);
  static constexpr uir::UOp Cmps[4] = {uir::UOp::CmpLt, uir::UOp::CmpLe,
                                   uir::UOp::CmpEq, uir::UOp::CmpNe};
  for (u32 Q = 0; Q < P.NumQueries; ++Q) {
    uir::QueryPlan Plan;
    Plan.Name = "gq" + std::to_string(Q);
    u32 NumPreds = 1 + static_cast<u32>(R.below(P.MaxPreds));
    for (u32 I = 0; I < NumPreds; ++I) {
      uir::Pred Pr;
      Pr.Col = static_cast<u32>(R.below(P.NumCols));
      Pr.Cmp = Cmps[R.below(4)];
      Pr.K = R.range(0, P.KeyRange - 1);
      Plan.Preds.push_back(Pr);
    }
    Plan.AggColA = static_cast<u32>(R.below(P.NumCols));
    Plan.AggColB = static_cast<u32>(R.below(P.NumCols));
    Plan.AggK = R.range(-16, 16);
    Plan.Checked = R.chance(1, 2);
    if (R.below(100) < P.FpPredPct) {
      Plan.HasFpPred = true;
      Plan.FpPredCol = static_cast<u32>(R.below(P.NumCols));
      // A small shared threshold set: distinct queries rematerialize the
      // *same* f64 constant, so the per-shard FP pools overlap and the
      // merge-time content dedup has real work to do.
      Plan.FpK = 125.0 * static_cast<double>(1 + R.below(6));
    }
    Out.push_back(std::move(Plan));
  }
  return Out;
}

void tpde::workloads::genQueryModule(uir::UModule &M,
                                     const QueryProfile &P) {
  for (const uir::QueryPlan &Plan : genQueryPlans(P))
    uir::compilePlan(M, Plan);
}

std::vector<NamedProfile> tpde::workloads::specLikeProfiles(bool O0Flavor) {
  // Profiles roughly mimic the IR character of each SPECint benchmark:
  // perl/gcc/xalanc are big and branchy, mcf is memory-bound, x264/xz are
  // arithmetic-loop-heavy, deepsjeng is bit-twiddly, leela has FP.
  auto Mk = [&](const char *Name, u64 Seed, u32 Funcs, u32 Budget, u32 Ipb,
                u32 LoopDepth, u32 Mem, u32 Fp, u32 Call, u32 Branch,
                u32 Narrow) {
    Profile P;
    P.Seed = Seed;
    P.NumFuncs = Funcs;
    P.RegionBudget = Budget;
    P.InstsPerBlock = Ipb;
    P.MaxLoopDepth = LoopDepth;
    P.MemoryPct = Mem;
    P.FloatPct = Fp;
    P.CallPct = Call;
    P.BranchPct = Branch;
    P.NarrowPct = Narrow;
    P.SSAForm = !O0Flavor;
    return NamedProfile{Name, P};
  };
  return {
      Mk("600.perlbench", 600, 48, 12, 7, 1, 30, 0, 8, 45, 25),
      Mk("602.gcc", 602, 64, 16, 8, 2, 25, 0, 6, 40, 15),
      Mk("605.mcf", 605, 16, 10, 8, 2, 45, 0, 2, 25, 5),
      Mk("620.omnetpp", 620, 40, 10, 7, 1, 25, 5, 12, 35, 10),
      Mk("623.xalancbmk", 623, 56, 12, 7, 1, 25, 0, 10, 40, 15),
      Mk("625.x264", 625, 24, 14, 12, 3, 30, 5, 3, 15, 30),
      Mk("631.deepsjeng", 631, 24, 12, 10, 2, 20, 0, 6, 30, 20),
      Mk("641.leela", 641, 24, 12, 9, 2, 20, 25, 6, 25, 5),
      Mk("657.xz", 657, 16, 12, 11, 3, 35, 0, 2, 20, 35),
  };
}

// --- Adversarial generation ------------------------------------------------

const char *tpde::workloads::malformKindName(MalformKind K) {
  switch (K) {
  case MalformKind::DanglingOperand: return "dangling_operand";
  case MalformKind::PhiPredMismatch: return "phi_pred_mismatch";
  case MalformKind::NonDominatingUse: return "non_dominating_use";
  case MalformKind::BadTerminator: return "bad_terminator";
  case MalformKind::DuplicateName: return "duplicate_name";
  }
  return "unknown";
}

u32 tpde::workloads::genMalformed(Module &M, MalformKind K) {
  std::string Name = std::string("bad_") + malformKindName(K);
  switch (K) {
  case MalformKind::DanglingOperand: {
    // x = add(a0, a1); ret x — then point the add's first operand past
    // the value table.
    FunctionBuilder B(M, Name, Type::I64, {Type::I64, Type::I64});
    B.setInsertPoint(B.addBlock("entry"));
    ValRef X = B.binop(Op::Add, B.arg(0), B.arg(1));
    B.ret(X);
    B.finish();
    Function &F = B.func();
    F.OperandPool[F.val(X).OpBegin] = F.valueCount() + 7;
    return B.funcIndex();
  }
  case MalformKind::PhiPredMismatch: {
    // Diamond whose join phi only lists one of its two predecessors.
    FunctionBuilder B(M, Name, Type::I64, {Type::I64, Type::I64});
    BlockRef E = B.addBlock("entry"), B1 = B.addBlock("then"),
             B2 = B.addBlock("else"), B3 = B.addBlock("join");
    B.setInsertPoint(E);
    B.condBr(B.icmp(ICmp::Slt, B.arg(0), B.arg(1)), B1, B2);
    B.setInsertPoint(B1);
    ValRef X = B.binop(Op::Add, B.arg(0), B.arg(1));
    B.br(B3);
    B.setInsertPoint(B2);
    B.br(B3);
    B.setInsertPoint(B3);
    ValRef P = B.phi(Type::I64);
    B.addPhiIncoming(P, B1, X); // missing the B2 incoming
    B.ret(P);
    B.finish();
    return B.funcIndex();
  }
  case MalformKind::NonDominatingUse: {
    // Diamond where one arm's definition is used at the join (the other
    // arm reaches the join without defining it).
    FunctionBuilder B(M, Name, Type::I64, {Type::I64, Type::I64});
    BlockRef E = B.addBlock("entry"), B1 = B.addBlock("then"),
             B2 = B.addBlock("else"), B3 = B.addBlock("join");
    B.setInsertPoint(E);
    B.condBr(B.icmp(ICmp::Slt, B.arg(0), B.arg(1)), B1, B2);
    B.setInsertPoint(B1);
    ValRef X = B.binop(Op::Add, B.arg(0), B.arg(1));
    B.br(B3);
    B.setInsertPoint(B2);
    B.br(B3);
    B.setInsertPoint(B3);
    B.ret(X); // 'then' does not dominate 'join'
    B.finish();
    return B.funcIndex();
  }
  case MalformKind::BadTerminator: {
    // Instruction appended after the block terminator.
    FunctionBuilder B(M, Name, Type::I64, {Type::I64, Type::I64});
    B.setInsertPoint(B.addBlock("entry"));
    B.ret(B.arg(0));
    B.binop(Op::Add, B.arg(0), B.arg(1));
    B.finish();
    return B.funcIndex();
  }
  case MalformKind::DuplicateName: {
    // Two strong definitions of the same symbol; each body is valid, so
    // only the module-level check can catch this.
    u32 Idx = 0;
    for (int I = 0; I < 2; ++I) {
      FunctionBuilder B(M, Name, Type::I64, {Type::I64, Type::I64});
      B.setInsertPoint(B.addBlock("entry"));
      B.ret(B.binop(I == 0 ? Op::Add : Op::Sub, B.arg(0), B.arg(1)));
      B.finish();
      Idx = B.funcIndex();
    }
    return Idx;
  }
  }
  TPDE_UNREACHABLE("bad MalformKind");
}
