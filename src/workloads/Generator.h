//===- workloads/Generator.h - Synthetic TIR program generation -*- C++ -*-===//
///
/// \file
/// Deterministic random generation of structured, always-terminating TIR
/// functions and modules. Two uses:
///
///  1. Differential testing: random programs are run through the reference
///     interpreter and every back-end; results must agree.
///  2. Benchmark workloads: the SPECint 2017 programs of the paper's
///     evaluation (§5.2) are not available offline, so each benchmark is
///     substituted by a deterministic synthetic program whose IR-level
///     profile (function count/size, loop structure, memory traffic, FP
///     share, call density, branchiness) mimics the original's character.
///     Both IR flavors from the paper are supported: "-O0" (locals on the
///     stack, loads/stores everywhere, almost no phis) and "-O1" (values
///     in SSA registers, loop-carried phis).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_WORKLOADS_GENERATOR_H
#define TPDE_WORKLOADS_GENERATOR_H

#include "support/Rng.h"
#include "tir/Builder.h"
#include "uir/UIR.h"

#include <string>
#include <vector>

namespace tpde::workloads {

/// Tunable shape of one generated function/module.
struct Profile {
  u64 Seed = 1;
  u32 NumFuncs = 10;
  /// Approximate structured-region budget per function (drives block count).
  u32 RegionBudget = 12;
  u32 InstsPerBlock = 8;
  u32 MaxLoopDepth = 2;
  u32 MaxLoopTrip = 6;
  /// Percentages (0-100) steering instruction selection.
  u32 MemoryPct = 25;
  u32 FloatPct = 10;
  u32 CallPct = 5;
  u32 BranchPct = 30;
  u32 I128Pct = 2;
  u32 NarrowPct = 15; ///< i8/i16/i32 operations.
  /// False: "-O0" flavor (stack locals, no phis). True: "-O1" (SSA, phis).
  bool SSAForm = true;
};

/// Generates one function named \p Name in \p M; signature is always
/// i64(i64, i64). Also creates (once per module) a scratch global the
/// memory operations touch. Returns the function index.
u32 genFunction(tir::Module &M, const std::string &Name, Profile P);

/// Generates a whole module: NumFuncs functions f0..fN (each i64(i64,i64))
/// plus a driver "main_entry" calling all of them and folding the results.
void genModule(tir::Module &M, const Profile &P);

/// The nine SPECint-2017-like benchmark profiles used by the paper's
/// figures (5-8). \p O0Flavor selects the unoptimized-IR variant.
struct NamedProfile {
  const char *Name;
  Profile P;
};
std::vector<NamedProfile> specLikeProfiles(bool O0Flavor);

/// Shape of a generated many-query UIR module (the §7 Umbra scenario at
/// scale: a database compiling hundreds to thousands of queries into one
/// module). Deterministic in the seed.
struct QueryProfile {
  u64 Seed = 1;
  u32 NumQueries = 256;
  u32 NumCols = 8;       ///< Table width the predicates/aggregates draw from.
  u32 MaxPreds = 4;      ///< 1..MaxPreds integer predicates per query.
  /// Percentage (0-100) of queries carrying a floating-point predicate
  /// (i2f(col) < k with a rematerialized f64 constant — FP-pool traffic;
  /// the thresholds repeat across queries so cross-shard pool dedup is
  /// exercised, not just per-shard pools).
  u32 FpPredPct = 25;
  i64 KeyRange = 1000;   ///< Integer predicate constants in [0, KeyRange).
};

/// Generates the plans of a query module: names gq0..gqN-1, unique per
/// module. Returned separately so tests/benches can evaluate the
/// interpreted reference per plan.
std::vector<uir::QueryPlan> genQueryPlans(const QueryProfile &P);

/// Compiles every generated plan into \p M (one UIR function per query).
void genQueryModule(uir::UModule &M, const QueryProfile &P);

// --- Adversarial generation (robustness testing) --------------------------

/// One mutation class of deliberately malformed TIR. Each produces a
/// small function that is guaranteed to exhibit exactly that defect, for
/// testing that the verifier pre-pass rejects it before codegen
/// (docs/ROBUSTNESS.md).
enum class MalformKind : u8 {
  DanglingOperand,  ///< Operand index past the value table.
  PhiPredMismatch,  ///< Phi incomings disagree with the block's preds.
  NonDominatingUse, ///< A use the definition does not dominate.
  BadTerminator,    ///< Instruction after the block terminator.
  DuplicateName,    ///< Two strong definitions of the same name.
};
inline constexpr u32 NumMalformKinds = 5;
const char *malformKindName(MalformKind K);

/// Appends function(s) exhibiting exactly the defect \p K to \p M (any
/// existing valid functions are untouched, so a mixed good/bad module can
/// be built). Returns the index of the malformed function.
/// tir::verifyModule must reject the resulting module.
u32 genMalformed(tir::Module &M, MalformKind K);

} // namespace tpde::workloads

#endif // TPDE_WORKLOADS_GENERATOR_H
