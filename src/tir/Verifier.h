//===- tir/Verifier.h - Structural and SSA validation for TIR ---*- C++ -*-===//
///
/// \file
/// Validates TIR functions: block structure, operand sanity, phi/predecessor
/// agreement, the supported i128 operation subset, and SSA dominance (via an
/// iterative dominator-tree computation). Returns human-readable errors.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TIR_VERIFIER_H
#define TPDE_TIR_VERIFIER_H

#include "tir/TIR.h"

#include <string>

namespace tpde::tir {

/// Verifies one function; appends problems to \p Errors. Returns true if
/// the function is well-formed.
bool verifyFunction(const Module &M, const Function &F, std::string &Errors);

/// Verifies all function definitions in the module.
bool verifyModule(const Module &M, std::string &Errors);

/// Computes immediate dominators for \p F (index = block, value = idom
/// block; entry's idom is itself). Exposed for tests and analyses.
std::vector<BlockRef> computeIDom(const Function &F);

} // namespace tpde::tir

#endif // TPDE_TIR_VERIFIER_H
