//===- tir/Interp.cpp - Reference interpreter for TIR ---------------------===//

#include "tir/Interp.h"

#include <cmath>
#include <cstring>

using namespace tpde;
using namespace tpde::tir;

using u128 = unsigned __int128;
using i128 = __int128;

namespace {

u128 toU128(Interp::Val V) { return (static_cast<u128>(V.Hi) << 64) | V.Lo; }
Interp::Val fromU128(u128 V) {
  return {static_cast<u64>(V), static_cast<u64>(V >> 64)};
}

/// Truncates/normalizes \p V to the bit width of \p Ty.
Interp::Val normalize(Type Ty, Interp::Val V) {
  switch (Ty) {
  case Type::I1:
    return {V.Lo & 1, 0};
  case Type::I8:
    return {V.Lo & 0xFF, 0};
  case Type::I16:
    return {V.Lo & 0xFFFF, 0};
  case Type::I32:
  case Type::F32:
    return {V.Lo & 0xFFFFFFFF, 0};
  case Type::I64:
  case Type::F64:
  case Type::Ptr:
    return {V.Lo, 0};
  default:
    return V;
  }
}

u32 bitWidth(Type Ty) {
  switch (Ty) {
  case Type::I1:
    return 1;
  case Type::I8:
    return 8;
  case Type::I16:
    return 16;
  case Type::I32:
    return 32;
  case Type::I64:
  case Type::Ptr:
    return 64;
  case Type::I128:
    return 128;
  default:
    TPDE_UNREACHABLE("not an integer type");
  }
}

i128 signExtendVal(Type Ty, Interp::Val V) {
  u32 W = bitWidth(Ty);
  u128 U = toU128(V);
  if (W == 128)
    return static_cast<i128>(U);
  u128 Sign = static_cast<u128>(1) << (W - 1);
  return static_cast<i128>((U ^ Sign) - Sign);
}

double asF64(Interp::Val V) {
  double D;
  std::memcpy(&D, &V.Lo, 8);
  return D;
}
float asF32(Interp::Val V) {
  float F;
  u32 B = static_cast<u32>(V.Lo);
  std::memcpy(&F, &B, 4);
  return F;
}
Interp::Val fromF64(double D) {
  Interp::Val V;
  std::memcpy(&V.Lo, &D, 8);
  return V;
}
Interp::Val fromF32(float F) {
  Interp::Val V;
  u32 B;
  std::memcpy(&B, &F, 4);
  V.Lo = B;
  return V;
}

} // namespace

Interp::Interp(const Module &M) : M(M) {
  GlobalMem.reserve(M.Globals.size());
  for (const Global &G : M.Globals) {
    std::vector<u8> Mem(G.Size, 0);
    if (!G.Init.empty())
      std::memcpy(Mem.data(), G.Init.data(),
                  G.Init.size() < G.Size ? G.Init.size() : G.Size);
    GlobalMem.push_back(std::move(Mem));
  }
}

std::optional<Interp::Val> Interp::run(u32 FuncIdx,
                                       const std::vector<Val> &Args) {
  return exec(FuncIdx, Args, 0);
}

std::optional<Interp::Val> Interp::exec(u32 FuncIdx,
                                        const std::vector<Val> &Args,
                                        unsigned Depth) {
  if (Depth > 400)
    return std::nullopt; // stack depth trap
  const Function &F = M.Funcs[FuncIdx];
  assert(!F.IsDeclaration && "cannot interpret a declaration");
  assert(Args.size() == F.ParamTys.size() && "argument count mismatch");

  std::vector<Val> Vals(F.Values.size());
  // Stack variable arena.
  u64 ArenaSize = 0;
  for (ValRef SV : F.StackVars) {
    const Value &V = F.val(SV);
    ArenaSize = alignTo(ArenaSize, V.Aux2 ? V.Aux2 : 8) + V.Aux;
  }
  std::vector<u8> Arena(ArenaSize ? ArenaSize : 1);
  {
    u64 Off = 0;
    for (ValRef SV : F.StackVars) {
      const Value &V = F.val(SV);
      Off = alignTo(Off, V.Aux2 ? V.Aux2 : 8);
      Vals[SV] = {reinterpret_cast<u64>(Arena.data() + Off), 0};
      Off += V.Aux;
    }
  }

  // Evaluates constant-like values on the fly; others from the array.
  auto get = [&](ValRef R) -> Val {
    const Value &V = F.val(R);
    switch (V.Kind) {
    case ValKind::ConstInt:
    case ValKind::ConstFP:
      return normalize(V.Ty, {V.Aux, V.Aux2});
    case ValKind::GlobalAddr:
      return {reinterpret_cast<u64>(GlobalMem[V.Aux].data()), 0};
    default:
      return Vals[R];
    }
  };

  for (u32 I = 0; I < Args.size(); ++I)
    Vals[F.Args[I]] = normalize(F.ParamTys[I], Args[I]);

  BlockRef Cur = 0, Prev = InvalidRef;
  for (;;) {
    const Block &B = F.Blocks[Cur];
    // Phis: parallel evaluation.
    if (!B.Phis.empty()) {
      std::vector<Val> PhiVals(B.Phis.size());
      for (size_t P = 0; P < B.Phis.size(); ++P) {
        const Value &Phi = F.val(B.Phis[P]);
        bool Found = false;
        for (u32 I = 0; I < Phi.NumOps; ++I) {
          if (F.phiBlock(Phi, I) == Prev) {
            PhiVals[P] = get(F.operand(Phi, I));
            Found = true;
            break;
          }
        }
        if (!Found)
          return std::nullopt; // malformed phi
      }
      for (size_t P = 0; P < B.Phis.size(); ++P)
        Vals[B.Phis[P]] = PhiVals[P];
    }

    for (ValRef IR : B.Insts) {
      if (StepBudget-- == 0)
        return std::nullopt;
      const Value &V = F.val(IR);
      Type Ty = V.Ty;
      switch (V.Opcode) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::LShr:
      case Op::AShr:
      case Op::UDiv:
      case Op::SDiv:
      case Op::URem:
      case Op::SRem: {
        u128 L = toU128(get(F.operand(V, 0)));
        u128 R = toU128(get(F.operand(V, 1)));
        u32 W = bitWidth(Ty);
        u128 Res = 0;
        switch (V.Opcode) {
        case Op::Add:
          Res = L + R;
          break;
        case Op::Sub:
          Res = L - R;
          break;
        case Op::Mul:
          Res = L * R;
          break;
        case Op::And:
          Res = L & R;
          break;
        case Op::Or:
          Res = L | R;
          break;
        case Op::Xor:
          Res = L ^ R;
          break;
        case Op::Shl:
          Res = L << (R % W);
          break;
        case Op::LShr:
          Res = L >> (R % W);
          break;
        case Op::AShr: {
          i128 SL = signExtendVal(Ty, get(F.operand(V, 0)));
          Res = static_cast<u128>(SL >> (R % W));
          break;
        }
        case Op::UDiv:
        case Op::URem: {
          if (R == 0)
            return std::nullopt;
          Res = V.Opcode == Op::UDiv ? L / R : L % R;
          break;
        }
        case Op::SDiv:
        case Op::SRem: {
          i128 SL = signExtendVal(Ty, get(F.operand(V, 0)));
          i128 SR = signExtendVal(Ty, get(F.operand(V, 1)));
          if (SR == 0)
            return std::nullopt;
          i128 MinVal = -static_cast<i128>(static_cast<u128>(1) << (W - 1));
          if (SL == MinVal && SR == -1)
            return std::nullopt; // overflow trap, like hardware
          Res = static_cast<u128>(V.Opcode == Op::SDiv ? SL / SR : SL % SR);
          break;
        }
        default:
          TPDE_UNREACHABLE("binop");
        }
        Vals[IR] = normalize(Ty, fromU128(Res));
        break;
      }
      case Op::ICmpOp: {
        const Value &Lhs = F.val(F.operand(V, 0));
        u128 L = toU128(get(F.operand(V, 0)));
        u128 R = toU128(get(F.operand(V, 1)));
        i128 SL = signExtendVal(Lhs.Ty, get(F.operand(V, 0)));
        i128 SR = signExtendVal(Lhs.Ty, get(F.operand(V, 1)));
        bool Res = false;
        switch (static_cast<ICmp>(V.Aux)) {
        case ICmp::Eq:
          Res = L == R;
          break;
        case ICmp::Ne:
          Res = L != R;
          break;
        case ICmp::Ult:
          Res = L < R;
          break;
        case ICmp::Ule:
          Res = L <= R;
          break;
        case ICmp::Ugt:
          Res = L > R;
          break;
        case ICmp::Uge:
          Res = L >= R;
          break;
        case ICmp::Slt:
          Res = SL < SR;
          break;
        case ICmp::Sle:
          Res = SL <= SR;
          break;
        case ICmp::Sgt:
          Res = SL > SR;
          break;
        case ICmp::Sge:
          Res = SL >= SR;
          break;
        }
        Vals[IR] = {Res ? u64(1) : u64(0), 0};
        break;
      }
      case Op::FCmpOp: {
        const Value &Lhs = F.val(F.operand(V, 0));
        double L, R;
        if (Lhs.Ty == Type::F32) {
          L = asF32(get(F.operand(V, 0)));
          R = asF32(get(F.operand(V, 1)));
        } else {
          L = asF64(get(F.operand(V, 0)));
          R = asF64(get(F.operand(V, 1)));
        }
        bool Res = false;
        switch (static_cast<FCmp>(V.Aux)) {
        case FCmp::Oeq:
          Res = L == R;
          break;
        case FCmp::One:
          Res = L < R || L > R;
          break;
        case FCmp::Olt:
          Res = L < R;
          break;
        case FCmp::Ole:
          Res = L <= R;
          break;
        case FCmp::Ogt:
          Res = L > R;
          break;
        case FCmp::Oge:
          Res = L >= R;
          break;
        }
        Vals[IR] = {Res ? u64(1) : u64(0), 0};
        break;
      }
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
      case Op::FDiv: {
        if (Ty == Type::F32) {
          float L = asF32(get(F.operand(V, 0)));
          float R = asF32(get(F.operand(V, 1)));
          float Res = V.Opcode == Op::FAdd   ? L + R
                      : V.Opcode == Op::FSub ? L - R
                      : V.Opcode == Op::FMul ? L * R
                                             : L / R;
          Vals[IR] = fromF32(Res);
        } else {
          double L = asF64(get(F.operand(V, 0)));
          double R = asF64(get(F.operand(V, 1)));
          double Res = V.Opcode == Op::FAdd   ? L + R
                       : V.Opcode == Op::FSub ? L - R
                       : V.Opcode == Op::FMul ? L * R
                                              : L / R;
          Vals[IR] = fromF64(Res);
        }
        break;
      }
      case Op::Neg:
        Vals[IR] = normalize(Ty, fromU128(-toU128(get(F.operand(V, 0)))));
        break;
      case Op::Not:
        Vals[IR] = normalize(Ty, fromU128(~toU128(get(F.operand(V, 0)))));
        break;
      case Op::FNeg: {
        Val X = get(F.operand(V, 0));
        if (Ty == Type::F32)
          X.Lo ^= 0x80000000u;
        else
          X.Lo ^= 0x8000000000000000ull;
        Vals[IR] = X;
        break;
      }
      case Op::Zext:
        Vals[IR] = normalize(Ty, get(F.operand(V, 0)));
        break;
      case Op::Sext: {
        const Value &Src = F.val(F.operand(V, 0));
        i128 S = signExtendVal(Src.Ty, get(F.operand(V, 0)));
        Vals[IR] = normalize(Ty, fromU128(static_cast<u128>(S)));
        break;
      }
      case Op::Trunc:
      case Op::Bitcast:
        Vals[IR] = normalize(Ty, get(F.operand(V, 0)));
        break;
      case Op::FpToSi: {
        const Value &Src = F.val(F.operand(V, 0));
        double D = Src.Ty == Type::F32 ? asF32(get(F.operand(V, 0)))
                                       : asF64(get(F.operand(V, 0)));
        // Mimic x86 cvttsd2si: out-of-range produces the "integer
        // indefinite" value.
        if (Ty == Type::I32) {
          i64 Res;
          if (std::isnan(D) || D >= 2147483648.0 || D < -2147483649.0)
            Res = INT32_MIN;
          else
            Res = static_cast<i32>(D);
          Vals[IR] = normalize(Ty, {static_cast<u64>(Res), 0});
        } else {
          i64 Res;
          if (std::isnan(D) || D >= 9223372036854775808.0 ||
              D < -9223372036854775808.0)
            Res = INT64_MIN;
          else
            Res = static_cast<i64>(D);
          Vals[IR] = {static_cast<u64>(Res), 0};
        }
        break;
      }
      case Op::SiToFp: {
        const Value &Src = F.val(F.operand(V, 0));
        i128 S = signExtendVal(Src.Ty, get(F.operand(V, 0)));
        if (Ty == Type::F32)
          Vals[IR] = fromF32(static_cast<float>(static_cast<i64>(S)));
        else
          Vals[IR] = fromF64(static_cast<double>(static_cast<i64>(S)));
        break;
      }
      case Op::FpExt:
        Vals[IR] = fromF64(asF32(get(F.operand(V, 0))));
        break;
      case Op::FpTrunc:
        Vals[IR] = fromF32(static_cast<float>(asF64(get(F.operand(V, 0)))));
        break;
      case Op::Select: {
        Val C = get(F.operand(V, 0));
        Vals[IR] = (C.Lo & 1) ? get(F.operand(V, 1)) : get(F.operand(V, 2));
        break;
      }
      case Op::Load: {
        u8 *P = reinterpret_cast<u8 *>(get(F.operand(V, 0)).Lo);
        Val Res;
        std::memcpy(&Res, P, typeSize(Ty));
        Vals[IR] = normalize(Ty, Res);
        break;
      }
      case Op::Store: {
        const Value &Src = F.val(F.operand(V, 0));
        Val X = get(F.operand(V, 0));
        u8 *P = reinterpret_cast<u8 *>(get(F.operand(V, 1)).Lo);
        std::memcpy(P, &X, typeSize(Src.Ty));
        break;
      }
      case Op::PtrAdd: {
        u64 P = get(F.operand(V, 0)).Lo;
        u64 Index = V.NumOps > 1 ? get(F.operand(V, 1)).Lo : 0;
        Vals[IR] = {P + Index * V.Aux + V.Aux2, 0};
        break;
      }
      case Op::Call: {
        const Function &Callee = M.Funcs[V.Aux];
        std::vector<Val> CallArgs;
        CallArgs.reserve(V.NumOps);
        for (u32 I = 0; I < V.NumOps; ++I)
          CallArgs.push_back(get(F.operand(V, I)));
        std::optional<Val> Res;
        if (Callee.IsDeclaration) {
          auto It = Natives.find(Callee.Name);
          if (It == Natives.end())
            return std::nullopt;
          Res = It->second(CallArgs);
        } else {
          Res = exec(static_cast<u32>(V.Aux), CallArgs, Depth + 1);
        }
        if (!Res)
          return std::nullopt;
        Vals[IR] = normalize(Ty, *Res);
        break;
      }
      case Op::Ret:
        return V.NumOps ? get(F.operand(V, 0)) : Val{};
      case Op::Br:
        Prev = Cur;
        Cur = B.Succs[0];
        goto nextBlock;
      case Op::CondBr: {
        Val C = get(F.operand(V, 0));
        Prev = Cur;
        Cur = (C.Lo & 1) ? B.Succs[0] : B.Succs[1];
        goto nextBlock;
      }
      case Op::Unreachable:
        return std::nullopt;
      case Op::Phi:
      case Op::None:
        TPDE_UNREACHABLE("phi in instruction list");
      }
    }
    // Fell off a block without a terminator: malformed.
    return std::nullopt;
  nextBlock:;
  }
}
