//===- tir/Verifier.cpp - Structural and SSA validation for TIR -----------===//

#include "tir/Verifier.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

using namespace tpde;
using namespace tpde::tir;

namespace {

/// Computes a reverse post-order over reachable blocks.
std::vector<BlockRef> computeRPO(const Function &F) {
  std::vector<BlockRef> PostOrder;
  std::vector<u8> State(F.Blocks.size(), 0); // 0 new, 1 open, 2 done
  std::vector<std::pair<BlockRef, u32>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const auto &Succs = F.Blocks[B].Succs;
    if (NextSucc < Succs.size()) {
      BlockRef S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[B] = 2;
    PostOrder.push_back(B);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

} // namespace

std::vector<BlockRef> tpde::tir::computeIDom(const Function &F) {
  // Cooper-Harvey-Kennedy iterative dominator computation.
  std::vector<BlockRef> RPO = computeRPO(F);
  std::vector<u32> RpoNum(F.Blocks.size(), ~0u);
  for (u32 I = 0; I < RPO.size(); ++I)
    RpoNum[RPO[I]] = I;

  std::vector<std::vector<BlockRef>> Preds(F.Blocks.size());
  for (u32 B = 0; B < F.Blocks.size(); ++B)
    for (BlockRef S : F.Blocks[B].Succs)
      Preds[S].push_back(B);

  std::vector<BlockRef> IDom(F.Blocks.size(), InvalidRef);
  IDom[0] = 0;
  auto intersect = [&](BlockRef A, BlockRef B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = IDom[A];
      while (RpoNum[B] > RpoNum[A])
        B = IDom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockRef B : RPO) {
      if (B == 0)
        continue;
      BlockRef NewIDom = InvalidRef;
      for (BlockRef P : Preds[B]) {
        if (RpoNum[P] == ~0u || IDom[P] == InvalidRef)
          continue; // unreachable or not yet processed
        NewIDom = NewIDom == InvalidRef ? P : intersect(P, NewIDom);
      }
      if (NewIDom != InvalidRef && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
  return IDom;
}

bool tpde::tir::verifyFunction(const Module &M, const Function &F,
                               std::string &Errors) {
  bool OK = true;
  auto fail = [&](const std::string &Msg) {
    Errors += "function '" + F.Name + "': " + Msg + "\n";
    OK = false;
  };
  if (F.IsDeclaration)
    return true;
  if (F.Blocks.empty()) {
    fail("no blocks");
    return false;
  }

  const u32 NumVals = F.valueCount();
  const u32 NumBlocks = static_cast<u32>(F.Blocks.size());

  // Structural checks per block.
  for (u32 B = 0; B < NumBlocks; ++B) {
    const Block &BB = F.Blocks[B];
    if (BB.Insts.empty()) {
      fail("block " + std::to_string(B) + " is empty");
      continue;
    }
    for (size_t I = 0; I < BB.Insts.size(); ++I) {
      const Value &V = F.val(BB.Insts[I]);
      if (V.Kind != ValKind::Inst || V.Opcode == Op::Phi)
        fail("non-instruction in instruction list");
      if (V.Block != B)
        fail("instruction block back-reference mismatch");
      bool IsLast = I + 1 == BB.Insts.size();
      if (isTerminator(V.Opcode) != IsLast)
        fail("terminator placement wrong in block " + std::to_string(B));
      for (u32 O = 0; O < V.NumOps; ++O)
        if (F.operand(V, O) >= NumVals)
          fail("operand index out of range");
    }
    const Value &Term = F.val(BB.Insts.back());
    u32 WantSuccs = Term.Opcode == Op::Br       ? 1
                    : Term.Opcode == Op::CondBr ? 2
                                                : 0;
    if (BB.Succs.size() != WantSuccs)
      fail("successor count does not match terminator in block " +
           std::to_string(B));
    for (BlockRef S : BB.Succs)
      if (S >= NumBlocks)
        fail("successor out of range");
  }
  if (!OK)
    return false;

  // Predecessors, for phi checks.
  std::vector<std::vector<BlockRef>> Preds(NumBlocks);
  for (u32 B = 0; B < NumBlocks; ++B)
    for (BlockRef S : F.Blocks[B].Succs)
      Preds[S].push_back(B);

  for (u32 B = 0; B < NumBlocks; ++B) {
    for (ValRef P : F.Blocks[B].Phis) {
      const Value &Phi = F.val(P);
      if (Phi.Opcode != Op::Phi) {
        fail("non-phi in phi list");
        continue;
      }
      if (Phi.Block != B)
        fail("phi block back-reference mismatch");
      // Each predecessor must appear exactly once.
      std::vector<BlockRef> Incoming;
      for (u32 I = 0; I < Phi.NumOps; ++I)
        Incoming.push_back(F.phiBlock(Phi, I));
      std::sort(Incoming.begin(), Incoming.end());
      std::vector<BlockRef> Want = Preds[B];
      std::sort(Want.begin(), Want.end());
      Want.erase(std::unique(Want.begin(), Want.end()), Want.end());
      if (Incoming != Want)
        fail("phi incoming blocks disagree with predecessors in block " +
             std::to_string(B));
    }
  }

  // i128 support subset (paper §5: uncommon operations excluded).
  for (const Value &V : F.Values) {
    if (V.Kind != ValKind::Inst || V.Ty != Type::I128)
      continue;
    switch (V.Opcode) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::LShr:
    case Op::AShr:
    case Op::Zext:
    case Op::Trunc:
    case Op::Select:
    case Op::Load:
    case Op::Phi:
    case Op::Call:
      break;
    default:
      fail("unsupported i128 operation");
    }
  }

  // Call sanity.
  for (const Value &V : F.Values) {
    if (V.Kind == ValKind::Inst && V.Opcode == Op::Call) {
      if (V.Aux >= M.Funcs.size()) {
        fail("call to out-of-range function");
        continue;
      }
      if (M.Funcs[V.Aux].ParamTys.size() != V.NumOps)
        fail("call argument count mismatch to '" + M.Funcs[V.Aux].Name + "'");
    }
    if (V.Kind == ValKind::GlobalAddr && V.Aux >= M.Globals.size())
      fail("global address out of range");
  }

  // SSA dominance: the definition must dominate every use; for phis, the
  // definition must dominate the end of the incoming block.
  std::vector<BlockRef> IDom = computeIDom(F);
  std::vector<u32> InstPos(NumVals, 0);
  for (u32 B = 0; B < NumBlocks; ++B)
    for (u32 I = 0; I < F.Blocks[B].Insts.size(); ++I)
      InstPos[F.Blocks[B].Insts[I]] = I + 1; // phis get 0
  auto dominates = [&](BlockRef A, BlockRef B) {
    // Walk the dominator chain from B up to the entry.
    while (B != 0 && B != A) {
      if (IDom[B] == InvalidRef)
        return false; // unreachable block
      BlockRef Next = IDom[B];
      if (Next == B)
        break;
      B = Next;
    }
    return A == B;
  };
  auto defDominatesUse = [&](ValRef Def, BlockRef UseBlock, u32 UsePos) {
    const Value &DV = F.val(Def);
    if (DV.Kind != ValKind::Inst)
      return true; // args/consts/stack vars dominate everything
    if (DV.Block != UseBlock)
      return dominates(DV.Block, UseBlock);
    u32 DefPos = InstPos[Def];
    return DefPos < UsePos || (DefPos == 0 && UsePos > 0);
  };

  for (u32 B = 0; B < NumBlocks; ++B) {
    const Block &BB = F.Blocks[B];
    for (u32 I = 0; I < BB.Insts.size(); ++I) {
      const Value &V = F.val(BB.Insts[I]);
      for (u32 O = 0; O < V.NumOps; ++O)
        if (!defDominatesUse(F.operand(V, O), B, I + 1))
          fail("use before def in block " + std::to_string(B));
    }
    for (ValRef P : BB.Phis) {
      const Value &Phi = F.val(P);
      for (u32 I = 0; I < Phi.NumOps; ++I) {
        BlockRef In = F.phiBlock(Phi, I);
        if (!defDominatesUse(F.operand(Phi, I), In,
                             static_cast<u32>(F.Blocks[In].Insts.size() + 2)))
          fail("phi operand does not dominate incoming edge");
      }
    }
  }
  return OK;
}

bool tpde::tir::verifyModule(const Module &M, std::string &Errors) {
  bool OK = true;
  // Module-level: duplicate function names. Two strong definitions of one
  // name would only surface as an assembler error mid-emission; reject
  // them up front. (Declarations may repeat — they collapse to one
  // symbol — and duplicate weak definitions resolve by first-wins.)
  std::unordered_set<std::string_view> Defined;
  for (const Function &F : M.Funcs) {
    if (F.IsDeclaration || F.Link == Linkage::Weak)
      continue;
    if (!Defined.insert(F.Name).second) {
      Errors += "duplicate definition of function '" + F.Name + "'\n";
      OK = false;
    }
  }
  for (const Function &F : M.Funcs)
    OK &= verifyFunction(M, F, Errors);
  return OK;
}
