//===- tir/Builder.h - Convenience construction API for TIR -----*- C++ -*-===//
///
/// \file
/// Programmatic construction of TIR functions, used by tests, examples, and
/// the synthetic workload generators. Mirrors llvm::IRBuilder in spirit.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TIR_BUILDER_H
#define TPDE_TIR_BUILDER_H

#include "tir/TIR.h"

#include <map>
#include <string_view>

namespace tpde::tir {

/// Builds one function. Call finish() once done; phi operands are only
/// flushed into the function's pools at that point.
class FunctionBuilder {
public:
  /// Creates a new function in \p M and starts building it.
  FunctionBuilder(Module &M, std::string_view Name, Type RetTy,
                  std::vector<Type> Params,
                  Linkage Link = Linkage::External)
      : M(M), FuncIdx(static_cast<u32>(M.Funcs.size())) {
    M.Funcs.emplace_back();
    Function &F = func();
    F.Name = std::string(Name);
    F.RetTy = RetTy;
    F.ParamTys = std::move(Params);
    F.Link = Link;
    for (u32 I = 0; I < F.ParamTys.size(); ++I) {
      Value V;
      V.Kind = ValKind::Arg;
      V.Ty = F.ParamTys[I];
      V.Aux = I;
      F.Args.push_back(pushValue(std::move(V)));
    }
  }

  Function &func() { return M.Funcs[FuncIdx]; }
  u32 funcIndex() const { return FuncIdx; }

  // --- Structure -----------------------------------------------------------

  BlockRef addBlock(std::string_view Name = "") {
    Function &F = func();
    F.Blocks.emplace_back();
    F.Blocks.back().Name = std::string(Name);
    return static_cast<BlockRef>(F.Blocks.size() - 1);
  }
  void setInsertPoint(BlockRef B) { CurBlock = B; }
  BlockRef insertPoint() const { return CurBlock; }

  ValRef arg(u32 I) { return func().Args[I]; }

  ValRef stackVar(u64 Size, u32 Align, std::string_view Name = "") {
    Value V;
    V.Kind = ValKind::StackVar;
    V.Ty = Type::Ptr;
    V.Aux = Size;
    V.Aux2 = Align;
    ValRef R = pushValue(std::move(V));
    if (!Name.empty())
      func().setValueName(R, Name);
    func().StackVars.push_back(R);
    return R;
  }

  // --- Constants (deduplicated per function) -------------------------------

  ValRef constInt(Type Ty, u64 Lo, u64 Hi = 0) {
    assert(isIntType(Ty) || Ty == Type::Ptr);
    auto Key = std::make_tuple(static_cast<u8>(Ty), Lo, Hi);
    auto It = ConstCache.find(Key);
    if (It != ConstCache.end())
      return It->second;
    Value V;
    V.Kind = ValKind::ConstInt;
    V.Ty = Ty;
    V.Aux = Lo;
    V.Aux2 = Hi;
    ValRef R = pushValue(std::move(V));
    ConstCache.emplace(Key, R);
    return R;
  }

  ValRef constF64(double D) {
    u64 Bits;
    static_assert(sizeof(Bits) == sizeof(D));
    __builtin_memcpy(&Bits, &D, 8);
    auto Key = std::make_tuple(static_cast<u8>(Type::F64), Bits, u64(0));
    auto It = ConstCache.find(Key);
    if (It != ConstCache.end())
      return It->second;
    Value V;
    V.Kind = ValKind::ConstFP;
    V.Ty = Type::F64;
    V.Aux = Bits;
    ValRef R = pushValue(std::move(V));
    ConstCache.emplace(Key, R);
    return R;
  }

  ValRef constF32(float Fl) {
    u32 Bits;
    __builtin_memcpy(&Bits, &Fl, 4);
    auto Key = std::make_tuple(static_cast<u8>(Type::F32), u64(Bits), u64(0));
    auto It = ConstCache.find(Key);
    if (It != ConstCache.end())
      return It->second;
    Value V;
    V.Kind = ValKind::ConstFP;
    V.Ty = Type::F32;
    V.Aux = Bits;
    ValRef R = pushValue(std::move(V));
    ConstCache.emplace(Key, R);
    return R;
  }

  ValRef globalAddr(u32 GlobalIdx) {
    auto Key = std::make_tuple(static_cast<u8>(0xFF), u64(GlobalIdx), u64(0));
    auto It = ConstCache.find(Key);
    if (It != ConstCache.end())
      return It->second;
    Value V;
    V.Kind = ValKind::GlobalAddr;
    V.Ty = Type::Ptr;
    V.Aux = GlobalIdx;
    ValRef R = pushValue(std::move(V));
    ConstCache.emplace(Key, R);
    return R;
  }

  // --- Instructions ---------------------------------------------------------

  ValRef inst(Op O, Type Ty, std::initializer_list<ValRef> Ops, u64 Aux = 0,
              u64 Aux2 = 0) {
    return instV(O, Ty, std::vector<ValRef>(Ops), Aux, Aux2);
  }

  ValRef instV(Op O, Type Ty, const std::vector<ValRef> &Ops, u64 Aux = 0,
               u64 Aux2 = 0) {
    assert(CurBlock != InvalidRef && "no insert point");
    Function &F = func();
    Value V;
    V.Kind = ValKind::Inst;
    V.Opcode = O;
    V.Ty = Ty;
    V.Aux = Aux;
    V.Aux2 = Aux2;
    V.Block = CurBlock;
    V.OpBegin = static_cast<u32>(F.OperandPool.size());
    V.NumOps = static_cast<u32>(Ops.size());
    F.OperandPool.insert(F.OperandPool.end(), Ops.begin(), Ops.end());
    ValRef R = pushValue(std::move(V));
    F.Blocks[CurBlock].Insts.push_back(R);
    return R;
  }

  ValRef binop(Op O, ValRef L, ValRef R) {
    return inst(O, func().val(L).Ty, {L, R});
  }
  ValRef icmp(ICmp P, ValRef L, ValRef R) {
    return inst(Op::ICmpOp, Type::I1, {L, R}, static_cast<u64>(P));
  }
  ValRef fcmp(FCmp P, ValRef L, ValRef R) {
    return inst(Op::FCmpOp, Type::I1, {L, R}, static_cast<u64>(P));
  }
  ValRef select(ValRef C, ValRef T, ValRef F) {
    return inst(Op::Select, func().val(T).Ty, {C, T, F});
  }
  ValRef load(Type Ty, ValRef Ptr) { return inst(Op::Load, Ty, {Ptr}); }
  void store(ValRef V, ValRef Ptr) { inst(Op::Store, Type::Void, {V, Ptr}); }
  /// ptr + Index*Scale + Off (Index optional).
  ValRef ptrAdd(ValRef Ptr, ValRef Index, u64 Scale, i64 Off) {
    if (Index == InvalidRef)
      return inst(Op::PtrAdd, Type::Ptr, {Ptr}, Scale,
                  static_cast<u64>(Off));
    return inst(Op::PtrAdd, Type::Ptr, {Ptr, Index}, Scale,
                static_cast<u64>(Off));
  }
  ValRef cast(Op O, Type DstTy, ValRef V) { return inst(O, DstTy, {V}); }
  ValRef call(u32 CalleeIdx, Type RetTy, const std::vector<ValRef> &Args) {
    return instV(Op::Call, RetTy, Args, CalleeIdx);
  }

  // --- Terminators -----------------------------------------------------------

  void br(BlockRef Target) {
    inst(Op::Br, Type::Void, {});
    func().Blocks[CurBlock].Succs = {Target};
  }
  void condBr(ValRef Cond, BlockRef TrueB, BlockRef FalseB) {
    inst(Op::CondBr, Type::Void, {Cond});
    func().Blocks[CurBlock].Succs = {TrueB, FalseB};
  }
  void ret(ValRef V = InvalidRef) {
    if (V == InvalidRef)
      inst(Op::Ret, Type::Void, {});
    else
      inst(Op::Ret, Type::Void, {V});
  }
  void unreachable() { inst(Op::Unreachable, Type::Void, {}); }

  // --- Phis -------------------------------------------------------------------

  ValRef phi(Type Ty) {
    Function &F = func();
    Value V;
    V.Kind = ValKind::Inst;
    V.Opcode = Op::Phi;
    V.Ty = Ty;
    V.Block = CurBlock;
    ValRef R = pushValue(std::move(V));
    F.Blocks[CurBlock].Phis.push_back(R);
    PendingPhis.emplace_back(R, std::vector<std::pair<BlockRef, ValRef>>{});
    return R;
  }

  void addPhiIncoming(ValRef Phi, BlockRef From, ValRef V) {
    for (auto &P : PendingPhis) {
      if (P.first == Phi) {
        P.second.emplace_back(From, V);
        return;
      }
    }
    TPDE_UNREACHABLE("phi not created by this builder");
  }

  /// Flushes pending phi operands into the function pools. Must be called
  /// exactly once, after all blocks are complete.
  void finish() {
    Function &F = func();
    for (auto &[Phi, Inc] : PendingPhis) {
      Value &V = F.val(Phi);
      V.OpBegin = static_cast<u32>(F.OperandPool.size());
      V.NumOps = static_cast<u32>(Inc.size());
      for (auto &[B, Val] : Inc) {
        F.OperandPool.push_back(Val);
        F.PhiBlockPool.resize(F.OperandPool.size(), InvalidRef);
        F.PhiBlockPool[F.OperandPool.size() - 1] = B;
      }
    }
    PendingPhis.clear();
  }

private:
  ValRef pushValue(Value &&V) {
    Function &F = func();
    F.Values.push_back(std::move(V));
    return static_cast<ValRef>(F.Values.size() - 1);
  }

  Module &M;
  u32 FuncIdx;
  BlockRef CurBlock = InvalidRef;
  std::map<std::tuple<u8, u64, u64>, ValRef> ConstCache;
  std::vector<std::pair<ValRef, std::vector<std::pair<BlockRef, ValRef>>>>
      PendingPhis;
};

/// Adds a global to \p M and returns its index.
inline u32 addGlobal(Module &M, std::string_view Name, u64 Size, u32 Align,
                     bool ReadOnly = false, std::vector<u8> Init = {}) {
  Global G;
  G.Name = std::string(Name);
  G.Size = Size;
  G.Align = Align;
  G.ReadOnly = ReadOnly;
  G.Init = std::move(Init);
  M.Globals.push_back(std::move(G));
  return static_cast<u32>(M.Globals.size() - 1);
}

/// Declares an external function (no body) and returns its index.
inline u32 declareFunc(Module &M, std::string_view Name, Type RetTy,
                       std::vector<Type> Params) {
  Function F;
  F.Name = std::string(Name);
  F.RetTy = RetTy;
  F.ParamTys = std::move(Params);
  F.IsDeclaration = true;
  M.Funcs.push_back(std::move(F));
  return static_cast<u32>(M.Funcs.size() - 1);
}

} // namespace tpde::tir

#endif // TPDE_TIR_BUILDER_H
