//===- tir/Printer.cpp - Textual output for TIR ---------------------------===//

#include "tir/Printer.h"

using namespace tpde;
using namespace tpde::tir;

std::string tpde::tir::printType(Type T) {
  switch (T) {
  case Type::Void:
    return "void";
  case Type::I1:
    return "i1";
  case Type::I8:
    return "i8";
  case Type::I16:
    return "i16";
  case Type::I32:
    return "i32";
  case Type::I64:
    return "i64";
  case Type::I128:
    return "i128";
  case Type::F32:
    return "f32";
  case Type::F64:
    return "f64";
  case Type::Ptr:
    return "ptr";
  }
  TPDE_UNREACHABLE("bad type");
}

namespace {

const char *opName(Op O) {
  switch (O) {
  case Op::Add: return "add";
  case Op::Sub: return "sub";
  case Op::Mul: return "mul";
  case Op::UDiv: return "udiv";
  case Op::SDiv: return "sdiv";
  case Op::URem: return "urem";
  case Op::SRem: return "srem";
  case Op::And: return "and";
  case Op::Or: return "or";
  case Op::Xor: return "xor";
  case Op::Shl: return "shl";
  case Op::LShr: return "lshr";
  case Op::AShr: return "ashr";
  case Op::FAdd: return "fadd";
  case Op::FSub: return "fsub";
  case Op::FMul: return "fmul";
  case Op::FDiv: return "fdiv";
  case Op::Neg: return "neg";
  case Op::Not: return "not";
  case Op::FNeg: return "fneg";
  case Op::Zext: return "zext";
  case Op::Sext: return "sext";
  case Op::Trunc: return "trunc";
  case Op::FpToSi: return "fptosi";
  case Op::SiToFp: return "sitofp";
  case Op::FpExt: return "fpext";
  case Op::FpTrunc: return "fptrunc";
  case Op::Bitcast: return "bitcast";
  case Op::Select: return "select";
  // ICmpOp/FCmpOp carry their predicate in Aux and are printed by the
  // dedicated printInst cases; the generic names keep opName total.
  case Op::ICmpOp: return "icmp";
  case Op::FCmpOp: return "fcmp";
  case Op::Load: return "load";
  case Op::Store: return "store";
  case Op::PtrAdd: return "ptradd";
  case Op::Call: return "call";
  case Op::Ret: return "ret";
  case Op::Br: return "br";
  case Op::CondBr: return "condbr";
  case Op::Unreachable: return "unreachable";
  case Op::Phi: return "phi";
  case Op::None: return "none";
  }
  TPDE_UNREACHABLE("bad op");
}

const char *icmpName(ICmp P) {
  switch (P) {
  case ICmp::Eq: return "eq";
  case ICmp::Ne: return "ne";
  case ICmp::Ult: return "ult";
  case ICmp::Ule: return "ule";
  case ICmp::Ugt: return "ugt";
  case ICmp::Uge: return "uge";
  case ICmp::Slt: return "slt";
  case ICmp::Sle: return "sle";
  case ICmp::Sgt: return "sgt";
  case ICmp::Sge: return "sge";
  }
  TPDE_UNREACHABLE("bad icmp pred");
}

const char *fcmpName(FCmp P) {
  switch (P) {
  case FCmp::Oeq: return "oeq";
  case FCmp::One: return "one";
  case FCmp::Olt: return "olt";
  case FCmp::Ole: return "ole";
  case FCmp::Ogt: return "ogt";
  case FCmp::Oge: return "oge";
  }
  TPDE_UNREACHABLE("bad fcmp pred");
}

class FuncPrinter {
public:
  FuncPrinter(const Module &M, const Function &F) : M(M), F(F) {}

  std::string run() {
    Out += "func @" + F.Name + "(";
    for (u32 I = 0; I < F.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printType(F.ParamTys[I]) + " " + valName(F.Args[I]);
    }
    Out += ") -> " + printType(F.RetTy) + " {\n";
    for (u32 B = 0; B < F.Blocks.size(); ++B) {
      Out += blockName(B) + ":\n";
      for (ValRef P : F.Blocks[B].Phis)
        printPhi(P);
      for (ValRef I : F.Blocks[B].Insts)
        printInst(B, I);
    }
    Out += "}\n";
    return Out;
  }

private:
  std::string blockName(BlockRef B) const {
    const std::string &N = F.Blocks[B].Name;
    return N.empty() ? "b" + std::to_string(B) : N;
  }

  std::string valName(ValRef R) {
    const Value &V = F.val(R);
    switch (V.Kind) {
    case ValKind::ConstInt:
      if (V.Ty == Type::I128 && V.Aux2)
        return "i128(" + std::to_string(V.Aux) + ", " +
               std::to_string(V.Aux2) + ")";
      return std::to_string(static_cast<i64>(V.Aux));
    case ValKind::ConstFP: {
      char Buf[64];
      if (V.Ty == Type::F32) {
        float Fl;
        u32 B32 = static_cast<u32>(V.Aux);
        __builtin_memcpy(&Fl, &B32, 4);
        std::snprintf(Buf, sizeof(Buf), "%a", static_cast<double>(Fl));
      } else {
        double D;
        __builtin_memcpy(&D, &V.Aux, 8);
        std::snprintf(Buf, sizeof(Buf), "%a", D);
      }
      return Buf;
    }
    case ValKind::GlobalAddr:
      return "@" + M.Globals[V.Aux].Name;
    default:
      if (std::string_view N = F.valueName(R); !N.empty())
        return "%" + std::string(N);
      return "%v" + std::to_string(R);
    }
  }

  void printPhi(ValRef R) {
    const Value &V = F.val(R);
    Out += "  " + valName(R) + " = phi " + printType(V.Ty);
    for (u32 I = 0; I < V.NumOps; ++I) {
      Out += I ? ", [" : " [";
      Out += blockName(F.phiBlock(V, I)) + ": " + valName(F.operand(V, I));
      Out += "]";
    }
    Out += "\n";
  }

  void printInst(BlockRef B, ValRef R) {
    const Value &V = F.val(R);
    Out += "  ";
    if (V.Ty != Type::Void)
      Out += valName(R) + " = ";
    switch (V.Opcode) {
    case Op::ICmpOp:
      Out += "icmp " + std::string(icmpName(static_cast<ICmp>(V.Aux))) + " " +
             printType(F.val(F.operand(V, 0)).Ty) + " " +
             valName(F.operand(V, 0)) + ", " + valName(F.operand(V, 1));
      break;
    case Op::FCmpOp:
      Out += "fcmp " + std::string(fcmpName(static_cast<FCmp>(V.Aux))) + " " +
             printType(F.val(F.operand(V, 0)).Ty) + " " +
             valName(F.operand(V, 0)) + ", " + valName(F.operand(V, 1));
      break;
    case Op::Load:
      Out += "load " + printType(V.Ty) + ", " + valName(F.operand(V, 0));
      break;
    case Op::Store:
      Out += "store " + printType(F.val(F.operand(V, 0)).Ty) + " " +
             valName(F.operand(V, 0)) + ", " + valName(F.operand(V, 1));
      break;
    case Op::PtrAdd:
      Out += "ptradd " + valName(F.operand(V, 0));
      if (V.NumOps > 1)
        Out += ", " + valName(F.operand(V, 1)) + ", scale " +
               std::to_string(V.Aux);
      Out += ", off " + std::to_string(static_cast<i64>(V.Aux2));
      break;
    case Op::Call: {
      Out += "call " + printType(V.Ty) + " @" + M.Funcs[V.Aux].Name + "(";
      for (u32 I = 0; I < V.NumOps; ++I) {
        if (I)
          Out += ", ";
        Out += valName(F.operand(V, I));
      }
      Out += ")";
      break;
    }
    case Op::Ret:
      Out += "ret";
      if (V.NumOps)
        Out += " " + printType(F.val(F.operand(V, 0)).Ty) + " " +
               valName(F.operand(V, 0));
      break;
    case Op::Br:
      Out += "br " + blockName(F.Blocks[B].Succs[0]);
      break;
    case Op::CondBr:
      Out += "condbr " + valName(F.operand(V, 0)) + ", " +
             blockName(F.Blocks[B].Succs[0]) + ", " +
             blockName(F.Blocks[B].Succs[1]);
      break;
    default: {
      Out += std::string(opName(V.Opcode)) + " " + printType(V.Ty);
      for (u32 I = 0; I < V.NumOps; ++I)
        Out += (I ? ", " : " ") + valName(F.operand(V, I));
      break;
    }
    }
    Out += "\n";
  }

  const Module &M;
  const Function &F;
  std::string Out;
};

} // namespace

std::string tpde::tir::printFunction(const Module &M, const Function &F) {
  return FuncPrinter(M, F).run();
}

std::string tpde::tir::printModule(const Module &M) {
  std::string Out;
  for (const Global &G : M.Globals)
    Out += "global @" + G.Name + " size " + std::to_string(G.Size) +
           " align " + std::to_string(G.Align) + (G.ReadOnly ? " ro" : "") +
           "\n";
  for (const Function &F : M.Funcs) {
    if (F.IsDeclaration) {
      Out += "declare @" + F.Name + "\n";
      continue;
    }
    Out += printFunction(M, F);
  }
  return Out;
}
