//===- tir/Printer.h - Textual output for TIR -------------------*- C++ -*-===//
///
/// \file
/// Prints TIR modules and functions in the textual syntax accepted by the
/// parser (round-trippable). Used by tests and for debugging back-ends.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TIR_PRINTER_H
#define TPDE_TIR_PRINTER_H

#include "tir/TIR.h"

#include <string>

namespace tpde::tir {

std::string printType(Type T);
std::string printFunction(const Module &M, const Function &F);
std::string printModule(const Module &M);

} // namespace tpde::tir

#endif // TPDE_TIR_PRINTER_H
