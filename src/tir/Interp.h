//===- tir/Interp.h - Reference interpreter for TIR -------------*- C++ -*-===//
///
/// \file
/// A straightforward TIR interpreter. It defines the reference semantics of
/// the IR and serves as the oracle for differential testing of every
/// back-end in this repository (TPDE, baseline, copy-and-patch).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TIR_INTERP_H
#define TPDE_TIR_INTERP_H

#include "tir/TIR.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace tpde::tir {

/// Interprets TIR modules. Globals are materialized as real memory so that
/// pointer values are interchangeable with JIT-compiled code semantics.
class Interp {
public:
  /// A dynamic value: 128 bits; smaller types occupy Lo (and FP values
  /// store their bit pattern in Lo).
  struct Val {
    u64 Lo = 0, Hi = 0;
    bool operator==(const Val &O) const { return Lo == O.Lo && Hi == O.Hi; }
  };
  using NativeFn = std::function<Val(const std::vector<Val> &)>;

  explicit Interp(const Module &M);

  /// Registers a native implementation for a declared (external) function.
  void registerNative(std::string Name, NativeFn Fn) {
    Natives[std::move(Name)] = std::move(Fn);
  }

  /// Runs a function; returns std::nullopt if execution trapped (division
  /// by zero, unreachable, step limit, missing native, ...).
  std::optional<Val> run(u32 FuncIdx, const std::vector<Val> &Args);

  /// Backing storage of a global (for initializing/inspecting test data).
  u8 *globalStorage(u32 Idx) { return GlobalMem[Idx].data(); }

  /// Remaining execution budget; run() consumes roughly one unit per
  /// instruction. Guards against accidentally non-terminating tests.
  u64 StepBudget = 500'000'000;

private:
  std::optional<Val> exec(u32 FuncIdx, const std::vector<Val> &Args,
                          unsigned Depth);

  const Module &M;
  std::vector<std::vector<u8>> GlobalMem;
  std::unordered_map<std::string, NativeFn> Natives;
};

} // namespace tpde::tir

#endif // TPDE_TIR_INTERP_H
