//===- tir/TIR.h - Test IR: an LLVM-IR stand-in SSA IR ----------*- C++ -*-===//
///
/// \file
/// TIR is the SSA intermediate representation standing in for LLVM-IR in
/// this reproduction (the paper's §5 case study). It deliberately mirrors
/// the LLVM-IR subset TPDE supports: integers i1..i128, float/double,
/// pointers, phi nodes, static stack slots, and calls. The representation
/// is array-based and densely numbered — every value has a per-function
/// index usable directly as an array index, which is exactly the property
/// the TPDE IR adapter interface wants (paper Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TIR_TIR_H
#define TPDE_TIR_TIR_H

#include "support/Common.h"

#include <string>
#include <vector>

namespace tpde::tir {

/// Value types. I128 is a two-part value for the register allocator.
enum class Type : u8 { Void, I1, I8, I16, I32, I64, I128, F32, F64, Ptr };

/// Size of a type in bytes (Void is 0).
inline u32 typeSize(Type T) {
  switch (T) {
  case Type::Void:
    return 0;
  case Type::I1:
  case Type::I8:
    return 1;
  case Type::I16:
    return 2;
  case Type::I32:
    return 4;
  case Type::I64:
  case Type::Ptr:
    return 8;
  case Type::I128:
    return 16;
  case Type::F32:
    return 4;
  case Type::F64:
    return 8;
  }
  TPDE_UNREACHABLE("bad type");
}

inline bool isFloatType(Type T) { return T == Type::F32 || T == Type::F64; }
inline bool isIntType(Type T) {
  return T >= Type::I1 && T <= Type::I128;
}

/// Integer comparison predicates (subset of LLVM's icmp).
enum class ICmp : u8 { Eq, Ne, Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge };
/// Float comparison predicates (ordered subset).
enum class FCmp : u8 { Oeq, One, Olt, Ole, Ogt, Oge };

/// Value kinds. Arguments, stack variables, constants, and globals are
/// values just like instruction results.
enum class ValKind : u8 { Arg, StackVar, ConstInt, ConstFP, GlobalAddr, Inst };

/// Instruction opcodes.
enum class Op : u8 {
  None,
  // Integer binary ops.
  Add, Sub, Mul, UDiv, SDiv, URem, SRem, And, Or, Xor, Shl, LShr, AShr,
  // Comparisons (Aux = predicate).
  ICmpOp, FCmpOp,
  // FP binary ops.
  FAdd, FSub, FMul, FDiv,
  // Unary / casts.
  Neg, Not, FNeg, Zext, Sext, Trunc, FpToSi, SiToFp, FpExt, FpTrunc,
  Bitcast,
  // select cond, a, b
  Select,
  // Memory: Load(ptr), Store(val, ptr). PtrAdd(ptr[, index]) with
  // Aux = scale, Aux2 = constant byte offset: ptr + index*scale + offset.
  Load, Store, PtrAdd,
  // Call: Aux = callee function index, operands are arguments.
  Call,
  // Terminators. Br/CondBr target blocks live in the block's Succs list.
  Ret, Br, CondBr, Unreachable,
  // Phi: operands are incoming values; PhiBlocks holds incoming blocks.
  Phi,
};

inline bool isTerminator(Op O) {
  return O == Op::Ret || O == Op::Br || O == Op::CondBr ||
         O == Op::Unreachable;
}

using ValRef = u32;
using BlockRef = u32;
constexpr u32 InvalidRef = ~0u;

/// One value: argument, stack slot, constant, global address, or
/// instruction result. Stored in a dense per-function array.
// Field order keeps the struct at 32 bytes — exactly two per cache line —
// because the Values array is the single hottest data structure of the
// compile path (docs/PERF.md). Optional debug names live in
// Function::ValueNames, NOT here, for the same reason.
struct Value {
  ValKind Kind = ValKind::Inst;
  Op Opcode = Op::None;
  Type Ty = Type::Void;
  /// Operand list [OpBegin, OpBegin+NumOps) in Function::OperandPool.
  /// For phis: incoming blocks parallel to operands, in
  /// Function::PhiBlockPool at the same positions.
  u32 OpBegin = 0;
  u32 NumOps = 0;
  u32 Block = InvalidRef; ///< Defining block for instructions.
  /// Generic immediate slot: icmp/fcmp predicate, PtrAdd scale, call callee,
  /// argument index, stack-var size, constant low 64 bits, global index.
  u64 Aux = 0;
  /// Second immediate: PtrAdd byte offset, i128-constant high bits,
  /// stack-var alignment.
  u64 Aux2 = 0;
};
static_assert(sizeof(Value) == 32, "Value must stay two-per-cache-line");

/// A basic block: phis, then instructions ending in one terminator.
struct Block {
  std::vector<ValRef> Phis;
  std::vector<ValRef> Insts;
  /// Successor blocks; CondBr uses [0]=true target, [1]=false target.
  std::vector<BlockRef> Succs;
  std::string Name;
  /// 64-bit auxiliary storage exposed through the IR adapter (Fig. 2).
  u64 Aux = 0;
};

/// Linkage for functions and globals.
enum class Linkage : u8 { External, Internal, Weak };

struct Function {
  std::string Name;
  Linkage Link = Linkage::External;
  bool IsDeclaration = false;
  Type RetTy = Type::Void;
  std::vector<Type> ParamTys;

  std::vector<Value> Values;
  std::vector<ValRef> OperandPool;
  std::vector<BlockRef> PhiBlockPool;
  std::vector<Block> Blocks;
  std::vector<ValRef> Args;      ///< Value indices of arguments.
  std::vector<ValRef> StackVars; ///< Value indices of stack variables.
  /// Sparse per-value debug names (printing only); see valueName().
  std::vector<std::string> ValueNames;

  void setValueName(ValRef V, std::string_view N) {
    if (ValueNames.size() <= V)
      ValueNames.resize(V + 1);
    ValueNames[V] = std::string(N);
  }
  std::string_view valueName(ValRef V) const {
    return V < ValueNames.size() ? std::string_view(ValueNames[V])
                                 : std::string_view();
  }

  u32 valueCount() const { return static_cast<u32>(Values.size()); }
  const Value &val(ValRef V) const { return Values[V]; }
  Value &val(ValRef V) { return Values[V]; }

  /// Operand span of an instruction.
  const ValRef *opBegin(const Value &V) const {
    return OperandPool.data() + V.OpBegin;
  }
  ValRef operand(const Value &V, u32 I) const {
    assert(I < V.NumOps && "operand index out of range");
    return OperandPool[V.OpBegin + I];
  }
  BlockRef phiBlock(const Value &V, u32 I) const {
    assert(V.Opcode == Op::Phi && I < V.NumOps && "bad phi access");
    return PhiBlockPool[V.OpBegin + I];
  }
};

struct Global {
  std::string Name;
  Linkage Link = Linkage::External;
  u64 Size = 0;
  u32 Align = 8;
  bool ReadOnly = false;
  bool Defined = true;
  std::vector<u8> Init; ///< Empty means zero-initialized (BSS).
};

struct Module {
  std::vector<Function> Funcs;
  std::vector<Global> Globals;

  /// Returns the index of the function named \p Name or ~0u.
  u32 findFunc(std::string_view Name) const {
    for (u32 I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == Name)
        return I;
    return ~0u;
  }
};

/// Number of register-allocator parts of a TIR value (paper §3.1.2).
inline u32 partCount(Type T) { return T == Type::I128 ? 2 : 1; }
/// Size in bytes of part \p P of a value of type \p T.
inline u32 partSize(Type T, u32 P) {
  if (T == Type::I128)
    return 8;
  return typeSize(T);
}
/// Register bank of a part: 0 = GP, 1 = FP.
inline u8 partBank(Type T) { return isFloatType(T) ? 1 : 0; }

} // namespace tpde::tir

#endif // TPDE_TIR_TIR_H
