//===- asmx/JITMapper.cpp - In-memory code mapping for JIT ---------------===//

#include "asmx/JITMapper.h"
#include "support/DenseMap.h"
#include "support/FaultInjector.h"

#include <cstring>
#include <sys/mman.h>
#include <unistd.h>

using namespace tpde;
using namespace tpde::asmx;

JITMapper::~JITMapper() {
  if (MapBase)
    ::munmap(MapBase, MapSize);
}

JITMapper &JITMapper::operator=(JITMapper &&O) noexcept {
  if (this == &O)
    return *this;
  if (MapBase)
    ::munmap(MapBase, MapSize);
  Asm = O.Asm;
  MapBase = O.MapBase;
  MapSize = O.MapSize;
  for (unsigned I = 0; I < NumSections; ++I)
    SecBase[I] = O.SecBase[I];
  O.MapBase = nullptr;
  O.MapSize = 0;
  O.Asm = nullptr;
  Status = std::move(O.Status);
  return *this;
}

bool JITMapper::map(const Assembler &A, const Resolver &Resolve,
                    StubArch Arch) {
  Asm = &A;
  Status.clear();
  auto fail = [&](support::CompileErr E, std::string_view Sym,
                  std::string Msg) {
    Status.Err = E;
    Status.Symbol.assign(Sym);
    Status.Message = std::move(Msg);
    return false;
  };
  // Fault site: mapping refused before any system resources are taken.
  if (support::faultPoint(support::FaultSite::JitMap))
    return fail(support::CompileErr::FaultInjected, {},
                "fault injected: jit-map");
  const u64 Page = static_cast<u64>(::sysconf(_SC_PAGESIZE));

  // Host symbols can be farther than +-2 GiB from the JIT mapping, which a
  // PC32 call cannot reach. Reserve one 16-byte stub (8-byte address slot +
  // "jmp [rip+slot]") per undefined symbol in the executable region; PC32
  // relocations that would overflow are redirected to the stub.
  u64 NumUndef = 0;
  for (const Symbol &S : A.symbols())
    if (!S.Defined)
      ++NumUndef;
  const u64 StubBytes = NumUndef * 16;

  // Lay out all four sections in one mapping, each page-aligned so that
  // permissions can be applied per section. Stubs live right after text so
  // they share its execute permission.
  u64 SecOff[NumSections];
  u64 SecSize[NumSections];
  u64 Off = 0;
  for (unsigned I = 0; I < NumSections; ++I) {
    const Section &S = A.section(static_cast<SecKind>(I));
    SecOff[I] = Off;
    SecSize[I] = (static_cast<SecKind>(I) == SecKind::BSS) ? S.BssSize
                                                           : S.Data.size();
    if (static_cast<SecKind>(I) == SecKind::Text)
      SecSize[I] += StubBytes ? StubBytes + 16 : 0;
    Off = alignTo(Off + SecSize[I], Page);
  }
  MapSize = Off ? Off : Page;
  const u64 StubAreaOff = alignTo(A.text().Data.size(), 16);

  void *Mem = ::mmap(nullptr, MapSize, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED) {
    MapBase = nullptr;
    return fail(support::CompileErr::JitMapFailed, {},
                "mmap of JIT image failed");
  }
  MapBase = static_cast<u8 *>(Mem);
  for (unsigned I = 0; I < NumSections; ++I) {
    SecBase[I] = MapBase + SecOff[I];
    const Section &S = A.section(static_cast<SecKind>(I));
    if (static_cast<SecKind>(I) != SecKind::BSS && !S.Data.empty())
      std::memcpy(SecBase[I], S.Data.data(), S.Data.size());
  }

  // Resolve every relocation. Defined symbols resolve to their mapped
  // location; undefined ones are looked up through the resolver.
  auto symAddr = [&](SymRef Ref) -> u8 * {
    const Symbol &Sym = A.symbol(Ref);
    if (Sym.Defined)
      return SecBase[static_cast<unsigned>(Sym.Sec)] + Sym.Off;
    if (Resolve)
      return static_cast<u8 *>(Resolve(Sym.Name));
    return nullptr;
  };

  // Lazily build a jump stub for an out-of-range undefined symbol.
  u8 *StubArea = SecBase[0] + StubAreaOff;
  support::DenseMap<u32, u8 *> StubFor;
  auto stubAddr = [&](SymRef Ref, u8 *Target) -> u8 * {
    if (u8 **Known = StubFor.find(Ref.Idx))
      return *Known;
    u8 *Stub = StubArea;
    StubArea += 16;
    if (Arch == StubArch::X64) {
      // jmp [rip+2]; 8-byte target address follows.
      static constexpr u8 JmpIndirect[] = {0xFF, 0x25, 0x02, 0x00, 0x00, 0x00,
                                       0x90, 0x90};
      std::memcpy(Stub, JmpIndirect, sizeof(JmpIndirect));
    } else {
      // ldr x16, <pc+8>; br x16; 8-byte target address follows.
      static constexpr u32 A64Stub[] = {0x58000050u, 0xD61F0200u};
      std::memcpy(Stub, A64Stub, sizeof(A64Stub));
    }
    u64 T = reinterpret_cast<u64>(Target);
    std::memcpy(Stub + 8, &T, 8);
    StubFor.insert(Ref.Idx, Stub);
    return Stub;
  };

  for (const Reloc &R : A.relocs()) {
    u8 *S = symAddr(R.Sym);
    if (!S)
      return fail(support::CompileErr::JitMapFailed, A.symbol(R.Sym).Name,
                  "unresolved symbol '" + std::string(A.symbol(R.Sym).Name) +
                      "'");
    u8 *P = SecBase[static_cast<unsigned>(R.Sec)] + R.Off;
    switch (R.Kind) {
    case RelocKind::Abs64: {
      u64 V = reinterpret_cast<u64>(S) + static_cast<u64>(R.Addend);
      std::memcpy(P, &V, 8);
      break;
    }
    case RelocKind::PC32: {
      i64 V = reinterpret_cast<i64>(S) + R.Addend - reinterpret_cast<i64>(P);
      if (!isInt32(V) && !A.symbol(R.Sym).Defined) {
        // Route the call through a nearby stub.
        S = stubAddr(R.Sym, S);
        V = reinterpret_cast<i64>(S) + R.Addend - reinterpret_cast<i64>(P);
      }
      if (!isInt32(V))
        return fail(support::CompileErr::JitMapFailed, A.symbol(R.Sym).Name,
                    "PC32 relocation overflow against '" +
                        std::string(A.symbol(R.Sym).Name) + "'");
      i32 V32 = static_cast<i32>(V);
      std::memcpy(P, &V32, 4);
      break;
    }
    case RelocKind::A64Call26: {
      i64 Rel = reinterpret_cast<i64>(S) + R.Addend - reinterpret_cast<i64>(P);
      if (!A.symbol(R.Sym).Defined &&
          (Rel < -(i64(1) << 27) || Rel >= (i64(1) << 27))) {
        // Route the call through a nearby stub.
        S = stubAddr(R.Sym, S);
        Rel = reinterpret_cast<i64>(S) + R.Addend - reinterpret_cast<i64>(P);
      }
      i64 Words = Rel >> 2;
      if ((Rel & 3) != 0 || Words < -(1 << 25) || Words >= (1 << 25))
        return fail(support::CompileErr::JitMapFailed, A.symbol(R.Sym).Name,
                    "A64 call relocation overflow against '" +
                        std::string(A.symbol(R.Sym).Name) + "'");
      u32 Inst;
      std::memcpy(&Inst, P, 4);
      Inst = (Inst & ~0x03FFFFFFu) | (static_cast<u32>(Words) & 0x03FFFFFFu);
      std::memcpy(P, &Inst, 4);
      break;
    }
    case RelocKind::A64AdrPage21: {
      i64 SPage = (reinterpret_cast<i64>(S) + R.Addend) & ~0xFFF;
      i64 PPage = reinterpret_cast<i64>(P) & ~0xFFF;
      i64 Delta = (SPage - PPage) >> 12;
      if (Delta < -(1 << 20) || Delta >= (1 << 20))
        return fail(support::CompileErr::JitMapFailed, A.symbol(R.Sym).Name,
                    "A64 page relocation overflow against '" +
                        std::string(A.symbol(R.Sym).Name) + "'");
      u32 Inst;
      std::memcpy(&Inst, P, 4);
      u32 ImmLo = static_cast<u32>(Delta) & 3;
      u32 ImmHi = (static_cast<u32>(Delta) >> 2) & 0x7FFFF;
      Inst = (Inst & ~((3u << 29) | (0x7FFFFu << 5))) | (ImmLo << 29) |
             (ImmHi << 5);
      std::memcpy(P, &Inst, 4);
      break;
    }
    case RelocKind::A64AddLo12: {
      u64 V = (reinterpret_cast<u64>(S) + static_cast<u64>(R.Addend)) & 0xFFF;
      u32 Inst;
      std::memcpy(&Inst, P, 4);
      Inst = (Inst & ~(0xFFFu << 10)) | (static_cast<u32>(V) << 10);
      std::memcpy(P, &Inst, 4);
      break;
    }
    }
  }

  // W^X: text and rodata become non-writable.
  if (SecSize[0])
    ::mprotect(SecBase[0], alignTo(SecSize[0], Page), PROT_READ | PROT_EXEC);
  if (SecSize[1])
    ::mprotect(SecBase[1], alignTo(SecSize[1], Page), PROT_READ);
  return true;
}

void *JITMapper::address(SymRef S) const {
  assert(Asm && MapBase && "not mapped");
  const Symbol &Sym = Asm->symbol(S);
  if (!Sym.Defined)
    return nullptr;
  return SecBase[static_cast<unsigned>(Sym.Sec)] + Sym.Off;
}

void *JITMapper::address(std::string_view Name) const {
  assert(Asm && MapBase && "not mapped");
  SymRef S = Asm->findSymbol(Name);
  if (!S.isValid())
    return nullptr;
  return address(S);
}
