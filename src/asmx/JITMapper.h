//===- asmx/JITMapper.h - In-memory code mapping for JIT --------*- C++ -*-===//
///
/// \file
/// Maps an Assembler's sections into executable memory and resolves
/// relocations against in-process symbols, implementing the "In-Memory
/// Mapping (JIT)" output path of the TPDE framework (Fig. 1).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_ASMX_JITMAPPER_H
#define TPDE_ASMX_JITMAPPER_H

#include "asmx/Assembler.h"
#include "support/Diag.h"

#include <functional>
#include <string_view>

namespace tpde::asmx {

/// Maps machine code into memory for direct execution.
///
/// Typical usage:
/// \code
///   JITMapper JIT;
///   bool OK = JIT.map(Asm, [](std::string_view Name) -> void * {
///     return Name == "memcpy" ? (void *)&memcpy : nullptr;
///   });
///   auto *Fn = (int (*)(int))JIT.address("my_func");
/// \endcode
class JITMapper {
public:
  using Resolver = std::function<void *(std::string_view)>;

  /// Flavor of the jump stubs used to reach resolver-provided symbols that
  /// are out of direct branch range (x86-64 `jmp [rip]` vs AArch64
  /// `ldr x16, <literal>; br x16`).
  enum class StubArch : u8 { X64, A64 };

  JITMapper() = default;
  ~JITMapper();
  JITMapper(const JITMapper &) = delete;
  JITMapper &operator=(const JITMapper &) = delete;
  JITMapper(JITMapper &&O) noexcept { *this = std::move(O); }
  JITMapper &operator=(JITMapper &&O) noexcept;

  /// Copies sections into fresh memory, resolves all relocations (consulting
  /// \p Resolve for undefined symbols), and makes text/rodata execute/read
  /// only. Returns false if an undefined symbol cannot be resolved or a
  /// relocation overflows.
  bool map(const Assembler &A, const Resolver &Resolve = nullptr,
           StubArch Arch = StubArch::X64);

  /// Structured reason for the last map() failure (Ok after success).
  /// Symbol carries the unresolved/overflowing symbol name when known.
  const support::CompileStatus &status() const { return Status; }

  /// Address of a defined symbol; nullptr for unknown/undefined names.
  void *address(std::string_view Name) const;
  /// Address of a symbol handle (defined symbols only).
  void *address(SymRef S) const;

  /// Base address of the mapped section.
  u8 *sectionBase(SecKind K) const {
    return SecBase[static_cast<unsigned>(K)];
  }
  u64 mappedSize() const { return MapSize; }

private:
  const Assembler *Asm = nullptr;
  u8 *MapBase = nullptr;
  u64 MapSize = 0;
  u8 *SecBase[NumSections] = {};
  support::CompileStatus Status;
};

} // namespace tpde::asmx

#endif // TPDE_ASMX_JITMAPPER_H
