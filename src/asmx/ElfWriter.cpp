//===- asmx/ElfWriter.cpp - ELF relocatable object emission --------------===//

#include "asmx/ElfWriter.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <tuple>

using namespace tpde;
using namespace tpde::asmx;

namespace {

// Minimal ELF64 structure definitions (we do not rely on <elf.h> so the
// writer is self-contained and testable in isolation).
struct Elf64Ehdr {
  u8 Ident[16];
  u16 Type, Machine;
  u32 Version;
  u64 Entry, PhOff, ShOff;
  u32 Flags;
  u16 EhSize, PhEntSize, PhNum, ShEntSize, ShNum, ShStrNdx;
};
struct Elf64Shdr {
  u32 Name, Type;
  u64 Flags, Addr, Offset, Size;
  u32 Link, Info;
  u64 AddrAlign, EntSize;
};
struct Elf64Sym {
  u32 Name;
  u8 Info, Other;
  u16 Shndx;
  u64 Value, Size;
};
struct Elf64Rela {
  u64 Offset;
  u64 Info;
  i64 Addend;
};

constexpr u32 SHT_PROGBITS = 1, SHT_SYMTAB = 2, SHT_STRTAB = 3, SHT_RELA = 4,
              SHT_NOBITS = 8;
constexpr u64 SHF_WRITE = 1, SHF_ALLOC = 2, SHF_EXECINSTR = 4;

constexpr u8 STB_LOCAL = 0, STB_GLOBAL = 1, STB_WEAK = 2;
constexpr u8 STT_OBJECT = 1, STT_FUNC = 2;

/// ELF relocation type for a portable RelocKind on the given machine.
static u32 elfRelocType(RelocKind K, ElfMachine M) {
  if (M == ElfMachine::X86_64) {
    switch (K) {
    case RelocKind::Abs64:
      return 1; // R_X86_64_64
    case RelocKind::PC32:
      return 2; // R_X86_64_PC32
    default:
      TPDE_UNREACHABLE("AArch64 relocation in x86-64 object");
    }
  }
  switch (K) {
  case RelocKind::Abs64:
    return 257; // R_AARCH64_ABS64
  case RelocKind::A64Call26:
    return 283; // R_AARCH64_CALL26
  case RelocKind::A64AdrPage21:
    return 275; // R_AARCH64_ADR_PREL_PG_HI21
  case RelocKind::A64AddLo12:
    return 277; // R_AARCH64_ADD_ABS_LO12_NC
  default:
    TPDE_UNREACHABLE("x86-64 relocation in AArch64 object");
  }
}

class StrTab {
public:
  StrTab() { Bytes.push_back(0); }
  u32 add(std::string_view S) {
    if (S.empty())
      return 0;
    u32 Off = static_cast<u32>(Bytes.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
    Bytes.push_back(0);
    return Off;
  }
  std::vector<u8> Bytes;
};

} // namespace

std::vector<u8> tpde::asmx::writeElfObject(const Assembler &A,
                                           ElfMachine Machine) {
  // Section header indices.
  enum : u16 {
    ShNull = 0,
    ShText,
    ShROData,
    ShData,
    ShBSS,
    ShRelaText,
    ShRelaROData,
    ShRelaData,
    ShSymTab,
    ShStrTab,
    ShShStrTab,
    ShCount
  };
  static constexpr u16 SecToShdr[NumSections] = {ShText, ShROData, ShData, ShBSS};

  // --- Symbol table: null, locals, then globals (ELF requirement). ------
  //
  // The emitted order is *canonical*: a pure function of the symbols'
  // content, independent of the assembler's insertion order. A serial
  // whole-module compile registers symbols in module order while the
  // parallel driver's merge materializes them in shard/first-reference
  // order — canonicalizing here makes the two paths' objects
  // byte-identical (the determinism contract of core/ParallelCompiler.h).
  // Undefined symbols no relocation references are skipped entirely:
  // they carry no linker-visible information, and the sparse
  // (on-demand) compile paths never create them in the first place.
  StrTab Str;
  std::vector<Elf64Sym> ElfSyms;
  ElfSyms.push_back(Elf64Sym{});
  const auto &Syms = A.symbols();
  std::vector<u32> SymMap(Syms.size(), 0);
  std::vector<u8> Referenced(Syms.size(), 0);
  for (const Reloc &R : A.relocs())
    Referenced[R.Sym.Idx] = 1;
  // Canonical content key; no two distinct emitted symbols compare equal
  // (defined symbols differ in (section, offset, size, name); names are
  // unique within one assembler for named symbols).
  auto canonLess = [&](u32 LI, u32 RI) {
    const Symbol &L = Syms[LI], &R = Syms[RI];
    auto key = [](const Symbol &S) {
      return std::tuple(!S.Defined, static_cast<u8>(S.Sec), S.Off, S.Size,
                        S.IsFunc, static_cast<u8>(S.Link), S.Name);
    };
    return key(L) < key(R);
  };
  std::vector<u32> Order[2]; // [0] locals, [1] globals (incl. weak)
  for (u32 I = 0; I < Syms.size(); ++I) {
    const Symbol &S = Syms[I];
    if (!S.Defined && !Referenced[I])
      continue; // unreferenced declaration: linker no-op, drop
    Order[S.Link == Linkage::Internal ? 0 : 1].push_back(I);
  }
  u32 FirstGlobal = 0;
  for (unsigned Class = 0; Class < 2; ++Class) {
    std::sort(Order[Class].begin(), Order[Class].end(), canonLess);
    if (Class == 1)
      FirstGlobal = static_cast<u32>(ElfSyms.size());
    for (u32 I : Order[Class]) {
      const Symbol &S = Syms[I];
      Elf64Sym ES{};
      ES.Name = Str.add(S.Name);
      u8 Bind = Class == 0 ? STB_LOCAL
                           : (S.Link == Linkage::Weak ? STB_WEAK : STB_GLOBAL);
      u8 Type = S.Defined ? (S.IsFunc ? STT_FUNC : STT_OBJECT) : 0;
      ES.Info = static_cast<u8>((Bind << 4) | Type);
      ES.Shndx = S.Defined ? SecToShdr[static_cast<unsigned>(S.Sec)] : 0;
      ES.Value = S.Defined ? S.Off : 0;
      ES.Size = S.Size;
      SymMap[I] = static_cast<u32>(ElfSyms.size());
      ElfSyms.push_back(ES);
    }
  }

  // --- Relocations, grouped by section. ---------------------------------
  std::vector<Elf64Rela> Relas[NumSections];
  for (const Reloc &R : A.relocs()) {
    Elf64Rela ER;
    ER.Offset = R.Off;
    ER.Info = (static_cast<u64>(SymMap[R.Sym.Idx]) << 32) |
              elfRelocType(R.Kind, Machine);
    ER.Addend = R.Addend;
    Relas[static_cast<unsigned>(R.Sec)].push_back(ER);
  }

  // --- Section name table. ----------------------------------------------
  StrTab ShStr;
  u32 NText = ShStr.add(".text"), NROData = ShStr.add(".rodata"),
      NData = ShStr.add(".data"), NBSS = ShStr.add(".bss"),
      NRelaText = ShStr.add(".rela.text"),
      NRelaROData = ShStr.add(".rela.rodata"),
      NRelaData = ShStr.add(".rela.data"), NSymTab = ShStr.add(".symtab"),
      NStrTab = ShStr.add(".strtab"), NShStrTab = ShStr.add(".shstrtab");

  const Section &Text = A.section(SecKind::Text);
  const Section &RO = A.section(SecKind::ROData);
  const Section &Data = A.section(SecKind::Data);
  const Section &BSS = A.section(SecKind::BSS);

  // --- Layout: header, section contents, section headers. ---------------
  //
  // Reserve the whole object up front (content + headers + worst-case
  // alignment pad per placed section) so a 10k-function module's image is
  // one allocation instead of a doubling ladder that briefly holds two
  // copies of .text.
  u64 Reserve = sizeof(Elf64Ehdr) + sizeof(Elf64Shdr) * ShCount +
                Text.Data.size() + RO.Data.size() + Data.Data.size() +
                Str.Bytes.size() + ShStr.Bytes.size() +
                ElfSyms.size() * sizeof(Elf64Sym) + 16 * ShCount + 8;
  for (const auto &V : Relas)
    Reserve += V.size() * sizeof(Elf64Rela);
  std::vector<u8> Out;
  Out.reserve(Reserve);
  Out.resize(sizeof(Elf64Ehdr), 0);
  auto alignOut = [&Out](u64 Align) {
    while (Out.size() % Align)
      Out.push_back(0);
  };
  auto appendBytes = [&Out](const void *P, size_t N) {
    const u8 *B = static_cast<const u8 *>(P);
    Out.insert(Out.end(), B, B + N);
  };

  Elf64Shdr Shdrs[ShCount] = {};
  auto placeSection = [&](u16 Idx, u32 Name, u32 Type, u64 Flags,
                          const void *Content, u64 Size, u64 Align, u32 Link,
                          u32 Info, u64 EntSize) {
    alignOut(Align ? Align : 1);
    Elf64Shdr &H = Shdrs[Idx];
    H.Name = Name;
    H.Type = Type;
    H.Flags = Flags;
    H.Offset = Out.size();
    H.Size = Size;
    H.Link = Link;
    H.Info = Info;
    H.AddrAlign = Align;
    H.EntSize = EntSize;
    if (Content && Type != SHT_NOBITS)
      appendBytes(Content, Size);
  };

  placeSection(ShText, NText, SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR,
               Text.Data.data(), Text.Data.size(), 16, 0, 0, 0);
  placeSection(ShROData, NROData, SHT_PROGBITS, SHF_ALLOC, RO.Data.data(),
               RO.Data.size(), RO.Align, 0, 0, 0);
  placeSection(ShData, NData, SHT_PROGBITS, SHF_ALLOC | SHF_WRITE,
               Data.Data.data(), Data.Data.size(), Data.Align, 0, 0, 0);
  placeSection(ShBSS, NBSS, SHT_NOBITS, SHF_ALLOC | SHF_WRITE, nullptr,
               BSS.BssSize, BSS.Align, 0, 0, 0);
  auto placeRela = [&](u16 Idx, u32 Name, SecKind Sec, u16 TargetShdr) {
    auto &V = Relas[static_cast<unsigned>(Sec)];
    placeSection(Idx, Name, SHT_RELA, 0, V.data(),
                 V.size() * sizeof(Elf64Rela), 8, ShSymTab, TargetShdr,
                 sizeof(Elf64Rela));
  };
  placeRela(ShRelaText, NRelaText, SecKind::Text, ShText);
  placeRela(ShRelaROData, NRelaROData, SecKind::ROData, ShROData);
  placeRela(ShRelaData, NRelaData, SecKind::Data, ShData);
  placeSection(ShSymTab, NSymTab, SHT_SYMTAB, 0, ElfSyms.data(),
               ElfSyms.size() * sizeof(Elf64Sym), 8, ShStrTab, FirstGlobal,
               sizeof(Elf64Sym));
  placeSection(ShStrTab, NStrTab, SHT_STRTAB, 0, Str.Bytes.data(),
               Str.Bytes.size(), 1, 0, 0, 0);
  placeSection(ShShStrTab, NShStrTab, SHT_STRTAB, 0, ShStr.Bytes.data(),
               ShStr.Bytes.size(), 1, 0, 0, 0);

  alignOut(8);
  u64 ShOff = Out.size();
  appendBytes(Shdrs, sizeof(Shdrs));

  // --- ELF header. -------------------------------------------------------
  Elf64Ehdr Ehdr{};
  Ehdr.Ident[0] = 0x7f;
  Ehdr.Ident[1] = 'E';
  Ehdr.Ident[2] = 'L';
  Ehdr.Ident[3] = 'F';
  Ehdr.Ident[4] = 2; // ELFCLASS64
  Ehdr.Ident[5] = 1; // ELFDATA2LSB
  Ehdr.Ident[6] = 1; // EV_CURRENT
  Ehdr.Type = 1;     // ET_REL
  Ehdr.Machine = static_cast<u16>(Machine);
  Ehdr.Version = 1;
  Ehdr.ShOff = ShOff;
  Ehdr.EhSize = sizeof(Elf64Ehdr);
  Ehdr.ShEntSize = sizeof(Elf64Shdr);
  Ehdr.ShNum = ShCount;
  Ehdr.ShStrNdx = ShShStrTab;
  std::memcpy(Out.data(), &Ehdr, sizeof(Ehdr));
  return Out;
}

bool tpde::asmx::writeElfObjectToFile(const Assembler &A, ElfMachine Machine,
                                      const char *Path) {
  std::vector<u8> Bytes = writeElfObject(A, Machine);
  std::FILE *F = std::fopen(Path, "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
  return Written == Bytes.size();
}
