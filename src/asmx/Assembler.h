//===- asmx/Assembler.h - Sections, symbols, labels, relocations -*- C++ -*-===//
///
/// \file
/// Target-independent machine code container used by all back-ends in this
/// repository. It owns the section byte buffers, the symbol table, pending
/// label fixups, and relocations. Finished code can either be written to an
/// ELF relocatable object (ElfWriter) or mapped into memory for direct
/// execution (JITMapper), mirroring the "Object File Generation" and
/// "In-Memory Mapping (JIT)" boxes of Fig. 1 in the TPDE paper.
///
/// Everything here sits on the per-function compile hot path, so the data
/// structures follow the allocation policy of docs/PERF.md: symbol names
/// are interned through a support::StringPool (no string-keyed hashing, no
/// per-symbol string storage), and all tables are pooled — reset() rewinds
/// them without releasing capacity so a reused assembler compiles without
/// touching the heap.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_ASMX_ASSEMBLER_H
#define TPDE_ASMX_ASSEMBLER_H

#include "support/ByteBuffer.h"
#include "support/Common.h"
#include "support/DenseMap.h"
#include "support/Diag.h"
#include "support/StringPool.h"

#include <string>
#include <string_view>
#include <vector>

namespace tpde::asmx {

/// The four section kinds every back-end in this repo emits into.
enum class SecKind : u8 { Text = 0, ROData = 1, Data = 2, BSS = 3 };
constexpr unsigned NumSections = 4;

/// Symbol linkage, as required from the IR adapter (paper Fig. 2).
enum class Linkage : u8 { External, Internal, Weak };

/// Opaque handle to a symbol in the assembler's symbol table.
struct SymRef {
  u32 Idx = ~0u;
  bool isValid() const { return Idx != ~0u; }
  bool operator==(const SymRef &O) const { return Idx == O.Idx; }
};

/// Opaque handle to a text-section label (function-local jump target).
struct Label {
  u32 Idx = ~0u;
  bool isValid() const { return Idx != ~0u; }
};

/// Dense epoch-guarded SymRef cache for on-demand (sparse) symbol
/// materialization. Slot I holds the symbol materialized for entity I
/// (function index, global index) during the compile identified by the
/// caller's epoch; one epoch bump invalidates every slot in O(1) — no
/// per-entity clear when the assembler's symbol table restarts between
/// shard compiles. The invalidation contract lives here, once, for
/// every user (CompilerBase::funcSym, tpde_tir::TirGlobalSyms): slots
/// start stamped 0 and callers' epochs start at 1, so a fresh or
/// resized cache never yields a stale SymRef.
class EpochSymCache {
public:
  /// Sizes the cache; steady-state no-op while the entity count is
  /// stable (docs/PERF.md). Re-sizing restamps to 0 — epochs are
  /// monotonic, so the slots read as stale.
  void resize(size_t N) {
    if (Syms.size() != N) {
      Syms.resize(N);
      Epochs.assign(N, 0);
    }
  }

  /// The symbol of entity \p I: a plain cached read when slot I was
  /// stamped with \p Epoch, otherwise \p Materialize() is called and
  /// its result cached.
  template <typename Fn>
  SymRef sym(u32 I, u64 Epoch, Fn Materialize) {
    if (Epochs[I] != Epoch) {
      Syms[I] = Materialize();
      Epochs[I] = Epoch;
    }
    return Syms[I];
  }

private:
  std::vector<SymRef> Syms;
  std::vector<u64> Epochs;
};

/// How a pending label fixup patches the instruction stream once the label
/// is bound.
enum class FixupKind : u8 {
  /// 32-bit PC-relative displacement; PC is the end of the 4 patched bytes.
  Rel32,
  /// AArch64 B/BL: imm26 word-offset in bits [25:0] of the instruction word.
  A64Branch26,
  /// AArch64 B.cond/CBZ: imm19 word-offset in bits [23:5].
  A64Branch19,
};

/// Relocation kinds; a portable subset sufficient for both targets.
enum class RelocKind : u8 {
  /// 64-bit absolute address: S + A.
  Abs64,
  /// 32-bit PC-relative: S + A - P (x86-64 call/jmp/RIP-relative).
  PC32,
  /// AArch64 BL/B: (S + A - P) >> 2 into imm26.
  A64Call26,
  /// AArch64 ADRP: page delta into imm21.
  A64AdrPage21,
  /// AArch64 ADD immediate: low 12 bits of S + A.
  A64AddLo12,
};

/// A byte buffer backing one section. Built on support::ByteBuffer so the
/// encoders can batch an instruction's bytes through a raw write cursor
/// (one bounds check per instruction, no per-byte zero-fill).
class Section {
public:
  support::ByteBuffer Data;
  /// Size of the section if it is BSS (no bytes stored).
  u64 BssSize = 0;
  u64 Align = 16;

  u64 size() const { return Data.size(); }

  /// Growth policy for the emission hot path: never grow by less than a
  /// page's worth, always geometrically, so steady-state emission is
  /// amortized allocation-free.
  void ensureSpace(size_t More) { Data.ensure(More); }

  void appendByte(u8 V) { Data.push_back(V); }
  void append(const void *Bytes, size_t N) { Data.append(Bytes, N); }
  template <typename T> void appendLE(T V) {
    static_assert(std::is_integral_v<T>);
    Data.ensure(sizeof(T));
    u8 *P = Data.writableEnd();
    for (unsigned I = 0; I < sizeof(T); ++I)
      P[I] = static_cast<u8>(static_cast<u64>(V) >> (8 * I));
    Data.setEnd(P + sizeof(T));
  }
  void appendZeros(size_t N) { Data.appendZeros(N); }
  /// Pads with zero bytes until the size is a multiple of \p A.
  void alignToBoundary(u64 A) {
    if (A > Align)
      Align = A;
    if (u64 Rem = Data.size() % A)
      Data.appendZeros(A - Rem);
  }

  // --- Write cursor (see support::ByteBuffer) -------------------------
  /// Reserves \p MaxBytes and returns a raw pointer to the section end;
  /// write at most MaxBytes and hand the advanced pointer to
  /// commitCursor(). No other section mutation may happen in between.
  u8 *writeCursor(size_t MaxBytes) {
    Data.ensure(MaxBytes);
    return Data.writableEnd();
  }
  void commitCursor(u8 *End) { Data.setEnd(End); }
  u64 cursorOffset(const u8 *P) const {
    return static_cast<u64>(P - Data.data());
  }

  /// Drops all bytes but keeps the buffer for reuse.
  void reset() {
    Data.clear();
    BssSize = 0;
    Align = 16;
  }

  template <typename T> void patchLE(u64 Off, T V) {
    assert(Off + sizeof(T) <= Data.size() && "patch out of bounds");
    for (unsigned I = 0; I < sizeof(T); ++I)
      Data[Off + I] = static_cast<u8>(static_cast<u64>(V) >> (8 * I));
  }
  template <typename T> T readLE(u64 Off) const {
    assert(Off + sizeof(T) <= Data.size() && "read out of bounds");
    u64 V = 0;
    for (unsigned I = 0; I < sizeof(T); ++I)
      V |= static_cast<u64>(Data[Off + I]) << (8 * I);
    return static_cast<T>(V);
  }
};

/// A symbol table entry. The name is a view into the assembler's string
/// pool and stays valid for the assembler's lifetime (across reset()).
struct Symbol {
  std::string_view Name;
  /// Interned-name id (StringPool::InvalidId for anonymous symbols); lets
  /// rewindForRecompile() drop the name->symbol mapping without hashing.
  u32 NameId = ~0u;
  Linkage Link = Linkage::External;
  bool Defined = false;
  bool IsFunc = false;
  SecKind Sec = SecKind::Text;
  u64 Off = 0;
  u64 Size = 0;
};

/// A relocation against a symbol, stored per section.
struct Reloc {
  SecKind Sec;
  u64 Off;
  RelocKind Kind;
  SymRef Sym;
  i64 Addend;
};

/// Byte-placement plan for one fragment, produced by
/// Assembler::reserveFrom(): the destination base offset and reserved
/// byte count per section. Text, data, and BSS are pre-reserved so the
/// fragment's bytes can later be placed in parallel (placeFrom) and the
/// serial merge tail (stitchFrom) touches only symbols and relocations.
/// Read-only data is deferred entirely to stitchFrom — the constant-pool
/// dedup decision depends on what *earlier* merges appended, so its base
/// cannot be planned ahead; Base[ROData] here is meaningless.
struct MergePlan {
  u64 Base[NumSections] = {};
  u64 Bytes[NumSections] = {};
};

/// Owns all emitted machine code and metadata for one module.
class Assembler {
public:
  Section &section(SecKind K) { return Secs[static_cast<unsigned>(K)]; }
  const Section &section(SecKind K) const {
    return Secs[static_cast<unsigned>(K)];
  }
  Section &text() { return section(SecKind::Text); }
  const Section &text() const { return section(SecKind::Text); }

  /// Creates (or merges into) the named symbol: get-or-create semantics
  /// on a single interned-name probe — the name is interned once and the
  /// pool id indexes straight into the symbol map, no lookup-then-create
  /// double hash. Registering a name that already exists returns the
  /// existing entry with linkage/kind updated — a later *definition*
  /// conflict is diagnosed in defineSymbol(). This is also the on-demand
  /// (sparse) materialization entry point: the code generators call it
  /// at a call target's / global's first reference, so a shard compile
  /// only ever pays for symbols it actually touches (O(defined +
  /// referenced), never O(module)).
  SymRef createSymbol(std::string_view Name, Linkage L, bool IsFunc);
  /// Convenience form of createSymbol() for plain undefined-external
  /// data references.
  SymRef getOrCreateSymbol(std::string_view Name);
  /// Looks up a symbol by name; returns an invalid ref if absent.
  SymRef findSymbol(std::string_view Name) const;
  /// Marks \p S as defined at the given section offset. Defining a strong
  /// symbol twice is an error (see hasError()); for weak symbols the first
  /// definition wins.
  void defineSymbol(SymRef S, SecKind Sec, u64 Off, u64 Size);
  void setSymbolSize(SymRef S, u64 Size);

  const Symbol &symbol(SymRef S) const {
    assert(S.isValid() && S.Idx < Syms.size() && "invalid symbol");
    return Syms[S.Idx];
  }
  const std::vector<Symbol> &symbols() const { return Syms; }
  u32 symbolCount() const { return static_cast<u32>(Syms.size()); }

  /// True once any module-level inconsistency (e.g. a duplicate strong
  /// symbol definition) was recorded. Checked by callers at module
  /// boundaries; emission continues so all errors surface at once.
  bool hasError() const { return ErrCode != support::CompileErr::Ok; }
  std::string_view errorMessage() const { return Err; }
  /// Structured code of the first recorded error (Ok when clean). Module
  /// drivers lift this into their CompileStatus.
  support::CompileErr errorCode() const { return ErrCode; }

  void addReloc(SecKind Sec, u64 Off, RelocKind K, SymRef S, i64 Addend) {
    Relocs.push_back(Reloc{Sec, Off, K, S, Addend});
  }
  const std::vector<Reloc> &relocs() const { return Relocs; }

  // --- Labels (text section only) -------------------------------------
  Label makeLabel();
  /// Binds \p L to the current end of the text section and patches all
  /// pending fixups referring to it.
  void bindLabel(Label L);
  bool isBound(Label L) const { return Labels[L.Idx].Bound; }
  u64 labelOffset(Label L) const {
    assert(Labels[L.Idx].Bound && "label not bound");
    return Labels[L.Idx].Off;
  }
  /// Records that the instruction bytes at \p Off must be patched to reach
  /// \p L; patches immediately if the label is already bound.
  void addFixup(Label L, FixupKind K, u64 Off);

  /// Resets function-local state (labels). Symbols and sections persist.
  void resetLabels() {
    Labels.clear();
    Fixups.clear();
  }

  /// Rewinds the whole assembler to an empty module while keeping every
  /// buffer's capacity and the interned name pool, so the next compile
  /// into this assembler does not allocate.
  void reset() {
    clearEmission();
    Syms.clear();
    std::fill(SymOfName.begin(), SymOfName.end(), ~0u);
    ++Epoch;
  }

  /// Counts the reset() calls so far. Module compilers use it to detect
  /// that the symbol table they registered is still intact and can be
  /// reused on a recompile (module-level symbol batching): the fast path
  /// is valid only while the epoch recorded at registration time matches.
  u64 resetEpoch() const { return Epoch; }

  /// Like reset(), but keeps the first \p SymbolWatermark symbols as
  /// *declarations*: names, linkage, and function-ness survive while
  /// definitions, sections, relocations, and labels are dropped. Symbols
  /// past the watermark (e.g. anonymous constant-pool entries created
  /// during function compilation) are removed entirely. Does not bump
  /// resetEpoch(), so a recompile loop stays on the fast path.
  ///
  /// Unlike reset(), the cost is proportional to the *current* symbol
  /// table, never to the interned-name pool: only the name slots of the
  /// dropped symbols are unmapped (reset() refills the whole id->symbol
  /// map). rewindForRecompile(0) is therefore the sparse-mode per-shard
  /// rewind — a worker whose previous shard materialized S symbols pays
  /// O(S) to start the next shard, regardless of how many names its pool
  /// has accumulated across the module.
  void rewindForRecompile(u32 SymbolWatermark);

  /// Appends \p Src's sections, symbols, and relocations to this module.
  ///
  /// Section bytes land at the alignment-padded end of the corresponding
  /// destination section (BSS sizes are concatenated the same way), and
  /// relocation offsets are rebased accordingly. Named symbols are
  /// resolved against the destination table by interned name: an
  /// undefined reference in one input binds to the definition from
  /// another, which is what links calls between functions compiled into
  /// different assemblers (cross-shard symbol resolution). Duplicate
  /// strong definitions surface through hasError(); weak symbols keep the
  /// first definition, so merge order decides. Anonymous symbols are
  /// appended as fresh entries. Undefined source symbols that no source
  /// relocation references are dropped (linker semantics), so a snapshot
  /// merge carries only defined + actually-referenced records — with the
  /// code generators materializing symbols on demand the source table is
  /// already sparse, and merging K shard fragments stays O(defined +
  /// referenced) instead of O(K * module). Both assemblers must be
  /// label-finalized (no pending fixups). Steady-state merging into a
  /// reset() assembler does not allocate once all buffers reached their
  /// high-water mark.
  ///
  /// Cross-fragment constant-pool dedup: when the source's read-only data
  /// consists purely of anonymous defined symbols tiling the section (the
  /// shape of the FP constant pool a shard compile emits), the section is
  /// merged symbol-by-symbol and entries whose bytes already exist in this
  /// module (appended by an earlier merge) are bound to the existing
  /// symbol instead of being copied — so K shards that each materialized
  /// the same constant contribute it once, and the merged pool matches a
  /// serial whole-module compile. The decision depends only on fragment
  /// content and merge order, preserving the thread-count determinism
  /// contract. Sources with named rodata symbols, rodata relocations, or
  /// uncovered rodata bytes (e.g. the globals fragment) fall back to the
  /// wholesale section copy above.
  void mergeFrom(const Assembler &Src);

  // --- Two-pass (in-place) merge --------------------------------------
  //
  // mergeFrom(Src) == reserveFrom(Src, P) + placeFrom(Src, P) +
  // stitchFrom(Src, P), byte for byte. The split exists so a parallel
  // driver can reserve every fragment's slice serially (cheap: O(1) in
  // section bytes), place all fragments' text/data bytes concurrently,
  // and keep only the O(symbols + relocs) stitch on the serial path —
  // the zero-merge emission scheme of docs/PERF.md ("Two-pass
  // emission"). The copy-merge above remains as the one-fragment and
  // fallback path and shares these primitives, so the two paths cannot
  // drift.

  /// Pass 1: extends this module's text, data, and BSS exactly as
  /// mergeFrom(\p Src) would — alignment padding zero-filled, the
  /// fragment's own byte range *uninitialized* — and records the slice
  /// in \p Plan. Serial per destination (it moves the section ends).
  /// Read-only data is not reserved (see MergePlan).
  void reserveFrom(const Assembler &Src, MergePlan &Plan);

  /// Pass 2: copies \p Src's text and data bytes into the slice
  /// reserved by reserveFrom(). Safe to run concurrently for *distinct
  /// plans* of the same destination: it writes only this plan's
  /// disjoint byte ranges and touches no shared assembler state —
  /// which is also why it reports failure by return value instead of
  /// setError(). Returns false iff the section-place fault site fired;
  /// the call may simply be repeated.
  bool placeFrom(const Assembler &Src, const MergePlan &Plan);

  /// Zero-fills the byte ranges reserved for \p Plan — the graceful-
  /// degradation escape hatch when a placement failed terminally: the
  /// module is already failed, but neighboring slices and the
  /// no-uninitialized-bytes guarantee stay intact.
  void zeroSlice(const MergePlan &Plan);

  /// Pass 3 (serial, in fragment order): everything mergeFrom() does
  /// except the text/data/BSS byte copy — read-only data (wholesale
  /// append or constant-pool dedup), symbol resolution, relocation
  /// rebase, and error propagation. Cost is O(symbols + relocs) of
  /// \p Src, never O(section bytes); the only bytes it appends are
  /// rodata pool entries (each ≤ 16 bytes, one per symbol).
  void stitchFrom(const Assembler &Src, const MergePlan &Plan);

private:
  /// Shared tail of reset() and rewindForRecompile(): drops everything
  /// that belongs to one compile's emitted output (sections, relocations,
  /// labels, fixups, error state) while keeping capacity. Any new pooled
  /// emission container must be cleared HERE so the symbol-batched
  /// rewind path cannot drift from the full reset.
  void clearEmission() {
    for (Section &S : Secs)
      S.reset();
    Relocs.clear();
    Labels.clear();
    Fixups.clear();
    Err.clear();
    ErrCode = support::CompileErr::Ok;
    RoDedupSyms.clear();
  }

  struct LabelInfo {
    u64 Off = 0;
    bool Bound = false;
    u32 FirstFixup = ~0u;
  };
  struct FixupInfo {
    u64 Off;
    FixupKind Kind;
    u32 Next;
  };

  void applyFixup(u64 Off, FixupKind K, u64 Target);
  /// First error wins: later errors are dropped so the reported diagnostic
  /// is the earliest one in emission order.
  void setError(support::CompileErr Code, std::string Msg) {
    if (ErrCode == support::CompileErr::Ok) {
      ErrCode = Code;
      Err = std::move(Msg);
    }
  }
  void setError(std::string Msg) {
    setError(support::CompileErr::AssemblerError, std::move(Msg));
  }

  Section Secs[NumSections];
  std::vector<Symbol> Syms;
  support::StringPool Names;
  /// Name id -> symbol index (~0 = none). Indexed by StringPool id, so it
  /// only ever grows with the pool; reset() refills with ~0.
  std::vector<u32> SymOfName;
  std::vector<Reloc> Relocs;
  std::vector<LabelInfo> Labels;
  std::vector<FixupInfo> Fixups;
  std::string Err;
  support::CompileErr ErrCode = support::CompileErr::Ok;
  /// True if \p Src's rodata is eligible for the symbol-by-symbol dedup
  /// merge (see mergeFrom); fills MergeRoOrder with the defined rodata
  /// symbol indices in offset order.
  bool roDedupEligible(const Assembler &Src);

  /// Scratch for mergeFrom(): source symbol index -> merged index (~0 for
  /// dropped unreferenced declarations), and the reloc-referenced flags.
  /// Members so steady-state merges reuse their capacity (docs/PERF.md).
  std::vector<u32> MergeSymMap;
  std::vector<u8> MergeRefd;
  /// Rodata-dedup scratch: source rodata symbols in offset order, and the
  /// per-source-symbol destination symbol index (~0 = not a rodata pool
  /// entry). Content-hash -> destination symbol index of every anonymous
  /// rodata entry this module accumulated across merges; cleared with the
  /// emission state.
  std::vector<u32> MergeRoOrder;
  std::vector<u32> MergeRoSym;
  support::DenseMap<u64, u32> RoDedupSyms;
  u64 Epoch = 0;
};

} // namespace tpde::asmx

#endif // TPDE_ASMX_ASSEMBLER_H
