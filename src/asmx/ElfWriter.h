//===- asmx/ElfWriter.h - ELF relocatable object emission -------*- C++ -*-===//
///
/// \file
/// Serializes an Assembler's sections, symbols, and relocations into an
/// ELF64 relocatable object file (ET_REL) for x86-64 or AArch64. This is the
/// "Object File Generation" output path of the TPDE framework (Fig. 1).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_ASMX_ELFWRITER_H
#define TPDE_ASMX_ELFWRITER_H

#include "asmx/Assembler.h"

#include <vector>

namespace tpde::asmx {

enum class ElfMachine : u16 { X86_64 = 62, AArch64 = 183 };

/// Serializes \p A into the byte image of an ELF relocatable object.
std::vector<u8> writeElfObject(const Assembler &A, ElfMachine Machine);

/// Writes the object to \p Path; returns false on I/O failure.
bool writeElfObjectToFile(const Assembler &A, ElfMachine Machine,
                          const char *Path);

} // namespace tpde::asmx

#endif // TPDE_ASMX_ELFWRITER_H
