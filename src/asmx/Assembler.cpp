//===- asmx/Assembler.cpp - Symbol table and label fixups ----------------===//

#include "asmx/Assembler.h"

using namespace tpde;
using namespace tpde::asmx;

SymRef Assembler::createSymbol(std::string_view Name, Linkage L, bool IsFunc) {
  u32 Idx = static_cast<u32>(Syms.size());
  Symbol S;
  S.Name = std::string(Name);
  S.Link = L;
  S.IsFunc = IsFunc;
  Syms.push_back(std::move(S));
  if (!Name.empty())
    SymByName.emplace(Syms.back().Name, Idx);
  return SymRef{Idx};
}

SymRef Assembler::getOrCreateSymbol(std::string_view Name) {
  auto It = SymByName.find(std::string(Name));
  if (It != SymByName.end())
    return SymRef{It->second};
  return createSymbol(Name, Linkage::External, /*IsFunc=*/false);
}

SymRef Assembler::findSymbol(std::string_view Name) const {
  auto It = SymByName.find(std::string(Name));
  if (It == SymByName.end())
    return SymRef{};
  return SymRef{It->second};
}

void Assembler::defineSymbol(SymRef S, SecKind Sec, u64 Off, u64 Size) {
  assert(S.isValid() && "invalid symbol");
  Symbol &Sym = Syms[S.Idx];
  assert(!Sym.Defined && "symbol already defined");
  Sym.Defined = true;
  Sym.Sec = Sec;
  Sym.Off = Off;
  Sym.Size = Size;
}

void Assembler::setSymbolSize(SymRef S, u64 Size) {
  assert(S.isValid() && "invalid symbol");
  Syms[S.Idx].Size = Size;
}

Label Assembler::makeLabel() {
  Labels.push_back(LabelInfo{});
  return Label{static_cast<u32>(Labels.size() - 1)};
}

void Assembler::bindLabel(Label L) {
  assert(L.isValid() && L.Idx < Labels.size() && "invalid label");
  LabelInfo &Info = Labels[L.Idx];
  assert(!Info.Bound && "label bound twice");
  Info.Bound = true;
  Info.Off = text().size();
  for (u32 F = Info.FirstFixup; F != ~0u;) {
    const FixupInfo &Fix = Fixups[F];
    applyFixup(Fix.Off, Fix.Kind, Info.Off);
    F = Fix.Next;
  }
  Info.FirstFixup = ~0u;
}

void Assembler::addFixup(Label L, FixupKind K, u64 Off) {
  assert(L.isValid() && L.Idx < Labels.size() && "invalid label");
  LabelInfo &Info = Labels[L.Idx];
  if (Info.Bound) {
    applyFixup(Off, K, Info.Off);
    return;
  }
  Fixups.push_back(FixupInfo{Off, K, Info.FirstFixup});
  Info.FirstFixup = static_cast<u32>(Fixups.size() - 1);
}

void Assembler::applyFixup(u64 Off, FixupKind K, u64 Target) {
  Section &T = text();
  switch (K) {
  case FixupKind::Rel32: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off + 4);
    assert(isInt32(Rel) && "jump distance exceeds 32 bits");
    T.patchLE<i32>(Off, static_cast<i32>(Rel));
    return;
  }
  case FixupKind::A64Branch26: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off);
    assert((Rel & 3) == 0 && "unaligned branch target");
    i64 Words = Rel >> 2;
    assert(Words >= -(1 << 25) && Words < (1 << 25) && "branch out of range");
    u32 Inst = T.readLE<u32>(Off);
    Inst = (Inst & ~0x03FFFFFFu) | (static_cast<u32>(Words) & 0x03FFFFFFu);
    T.patchLE<u32>(Off, Inst);
    return;
  }
  case FixupKind::A64Branch19: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off);
    assert((Rel & 3) == 0 && "unaligned branch target");
    i64 Words = Rel >> 2;
    assert(Words >= -(1 << 18) && Words < (1 << 18) && "branch out of range");
    u32 Inst = T.readLE<u32>(Off);
    Inst = (Inst & ~(0x7FFFFu << 5)) |
           ((static_cast<u32>(Words) & 0x7FFFFu) << 5);
    T.patchLE<u32>(Off, Inst);
    return;
  }
  }
  TPDE_UNREACHABLE("unknown fixup kind");
}
