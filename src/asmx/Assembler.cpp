//===- asmx/Assembler.cpp - Symbol table and label fixups ----------------===//

#include "asmx/Assembler.h"

using namespace tpde;
using namespace tpde::asmx;

SymRef Assembler::createSymbol(std::string_view Name, Linkage L, bool IsFunc) {
  if (!Name.empty()) {
    support::StringPool::StrId Id = Names.intern(Name);
    if (SymOfName.size() < Names.count())
      SymOfName.resize(Names.count(), ~0u);
    u32 &Existing = SymOfName[Id];
    if (Existing != ~0u) {
      // Merge with the prior registration instead of silently shadowing
      // it; definition conflicts are caught in defineSymbol(). Only an
      // undefined external placeholder adopts the new linkage — a
      // re-registration must never relax a defined or local symbol
      // (e.g. Internal -> Weak would change ELF binding and disable the
      // duplicate-strong-definition diagnostic).
      Symbol &S = Syms[Existing];
      if (!S.Defined && S.Link == Linkage::External)
        S.Link = L;
      S.IsFunc |= IsFunc;
      return SymRef{Existing};
    }
    u32 Idx = static_cast<u32>(Syms.size());
    Existing = Idx;
    Syms.push_back(Symbol{Names.str(Id), L, false, IsFunc, SecKind::Text,
                          0, 0});
    return SymRef{Idx};
  }
  // Anonymous symbols (constant pool entries) are never looked up by name.
  u32 Idx = static_cast<u32>(Syms.size());
  Syms.push_back(Symbol{{}, L, false, IsFunc, SecKind::Text, 0, 0});
  return SymRef{Idx};
}

SymRef Assembler::getOrCreateSymbol(std::string_view Name) {
  SymRef S = findSymbol(Name);
  if (S.isValid())
    return S;
  return createSymbol(Name, Linkage::External, /*IsFunc=*/false);
}

SymRef Assembler::findSymbol(std::string_view Name) const {
  support::StringPool::StrId Id = Names.lookup(Name);
  if (Id == support::StringPool::InvalidId || Id >= SymOfName.size() ||
      SymOfName[Id] == ~0u)
    return SymRef{};
  return SymRef{SymOfName[Id]};
}

void Assembler::defineSymbol(SymRef S, SecKind Sec, u64 Off, u64 Size) {
  assert(S.isValid() && "invalid symbol");
  Symbol &Sym = Syms[S.Idx];
  if (Sym.Defined) {
    // Weak semantics: the first definition wins, later ones are ignored.
    // A second definition of a strong symbol is a module error.
    if (Sym.Link != Linkage::Weak)
      setError("duplicate definition of strong symbol '" +
               std::string(Sym.Name) + "'");
    return;
  }
  Sym.Defined = true;
  Sym.Sec = Sec;
  Sym.Off = Off;
  Sym.Size = Size;
}

void Assembler::setSymbolSize(SymRef S, u64 Size) {
  assert(S.isValid() && "invalid symbol");
  Syms[S.Idx].Size = Size;
}

Label Assembler::makeLabel() {
  Labels.push_back(LabelInfo{});
  return Label{static_cast<u32>(Labels.size() - 1)};
}

void Assembler::bindLabel(Label L) {
  assert(L.isValid() && L.Idx < Labels.size() && "invalid label");
  LabelInfo &Info = Labels[L.Idx];
  assert(!Info.Bound && "label bound twice");
  Info.Bound = true;
  Info.Off = text().size();
  for (u32 F = Info.FirstFixup; F != ~0u;) {
    const FixupInfo &Fix = Fixups[F];
    applyFixup(Fix.Off, Fix.Kind, Info.Off);
    F = Fix.Next;
  }
  Info.FirstFixup = ~0u;
}

void Assembler::addFixup(Label L, FixupKind K, u64 Off) {
  assert(L.isValid() && L.Idx < Labels.size() && "invalid label");
  LabelInfo &Info = Labels[L.Idx];
  if (Info.Bound) {
    applyFixup(Off, K, Info.Off);
    return;
  }
  Fixups.push_back(FixupInfo{Off, K, Info.FirstFixup});
  Info.FirstFixup = static_cast<u32>(Fixups.size() - 1);
}

void Assembler::applyFixup(u64 Off, FixupKind K, u64 Target) {
  Section &T = text();
  switch (K) {
  case FixupKind::Rel32: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off + 4);
    assert(isInt32(Rel) && "jump distance exceeds 32 bits");
    T.patchLE<i32>(Off, static_cast<i32>(Rel));
    return;
  }
  case FixupKind::A64Branch26: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off);
    assert((Rel & 3) == 0 && "unaligned branch target");
    i64 Words = Rel >> 2;
    assert(Words >= -(1 << 25) && Words < (1 << 25) && "branch out of range");
    u32 Inst = T.readLE<u32>(Off);
    Inst = (Inst & ~0x03FFFFFFu) | (static_cast<u32>(Words) & 0x03FFFFFFu);
    T.patchLE<u32>(Off, Inst);
    return;
  }
  case FixupKind::A64Branch19: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off);
    assert((Rel & 3) == 0 && "unaligned branch target");
    i64 Words = Rel >> 2;
    assert(Words >= -(1 << 18) && Words < (1 << 18) && "branch out of range");
    u32 Inst = T.readLE<u32>(Off);
    Inst = (Inst & ~(0x7FFFFu << 5)) |
           ((static_cast<u32>(Words) & 0x7FFFFu) << 5);
    T.patchLE<u32>(Off, Inst);
    return;
  }
  }
  TPDE_UNREACHABLE("unknown fixup kind");
}
