//===- asmx/Assembler.cpp - Symbol table and label fixups ----------------===//

#include "asmx/Assembler.h"

#include "support/FaultInjector.h"

#include <algorithm>
#include <cstring>

using namespace tpde;
using namespace tpde::asmx;

namespace {

/// Content hash for rodata pool entries (FNV-1a over size, then bytes).
u64 roContentHash(const u8 *Bytes, u64 Size) {
  u64 H = 0xcbf29ce484222325ull ^ Size;
  for (u64 I = 0; I < Size; ++I)
    H = (H ^ Bytes[I]) * 0x100000001b3ull;
  return H;
}

} // namespace

SymRef Assembler::createSymbol(std::string_view Name, Linkage L, bool IsFunc) {
  // Fault site: record the error but still create the symbol so table
  // invariants hold; the module driver picks the error up at the boundary.
  if (support::faultPoint(support::FaultSite::SymbolCreate))
    setError(support::CompileErr::FaultInjected,
             "fault injected: symbol-create");
  if (!Name.empty()) {
    support::StringPool::StrId Id = Names.intern(Name);
    if (SymOfName.size() < Names.count())
      SymOfName.resize(Names.count(), ~0u);
    u32 &Existing = SymOfName[Id];
    if (Existing != ~0u) {
      // Merge with the prior registration instead of silently shadowing
      // it; definition conflicts are caught in defineSymbol(). Only an
      // undefined external placeholder adopts the new linkage — a
      // re-registration must never relax a defined or local symbol
      // (e.g. Internal -> Weak would change ELF binding and disable the
      // duplicate-strong-definition diagnostic).
      Symbol &S = Syms[Existing];
      if (!S.Defined && S.Link == Linkage::External)
        S.Link = L;
      S.IsFunc |= IsFunc;
      return SymRef{Existing};
    }
    u32 Idx = static_cast<u32>(Syms.size());
    Existing = Idx;
    Syms.push_back(Symbol{Names.str(Id), Id, L, false, IsFunc, SecKind::Text,
                          0, 0});
    return SymRef{Idx};
  }
  // Anonymous symbols (constant pool entries) are never looked up by name.
  u32 Idx = static_cast<u32>(Syms.size());
  Syms.push_back(Symbol{{}, ~0u, L, false, IsFunc, SecKind::Text, 0, 0});
  return SymRef{Idx};
}

void Assembler::rewindForRecompile(u32 SymbolWatermark) {
  assert(SymbolWatermark <= Syms.size() && "watermark past symbol table");
  for (u32 I = SymbolWatermark; I < Syms.size(); ++I)
    if (Syms[I].NameId != ~0u)
      SymOfName[Syms[I].NameId] = ~0u;
  Syms.resize(SymbolWatermark);
  for (Symbol &S : Syms) {
    S.Defined = false;
    S.Off = 0;
    S.Size = 0;
  }
  clearEmission();
}

bool Assembler::roDedupEligible(const Assembler &Src) {
  const Section &RO = Src.Secs[static_cast<unsigned>(SecKind::ROData)];
  if (RO.Data.empty())
    return false; // nothing to dedup; the wholesale path is a no-op
  for (const Reloc &R : Src.Relocs)
    if (R.Sec == SecKind::ROData)
      return false; // offset remapping of rodata relocs is not supported
  MergeRoOrder.clear();
  for (u32 I = 0; I < Src.Syms.size(); ++I) {
    const Symbol &S = Src.Syms[I];
    if (!S.Defined || S.Sec != SecKind::ROData)
      continue;
    if (S.NameId != ~0u)
      return false; // named rodata (global data): identity matters
    if (S.Size == 0 || S.Size > 16 || (S.Size & (S.Size - 1)))
      return false; // alignment is reconstructed as the pow2 entry size
    MergeRoOrder.push_back(I);
  }
  if (MergeRoOrder.empty())
    return false; // rodata bytes with no covering symbol
  std::sort(MergeRoOrder.begin(), MergeRoOrder.end(), [&](u32 A, u32 B) {
    return Src.Syms[A].Off < Src.Syms[B].Off;
  });
  // The entries must tile the section exactly, counting the alignment
  // padding alignToBoundary(entry size) would have inserted — that is
  // the layout fpPoolConstSym() produces and the only one the piecewise
  // re-append reproduces byte for byte.
  u64 End = 0;
  for (u32 I : MergeRoOrder) {
    const Symbol &S = Src.Syms[I];
    if (S.Off != alignTo(End, S.Size))
      return false;
    End = S.Off + S.Size;
  }
  return End == RO.Data.size();
}

void Assembler::mergeFrom(const Assembler &Src) {
  // Fault site: refuse the merge outright — the destination stays in a
  // consistent (pre-merge) state and carries the structured error.
  if (support::faultPoint(support::FaultSite::SectionMerge)) {
    setError(support::CompileErr::FaultInjected,
             "fault injected: section-merge");
    return;
  }
  // The copy merge is the two-pass merge with no concurrency: reserve the
  // slice, fill it immediately, stitch. One implementation — the in-place
  // driver path cannot drift from this one.
  MergePlan Plan;
  reserveFrom(Src, Plan);
  if (!placeFrom(Src, Plan)) {
    // The serial path has no deferred-retry stage: zero the slice so the
    // (failed) module carries no uninitialized bytes and record the error.
    zeroSlice(Plan);
    setError(support::CompileErr::FaultInjected,
             "fault injected: section-place");
  }
  stitchFrom(Src, Plan);
}

void Assembler::reserveFrom(const Assembler &Src, MergePlan &Plan) {
  assert(&Src != this && "cannot merge an assembler into itself");
#ifndef NDEBUG
  // Label fixups patch text in place once the label is bound; an unbound
  // label with pending fixups means half-finished code that must not be
  // merged. (Applied fixup records linger in the pool — that is fine.)
  for (const LabelInfo &L : Src.Labels)
    assert((L.Bound || L.FirstFixup == ~0u) &&
           "mergeFrom source has pending label fixups");
#endif
  // Lay the source sections behind the destination's, padded to the
  // source's alignment so intra-section offsets keep their alignment
  // guarantees (e.g. the 16-byte function starts in .text). Empty source
  // sections contribute nothing — not even padding — so a module's merged
  // image depends only on the fragments' content, never on how many empty
  // fragments took part. Read-only data is skipped entirely: stitchFrom()
  // merges it (wholesale or symbol-by-symbol constant-pool dedup) because
  // the dedup outcome — and therefore every later fragment's rodata base —
  // depends on the bytes earlier merges appended.
  for (unsigned I = 0; I < NumSections; ++I) {
    Section &D = Secs[I];
    const Section &S = Src.Secs[I];
    Plan.Bytes[I] = 0;
    if (static_cast<SecKind>(I) == SecKind::BSS) {
      Plan.Base[I] = 0;
      if (S.BssSize) {
        D.BssSize = alignTo(D.BssSize, S.Align);
        Plan.Base[I] = D.BssSize;
        D.BssSize += S.BssSize;
        Plan.Bytes[I] = S.BssSize;
        if (S.Align > D.Align)
          D.Align = S.Align;
      }
      continue;
    }
    Plan.Base[I] = D.size();
    if (S.Data.empty() || static_cast<SecKind>(I) == SecKind::ROData)
      continue;
    D.alignToBoundary(S.Align);
    Plan.Base[I] = D.size();
    Plan.Bytes[I] = S.Data.size();
    D.Data.extendUninit(S.Data.size());
  }
}

bool Assembler::placeFrom(const Assembler &Src, const MergePlan &Plan) {
  if (support::faultPoint(support::FaultSite::SectionPlace))
    return false;
  for (unsigned I = 0; I < NumSections; ++I) {
    SecKind K = static_cast<SecKind>(I);
    if (K == SecKind::BSS || K == SecKind::ROData)
      continue;
    const Section &S = Src.Secs[I];
    if (S.Data.empty())
      continue;
    assert(Plan.Bytes[I] == S.Data.size() &&
           "fragment changed between reserveFrom and placeFrom");
    assert(Plan.Base[I] + Plan.Bytes[I] <= Secs[I].size() &&
           "placement slice out of bounds");
    std::memcpy(Secs[I].Data.data() + Plan.Base[I], S.Data.data(),
                S.Data.size());
  }
  return true;
}

void Assembler::zeroSlice(const MergePlan &Plan) {
  for (unsigned I = 0; I < NumSections; ++I) {
    SecKind K = static_cast<SecKind>(I);
    if (K == SecKind::BSS || K == SecKind::ROData || !Plan.Bytes[I])
      continue;
    assert(Plan.Base[I] + Plan.Bytes[I] <= Secs[I].size() &&
           "placement slice out of bounds");
    std::memset(Secs[I].Data.data() + Plan.Base[I], 0, Plan.Bytes[I]);
  }
}

void Assembler::stitchFrom(const Assembler &Src, const MergePlan &Plan) {
  u64 Base[NumSections];
  for (unsigned I = 0; I < NumSections; ++I)
    Base[I] = Plan.Base[I];

  // Read-only data was deferred by reserveFrom(); merge it now. An
  // eligible section is merged symbol-by-symbol below instead
  // (constant-pool dedup).
  const bool RoPiecewise = roDedupEligible(Src);
  {
    const unsigned RoI = static_cast<unsigned>(SecKind::ROData);
    Section &D = Secs[RoI];
    const Section &S = Src.Secs[RoI];
    Base[RoI] = D.size();
    if (!S.Data.empty() && !RoPiecewise) {
      D.alignToBoundary(S.Align);
      Base[RoI] = D.size();
      D.append(S.Data.data(), S.Data.size());
    }
  }

  // Constant-pool dedup: append each anonymous rodata entry individually
  // (in source offset order, with its own alignment), unless this module
  // already holds an entry with identical bytes — then bind the source
  // symbol to the existing one. RoDedupSyms accumulates across the merges
  // of one module, so shards contribute each distinct constant once and
  // the merged pool matches a serial compile's.
  MergeRoSym.assign(Src.Syms.size(), ~0u);
  if (RoPiecewise) {
    Section &D = Secs[static_cast<unsigned>(SecKind::ROData)];
    const Section &SRO = Src.Secs[static_cast<unsigned>(SecKind::ROData)];
    for (u32 I : MergeRoOrder) {
      const Symbol &S = Src.Syms[I];
      const u8 *Bytes = SRO.Data.data() + S.Off;
      u64 H = roContentHash(Bytes, S.Size);
      if (u32 *Known = RoDedupSyms.find(H)) {
        const Symbol &K = Syms[*Known];
        if (K.Size == S.Size &&
            std::memcmp(D.Data.data() + K.Off, Bytes, S.Size) == 0) {
          MergeRoSym[I] = *Known;
          continue;
        }
        // Hash collision with different bytes: append without dedup.
      }
      D.alignToBoundary(S.Size);
      u64 Off = D.size();
      D.append(Bytes, S.Size);
      SymRef R = createSymbol({}, S.Link, S.IsFunc);
      defineSymbol(R, SecKind::ROData, Off, S.Size);
      RoDedupSyms.insert(H, R.Idx);
      MergeRoSym[I] = R.Idx;
    }
  }

  // Symbols: resolve named ones against the destination table, append
  // anonymous ones. createSymbol() upgrades an undefined external
  // placeholder to the stronger registration; defineSymbol() diagnoses
  // duplicate strong definitions and keeps the first weak one.
  // Undefined symbols nothing in the source references are dropped, like
  // a linker would: shard fragments declare the whole module's symbol
  // table, and copying every declaration into every fragment would make
  // the final merge quadratic in module size for no information gain.
  MergeRefd.assign(Src.Syms.size(), 0);
  for (const Reloc &R : Src.Relocs)
    MergeRefd[R.Sym.Idx] = 1;
  MergeSymMap.clear();
  MergeSymMap.reserve(Src.Syms.size());
  for (size_t I = 0; I < Src.Syms.size(); ++I) {
    const Symbol &S = Src.Syms[I];
    if (MergeRoSym[I] != ~0u) {
      // Rodata pool entry: already appended (or deduplicated) above.
      MergeSymMap.push_back(MergeRoSym[I]);
      continue;
    }
    if (!S.Defined && !MergeRefd[I]) {
      MergeSymMap.push_back(~0u);
      continue;
    }
    SymRef R = createSymbol(S.Name, S.Link, S.IsFunc);
    if (S.Defined)
      defineSymbol(R, S.Sec, Base[static_cast<unsigned>(S.Sec)] + S.Off,
                   S.Size);
    MergeSymMap.push_back(R.Idx);
  }

  for (const Reloc &R : Src.Relocs) {
    assert(MergeSymMap[R.Sym.Idx] != ~0u && "referenced symbol not merged");
    Relocs.push_back(Reloc{R.Sec, Base[static_cast<unsigned>(R.Sec)] + R.Off,
                           R.Kind, SymRef{MergeSymMap[R.Sym.Idx]}, R.Addend});
  }

  if (Src.hasError())
    setError(Src.ErrCode, std::string(Src.Err));
}

SymRef Assembler::getOrCreateSymbol(std::string_view Name) {
  // Single-probe path: createSymbol() interns once and indexes the
  // id-keyed symbol map directly; a lookup-then-create pair would hash
  // the name twice.
  return createSymbol(Name, Linkage::External, /*IsFunc=*/false);
}

SymRef Assembler::findSymbol(std::string_view Name) const {
  support::StringPool::StrId Id = Names.lookup(Name);
  if (Id == support::StringPool::InvalidId || Id >= SymOfName.size() ||
      SymOfName[Id] == ~0u)
    return SymRef{};
  return SymRef{SymOfName[Id]};
}

void Assembler::defineSymbol(SymRef S, SecKind Sec, u64 Off, u64 Size) {
  assert(S.isValid() && "invalid symbol");
  Symbol &Sym = Syms[S.Idx];
  if (Sym.Defined) {
    // Weak semantics: the first definition wins, later ones are ignored.
    // A second definition of a strong symbol is a module error.
    if (Sym.Link != Linkage::Weak)
      setError("duplicate definition of strong symbol '" +
               std::string(Sym.Name) + "'");
    return;
  }
  Sym.Defined = true;
  Sym.Sec = Sec;
  Sym.Off = Off;
  Sym.Size = Size;
}

void Assembler::setSymbolSize(SymRef S, u64 Size) {
  assert(S.isValid() && "invalid symbol");
  Syms[S.Idx].Size = Size;
}

Label Assembler::makeLabel() {
  Labels.push_back(LabelInfo{});
  return Label{static_cast<u32>(Labels.size() - 1)};
}

void Assembler::bindLabel(Label L) {
  assert(L.isValid() && L.Idx < Labels.size() && "invalid label");
  LabelInfo &Info = Labels[L.Idx];
  assert(!Info.Bound && "label bound twice");
  Info.Bound = true;
  Info.Off = text().size();
  for (u32 F = Info.FirstFixup; F != ~0u;) {
    const FixupInfo &Fix = Fixups[F];
    applyFixup(Fix.Off, Fix.Kind, Info.Off);
    F = Fix.Next;
  }
  Info.FirstFixup = ~0u;
}

void Assembler::addFixup(Label L, FixupKind K, u64 Off) {
  assert(L.isValid() && L.Idx < Labels.size() && "invalid label");
  LabelInfo &Info = Labels[L.Idx];
  if (Info.Bound) {
    applyFixup(Off, K, Info.Off);
    return;
  }
  Fixups.push_back(FixupInfo{Off, K, Info.FirstFixup});
  Info.FirstFixup = static_cast<u32>(Fixups.size() - 1);
}

void Assembler::applyFixup(u64 Off, FixupKind K, u64 Target) {
  Section &T = text();
  // Every fixup kind patches exactly 4 bytes. An out-of-range offset is an
  // assertion failure in debug builds; release builds take the checked
  // error path instead of writing out of bounds (see hasError()).
  if (Off + 4 > T.size()) {
    assert(false && "fixup patch out of bounds");
    setError(support::CompileErr::AssemblerError,
             "fixup patch out of bounds: offset " + std::to_string(Off) +
                 " + 4 > text size " + std::to_string(T.size()));
    return;
  }
  switch (K) {
  case FixupKind::Rel32: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off + 4);
    assert(isInt32(Rel) && "jump distance exceeds 32 bits");
    T.patchLE<i32>(Off, static_cast<i32>(Rel));
    return;
  }
  case FixupKind::A64Branch26: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off);
    assert((Rel & 3) == 0 && "unaligned branch target");
    i64 Words = Rel >> 2;
    assert(Words >= -(1 << 25) && Words < (1 << 25) && "branch out of range");
    u32 Inst = T.readLE<u32>(Off);
    Inst = (Inst & ~0x03FFFFFFu) | (static_cast<u32>(Words) & 0x03FFFFFFu);
    T.patchLE<u32>(Off, Inst);
    return;
  }
  case FixupKind::A64Branch19: {
    i64 Rel = static_cast<i64>(Target) - static_cast<i64>(Off);
    assert((Rel & 3) == 0 && "unaligned branch target");
    i64 Words = Rel >> 2;
    assert(Words >= -(1 << 18) && Words < (1 << 18) && "branch out of range");
    u32 Inst = T.readLE<u32>(Off);
    Inst = (Inst & ~(0x7FFFFu << 5)) |
           ((static_cast<u32>(Words) & 0x7FFFFu) << 5);
    T.patchLE<u32>(Off, Inst);
    return;
  }
  }
  TPDE_UNREACHABLE("unknown fixup kind");
}
