//===- baseline/RegAlloc.cpp - Fast and linear-scan register allocators ---===//
///
/// Pass 2 of the baseline back-end, in two variants mirroring the paper's
/// comparison targets: a local "RegAllocFast"-style allocator (the -O0
/// pipeline) that keeps values in registers only within a block and spills
/// everything at block boundaries, and a global linear-scan allocator over
/// live intervals (the -O1 pipeline) preceded by an iterative MIR liveness
/// analysis. Both rewrite the MIR in place: vreg operands become physical
/// register ids or frame-slot markers.
///
//===----------------------------------------------------------------------===//

#include "baseline/Internal.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace tpde;
using namespace tpde::baseline;

namespace {

/// Operand roles of an MInst for the allocators.
struct OpDesc {
  u32 *Uses[3] = {nullptr, nullptr, nullptr};
  u32 *Def = nullptr;
  bool DefTiedToUse0 = false;
  /// Fields that may become frame-slot markers (handled by the emitter).
  u32 *MarkerUses[3] = {nullptr, nullptr, nullptr};
  u32 *MarkerDefs[2] = {nullptr, nullptr};
};

OpDesc describe(MInst &MI) {
  OpDesc D;
  auto U = [&](u32 &F) {
    for (auto *&S : D.Uses)
      if (!S) {
        S = &F;
        return;
      }
  };
  auto MU = [&](u32 &F) {
    for (auto *&S : D.MarkerUses)
      if (!S) {
        S = &F;
        return;
      }
  };
  auto MD = [&](u32 &F) {
    for (auto *&S : D.MarkerDefs)
      if (!S) {
        S = &F;
        return;
      }
  };
  switch (MI.Op) {
  case MOp::Nop:
  case MOp::Jmp:
  case MOp::Jcc:
  case MOp::Unreachable:
    break;
  case MOp::MovRR:
  case MOp::FpMov:
  case MOp::Movzx:
  case MOp::Movsx:
  case MOp::CvtSiToFp:
  case MOp::CvtFpToSi:
  case MOp::CvtFpToFp:
  case MOp::MovdToFp:
  case MOp::MovdFromFp:
    U(MI.SrcA);
    D.Def = &MI.Dst;
    break;
  case MOp::MovImm:
  case MOp::MovSym:
  case MOp::FrameAddr:
  case MOp::FpConst:
  case MOp::SetCC:
    D.Def = &MI.Dst;
    break;
  case MOp::Alu:
  case MOp::Mul:
  case MOp::FpAlu:
  case MOp::CMovCC:
    U(MI.SrcA);
    U(MI.SrcB);
    D.Def = &MI.Dst;
    D.DefTiedToUse0 = true;
    break;
  case MOp::AluImm:
  case MOp::ShiftImm:
  case MOp::Neg:
  case MOp::Not:
    U(MI.SrcA);
    D.Def = &MI.Dst;
    D.DefTiedToUse0 = true;
    break;
  case MOp::Shift:
    U(MI.SrcA);
    MU(MI.SrcB); // moved into RCX by the emitter
    D.Def = &MI.Dst;
    D.DefTiedToUse0 = true;
    break;
  case MOp::Cmp:
  case MOp::Ucomis:
    U(MI.SrcA);
    U(MI.SrcB);
    break;
  case MOp::CmpImm:
  case MOp::TestImm:
    U(MI.SrcA);
    break;
  case MOp::Load:
  case MOp::LoadSx:
  case MOp::FpLoad:
    U(MI.SrcA);
    D.Def = &MI.Dst;
    break;
  case MOp::Store:
  case MOp::FpStore:
    U(MI.SrcA);
    U(MI.SrcB);
    break;
  case MOp::StoreImm8B:
    U(MI.SrcA);
    break;
  case MOp::Div:
  case MOp::MulWide:
    MU(MI.SrcA);
    MU(MI.SrcB);
    MD(MI.Dst);
    break;
  case MOp::GetArg:
    MD(MI.Dst);
    break;
  case MOp::CallSetArg:
    MU(MI.SrcA);
    break;
  case MOp::Call:
    if (MI.Dst != ~0u)
      MD(MI.Dst);
    if (MI.SrcB != ~0u)
      MD(MI.SrcB);
    break;
  case MOp::Ret:
    if (MI.SrcA != ~0u)
      MU(MI.SrcA);
    if (MI.SrcB != ~0u)
      MU(MI.SrcB);
    break;
  case MOp::SpillLd:
  case MOp::SpillSt:
    TPDE_UNREACHABLE("spill code before register allocation");
  }
  return D;
}

bool isTerminator(MOp Op) {
  return Op == MOp::Jmp || Op == MOp::Jcc || Op == MOp::Ret ||
         Op == MOp::Unreachable;
}

u8 bankOfPhys(u8 Phys) { return Phys >> 4; }

// =======================================================================
// Fast local allocator (-O0)
// =======================================================================

class FastRA {
public:
  FastRA(MFunc &F, RAResult &Out) : F(F), Out(Out) {}

  void run() {
    Out.PhysReg.assign(F.NumVRegs, 0xFF);
    Loc.assign(F.NumVRegs, 0xFF);
    for (auto &B : F.Blocks) {
      resetState();
      std::vector<MInst> NewInsts;
      NewInsts.reserve(B.Insts.size() + 8);
      for (MInst MI : B.Insts) {
        // Values only live in registers within a block: flush at block
        // exits and around calls (flushAll is idempotent; the spill
        // stores it emits are plain moves and preserve flags).
        if (MI.Op == MOp::CallSetArg || MI.Op == MOp::Call ||
            isTerminator(MI.Op))
          flushAll(NewInsts);
        rewrite(MI, NewInsts);
        NewInsts.push_back(MI);
      }
      B.Insts = std::move(NewInsts);
    }
  }

private:
  MFunc &F;
  RAResult &Out;
  std::vector<u8> Loc;       ///< vreg -> phys (0xFF none); valid per block.
  u32 OwnerOf[32];           ///< phys -> vreg.
  bool Dirty[32] = {};
  u32 UsedInBlock[2] = {};   ///< bank masks of currently used regs.
  u8 Clock[2] = {};
  std::vector<u32> BlockVRegs; ///< vregs with Loc set (for cheap reset).

  void resetState() {
    for (u32 V : BlockVRegs)
      Loc[V] = 0xFF;
    BlockVRegs.clear();
    UsedInBlock[0] = UsedInBlock[1] = 0;
    for (auto &O : OwnerOf)
      O = ~0u;
  }

  static u8 physId(u8 Bank, u8 Idx) { return Bank * 16 + Idx; }

  void spillStore(std::vector<MInst> &Ins, u8 Phys) {
    u32 V = OwnerOf[Phys & 31];
    if (Dirty[Phys & 31]) {
      MInst St;
      St.Op = MOp::SpillSt;
      St.SrcA = Phys;
      St.Imm = V;
      St.Sz = bankOfPhys(Phys);
      Ins.push_back(St);
      Dirty[Phys & 31] = false;
    }
  }

  void dropReg(u8 Phys) {
    u32 V = OwnerOf[Phys & 31];
    if (V != ~0u)
      Loc[V] = 0xFF;
    OwnerOf[Phys & 31] = ~0u;
    UsedInBlock[bankOfPhys(Phys)] &= ~(1u << (Phys & 15));
  }

  void flushAll(std::vector<MInst> &Ins) {
    for (u8 Bank = 0; Bank < 2; ++Bank) {
      for (u32 M = UsedInBlock[Bank]; M;) {
        u8 Idx = static_cast<u8>(countTrailingZeros(M));
        M &= M - 1;
        u8 P = physId(Bank, Idx);
        spillStore(Ins, P);
        dropReg(P);
      }
    }
  }

  u8 allocPhys(u8 Bank, u32 Avoid, std::vector<MInst> &Ins) {
    u32 Pool = Bank == 0 ? GPPool : FPPool;
    u32 Free = Pool & ~UsedInBlock[Bank] & ~Avoid;
    u8 Idx;
    if (Free) {
      Idx = static_cast<u8>(countTrailingZeros(Free));
    } else {
      u32 Cands = Pool & UsedInBlock[Bank] & ~Avoid;
      assert(Cands && "no evictable register");
      u32 Rot = Cands & ~((1u << Clock[Bank]) - 1);
      Idx = static_cast<u8>(countTrailingZeros(Rot ? Rot : Cands));
      Clock[Bank] = (Idx + 1) & 15;
      u8 P = physId(Bank, Idx);
      spillStore(Ins, P);
      dropReg(P);
    }
    u8 P = physId(Bank, Idx);
    UsedInBlock[Bank] |= 1u << Idx;
    if (Bank == 0 && (GPCalleeSaved >> Idx) & 1)
      Out.UsedCalleeSaved |= 1u << Idx;
    return P;
  }

  u8 ensureReg(u32 V, u32 Avoid, std::vector<MInst> &Ins) {
    if (Loc[V] != 0xFF)
      return Loc[V];
    u8 Bank = F.VRegBank[V];
    u8 P = allocPhys(Bank, Avoid, Ins);
    MInst Ld;
    Ld.Op = MOp::SpillLd;
    Ld.Dst = P;
    Ld.Imm = V;
    Ld.Sz = Bank;
    Ins.push_back(Ld);
    bind(V, P, /*IsDirty=*/false);
    return P;
  }

  void bind(u32 V, u8 P, bool IsDirty) {
    OwnerOf[P & 31] = V;
    Loc[V] = P;
    Dirty[P & 31] = IsDirty;
    BlockVRegs.push_back(V);
  }

  void rewrite(MInst &MI, std::vector<MInst> &Ins) {
    OpDesc D = describe(MI);
    u32 Avoid[2] = {0, 0};
    auto avoidReg = [&](u8 P) { Avoid[bankOfPhys(P)] |= 1u << (P & 15); };

    // Plain uses first.
    u8 UsePhys[3];
    for (int I = 0; I < 3; ++I) {
      if (!D.Uses[I])
        continue;
      u32 V = *D.Uses[I];
      u8 P = ensureReg(V, Avoid[F.VRegBank[V]], Ins);
      UsePhys[I] = P;
      avoidReg(P);
    }
    // Marker uses: current register if available, else the frame slot.
    for (auto *MU : D.MarkerUses) {
      if (!MU)
        continue;
      u32 V = *MU;
      if (Loc[V] != 0xFF) {
        spillStore(Ins, Loc[V]); // emitter may clobber scratch; keep slot hot
        *MU = Loc[V];
        avoidReg(Loc[V]);
      } else {
        *MU = SlotBit | V;
        Out.NumSpilled++;
      }
    }
    // Definition.
    if (D.Def) {
      u32 V = *D.Def;
      u8 P;
      if (D.DefTiedToUse0) {
        P = UsePhys[0];
        // The tied register now holds the def vreg (same vreg by
        // construction in ISel).
        Dirty[P & 31] = true;
      } else {
        if (Loc[V] != 0xFF) {
          P = Loc[V];
          Dirty[P & 31] = true;
        } else {
          P = allocPhys(F.VRegBank[V], Avoid[F.VRegBank[V]], Ins);
          bind(V, P, /*IsDirty=*/true);
        }
      }
      *D.Def = P;
    }
    // Marker defs (GetArg / Call results / Div): allocate a register and
    // let the emitter move the fixed source into it.
    for (auto *MD : D.MarkerDefs) {
      if (!MD)
        continue;
      u32 V = *MD;
      u8 P;
      if (Loc[V] != 0xFF) {
        P = Loc[V];
        Dirty[P & 31] = true;
      } else {
        P = allocPhys(F.VRegBank[V], Avoid[F.VRegBank[V]], Ins);
        bind(V, P, /*IsDirty=*/true);
      }
      avoidReg(P);
      *MD = P;
    }
    // Rewrite the remaining use fields with their physical ids.
    for (int I = 0; I < 3; ++I)
      if (D.Uses[I])
        *D.Uses[I] = UsePhys[I];
  }
};

// =======================================================================
// Global linear scan (-O1)
// =======================================================================

class LinearScan {
public:
  LinearScan(MFunc &F, RAResult &Out) : F(F), Out(Out) {}

  void run() {
    number();
    liveness();
    buildIntervals();
    assign();
    if (getenv("TPDE_LS_VERIFY")) // NOLINT(concurrency-mt-unsafe) read pre-threads
      verifyAssignment();
    rewrite();
  }

private:
  MFunc &F;
  RAResult &Out;
  std::vector<u32> BlockStart, BlockEnd;
  std::vector<u32> CallPositions;
  u32 NumPos = 0;

  struct Interval {
    u32 V;
    u32 Start = ~0u;
    u32 End = 0;
    bool CrossesCall = false;
  };
  std::vector<Interval> Ivs;
  std::vector<std::vector<u64>> LiveIn, LiveOut, UseSet, DefSet;

  void number() {
    u32 Pos = 0;
    for (auto &B : F.Blocks) {
      BlockStart.push_back(Pos);
      for (auto &MI : B.Insts) {
        if (MI.Op == MOp::Call)
          CallPositions.push_back(Pos);
        ++Pos;
      }
      BlockEnd.push_back(Pos);
      ++Pos; // virtual boundary slot
    }
    NumPos = Pos;
  }

  static void setBit(std::vector<u64> &S, u32 I) {
    S[I >> 6] |= u64(1) << (I & 63);
  }
  static bool getBit(const std::vector<u64> &S, u32 I) {
    return (S[I >> 6] >> (I & 63)) & 1;
  }

  void liveness() {
    u32 Words = (F.NumVRegs + 63) / 64;
    u32 NB = static_cast<u32>(F.Blocks.size());
    LiveIn.assign(NB, std::vector<u64>(Words, 0));
    LiveOut.assign(NB, std::vector<u64>(Words, 0));
    UseSet.assign(NB, std::vector<u64>(Words, 0));
    DefSet.assign(NB, std::vector<u64>(Words, 0));
    for (u32 B = 0; B < NB; ++B) {
      for (auto MI : F.Blocks[B].Insts) {
        OpDesc D = describe(MI);
        auto use = [&](u32 V) {
          if (!getBit(DefSet[B], V))
            setBit(UseSet[B], V);
        };
        for (auto *U : D.Uses)
          if (U)
            use(*U);
        for (auto *U : D.MarkerUses)
          if (U)
            use(*U);
        if (D.Def)
          setBit(DefSet[B], *D.Def);
        for (auto *MD : D.MarkerDefs)
          if (MD)
            setBit(DefSet[B], *MD);
      }
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (u32 B = NB; B-- > 0;) {
        // out = union of succ ins; in = use | (out & ~def)
        std::vector<u64> NewOut(LiveOut[B].size(), 0);
        for (u32 S : F.Blocks[B].Succs)
          for (size_t W = 0; W < NewOut.size(); ++W)
            NewOut[W] |= LiveIn[S][W];
        bool OutCh = NewOut != LiveOut[B];
        if (OutCh)
          LiveOut[B] = NewOut;
        std::vector<u64> NewIn(NewOut.size());
        for (size_t W = 0; W < NewIn.size(); ++W)
          NewIn[W] = UseSet[B][W] | (NewOut[W] & ~DefSet[B][W]);
        if (NewIn != LiveIn[B]) {
          LiveIn[B] = std::move(NewIn);
          Changed = true;
        } else if (OutCh) {
          Changed = true;
        }
      }
    }
  }

  void buildIntervals() {
    Ivs.assign(F.NumVRegs, Interval{});
    for (u32 V = 0; V < F.NumVRegs; ++V)
      Ivs[V].V = V;
    auto extend = [&](u32 V, u32 Pos) {
      Ivs[V].Start = Ivs[V].Start == ~0u ? Pos : std::min(Ivs[V].Start, Pos);
      Ivs[V].End = std::max(Ivs[V].End, Pos);
    };
    u32 Pos = 0;
    std::vector<u32> PendingArgSrcs;
    for (u32 B = 0; B < F.Blocks.size(); ++B) {
      for (auto MI : F.Blocks[B].Insts) {
        OpDesc D = describe(MI);
        for (auto *U : D.Uses)
          if (U)
            extend(*U, Pos);
        for (auto *U : D.MarkerUses)
          if (U)
            extend(*U, Pos);
        if (D.Def)
          extend(*D.Def, Pos);
        for (auto *MD : D.MarkerDefs)
          if (MD)
            extend(*MD, Pos);
        // CallSetArg only stages the argument; the emitter reads the
        // source at the Call itself, so the source must live until then.
        if (MI.Op == MOp::CallSetArg)
          PendingArgSrcs.push_back(MI.SrcA);
        if (MI.Op == MOp::Call) {
          for (u32 V : PendingArgSrcs)
            extend(V, Pos);
          PendingArgSrcs.clear();
        }
        ++Pos;
      }
      ++Pos;
      for (u32 V = 0; V < F.NumVRegs; ++V) {
        if (getBit(LiveIn[B], V))
          extend(V, BlockStart[B]);
        if (getBit(LiveOut[B], V))
          extend(V, BlockEnd[B]);
      }
    }
    bool AllCross = getenv("TPDE_LS_ALL_CROSS") != nullptr; // NOLINT(concurrency-mt-unsafe)
    for (auto &Iv : Ivs) {
      if (Iv.Start == ~0u)
        continue;
      if (AllCross)
        Iv.CrossesCall = true;
      for (u32 C : CallPositions)
        if (Iv.Start < C && C < Iv.End)
          Iv.CrossesCall = true;
    }
  }

  void verifyAssignment() {
    for (u32 A = 0; A < F.NumVRegs; ++A) {
      if (Out.PhysReg[A] == 0xFF || Ivs[A].Start == ~0u) continue;
      for (u32 B = A + 1; B < F.NumVRegs; ++B) {
        if (Out.PhysReg[B] != Out.PhysReg[A] || Ivs[B].Start == ~0u) continue;
        if (Ivs[A].Start < Ivs[B].End && Ivs[B].Start < Ivs[A].End)
          std::fprintf(stderr,
                       "OVERLAP v%u[%u,%u] v%u[%u,%u] phys=%u\n", A,
                       Ivs[A].Start, Ivs[A].End, B, Ivs[B].Start, Ivs[B].End,
                       Out.PhysReg[A]);
      }
    }
  }

  void assign() {
    Out.PhysReg.assign(F.NumVRegs, 0xFF);
    if (getenv("TPDE_LS_SPILL_ALL")) { Out.NumSpilled = F.NumVRegs; return; } // NOLINT(concurrency-mt-unsafe)
    std::vector<Interval *> Order;
    for (auto &Iv : Ivs)
      if (Iv.Start != ~0u)
        Order.push_back(&Iv);
    std::sort(Order.begin(), Order.end(),
              [](auto *A, auto *B) { return A->Start < B->Start; });
    std::vector<Interval *> Active;
    u32 FreeMask[2] = {GPPool, FPPool};
    auto expire = [&](u32 Pos) {
      for (size_t I = 0; I < Active.size();) {
        if (Active[I]->End < Pos) {
          u8 P = Out.PhysReg[Active[I]->V];
          FreeMask[bankOfPhys(P)] |= 1u << (P & 15);
          Active[I] = Active.back();
          Active.pop_back();
        } else {
          ++I;
        }
      }
    };
    for (Interval *Iv : Order) {
      expire(Iv->Start);
      u8 Bank = F.VRegBank[Iv->V];
      u32 Pool;
      if (Bank == 0)
        Pool = Iv->CrossesCall ? (FreeMask[0] & GPCalleeSaved)
                               : FreeMask[0];
      else
        Pool = Iv->CrossesCall ? 0 : FreeMask[1];
      if (!Pool && Bank == 0 && !Iv->CrossesCall)
        Pool = FreeMask[0];
      if (Pool) {
        u8 Idx = static_cast<u8>(countTrailingZeros(Pool));
        Out.PhysReg[Iv->V] = Bank * 16 + Idx;
        FreeMask[Bank] &= ~(1u << Idx);
        if (Bank == 0 && (GPCalleeSaved >> Idx) & 1)
          Out.UsedCalleeSaved |= 1u << Idx;
        Active.push_back(Iv);
        continue;
      }
      // Try to steal from the active interval with the furthest end that
      // is compatible; otherwise spill this interval.
      Interval *Victim = nullptr;
      for (Interval *A : Active) {
        if (F.VRegBank[A->V] != Bank)
          continue;
        u8 P = Out.PhysReg[A->V];
        if (Iv->CrossesCall &&
            !(Bank == 0 && ((GPCalleeSaved >> (P & 15)) & 1)))
          continue;
        if (!Victim || A->End > Victim->End)
          Victim = A;
      }
      if (Victim && Victim->End > Iv->End) {
        Out.PhysReg[Iv->V] = Out.PhysReg[Victim->V];
        Out.PhysReg[Victim->V] = 0xFF;
        ++Out.NumSpilled;
        Active.erase(std::find(Active.begin(), Active.end(), Victim));
        Active.push_back(Iv);
      } else {
        Out.PhysReg[Iv->V] = 0xFF;
        ++Out.NumSpilled;
      }
    }
  }

  void rewrite() {
    for (auto &B : F.Blocks) {
      std::vector<MInst> NewInsts;
      NewInsts.reserve(B.Insts.size());
      for (MInst MI : B.Insts) {
        OpDesc D = describe(MI);
        // Reserved temps for spilled operands.
        u8 NextGP = 0;                 // rax, then rdx
        static constexpr u8 GPTmp[2] = {0, 2};
        u8 NextFP = 0;
        static constexpr u8 FPTmp[2] = {16 + 14, 16 + 15};
        auto tempFor = [&](u8 Bank) -> u8 {
          return Bank == 0 ? GPTmp[NextGP++] : FPTmp[NextFP++];
        };
        u32 DefV = D.Def ? *D.Def : ~0u;
        for (auto *U : D.Uses) {
          if (!U)
            continue;
          u32 V = *U;
          u8 P = Out.PhysReg[V];
          if (P != 0xFF) {
            *U = P;
            continue;
          }
          u8 T = tempFor(F.VRegBank[V]);
          MInst Ld;
          Ld.Op = MOp::SpillLd;
          Ld.Dst = T;
          Ld.Imm = V;
          Ld.Sz = F.VRegBank[V];
          NewInsts.push_back(Ld);
          *U = T;
        }
        for (auto *MU : D.MarkerUses) {
          if (!MU)
            continue;
          u8 P = Out.PhysReg[*MU];
          if (P != 0xFF)
            *MU = P;
          else
            *MU = SlotBit | *MU;
        }
        bool DefSpilled = false;
        u32 DefVreg = ~0u;
        if (D.Def) {
          u8 P = Out.PhysReg[DefV];
          if (P != 0xFF) {
            *D.Def = P;
          } else {
            DefSpilled = true;
            DefVreg = DefV;
            // Tied: the def shares use0's temp; untied: fresh temp.
            u8 T;
            if (D.DefTiedToUse0) {
              T = static_cast<u8>(*D.Uses[0]);
            } else {
              T = tempFor(F.VRegBank[DefV]);
            }
            *D.Def = T;
          }
        }
        for (auto *MD : D.MarkerDefs) {
          if (!MD)
            continue;
          u8 P = Out.PhysReg[*MD];
          *MD = P != 0xFF ? P : (SlotBit | *MD);
        }
        NewInsts.push_back(MI);
        if (DefSpilled) {
          MInst St;
          St.Op = MOp::SpillSt;
          St.SrcA = NewInsts.back().Dst;
          St.Imm = DefVreg;
          St.Sz = F.VRegBank[DefVreg];
          NewInsts.push_back(St);
        }
      }
      B.Insts = std::move(NewInsts);
    }
  }
};

} // namespace

void tpde::baseline::runFastRegAlloc(MFunc &F, RAResult &Out) {
  FastRA(F, Out).run();
}

void tpde::baseline::runLinearScan(MFunc &F, RAResult &Out) {
  LinearScan(F, Out).run();
}
