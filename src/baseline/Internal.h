//===- baseline/Internal.h - Baseline back-end internal passes --*- C++ -*-===//
///
/// \file
/// Pass interfaces shared between the baseline back-end's translation
/// units: instruction selection, the two register allocators, and the
/// encoder. Not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_BASELINE_INTERNAL_H
#define TPDE_BASELINE_INTERNAL_H

#include "baseline/Baseline.h"
#include "baseline/MIR.h"
#include "tir/TIR.h"

namespace tpde::baseline {

/// Allocatable pools (RAX/RDX/RCX and RSP/RBP are reserved; XMM14/15 are
/// FP spill temps).
constexpr u32 GPPool = (1u << 3) | (1u << 6) | (1u << 7) | (1u << 8) |
                       (1u << 9) | (1u << 10) | (1u << 11) | (1u << 12) |
                       (1u << 13) | (1u << 14) | (1u << 15);
constexpr u32 GPCalleeSaved =
    (1u << 3) | (1u << 12) | (1u << 13) | (1u << 14) | (1u << 15);
constexpr u32 FPPool = 0x3FFF; // xmm0-13

/// Pass 1: TIR -> MIR.
bool selectInstructions(const tir::Module &M, const tir::Function &F,
                        MFunc &Out,
                        const std::vector<asmx::SymRef> &FuncSyms,
                        const std::vector<asmx::SymRef> &GlobalSyms);

/// Pass 2a (-O0): local register allocation, RegAllocFast-style. Rewrites
/// the MIR in place (vreg fields become physical ids / slot markers).
void runFastRegAlloc(MFunc &F, RAResult &Out);

/// Pass 2b (-O1): MIR liveness + global linear-scan allocation. Rewrites
/// the MIR in place.
void runLinearScan(MFunc &F, RAResult &Out);

/// Pass 3: encode the physical MIR into machine code.
void emitFunction(const MFunc &F, const RAResult &RA, asmx::Assembler &Asm);

} // namespace tpde::baseline

#endif // TPDE_BASELINE_INTERNAL_H
