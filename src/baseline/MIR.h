//===- baseline/MIR.h - Machine IR for the multi-pass baseline --*- C++ -*-===//
///
/// \file
/// The baseline back-end stands in for LLVM's -O0/-O1 code generation
/// pipelines in the paper's evaluation (§5.2). Architecturally it does
/// exactly what the paper says makes LLVM slow ("a multitude of IR
/// conversions and rewrites on data structures", §5.3): it materializes a
/// full machine IR, then runs separate passes over it — instruction
/// selection, (for -O1) liveness + global linear-scan register allocation,
/// register rewriting with spill code, and finally encoding.
///
/// Virtual registers are dense u32 ids. RAX/RDX/RCX are reserved as
/// scratch (division, shifts, spill reloads) and never allocated.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_BASELINE_MIR_H
#define TPDE_BASELINE_MIR_H

#include "asmx/Assembler.h"
#include "x64/Encoder.h"

#include <vector>

namespace tpde::baseline {

enum class MOp : u8 {
  Nop,
  MovRR,    ///< Dst <- SrcA
  MovImm,   ///< Dst <- Imm (64-bit)
  MovSym,   ///< Dst <- &Sym (RIP-relative lea)
  FrameAddr,///< Dst <- rbp + frame offset of stack var Imm
  Alu,      ///< Dst(=SrcA) <- SrcA op SrcB (two-address; Sub = SubCC in CC)
  AluImm,   ///< Dst(=SrcA) <- SrcA op Imm
  Mul,      ///< Dst(=SrcA) <- SrcA * SrcB
  Div,      ///< Dst <- SrcA / SrcB (Imm bit0: signed, bit1: remainder)
  Shift,    ///< Dst(=SrcA) <- SrcA shift-by SrcB (ShiftOp in CC field)
  ShiftImm, ///< Dst(=SrcA) <- SrcA shift-by Imm
  Neg, Not,
  Movzx,    ///< Dst <- zext(SrcA from size Imm)
  Movsx,    ///< Dst <- sext(SrcA from size Imm)
  Cmp,      ///< flags <- SrcA cmp SrcB
  CmpImm,
  TestImm,
  SetCC,    ///< Dst <- CC ? 1 : 0 (byte)
  CMovCC,   ///< Dst(=SrcA) <- CC ? SrcB : SrcA
  Load,     ///< Dst <- [SrcA + Imm] (size Sz, zero-extended)
  LoadSx,
  Store,    ///< [SrcB + Imm] <- SrcA
  StoreImm8B,///< [SrcA + Imm] <- low bytes of Imm2 (size Sz)
  // FP (bank 1 vregs)
  FpMov, FpAlu, FpLoad, FpStore, FpConst, Ucomis,
  CvtSiToFp, CvtFpToSi, CvtFpToFp, MovdToFp, MovdFromFp,
  MulWide,  ///< Dst <- (SrcA * SrcB) low (Imm=0) or high (Imm=1) 64 bits
  // Control flow / calls
  Jmp, Jcc, Ret,
  GetArg,     ///< Dst <- incoming argument slot Imm (bank in Sz field)
  CallSetArg, ///< Stage argument Imm-th slot from SrcA (bank in Sz field)
  Call,       ///< Call Sym; Dst = result vreg (~0 none), Imm = #args
  Unreachable,
  SpillLd, ///< Dst(phys) <- frame slot of vreg Imm (inserted by RA)
  SpillSt, ///< frame slot of vreg Imm <- SrcA(phys)
};

/// After register allocation, operand fields hold physical register ids;
/// fields with this bit set refer to the frame slot of vreg (field &~bit).
constexpr u32 SlotBit = 0x80000000u;

/// One machine instruction. Fixed shape; unused fields are ignored.
struct MInst {
  MOp Op = MOp::Nop;
  u8 Sz = 8;
  x64::Cond CC = x64::Cond::E;
  u8 AluK = 0;    ///< x64::AluOp or FpOp ordinal
  u32 Dst = ~0u;
  u32 SrcA = ~0u;
  u32 SrcB = ~0u;
  i64 Imm = 0;
  i64 Imm2 = 0;
  u32 Target = ~0u; ///< Jump target block.
  asmx::SymRef Sym;
};

struct MBlock {
  std::vector<MInst> Insts;
  std::vector<u32> Succs;
};

struct MFunc {
  std::vector<MBlock> Blocks;
  u32 NumVRegs = 0;
  std::vector<u8> VRegBank; ///< 0 = GP, 1 = FP.
  /// Stack variables (from TIR) in bytes; FrameAddr indexes this.
  std::vector<u64> StackVarSizes;
  std::vector<u32> StackVarAligns;
  asmx::SymRef Sym;
};

/// Result of register allocation: every vreg is either in a physical
/// register or in a frame slot.
struct RAResult {
  std::vector<u8> PhysReg;   ///< 0xFF = spilled.
  std::vector<i32> SlotOff;  ///< Valid if spilled (filled by emit).
  u32 UsedCalleeSaved = 0;   ///< Bank-0 mask.
  u32 NumSpilled = 0;
};

} // namespace tpde::baseline

#endif // TPDE_BASELINE_MIR_H
