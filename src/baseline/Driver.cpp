//===- baseline/Driver.cpp - Baseline back-end pipeline driver ------------===//

#include "baseline/Internal.h"
#include "support/Timer.h"

using namespace tpde;
using namespace tpde::baseline;
using namespace tpde::tir;

namespace {

asmx::Linkage toAsmLinkage(Linkage L) {
  switch (L) {
  case Linkage::External:
    return asmx::Linkage::External;
  case Linkage::Internal:
    return asmx::Linkage::Internal;
  case Linkage::Weak:
    return asmx::Linkage::Weak;
  }
  TPDE_UNREACHABLE("bad linkage");
}

void defineGlobals(const Module &M, asmx::Assembler &Asm,
                   std::vector<asmx::SymRef> &GlobalSyms) {
  for (const Global &G : M.Globals) {
    asmx::SymRef S =
        Asm.createSymbol(G.Name, toAsmLinkage(G.Link), /*IsFunc=*/false);
    GlobalSyms.push_back(S);
    if (!G.Defined)
      continue;
    if (G.Init.empty() && !G.ReadOnly) {
      asmx::Section &BSS = Asm.section(asmx::SecKind::BSS);
      BSS.BssSize = alignTo(BSS.BssSize, G.Align < 1 ? 1 : G.Align);
      Asm.defineSymbol(S, asmx::SecKind::BSS, BSS.BssSize, G.Size);
      BSS.BssSize += G.Size;
      continue;
    }
    asmx::SecKind K =
        G.ReadOnly ? asmx::SecKind::ROData : asmx::SecKind::Data;
    asmx::Section &Sec = Asm.section(K);
    Sec.alignToBoundary(G.Align < 1 ? 1 : G.Align);
    u64 Off = Sec.size();
    Sec.append(G.Init.data(), G.Init.size());
    if (G.Init.size() < G.Size)
      Sec.appendZeros(G.Size - G.Init.size());
    Asm.defineSymbol(S, K, Off, G.Size);
  }
}

} // namespace

bool tpde::baseline::compileModule(Module &M, asmx::Assembler &Asm,
                                   OptLevel O, PassTimes *Times) {
  std::vector<asmx::SymRef> GlobalSyms;
  defineGlobals(M, Asm, GlobalSyms);

  std::vector<asmx::SymRef> FuncSyms;
  for (const Function &F : M.Funcs)
    FuncSyms.push_back(
        Asm.createSymbol(F.Name, toAsmLinkage(F.Link), /*IsFunc=*/true));

  Timer TIsel, TRA, TEmit;
  for (u32 I = 0; I < M.Funcs.size(); ++I) {
    const Function &F = M.Funcs[I];
    if (F.IsDeclaration)
      continue;
    MFunc MF;
    MF.Sym = FuncSyms[I];
    TIsel.start();
    bool OK = selectInstructions(M, F, MF, FuncSyms, GlobalSyms);
    TIsel.stop();
    if (!OK)
      return false;
    RAResult RA;
    TRA.start();
    if (O == OptLevel::O0)
      runFastRegAlloc(MF, RA);
    else
      runLinearScan(MF, RA);
    TRA.stop();
    TEmit.start();
    emitFunction(MF, RA, Asm);
    TEmit.stop();
  }
  if (Times) {
    Times->IselNs = TIsel.ns();
    Times->RegAllocNs = TRA.ns();
    Times->EmitNs = TEmit.ns();
  }
  return !Asm.hasError();
}
