//===- baseline/Emit.cpp - MIR to x86-64 encoding -------------------------===//
///
/// Final pass of the baseline back-end: encodes physical-register MIR into
/// machine code. Unlike TPDE, the frame layout is fully known here (the
/// allocator already ran), so the prologue needs no patching.
///
//===----------------------------------------------------------------------===//

#include "baseline/Internal.h"
#include "support/DenseMap.h"
#include "x64/CompilerX64.h" // CCAssignerSysV

using namespace tpde;
using namespace tpde::asmx;
using namespace tpde::baseline;
using namespace tpde::x64;

namespace {

class Emit {
public:
  Emit(const MFunc &F, const RAResult &RA, Assembler &Asm)
      : F(F), RA(RA), Asm(Asm), E(Asm) {}

  void run() {
    assignSlots();
    Asm.text().alignToBoundary(16);
    u64 Start = Asm.text().size();
    Asm.defineSymbol(F.Sym, SecKind::Text, Start, 0);
    emitPrologue();

    Labels.clear();
    for (u32 B = 0; B < F.Blocks.size(); ++B)
      Labels.push_back(Asm.makeLabel());
    for (u32 B = 0; B < F.Blocks.size(); ++B) {
      Asm.bindLabel(Labels[B]);
      emitBlock(B);
    }
    Asm.setSymbolSize(F.Sym, Asm.text().size() - Start);
  }

private:
  const MFunc &F;
  const RAResult &RA;
  Assembler &Asm;
  Emitter E;
  std::vector<Label> Labels;
  support::DenseMap<u32, i32> SlotOf; ///< vreg -> frame offset
  std::vector<i32> StackVarOff;
  u32 FrameSize = 0;
  support::DenseMap<u64, SymRef> FpPool;
  std::vector<MInst> PendingArgs; ///< buffered CallSetArg
  std::vector<MInst> EntryArgs;   ///< buffered GetArg

  static bool isSlot(u32 Field) { return Field & SlotBit; }
  i32 slotOff(u32 Field) { return SlotOf.at(Field & ~SlotBit); }
  static AsmReg phys(u32 Field) {
    assert(!(Field & SlotBit) && Field < 32 && "not a physical register");
    return AsmReg(static_cast<u8>(Field));
  }

  void assignSlots() {
    i32 Off = -40; // callee-save area
    StackVarOff.clear();
    for (u32 I = 0; I < F.StackVarSizes.size(); ++I) {
      u32 Al = F.StackVarAligns[I] < 8 ? 8 : F.StackVarAligns[I];
      Off = -static_cast<i32>(
          alignTo(static_cast<u64>(-Off) + F.StackVarSizes[I], Al));
      StackVarOff.push_back(Off);
    }
    auto slotFor = [&](u32 V) {
      if (!SlotOf.contains(V)) {
        Off -= 8;
        SlotOf.insert(V, Off);
      }
    };
    for (const auto &B : F.Blocks) {
      for (const auto &MI : B.Insts) {
        if (MI.Op == MOp::SpillLd || MI.Op == MOp::SpillSt)
          slotFor(static_cast<u32>(MI.Imm));
        for (u32 Fld : {MI.Dst, MI.SrcA, MI.SrcB})
          if (Fld != ~0u && (Fld & SlotBit))
            slotFor(Fld & ~SlotBit);
      }
    }
    FrameSize = static_cast<u32>(alignTo(static_cast<u64>(-Off), 16));
  }

  void emitPrologue() {
    E.push(RBP);
    E.movRR(8, RBP, RSP);
    if (FrameSize)
      E.aluRI(AluOp::Sub, 8, RSP, FrameSize);
    for (u32 M = RA.UsedCalleeSaved & GPCalleeSaved; M;) {
      u8 Idx = static_cast<u8>(countTrailingZeros(M));
      M &= M - 1;
      E.store(8, Mem(RBP, csrOff(Idx)), AsmReg(Idx));
    }
  }

  void emitEpilogue() {
    for (u32 M = RA.UsedCalleeSaved & GPCalleeSaved; M;) {
      u8 Idx = static_cast<u8>(countTrailingZeros(M));
      M &= M - 1;
      E.load(8, AsmReg(Idx), Mem(RBP, csrOff(Idx)));
    }
    Asm.text().appendByte(0xC9); // leave
    E.ret();
  }

  static i32 csrOff(u8 Idx) {
    switch (Idx) {
    case 3: return -8;
    case 12: return -16;
    case 13: return -24;
    case 14: return -32;
    case 15: return -40;
    }
    TPDE_UNREACHABLE("bad CSR");
  }

  /// Loads a (phys|slot) operand into \p Want if it is not already there.
  void intoReg(AsmReg Want, u32 Field, u8 Bank) {
    if (isSlot(Field)) {
      if (Bank == 0)
        E.load(8, Want, Mem(RBP, slotOff(Field)));
      else
        E.fpLoad(8, Want, Mem(RBP, slotOff(Field)));
      return;
    }
    AsmReg R = phys(Field);
    if (R == Want)
      return;
    if (Bank == 0)
      E.movRR(8, Want, R);
    else
      E.fpMovRR(8, Want, R);
  }

  /// Stores \p Src into a (phys|slot) destination.
  void fromReg(u32 Field, AsmReg Src, u8 Bank) {
    if (isSlot(Field)) {
      if (Bank == 0)
        E.store(8, Mem(RBP, slotOff(Field)), Src);
      else
        E.fpStore(8, Mem(RBP, slotOff(Field)), Src);
      return;
    }
    AsmReg R = phys(Field);
    if (R == Src)
      return;
    if (Bank == 0)
      E.movRR(8, R, Src);
    else
      E.fpMovRR(8, R, Src);
  }

  struct PMove {
    u32 DstField; ///< phys or slot marker
    bool SrcIsReg;
    u8 SrcReg;
    i32 SrcOff;
    u8 Bank;
  };

  /// Parallel move with cycle breaking through RAX/XMM15 (never sources
  /// or destinations here).
  void parallelMoves(std::vector<PMove> Moves) {
    std::vector<u8> Done(Moves.size(), 0);
    size_t Left = Moves.size();
    auto emitOne = [&](PMove &M) {
      if (isSlot(M.DstField)) {
        AsmReg T = M.Bank == 0 ? RAX : XMM15;
        if (M.SrcIsReg) {
          fromReg(M.DstField, AsmReg(M.SrcReg), M.Bank);
        } else {
          if (M.Bank == 0)
            E.load(8, T, Mem(RBP, M.SrcOff));
          else
            E.fpLoad(8, T, Mem(RBP, M.SrcOff));
          fromReg(M.DstField, T, M.Bank);
        }
        return;
      }
      AsmReg D = phys(M.DstField);
      if (M.SrcIsReg) {
        if (M.SrcReg != D.Id) {
          if (M.Bank == 0)
            E.movRR(8, D, AsmReg(M.SrcReg));
          else
            E.fpMovRR(8, D, AsmReg(M.SrcReg));
        }
      } else {
        if (M.Bank == 0)
          E.load(8, D, Mem(RBP, M.SrcOff));
        else
          E.fpLoad(8, D, Mem(RBP, M.SrcOff));
      }
    };
    while (Left) {
      bool Progress = false;
      for (size_t I = 0; I < Moves.size(); ++I) {
        if (Done[I])
          continue;
        bool Blocked = false;
        if (!isSlot(Moves[I].DstField)) {
          for (size_t J = 0; J < Moves.size(); ++J)
            if (!Done[J] && J != I && Moves[J].SrcIsReg &&
                Moves[J].SrcReg == phys(Moves[I].DstField).Id)
              Blocked = true;
        }
        if (Blocked)
          continue;
        emitOne(Moves[I]);
        Done[I] = 1;
        --Left;
        Progress = true;
      }
      if (Progress)
        continue;
      // Cycle: copy one blocked destination into the temp register.
      for (size_t I = 0; I < Moves.size(); ++I) {
        if (Done[I])
          continue;
        AsmReg D = phys(Moves[I].DstField);
        u8 Bank = Moves[I].Bank;
        AsmReg T = Bank == 0 ? RAX : XMM15;
        if (Bank == 0)
          E.movRR(8, T, D);
        else
          E.fpMovRR(8, T, D);
        for (size_t J = 0; J < Moves.size(); ++J)
          if (!Done[J] && Moves[J].SrcIsReg && Moves[J].SrcReg == D.Id)
            Moves[J].SrcReg = T.Id;
        break;
      }
    }
  }

  SymRef fpConst(u64 Bits, u8 Sz) {
    u64 Key = Bits ^ (static_cast<u64>(Sz) << 56);
    if (SymRef *Known = FpPool.find(Key))
      return *Known;
    Section &RO = Asm.section(SecKind::ROData);
    RO.alignToBoundary(Sz);
    u64 Off = RO.size();
    for (u8 B = 0; B < Sz; ++B)
      RO.appendByte(static_cast<u8>(Bits >> (8 * B)));
    SymRef S = Asm.createSymbol("", Linkage::Internal, false);
    Asm.defineSymbol(S, SecKind::ROData, Off, Sz);
    FpPool.insert(Key, S);
    return S;
  }

  void flushEntryArgs() {
    if (EntryArgs.empty())
      return;
    CCAssignerSysV CC;
    std::vector<PMove> Moves;
    for (const MInst &MI : EntryArgs) {
      u8 Bank = MI.Sz;
      CCAssignerSysV::Loc L;
      CC.assignValue(&Bank, 1, &L);
      PMove M;
      M.DstField = MI.Dst;
      M.Bank = Bank;
      if (L.InReg) {
        M.SrcIsReg = true;
        M.SrcReg = L.RegId;
      } else {
        M.SrcIsReg = false;
        M.SrcOff = 16 + L.StackOff;
      }
      Moves.push_back(M);
    }
    parallelMoves(std::move(Moves));
    EntryArgs.clear();
  }

  void emitCall(const MInst &Call) {
    CCAssignerSysV CC;
    struct ArgPlace {
      const MInst *MI;
      CCAssignerSysV::Loc L;
    };
    std::vector<ArgPlace> Places;
    for (const MInst &A : PendingArgs) {
      u8 Bank = A.Sz;
      CCAssignerSysV::Loc L;
      CC.assignValue(&Bank, 1, &L);
      Places.push_back({&A, L});
    }
    u32 StackBytes = static_cast<u32>(alignTo(CC.stackBytes(), 16));
    if (StackBytes)
      E.aluRI(AluOp::Sub, 8, RSP, StackBytes);
    for (auto &P : Places) {
      if (P.L.InReg)
        continue;
      // Stage via RAX/XMM15.
      if (P.MI->Sz == 0) {
        intoReg(RAX, P.MI->SrcA, 0);
        E.store(8, Mem(RSP, P.L.StackOff), RAX);
      } else {
        intoReg(XMM15, P.MI->SrcA, 1);
        E.fpStore(8, Mem(RSP, P.L.StackOff), XMM15);
      }
    }
    std::vector<PMove> Moves;
    for (auto &P : Places) {
      if (!P.L.InReg)
        continue;
      PMove M;
      M.DstField = P.L.RegId;
      M.Bank = P.MI->Sz;
      if (isSlot(P.MI->SrcA)) {
        M.SrcIsReg = false;
        M.SrcOff = slotOff(P.MI->SrcA);
      } else {
        M.SrcIsReg = true;
        M.SrcReg = phys(P.MI->SrcA).Id;
      }
      Moves.push_back(M);
    }
    parallelMoves(std::move(Moves));
    E.callSym(Call.Sym);
    if (StackBytes)
      E.aluRI(AluOp::Add, 8, RSP, StackBytes);
    if (Call.Dst != ~0u) {
      if (Call.Sz == 0) {
        fromReg(Call.Dst, RAX, 0);
        if (Call.SrcB != ~0u)
          fromReg(Call.SrcB, RDX, 0);
      } else {
        fromReg(Call.Dst, XMM0, 1);
      }
    }
    PendingArgs.clear();
  }

  void emitBlock(u32 B) {
    const auto &Insts = F.Blocks[B].Insts;
    for (size_t I = 0; I < Insts.size(); ++I) {
      const MInst &MI = Insts[I];
      switch (MI.Op) {
      case MOp::Nop:
        break;
      case MOp::GetArg:
        EntryArgs.push_back(MI);
        // Flush once the run ends.
        if (I + 1 >= Insts.size() || Insts[I + 1].Op != MOp::GetArg)
          flushEntryArgs();
        break;
      case MOp::MovRR:
        E.movRR(8, phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::FpMov:
        E.fpMovRR(8, phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::MovImm:
        E.movRI(phys(MI.Dst), static_cast<u64>(MI.Imm));
        break;
      case MOp::MovSym:
        E.leaSym(phys(MI.Dst), MI.Sym);
        break;
      case MOp::FrameAddr:
        E.lea(phys(MI.Dst), Mem(RBP, StackVarOff[MI.Imm]));
        break;
      case MOp::FpConst:
        E.fpLoadSym(MI.Sz, phys(MI.Dst), fpConst(static_cast<u64>(MI.Imm),
                                                 MI.Sz));
        break;
      case MOp::Alu:
        E.aluRR(static_cast<AluOp>(MI.AluK), MI.Sz, phys(MI.Dst),
                phys(MI.SrcB));
        break;
      case MOp::AluImm:
        E.aluRI(static_cast<AluOp>(MI.AluK), MI.Sz, phys(MI.Dst), MI.Imm);
        break;
      case MOp::Mul:
        E.imulRR(MI.Sz, phys(MI.Dst), phys(MI.SrcB));
        break;
      case MOp::MulWide: {
        intoReg(RAX, MI.SrcA, 0);
        AsmReg Src = RCX;
        if (isSlot(MI.SrcB))
          E.load(8, RCX, Mem(RBP, slotOff(MI.SrcB)));
        else
          Src = phys(MI.SrcB);
        E.mulR(8, Src);
        fromReg(MI.Dst, MI.Imm ? RDX : RAX, 0);
        break;
      }
      case MOp::Div: {
        bool Signed = MI.Imm & 1, Rem = MI.Imm & 2;
        intoReg(RAX, MI.SrcA, 0);
        AsmReg Divisor = RCX;
        if (isSlot(MI.SrcB))
          E.load(8, RCX, Mem(RBP, slotOff(MI.SrcB)));
        else
          Divisor = phys(MI.SrcB);
        if (Signed) {
          E.cwd(MI.Sz);
          E.idivR(MI.Sz, Divisor);
        } else {
          E.aluRR(AluOp::Xor, 4, RDX, RDX);
          E.divR(MI.Sz, Divisor);
        }
        fromReg(MI.Dst, Rem ? RDX : RAX, 0);
        break;
      }
      case MOp::Shift: {
        if (isSlot(MI.SrcB))
          E.load(8, RCX, Mem(RBP, slotOff(MI.SrcB)));
        else
          E.movRR(8, RCX, phys(MI.SrcB));
        E.shiftRC(static_cast<ShiftOp>(MI.CC), MI.Sz, phys(MI.Dst));
        break;
      }
      case MOp::ShiftImm:
        E.shiftRI(static_cast<ShiftOp>(MI.CC), MI.Sz, phys(MI.Dst),
                  static_cast<u8>(MI.Imm));
        break;
      case MOp::Neg:
        E.negR(MI.Sz, phys(MI.Dst));
        break;
      case MOp::Not:
        E.notR(MI.Sz, phys(MI.Dst));
        break;
      case MOp::Movzx:
        if (MI.Imm >= 8)
          E.movRR(8, phys(MI.Dst), phys(MI.SrcA));
        else
          E.movzxRR(static_cast<u8>(MI.Imm), phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::Movsx:
        if (MI.Imm >= 8)
          E.movRR(8, phys(MI.Dst), phys(MI.SrcA));
        else
          E.movsxRR(static_cast<u8>(MI.Imm), phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::Cmp:
        E.aluRR(AluOp::Cmp, MI.Sz, phys(MI.SrcA), phys(MI.SrcB));
        break;
      case MOp::CmpImm:
        E.aluRI(AluOp::Cmp, MI.Sz, phys(MI.SrcA), MI.Imm);
        break;
      case MOp::TestImm:
        E.testRI(MI.Sz, phys(MI.SrcA), static_cast<i32>(MI.Imm));
        break;
      case MOp::SetCC:
        E.setcc(MI.CC, phys(MI.Dst));
        break;
      case MOp::CMovCC:
        E.cmovcc(MI.CC, MI.Sz < 4 ? 4 : MI.Sz, phys(MI.Dst), phys(MI.SrcB));
        break;
      case MOp::Load:
        E.loadZext(MI.Sz, phys(MI.Dst),
                   Mem(phys(MI.SrcA), static_cast<i32>(MI.Imm)));
        break;
      case MOp::LoadSx:
        E.loadSext(MI.Sz, phys(MI.Dst),
                   Mem(phys(MI.SrcA), static_cast<i32>(MI.Imm)));
        break;
      case MOp::Store:
        E.store(MI.Sz, Mem(phys(MI.SrcB), static_cast<i32>(MI.Imm)),
                phys(MI.SrcA));
        break;
      case MOp::StoreImm8B:
        TPDE_UNREACHABLE("unused op");
      case MOp::FpLoad:
        E.fpLoad(MI.Sz, phys(MI.Dst),
                 Mem(phys(MI.SrcA), static_cast<i32>(MI.Imm)));
        break;
      case MOp::FpStore:
        E.fpStore(MI.Sz, Mem(phys(MI.SrcB), static_cast<i32>(MI.Imm)),
                  phys(MI.SrcA));
        break;
      case MOp::FpAlu:
        E.fpArith(static_cast<FpOp>(MI.AluK), MI.Sz, phys(MI.Dst),
                  phys(MI.SrcB));
        break;
      case MOp::Ucomis:
        E.ucomis(MI.Sz, phys(MI.SrcA), phys(MI.SrcB));
        break;
      case MOp::CvtSiToFp:
        E.cvtsi2fp(MI.Sz, static_cast<u8>(MI.Imm), phys(MI.Dst),
                   phys(MI.SrcA));
        break;
      case MOp::CvtFpToSi:
        E.cvtfp2si(MI.Sz, static_cast<u8>(MI.Imm), phys(MI.Dst),
                   phys(MI.SrcA));
        break;
      case MOp::CvtFpToFp:
        E.cvtfp2fp(MI.Sz, phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::MovdToFp:
        E.movdToFp(MI.Sz, phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::MovdFromFp:
        E.movdFromFp(MI.Sz, phys(MI.Dst), phys(MI.SrcA));
        break;
      case MOp::Jmp:
        if (MI.Target != B + 1)
          E.jmpLabel(Labels[MI.Target]);
        break;
      case MOp::Jcc:
        E.jccLabel(MI.CC, Labels[MI.Target]);
        break;
      case MOp::Ret:
        if (MI.SrcA != ~0u) {
          if (MI.Sz == 0) {
            intoReg(RAX, MI.SrcA, 0);
            if (MI.SrcB != ~0u)
              intoReg(RDX, MI.SrcB, 0);
          } else {
            intoReg(XMM0, MI.SrcA, 1);
          }
        }
        emitEpilogue();
        break;
      case MOp::CallSetArg:
        PendingArgs.push_back(MI);
        break;
      case MOp::Call:
        emitCall(MI);
        break;
      case MOp::Unreachable:
        E.ud2();
        break;
      case MOp::SpillLd:
        if (MI.Sz == 0)
          E.load(8, phys(MI.Dst), Mem(RBP, SlotOf.at(static_cast<u32>(MI.Imm))));
        else
          E.fpLoad(8, phys(MI.Dst),
                   Mem(RBP, SlotOf.at(static_cast<u32>(MI.Imm))));
        break;
      case MOp::SpillSt:
        if (MI.Sz == 0)
          E.store(8, Mem(RBP, SlotOf.at(static_cast<u32>(MI.Imm))),
                  phys(MI.SrcA));
        else
          E.fpStore(8, Mem(RBP, SlotOf.at(static_cast<u32>(MI.Imm))),
                    phys(MI.SrcA));
        break;
      }
    }
  }
};

} // namespace

void tpde::baseline::emitFunction(const MFunc &F, const RAResult &RA,
                                  Assembler &Asm) {
  Emit(F, RA, Asm).run();
}
