//===- baseline/Baseline.h - Multi-pass baseline back-end -------*- C++ -*-===//
///
/// \file
/// Public interface of the baseline compiler, the stand-in for LLVM's
/// -O0 and -O1 back-ends in the reproduction of the paper's Figures 5-8.
///
/// Pipeline (per function):
///   O0: isel -> fast local register allocation -> encode
///   O1: isel -> MIR liveness -> global linear-scan allocation ->
///       copy-coalescing peephole -> encode
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_BASELINE_BASELINE_H
#define TPDE_BASELINE_BASELINE_H

#include "asmx/Assembler.h"
#include "tir/TIR.h"

namespace tpde::baseline {

enum class OptLevel : u8 { O0, O1 };

/// Per-pass wall-clock breakdown (for the Fig. 6-style diagnostics).
struct PassTimes {
  u64 IselNs = 0;
  u64 RegAllocNs = 0;
  u64 EmitNs = 0;
};

/// Compiles all function definitions of \p M into \p Asm. Returns false on
/// unsupported constructs.
bool compileModule(tir::Module &M, asmx::Assembler &Asm, OptLevel O,
                   PassTimes *Times = nullptr);

} // namespace tpde::baseline

#endif // TPDE_BASELINE_BASELINE_H
