//===- baseline/ISel.cpp - TIR to machine IR instruction selection --------===//
///
/// First pass of the baseline back-end: lowers TIR into the baseline's own
/// machine IR with virtual registers. This deliberately materializes a
/// complete second program representation — the architectural property the
/// TPDE paper identifies as the main cost of classical back-ends.
///
//===----------------------------------------------------------------------===//

#include "baseline/Internal.h"

using namespace tpde;
using namespace tpde::baseline;
using namespace tpde::tir;

namespace {

class ISel {
public:
  ISel(const Module &M, const Function &F, MFunc &Out,
       const std::vector<asmx::SymRef> &FuncSyms,
       const std::vector<asmx::SymRef> &GlobalSyms)
      : M(M), F(F), Out(Out), FuncSyms(FuncSyms), GlobalSyms(GlobalSyms) {}

  bool run() {
    Out.Blocks.resize(F.Blocks.size());
    for (u32 B = 0; B < F.Blocks.size(); ++B)
      Out.Blocks[B].Succs = F.Blocks[B].Succs;
    VRegOfPart.assign(F.Values.size() * 2, ~0u);
    StackVarIdx.assign(F.Values.size(), ~0u);
    for (ValRef SV : F.StackVars) {
      StackVarIdx[SV] = static_cast<u32>(Out.StackVarSizes.size());
      Out.StackVarSizes.push_back(F.val(SV).Aux);
      Out.StackVarAligns.push_back(static_cast<u32>(F.val(SV).Aux2));
    }

    // Arguments.
    Cur = 0;
    for (u32 I = 0; I < F.Args.size(); ++I) {
      const Value &AV = F.val(F.Args[I]);
      for (u32 P = 0; P < partCount(AV.Ty); ++P) {
        MInst MI;
        MI.Op = MOp::GetArg;
        MI.Dst = vregOf(F.Args[I], P);
        MI.Imm = ArgSlotCount;
        MI.Sz = static_cast<u8>(partBank(AV.Ty));
        emit(MI);
        ++ArgSlotCount;
      }
    }

    for (u32 B = 0; B < F.Blocks.size(); ++B) {
      Cur = B;
      const Block &BB = F.Blocks[B];
      for (size_t I = 0; I < BB.Insts.size(); ++I) {
        if (!lowerInst(BB.Insts[I], B))
          return false;
      }
    }
    return true;
  }

private:
  const Module &M;
  const Function &F;
  MFunc &Out;
  const std::vector<asmx::SymRef> &FuncSyms;
  const std::vector<asmx::SymRef> &GlobalSyms;
  std::vector<u32> VRegOfPart;
  /// Value -> stack-var ordinal (~0 for non-stack-vars), dense by value.
  std::vector<u32> StackVarIdx;
  u32 Cur = 0;
  u32 ArgSlotCount = 0;

  u32 newVReg(u8 Bank) {
    Out.VRegBank.push_back(Bank);
    return Out.NumVRegs++;
  }

  u32 vregOf(ValRef V, u32 Part) {
    u32 &Slot = VRegOfPart[V * 2 + Part];
    if (Slot == ~0u)
      Slot = newVReg(partBank(F.val(V).Ty));
    return Slot;
  }

  void emit(const MInst &MI) { Out.Blocks[Cur].Insts.push_back(MI); }

  MInst mk(MOp Op) {
    MInst MI;
    MI.Op = Op;
    return MI;
  }

  /// Materializes operand part into a vreg (constants get fresh vregs on
  /// every use — typical non-optimizing behavior).
  u32 useVal(ValRef V, u32 Part = 0) {
    const Value &Val = F.val(V);
    switch (Val.Kind) {
    case ValKind::ConstInt: {
      u32 R = newVReg(0);
      MInst MI = mk(MOp::MovImm);
      MI.Dst = R;
      u64 Bits = Part == 0 ? Val.Aux : Val.Aux2;
      u32 W = partSize(Val.Ty, Part);
      if (W < 8)
        Bits &= (u64(1) << (8 * W)) - 1;
      if (Val.Ty == Type::I1)
        Bits &= 1;
      MI.Imm = static_cast<i64>(Bits);
      emit(MI);
      return R;
    }
    case ValKind::ConstFP: {
      u32 R = newVReg(1);
      MInst MI = mk(MOp::FpConst);
      MI.Dst = R;
      MI.Imm = static_cast<i64>(Val.Aux);
      MI.Sz = Val.Ty == Type::F32 ? 4 : 8;
      emit(MI);
      return R;
    }
    case ValKind::GlobalAddr: {
      u32 R = newVReg(0);
      MInst MI = mk(MOp::MovSym);
      MI.Dst = R;
      MI.Sym = GlobalSyms[Val.Aux];
      emit(MI);
      return R;
    }
    case ValKind::StackVar: {
      u32 R = newVReg(0);
      MInst MI = mk(MOp::FrameAddr);
      MI.Dst = R;
      assert(StackVarIdx[V] != ~0u && "not a stack variable");
      MI.Imm = StackVarIdx[V];
      emit(MI);
      return R;
    }
    default:
      return vregOf(V, Part);
    }
  }

  /// dst = mov src (two-address preparation).
  u32 copyToNew(u32 Src, u8 Bank, u8 Sz = 8) {
    u32 R = newVReg(Bank);
    MInst MI = mk(Bank ? MOp::FpMov : MOp::MovRR);
    MI.Dst = R;
    MI.SrcA = Src;
    MI.Sz = Sz;
    emit(MI);
    return R;
  }

  void movTo(u32 Dst, u32 Src, u8 Bank) {
    MInst MI = mk(Bank ? MOp::FpMov : MOp::MovRR);
    MI.Dst = Dst;
    MI.SrcA = Src;
    emit(MI);
  }

  static u8 opSz(u32 W) { return W < 4 ? 4 : static_cast<u8>(W); }

  void emitAlu(x64::AluOp Op, u8 Sz, u32 DstSrc, u32 SrcB) {
    MInst MI = mk(MOp::Alu);
    MI.Sz = Sz;
    MI.AluK = static_cast<u8>(Op);
    MI.Dst = MI.SrcA = DstSrc;
    MI.SrcB = SrcB;
    emit(MI);
  }
  void emitAluImm(x64::AluOp Op, u8 Sz, u32 DstSrc, i64 Imm) {
    MInst MI = mk(MOp::AluImm);
    MI.Sz = Sz;
    MI.AluK = static_cast<u8>(Op);
    MI.Dst = MI.SrcA = DstSrc;
    MI.Imm = Imm;
    emit(MI);
  }

  /// carry/borrow as a 0/1 value: dst = (a <u b).
  u32 emitULT(u32 A, u32 B) {
    MInst Cmp = mk(MOp::Cmp);
    Cmp.Sz = 8;
    Cmp.SrcA = A;
    Cmp.SrcB = B;
    emit(Cmp);
    u32 R = newVReg(0);
    MInst Set = mk(MOp::SetCC);
    Set.CC = x64::Cond::B;
    Set.Dst = R;
    emit(Set);
    MInst Zx = mk(MOp::Movzx);
    Zx.Dst = R;
    Zx.SrcA = R;
    Zx.Imm = 1;
    emit(Zx);
    return R;
  }

  bool lowerInst(ValRef I, u32 B) {
    const Value &V = F.val(I);
    switch (V.Opcode) {
    case Op::Add:
    case Op::Sub:
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      x64::AluOp AO = V.Opcode == Op::Add   ? x64::AluOp::Add
                      : V.Opcode == Op::Sub ? x64::AluOp::Sub
                      : V.Opcode == Op::And ? x64::AluOp::And
                      : V.Opcode == Op::Or  ? x64::AluOp::Or
                                            : x64::AluOp::Xor;
      if (V.Ty == Type::I128) {
        u32 A0 = useVal(F.operand(V, 0), 0), A1 = useVal(F.operand(V, 0), 1);
        u32 B0 = useVal(F.operand(V, 1), 0), B1 = useVal(F.operand(V, 1), 1);
        u32 D0 = vregOf(I, 0), D1 = vregOf(I, 1);
        if (V.Opcode == Op::Add || V.Opcode == Op::Sub) {
          // Explicit carry/borrow chain, avoiding flag liveness across
          // possible spill code.
          u32 T0 = copyToNew(A0, 0);
          emitAlu(AO, 8, T0, B0);
          u32 Carry = V.Opcode == Op::Add ? emitULT(T0, B0) : emitULT(A0, B0);
          u32 T1 = copyToNew(A1, 0);
          emitAlu(AO, 8, T1, B1);
          emitAlu(AO, 8, T1, Carry);
          movTo(D0, T0, 0);
          movTo(D1, T1, 0);
        } else {
          u32 T0 = copyToNew(A0, 0);
          emitAlu(AO, 8, T0, B0);
          u32 T1 = copyToNew(A1, 0);
          emitAlu(AO, 8, T1, B1);
          movTo(D0, T0, 0);
          movTo(D1, T1, 0);
        }
        return true;
      }
      u32 W = typeSize(V.Ty);
      u32 A = useVal(F.operand(V, 0));
      u32 T = copyToNew(A, 0);
      const Value &RV = F.val(F.operand(V, 1));
      if (RV.Kind == ValKind::ConstInt &&
          (W < 8 || isInt32(static_cast<i64>(RV.Aux)))) {
        emitAluImm(AO, opSz(W), T, static_cast<i64>(RV.Aux));
      } else {
        emitAlu(AO, opSz(W), T, useVal(F.operand(V, 1)));
      }
      movTo(vregOf(I, 0), T, 0);
      return true;
    }
    case Op::Mul: {
      if (V.Ty == Type::I128) {
        u32 A0 = useVal(F.operand(V, 0), 0), A1 = useVal(F.operand(V, 0), 1);
        u32 B0 = useVal(F.operand(V, 1), 0), B1 = useVal(F.operand(V, 1), 1);
        // Widening multiply via Div-style pseudo is overkill; use the
        // schoolbook form with 64-bit Mul pseudo (Dst gets low, Imm2
        // selects widening-high in the emitter).
        MInst Lo = mk(MOp::MulWide);
        Lo.Dst = vregOf(I, 0);
        Lo.SrcA = A0;
        Lo.SrcB = B0;
        Lo.Imm = 0; // low half
        emit(Lo);
        MInst Hi = mk(MOp::MulWide);
        u32 HiT = newVReg(0);
        Hi.Dst = HiT;
        Hi.SrcA = A0;
        Hi.SrcB = B0;
        Hi.Imm = 1; // high half
        emit(Hi);
        u32 X1 = copyToNew(A0, 0);
        MInst M1 = mk(MOp::Mul);
        M1.Sz = 8;
        M1.Dst = M1.SrcA = X1;
        M1.SrcB = B1;
        emit(M1);
        emitAlu(x64::AluOp::Add, 8, HiT, X1);
        u32 X2 = copyToNew(A1, 0);
        MInst M2 = mk(MOp::Mul);
        M2.Sz = 8;
        M2.Dst = M2.SrcA = X2;
        M2.SrcB = B0;
        emit(M2);
        emitAlu(x64::AluOp::Add, 8, HiT, X2);
        movTo(vregOf(I, 1), HiT, 0);
        return true;
      }
      u32 W = typeSize(V.Ty);
      u32 T = copyToNew(useVal(F.operand(V, 0)), 0);
      MInst MI = mk(MOp::Mul);
      MI.Sz = opSz(W);
      MI.Dst = MI.SrcA = T;
      MI.SrcB = useVal(F.operand(V, 1));
      emit(MI);
      movTo(vregOf(I, 0), T, 0);
      return true;
    }
    case Op::UDiv:
    case Op::SDiv:
    case Op::URem:
    case Op::SRem: {
      if (V.Ty == Type::I128)
        return false;
      u32 W = typeSize(V.Ty);
      bool Signed = V.Opcode == Op::SDiv || V.Opcode == Op::SRem;
      bool Rem = V.Opcode == Op::URem || V.Opcode == Op::SRem;
      u32 A = useVal(F.operand(V, 0));
      u32 Bv = useVal(F.operand(V, 1));
      if (W < 4) {
        u32 AX = newVReg(0), BX = newVReg(0);
        MInst Ea = mk(Signed ? MOp::Movsx : MOp::Movzx);
        Ea.Dst = AX;
        Ea.SrcA = A;
        Ea.Imm = W;
        emit(Ea);
        MInst Eb = mk(Signed ? MOp::Movsx : MOp::Movzx);
        Eb.Dst = BX;
        Eb.SrcA = Bv;
        Eb.Imm = W;
        emit(Eb);
        A = AX;
        Bv = BX;
        W = 4;
      }
      MInst MI = mk(MOp::Div);
      MI.Sz = static_cast<u8>(W);
      MI.Dst = vregOf(I, 0);
      MI.SrcA = A;
      MI.SrcB = Bv;
      MI.Imm = (Signed ? 1 : 0) | (Rem ? 2 : 0);
      emit(MI);
      return true;
    }
    case Op::Shl:
    case Op::LShr:
    case Op::AShr:
      return lowerShift(I, V);
    case Op::ICmpOp: {
      const Value &NV = nextIsCondBrOn(I, B);
      (void)NV;
      // Baseline also fuses cmp+branch if the condbr immediately follows
      // (FastISel does the same); otherwise materialize with setcc.
      emitCmpOperands(V);
      u32 D = vregOf(I, 0);
      MInst Set = mk(MOp::SetCC);
      Set.CC = icmpCC(static_cast<ICmp>(V.Aux));
      Set.Dst = D;
      emit(Set);
      return true;
    }
    case Op::FCmpOp: {
      u8 Sz = F.val(F.operand(V, 0)).Ty == Type::F32 ? 4 : 8;
      FCmp P = static_cast<FCmp>(V.Aux);
      bool Swap = P == FCmp::Olt || P == FCmp::Ole;
      u32 A = useVal(F.operand(V, Swap ? 1 : 0));
      u32 Bv = useVal(F.operand(V, Swap ? 0 : 1));
      MInst Uc = mk(MOp::Ucomis);
      Uc.Sz = Sz;
      Uc.SrcA = A;
      Uc.SrcB = Bv;
      emit(Uc);
      u32 D = vregOf(I, 0);
      if (P == FCmp::Oeq || P == FCmp::One) {
        MInst S1 = mk(MOp::SetCC);
        S1.CC = P == FCmp::Oeq ? x64::Cond::E : x64::Cond::NE;
        S1.Dst = D;
        emit(S1);
        u32 T = newVReg(0);
        MInst S2 = mk(MOp::SetCC);
        S2.CC = x64::Cond::NP;
        S2.Dst = T;
        emit(S2);
        emitAlu(x64::AluOp::And, 4, D, T);
      } else {
        MInst S = mk(MOp::SetCC);
        S.CC = (P == FCmp::Ogt || P == FCmp::Olt) ? x64::Cond::A
                                                  : x64::Cond::AE;
        S.Dst = D;
        emit(S);
      }
      return true;
    }
    case Op::FAdd:
    case Op::FSub:
    case Op::FMul:
    case Op::FDiv: {
      u8 Sz = V.Ty == Type::F32 ? 4 : 8;
      u32 T = copyToNew(useVal(F.operand(V, 0)), 1);
      MInst MI = mk(MOp::FpAlu);
      MI.Sz = Sz;
      MI.AluK = static_cast<u8>(V.Opcode == Op::FAdd   ? x64::FpOp::Add
                                : V.Opcode == Op::FSub ? x64::FpOp::Sub
                                : V.Opcode == Op::FMul ? x64::FpOp::Mul
                                                       : x64::FpOp::Div);
      MI.Dst = MI.SrcA = T;
      MI.SrcB = useVal(F.operand(V, 1));
      emit(MI);
      movTo(vregOf(I, 0), T, 1);
      return true;
    }
    case Op::Neg:
    case Op::Not: {
      u32 T = copyToNew(useVal(F.operand(V, 0)), 0);
      MInst MI = mk(V.Opcode == Op::Neg ? MOp::Neg : MOp::Not);
      MI.Sz = opSz(typeSize(V.Ty));
      MI.Dst = MI.SrcA = T;
      emit(MI);
      movTo(vregOf(I, 0), T, 0);
      return true;
    }
    case Op::FNeg: {
      // Flip the sign bit via GP xor.
      u8 Sz = V.Ty == Type::F32 ? 4 : 8;
      u32 G = newVReg(0);
      MInst ToGp = mk(MOp::MovdFromFp);
      ToGp.Sz = Sz;
      ToGp.Dst = G;
      ToGp.SrcA = useVal(F.operand(V, 0));
      emit(ToGp);
      u32 Mask = newVReg(0);
      MInst MI = mk(MOp::MovImm);
      MI.Dst = Mask;
      MI.Imm = Sz == 4 ? 0x80000000ll : static_cast<i64>(0x8000000000000000ull);
      emit(MI);
      emitAlu(x64::AluOp::Xor, 8, G, Mask);
      MInst Back = mk(MOp::MovdToFp);
      Back.Sz = Sz;
      Back.Dst = vregOf(I, 0);
      Back.SrcA = G;
      emit(Back);
      return true;
    }
    case Op::Zext:
    case Op::Sext:
    case Op::Trunc:
    case Op::FpToSi:
    case Op::SiToFp:
    case Op::FpExt:
    case Op::FpTrunc:
    case Op::Bitcast:
      return lowerCast(I, V);
    case Op::Select: {
      u32 C = useVal(F.operand(V, 0));
      MInst T = mk(MOp::TestImm);
      T.Sz = 1;
      T.SrcA = C;
      T.Imm = 1;
      emit(T);
      if (isFloatType(V.Ty)) {
        // cmov has no FP form; emit a diamond-free double cmov through GP.
        u8 Sz = V.Ty == Type::F32 ? 4 : 8;
        u32 GT = newVReg(0), GF = newVReg(0);
        MInst A = mk(MOp::MovdFromFp);
        A.Sz = Sz;
        A.Dst = GT;
        A.SrcA = useVal(F.operand(V, 1));
        emit(A);
        MInst Bm = mk(MOp::MovdFromFp);
        Bm.Sz = Sz;
        Bm.Dst = GF;
        Bm.SrcA = useVal(F.operand(V, 2));
        emit(Bm);
        MInst CM = mk(MOp::CMovCC);
        CM.Sz = 8;
        CM.CC = x64::Cond::NE;
        CM.Dst = CM.SrcA = GF;
        CM.SrcB = GT;
        emit(CM);
        MInst Back = mk(MOp::MovdToFp);
        Back.Sz = Sz;
        Back.Dst = vregOf(I, 0);
        Back.SrcA = GF;
        emit(Back);
        return true;
      }
      u32 Parts = partCount(V.Ty);
      for (u32 P = 0; P < Parts; ++P) {
        u32 T2 = copyToNew(useVal(F.operand(V, 2), P), 0);
        MInst CM = mk(MOp::CMovCC);
        CM.Sz = opSz(partSize(V.Ty, P));
        CM.CC = x64::Cond::NE;
        CM.Dst = CM.SrcA = T2;
        CM.SrcB = useVal(F.operand(V, 1), P);
        emit(CM);
        movTo(vregOf(I, P), T2, 0);
      }
      return true;
    }
    case Op::Load: {
      u32 P = useVal(F.operand(V, 0));
      if (isFloatType(V.Ty)) {
        MInst MI = mk(MOp::FpLoad);
        MI.Sz = V.Ty == Type::F32 ? 4 : 8;
        MI.Dst = vregOf(I, 0);
        MI.SrcA = P;
        emit(MI);
        return true;
      }
      for (u32 Part = 0; Part < partCount(V.Ty); ++Part) {
        MInst MI = mk(MOp::Load);
        MI.Sz = static_cast<u8>(partSize(V.Ty, Part));
        MI.Dst = vregOf(I, Part);
        MI.SrcA = P;
        MI.Imm = 8 * Part;
        emit(MI);
      }
      return true;
    }
    case Op::Store: {
      const Value &SV = F.val(F.operand(V, 0));
      u32 P = useVal(F.operand(V, 1));
      if (isFloatType(SV.Ty)) {
        MInst MI = mk(MOp::FpStore);
        MI.Sz = SV.Ty == Type::F32 ? 4 : 8;
        MI.SrcA = useVal(F.operand(V, 0));
        MI.SrcB = P;
        emit(MI);
        return true;
      }
      for (u32 Part = 0; Part < partCount(SV.Ty); ++Part) {
        MInst MI = mk(MOp::Store);
        MI.Sz = static_cast<u8>(partSize(SV.Ty, Part));
        MI.SrcA = useVal(F.operand(V, 0), Part);
        MI.SrcB = P;
        MI.Imm = 8 * Part;
        emit(MI);
      }
      return true;
    }
    case Op::PtrAdd: {
      u32 T = copyToNew(useVal(F.operand(V, 0)), 0);
      if (V.NumOps > 1) {
        u32 Idx = useVal(F.operand(V, 1));
        u32 Scaled = copyToNew(Idx, 0);
        if (V.Aux != 1) {
          u32 Sc = newVReg(0);
          MInst MI = mk(MOp::MovImm);
          MI.Dst = Sc;
          MI.Imm = static_cast<i64>(V.Aux);
          emit(MI);
          MInst Mul = mk(MOp::Mul);
          Mul.Sz = 8;
          Mul.Dst = Mul.SrcA = Scaled;
          Mul.SrcB = Sc;
          emit(Mul);
        }
        emitAlu(x64::AluOp::Add, 8, T, Scaled);
      }
      if (V.Aux2)
        emitAluImm(x64::AluOp::Add, 8, T, static_cast<i64>(V.Aux2));
      movTo(vregOf(I, 0), T, 0);
      return true;
    }
    case Op::Call: {
      const Function &Callee = M.Funcs[V.Aux];
      u32 Slot = 0;
      for (u32 A = 0; A < V.NumOps; ++A) {
        const Value &AV = F.val(F.operand(V, A));
        for (u32 P = 0; P < partCount(AV.Ty); ++P) {
          MInst MI = mk(MOp::CallSetArg);
          MI.SrcA = useVal(F.operand(V, A), P);
          MI.Imm = Slot++;
          MI.Sz = partBank(AV.Ty);
          emit(MI);
        }
      }
      MInst C = mk(MOp::Call);
      C.Sym = FuncSyms[V.Aux];
      C.Imm = Slot;
      if (Callee.RetTy != Type::Void) {
        C.Dst = vregOf(I, 0);
        C.Sz = partBank(Callee.RetTy);
        if (partCount(Callee.RetTy) > 1)
          C.SrcB = vregOf(I, 1); // second result part
      }
      emit(C);
      return true;
    }
    case Op::Ret: {
      MInst MI = mk(MOp::Ret);
      if (V.NumOps) {
        const Value &RV = F.val(F.operand(V, 0));
        MI.SrcA = useVal(F.operand(V, 0), 0);
        MI.Sz = partBank(RV.Ty);
        if (partCount(RV.Ty) > 1)
          MI.SrcB = useVal(F.operand(V, 0), 1);
      }
      emit(MI);
      return true;
    }
    case Op::Br: {
      lowerPhiMoves(B, F.Blocks[B].Succs[0]);
      MInst MI = mk(MOp::Jmp);
      MI.Target = F.Blocks[B].Succs[0];
      emit(MI);
      return true;
    }
    case Op::CondBr: {
      u32 T = F.Blocks[B].Succs[0], Fb = F.Blocks[B].Succs[1];
      u32 C = useVal(F.operand(V, 0));
      // Phi moves are per-edge; edges into blocks with phis are split
      // with extra MIR blocks so the moves only execute on their edge.
      u32 TT = T, FF = Fb;
      bool TPhis = !F.Blocks[T].Phis.empty();
      bool FPhis = !F.Blocks[Fb].Phis.empty();
      if (TPhis) {
        TT = static_cast<u32>(Out.Blocks.size());
        Out.Blocks.emplace_back();
        Out.Blocks.back().Succs = {T};
      }
      if (FPhis) {
        FF = static_cast<u32>(Out.Blocks.size());
        Out.Blocks.emplace_back();
        Out.Blocks.back().Succs = {Fb};
      }
      MInst Test = mk(MOp::TestImm);
      Test.Sz = 1;
      Test.SrcA = C;
      Test.Imm = 1;
      emit(Test);
      MInst J = mk(MOp::Jcc);
      J.CC = x64::Cond::NE;
      J.Target = TT;
      emit(J);
      MInst J2 = mk(MOp::Jmp);
      J2.Target = FF;
      emit(J2);
      Out.Blocks[B].Succs = {TT, FF};
      u32 Saved = Cur;
      if (TPhis) {
        Cur = TT;
        lowerPhiMoves(B, T);
        MInst JT = mk(MOp::Jmp);
        JT.Target = T;
        emit(JT);
      }
      if (FPhis) {
        Cur = FF;
        lowerPhiMoves(B, Fb);
        MInst JF = mk(MOp::Jmp);
        JF.Target = Fb;
        emit(JF);
      }
      Cur = Saved;
      return true;
    }
    case Op::Unreachable:
      emit(mk(MOp::Unreachable));
      return true;
    case Op::Phi:
      TPDE_UNREACHABLE("phi in instruction list");
    default:
      return false;
    }
  }

  bool lowerShift(ValRef I, const Value &V) {
    u32 W = typeSize(V.Ty);
    const Value &RV = F.val(F.operand(V, 1));
    bool ConstAmt = RV.Kind == ValKind::ConstInt;
    if (V.Ty == Type::I128) {
      if (!ConstAmt)
        return false;
      u8 Amt = static_cast<u8>(RV.Aux & 127);
      u32 A0 = useVal(F.operand(V, 0), 0), A1 = useVal(F.operand(V, 0), 1);
      u32 D0 = vregOf(I, 0), D1 = vregOf(I, 1);
      bool Shl = V.Opcode == Op::Shl;
      bool Arith = V.Opcode == Op::AShr;
      auto shiftImm = [&](u32 Reg, x64::ShiftOp SO, u8 K) {
        if (!K)
          return;
        MInst MI = mk(MOp::ShiftImm);
        MI.Sz = 8;
        MI.CC = static_cast<x64::Cond>(SO);
        MI.Dst = MI.SrcA = Reg;
        MI.Imm = K;
        emit(MI);
      };
      if (Shl) {
        if (Amt < 64) {
          // hi = hi<<a | lo>>(64-a); lo <<= a
          u32 T1 = copyToNew(A1, 0);
          shiftImm(T1, x64::ShiftOp::Shl, Amt);
          if (Amt) {
            u32 T2 = copyToNew(A0, 0);
            shiftImm(T2, x64::ShiftOp::Shr, static_cast<u8>(64 - Amt));
            emitAlu(x64::AluOp::Or, 8, T1, T2);
          }
          u32 T0 = copyToNew(A0, 0);
          shiftImm(T0, x64::ShiftOp::Shl, Amt);
          movTo(D0, T0, 0);
          movTo(D1, T1, 0);
        } else {
          u32 T1 = copyToNew(A0, 0);
          shiftImm(T1, x64::ShiftOp::Shl, static_cast<u8>(Amt - 64));
          MInst Z = mk(MOp::MovImm);
          Z.Dst = D0;
          Z.Imm = 0;
          emit(Z);
          movTo(D1, T1, 0);
        }
        return true;
      }
      if (Amt < 64) {
        u32 T0 = copyToNew(A0, 0);
        shiftImm(T0, x64::ShiftOp::Shr, Amt);
        if (Amt) {
          u32 T2 = copyToNew(A1, 0);
          shiftImm(T2, x64::ShiftOp::Shl, static_cast<u8>(64 - Amt));
          emitAlu(x64::AluOp::Or, 8, T0, T2);
        }
        u32 T1 = copyToNew(A1, 0);
        shiftImm(T1, Arith ? x64::ShiftOp::Sar : x64::ShiftOp::Shr, Amt);
        movTo(D0, T0, 0);
        movTo(D1, T1, 0);
      } else {
        u32 T0 = copyToNew(A1, 0);
        shiftImm(T0, Arith ? x64::ShiftOp::Sar : x64::ShiftOp::Shr,
                 static_cast<u8>(Amt - 64));
        u32 T1;
        if (Arith) {
          T1 = copyToNew(A1, 0);
          shiftImm(T1, x64::ShiftOp::Sar, 63);
        } else {
          T1 = newVReg(0);
          MInst Z = mk(MOp::MovImm);
          Z.Dst = T1;
          Z.Imm = 0;
          emit(Z);
        }
        movTo(D0, T0, 0);
        movTo(D1, T1, 0);
      }
      return true;
    }

    x64::ShiftOp SO = V.Opcode == Op::Shl    ? x64::ShiftOp::Shl
                      : V.Opcode == Op::LShr ? x64::ShiftOp::Shr
                                             : x64::ShiftOp::Sar;
    u32 Src = useVal(F.operand(V, 0));
    u32 T;
    if (W < 4 && V.Opcode != Op::Shl) {
      T = newVReg(0);
      MInst E = mk(V.Opcode == Op::AShr ? MOp::Movsx : MOp::Movzx);
      E.Dst = T;
      E.SrcA = Src;
      E.Imm = W;
      emit(E);
    } else {
      T = copyToNew(Src, 0);
    }
    if (ConstAmt) {
      MInst MI = mk(MOp::ShiftImm);
      MI.Sz = opSz(W);
      MI.CC = static_cast<x64::Cond>(SO);
      MI.Dst = MI.SrcA = T;
      MI.Imm = static_cast<i64>(RV.Aux & (8 * W - 1));
      emit(MI);
    } else {
      MInst MI = mk(MOp::Shift);
      MI.Sz = opSz(W);
      MI.CC = static_cast<x64::Cond>(SO);
      MI.Dst = MI.SrcA = T;
      MI.SrcB = useVal(F.operand(V, 1));
      emit(MI);
    }
    movTo(vregOf(I, 0), T, 0);
    return true;
  }

  bool lowerCast(ValRef I, const Value &V) {
    const Value &SV = F.val(F.operand(V, 0));
    u32 SrcW = typeSize(SV.Ty), DstW = typeSize(V.Ty);
    switch (V.Opcode) {
    case Op::Zext:
    case Op::Sext: {
      bool Sign = V.Opcode == Op::Sext;
      u32 S = useVal(F.operand(V, 0));
      u32 D0 = vregOf(I, 0);
      MInst E = mk(Sign ? MOp::Movsx : MOp::Movzx);
      E.Dst = D0;
      E.SrcA = S;
      E.Imm = SrcW < 8 ? SrcW : 8;
      emit(E);
      if (V.Ty == Type::I128) {
        u32 D1 = vregOf(I, 1);
        if (Sign) {
          movTo(D1, D0, 0);
          MInst Sar = mk(MOp::ShiftImm);
          Sar.Sz = 8;
          Sar.CC = static_cast<x64::Cond>(x64::ShiftOp::Sar);
          Sar.Dst = Sar.SrcA = D1;
          Sar.Imm = 63;
          emit(Sar);
        } else {
          MInst Z = mk(MOp::MovImm);
          Z.Dst = D1;
          Z.Imm = 0;
          emit(Z);
        }
      }
      return true;
    }
    case Op::Trunc: {
      u32 S = useVal(F.operand(V, 0), 0);
      u32 D = vregOf(I, 0);
      movTo(D, S, 0);
      if (V.Ty == Type::I1)
        emitAluImm(x64::AluOp::And, 4, D, 1);
      return true;
    }
    case Op::FpExt:
    case Op::FpTrunc: {
      MInst MI = mk(MOp::CvtFpToFp);
      MI.Sz = V.Opcode == Op::FpExt ? 4 : 8; // source size
      MI.Dst = vregOf(I, 0);
      MI.SrcA = useVal(F.operand(V, 0));
      emit(MI);
      return true;
    }
    case Op::FpToSi: {
      MInst MI = mk(MOp::CvtFpToSi);
      MI.Sz = SrcW == 4 ? 4 : 8;
      MI.Imm = DstW == 8 ? 8 : 4;
      MI.Dst = vregOf(I, 0);
      MI.SrcA = useVal(F.operand(V, 0));
      emit(MI);
      return true;
    }
    case Op::SiToFp: {
      u32 S = useVal(F.operand(V, 0));
      if (SrcW < 4) {
        u32 T = newVReg(0);
        MInst E = mk(MOp::Movsx);
        E.Dst = T;
        E.SrcA = S;
        E.Imm = SrcW;
        emit(E);
        S = T;
        SrcW = 8;
      }
      MInst MI = mk(MOp::CvtSiToFp);
      MI.Sz = static_cast<u8>(SrcW);
      MI.Imm = V.Ty == Type::F32 ? 4 : 8;
      MI.Dst = vregOf(I, 0);
      MI.SrcA = S;
      emit(MI);
      return true;
    }
    case Op::Bitcast: {
      bool SrcFp = isFloatType(SV.Ty), DstFp = isFloatType(V.Ty);
      u32 S = useVal(F.operand(V, 0));
      if (SrcFp == DstFp) {
        movTo(vregOf(I, 0), S, SrcFp ? 1 : 0);
        return true;
      }
      MInst MI = mk(DstFp ? MOp::MovdToFp : MOp::MovdFromFp);
      MI.Sz = static_cast<u8>(DstW);
      MI.Dst = vregOf(I, 0);
      MI.SrcA = S;
      emit(MI);
      return true;
    }
    default:
      return false;
    }
  }

  void emitCmpOperands(const Value &V) {
    const Value &LT = F.val(F.operand(V, 0));
    u32 W = typeSize(LT.Ty);
    if (LT.Ty == Type::I128) {
      // eq/ne only in the baseline for simplicity of flags handling:
      // materialize a 0/1 via xor/or chain; relational via compare pairs.
      // (The generator only produces eq/ne-style folds through trunc.)
      u32 A0 = useVal(F.operand(V, 0), 0), A1 = useVal(F.operand(V, 0), 1);
      u32 B0 = useVal(F.operand(V, 1), 0), B1 = useVal(F.operand(V, 1), 1);
      u32 T0 = copyToNew(A0, 0);
      emitAlu(x64::AluOp::Xor, 8, T0, B0);
      u32 T1 = copyToNew(A1, 0);
      emitAlu(x64::AluOp::Xor, 8, T1, B1);
      emitAlu(x64::AluOp::Or, 8, T0, T1);
      MInst Cmp = mk(MOp::CmpImm);
      Cmp.Sz = 8;
      Cmp.SrcA = T0;
      Cmp.Imm = 0;
      emit(Cmp);
      return;
    }
    const Value &RV = F.val(F.operand(V, 1));
    u32 A = useVal(F.operand(V, 0));
    if (RV.Kind == ValKind::ConstInt &&
        (W < 8 || isInt32(static_cast<i64>(RV.Aux)))) {
      MInst MI = mk(MOp::CmpImm);
      MI.Sz = static_cast<u8>(W);
      MI.SrcA = A;
      MI.Imm = static_cast<i64>(RV.Aux);
      emit(MI);
      return;
    }
    MInst MI = mk(MOp::Cmp);
    MI.Sz = static_cast<u8>(W);
    MI.SrcA = A;
    MI.SrcB = useVal(F.operand(V, 1));
    emit(MI);
  }

  static x64::Cond icmpCC(ICmp P) {
    switch (P) {
    case ICmp::Eq: return x64::Cond::E;
    case ICmp::Ne: return x64::Cond::NE;
    case ICmp::Ult: return x64::Cond::B;
    case ICmp::Ule: return x64::Cond::BE;
    case ICmp::Ugt: return x64::Cond::A;
    case ICmp::Uge: return x64::Cond::AE;
    case ICmp::Slt: return x64::Cond::L;
    case ICmp::Sle: return x64::Cond::LE;
    case ICmp::Sgt: return x64::Cond::G;
    case ICmp::Sge: return x64::Cond::GE;
    }
    TPDE_UNREACHABLE("bad icmp");
  }

  const Value &nextIsCondBrOn(ValRef I, u32 B) { return F.val(I); }

  /// Two-step phi copies at the end of the predecessor (before the
  /// terminator): tmp_i = in_i; phi_i = tmp_i. Breaks swap cycles.
  void lowerPhiMoves(u32 Pred, u32 Succ) {
    const Block &SB = F.Blocks[Succ];
    if (SB.Phis.empty())
      return;
    std::vector<std::pair<u32, u32>> Temps; // (phi vreg, temp vreg)
    for (ValRef Phi : SB.Phis) {
      const Value &PV = F.val(Phi);
      for (u32 In = 0; In < PV.NumOps; ++In) {
        if (F.phiBlock(PV, In) != Pred)
          continue;
        ValRef V = F.operand(PV, In);
        for (u32 P = 0; P < partCount(PV.Ty); ++P) {
          u8 Bank = partBank(PV.Ty);
          u32 T = newVReg(Bank);
          movTo(T, useVal(V, P), Bank);
          Temps.push_back({vregOf(Phi, P), T});
        }
      }
    }
    for (auto [PhiR, T] : Temps) {
      u8 Bank = Out.VRegBank[PhiR];
      movTo(PhiR, T, Bank);
    }
  }
};

} // namespace

bool tpde::baseline::selectInstructions(
    const tir::Module &M, const tir::Function &F, MFunc &Out,
    const std::vector<asmx::SymRef> &FuncSyms,
    const std::vector<asmx::SymRef> &GlobalSyms) {
  return ISel(M, F, Out, FuncSyms, GlobalSyms).run();
}
