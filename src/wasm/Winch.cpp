//===- wasm/Winch.cpp - Direct single-pass wasm compiler ------------------===//
///
/// The Winch stand-in: compiles wasm bytecode straight to x86-64 in one
/// pass with no IR. Locals and the operand stack live in frame slots;
/// operations use fixed scratch registers. Fastest compile time of all
/// wasm back-ends (it skips the IR translation the others need, §6.2.2),
/// slowest generated code.
///
//===----------------------------------------------------------------------===//

#include "wasm/Wasm.h"
#include "x64/Encoder.h"

using namespace tpde;
using namespace tpde::asmx;
using namespace tpde::wasm;
using namespace tpde::x64;

namespace {

class WinchCompiler {
public:
  WinchCompiler(const WModule &W, Assembler &Asm) : W(W), Asm(Asm), E(Asm) {}

  bool run() {
    MemSym = Asm.createSymbol("wasm_memory", Linkage::External, false);
    Section &BSS = Asm.section(SecKind::BSS);
    BSS.BssSize = alignTo(BSS.BssSize, 16);
    Asm.defineSymbol(MemSym, SecKind::BSS, BSS.BssSize, W.MemoryBytes);
    BSS.BssSize += W.MemoryBytes;
    for (const WFunc &F : W.Funcs)
      FuncSyms.push_back(Asm.createSymbol(F.Name, Linkage::External, true));
    for (u32 I = 0; I < W.Funcs.size(); ++I)
      if (!compileFunc(W.Funcs[I], FuncSyms[I]))
        return false;
    return !Asm.hasError();
  }

private:
  const WModule &W;
  Assembler &Asm;
  Emitter E;
  SymRef MemSym;
  std::vector<SymRef> FuncSyms;

  const WFunc *F = nullptr;
  u32 NumLocals = 0;
  u32 Depth = 0; ///< current operand stack depth
  std::vector<WType> StackTy;

  struct Frame {
    bool IsLoop;
    Label Target;
    u32 DepthAtEntry;
  };
  std::vector<Frame> Ctrl;

  i32 localOff(u32 I) { return -8 * static_cast<i32>(I + 1); }
  i32 stackOff(u32 D) { return -8 * static_cast<i32>(NumLocals + D + 1); }

  void pushFrom(AsmReg R, WType T) {
    StackTy.push_back(T);
    if (T == WType::F64)
      E.fpStore(8, Mem(RBP, stackOff(Depth)), R);
    else
      E.store(8, Mem(RBP, stackOff(Depth)), R);
    ++Depth;
  }
  WType popTo(AsmReg R) {
    --Depth;
    WType T = StackTy.back();
    StackTy.pop_back();
    if (T == WType::F64)
      E.fpLoad(8, R, Mem(RBP, stackOff(Depth)));
    else
      E.load(8, R, Mem(RBP, stackOff(Depth)));
    return T;
  }

  bool compileFunc(const WFunc &Fn, SymRef Sym) {
    F = &Fn;
    NumLocals = static_cast<u32>(Fn.Params.size() + Fn.Locals.size());
    Depth = 0;
    StackTy.clear();
    Ctrl.clear();
    Asm.text().alignToBoundary(16);
    u64 Start = Asm.text().size();
    Asm.defineSymbol(Sym, SecKind::Text, Start, 0);
    Asm.resetLabels();

    u32 MaxSlots = NumLocals + static_cast<u32>(Fn.Body.size()) + 8;
    E.push(RBP);
    E.movRR(8, RBP, RSP);
    E.aluRI(AluOp::Sub, 8, RSP, alignTo(8 * MaxSlots, 16));

    // Spill parameters; zero the extra locals.
    static constexpr AsmReg GPArg[6] = {RDI, RSI, RDX, RCX, R8, R9};
    u32 GPUsed = 0, FPUsed = 0;
    for (u32 I = 0; I < Fn.Params.size(); ++I) {
      if (Fn.Params[I] == WType::F64)
        E.fpStore(8, Mem(RBP, localOff(I)), AsmReg(16 + FPUsed++));
      else
        E.store(8, Mem(RBP, localOff(I)), GPArg[GPUsed++]);
    }
    if (!Fn.Locals.empty()) {
      E.aluRR(AluOp::Xor, 4, RAX, RAX);
      for (u32 I = 0; I < Fn.Locals.size(); ++I)
        E.store(8, Mem(RBP, localOff(static_cast<u32>(Fn.Params.size()) + I)),
                RAX);
    }

    for (const WInst &I : Fn.Body)
      if (!inst(I))
        return false;

    // Implicit return at the end of the body.
    if (Fn.HasRet && Depth > 0) {
      if (Fn.Ret == WType::F64)
        popTo(XMM0);
      else
        popTo(RAX);
    }
    Asm.text().appendByte(0xC9); // leave
    E.ret();
    Asm.setSymbolSize(Sym, Asm.text().size() - Start);
    return true;
  }

  static u8 opSize(WType T) { return T == WType::I32 ? 4 : 8; }

  bool inst(const WInst &I) {
    switch (I.Op) {
    case WOp::Block: {
      Ctrl.push_back(Frame{false, Asm.makeLabel(), Depth});
      return true;
    }
    case WOp::Loop: {
      Label L = Asm.makeLabel();
      Asm.bindLabel(L);
      Ctrl.push_back(Frame{true, L, Depth});
      return true;
    }
    case WOp::End: {
      if (Ctrl.empty())
        return true;
      Frame Fr = Ctrl.back();
      Ctrl.pop_back();
      if (!Fr.IsLoop)
        Asm.bindLabel(Fr.Target);
      return true;
    }
    case WOp::Br: {
      Frame &Fr = Ctrl[Ctrl.size() - 1 - I.Idx];
      E.jmpLabel(Fr.Target);
      return true;
    }
    case WOp::BrIf: {
      popTo(RAX);
      Frame &Fr = Ctrl[Ctrl.size() - 1 - I.Idx];
      E.testRR(4, RAX, RAX);
      E.jccLabel(Cond::NE, Fr.Target);
      return true;
    }
    case WOp::Return: {
      if (F->HasRet) {
        if (F->Ret == WType::F64)
          popTo(XMM0);
        else
          popTo(RAX);
      }
      Asm.text().appendByte(0xC9);
      E.ret();
      return true;
    }
    case WOp::LocalGet: {
      // Straight slot-to-slot copy through RAX.
      E.load(8, RAX, Mem(RBP, localOff(I.Idx)));
      WType T = I.Idx < F->Params.size()
                    ? F->Params[I.Idx]
                    : F->Locals[I.Idx - F->Params.size()];
      StackTy.push_back(T);
      E.store(8, Mem(RBP, stackOff(Depth)), RAX);
      ++Depth;
      return true;
    }
    case WOp::LocalSet:
    case WOp::LocalTee: {
      E.load(8, RAX, Mem(RBP, stackOff(Depth - 1)));
      E.store(8, Mem(RBP, localOff(I.Idx)), RAX);
      if (I.Op == WOp::LocalSet) {
        --Depth;
        StackTy.pop_back();
      }
      return true;
    }
    case WOp::ConstI:
      E.movRI(RAX, I.ImmI);
      StackTy.push_back(I.Ty);
      E.store(8, Mem(RBP, stackOff(Depth)), RAX);
      ++Depth;
      return true;
    case WOp::ConstF: {
      u64 Bits;
      __builtin_memcpy(&Bits, &I.ImmF, 8);
      E.movRI(RAX, Bits);
      StackTy.push_back(WType::F64);
      E.store(8, Mem(RBP, stackOff(Depth)), RAX);
      ++Depth;
      return true;
    }
    case WOp::Add:
    case WOp::Sub:
    case WOp::Mul:
    case WOp::And:
    case WOp::Or:
    case WOp::Xor: {
      popTo(RCX);
      WType T = popTo(RAX);
      u8 Sz = opSize(T);
      AluOp O = I.Op == WOp::Add   ? AluOp::Add
                : I.Op == WOp::Sub ? AluOp::Sub
                : I.Op == WOp::And ? AluOp::And
                : I.Op == WOp::Or  ? AluOp::Or
                                   : AluOp::Xor;
      if (I.Op == WOp::Mul)
        E.imulRR(Sz, RAX, RCX);
      else
        E.aluRR(O, Sz, RAX, RCX);
      pushFrom(RAX, T);
      return true;
    }
    case WOp::DivS:
    case WOp::DivU:
    case WOp::RemU: {
      popTo(RCX);
      WType T = popTo(RAX);
      u8 Sz = opSize(T);
      if (I.Op == WOp::DivS) {
        E.cwd(Sz);
        E.idivR(Sz, RCX);
      } else {
        E.aluRR(AluOp::Xor, 4, RDX, RDX);
        E.divR(Sz, RCX);
      }
      pushFrom(I.Op == WOp::RemU ? RDX : RAX, T);
      return true;
    }
    case WOp::Shl:
    case WOp::ShrS:
    case WOp::ShrU: {
      popTo(RCX);
      WType T = popTo(RAX);
      ShiftOp O = I.Op == WOp::Shl    ? ShiftOp::Shl
                  : I.Op == WOp::ShrS ? ShiftOp::Sar
                                      : ShiftOp::Shr;
      E.shiftRC(O, opSize(T), RAX);
      pushFrom(RAX, T);
      return true;
    }
    case WOp::Eq:
    case WOp::Ne:
    case WOp::LtS:
    case WOp::LtU:
    case WOp::GtS:
    case WOp::GeS:
    case WOp::LeS: {
      popTo(RCX);
      WType T = popTo(RAX);
      E.aluRR(AluOp::Cmp, opSize(T), RAX, RCX);
      Cond C = I.Op == WOp::Eq    ? Cond::E
               : I.Op == WOp::Ne  ? Cond::NE
               : I.Op == WOp::LtS ? Cond::L
               : I.Op == WOp::LtU ? Cond::B
               : I.Op == WOp::GtS ? Cond::G
               : I.Op == WOp::GeS ? Cond::GE
                                  : Cond::LE;
      E.setcc(C, RAX);
      E.movzxRR(1, RAX, RAX);
      pushFrom(RAX, WType::I32);
      return true;
    }
    case WOp::Eqz: {
      WType T = popTo(RAX);
      E.testRR(opSize(T), RAX, RAX);
      E.setcc(Cond::E, RAX);
      E.movzxRR(1, RAX, RAX);
      pushFrom(RAX, WType::I32);
      return true;
    }
    case WOp::FAdd:
    case WOp::FSub:
    case WOp::FMul:
    case WOp::FDiv: {
      popTo(XMM1);
      popTo(XMM0);
      FpOp O = I.Op == WOp::FAdd   ? FpOp::Add
               : I.Op == WOp::FSub ? FpOp::Sub
               : I.Op == WOp::FMul ? FpOp::Mul
                                   : FpOp::Div;
      E.fpArith(O, 8, XMM0, XMM1);
      pushFrom(XMM0, WType::F64);
      return true;
    }
    case WOp::FLt:
    case WOp::FGt: {
      popTo(XMM1);
      popTo(XMM0);
      if (I.Op == WOp::FLt)
        E.ucomis(8, XMM1, XMM0); // swapped: lt via above
      else
        E.ucomis(8, XMM0, XMM1);
      E.setcc(Cond::A, RAX);
      E.movzxRR(1, RAX, RAX);
      pushFrom(RAX, WType::I32);
      return true;
    }
    case WOp::I32WrapI64: {
      popTo(RAX);
      E.movzxRR(4, RAX, RAX);
      pushFrom(RAX, WType::I32);
      return true;
    }
    case WOp::I64ExtendI32S: {
      popTo(RAX);
      E.movsxRR(4, RAX, RAX);
      pushFrom(RAX, WType::I64);
      return true;
    }
    case WOp::I64ExtendI32U: {
      popTo(RAX);
      E.movzxRR(4, RAX, RAX);
      pushFrom(RAX, WType::I64);
      return true;
    }
    case WOp::F64ConvertI64S: {
      popTo(RAX);
      E.cvtsi2fp(8, 8, XMM0, RAX);
      pushFrom(XMM0, WType::F64);
      return true;
    }
    case WOp::I64TruncF64S: {
      popTo(XMM0);
      E.cvtfp2si(8, 8, RAX, XMM0);
      pushFrom(RAX, WType::I64);
      return true;
    }
    case WOp::LoadI32:
    case WOp::LoadI64:
    case WOp::LoadF64:
    case WOp::LoadU8: {
      popTo(RAX);
      E.leaSym(RCX, MemSym);
      E.aluRR(AluOp::Add, 8, RCX, RAX);
      Mem M(RCX, static_cast<i32>(I.ImmI));
      if (I.Op == WOp::LoadF64) {
        E.fpLoad(8, XMM0, M);
        pushFrom(XMM0, WType::F64);
      } else if (I.Op == WOp::LoadI64) {
        E.load(8, RAX, M);
        pushFrom(RAX, WType::I64);
      } else if (I.Op == WOp::LoadI32) {
        E.loadZext(4, RAX, M);
        pushFrom(RAX, WType::I32);
      } else {
        E.loadZext(1, RAX, M);
        pushFrom(RAX, WType::I32);
      }
      return true;
    }
    case WOp::StoreI32:
    case WOp::StoreI64:
    case WOp::StoreF64:
    case WOp::StoreU8: {
      if (I.Op == WOp::StoreF64)
        popTo(XMM0);
      else
        popTo(RDX);
      popTo(RAX);
      E.leaSym(RCX, MemSym);
      E.aluRR(AluOp::Add, 8, RCX, RAX);
      Mem M(RCX, static_cast<i32>(I.ImmI));
      if (I.Op == WOp::StoreF64)
        E.fpStore(8, M, XMM0);
      else if (I.Op == WOp::StoreI64)
        E.store(8, M, RDX);
      else if (I.Op == WOp::StoreI32)
        E.store(4, M, RDX);
      else
        E.store(1, M, RDX);
      return true;
    }
    case WOp::Call: {
      const WFunc &Callee = W.Funcs[I.Idx];
      static constexpr AsmReg GPArg[6] = {RDI, RSI, RDX, RCX, R8, R9};
      u32 NGP = 0, NFP = 0;
      for (WType T : Callee.Params)
        (T == WType::F64 ? NFP : NGP) += 1;
      assert(NGP <= 6 && NFP <= 8 && "winch subset: register args only");
      u32 GP = NGP, FP = NFP;
      for (size_t A = Callee.Params.size(); A-- > 0;) {
        if (Callee.Params[A] == WType::F64)
          popTo(AsmReg(16 + --FP));
        else
          popTo(GPArg[--GP]);
      }
      E.callSym(FuncSyms[I.Idx]);
      if (Callee.HasRet)
        pushFrom(Callee.Ret == WType::F64 ? XMM0 : RAX, Callee.Ret);
      return true;
    }
    }
    return false;
  }
};

} // namespace

bool tpde::wasm::compileWinch(const WModule &W, Assembler &Asm) {
  return WinchCompiler(W, Asm).run();
}
