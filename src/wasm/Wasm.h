//===- wasm/Wasm.h - Mini-WebAssembly substrate -----------------*- C++ -*-===//
///
/// \file
/// A compact WebAssembly-like substrate for the paper's §6 case study
/// (Wasmtime/Cranelift). Modules contain functions with typed locals and a
/// structured stack bytecode (blocks/loops/br_if), plus one linear memory.
/// Two consumers exist:
///
///  * translateToTir(): builds SSA IR from the bytecode, creating phis for
///    every local live at a control-flow join — deliberately including
///    redundant ones, mirroring the paper's observation that Wasmtime's
///    CLIF translation "already constructs SSA form for all variables ...
///    and produces many trivially removable phi nodes" (§6.2.2). The
///    translated IR plays the role of CLIF (block parameters ≙ phis).
///  * compileWinch(): a direct single-pass stack-machine compiler
///    standing in for Wasmtime's Winch baseline (no IR translation).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_WASM_WASM_H
#define TPDE_WASM_WASM_H

#include "asmx/Assembler.h"
#include "support/Common.h"
#include "tir/TIR.h"

#include <string>
#include <vector>

namespace tpde::wasm {

enum class WType : u8 { I32, I64, F64 };

enum class WOp : u8 {
  // Control (structured).
  Block, Loop, End, Br, BrIf, Return,
  // Locals and constants.
  LocalGet, LocalSet, LocalTee, ConstI, ConstF,
  // Integer arithmetic (operates at the type of the operands).
  Add, Sub, Mul, DivS, DivU, RemU, And, Or, Xor, Shl, ShrS, ShrU,
  Eq, Ne, LtS, LtU, GtS, GeS, LeS,
  Eqz,
  // Float arithmetic.
  FAdd, FSub, FMul, FDiv, FLt, FGt,
  // Conversions.
  I32WrapI64, I64ExtendI32S, I64ExtendI32U, F64ConvertI64S, I64TruncF64S,
  // Memory (flat linear memory; immediate byte offset).
  LoadI32, LoadI64, LoadF64, LoadU8,
  StoreI32, StoreI64, StoreF64, StoreU8,
  // Calls.
  Call,
};

/// One bytecode instruction; immediates depend on the opcode.
struct WInst {
  WOp Op;
  WType Ty = WType::I64;
  u32 Idx = 0;  ///< local index / call target / branch depth
  u64 ImmI = 0; ///< integer constant / memory offset
  double ImmF = 0;
};

struct WFunc {
  std::string Name;
  std::vector<WType> Params;
  std::vector<WType> Locals; ///< additional locals (zero-initialized)
  WType Ret = WType::I64;
  bool HasRet = true;
  std::vector<WInst> Body;
};

struct WModule {
  std::vector<WFunc> Funcs;
  u64 MemoryBytes = 1 << 20;

  u32 findFunc(std::string_view Name) const {
    for (u32 I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == Name)
        return I;
    return ~0u;
  }
};

/// Small builder for writing kernels by hand.
class WBuilder {
public:
  explicit WBuilder(WFunc &F) : F(F) {}
  WBuilder &op(WOp O, WType T = WType::I64) {
    F.Body.push_back(WInst{O, T, 0, 0, 0});
    return *this;
  }
  WBuilder &local(WOp O, u32 Idx) {
    F.Body.push_back(WInst{O, WType::I64, Idx, 0, 0});
    return *this;
  }
  WBuilder &consti(i64 V, WType T = WType::I64) {
    F.Body.push_back(WInst{WOp::ConstI, T, 0, static_cast<u64>(V), 0});
    return *this;
  }
  WBuilder &constf(double V) {
    F.Body.push_back(WInst{WOp::ConstF, WType::F64, 0, 0, V});
    return *this;
  }
  WBuilder &mem(WOp O, u64 Off, WType T = WType::I64) {
    F.Body.push_back(WInst{O, T, 0, Off, 0});
    return *this;
  }
  WBuilder &br(WOp O, u32 Depth) {
    F.Body.push_back(WInst{O, WType::I64, Depth, 0, 0});
    return *this;
  }
  WBuilder &call(u32 FuncIdx) {
    F.Body.push_back(WInst{WOp::Call, WType::I64, FuncIdx, 0, 0});
    return *this;
  }

private:
  WFunc &F;
};

/// Translates the module into TIR (the CLIF stand-in), including the
/// linear memory as a global. The returned module contains one function
/// per wasm function plus the memory global named "wasm_memory".
/// \p TranslateMs (optional) receives the translation time.
bool translateToTir(const WModule &W, tir::Module &Out);

/// Winch stand-in: compiles the wasm module DIRECTLY to x86-64 without
/// any IR translation, using a stack-machine discipline (operand stack
/// spilled to the native stack, fixed scratch registers).
bool compileWinch(const WModule &W, asmx::Assembler &Asm);

} // namespace tpde::wasm

#endif // TPDE_WASM_WASM_H
