//===- wasm/Workloads.h - PolyBench/Sightglass-like wasm kernels -*- C++ -*-===//
///
/// \file
/// The paper's §6 evaluation uses three Sightglass benchmarks and all of
/// PolyBench compiled to WebAssembly. SPEC-quality originals are not
/// available offline, so this module regenerates the workloads: the
/// PolyBench kernels are re-implemented with the same loop nests directly
/// in the wasm substrate, and the three Sightglass programs are replaced
/// by structurally similar byte-processing/interpreter kernels.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_WASM_WORKLOADS_H
#define TPDE_WASM_WORKLOADS_H

#include "wasm/Wasm.h"

namespace tpde::wasm {

struct NamedModule {
  const char *Name;
  WModule Module;
};

/// Builds all benchmark modules. Every module exports a function "kernel"
/// with signature i64(i64, i64) returning a checksum.
std::vector<NamedModule> wasmBenchModules();

} // namespace tpde::wasm

#endif // TPDE_WASM_WORKLOADS_H
