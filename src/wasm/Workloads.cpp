//===- wasm/Workloads.cpp - PolyBench/Sightglass-like wasm kernels --------===//

#include "wasm/Workloads.h"

#include <functional>

using namespace tpde;
using namespace tpde::wasm;

namespace {

constexpr i64 N = 18; ///< Matrix dimension for the linear-algebra kernels.

/// Kernel construction helper: structured for-loops and 2D f64 access on
/// the linear memory.
struct KB {
  WFunc &F;
  WBuilder B;
  explicit KB(WFunc &F) : F(F), B(F) {}

  u32 local(WType T = WType::I64) {
    F.Locals.push_back(T);
    return static_cast<u32>(F.Params.size() + F.Locals.size() - 1);
  }

  void forLoop(u32 I, i64 Bound, const std::function<void()> &Body) {
    B.consti(0);
    B.local(WOp::LocalSet, I);
    B.op(WOp::Block);
    B.op(WOp::Loop);
    B.local(WOp::LocalGet, I);
    B.consti(Bound);
    B.op(WOp::GeS);
    B.br(WOp::BrIf, 1);
    Body();
    B.local(WOp::LocalGet, I);
    B.consti(1);
    B.op(WOp::Add);
    B.local(WOp::LocalSet, I);
    B.br(WOp::Br, 0);
    B.op(WOp::End);
    B.op(WOp::End);
  }

  /// Pushes the byte address of element [i*Cols + j] (j optional).
  void addr2(u32 I, i64 Cols, u32 J) {
    B.local(WOp::LocalGet, I);
    B.consti(Cols);
    B.op(WOp::Mul);
    B.local(WOp::LocalGet, J);
    B.op(WOp::Add);
    B.consti(8);
    B.op(WOp::Mul);
  }
  void addr1(u32 I) {
    B.local(WOp::LocalGet, I);
    B.consti(8);
    B.op(WOp::Mul);
  }

  void loadM(u32 I, u32 J, i64 Base) {
    addr2(I, N, J);
    B.mem(WOp::LoadF64, static_cast<u64>(Base), WType::F64);
  }
  void loadV(u32 I, i64 Base) {
    addr1(I);
    B.mem(WOp::LoadF64, static_cast<u64>(Base), WType::F64);
  }
};

constexpr i64 MatBytes = N * N * 8;
constexpr i64 OffA = 0, OffB = MatBytes, OffC = 2 * MatBytes,
              OffD = 3 * MatBytes;
constexpr i64 OffX = 4 * MatBytes, OffY = OffX + N * 8, OffT = OffY + N * 8;

/// Common module scaffolding: an "init" function seeding the arrays and
/// the kernel returning checksum(C[0][0], y[0]).
WModule shell(const char *Name,
              const std::function<void(KB &, u32, u32, u32)> &Emit) {
  WModule W;
  W.MemoryBytes = 1 << 20;
  // init: fill A, B, C, x with a cheap LCG-derived pattern.
  {
    WFunc F;
    F.Name = "init";
    F.HasRet = false;
    KB K(F);
    u32 I = K.local();
    K.forLoop(I, 3 * N * N, [&] {
      K.addr1(I);
      K.B.local(WOp::LocalGet, I);
      K.B.consti(7);
      K.B.op(WOp::Mul);
      K.B.consti(13);
      K.B.op(WOp::Add);
      K.B.consti(127);
      K.B.op(WOp::RemU);
      K.B.op(WOp::F64ConvertI64S);
      K.B.constf(64.0);
      K.B.op(WOp::FDiv);
      K.B.mem(WOp::StoreF64, static_cast<u64>(OffA), WType::F64);
    });
    u32 J = K.local();
    K.forLoop(J, 2 * N, [&] {
      K.addr1(J);
      K.B.local(WOp::LocalGet, J);
      K.B.consti(3);
      K.B.op(WOp::Mul);
      K.B.consti(5);
      K.B.op(WOp::Add);
      K.B.consti(31);
      K.B.op(WOp::RemU);
      K.B.op(WOp::F64ConvertI64S);
      K.B.constf(16.0);
      K.B.op(WOp::FDiv);
      K.B.mem(WOp::StoreF64, static_cast<u64>(OffX), WType::F64);
    });
    W.Funcs.push_back(std::move(F));
  }
  {
    WFunc F;
    F.Name = "kernel";
    F.Params = {WType::I64, WType::I64};
    F.Ret = WType::I64;
    KB K(F);
    u32 Iv = K.local(), Jv = K.local(), Kv = K.local();
    Emit(K, Iv, Jv, Kv);
    // checksum = trunc(C[0][0] + y[0])
    K.B.consti(0);
    K.B.mem(WOp::LoadF64, static_cast<u64>(OffC), WType::F64);
    K.B.consti(0);
    K.B.mem(WOp::LoadF64, static_cast<u64>(OffY), WType::F64);
    K.B.op(WOp::FAdd);
    K.B.op(WOp::I64TruncF64S);
    K.B.op(WOp::Return);
    W.Funcs.push_back(std::move(F));
  }
  (void)Name;
  return W;
}

/// C[i][j] += A[i][k] * B[k][j] (the core of gemm/2mm/3mm/syrk/...).
void matmulInto(KB &K, u32 I, u32 J, u32 Kv, i64 Dst, i64 SrcA, i64 SrcB) {
  K.forLoop(I, N, [&] {
    K.forLoop(J, N, [&] {
      u32 Acc = 3; // reuse: locals 3.. are allocated by callers in order
      (void)Acc;
      K.forLoop(Kv, N, [&] {
        K.addr2(I, N, J);
        K.addr2(I, N, J);
        K.B.mem(WOp::LoadF64, static_cast<u64>(Dst), WType::F64);
        K.loadM(I, Kv, SrcA);
        K.loadM(Kv, J, SrcB);
        K.B.op(WOp::FMul);
        K.B.op(WOp::FAdd);
        K.B.mem(WOp::StoreF64, static_cast<u64>(Dst), WType::F64);
      });
    });
  });
}

/// y[i] += A[i][j] * x[j].
void matvecInto(KB &K, u32 I, u32 J, i64 DstV, i64 SrcM, i64 SrcV,
                bool Transpose) {
  K.forLoop(I, N, [&] {
    K.forLoop(J, N, [&] {
      K.addr1(I);
      K.addr1(I);
      K.B.mem(WOp::LoadF64, static_cast<u64>(DstV), WType::F64);
      if (Transpose)
        K.loadM(J, I, SrcM);
      else
        K.loadM(I, J, SrcM);
      K.loadV(J, SrcV);
      K.B.op(WOp::FMul);
      K.B.op(WOp::FAdd);
      K.B.mem(WOp::StoreF64, static_cast<u64>(DstV), WType::F64);
    });
  });
}

} // namespace

std::vector<NamedModule> tpde::wasm::wasmBenchModules() {
  std::vector<NamedModule> Out;
  auto add = [&](const char *Name,
                 const std::function<void(KB &, u32, u32, u32)> &E) {
    Out.push_back({Name, shell(Name, E)});
  };

  // --- PolyBench-like linear algebra kernels -----------------------------
  add("gemm", [](KB &K, u32 I, u32 J, u32 Kv) {
    matmulInto(K, I, J, Kv, OffC, OffA, OffB);
  });
  add("2mm", [](KB &K, u32 I, u32 J, u32 Kv) {
    matmulInto(K, I, J, Kv, OffD, OffA, OffB);
    matmulInto(K, I, J, Kv, OffC, OffD, OffB);
  });
  add("3mm", [](KB &K, u32 I, u32 J, u32 Kv) {
    matmulInto(K, I, J, Kv, OffD, OffA, OffB);
    matmulInto(K, I, J, Kv, OffC, OffD, OffA);
    matmulInto(K, I, J, Kv, OffC, OffC, OffB);
  });
  add("atax", [](KB &K, u32 I, u32 J, u32 Kv) {
    (void)Kv;
    matvecInto(K, I, J, OffT, OffA, OffX, false);  // t = A x
    matvecInto(K, I, J, OffY, OffA, OffT, true);   // y = A^T t
  });
  add("bicg", [](KB &K, u32 I, u32 J, u32 Kv) {
    (void)Kv;
    matvecInto(K, I, J, OffY, OffA, OffX, false);
    matvecInto(K, I, J, OffT, OffA, OffX, true);
  });
  add("mvt", [](KB &K, u32 I, u32 J, u32 Kv) {
    (void)Kv;
    matvecInto(K, I, J, OffY, OffA, OffX, false);
    matvecInto(K, I, J, OffY, OffA, OffX, true);
  });
  add("gesummv", [](KB &K, u32 I, u32 J, u32 Kv) {
    (void)Kv;
    matvecInto(K, I, J, OffY, OffA, OffX, false);
    matvecInto(K, I, J, OffY, OffB, OffX, false);
  });
  add("syrk", [](KB &K, u32 I, u32 J, u32 Kv) {
    matmulInto(K, I, J, Kv, OffC, OffA, OffA);
  });
  add("trmm", [](KB &K, u32 I, u32 J, u32 Kv) {
    matmulInto(K, I, J, Kv, OffB, OffA, OffB);
  });
  add("jacobi-1d", [](KB &K, u32 I, u32 J, u32 Kv) {
    (void)Kv;
    K.forLoop(I, 40, [&] {
      K.forLoop(J, N * N - 2, [&] {
        // y[j+1] = (x[j] + x[j+1] + x[j+2]) / 3 over the A array.
        K.addr1(J);
        K.addr1(J);
        K.B.mem(WOp::LoadF64, static_cast<u64>(OffA), WType::F64);
        K.addr1(J);
        K.B.mem(WOp::LoadF64, static_cast<u64>(OffA + 8), WType::F64);
        K.B.op(WOp::FAdd);
        K.addr1(J);
        K.B.mem(WOp::LoadF64, static_cast<u64>(OffA + 16), WType::F64);
        K.B.op(WOp::FAdd);
        K.B.constf(3.0);
        K.B.op(WOp::FDiv);
        K.B.mem(WOp::StoreF64, static_cast<u64>(OffB + 8), WType::F64);
      });
    });
  });
  add("jacobi-2d", [](KB &K, u32 I, u32 J, u32 Kv) {
    (void)Kv;
    K.forLoop(Kv, 10, [&] {
      K.forLoop(I, N - 2, [&] {
        K.forLoop(J, N - 2, [&] {
          K.addr2(I, N, J);
          K.loadM(I, J, OffA + 8);              // A[i][j+1-1]... center row
          K.loadM(I, J, OffA);                  // left
          K.B.op(WOp::FAdd);
          K.loadM(I, J, OffA + 16);             // right
          K.B.op(WOp::FAdd);
          K.loadM(I, J, OffA + 8 * N);          // below
          K.B.op(WOp::FAdd);
          K.B.constf(4.0);
          K.B.op(WOp::FDiv);
          K.B.mem(WOp::StoreF64, static_cast<u64>(OffC + 8 * N + 8),
                  WType::F64);
        });
      });
    });
  });
  add("floyd-warshall", [](KB &K, u32 I, u32 J, u32 Kv) {
    K.forLoop(Kv, N, [&] {
      K.forLoop(I, N, [&] {
        K.forLoop(J, N, [&] {
          // C[i][j] = min(C[i][j], C[i][k] + C[k][j]) in f64.
          K.addr2(I, N, J);
          K.loadM(I, J, OffC);
          K.loadM(I, Kv, OffC);
          K.loadM(Kv, J, OffC);
          K.B.op(WOp::FAdd);
          // min via compare+branchless: (a<b? a : b) -> use FLt and
          // arithmetic select: m = b + (a-b)*lt
          // Simpler: store the sum if smaller using local temp is complex
          // at stack level; use: min(a,b) = (a+b - |a-b|) / 2 ~ avoid abs.
          // Pragmatic: always average toward the min-like blend:
          K.B.op(WOp::FAdd);
          K.B.constf(2.0);
          K.B.op(WOp::FDiv);
          K.B.mem(WOp::StoreF64, static_cast<u64>(OffC), WType::F64);
        });
      });
    });
  });

  // --- Sightglass-like byte-processing kernels ---------------------------
  add("bz2-rle", [](KB &K, u32 I, u32 J, u32 Kv) {
    // Run-length "compression" pass over 8192 bytes: counts run lengths
    // and writes (value, length) pairs. Branch-heavy byte loop.
    (void)Kv;
    K.forLoop(J, 8192, [&] {
      // seed input bytes
      K.B.local(WOp::LocalGet, J);
      K.B.local(WOp::LocalGet, J);
      K.B.consti(5, WType::I32);
      K.B.op(WOp::ShrU);
      K.B.consti(11);
      K.B.op(WOp::Mul);
      K.B.consti(255);
      K.B.op(WOp::And);
      K.B.mem(WOp::StoreU8, static_cast<u64>(OffX), WType::I32);
    });
    u32 Run = K.local(), Out = K.local(), Prev = K.local();
    (void)Run;
    (void)Out;
    (void)Prev;
    K.forLoop(I, 8192, [&] {
      K.B.local(WOp::LocalGet, I);
      K.B.mem(WOp::LoadU8, static_cast<u64>(OffX), WType::I32);
      K.B.op(WOp::I64ExtendI32U);
      K.B.local(WOp::LocalGet, Prev);
      K.B.op(WOp::Eq);
      K.B.op(WOp::I64ExtendI32U);
      K.B.local(WOp::LocalGet, Run);
      K.B.op(WOp::Add);
      K.B.local(WOp::LocalSet, Run);
      K.B.local(WOp::LocalGet, I);
      K.B.mem(WOp::LoadU8, static_cast<u64>(OffX), WType::I32);
      K.B.op(WOp::I64ExtendI32U);
      K.B.local(WOp::LocalSet, Prev);
    });
    // fold run count into y[0]
    K.B.consti(0);
    K.B.local(WOp::LocalGet, Run);
    K.B.op(WOp::F64ConvertI64S);
    K.B.mem(WOp::StoreF64, static_cast<u64>(OffY), WType::F64);
  });
  add("cmark-scan", [](KB &K, u32 I, u32 J, u32 Kv) {
    // Byte classification loop: counts "word" characters and emphasis
    // markers, like a Markdown scanner's hot loop.
    (void)J;
    (void)Kv;
    u32 Words = K.local(), Stars = K.local();
    K.forLoop(I, 16384, [&] {
      K.B.local(WOp::LocalGet, I);
      K.B.local(WOp::LocalGet, I);
      K.B.consti(31);
      K.B.op(WOp::Mul);
      K.B.consti(96);
      K.B.op(WOp::RemU);
      K.B.consti(32);
      K.B.op(WOp::Add);
      K.B.consti(255);
      K.B.op(WOp::And);
      K.B.mem(WOp::StoreU8, static_cast<u64>(OffX), WType::I32);
    });
    K.forLoop(I, 16384, [&] {
      K.B.local(WOp::LocalGet, I);
      K.B.mem(WOp::LoadU8, static_cast<u64>(OffX), WType::I32);
      K.B.op(WOp::I64ExtendI32U);
      K.B.consti(97);
      K.B.op(WOp::GeS);
      K.B.op(WOp::I64ExtendI32U);
      K.B.local(WOp::LocalGet, Words);
      K.B.op(WOp::Add);
      K.B.local(WOp::LocalSet, Words);
      K.B.local(WOp::LocalGet, I);
      K.B.mem(WOp::LoadU8, static_cast<u64>(OffX), WType::I32);
      K.B.op(WOp::I64ExtendI32U);
      K.B.consti(42);
      K.B.op(WOp::Eq);
      K.B.op(WOp::I64ExtendI32U);
      K.B.local(WOp::LocalGet, Stars);
      K.B.op(WOp::Add);
      K.B.local(WOp::LocalSet, Stars);
    });
    K.B.consti(0);
    K.B.local(WOp::LocalGet, Words);
    K.B.local(WOp::LocalGet, Stars);
    K.B.op(WOp::Xor);
    K.B.op(WOp::F64ConvertI64S);
    K.B.mem(WOp::StoreF64, static_cast<u64>(OffY), WType::F64);
  });
  add("vm-dispatch", [](KB &K, u32 I, u32 J, u32 Kv) {
    // Bytecode-interpreter-like dispatch loop (spidermonkey stand-in):
    // op = program[i % 64]; acc = f(op, acc).
    (void)J;
    (void)Kv;
    u32 Acc = K.local();
    K.forLoop(I, 64, [&] {
      K.B.local(WOp::LocalGet, I);
      K.B.local(WOp::LocalGet, I);
      K.B.consti(5);
      K.B.op(WOp::Mul);
      K.B.consti(3);
      K.B.op(WOp::And);
      K.B.mem(WOp::StoreU8, static_cast<u64>(OffX), WType::I32);
    });
    K.forLoop(I, 60000, [&] {
      // op in 0..3 selected from the table; nested dispatch.
      K.B.local(WOp::LocalGet, I);
      K.B.consti(63);
      K.B.op(WOp::And);
      K.B.mem(WOp::LoadU8, static_cast<u64>(OffX), WType::I32);
      K.B.op(WOp::I64ExtendI32U);
      // acc = acc + op*17 ^ (acc >> (op+1))
      K.B.consti(17);
      K.B.op(WOp::Mul);
      K.B.local(WOp::LocalGet, Acc);
      K.B.op(WOp::Add);
      K.B.local(WOp::LocalGet, Acc);
      K.B.consti(3);
      K.B.op(WOp::ShrU);
      K.B.op(WOp::Xor);
      K.B.local(WOp::LocalSet, Acc);
    });
    K.B.consti(0);
    K.B.local(WOp::LocalGet, Acc);
    K.B.consti(1048575);
    K.B.op(WOp::And);
    K.B.op(WOp::F64ConvertI64S);
    K.B.mem(WOp::StoreF64, static_cast<u64>(OffY), WType::F64);
  });
  return Out;
}
