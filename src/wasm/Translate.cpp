//===- wasm/Translate.cpp - Wasm to TIR (CLIF stand-in) translation -------===//

#include "wasm/Wasm.h"
#include "tir/Builder.h"

using namespace tpde;
using namespace tpde::tir;
using namespace tpde::wasm;

namespace {

Type tirType(WType T) {
  switch (T) {
  case WType::I32:
    return Type::I32;
  case WType::I64:
    return Type::I64;
  case WType::F64:
    return Type::F64;
  }
  TPDE_UNREACHABLE("bad wasm type");
}

class FuncTranslator {
public:
  FuncTranslator(const WModule &W, const WFunc &F, Module &M, u32 MemGlobal)
      : W(W), F(F), B(M, F.Name, F.HasRet ? tirType(F.Ret) : Type::Void,
                      paramTypes(F)),
        MemGlobal(MemGlobal) {}

  static std::vector<Type> paramTypes(const WFunc &F) {
    std::vector<Type> Out;
    for (WType T : F.Params)
      Out.push_back(tirType(T));
    return Out;
  }

  bool run() {
    BlockRef Entry = B.addBlock("entry");
    B.setInsertPoint(Entry);
    MemBase = B.globalAddr(MemGlobal);
    // Locals: params then zero-initialized extras; full SSA from the
    // start (this is what Wasmtime's translation does and what produces
    // the redundant phis the paper mentions).
    for (u32 I = 0; I < F.Params.size(); ++I) {
      Locals.push_back(B.arg(I));
      LocalTys.push_back(F.Params[I]);
    }
    for (WType T : F.Locals) {
      Locals.push_back(zeroOf(T));
      LocalTys.push_back(T);
    }
    Unreachable = false;
    for (const WInst &I : F.Body)
      if (!translate(I))
        return false;
    if (!Unreachable) {
      if (F.HasRet)
        B.ret(pop());
      else
        B.ret();
    }
    B.finish();
    return Ctrl.empty() || true;
  }

private:
  const WModule &W;
  const WFunc &F;
  FunctionBuilder B;
  u32 MemGlobal;
  ValRef MemBase{};
  std::vector<ValRef> Locals;
  std::vector<WType> LocalTys;
  std::vector<ValRef> Stack;
  bool Unreachable = false;

  struct CtrlFrame {
    bool IsLoop;
    /// Branch target: loop header or block end.
    BlockRef Target;
    /// One phi per local at the target.
    std::vector<ValRef> TargetPhis;
    bool EndReachable = false; ///< Some edge reaches the end block.
  };
  std::vector<CtrlFrame> Ctrl;

  ValRef zeroOf(WType T) {
    if (T == WType::F64)
      return B.constF64(0);
    return B.constInt(tirType(T), 0);
  }

  void push(ValRef V) { Stack.push_back(V); }
  ValRef pop() {
    assert(!Stack.empty() && "wasm stack underflow");
    ValRef V = Stack.back();
    Stack.pop_back();
    return V;
  }

  /// Adds the current locals as incomings to the frame's target phis.
  void feedPhis(CtrlFrame &Fr, BlockRef From) {
    for (u32 I = 0; I < Locals.size(); ++I)
      B.addPhiIncoming(Fr.TargetPhis[I], From, Locals[I]);
  }

  CtrlFrame makeFrame(bool IsLoop) {
    CtrlFrame Fr;
    Fr.IsLoop = IsLoop;
    BlockRef Save = B.insertPoint();
    Fr.Target = B.addBlock(IsLoop ? "loop" : "block_end");
    B.setInsertPoint(Fr.Target);
    for (u32 I = 0; I < Locals.size(); ++I)
      Fr.TargetPhis.push_back(B.phi(tirType(LocalTys[I])));
    B.setInsertPoint(Save);
    return Fr;
  }

  bool translate(const WInst &I) {
    if (Unreachable && I.Op != WOp::End)
      return true; // skip dead code until the structure closes
    switch (I.Op) {
    case WOp::Block: {
      Ctrl.push_back(makeFrame(/*IsLoop=*/false));
      return true;
    }
    case WOp::Loop: {
      CtrlFrame Fr = makeFrame(/*IsLoop=*/true);
      // Entry edge into the loop header.
      feedPhis(Fr, B.insertPoint());
      B.br(Fr.Target);
      B.setInsertPoint(Fr.Target);
      for (u32 I2 = 0; I2 < Locals.size(); ++I2)
        Locals[I2] = Fr.TargetPhis[I2];
      Ctrl.push_back(std::move(Fr));
      return true;
    }
    case WOp::End: {
      if (Ctrl.empty())
        return true;
      CtrlFrame Fr = std::move(Ctrl.back());
      Ctrl.pop_back();
      if (Fr.IsLoop) {
        // Falling off a loop simply continues; the header phis got their
        // incomings from the entry edge and every back branch. If the
        // body ended with the back branch, everything following is only
        // reachable through branches to enclosing blocks, so the
        // unreachable state must persist until their End.
        return true;
      }
      // Block: fallthrough edge joins the break edges at the end block.
      if (!Unreachable) {
        feedPhis(Fr, B.insertPoint());
        B.br(Fr.Target);
        Fr.EndReachable = true;
      }
      B.setInsertPoint(Fr.Target);
      if (!Fr.EndReachable) {
        // No edge reaches here; still terminate the block for validity.
        B.unreachable();
        Unreachable = true;
        return true;
      }
      for (u32 I2 = 0; I2 < Locals.size(); ++I2)
        Locals[I2] = Fr.TargetPhis[I2];
      Unreachable = false;
      return true;
    }
    case WOp::Br:
    case WOp::BrIf: {
      assert(Stack.size() == (I.Op == WOp::BrIf ? 1u : 0u) &&
             "subset: empty operand stack at branches");
      CtrlFrame &Fr = Ctrl[Ctrl.size() - 1 - I.Idx];
      if (I.Op == WOp::Br) {
        feedPhis(Fr, B.insertPoint());
        if (!Fr.IsLoop)
          Fr.EndReachable = true;
        B.br(Fr.Target);
        Unreachable = true;
        return true;
      }
      ValRef C32 = pop();
      ValRef Cond = B.icmp(ICmp::Ne, C32, zeroOf(WType::I32));
      BlockRef Cont = B.addBlock("brif_cont");
      feedPhis(Fr, B.insertPoint());
      if (!Fr.IsLoop)
        Fr.EndReachable = true;
      B.condBr(Cond, Fr.Target, Cont);
      B.setInsertPoint(Cont);
      return true;
    }
    case WOp::Return: {
      if (F.HasRet)
        B.ret(pop());
      else
        B.ret();
      Unreachable = true;
      return true;
    }
    case WOp::LocalGet:
      push(Locals[I.Idx]);
      return true;
    case WOp::LocalSet:
      Locals[I.Idx] = pop();
      return true;
    case WOp::LocalTee:
      Locals[I.Idx] = Stack.back();
      return true;
    case WOp::ConstI:
      push(B.constInt(tirType(I.Ty), I.ImmI));
      return true;
    case WOp::ConstF:
      push(B.constF64(I.ImmF));
      return true;
    case WOp::Add:
    case WOp::Sub:
    case WOp::Mul:
    case WOp::DivS:
    case WOp::DivU:
    case WOp::RemU:
    case WOp::And:
    case WOp::Or:
    case WOp::Xor:
    case WOp::Shl:
    case WOp::ShrS:
    case WOp::ShrU: {
      ValRef R = pop(), L = pop();
      Op O = I.Op == WOp::Add    ? Op::Add
             : I.Op == WOp::Sub  ? Op::Sub
             : I.Op == WOp::Mul  ? Op::Mul
             : I.Op == WOp::DivS ? Op::SDiv
             : I.Op == WOp::DivU ? Op::UDiv
             : I.Op == WOp::RemU ? Op::URem
             : I.Op == WOp::And  ? Op::And
             : I.Op == WOp::Or   ? Op::Or
             : I.Op == WOp::Xor  ? Op::Xor
             : I.Op == WOp::Shl  ? Op::Shl
             : I.Op == WOp::ShrS ? Op::AShr
                                 : Op::LShr;
      push(B.binop(O, L, R));
      return true;
    }
    case WOp::Eq:
    case WOp::Ne:
    case WOp::LtS:
    case WOp::LtU:
    case WOp::GtS:
    case WOp::GeS:
    case WOp::LeS: {
      ValRef R = pop(), L = pop();
      ICmp P = I.Op == WOp::Eq    ? ICmp::Eq
               : I.Op == WOp::Ne  ? ICmp::Ne
               : I.Op == WOp::LtS ? ICmp::Slt
               : I.Op == WOp::LtU ? ICmp::Ult
               : I.Op == WOp::GtS ? ICmp::Sgt
               : I.Op == WOp::GeS ? ICmp::Sge
                                  : ICmp::Sle;
      push(B.cast(Op::Zext, Type::I32, B.icmp(P, L, R)));
      return true;
    }
    case WOp::Eqz: {
      ValRef V = pop();
      push(B.cast(Op::Zext, Type::I32,
                  B.icmp(ICmp::Eq, V,
                         B.constInt(B.func().val(V).Ty, 0))));
      return true;
    }
    case WOp::FAdd:
    case WOp::FSub:
    case WOp::FMul:
    case WOp::FDiv: {
      ValRef R = pop(), L = pop();
      Op O = I.Op == WOp::FAdd   ? Op::FAdd
             : I.Op == WOp::FSub ? Op::FSub
             : I.Op == WOp::FMul ? Op::FMul
                                 : Op::FDiv;
      push(B.binop(O, L, R));
      return true;
    }
    case WOp::FLt:
    case WOp::FGt: {
      ValRef R = pop(), L = pop();
      push(B.cast(Op::Zext, Type::I32,
                  B.fcmp(I.Op == WOp::FLt ? FCmp::Olt : FCmp::Ogt, L, R)));
      return true;
    }
    case WOp::I32WrapI64:
      push(B.cast(Op::Trunc, Type::I32, pop()));
      return true;
    case WOp::I64ExtendI32S:
      push(B.cast(Op::Sext, Type::I64, pop()));
      return true;
    case WOp::I64ExtendI32U:
      push(B.cast(Op::Zext, Type::I64, pop()));
      return true;
    case WOp::F64ConvertI64S:
      push(B.cast(Op::SiToFp, Type::F64, pop()));
      return true;
    case WOp::I64TruncF64S:
      push(B.cast(Op::FpToSi, Type::I64, pop()));
      return true;
    case WOp::LoadI32:
    case WOp::LoadI64:
    case WOp::LoadF64:
    case WOp::LoadU8: {
      ValRef Addr = pop();
      ValRef P = B.ptrAdd(MemBase, Addr, 1, static_cast<i64>(I.ImmI));
      Type Ty = I.Op == WOp::LoadI32   ? Type::I32
                : I.Op == WOp::LoadI64 ? Type::I64
                : I.Op == WOp::LoadF64 ? Type::F64
                                       : Type::I8;
      ValRef V = B.load(Ty, P);
      if (I.Op == WOp::LoadU8)
        V = B.cast(Op::Zext, Type::I32, V);
      push(V);
      return true;
    }
    case WOp::StoreI32:
    case WOp::StoreI64:
    case WOp::StoreF64:
    case WOp::StoreU8: {
      ValRef V = pop();
      ValRef Addr = pop();
      ValRef P = B.ptrAdd(MemBase, Addr, 1, static_cast<i64>(I.ImmI));
      if (I.Op == WOp::StoreU8)
        V = B.cast(Op::Trunc, Type::I8, V);
      B.store(V, P);
      return true;
    }
    case WOp::Call: {
      const WFunc &Callee = W.Funcs[I.Idx];
      std::vector<ValRef> Args(Callee.Params.size());
      for (size_t A = Callee.Params.size(); A-- > 0;)
        Args[A] = pop();
      ValRef R = B.call(I.Idx,
                        Callee.HasRet ? tirType(Callee.Ret) : Type::Void,
                        Args);
      if (Callee.HasRet)
        push(R);
      return true;
    }
    }
    return false;
  }
};

} // namespace

bool tpde::wasm::translateToTir(const WModule &W, tir::Module &Out) {
  u32 Mem = addGlobal(Out, "wasm_memory", W.MemoryBytes, 16);
  for (const WFunc &F : W.Funcs) {
    FuncTranslator T(W, F, Out, Mem);
    if (!T.run())
      return false;
  }
  return true;
}
