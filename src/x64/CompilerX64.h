//===- x64/CompilerX64.h - x86-64 target mixin for TPDE ---------*- C++ -*-===//
///
/// \file
/// The architecture-specific part of the TPDE framework for x86-64
/// (SysV ABI), composed as a CRTP mixin between CompilerBase and the
/// IR-specific instruction compilers (paper §3.1.4). It provides:
///
///  * the register bank configuration (16 GP + 16 SSE),
///  * prologue/epilogue generation with end-of-function patching: the
///    frame size and callee-saved register saves/restores are only known
///    after register allocation finishes, so placeholder space is reserved
///    and padded with NOPs (paper §3.4.2),
///  * SysV argument/return assignment and full call sequence generation,
///  * the spill/reload/move primitives the framework core requires.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_X64_COMPILERX64_H
#define TPDE_X64_COMPILERX64_H

#include "core/CompilerBase.h"
#include "x64/Encoder.h"

#include <span>

namespace tpde::x64 {

/// Register bank configuration for x86-64. Ids 0-15 are RAX..R15 (bank 0),
/// 16-31 are XMM0..XMM15 (bank 1). RSP/RBP are reserved.
struct X64Config {
  static constexpr u8 NumBanks = 2;
  static constexpr u8 RegsPerBank = 16;
  static constexpr u8 regId(u8 Bank, u8 Idx) { return Bank * 16 + Idx; }
  static constexpr u8 bankOf(u8 Id) { return Id >> 4; }
  static constexpr u8 idxOf(u8 Id) { return Id & 15; }
  static constexpr u32 Allocatable[2] = {0xFFFF & ~((1u << 4) | (1u << 5)),
                                         0xFFFF};
  static constexpr u32 CalleeSaved[2] = {
      (1u << 3) | (1u << 12) | (1u << 13) | (1u << 14) | (1u << 15), 0};
  /// Callee-saved registers without special purpose, usable as fixed
  /// registers for loop values (§3.4.5); RBX stays general.
  static constexpr u32 FixedRegPool[2] = {
      (1u << 12) | (1u << 13) | (1u << 14) | (1u << 15), 0};
  /// Save area for rbx, r12-r15 below the frame pointer.
  static constexpr u32 CalleeSaveAreaSize = 40;
};

inline AsmReg ax(core::Reg R) { return AsmReg(R.Id); }

/// SysV AMD64 argument assignment.
class CCAssignerSysV {
public:
  struct Loc {
    bool InReg = false;
    u8 RegId = 0xFF;
    i32 StackOff = 0;
  };

  /// Assigns all parts of one value. Multi-part values go either entirely
  /// to registers or entirely to the stack.
  void assignValue(const u8 *Banks, u8 NumParts, Loc *Out) {
    u8 NeedGP = 0, NeedFP = 0;
    for (u8 P = 0; P < NumParts; ++P)
      (Banks[P] == 0 ? NeedGP : NeedFP) += 1;
    if (GPUsed + NeedGP <= 6 && FPUsed + NeedFP <= 8) {
      for (u8 P = 0; P < NumParts; ++P) {
        Out[P].InReg = true;
        if (Banks[P] == 0)
          Out[P].RegId = GPArgRegs[GPUsed++];
        else
          Out[P].RegId = static_cast<u8>(16 + FPUsed++);
      }
      return;
    }
    if (NumParts > 1)
      StackBytes = static_cast<u32>(alignTo(StackBytes, 16));
    for (u8 P = 0; P < NumParts; ++P) {
      Out[P].InReg = false;
      Out[P].StackOff = static_cast<i32>(StackBytes);
      StackBytes += 8;
    }
  }

  u8 fpRegsUsed() const { return FPUsed; }
  u32 stackBytes() const { return StackBytes; }

  static constexpr u8 GPArgRegs[6] = {7, 6, 2, 1, 8, 9}; // rdi,rsi,rdx,rcx,r8,r9
  static constexpr u8 GPRetRegs[2] = {0, 2};             // rax, rdx
  static constexpr u8 FPRetRegs[2] = {16, 17};           // xmm0, xmm1

private:
  u8 GPUsed = 0, FPUsed = 0;
  u32 StackBytes = 0;
};

template <core::IRAdapter Adapter, typename Derived>
class CompilerX64 : public core::CompilerBase<Adapter, Derived, X64Config> {
public:
  using Base = core::CompilerBase<Adapter, Derived, X64Config>;
  using ValRef = typename Adapter::ValRef;
  using ValuePartRef = typename Base::ValuePartRef;
  using PendingMove = typename Base::PendingMove;
  using Base::derived;

  CompilerX64(Adapter &A, asmx::Assembler &Asm) : Base(A, Asm), E(Asm) {}

  Emitter E;

  // =====================================================================
  // Primitives required by CompilerBase. Spill slots are always accessed
  // with the full 8 bytes so register contents round-trip bit-exactly.
  // =====================================================================

  void emitMoveRR(u8 Bank, u32 Size, core::Reg Dst, core::Reg Src) {
    if (Bank == 0)
      E.movRR(8, ax(Dst), ax(Src));
    else
      E.fpMovRR(8, ax(Dst), ax(Src));
  }
  void emitSlotStore(u8 Bank, u32 Size, i32 Off, core::Reg Src) {
    if (Bank == 0)
      E.store(8, Mem(RBP, Off), ax(Src));
    else
      E.fpStore(8, Mem(RBP, Off), ax(Src));
  }
  void emitSlotLoad(u8 Bank, u32 Size, core::Reg Dst, i32 Off) {
    if (Bank == 0)
      E.load(8, ax(Dst), Mem(RBP, Off));
    else
      E.fpLoad(8, ax(Dst), Mem(RBP, Off));
  }
  void emitJumpLabel(asmx::Label L) { E.jmpLabel(L); }

  // =====================================================================
  // Prologue / epilogue with end-of-function patching (§3.4.2)
  // =====================================================================

  void beginFunc(asmx::SymRef Sym) {
    asmx::Section &T = this->Asm.text();
    T.alignToBoundary(16);
    FuncStart = T.size();
    this->Asm.defineSymbol(Sym, asmx::SecKind::Text, FuncStart, 0);
    E.push(RBP);
    E.movRR(8, RBP, RSP);
    // sub rsp, imm32 (always the 32-bit form so it can be patched).
    T.appendByte(0x48);
    T.appendByte(0x81);
    T.appendByte(0xEC);
    FramePatchOff = T.size();
    T.appendLE<u32>(0);
    // Placeholder for callee-saved register saves, patched at the end.
    SaveAreaOff = T.size();
    E.nops(SaveRestoreBytes);
    RestoreAreaOffs.clear();
  }

  /// Emits an epilogue: placeholder restores, then `leave; ret`.
  void emitEpilogue() {
    RestoreAreaOffs.push_back(E.offset());
    E.nops(SaveRestoreBytes);
    this->Asm.text().appendByte(0xC9); // leave
    E.ret();
  }

  void finishFunc(asmx::SymRef Sym) {
    asmx::Section &T = this->Asm.text();
    this->Asm.setSymbolSize(Sym, T.size() - FuncStart);
    u32 FrameSize = static_cast<u32>(
        alignTo(static_cast<u64>(-this->Frame.lowWaterMark()), 16));
    T.patchLE<u32>(FramePatchOff, FrameSize);

    // Fill the save/restore areas with actual instructions for the
    // callee-saved registers that were used; pad the rest with NOPs. The
    // scratch assemblers are members reset (not freed) per function.
    u32 CSRMask = this->UsedCalleeSaved[0] & X64Config::CalleeSaved[0];
    asmx::Assembler &TmpSave = SaveScratchAsm, &TmpRestore = RestoreScratchAsm;
    TmpSave.reset();
    TmpRestore.reset();
    Emitter SaveE(TmpSave), RestoreE(TmpRestore);
    for (u32 M = CSRMask; M;) {
      u8 Idx = static_cast<u8>(countTrailingZeros(M));
      M &= M - 1;
      SaveE.store(8, Mem(RBP, csrSlotOff(Idx)), AsmReg(Idx));
      RestoreE.load(8, AsmReg(Idx), Mem(RBP, csrSlotOff(Idx)));
    }
    assert(TmpSave.text().size() <= SaveRestoreBytes && "save area overflow");
    SaveE.nops(SaveRestoreBytes - static_cast<unsigned>(TmpSave.text().size()));
    RestoreE.nops(SaveRestoreBytes -
                  static_cast<unsigned>(TmpRestore.text().size()));
    std::copy(TmpSave.text().Data.begin(), TmpSave.text().Data.end(),
              T.Data.begin() + SaveAreaOff);
    for (u64 Off : RestoreAreaOffs)
      std::copy(TmpRestore.text().Data.begin(), TmpRestore.text().Data.end(),
                T.Data.begin() + Off);
    derived()->emitUnwindInfo(Sym, FuncStart, T.size());
  }

  /// Default: no unwind info; overridden/extended by users that need it.
  void emitUnwindInfo(asmx::SymRef, u64, u64) {}

  /// Frame-pointer-relative slot of a callee-saved register.
  static i32 csrSlotOff(u8 Idx) {
    switch (Idx) {
    case 3:
      return -8; // rbx
    case 12:
      return -16;
    case 13:
      return -24;
    case 14:
      return -32;
    case 15:
      return -40;
    }
    TPDE_UNREACHABLE("not a callee-saved register");
  }

  // =====================================================================
  // Arguments (SysV)
  // =====================================================================

  void setupArguments() {
    CCAssignerSysV CC;
    for (ValRef V : this->A.funcArgs()) {
      u32 VN = this->A.valNumber(V);
      this->ensureAssignment(V, VN);
      core::Assignment &As = this->Assigns[VN];
      u8 Banks[core::Assignment::MaxParts];
      CCAssignerSysV::Loc Locs[core::Assignment::MaxParts];
      for (u8 P = 0; P < As.PartCount; ++P)
        Banks[P] = this->A.valPartBank(V, P);
      CC.assignValue(Banks, As.PartCount, Locs);
      for (u8 P = 0; P < As.PartCount; ++P) {
        if (Locs[P].InReg) {
          core::Reg R(Locs[P].RegId);
          this->Regs.markUsed(R, VN, P);
          As.Parts[P].RegId = R.Id;
        } else {
          // Incoming stack slot: [rbp + 16 + off]; parts are consecutive.
          if (P == 0)
            As.FrameOff = 16 + Locs[P].StackOff;
          As.Parts[P].Flags |= core::ValuePart::StackValid;
        }
      }
      if (As.RefCount == 0)
        this->freeValue(VN);
    }
  }

  // =====================================================================
  // Calls (SysV)
  // =====================================================================

  /// Generates a complete call sequence: argument assignment and moves
  /// (parallel-move safe), caller-saved spilling, stack arguments, the
  /// call itself, and result binding. \p Result may be null for void.
  void genCall(asmx::SymRef Callee, std::span<const ValRef> Args,
               const ValRef *Result, bool Vararg = false) {
    CCAssignerSysV CC;
    auto &Places = CallPlaces; // scratch member (docs/PERF.md)
    Places.clear();
    for (ValRef V : Args) {
      u8 N = static_cast<u8>(this->A.valPartCount(V));
      u8 Banks[core::Assignment::MaxParts];
      CCAssignerSysV::Loc Locs[core::Assignment::MaxParts];
      for (u8 P = 0; P < N; ++P)
        Banks[P] = this->A.valPartBank(V, P);
      CC.assignValue(Banks, N, Locs);
      for (u8 P = 0; P < N; ++P)
        Places.push_back(Place{V, P, Locs[P], Banks[P]});
    }

    // 1. All dirty caller-saved registers holding values must be spilled:
    //    the call clobbers them.
    this->forEachOwnedReg([&](core::Reg R, u32 VN, u8 Part) {
      if (isCallerSaved(R))
        this->spillPart(VN, Part);
    });

    // 2. Stack arguments.
    u32 StackBytes = static_cast<u32>(alignTo(CC.stackBytes(), 16));
    if (StackBytes)
      E.aluRI(AluOp::Sub, 8, RSP, StackBytes);
    for (Place &P : Places) {
      if (P.L.InReg)
        continue;
      ValuePartRef Ref = this->valRef(P.V, P.Part);
      core::Reg R = Ref.asReg();
      if (P.Bank == 0)
        E.store(8, Mem(RSP, P.L.StackOff), ax(R));
      else
        E.fpStore(8, Mem(RSP, P.L.StackOff), ax(R));
    }

    // 3. Register arguments as a parallel move set.
    u32 ArgRegMask[2] = {0, 0};
    for (const Place &P : Places)
      if (P.L.InReg)
        ArgRegMask[X64Config::bankOf(P.L.RegId)] |=
            u32(1) << X64Config::idxOf(P.L.RegId);
    auto &Moves = CallMoves;
    auto &Holds = CallHolds;
    Moves.clear();
    Holds.clear();
    for (Place &P : Places) {
      if (!P.L.InReg)
        continue;
      ValuePartRef Ref = this->valRef(P.V, P.Part);
      Ref.lockReg();
      PendingMove Mv;
      Mv.Dst = core::MoveLoc::reg(core::Reg(P.L.RegId));
      Mv.Src = Ref.loc();
      Mv.SrcVal = P.V;
      Mv.SrcPart = P.Part;
      Mv.Bank = P.Bank;
      Moves.push_back(Mv);
      Holds.push_back(std::move(Ref));
    }
    // Evict argument registers whose current holders are not move sources.
    for (u8 Bank = 0; Bank < 2; ++Bank) {
      for (u32 M = ArgRegMask[Bank]; M;) {
        u8 Idx = static_cast<u8>(countTrailingZeros(M));
        M &= M - 1;
        core::Reg R(X64Config::regId(Bank, Idx));
        if (this->Regs.isUsed(R) && !this->Regs.isLocked(R))
          this->evictSpecific(R);
      }
    }
    std::array<u32, 2> Allow = {~ArgRegMask[0], ~ArgRegMask[1]};
    this->resolveParallelMoves(Moves, Allow);
    Holds.clear(); // unlock sources, consume uses

    // 4. Clear every caller-saved association (clobbered by the call).
    this->forEachOwnedReg([&](core::Reg R, u32 VN, u8 Part) {
      if (!isCallerSaved(R))
        return;
      core::ValuePart &VP = this->Assigns[VN].Parts[Part];
      assert((VP.stackValid() || this->Assigns[VN].RefCount == 0) &&
             "live value lost across call");
      VP.RegId = 0xFF;
      this->Regs.markFree(R);
    });

    // 5. Variadic calls pass the number of vector registers in AL.
    if (Vararg)
      E.movRI(RAX, CC.fpRegsUsed());

    E.callSym(Callee);
    if (StackBytes)
      E.aluRI(AluOp::Add, 8, RSP, StackBytes);

    // 6. Bind results (rax/rdx, xmm0/xmm1).
    if (Result) {
      ValRef RV = *Result;
      u32 VN = this->A.valNumber(RV);
      this->ensureAssignment(RV, VN);
      core::Assignment &As = this->Assigns[VN];
      if (As.RefCount != 0) {
        u8 GPUsed = 0, FPUsed = 0;
        for (u8 P = 0; P < As.PartCount; ++P) {
          u8 Bank = this->A.valPartBank(RV, P);
          core::Reg RetR(Bank == 0 ? CCAssignerSysV::GPRetRegs[GPUsed++]
                                   : CCAssignerSysV::FPRetRegs[FPUsed++]);
          if (As.Parts[P].isFixed()) {
            emitMoveRR(Bank, 8, core::Reg(As.Parts[P].RegId), RetR);
            As.Parts[P].Flags &= ~core::ValuePart::StackValid;
          } else {
            this->Regs.markUsed(RetR, VN, P);
            As.Parts[P].RegId = RetR.Id;
            As.Parts[P].Flags &= ~core::ValuePart::StackValid;
          }
        }
      }
    }
  }

  /// Moves the (optional) return value into the SysV return registers and
  /// emits an epilogue.
  void emitReturn(const ValRef *RetVal) {
    if (RetVal) {
      u8 N = static_cast<u8>(this->A.valPartCount(*RetVal));
      auto &Moves = CallMoves;
      auto &Holds = CallHolds;
      Moves.clear();
      Holds.clear();
      u8 GPUsed = 0, FPUsed = 0;
      u32 RetMask[2] = {0, 0};
      for (u8 P = 0; P < N; ++P) {
        ValuePartRef Ref = this->valRef(*RetVal, P);
        u8 Bank = Ref.bank();
        u8 RegId = Bank == 0 ? CCAssignerSysV::GPRetRegs[GPUsed++]
                             : CCAssignerSysV::FPRetRegs[FPUsed++];
        RetMask[Bank] |= u32(1) << X64Config::idxOf(RegId);
        Ref.lockReg();
        PendingMove Mv;
        Mv.Dst = core::MoveLoc::reg(core::Reg(RegId));
        Mv.Src = Ref.loc();
        Mv.SrcVal = *RetVal;
        Mv.SrcPart = P;
        Mv.Bank = Bank;
        Moves.push_back(Mv);
        Holds.push_back(std::move(Ref));
      }
      std::array<u32, 2> Allow = {~RetMask[0], ~RetMask[1]};
      this->resolveParallelMoves(Moves, Allow);
      Holds.clear();
    }
    emitEpilogue();
  }

  static bool isCallerSaved(core::Reg R) {
    u8 Bank = X64Config::bankOf(R.Id);
    u32 Bit = u32(1) << X64Config::idxOf(R.Id);
    return (X64Config::Allocatable[Bank] & Bit) &&
           !(X64Config::CalleeSaved[Bank] & Bit);
  }

protected:
  static constexpr unsigned SaveRestoreBytes = 20;
  u64 FuncStart = 0;
  u64 FramePatchOff = 0;
  u64 SaveAreaOff = 0;
  std::vector<u64> RestoreAreaOffs;

  struct Place {
    ValRef V;
    u8 Part;
    CCAssignerSysV::Loc L;
    u8 Bank;
  };
  // Per-call scratch, reused across calls/functions (docs/PERF.md).
  support::SmallVector<Place, 16> CallPlaces;
  typename Base::MoveVec CallMoves;
  support::SmallVector<ValuePartRef, 16> CallHolds;
  // Prologue/epilogue patching scratch (finishFunc).
  asmx::Assembler SaveScratchAsm, RestoreScratchAsm;
};

} // namespace tpde::x64

#endif // TPDE_X64_COMPILERX64_H
