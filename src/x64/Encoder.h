//===- x64/Encoder.h - x86-64 instruction encoder ---------------*- C++ -*-===//
///
/// \file
/// A fast, direct x86-64 machine code encoder. The TPDE paper deliberately
/// avoids LLVM-MC ("due to its subpar performance", §4.1.3); this encoder
/// plays the role of TPDE's in-house assembler: every method appends the
/// final instruction bytes to the text section with no intermediate
/// representation.
///
/// Register numbering: general-purpose registers are 0..15 (RAX..R15),
/// SSE registers are 16..31 (XMM0..XMM15). The upper nibble doubles as the
/// register-bank index used by the framework's register allocator.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_X64_ENCODER_H
#define TPDE_X64_ENCODER_H

// tpde-lint: hot-path -- per-function compile loop; the zero-allocation
// policy (docs/PERF.md) is machine-enforced here by scripts/tpde_lint.py.

#include "asmx/Assembler.h"
#include "support/Common.h"

namespace tpde::x64 {

/// A machine register handle (GP bank 0: ids 0-15, FP bank 1: ids 16-31).
struct AsmReg {
  u8 Id = 0xFF;
  constexpr AsmReg() = default;
  constexpr AsmReg(u8 Id) : Id(Id) {}
  constexpr bool isValid() const { return Id != 0xFF; }
  /// Register bank: 0 = general purpose, 1 = SSE.
  constexpr u8 bank() const { return Id >> 4; }
  /// Index within the bank (hardware encoding 0-15).
  constexpr u8 hw() const { return Id & 15; }
  constexpr bool operator==(const AsmReg &O) const { return Id == O.Id; }
};

// Canonical register ids.
inline constexpr AsmReg RAX{0}, RCX{1}, RDX{2}, RBX{3}, RSP{4}, RBP{5},
    RSI{6}, RDI{7}, R8{8}, R9{9}, R10{10}, R11{11}, R12{12}, R13{13}, R14{14},
    R15{15};
inline constexpr AsmReg XMM0{16}, XMM1{17}, XMM2{18}, XMM3{19}, XMM4{20},
    XMM5{21}, XMM6{22}, XMM7{23}, XMM8{24}, XMM9{25}, XMM10{26}, XMM11{27},
    XMM12{28}, XMM13{29}, XMM14{30}, XMM15{31};
inline constexpr AsmReg NoReg{};

/// A memory operand: [Base + Index*Scale + Disp].
struct Mem {
  AsmReg Base = NoReg;
  AsmReg Index = NoReg;
  u8 Scale = 1; // 1, 2, 4, or 8
  i32 Disp = 0;

  constexpr Mem() = default;
  constexpr Mem(AsmReg Base, i32 Disp = 0) : Base(Base), Disp(Disp) {}
  constexpr Mem(AsmReg Base, AsmReg Index, u8 Scale, i32 Disp)
      : Base(Base), Index(Index), Scale(Scale), Disp(Disp) {}
};

/// x86 condition codes (the encoding value is the opcode low nibble).
enum class Cond : u8 {
  O = 0x0,
  NO = 0x1,
  B = 0x2, // unsigned <
  AE = 0x3, // unsigned >=
  E = 0x4,
  NE = 0x5,
  BE = 0x6, // unsigned <=
  A = 0x7, // unsigned >
  S = 0x8,
  NS = 0x9,
  P = 0xA,
  NP = 0xB,
  L = 0xC, // signed <
  GE = 0xD, // signed >=
  LE = 0xE, // signed <=
  G = 0xF, // signed >
};

/// Returns the negated condition (used for branch inversion).
inline Cond invert(Cond C) {
  return static_cast<Cond>(static_cast<u8>(C) ^ 1);
}

/// The two-operand ALU family sharing one encoding scheme.
enum class AluOp : u8 {
  Add = 0,
  Or = 1,
  Adc = 2,
  Sbb = 3,
  And = 4,
  Sub = 5,
  Xor = 6,
  Cmp = 7,
};

/// Shift/rotate family (the value is the /digit of group 2).
enum class ShiftOp : u8 { Rol = 0, Ror = 1, Shl = 4, Shr = 5, Sar = 7 };

/// Scalar SSE arithmetic family (the value is the final opcode byte).
enum class FpOp : u8 {
  Add = 0x58,
  Mul = 0x59,
  Sub = 0x5C,
  Min = 0x5D,
  Div = 0x5E,
  Max = 0x5F,
  Sqrt = 0x51,
};

/// Appends x86-64 instructions to the text section of an Assembler.
///
/// All integer operations take an operand size in bytes (1, 2, 4, or 8);
/// scalar FP operations take 4 (float) or 8 (double).
class Emitter {
public:
  explicit Emitter(asmx::Assembler &A) : A(A), T(A.text()) {}

  asmx::Assembler &assembler() { return A; }
  u64 offset() const { return T.size(); }

  // --- Integer moves ----------------------------------------------------
  void movRR(u8 Sz, AsmReg Dst, AsmReg Src);
  /// Materializes an immediate with the shortest usable encoding. A 32-bit
  /// operand size zero-extends; 8 with a value needing 64 bits uses movabs.
  void movRI(AsmReg Dst, u64 Imm);
  void load(u8 Sz, AsmReg Dst, Mem M);           // plain mov (4/8 bytes)
  void loadZext(u8 Sz, AsmReg Dst, Mem M);       // movzx for 1/2, mov else
  void loadSext(u8 Sz, AsmReg Dst, Mem M);       // movsx to 64 bits
  void store(u8 Sz, Mem M, AsmReg Src);
  void storeImm(u8 Sz, Mem M, i32 Imm);
  void movzxRR(u8 SrcSz, AsmReg Dst, AsmReg Src); // 1/2/4 -> 8
  void movsxRR(u8 SrcSz, AsmReg Dst, AsmReg Src); // 1/2/4 -> 8
  void lea(AsmReg Dst, Mem M);
  void xchgRR(u8 Sz, AsmReg A, AsmReg B);

  // --- Integer arithmetic -----------------------------------------------
  void aluRR(AluOp Op, u8 Sz, AsmReg Dst, AsmReg Src);
  void aluRI(AluOp Op, u8 Sz, AsmReg Dst, i64 Imm);
  void aluRM(AluOp Op, u8 Sz, AsmReg Dst, Mem M);
  void testRR(u8 Sz, AsmReg A, AsmReg B);
  void testRI(u8 Sz, AsmReg R, i32 Imm);
  void imulRR(u8 Sz, AsmReg Dst, AsmReg Src);     // Sz >= 2
  void imulRRI(u8 Sz, AsmReg Dst, AsmReg Src, i32 Imm);
  void mulR(u8 Sz, AsmReg Src);                   // rdx:rax = rax * src
  void imulR(u8 Sz, AsmReg Src);
  void divR(u8 Sz, AsmReg Src);                   // unsigned divide
  void idivR(u8 Sz, AsmReg Src);
  void cwd(u8 Sz);                                // cwd/cdq/cqo
  void negR(u8 Sz, AsmReg R);
  void notR(u8 Sz, AsmReg R);
  void shiftRI(ShiftOp Op, u8 Sz, AsmReg R, u8 Imm);
  void shiftRC(ShiftOp Op, u8 Sz, AsmReg R);      // count in CL
  void shldRRC(u8 Sz, AsmReg Dst, AsmReg Src);    // count in CL
  void shrdRRC(u8 Sz, AsmReg Dst, AsmReg Src);
  void shldRRI(u8 Sz, AsmReg Dst, AsmReg Src, u8 Imm);
  void shrdRRI(u8 Sz, AsmReg Dst, AsmReg Src, u8 Imm);
  void bsr(u8 Sz, AsmReg Dst, AsmReg Src);
  void bsf(u8 Sz, AsmReg Dst, AsmReg Src);
  void popcnt(u8 Sz, AsmReg Dst, AsmReg Src);

  // --- Flags and conditionals --------------------------------------------
  void setcc(Cond C, AsmReg Dst8);
  void cmovcc(Cond C, u8 Sz, AsmReg Dst, AsmReg Src); // Sz >= 2

  // --- Control flow -------------------------------------------------------
  void jmpLabel(asmx::Label L);
  void jccLabel(Cond C, asmx::Label L);
  void jmpReg(AsmReg R);
  void callSym(asmx::SymRef S);
  void callReg(AsmReg R);
  void ret();
  void ud2();
  void push(AsmReg R);
  void pop(AsmReg R);
  /// Emits \p N bytes of NOP using the recommended multi-byte forms.
  void nops(unsigned N);

  // --- RIP-relative addressing -------------------------------------------
  /// lea Dst, [rip + Sym + Addend]
  void leaSym(AsmReg Dst, asmx::SymRef S, i64 Addend = 0);
  /// mov Dst, [rip + Sym]
  void loadSym(u8 Sz, AsmReg Dst, asmx::SymRef S, i64 Addend = 0);
  /// movss/movsd Dst, [rip + Sym]
  void fpLoadSym(u8 Sz, AsmReg Dst, asmx::SymRef S, i64 Addend = 0);

  // --- Scalar SSE ----------------------------------------------------------
  void fpMovRR(u8 Sz, AsmReg Dst, AsmReg Src);     // movaps-based copy
  void fpLoad(u8 Sz, AsmReg Dst, Mem M);           // movss/movsd
  void fpStore(u8 Sz, Mem M, AsmReg Src);
  void fpArith(FpOp Op, u8 Sz, AsmReg Dst, AsmReg Src);
  void fpArithMem(FpOp Op, u8 Sz, AsmReg Dst, Mem M);
  void ucomis(u8 Sz, AsmReg A, AsmReg B);
  void xorps(AsmReg Dst, AsmReg Src);
  void cvtsi2fp(u8 IntSz, u8 FpSz, AsmReg Dst, AsmReg Src); // int -> fp
  void cvtfp2si(u8 FpSz, u8 IntSz, AsmReg Dst, AsmReg Src); // truncating
  void cvtfp2fp(u8 SrcSz, AsmReg Dst, AsmReg Src);          // ss<->sd
  void movdToFp(u8 Sz, AsmReg Dst, AsmReg Src);   // GP -> XMM bit copy
  void movdFromFp(u8 Sz, AsmReg Dst, AsmReg Src); // XMM -> GP bit copy

  // --- Raw access (prologue patching etc.) --------------------------------
  asmx::Section &textSection() { return T; }

private:
  // --- Batched emission -------------------------------------------------
  // Every instruction reserves its maximum encoded length once (begin),
  // writes raw bytes through the cursor (put*), and commits the final
  // length (commit): one bounds check per instruction instead of one per
  // byte (see support::ByteBuffer).
  void begin(size_t MaxBytes = 24) {
    assert(!P && "instruction already in progress");
    P = T.writeCursor(MaxBytes);
  }
  void commit() {
    T.commitCursor(P);
    P = nullptr;
  }
  /// Section offset of the cursor (valid between begin and commit).
  u64 off() const { return T.cursorOffset(P); }
  void put(u8 B) { *P++ = B; }
  template <typename V> void putLE(V Val) {
    static_assert(std::is_integral_v<V>);
    for (unsigned I = 0; I < sizeof(V); ++I)
      *P++ = static_cast<u8>(static_cast<u64>(Val) >> (8 * I));
  }

  void opSizePrefix(u8 Sz) {
    if (Sz == 2)
      put(0x66);
  }
  /// Emits a REX prefix if required. \p RegId/\p IdxId/\p BaseId are full
  /// register ids (0xFF if absent); \p Force8 handles SPL/BPL/SIL/DIL.
  void rex(bool W, u8 RegId, u8 IdxId, u8 BaseId, bool Force = false);
  static bool rex8Needed(AsmReg R) { return R.bank() == 0 && R.hw() >= 4; }
  void modRMReg(u8 RegField, u8 RmReg);
  void modRMMem(u8 RegField, const Mem &M);
  /// Emits mod=00 rm=101 (RIP-relative) with a PC32 relocation for S.
  void modRMRip(u8 RegField, asmx::SymRef S, i64 Addend);

  asmx::Assembler &A;
  asmx::Section &T;
  u8 *P = nullptr; ///< Pending-instruction write cursor.
};

} // namespace tpde::x64

#endif // TPDE_X64_ENCODER_H
