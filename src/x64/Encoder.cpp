//===- x64/Encoder.cpp - x86-64 instruction encoder ----------------------===//
//
// Every public method batches its instruction bytes through the section
// write cursor (Emitter::begin/put/commit): space for the longest possible
// encoding is reserved up front, bytes are raw stores, and the final
// length is committed once — one bounds check per instruction.
//
//===----------------------------------------------------------------------===//

#include "x64/Encoder.h"

using namespace tpde;
using namespace tpde::asmx;
using namespace tpde::x64;

void Emitter::rex(bool W, u8 RegId, u8 IdxId, u8 BaseId, bool Force) {
  u8 Rex = 0x40;
  if (W)
    Rex |= 0x08;
  if (RegId != 0xFF && (RegId & 0x8))
    Rex |= 0x04;
  if (IdxId != 0xFF && (IdxId & 0x8))
    Rex |= 0x02;
  if (BaseId != 0xFF && (BaseId & 0x8))
    Rex |= 0x01;
  if (Rex != 0x40 || Force)
    put(Rex);
}

void Emitter::modRMReg(u8 RegField, u8 RmReg) {
  put(0xC0 | ((RegField & 7) << 3) | (RmReg & 7));
}

void Emitter::modRMMem(u8 RegField, const Mem &M) {
  const u8 Reg = (RegField & 7) << 3;
  if (!M.Base.isValid() && !M.Index.isValid()) {
    // Absolute 32-bit address: mod=00, rm=100, SIB base=101 index=100.
    put(Reg | 0x04);
    put(0x25);
    putLE<i32>(M.Disp);
    return;
  }
  if (!M.Base.isValid()) {
    // Index-only: mod=00 rm=100, SIB with base=101 forces disp32.
    assert(M.Index.hw() != 4 && "RSP cannot be an index register");
    u8 ScaleBits = M.Scale == 1 ? 0 : M.Scale == 2 ? 1 : M.Scale == 4 ? 2 : 3;
    put(Reg | 0x04);
    put(static_cast<u8>((ScaleBits << 6) | ((M.Index.hw() & 7) << 3) | 0x05));
    putLE<i32>(M.Disp);
    return;
  }

  const u8 BaseLow = M.Base.hw() & 7;
  const bool NeedSib = M.Index.isValid() || BaseLow == 4;
  // RBP/R13 as base cannot use the no-displacement form.
  u8 Mod;
  if (M.Disp == 0 && BaseLow != 5)
    Mod = 0x00;
  else if (isInt8(M.Disp))
    Mod = 0x40;
  else
    Mod = 0x80;

  if (!NeedSib) {
    put(Mod | Reg | BaseLow);
  } else {
    assert((!M.Index.isValid() || M.Index.hw() != 4) &&
           "RSP cannot be an index register");
    u8 ScaleBits = M.Scale == 1 ? 0 : M.Scale == 2 ? 1 : M.Scale == 4 ? 2 : 3;
    u8 IdxLow = M.Index.isValid() ? (M.Index.hw() & 7) : 4;
    put(Mod | Reg | 0x04);
    put(static_cast<u8>((ScaleBits << 6) | (IdxLow << 3) | BaseLow));
  }
  if (Mod == 0x40)
    put(static_cast<u8>(M.Disp));
  else if (Mod == 0x80)
    putLE<i32>(M.Disp);
}

void Emitter::modRMRip(u8 RegField, SymRef S, i64 Addend) {
  put(((RegField & 7) << 3) | 0x05);
  u64 Off = off();
  putLE<i32>(0);
  // P points at the displacement field; the CPU adds from the end of the
  // instruction, which for all our uses is the end of the 4 disp bytes.
  A.addReloc(SecKind::Text, Off, RelocKind::PC32, S, Addend - 4);
}

// --- Integer moves -------------------------------------------------------

void Emitter::movRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Dst.bank() == 0 && Src.bank() == 0 && "GP registers expected");
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && (rex8Needed(Dst) || rex8Needed(Src));
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id, F8);
  put(Sz == 1 ? 0x88 : 0x89);
  modRMReg(Src.Id, Dst.Id);
  commit();
}

void Emitter::movRI(AsmReg Dst, u64 Imm) {
  begin();
  if (isUInt32(Imm)) {
    // mov r32, imm32 zero-extends to the full register.
    rex(false, 0xFF, 0xFF, Dst.Id);
    put(0xB8 | (Dst.hw() & 7));
    putLE<u32>(static_cast<u32>(Imm));
  } else if (isInt32(static_cast<i64>(Imm))) {
    rex(true, 0, 0xFF, Dst.Id);
    put(0xC7);
    modRMReg(0, Dst.Id);
    putLE<i32>(static_cast<i32>(Imm));
  } else {
    rex(true, 0xFF, 0xFF, Dst.Id);
    put(0xB8 | (Dst.hw() & 7));
    putLE<u64>(Imm);
  }
  commit();
}

void Emitter::load(u8 Sz, AsmReg Dst, Mem M) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Dst);
  rex(Sz == 8, Dst.Id, M.Index.Id, M.Base.Id, F8);
  put(Sz == 1 ? 0x8A : 0x8B);
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::loadZext(u8 Sz, AsmReg Dst, Mem M) {
  if (Sz >= 4) {
    load(Sz, Dst, M);
    return;
  }
  begin();
  rex(false, Dst.Id, M.Index.Id, M.Base.Id);
  put(0x0F);
  put(Sz == 1 ? 0xB6 : 0xB7);
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::loadSext(u8 Sz, AsmReg Dst, Mem M) {
  if (Sz == 8) {
    load(8, Dst, M);
    return;
  }
  begin();
  rex(true, Dst.Id, M.Index.Id, M.Base.Id);
  if (Sz == 4) {
    put(0x63); // movsxd
  } else {
    put(0x0F);
    put(Sz == 1 ? 0xBE : 0xBF);
  }
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::store(u8 Sz, Mem M, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, Src.Id, M.Index.Id, M.Base.Id, F8);
  put(Sz == 1 ? 0x88 : 0x89);
  modRMMem(Src.Id, M);
  commit();
}

void Emitter::storeImm(u8 Sz, Mem M, i32 Imm) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, 0, M.Index.Id, M.Base.Id);
  put(Sz == 1 ? 0xC6 : 0xC7);
  modRMMem(0, M);
  if (Sz == 1)
    put(static_cast<u8>(Imm));
  else if (Sz == 2)
    putLE<i16>(static_cast<i16>(Imm));
  else
    putLE<i32>(Imm);
  commit();
}

void Emitter::movzxRR(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  begin();
  if (SrcSz == 4) {
    // mov r32, r32 zero-extends.
    rex(false, Src.Id, 0xFF, Dst.Id);
    put(0x89);
    modRMReg(Src.Id, Dst.Id);
  } else {
    bool F8 = SrcSz == 1 && rex8Needed(Src);
    rex(false, Dst.Id, 0xFF, Src.Id, F8);
    put(0x0F);
    put(SrcSz == 1 ? 0xB6 : 0xB7);
    modRMReg(Dst.Id, Src.Id);
  }
  commit();
}

void Emitter::movsxRR(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  begin();
  bool F8 = SrcSz == 1 && rex8Needed(Src);
  rex(true, Dst.Id, 0xFF, Src.Id, F8);
  if (SrcSz == 4) {
    put(0x63);
  } else {
    put(0x0F);
    put(SrcSz == 1 ? 0xBE : 0xBF);
  }
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::lea(AsmReg Dst, Mem M) {
  begin();
  rex(true, Dst.Id, M.Index.Id, M.Base.Id);
  put(0x8D);
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::xchgRR(u8 Sz, AsmReg RegA, AsmReg RegB) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, RegA.Id, 0xFF, RegB.Id);
  put(Sz == 1 ? 0x86 : 0x87);
  modRMReg(RegA.Id, RegB.Id);
  commit();
}

// --- Integer arithmetic ----------------------------------------------------

static u8 aluBase(AluOp Op) { return static_cast<u8>(Op) << 3; }

void Emitter::aluRR(AluOp Op, u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && (rex8Needed(Dst) || rex8Needed(Src));
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id, F8);
  put(aluBase(Op) + (Sz == 1 ? 0x00 : 0x01));
  modRMReg(Src.Id, Dst.Id);
  commit();
}

void Emitter::aluRI(AluOp Op, u8 Sz, AsmReg Dst, i64 Imm) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Dst);
  rex(Sz == 8, 0, 0xFF, Dst.Id, F8);
  u8 Digit = static_cast<u8>(Op);
  if (Sz == 1) {
    put(0x80);
    modRMReg(Digit, Dst.Id);
    put(static_cast<u8>(Imm));
  } else if (isInt8(Imm)) {
    put(0x83);
    modRMReg(Digit, Dst.Id);
    put(static_cast<u8>(Imm));
  } else {
    put(0x81);
    modRMReg(Digit, Dst.Id);
    if (Sz == 2) {
      putLE<i16>(static_cast<i16>(Imm));
    } else {
      assert(isInt32(Imm) && "ALU immediate exceeds 32 bits");
      putLE<i32>(static_cast<i32>(Imm));
    }
  }
  commit();
}

void Emitter::aluRM(AluOp Op, u8 Sz, AsmReg Dst, Mem M) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Dst);
  rex(Sz == 8, Dst.Id, M.Index.Id, M.Base.Id, F8);
  put(aluBase(Op) + (Sz == 1 ? 0x02 : 0x03));
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::testRR(u8 Sz, AsmReg RegA, AsmReg RegB) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && (rex8Needed(RegA) || rex8Needed(RegB));
  rex(Sz == 8, RegB.Id, 0xFF, RegA.Id, F8);
  put(Sz == 1 ? 0x84 : 0x85);
  modRMReg(RegB.Id, RegA.Id);
  commit();
}

void Emitter::testRI(u8 Sz, AsmReg R, i32 Imm) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(0, R.Id);
  if (Sz == 1)
    put(static_cast<u8>(Imm));
  else if (Sz == 2)
    putLE<i16>(static_cast<i16>(Imm));
  else
    putLE<i32>(Imm);
  commit();
}

void Emitter::imulRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Sz >= 2 && "8-bit imul must use the one-operand form");
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0xAF);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::imulRRI(u8 Sz, AsmReg Dst, AsmReg Src, i32 Imm) {
  assert(Sz >= 2 && "8-bit imul must use the one-operand form");
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  if (isInt8(Imm)) {
    put(0x6B);
    modRMReg(Dst.Id, Src.Id);
    put(static_cast<u8>(Imm));
  } else {
    put(0x69);
    modRMReg(Dst.Id, Src.Id);
    if (Sz == 2)
      putLE<i16>(static_cast<i16>(Imm));
    else
      putLE<i32>(Imm);
  }
  commit();
}

/// One-operand F6/F7 group (mul/imul/div/idiv/neg/not) shared encoding.
void Emitter::mulR(u8 Sz, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(4, Src.Id);
  commit();
}

void Emitter::imulR(u8 Sz, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(5, Src.Id);
  commit();
}

void Emitter::divR(u8 Sz, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(6, Src.Id);
  commit();
}

void Emitter::idivR(u8 Sz, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(7, Src.Id);
  commit();
}

void Emitter::cwd(u8 Sz) {
  begin();
  opSizePrefix(Sz);
  if (Sz == 8)
    put(0x48);
  put(0x99);
  commit();
}

void Emitter::negR(u8 Sz, AsmReg R) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(3, R.Id);
  commit();
}

void Emitter::notR(u8 Sz, AsmReg R) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  put(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(2, R.Id);
  commit();
}

void Emitter::shiftRI(ShiftOp Op, u8 Sz, AsmReg R, u8 Imm) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  u8 Digit = static_cast<u8>(Op);
  if (Imm == 1) {
    put(Sz == 1 ? 0xD0 : 0xD1);
    modRMReg(Digit, R.Id);
  } else {
    put(Sz == 1 ? 0xC0 : 0xC1);
    modRMReg(Digit, R.Id);
    put(Imm);
  }
  commit();
}

void Emitter::shiftRC(ShiftOp Op, u8 Sz, AsmReg R) {
  begin();
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  put(Sz == 1 ? 0xD2 : 0xD3);
  modRMReg(static_cast<u8>(Op), R.Id);
  commit();
}

void Emitter::shldRRC(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  put(0x0F);
  put(0xA5);
  modRMReg(Src.Id, Dst.Id);
  commit();
}

void Emitter::shrdRRC(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  put(0x0F);
  put(0xAD);
  modRMReg(Src.Id, Dst.Id);
  commit();
}

void Emitter::shldRRI(u8 Sz, AsmReg Dst, AsmReg Src, u8 Imm) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  put(0x0F);
  put(0xA4);
  modRMReg(Src.Id, Dst.Id);
  put(Imm);
  commit();
}

void Emitter::shrdRRI(u8 Sz, AsmReg Dst, AsmReg Src, u8 Imm) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  put(0x0F);
  put(0xAC);
  modRMReg(Src.Id, Dst.Id);
  put(Imm);
  commit();
}

void Emitter::bsr(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0xBD);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::bsf(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0xBC);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::popcnt(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  put(0xF3);
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0xB8);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

// --- Flags and conditionals -------------------------------------------------

void Emitter::setcc(Cond C, AsmReg Dst8) {
  begin();
  rex(false, 0, 0xFF, Dst8.Id, rex8Needed(Dst8));
  put(0x0F);
  put(0x90 | static_cast<u8>(C));
  modRMReg(0, Dst8.Id);
  commit();
}

void Emitter::cmovcc(Cond C, u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Sz >= 2 && "no 8-bit cmov");
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x40 | static_cast<u8>(C));
  modRMReg(Dst.Id, Src.Id);
  commit();
}

// --- Control flow -------------------------------------------------------------

void Emitter::jmpLabel(Label L) {
  begin();
  put(0xE9);
  u64 Off = off();
  putLE<i32>(0);
  commit(); // the fixup may patch immediately; the bytes must be live
  A.addFixup(L, FixupKind::Rel32, Off);
}

void Emitter::jccLabel(Cond C, Label L) {
  begin();
  put(0x0F);
  put(0x80 | static_cast<u8>(C));
  u64 Off = off();
  putLE<i32>(0);
  commit();
  A.addFixup(L, FixupKind::Rel32, Off);
}

void Emitter::jmpReg(AsmReg R) {
  begin();
  rex(false, 0, 0xFF, R.Id);
  put(0xFF);
  modRMReg(4, R.Id);
  commit();
}

void Emitter::callSym(SymRef S) {
  begin();
  put(0xE8);
  u64 Off = off();
  putLE<i32>(0);
  commit();
  A.addReloc(SecKind::Text, Off, RelocKind::PC32, S, -4);
}

void Emitter::callReg(AsmReg R) {
  begin();
  rex(false, 0, 0xFF, R.Id);
  put(0xFF);
  modRMReg(2, R.Id);
  commit();
}

void Emitter::ret() {
  begin();
  put(0xC3);
  commit();
}

void Emitter::ud2() {
  begin();
  put(0x0F);
  put(0x0B);
  commit();
}

void Emitter::push(AsmReg R) {
  begin();
  rex(false, 0xFF, 0xFF, R.Id);
  put(0x50 | (R.hw() & 7));
  commit();
}

void Emitter::pop(AsmReg R) {
  begin();
  rex(false, 0xFF, 0xFF, R.Id);
  put(0x58 | (R.hw() & 7));
  commit();
}

void Emitter::nops(unsigned N) {
  static constexpr u8 Seqs[9][9] = {
      {0x90},
      {0x66, 0x90},
      {0x0F, 0x1F, 0x00},
      {0x0F, 0x1F, 0x40, 0x00},
      {0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
      {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
  };
  while (N > 0) {
    unsigned Chunk = N > 9 ? 9 : N;
    T.append(Seqs[Chunk - 1], Chunk);
    N -= Chunk;
  }
}

// --- RIP-relative addressing ----------------------------------------------

void Emitter::leaSym(AsmReg Dst, SymRef S, i64 Addend) {
  begin();
  rex(true, Dst.Id, 0xFF, 0xFF);
  put(0x8D);
  modRMRip(Dst.Id, S, Addend);
  commit();
}

void Emitter::loadSym(u8 Sz, AsmReg Dst, SymRef S, i64 Addend) {
  begin();
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, 0xFF, Sz == 1 && rex8Needed(Dst));
  put(Sz == 1 ? 0x8A : 0x8B);
  modRMRip(Dst.Id, S, Addend);
  commit();
}

void Emitter::fpLoadSym(u8 Sz, AsmReg Dst, SymRef S, i64 Addend) {
  begin();
  put(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, 0xFF, 0xFF);
  put(0x0F);
  put(0x10);
  modRMRip(Dst.Id, S, Addend);
  commit();
}

// --- Scalar SSE ---------------------------------------------------------------

void Emitter::fpMovRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  (void)Sz; // movaps copies all 128 bits; fine for scalar values.
  begin();
  rex(false, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x28);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::fpLoad(u8 Sz, AsmReg Dst, Mem M) {
  begin();
  put(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, M.Index.Id, M.Base.Id);
  put(0x0F);
  put(0x10);
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::fpStore(u8 Sz, Mem M, AsmReg Src) {
  begin();
  put(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Src.Id, M.Index.Id, M.Base.Id);
  put(0x0F);
  put(0x11);
  modRMMem(Src.Id, M);
  commit();
}

void Emitter::fpArith(FpOp Op, u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  put(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(static_cast<u8>(Op));
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::fpArithMem(FpOp Op, u8 Sz, AsmReg Dst, Mem M) {
  begin();
  put(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, M.Index.Id, M.Base.Id);
  put(0x0F);
  put(static_cast<u8>(Op));
  modRMMem(Dst.Id, M);
  commit();
}

void Emitter::ucomis(u8 Sz, AsmReg RegA, AsmReg RegB) {
  begin();
  if (Sz == 8)
    put(0x66);
  rex(false, RegA.Id, 0xFF, RegB.Id);
  put(0x0F);
  put(0x2E);
  modRMReg(RegA.Id, RegB.Id);
  commit();
}

void Emitter::xorps(AsmReg Dst, AsmReg Src) {
  begin();
  rex(false, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x57);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::cvtsi2fp(u8 IntSz, u8 FpSz, AsmReg Dst, AsmReg Src) {
  assert(IntSz == 4 || IntSz == 8);
  begin();
  put(FpSz == 4 ? 0xF3 : 0xF2);
  rex(IntSz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x2A);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::cvtfp2si(u8 FpSz, u8 IntSz, AsmReg Dst, AsmReg Src) {
  assert(IntSz == 4 || IntSz == 8);
  begin();
  put(FpSz == 4 ? 0xF3 : 0xF2);
  rex(IntSz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x2C);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::cvtfp2fp(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  begin();
  put(SrcSz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x5A);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::movdToFp(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  put(0x66);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  put(0x0F);
  put(0x6E);
  modRMReg(Dst.Id, Src.Id);
  commit();
}

void Emitter::movdFromFp(u8 Sz, AsmReg Dst, AsmReg Src) {
  begin();
  put(0x66);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  put(0x0F);
  put(0x7E);
  modRMReg(Src.Id, Dst.Id);
  commit();
}
