//===- x64/Encoder.cpp - x86-64 instruction encoder ----------------------===//

#include "x64/Encoder.h"

using namespace tpde;
using namespace tpde::asmx;
using namespace tpde::x64;

void Emitter::rex(bool W, u8 RegId, u8 IdxId, u8 BaseId, bool Force) {
  u8 Rex = 0x40;
  if (W)
    Rex |= 0x08;
  if (RegId != 0xFF && (RegId & 0x8))
    Rex |= 0x04;
  if (IdxId != 0xFF && (IdxId & 0x8))
    Rex |= 0x02;
  if (BaseId != 0xFF && (BaseId & 0x8))
    Rex |= 0x01;
  if (Rex != 0x40 || Force)
    T.appendByte(Rex);
}

void Emitter::modRMReg(u8 RegField, u8 RmReg) {
  T.appendByte(0xC0 | ((RegField & 7) << 3) | (RmReg & 7));
}

void Emitter::modRMMem(u8 RegField, const Mem &M) {
  const u8 Reg = (RegField & 7) << 3;
  if (!M.Base.isValid() && !M.Index.isValid()) {
    // Absolute 32-bit address: mod=00, rm=100, SIB base=101 index=100.
    T.appendByte(Reg | 0x04);
    T.appendByte(0x25);
    T.appendLE<i32>(M.Disp);
    return;
  }
  if (!M.Base.isValid()) {
    // Index-only: mod=00 rm=100, SIB with base=101 forces disp32.
    assert(M.Index.hw() != 4 && "RSP cannot be an index register");
    u8 ScaleBits = M.Scale == 1 ? 0 : M.Scale == 2 ? 1 : M.Scale == 4 ? 2 : 3;
    T.appendByte(Reg | 0x04);
    T.appendByte(static_cast<u8>((ScaleBits << 6) | ((M.Index.hw() & 7) << 3) |
                                 0x05));
    T.appendLE<i32>(M.Disp);
    return;
  }

  const u8 BaseLow = M.Base.hw() & 7;
  const bool NeedSib = M.Index.isValid() || BaseLow == 4;
  // RBP/R13 as base cannot use the no-displacement form.
  u8 Mod;
  if (M.Disp == 0 && BaseLow != 5)
    Mod = 0x00;
  else if (isInt8(M.Disp))
    Mod = 0x40;
  else
    Mod = 0x80;

  if (!NeedSib) {
    T.appendByte(Mod | Reg | BaseLow);
  } else {
    assert(!M.Index.isValid() || M.Index.hw() != 4
           && "RSP cannot be an index register");
    u8 ScaleBits = M.Scale == 1 ? 0 : M.Scale == 2 ? 1 : M.Scale == 4 ? 2 : 3;
    u8 IdxLow = M.Index.isValid() ? (M.Index.hw() & 7) : 4;
    T.appendByte(Mod | Reg | 0x04);
    T.appendByte(static_cast<u8>((ScaleBits << 6) | (IdxLow << 3) | BaseLow));
  }
  if (Mod == 0x40)
    T.appendByte(static_cast<u8>(M.Disp));
  else if (Mod == 0x80)
    T.appendLE<i32>(M.Disp);
}

void Emitter::modRMRip(u8 RegField, SymRef S, i64 Addend) {
  T.appendByte(((RegField & 7) << 3) | 0x05);
  u64 Off = T.size();
  T.appendLE<i32>(0);
  // P points at the displacement field; the CPU adds from the end of the
  // instruction, which for all our uses is the end of the 4 disp bytes.
  A.addReloc(SecKind::Text, Off, RelocKind::PC32, S, Addend - 4);
}

// --- Integer moves -------------------------------------------------------

void Emitter::movRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Dst.bank() == 0 && Src.bank() == 0 && "GP registers expected");
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && (rex8Needed(Dst) || rex8Needed(Src));
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id, F8);
  T.appendByte(Sz == 1 ? 0x88 : 0x89);
  modRMReg(Src.Id, Dst.Id);
}

void Emitter::movRI(AsmReg Dst, u64 Imm) {
  if (isUInt32(Imm)) {
    // mov r32, imm32 zero-extends to the full register.
    rex(false, 0xFF, 0xFF, Dst.Id);
    T.appendByte(0xB8 | (Dst.hw() & 7));
    T.appendLE<u32>(static_cast<u32>(Imm));
    return;
  }
  if (isInt32(static_cast<i64>(Imm))) {
    rex(true, 0, 0xFF, Dst.Id);
    T.appendByte(0xC7);
    modRMReg(0, Dst.Id);
    T.appendLE<i32>(static_cast<i32>(Imm));
    return;
  }
  rex(true, 0xFF, 0xFF, Dst.Id);
  T.appendByte(0xB8 | (Dst.hw() & 7));
  T.appendLE<u64>(Imm);
}

void Emitter::load(u8 Sz, AsmReg Dst, Mem M) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Dst);
  rex(Sz == 8, Dst.Id, M.Index.Id, M.Base.Id, F8);
  T.appendByte(Sz == 1 ? 0x8A : 0x8B);
  modRMMem(Dst.Id, M);
}

void Emitter::loadZext(u8 Sz, AsmReg Dst, Mem M) {
  if (Sz >= 4) {
    load(Sz, Dst, M);
    return;
  }
  rex(false, Dst.Id, M.Index.Id, M.Base.Id);
  T.appendByte(0x0F);
  T.appendByte(Sz == 1 ? 0xB6 : 0xB7);
  modRMMem(Dst.Id, M);
}

void Emitter::loadSext(u8 Sz, AsmReg Dst, Mem M) {
  if (Sz == 8) {
    load(8, Dst, M);
    return;
  }
  rex(true, Dst.Id, M.Index.Id, M.Base.Id);
  if (Sz == 4) {
    T.appendByte(0x63); // movsxd
  } else {
    T.appendByte(0x0F);
    T.appendByte(Sz == 1 ? 0xBE : 0xBF);
  }
  modRMMem(Dst.Id, M);
}

void Emitter::store(u8 Sz, Mem M, AsmReg Src) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, Src.Id, M.Index.Id, M.Base.Id, F8);
  T.appendByte(Sz == 1 ? 0x88 : 0x89);
  modRMMem(Src.Id, M);
}

void Emitter::storeImm(u8 Sz, Mem M, i32 Imm) {
  opSizePrefix(Sz);
  rex(Sz == 8, 0, M.Index.Id, M.Base.Id);
  T.appendByte(Sz == 1 ? 0xC6 : 0xC7);
  modRMMem(0, M);
  if (Sz == 1)
    T.appendByte(static_cast<u8>(Imm));
  else if (Sz == 2)
    T.appendLE<i16>(static_cast<i16>(Imm));
  else
    T.appendLE<i32>(Imm);
}

void Emitter::movzxRR(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  if (SrcSz == 4) {
    // mov r32, r32 zero-extends.
    rex(false, Src.Id, 0xFF, Dst.Id);
    T.appendByte(0x89);
    modRMReg(Src.Id, Dst.Id);
    return;
  }
  bool F8 = SrcSz == 1 && rex8Needed(Src);
  rex(false, Dst.Id, 0xFF, Src.Id, F8);
  T.appendByte(0x0F);
  T.appendByte(SrcSz == 1 ? 0xB6 : 0xB7);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::movsxRR(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  bool F8 = SrcSz == 1 && rex8Needed(Src);
  rex(true, Dst.Id, 0xFF, Src.Id, F8);
  if (SrcSz == 4) {
    T.appendByte(0x63);
  } else {
    T.appendByte(0x0F);
    T.appendByte(SrcSz == 1 ? 0xBE : 0xBF);
  }
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::lea(AsmReg Dst, Mem M) {
  rex(true, Dst.Id, M.Index.Id, M.Base.Id);
  T.appendByte(0x8D);
  modRMMem(Dst.Id, M);
}

void Emitter::xchgRR(u8 Sz, AsmReg RegA, AsmReg RegB) {
  opSizePrefix(Sz);
  rex(Sz == 8, RegA.Id, 0xFF, RegB.Id);
  T.appendByte(Sz == 1 ? 0x86 : 0x87);
  modRMReg(RegA.Id, RegB.Id);
}

// --- Integer arithmetic ----------------------------------------------------

static u8 aluBase(AluOp Op) { return static_cast<u8>(Op) << 3; }

void Emitter::aluRR(AluOp Op, u8 Sz, AsmReg Dst, AsmReg Src) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && (rex8Needed(Dst) || rex8Needed(Src));
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id, F8);
  T.appendByte(aluBase(Op) + (Sz == 1 ? 0x00 : 0x01));
  modRMReg(Src.Id, Dst.Id);
}

void Emitter::aluRI(AluOp Op, u8 Sz, AsmReg Dst, i64 Imm) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Dst);
  rex(Sz == 8, 0, 0xFF, Dst.Id, F8);
  u8 Digit = static_cast<u8>(Op);
  if (Sz == 1) {
    T.appendByte(0x80);
    modRMReg(Digit, Dst.Id);
    T.appendByte(static_cast<u8>(Imm));
    return;
  }
  if (isInt8(Imm)) {
    T.appendByte(0x83);
    modRMReg(Digit, Dst.Id);
    T.appendByte(static_cast<u8>(Imm));
    return;
  }
  T.appendByte(0x81);
  modRMReg(Digit, Dst.Id);
  if (Sz == 2) {
    T.appendLE<i16>(static_cast<i16>(Imm));
  } else {
    assert(isInt32(Imm) && "ALU immediate exceeds 32 bits");
    T.appendLE<i32>(static_cast<i32>(Imm));
  }
}

void Emitter::aluRM(AluOp Op, u8 Sz, AsmReg Dst, Mem M) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Dst);
  rex(Sz == 8, Dst.Id, M.Index.Id, M.Base.Id, F8);
  T.appendByte(aluBase(Op) + (Sz == 1 ? 0x02 : 0x03));
  modRMMem(Dst.Id, M);
}

void Emitter::testRR(u8 Sz, AsmReg RegA, AsmReg RegB) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && (rex8Needed(RegA) || rex8Needed(RegB));
  rex(Sz == 8, RegB.Id, 0xFF, RegA.Id, F8);
  T.appendByte(Sz == 1 ? 0x84 : 0x85);
  modRMReg(RegB.Id, RegA.Id);
}

void Emitter::testRI(u8 Sz, AsmReg R, i32 Imm) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(0, R.Id);
  if (Sz == 1)
    T.appendByte(static_cast<u8>(Imm));
  else if (Sz == 2)
    T.appendLE<i16>(static_cast<i16>(Imm));
  else
    T.appendLE<i32>(Imm);
}

void Emitter::imulRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Sz >= 2 && "8-bit imul must use the one-operand form");
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0xAF);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::imulRRI(u8 Sz, AsmReg Dst, AsmReg Src, i32 Imm) {
  assert(Sz >= 2 && "8-bit imul must use the one-operand form");
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  if (isInt8(Imm)) {
    T.appendByte(0x6B);
    modRMReg(Dst.Id, Src.Id);
    T.appendByte(static_cast<u8>(Imm));
    return;
  }
  T.appendByte(0x69);
  modRMReg(Dst.Id, Src.Id);
  if (Sz == 2)
    T.appendLE<i16>(static_cast<i16>(Imm));
  else
    T.appendLE<i32>(Imm);
}

void Emitter::mulR(u8 Sz, AsmReg Src) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(4, Src.Id);
}

void Emitter::imulR(u8 Sz, AsmReg Src) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(5, Src.Id);
}

void Emitter::divR(u8 Sz, AsmReg Src) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(6, Src.Id);
}

void Emitter::idivR(u8 Sz, AsmReg Src) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(Src);
  rex(Sz == 8, 0, 0xFF, Src.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(7, Src.Id);
}

void Emitter::cwd(u8 Sz) {
  opSizePrefix(Sz);
  if (Sz == 8)
    T.appendByte(0x48);
  T.appendByte(0x99);
}

void Emitter::negR(u8 Sz, AsmReg R) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(3, R.Id);
}

void Emitter::notR(u8 Sz, AsmReg R) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  T.appendByte(Sz == 1 ? 0xF6 : 0xF7);
  modRMReg(2, R.Id);
}

void Emitter::shiftRI(ShiftOp Op, u8 Sz, AsmReg R, u8 Imm) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  u8 Digit = static_cast<u8>(Op);
  if (Imm == 1) {
    T.appendByte(Sz == 1 ? 0xD0 : 0xD1);
    modRMReg(Digit, R.Id);
    return;
  }
  T.appendByte(Sz == 1 ? 0xC0 : 0xC1);
  modRMReg(Digit, R.Id);
  T.appendByte(Imm);
}

void Emitter::shiftRC(ShiftOp Op, u8 Sz, AsmReg R) {
  opSizePrefix(Sz);
  bool F8 = Sz == 1 && rex8Needed(R);
  rex(Sz == 8, 0, 0xFF, R.Id, F8);
  T.appendByte(Sz == 1 ? 0xD2 : 0xD3);
  modRMReg(static_cast<u8>(Op), R.Id);
}

void Emitter::shldRRC(u8 Sz, AsmReg Dst, AsmReg Src) {
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  T.appendByte(0x0F);
  T.appendByte(0xA5);
  modRMReg(Src.Id, Dst.Id);
}

void Emitter::shrdRRC(u8 Sz, AsmReg Dst, AsmReg Src) {
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  T.appendByte(0x0F);
  T.appendByte(0xAD);
  modRMReg(Src.Id, Dst.Id);
}

void Emitter::shldRRI(u8 Sz, AsmReg Dst, AsmReg Src, u8 Imm) {
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  T.appendByte(0x0F);
  T.appendByte(0xA4);
  modRMReg(Src.Id, Dst.Id);
  T.appendByte(Imm);
}

void Emitter::shrdRRI(u8 Sz, AsmReg Dst, AsmReg Src, u8 Imm) {
  opSizePrefix(Sz);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  T.appendByte(0x0F);
  T.appendByte(0xAC);
  modRMReg(Src.Id, Dst.Id);
  T.appendByte(Imm);
}

void Emitter::bsr(u8 Sz, AsmReg Dst, AsmReg Src) {
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0xBD);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::bsf(u8 Sz, AsmReg Dst, AsmReg Src) {
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0xBC);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::popcnt(u8 Sz, AsmReg Dst, AsmReg Src) {
  T.appendByte(0xF3);
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0xB8);
  modRMReg(Dst.Id, Src.Id);
}

// --- Flags and conditionals -------------------------------------------------

void Emitter::setcc(Cond C, AsmReg Dst8) {
  rex(false, 0, 0xFF, Dst8.Id, rex8Needed(Dst8));
  T.appendByte(0x0F);
  T.appendByte(0x90 | static_cast<u8>(C));
  modRMReg(0, Dst8.Id);
}

void Emitter::cmovcc(Cond C, u8 Sz, AsmReg Dst, AsmReg Src) {
  assert(Sz >= 2 && "no 8-bit cmov");
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x40 | static_cast<u8>(C));
  modRMReg(Dst.Id, Src.Id);
}

// --- Control flow -------------------------------------------------------------

void Emitter::jmpLabel(Label L) {
  T.appendByte(0xE9);
  u64 Off = T.size();
  T.appendLE<i32>(0);
  A.addFixup(L, FixupKind::Rel32, Off);
}

void Emitter::jccLabel(Cond C, Label L) {
  T.appendByte(0x0F);
  T.appendByte(0x80 | static_cast<u8>(C));
  u64 Off = T.size();
  T.appendLE<i32>(0);
  A.addFixup(L, FixupKind::Rel32, Off);
}

void Emitter::jmpReg(AsmReg R) {
  rex(false, 0, 0xFF, R.Id);
  T.appendByte(0xFF);
  modRMReg(4, R.Id);
}

void Emitter::callSym(SymRef S) {
  T.appendByte(0xE8);
  u64 Off = T.size();
  T.appendLE<i32>(0);
  A.addReloc(SecKind::Text, Off, RelocKind::PC32, S, -4);
}

void Emitter::callReg(AsmReg R) {
  rex(false, 0, 0xFF, R.Id);
  T.appendByte(0xFF);
  modRMReg(2, R.Id);
}

void Emitter::ret() { T.appendByte(0xC3); }

void Emitter::ud2() {
  T.appendByte(0x0F);
  T.appendByte(0x0B);
}

void Emitter::push(AsmReg R) {
  rex(false, 0xFF, 0xFF, R.Id);
  T.appendByte(0x50 | (R.hw() & 7));
}

void Emitter::pop(AsmReg R) {
  rex(false, 0xFF, 0xFF, R.Id);
  T.appendByte(0x58 | (R.hw() & 7));
}

void Emitter::nops(unsigned N) {
  static const u8 Seqs[9][9] = {
      {0x90},
      {0x66, 0x90},
      {0x0F, 0x1F, 0x00},
      {0x0F, 0x1F, 0x40, 0x00},
      {0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
      {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
  };
  while (N > 0) {
    unsigned Chunk = N > 9 ? 9 : N;
    T.append(Seqs[Chunk - 1], Chunk);
    N -= Chunk;
  }
}

// --- RIP-relative addressing ----------------------------------------------

void Emitter::leaSym(AsmReg Dst, SymRef S, i64 Addend) {
  rex(true, Dst.Id, 0xFF, 0xFF);
  T.appendByte(0x8D);
  modRMRip(Dst.Id, S, Addend);
}

void Emitter::loadSym(u8 Sz, AsmReg Dst, SymRef S, i64 Addend) {
  opSizePrefix(Sz);
  rex(Sz == 8, Dst.Id, 0xFF, 0xFF, Sz == 1 && rex8Needed(Dst));
  T.appendByte(Sz == 1 ? 0x8A : 0x8B);
  modRMRip(Dst.Id, S, Addend);
}

void Emitter::fpLoadSym(u8 Sz, AsmReg Dst, SymRef S, i64 Addend) {
  T.appendByte(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, 0xFF, 0xFF);
  T.appendByte(0x0F);
  T.appendByte(0x10);
  modRMRip(Dst.Id, S, Addend);
}

// --- Scalar SSE ---------------------------------------------------------------

void Emitter::fpMovRR(u8 Sz, AsmReg Dst, AsmReg Src) {
  (void)Sz; // movaps copies all 128 bits; fine for scalar values.
  rex(false, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x28);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::fpLoad(u8 Sz, AsmReg Dst, Mem M) {
  T.appendByte(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, M.Index.Id, M.Base.Id);
  T.appendByte(0x0F);
  T.appendByte(0x10);
  modRMMem(Dst.Id, M);
}

void Emitter::fpStore(u8 Sz, Mem M, AsmReg Src) {
  T.appendByte(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Src.Id, M.Index.Id, M.Base.Id);
  T.appendByte(0x0F);
  T.appendByte(0x11);
  modRMMem(Src.Id, M);
}

void Emitter::fpArith(FpOp Op, u8 Sz, AsmReg Dst, AsmReg Src) {
  T.appendByte(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(static_cast<u8>(Op));
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::fpArithMem(FpOp Op, u8 Sz, AsmReg Dst, Mem M) {
  T.appendByte(Sz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, M.Index.Id, M.Base.Id);
  T.appendByte(0x0F);
  T.appendByte(static_cast<u8>(Op));
  modRMMem(Dst.Id, M);
}

void Emitter::ucomis(u8 Sz, AsmReg RegA, AsmReg RegB) {
  if (Sz == 8)
    T.appendByte(0x66);
  rex(false, RegA.Id, 0xFF, RegB.Id);
  T.appendByte(0x0F);
  T.appendByte(0x2E);
  modRMReg(RegA.Id, RegB.Id);
}

void Emitter::xorps(AsmReg Dst, AsmReg Src) {
  rex(false, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x57);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::cvtsi2fp(u8 IntSz, u8 FpSz, AsmReg Dst, AsmReg Src) {
  assert(IntSz == 4 || IntSz == 8);
  T.appendByte(FpSz == 4 ? 0xF3 : 0xF2);
  rex(IntSz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x2A);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::cvtfp2si(u8 FpSz, u8 IntSz, AsmReg Dst, AsmReg Src) {
  assert(IntSz == 4 || IntSz == 8);
  T.appendByte(FpSz == 4 ? 0xF3 : 0xF2);
  rex(IntSz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x2C);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::cvtfp2fp(u8 SrcSz, AsmReg Dst, AsmReg Src) {
  T.appendByte(SrcSz == 4 ? 0xF3 : 0xF2);
  rex(false, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x5A);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::movdToFp(u8 Sz, AsmReg Dst, AsmReg Src) {
  T.appendByte(0x66);
  rex(Sz == 8, Dst.Id, 0xFF, Src.Id);
  T.appendByte(0x0F);
  T.appendByte(0x6E);
  modRMReg(Dst.Id, Src.Id);
}

void Emitter::movdFromFp(u8 Sz, AsmReg Dst, AsmReg Src) {
  T.appendByte(0x66);
  rex(Sz == 8, Src.Id, 0xFF, Dst.Id);
  T.appendByte(0x0F);
  T.appendByte(0x7E);
  modRMReg(Src.Id, Dst.Id);
}
