//===- copypatch/CopyPatch.cpp - Copy-and-patch back-end ------------------===//

#include "copypatch/CopyPatch.h"
#include "support/DenseMap.h"
#include "x64/Encoder.h"

#include <deque>

using namespace tpde;
using namespace tpde::asmx;
using namespace tpde::tir;
using namespace tpde::x64;

namespace {

// 32-bit hole markers scanned for in template bytes. Values are chosen to
// never collide with real encodings emitted by the template builders.
constexpr i32 HoleA = 0x1A2B0004;  // slot of operand 0 (part 0)
constexpr i32 HoleA2 = 0x1A2B1004; // slot of operand 0 (part 1)
constexpr i32 HoleB = 0x1A2B0008;
constexpr i32 HoleB2 = 0x1A2B1008;
constexpr i32 HoleC = 0x1A2B000C;
constexpr i32 HoleR = 0x1A2B0010;
constexpr i32 HoleR2 = 0x1A2B1010;
constexpr i32 HoleC2 = 0x1A2B100C; // slot of operand 2 (part 1)
constexpr i32 HoleImm = 0x1A2B0024;
constexpr u64 HoleImm64 = 0x1A2B00641A2B0064ull;

enum class HoleKind : u8 { A, A2, B, B2, C, C2, R, R2, Imm, Imm64 };

struct Template {
  std::vector<u8> Bytes;
  std::vector<std::pair<u32, HoleKind>> Holes;
};

/// Builds a template by scanning emitted bytes for hole markers.
template <typename Fn> Template buildTemplate(Fn Emit) {
  Assembler A;
  Emitter E(A);
  Emit(E);
  Template T;
  T.Bytes.assign(A.text().Data.begin(), A.text().Data.end());
  static constexpr std::pair<i32, HoleKind> Marks[] = {
      {HoleA, HoleKind::A},   {HoleA2, HoleKind::A2}, {HoleB, HoleKind::B},
      {HoleB2, HoleKind::B2}, {HoleC, HoleKind::C},   {HoleC2, HoleKind::C2},
      {HoleR, HoleKind::R},   {HoleR2, HoleKind::R2}, {HoleImm, HoleKind::Imm}};
  for (u32 I = 0; I + 4 <= T.Bytes.size(); ++I) {
    u32 V = static_cast<u32>(T.Bytes[I]) | (T.Bytes[I + 1] << 8) |
            (T.Bytes[I + 2] << 16) |
            (static_cast<u32>(T.Bytes[I + 3]) << 24);
    if (I + 8 <= T.Bytes.size()) {
      u64 V64 = static_cast<u64>(V) |
                (static_cast<u64>(static_cast<u32>(T.Bytes[I + 4]) |
                                  (T.Bytes[I + 5] << 8) |
                                  (T.Bytes[I + 6] << 16) |
                                  (static_cast<u32>(T.Bytes[I + 7]) << 24))
                 << 32);
      if (V64 == HoleImm64) {
        T.Holes.push_back({I, HoleKind::Imm64});
        I += 7;
        continue;
      }
    }
    for (auto [M, K] : Marks) {
      if (V == static_cast<u32>(M)) {
        T.Holes.push_back({I, K});
        I += 3;
        break;
      }
    }
  }
  return T;
}

Mem mA() { return Mem(RBP, HoleA); }
Mem mA2() { return Mem(RBP, HoleA2); }
Mem mB() { return Mem(RBP, HoleB); }
Mem mB2() { return Mem(RBP, HoleB2); }
Mem mC() { return Mem(RBP, HoleC); }
Mem mC2() { return Mem(RBP, HoleC2); }
Mem mR() { return Mem(RBP, HoleR); }
Mem mR2() { return Mem(RBP, HoleR2); }

u8 opSzOf(u32 W) { return W < 4 ? 4 : static_cast<u8>(W); }

u64 key(Op O, u64 V1 = 0, u64 V2 = 0, u64 V3 = 0) {
  return static_cast<u64>(O) | (V1 << 8) | (V2 << 24) | (V3 << 40);
}

class Compiler {
public:
  Compiler(Module &M, Assembler &Asm) : M(M), Asm(Asm), E(Asm) {}

  bool run() {
    defineGlobals();
    FuncSyms.clear();
    for (const Function &F : M.Funcs) {
      asmx::Linkage L = F.Link == tir::Linkage::Internal
                            ? asmx::Linkage::Internal
                            : asmx::Linkage::External;
      FuncSyms.push_back(Asm.createSymbol(F.Name, L, true));
    }
    for (u32 I = 0; I < M.Funcs.size(); ++I) {
      if (M.Funcs[I].IsDeclaration)
        continue;
      if (!compileFunc(M.Funcs[I], FuncSyms[I]))
        return false;
    }
    return !Asm.hasError();
  }

private:
  Module &M;
  Assembler &Asm;
  Emitter E;
  std::vector<SymRef> FuncSyms;
  std::vector<SymRef> GlobalSyms;
  const Function *F = nullptr;
  std::vector<Label> BlockLabels;
  i32 ShadowBase = 0, StackVarBase = 0;
  /// Template cache keyed by an opcode-specific 64-bit key. Owned by the
  /// compiler instance — a function-local static here would let two
  /// concurrent compilers corrupt each other's templates. Templates live
  /// in a deque so references handed out stay stable across insertions.
  support::DenseMap<u64, u32> TemplateIdx;
  std::deque<Template> TemplateStore;

  template <typename Fn> const Template &getTemplate(u64 Key, Fn Emit) {
    if (u32 *Known = TemplateIdx.find(Key))
      return TemplateStore[*Known];
    TemplateStore.push_back(buildTemplate(Emit));
    TemplateIdx.insert(Key, static_cast<u32>(TemplateStore.size() - 1));
    return TemplateStore.back();
  }

  void defineGlobals() {
    for (const Global &G : M.Globals) {
      asmx::Linkage L = G.Link == tir::Linkage::Internal
                            ? asmx::Linkage::Internal
                            : asmx::Linkage::External;
      SymRef S = Asm.createSymbol(G.Name, L, false);
      GlobalSyms.push_back(S);
      if (!G.Defined)
        continue;
      SecKind K = G.Init.empty() && !G.ReadOnly
                      ? SecKind::BSS
                      : (G.ReadOnly ? SecKind::ROData : SecKind::Data);
      if (K == SecKind::BSS) {
        Section &BSS = Asm.section(K);
        BSS.BssSize = alignTo(BSS.BssSize, G.Align ? G.Align : 1);
        Asm.defineSymbol(S, K, BSS.BssSize, G.Size);
        BSS.BssSize += G.Size;
        continue;
      }
      Section &Sec = Asm.section(K);
      Sec.alignToBoundary(G.Align ? G.Align : 1);
      u64 Off = Sec.size();
      Sec.append(G.Init.data(), G.Init.size());
      if (G.Init.size() < G.Size)
        Sec.appendZeros(G.Size - G.Init.size());
      Asm.defineSymbol(S, K, Off, G.Size);
    }
  }

  i32 slotOf(ValRef V, u32 Part = 0) {
    return -static_cast<i32>(16 * (V + 1)) + static_cast<i32>(8 * Part);
  }
  i32 shadowOf(u32 PhiOrdinal, u32 Part) {
    return ShadowBase - static_cast<i32>(16 * PhiOrdinal) +
           static_cast<i32>(8 * Part);
  }

  /// Copies a template into the text section and patches its holes.
  void inst(const Template &T, i32 A = 0, i32 B = 0, i32 C = 0, i32 R = 0,
            i64 Imm = 0) {
    Section &Text = Asm.text();
    u64 Base = Text.size();
    Text.append(T.Bytes.data(), T.Bytes.size());
    for (auto [Off, K] : T.Holes) {
      switch (K) {
      case HoleKind::A:
        Text.patchLE<i32>(Base + Off, A);
        break;
      case HoleKind::A2:
        Text.patchLE<i32>(Base + Off, A + 8);
        break;
      case HoleKind::B:
        Text.patchLE<i32>(Base + Off, B);
        break;
      case HoleKind::B2:
        Text.patchLE<i32>(Base + Off, B + 8);
        break;
      case HoleKind::C:
        Text.patchLE<i32>(Base + Off, C);
        break;
      case HoleKind::C2:
        Text.patchLE<i32>(Base + Off, C + 8);
        break;
      case HoleKind::R:
        Text.patchLE<i32>(Base + Off, R);
        break;
      case HoleKind::R2:
        Text.patchLE<i32>(Base + Off, R + 8);
        break;
      case HoleKind::Imm:
        Text.patchLE<i32>(Base + Off, static_cast<i32>(Imm));
        break;
      case HoleKind::Imm64:
        Text.patchLE<u64>(Base + Off, static_cast<u64>(Imm));
        break;
      }
    }
  }

  bool compileFunc(const Function &Fn, SymRef Sym) {
    F = &Fn;
    Asm.text().alignToBoundary(16);
    u64 Start = Asm.text().size();
    Asm.defineSymbol(Sym, SecKind::Text, Start, 0);
    Asm.resetLabels();

    // Frame: 16 bytes per value, then phi shadow slots, then stack vars.
    u32 NumPhis = 0;
    for (const Block &B : Fn.Blocks)
      NumPhis += B.Phis.size();
    ShadowBase = -static_cast<i32>(16 * Fn.valueCount()) - 8;
    i32 Off = ShadowBase - static_cast<i32>(16 * NumPhis) - 8;
    StackVarOffs.clear();
    for (ValRef SV : Fn.StackVars) {
      const Value &V = Fn.val(SV);
      u32 Al = V.Aux2 < 8 ? 8 : static_cast<u32>(V.Aux2);
      Off = -static_cast<i32>(alignTo(static_cast<u64>(-Off) + V.Aux, Al));
      StackVarOffs.push_back(Off);
    }
    u32 FrameSize = static_cast<u32>(alignTo(static_cast<u64>(-Off), 16));

    E.push(RBP);
    E.movRR(8, RBP, RSP);
    E.aluRI(AluOp::Sub, 8, RSP, FrameSize);

    // Arguments into their slots.
    u32 GPUsed = 0, FPUsed = 0;
    i32 StackArgOff = 16;
    static constexpr AsmReg GPArg[6] = {RDI, RSI, RDX, RCX, R8, R9};
    for (ValRef AV : Fn.Args) {
      const Value &V = Fn.val(AV);
      u32 Parts = partCount(V.Ty);
      u8 Bank = partBank(V.Ty);
      bool InRegs = Bank == 0 ? GPUsed + Parts <= 6 : FPUsed + Parts <= 8;
      for (u32 P = 0; P < Parts; ++P) {
        if (InRegs && Bank == 0) {
          E.store(8, Mem(RBP, slotOf(AV, P)), GPArg[GPUsed++]);
        } else if (InRegs) {
          E.fpStore(8, Mem(RBP, slotOf(AV, P)), AsmReg(16 + FPUsed++));
        } else {
          E.load(8, RAX, Mem(RBP, StackArgOff));
          StackArgOff += 8;
          E.store(8, Mem(RBP, slotOf(AV, P)), RAX);
        }
      }
    }
    // Constants, globals, and stack-var addresses: initialized once.
    for (u32 VI = 0; VI < Fn.valueCount(); ++VI) {
      const Value &V = Fn.Values[VI];
      switch (V.Kind) {
      case ValKind::ConstInt: {
        E.movRI(RAX, V.Aux);
        E.store(8, Mem(RBP, slotOf(VI, 0)), RAX);
        if (V.Ty == Type::I128) {
          E.movRI(RAX, V.Aux2);
          E.store(8, Mem(RBP, slotOf(VI, 1)), RAX);
        }
        break;
      }
      case ValKind::ConstFP:
        E.movRI(RAX, V.Aux);
        E.store(8, Mem(RBP, slotOf(VI, 0)), RAX);
        break;
      case ValKind::GlobalAddr:
        E.leaSym(RAX, GlobalSyms[V.Aux]);
        E.store(8, Mem(RBP, slotOf(VI, 0)), RAX);
        break;
      case ValKind::StackVar: {
        u32 Idx = 0;
        for (u32 I = 0; I < Fn.StackVars.size(); ++I)
          if (Fn.StackVars[I] == VI)
            Idx = I;
        E.lea(RAX, Mem(RBP, StackVarOffs[Idx]));
        E.store(8, Mem(RBP, slotOf(VI, 0)), RAX);
        break;
      }
      default:
        break;
      }
    }

    BlockLabels.clear();
    for (u32 B = 0; B < Fn.Blocks.size(); ++B)
      BlockLabels.push_back(Asm.makeLabel());
    PhiOrdinal.assign(Fn.valueCount(), ~0u);
    u32 Ord = 0;
    for (const Block &B : Fn.Blocks)
      for (ValRef P : B.Phis)
        PhiOrdinal[P] = Ord++;

    for (u32 B = 0; B < Fn.Blocks.size(); ++B) {
      Asm.bindLabel(BlockLabels[B]);
      for (ValRef I : Fn.Blocks[B].Insts)
        if (!compileInst(I, B))
          return false;
    }
    Asm.setSymbolSize(Sym, Asm.text().size() - Start);
    return true;
  }

  std::vector<i32> StackVarOffs;
  /// Value -> phi shadow-slot ordinal (~0 for non-phis), dense by vreg.
  std::vector<u32> PhiOrdinal;

  /// Copies phi inputs for the edge Pred -> Succ through shadow slots
  /// (two phases, so swaps are safe), then jumps to the target label.
  void emitEdge(u32 Pred, BlockRef Succ) {
    const Block &SB = F->Blocks[Succ];
    for (ValRef Phi : SB.Phis) {
      const Value &PV = F->val(Phi);
      for (u32 In = 0; In < PV.NumOps; ++In) {
        if (F->phiBlock(PV, In) != Pred)
          continue;
        ValRef V = F->operand(PV, In);
        for (u32 P = 0; P < partCount(PV.Ty); ++P) {
          E.load(8, RAX, Mem(RBP, slotOf(V, P)));
          E.store(8, Mem(RBP, shadowOf(PhiOrdinal[Phi], P)), RAX);
        }
      }
    }
    for (ValRef Phi : SB.Phis) {
      const Value &PV = F->val(Phi);
      for (u32 P = 0; P < partCount(PV.Ty); ++P) {
        E.load(8, RAX, Mem(RBP, shadowOf(PhiOrdinal[Phi], P)));
        E.store(8, Mem(RBP, slotOf(Phi, P)), RAX);
      }
    }
    E.jmpLabel(BlockLabels[Succ]);
  }

  bool compileInst(ValRef I, u32 B);
};

bool Compiler::compileInst(ValRef I, u32 B) {
  const Value &V = F->val(I);
  const Function &Fn = *F;
  auto A0 = [&](u32 P = 0) { return slotOf(Fn.operand(V, 0), P); };
  auto A1 = [&](u32 P = 0) { return slotOf(Fn.operand(V, 1), P); };
  auto A2v = [&](u32 P = 0) { return slotOf(Fn.operand(V, 2), P); };
  auto Res = [&](u32 P = 0) { return slotOf(I, P); };
  u32 W = typeSize(V.Ty);

  switch (V.Opcode) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::And:
  case Op::Or:
  case Op::Xor: {
    if (V.Ty == Type::I128) {
      const Template &T = getTemplate(key(V.Opcode, 128), [&](Emitter &E) {
        E.load(8, RAX, mA());
        E.load(8, RDX, mA2());
        E.load(8, RCX, mB());
        E.load(8, RDI, mB2());
        switch (V.Opcode) {
        case Op::Add:
          E.aluRR(AluOp::Add, 8, RAX, RCX);
          E.aluRR(AluOp::Adc, 8, RDX, RDI);
          break;
        case Op::Sub:
          E.aluRR(AluOp::Sub, 8, RAX, RCX);
          E.aluRR(AluOp::Sbb, 8, RDX, RDI);
          break;
        case Op::Mul: {
          // (a1:a0)*(b1:b0): save a0, widening mul, cross terms.
          E.movRR(8, RSI, RAX);
          E.mulR(8, RCX); // rdx:rax = a0*b0... clobbers rdx (a1)!
          break;
        }
        case Op::And:
          E.aluRR(AluOp::And, 8, RAX, RCX);
          E.aluRR(AluOp::And, 8, RDX, RDI);
          break;
        case Op::Or:
          E.aluRR(AluOp::Or, 8, RAX, RCX);
          E.aluRR(AluOp::Or, 8, RDX, RDI);
          break;
        case Op::Xor:
          E.aluRR(AluOp::Xor, 8, RAX, RCX);
          E.aluRR(AluOp::Xor, 8, RDX, RDI);
          break;
        default:
          break;
        }
        E.store(8, mR(), RAX);
        E.store(8, mR2(), RDX);
      });
      if (V.Opcode == Op::Mul) {
        // Build the multiply as a dedicated template (the generic path
        // above would clobber operands).
        const Template &TM = getTemplate(key(V.Opcode, 129), [&](Emitter &E) {
          E.load(8, RAX, mA());
          E.load(8, RCX, mB());
          E.movRR(8, RSI, RAX);
          E.mulR(8, RCX); // rdx:rax = a0*b0
          E.movRR(8, RDI, RDX);
          E.load(8, RDX, mB2());
          E.imulRR(8, RDX, RSI); // a0*b1
          E.aluRR(AluOp::Add, 8, RDI, RDX);
          E.load(8, RDX, mA2());
          E.imulRR(8, RDX, RCX); // a1*b0
          E.aluRR(AluOp::Add, 8, RDI, RDX);
          E.store(8, mR(), RAX);
          E.store(8, mR2(), RDI);
        });
        inst(TM, A0(), A1(), 0, Res());
        return true;
      }
      inst(T, A0(), A1(), 0, Res());
      return true;
    }
    const Template &T =
        getTemplate(key(V.Opcode, W), [&](Emitter &E) {
          E.load(8, RAX, mA());
          E.load(8, RCX, mB());
          u8 Sz = opSzOf(W);
          switch (V.Opcode) {
          case Op::Add:
            E.aluRR(AluOp::Add, Sz, RAX, RCX);
            break;
          case Op::Sub:
            E.aluRR(AluOp::Sub, Sz, RAX, RCX);
            break;
          case Op::Mul:
            E.imulRR(Sz, RAX, RCX);
            break;
          case Op::And:
            E.aluRR(AluOp::And, Sz, RAX, RCX);
            break;
          case Op::Or:
            E.aluRR(AluOp::Or, Sz, RAX, RCX);
            break;
          case Op::Xor:
            E.aluRR(AluOp::Xor, Sz, RAX, RCX);
            break;
          default:
            break;
          }
          E.store(8, mR(), RAX);
        });
    inst(T, A0(), A1(), 0, Res());
    return true;
  }
  case Op::UDiv:
  case Op::SDiv:
  case Op::URem:
  case Op::SRem: {
    if (V.Ty == Type::I128)
      return false;
    bool Signed = V.Opcode == Op::SDiv || V.Opcode == Op::SRem;
    bool Rem = V.Opcode == Op::URem || V.Opcode == Op::SRem;
    const Template &T = getTemplate(
        key(V.Opcode, W), [&](Emitter &E) {
          if (W < 4) {
            if (Signed) {
              E.load(8, RAX, mA());
              E.movsxRR(static_cast<u8>(W), RAX, RAX);
              E.load(8, RCX, mB());
              E.movsxRR(static_cast<u8>(W), RCX, RCX);
            } else {
              E.load(8, RAX, mA());
              E.movzxRR(static_cast<u8>(W), RAX, RAX);
              E.load(8, RCX, mB());
              E.movzxRR(static_cast<u8>(W), RCX, RCX);
            }
          } else {
            E.load(8, RAX, mA());
            E.load(8, RCX, mB());
          }
          u8 Sz = opSzOf(W);
          if (Signed) {
            E.cwd(Sz);
            E.idivR(Sz, RCX);
          } else {
            E.aluRR(AluOp::Xor, 4, RDX, RDX);
            E.divR(Sz, RCX);
          }
          E.store(8, mR(), Rem ? RDX : RAX);
        });
    inst(T, A0(), A1(), 0, Res());
    return true;
  }
  case Op::Shl:
  case Op::LShr:
  case Op::AShr: {
    if (V.Ty == Type::I128) {
      const Value &Amt = Fn.val(Fn.operand(V, 1));
      if (Amt.Kind != ValKind::ConstInt || (Amt.Aux & 127) != 64)
        return false; // subset: only shifts by exactly 64
      const Template &T = getTemplate(key(V.Opcode, 128), [&](Emitter &E) {
        if (V.Opcode == Op::Shl) {
          E.load(8, RAX, mA());
          E.aluRR(AluOp::Xor, 4, RCX, RCX);
          E.store(8, mR(), RCX);
          E.store(8, mR2(), RAX);
        } else {
          E.load(8, RAX, mA2());
          if (V.Opcode == Op::AShr) {
            E.movRR(8, RCX, RAX);
            E.shiftRI(ShiftOp::Sar, 8, RCX, 63);
          } else {
            E.aluRR(AluOp::Xor, 4, RCX, RCX);
          }
          E.store(8, mR(), RAX);
          E.store(8, mR2(), RCX);
        }
      });
      inst(T, A0(), A1(), 0, Res());
      return true;
    }
    const Template &T = getTemplate(key(V.Opcode, W), [&](Emitter &E) {
      E.load(8, RCX, mB());
      if (W < 4 && V.Opcode != Op::Shl) {
        E.load(8, RAX, mA());
        if (V.Opcode == Op::AShr)
          E.movsxRR(static_cast<u8>(W), RAX, RAX);
        else
          E.movzxRR(static_cast<u8>(W), RAX, RAX);
      } else {
        E.load(8, RAX, mA());
      }
      ShiftOp SO = V.Opcode == Op::Shl    ? ShiftOp::Shl
                   : V.Opcode == Op::LShr ? ShiftOp::Shr
                                          : ShiftOp::Sar;
      E.shiftRC(SO, opSzOf(W), RAX);
      E.store(8, mR(), RAX);
    });
    inst(T, A0(), A1(), 0, Res());
    return true;
  }
  case Op::ICmpOp: {
    const Value &L = Fn.val(Fn.operand(V, 0));
    u32 OW = typeSize(L.Ty);
    ICmp P = static_cast<ICmp>(V.Aux);
    if (L.Ty == Type::I128) {
      const Template &T =
          getTemplate(key(V.Opcode, 128, static_cast<u64>(P)), [&](Emitter &E) {
            E.load(8, RAX, mA());
            E.load(8, RDX, mA2());
            E.load(8, RCX, mB());
            E.load(8, RDI, mB2());
            if (P == ICmp::Eq || P == ICmp::Ne) {
              E.aluRR(AluOp::Xor, 8, RAX, RCX);
              E.aluRR(AluOp::Xor, 8, RDX, RDI);
              E.aluRR(AluOp::Or, 8, RAX, RDX);
              E.setcc(P == ICmp::Eq ? Cond::E : Cond::NE, RAX);
            } else {
              bool Swap = P == ICmp::Ugt || P == ICmp::Ule ||
                          P == ICmp::Sgt || P == ICmp::Sle;
              if (Swap) {
                E.xchgRR(8, RAX, RCX);
                E.xchgRR(8, RDX, RDI);
              }
              E.aluRR(AluOp::Cmp, 8, RAX, RCX);
              E.aluRR(AluOp::Sbb, 8, RDX, RDI);
              Cond CC = (P == ICmp::Ult || P == ICmp::Ugt) ? Cond::B
                        : (P == ICmp::Uge || P == ICmp::Ule)
                            ? Cond::AE
                            : (P == ICmp::Slt || P == ICmp::Sgt) ? Cond::L
                                                                 : Cond::GE;
              E.setcc(CC, RAX);
            }
            E.movzxRR(1, RAX, RAX);
            E.store(8, mR(), RAX);
          });
      inst(T, A0(), A1(), 0, Res());
      return true;
    }
    const Template &T =
        getTemplate(key(V.Opcode, OW, static_cast<u64>(P)), [&](Emitter &E) {
          E.load(8, RAX, mA());
          E.load(8, RCX, mB());
          E.aluRR(AluOp::Cmp, static_cast<u8>(OW), RAX, RCX);
          static constexpr Cond CCs[] = {Cond::E,  Cond::NE, Cond::B,  Cond::BE,
                                     Cond::A,  Cond::AE, Cond::L,  Cond::LE,
                                     Cond::G,  Cond::GE};
          E.setcc(CCs[static_cast<u8>(P)], RAX);
          E.movzxRR(1, RAX, RAX);
          E.store(8, mR(), RAX);
        });
    inst(T, A0(), A1(), 0, Res());
    return true;
  }
  case Op::FCmpOp: {
    const Value &L = Fn.val(Fn.operand(V, 0));
    u8 Sz = L.Ty == Type::F32 ? 4 : 8;
    FCmp P = static_cast<FCmp>(V.Aux);
    bool Swap = P == FCmp::Olt || P == FCmp::Ole;
    const Template &T =
        getTemplate(key(V.Opcode, Sz, static_cast<u64>(P)), [&](Emitter &E) {
          E.fpLoad(Sz, XMM0, Swap ? mB() : mA());
          E.fpLoad(Sz, XMM1, Swap ? mA() : mB());
          E.ucomis(Sz, XMM0, XMM1);
          if (P == FCmp::Oeq || P == FCmp::One) {
            E.setcc(P == FCmp::Oeq ? Cond::E : Cond::NE, RAX);
            E.setcc(Cond::NP, RCX);
            E.aluRR(AluOp::And, 4, RAX, RCX);
          } else {
            E.setcc((P == FCmp::Ogt || P == FCmp::Olt) ? Cond::A : Cond::AE,
                    RAX);
          }
          E.movzxRR(1, RAX, RAX);
          E.store(8, mR(), RAX);
        });
    inst(T, A0(), A1(), 0, Res());
    return true;
  }
  case Op::FAdd:
  case Op::FSub:
  case Op::FMul:
  case Op::FDiv: {
    u8 Sz = V.Ty == Type::F32 ? 4 : 8;
    const Template &T = getTemplate(key(V.Opcode, Sz), [&](Emitter &E) {
      E.fpLoad(Sz, XMM0, mA());
      E.fpLoad(Sz, XMM1, mB());
      FpOp O = V.Opcode == Op::FAdd   ? FpOp::Add
               : V.Opcode == Op::FSub ? FpOp::Sub
               : V.Opcode == Op::FMul ? FpOp::Mul
                                      : FpOp::Div;
      E.fpArith(O, Sz, XMM0, XMM1);
      E.fpStore(8, mR(), XMM0);
    });
    inst(T, A0(), A1(), 0, Res());
    return true;
  }
  case Op::Neg:
  case Op::Not: {
    const Template &T = getTemplate(key(V.Opcode, W), [&](Emitter &E) {
      E.load(8, RAX, mA());
      if (V.Opcode == Op::Neg)
        E.negR(opSzOf(W), RAX);
      else
        E.notR(opSzOf(W), RAX);
      E.store(8, mR(), RAX);
    });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::FNeg: {
    u8 Sz = V.Ty == Type::F32 ? 4 : 8;
    const Template &T = getTemplate(key(V.Opcode, Sz), [&](Emitter &E) {
      E.load(8, RAX, mA());
      E.movRI(RCX, Sz == 4 ? 0x80000000ull : 0x8000000000000000ull);
      E.aluRR(AluOp::Xor, 8, RAX, RCX);
      E.store(8, mR(), RAX);
    });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::Zext:
  case Op::Sext: {
    const Value &S = Fn.val(Fn.operand(V, 0));
    u32 SW = typeSize(S.Ty);
    bool Sign = V.Opcode == Op::Sext;
    const Template &T =
        getTemplate(key(V.Opcode, SW, W), [&](Emitter &E) {
          E.load(8, RAX, mA());
          if (SW < 8) {
            if (Sign)
              E.movsxRR(static_cast<u8>(SW), RAX, RAX);
            else
              E.movzxRR(static_cast<u8>(SW), RAX, RAX);
          }
          E.store(8, mR(), RAX);
          if (W == 16) {
            if (Sign) {
              E.shiftRI(ShiftOp::Sar, 8, RAX, 63);
              E.store(8, mR2(), RAX);
            } else {
              E.aluRR(AluOp::Xor, 4, RAX, RAX);
              E.store(8, mR2(), RAX);
            }
          }
        });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::Trunc: {
    const Template &T = getTemplate(key(V.Opcode, W), [&](Emitter &E) {
      E.load(8, RAX, mA());
      if (V.Ty == Type::I1)
        E.aluRI(AluOp::And, 4, RAX, 1);
      E.store(8, mR(), RAX);
    });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::FpExt:
  case Op::FpTrunc: {
    const Template &T = getTemplate(key(V.Opcode), [&](Emitter &E) {
      u8 SrcSz = V.Opcode == Op::FpExt ? 4 : 8;
      E.fpLoad(SrcSz, XMM0, mA());
      E.cvtfp2fp(SrcSz, XMM0, XMM0);
      E.fpStore(8, mR(), XMM0);
    });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::FpToSi: {
    const Value &S = Fn.val(Fn.operand(V, 0));
    u8 SrcSz = S.Ty == Type::F32 ? 4 : 8;
    const Template &T =
        getTemplate(key(V.Opcode, SrcSz, W), [&](Emitter &E) {
          E.fpLoad(SrcSz, XMM0, mA());
          E.cvtfp2si(SrcSz, W == 8 ? 8 : 4, RAX, XMM0);
          E.store(8, mR(), RAX);
        });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::SiToFp: {
    const Value &S = Fn.val(Fn.operand(V, 0));
    u32 SW = typeSize(S.Ty);
    u8 FpSz = V.Ty == Type::F32 ? 4 : 8;
    const Template &T =
        getTemplate(key(V.Opcode, SW, FpSz), [&](Emitter &E) {
          E.load(8, RAX, mA());
          if (SW < 4)
            E.movsxRR(static_cast<u8>(SW), RAX, RAX);
          E.cvtsi2fp(SW >= 8 ? 8 : (SW == 4 ? 4 : 8), FpSz, XMM0, RAX);
          E.fpStore(8, mR(), XMM0);
        });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::Bitcast: {
    const Template &T = getTemplate(key(V.Opcode), [&](Emitter &E) {
      E.load(8, RAX, mA());
      E.store(8, mR(), RAX);
    });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::Select: {
    u32 Parts = partCount(V.Ty);
    const Template &T =
        getTemplate(key(V.Opcode, Parts), [&](Emitter &E) {
          E.load(8, RAX, mA());
          E.testRI(1, RAX, 1);
          E.load(8, RCX, mB());
          E.load(8, RDX, mC());
          E.cmovcc(Cond::E, 8, RCX, RDX);
          E.store(8, mR(), RCX);
          if (Parts > 1) {
            E.load(8, RCX, mB2());
            E.load(8, RDX, mC2());
            E.cmovcc(Cond::E, 8, RCX, RDX);
            E.store(8, mR2(), RCX);
          }
        });
    // The C+8 hole shares HoleC's patch (patched relative), so patch C
    // manually both times via the hole table (A2-style markers).
    inst(T, A0(), A1(), A2v(), Res());
    return true;
  }
  case Op::Load: {
    if (isFloatType(V.Ty)) {
      u8 Sz = V.Ty == Type::F32 ? 4 : 8;
      const Template &T = getTemplate(key(V.Opcode, 100 + Sz), [&](Emitter &E) {
        E.load(8, RAX, mA());
        E.fpLoad(Sz, XMM0, Mem(RAX, 0));
        E.fpStore(8, mR(), XMM0);
      });
      inst(T, A0(), 0, 0, Res());
      return true;
    }
    u32 Parts = partCount(V.Ty);
    const Template &T =
        getTemplate(key(V.Opcode, W, Parts), [&](Emitter &E) {
          E.load(8, RAX, mA());
          if (Parts > 1) {
            E.load(8, RCX, Mem(RAX, 0));
            E.store(8, mR(), RCX);
            E.load(8, RCX, Mem(RAX, 8));
            E.store(8, mR2(), RCX);
          } else {
            E.loadZext(static_cast<u8>(W), RCX, Mem(RAX, 0));
            E.store(8, mR(), RCX);
          }
        });
    inst(T, A0(), 0, 0, Res());
    return true;
  }
  case Op::Store: {
    const Value &S = Fn.val(Fn.operand(V, 0));
    u32 SW = typeSize(S.Ty);
    if (isFloatType(S.Ty)) {
      u8 Sz = S.Ty == Type::F32 ? 4 : 8;
      const Template &T = getTemplate(key(V.Opcode, 100 + Sz), [&](Emitter &E) {
        E.load(8, RAX, mB());
        E.fpLoad(Sz, XMM0, mA());
        E.fpStore(Sz, Mem(RAX, 0), XMM0);
      });
      inst(T, A0(), A1());
      return true;
    }
    u32 Parts = partCount(S.Ty);
    const Template &T =
        getTemplate(key(V.Opcode, SW, Parts), [&](Emitter &E) {
          E.load(8, RAX, mB());
          E.load(8, RCX, mA());
          E.store(static_cast<u8>(Parts > 1 ? 8 : SW), Mem(RAX, 0), RCX);
          if (Parts > 1) {
            E.load(8, RCX, mA2());
            E.store(8, Mem(RAX, 8), RCX);
          }
        });
    inst(T, A0(), A1());
    return true;
  }
  case Op::PtrAdd: {
    bool HasIdx = V.NumOps > 1;
    if (!isInt32(static_cast<i64>(V.Aux)) ||
        !isInt32(static_cast<i64>(V.Aux2)))
      return false;
    const Template &T =
        getTemplate(key(V.Opcode, HasIdx), [&](Emitter &E) {
          E.load(8, RAX, mA());
          if (HasIdx) {
            E.load(8, RCX, mB());
            E.imulRRI(8, RCX, RCX, HoleImm);
            E.aluRR(AluOp::Add, 8, RAX, RCX);
          }
          // Constant displacement: add a 32-bit immediate hole.
          E.aluRI(AluOp::Add, 8, RAX, HoleImm);
          E.store(8, mR(), RAX);
        });
    // Both Imm holes get the same patch value, but scale and disp differ;
    // patch them in order manually.
    Section &Text = Asm.text();
    u64 Base = Text.size();
    Text.append(T.Bytes.data(), T.Bytes.size());
    u32 ImmSeen = 0;
    for (auto [Off, K] : T.Holes) {
      switch (K) {
      case HoleKind::A:
        Text.patchLE<i32>(Base + Off, A0());
        break;
      case HoleKind::B:
        Text.patchLE<i32>(Base + Off, A1());
        break;
      case HoleKind::R:
        Text.patchLE<i32>(Base + Off, Res());
        break;
      case HoleKind::Imm:
        if (HasIdx && ImmSeen == 0)
          Text.patchLE<i32>(Base + Off, static_cast<i32>(V.Aux));
        else
          Text.patchLE<i32>(Base + Off, static_cast<i32>(V.Aux2));
        ++ImmSeen;
        break;
      default:
        break;
      }
    }
    return true;
  }
  case Op::Call: {
    const Function &Callee = M.Funcs[V.Aux];
    // Register arguments straight from slots.
    static constexpr AsmReg GPArg[6] = {RDI, RSI, RDX, RCX, R8, R9};
    u32 GPUsed = 0, FPUsed = 0;
    u32 StackBytes = 0;
    struct StackArg {
      ValRef V;
      u32 Part;
      u32 Off;
    };
    std::vector<StackArg> StackArgs;
    for (u32 A = 0; A < V.NumOps; ++A) {
      ValRef AV = Fn.operand(V, A);
      const Value &AVal = Fn.val(AV);
      u32 Parts = partCount(AVal.Ty);
      u8 Bank = partBank(AVal.Ty);
      bool InRegs = Bank == 0 ? GPUsed + Parts <= 6 : FPUsed + Parts <= 8;
      for (u32 P = 0; P < Parts; ++P) {
        if (InRegs && Bank == 0)
          E.load(8, GPArg[GPUsed++], Mem(RBP, slotOf(AV, P)));
        else if (InRegs)
          E.fpLoad(8, AsmReg(16 + FPUsed++), Mem(RBP, slotOf(AV, P)));
        else {
          StackArgs.push_back({AV, P, StackBytes});
          StackBytes += 8;
        }
      }
    }
    StackBytes = static_cast<u32>(alignTo(StackBytes, 16));
    if (StackBytes) {
      E.aluRI(AluOp::Sub, 8, RSP, StackBytes);
      for (auto &SA : StackArgs) {
        E.load(8, RAX, Mem(RBP, slotOf(SA.V, SA.Part)));
        E.store(8, Mem(RSP, static_cast<i32>(SA.Off)), RAX);
      }
    }
    E.callSym(FuncSyms[V.Aux]);
    if (StackBytes)
      E.aluRI(AluOp::Add, 8, RSP, StackBytes);
    if (Callee.RetTy != Type::Void) {
      if (isFloatType(Callee.RetTy)) {
        E.fpStore(8, Mem(RBP, Res()), XMM0);
      } else {
        E.store(8, Mem(RBP, Res()), RAX);
        if (partCount(Callee.RetTy) > 1)
          E.store(8, Mem(RBP, Res(1)), RDX);
      }
    }
    return true;
  }
  case Op::Ret: {
    if (V.NumOps) {
      const Value &RV = Fn.val(Fn.operand(V, 0));
      if (isFloatType(RV.Ty)) {
        E.fpLoad(8, XMM0, Mem(RBP, A0()));
      } else {
        E.load(8, RAX, Mem(RBP, A0()));
        if (partCount(RV.Ty) > 1)
          E.load(8, RDX, Mem(RBP, A0(1)));
      }
    }
    Asm.text().appendByte(0xC9); // leave
    E.ret();
    return true;
  }
  case Op::Br:
    emitEdge(B, Fn.Blocks[B].Succs[0]);
    return true;
  case Op::CondBr: {
    BlockRef T = Fn.Blocks[B].Succs[0], Fb = Fn.Blocks[B].Succs[1];
    E.load(8, RAX, Mem(RBP, A0()));
    E.testRI(1, RAX, 1);
    Label TEdge = Asm.makeLabel();
    E.jccLabel(Cond::NE, TEdge);
    emitEdge(B, Fb);
    Asm.bindLabel(TEdge);
    emitEdge(B, T);
    return true;
  }
  case Op::Unreachable:
    E.ud2();
    return true;
  case Op::Phi:
  default:
    return false;
  }
}

} // namespace

bool tpde::copypatch::compileModule(Module &M, Assembler &Asm) {
  Compiler C(M, Asm);
  return C.run();
}
