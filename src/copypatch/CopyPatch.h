//===- copypatch/CopyPatch.h - Copy-and-patch back-end ----------*- C++ -*-===//
///
/// \file
/// A miniature copy-and-patch compiler [Xu & Kjolstad, OOPSLA'21; Drescher
/// & Engelke, CC'24] for TIR, reproducing the comparator of the paper's
/// Figure 5/7. Code generation concatenates pre-built binary templates —
/// one per (opcode, type) — and patches 32-bit holes (stack slot offsets,
/// immediates, jump distances). Every value lives in a fixed stack slot
/// and templates use fixed scratch registers, which is precisely why the
/// paper measures it as fastest to compile but slowest to run with ~4.4x
/// code size.
///
/// Substitution note: the original obtains templates by compiling C++
/// "stencils" with Clang and locating patch points via relocations. We
/// pre-build the templates once at startup with our own encoder and record
/// hole offsets directly — byte-for-byte equivalent machinery without an
/// offline toolchain.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_COPYPATCH_COPYPATCH_H
#define TPDE_COPYPATCH_COPYPATCH_H

#include "asmx/Assembler.h"
#include "tir/TIR.h"

namespace tpde::copypatch {

/// Compiles all function definitions of \p M into \p Asm. Returns false on
/// constructs outside the supported subset (mirroring the limitations the
/// paper reports for the original).
bool compileModule(tir::Module &M, asmx::Assembler &Asm);

} // namespace tpde::copypatch

#endif // TPDE_COPYPATCH_COPYPATCH_H
