//===- support/StringPool.h - Interned strings ------------------*- C++ -*-===//
///
/// \file
/// A string uniquing pool: each distinct string is stored once (in arena
/// slabs, so views stay stable forever) and identified by a dense u32 id.
/// Interning an already-known string is a hash probe with zero heap
/// traffic, which makes symbol handling on the compile hot path
/// allocation-free once a module's names have been seen (docs/PERF.md).
///
/// Hashing is FNV-1a over the bytes; the table is open-addressed with
/// power-of-two capacity like support::DenseMap.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_STRINGPOOL_H
#define TPDE_SUPPORT_STRINGPOOL_H

#include "support/Arena.h"
#include "support/Common.h"

#include <cstring>
#include <string_view>
#include <vector>

namespace tpde::support {

class StringPool {
public:
  /// Dense id of an interned string; ids are assigned 0, 1, 2, ...
  using StrId = u32;
  static constexpr StrId InvalidId = ~0u;

  /// Interns \p S, returning the id shared by all equal strings.
  StrId intern(std::string_view S) {
    u64 H = fnv1a(S);
    if (Table.empty())
      growTable(16);
    size_t I = H & (Table.size() - 1);
    while (Table[I] != 0) {
      StrId Id = Table[I] - 1;
      const Entry &E = Entries[Id];
      if (E.Hash == H && E.Len == S.size() &&
          std::memcmp(E.Ptr, S.data(), S.size()) == 0)
        return Id;
      I = (I + 1) & (Table.size() - 1);
    }
    // New string: copy the bytes into stable slab storage.
    char *Mem = static_cast<char *>(Bytes.alloc(S.size() ? S.size() : 1, 1));
    std::memcpy(Mem, S.data(), S.size());
    StrId Id = static_cast<StrId>(Entries.size());
    Entries.push_back(Entry{Mem, static_cast<u32>(S.size()), H});
    Table[I] = Id + 1;
    if ((Entries.size() + 1) * 4 > Table.size() * 3)
      growTable(Table.size() * 2);
    return Id;
  }

  /// Looks up \p S without interning; InvalidId if never seen.
  StrId lookup(std::string_view S) const {
    if (Table.empty())
      return InvalidId;
    u64 H = fnv1a(S);
    size_t I = H & (Table.size() - 1);
    while (Table[I] != 0) {
      StrId Id = Table[I] - 1;
      const Entry &E = Entries[Id];
      if (E.Hash == H && E.Len == S.size() &&
          std::memcmp(E.Ptr, S.data(), S.size()) == 0)
        return Id;
      I = (I + 1) & (Table.size() - 1);
    }
    return InvalidId;
  }

  /// The stable view of an interned string. Valid for the pool's lifetime.
  std::string_view str(StrId Id) const {
    assert(Id < Entries.size() && "invalid string id");
    return std::string_view(Entries[Id].Ptr, Entries[Id].Len);
  }

  u32 count() const { return static_cast<u32>(Entries.size()); }

  static u64 fnv1a(std::string_view S) {
    u64 H = 0xCBF29CE484222325ull;
    for (char C : S) {
      H ^= static_cast<u8>(C);
      H *= 0x100000001B3ull;
    }
    return H;
  }

private:
  struct Entry {
    const char *Ptr;
    u32 Len;
    u64 Hash;
  };

  void growTable(size_t NewSize) {
    Table.assign(NewSize, 0);
    for (StrId Id = 0; Id < Entries.size(); ++Id) {
      size_t I = Entries[Id].Hash & (NewSize - 1);
      while (Table[I] != 0)
        I = (I + 1) & (NewSize - 1);
      Table[I] = Id + 1;
    }
  }

  std::vector<Entry> Entries;
  std::vector<u32> Table; ///< Id + 1; 0 marks an empty slot.
  Arena Bytes{16 * 1024};
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_STRINGPOOL_H
