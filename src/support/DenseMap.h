//===- support/DenseMap.h - Open-addressed integer-keyed map ----*- C++ -*-===//
///
/// \file
/// A flat, open-addressed hash map for integer keys, replacing
/// std::unordered_map on the compile hot path. One contiguous slot array,
/// linear probing, power-of-two capacity; no per-node allocation and no
/// erase support (nothing on the hot path erases). clear() retains
/// capacity so a reused compiler instance reaches an allocation-free
/// steady state (docs/PERF.md).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_DENSEMAP_H
#define TPDE_SUPPORT_DENSEMAP_H

#include "support/Common.h"

#include <vector>

namespace tpde::support {

/// Mixes all key bits so sequential keys (value numbers, packed opcode
/// keys) spread across the table (splitmix64 finalizer).
inline u64 denseHash(u64 K) {
  K += 0x9E3779B97F4A7C15ull;
  K = (K ^ (K >> 30)) * 0xBF58476D1CE4E5B9ull;
  K = (K ^ (K >> 27)) * 0x94D049BB133111EBull;
  return K ^ (K >> 31);
}

template <typename K, typename V> class DenseMap {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "DenseMap is for integer-like keys");

public:
  DenseMap() = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Removes all entries; the slot array is retained for reuse.
  void clear() {
    if (Count == 0)
      return;
    for (Slot &S : Slots)
      S.Full = false;
    Count = 0;
  }

  /// Ensures capacity for \p Expected entries without rehashing.
  void reserve(size_t Expected) {
    size_t Needed = tableSizeFor(Expected);
    if (Needed > Slots.size())
      rehash(Needed);
  }

  V *find(K Key) {
    if (Slots.empty())
      return nullptr;
    size_t I = probeStart(Key);
    while (Slots[I].Full) {
      if (Slots[I].Key == Key)
        return &Slots[I].Val;
      I = (I + 1) & (Slots.size() - 1);
    }
    return nullptr;
  }
  const V *find(K Key) const {
    return const_cast<DenseMap *>(this)->find(Key);
  }
  bool contains(K Key) const { return find(Key) != nullptr; }

  V &at(K Key) {
    V *P = find(Key);
    assert(P && "DenseMap::at: key not present");
    return *P;
  }
  const V &at(K Key) const {
    const V *P = find(Key);
    assert(P && "DenseMap::at: key not present");
    return *P;
  }

  /// Returns the value for \p Key, default-constructing it if absent.
  V &operator[](K Key) {
    return *insert(Key, V{}).First;
  }

  struct InsertResult {
    V *First;
    bool Inserted;
  };

  /// Inserts (Key, Val) if the key is absent; returns the slot either way.
  InsertResult insert(K Key, V Val) {
    if ((Count + 1) * 4 > Slots.size() * 3)
      rehash(tableSizeFor(Count + 1));
    size_t I = probeStart(Key);
    while (Slots[I].Full) {
      if (Slots[I].Key == Key)
        return {&Slots[I].Val, false};
      I = (I + 1) & (Slots.size() - 1);
    }
    Slots[I].Key = Key;
    Slots[I].Val = std::move(Val);
    Slots[I].Full = true;
    ++Count;
    return {&Slots[I].Val, true};
  }

  /// Calls \p Fn(key, value) for every entry (unspecified order).
  template <typename Fn> void forEach(Fn F) const {
    for (const Slot &S : Slots)
      if (S.Full)
        F(S.Key, S.Val);
  }

private:
  struct Slot {
    K Key{};
    V Val{};
    bool Full = false;
  };

  static size_t tableSizeFor(size_t Entries) {
    // Max load factor 3/4, minimum 16 slots.
    size_t Need = Entries * 4 / 3 + 1;
    size_t Cap = 16;
    while (Cap < Need)
      Cap *= 2;
    return Cap;
  }

  size_t probeStart(K Key) const {
    return static_cast<size_t>(denseHash(static_cast<u64>(Key))) &
           (Slots.size() - 1);
  }

  void rehash(size_t NewSize) {
    if (NewSize <= Slots.size())
      return;
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSize, Slot{});
    Count = 0;
    for (Slot &S : Old)
      if (S.Full)
        insert(S.Key, std::move(S.Val));
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_DENSEMAP_H
