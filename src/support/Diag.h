//===- support/Diag.h - Structured compile diagnostics ----------*- C++ -*-===//
///
/// \file
/// Structured error reporting for the compile pipeline. Replaces the old
/// bool + free-form-string contract: every failure carries an error code
/// plus enough location (shard, function, symbol) for a caller to act on
/// it programmatically. See docs/ROBUSTNESS.md for the error model and
/// the determinism guarantees (serial and parallel compiles of the same
/// bad module report the same first error).
///
/// The compile service extends the status's reach to clients: a
/// CompileStatus is the failure half of every ServiceResult — verifier
/// rejections at admission, per-job failures inside a batch
/// (core::ParallelModuleCompiler::compileJobs assigns each diagnostic to
/// the job owning its function, first error wins), and mapping failures
/// all surface through the same struct, so a serving client switches on
/// CompileErr exactly like an embedding caller does (docs/SERVICE.md).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_DIAG_H
#define TPDE_SUPPORT_DIAG_H

#include "support/Common.h"

#include <string>

namespace tpde::support {

/// Pipeline-wide error codes. Keep stable: tests and external tooling key
/// off these values.
enum class CompileErr : u8 {
  Ok = 0,
  /// The verifier pre-pass rejected the module before codegen.
  VerifyFailed,
  /// A function contained an instruction the back-end cannot compile.
  UnsupportedInst,
  /// The assembler reported an error (bad fixup, duplicate symbol, ...).
  AssemblerError,
  /// A registered fault-injection site fired (test builds only).
  FaultInjected,
  /// Merging a worker fragment into the output assembler failed.
  MergeError,
  /// Mapping the compiled module for execution failed.
  JitMapFailed,
  /// An allocation failed (or a fault-injected arena growth threw).
  OutOfMemory,
  /// The compile service refused admission: queue full past the bounded
  /// wait, or the tenant's token-bucket quota is exhausted.
  Overloaded,
  /// The job's deadline expired: shed at dequeue before compilation, or
  /// the waiter timed out on an in-flight fingerprint.
  DeadlineExceeded,
  /// The compile service is shut down; the job was never compiled.
  ServiceShutdown,
};

inline const char *compileErrName(CompileErr E) {
  switch (E) {
  case CompileErr::Ok: return "ok";
  case CompileErr::VerifyFailed: return "verify-failed";
  case CompileErr::UnsupportedInst: return "unsupported-inst";
  case CompileErr::AssemblerError: return "assembler-error";
  case CompileErr::FaultInjected: return "fault-injected";
  case CompileErr::MergeError: return "merge-error";
  case CompileErr::JitMapFailed: return "jit-map-failed";
  case CompileErr::OutOfMemory: return "out-of-memory";
  case CompileErr::Overloaded: return "overloaded";
  case CompileErr::DeadlineExceeded: return "deadline-exceeded";
  case CompileErr::ServiceShutdown: return "service-shutdown";
  }
  return "unknown";
}

/// True for failures a retry can plausibly clear: injected faults,
/// allocation pressure, and mapping syscalls. The compile service
/// recompiles such jobs up to ServiceOptions::MaxRetries times with
/// decorrelated backoff before failing their waiters (docs/SERVICE.md,
/// "Overload control"). Semantic failures (VerifyFailed,
/// UnsupportedInst, AssemblerError, ...) are deterministic properties of
/// the module and never retried.
inline bool compileErrTransient(CompileErr E) {
  return E == CompileErr::FaultInjected || E == CompileErr::OutOfMemory ||
         E == CompileErr::JitMapFailed;
}

/// One diagnostic. Shard/Func are ~0u when not applicable (serial compile,
/// module-level failure). Symbol is the function symbol name when known.
///
/// The struct is reused across compiles (clear() keeps string capacity) so
/// the clean-compile steady state stays allocation-free.
struct CompileStatus {
  CompileErr Err = CompileErr::Ok;
  u32 Shard = ~0u;
  u32 Func = ~0u;
  std::string Symbol;
  std::string Message;

  [[nodiscard]] bool ok() const { return Err == CompileErr::Ok; }

  void clear() {
    Err = CompileErr::Ok;
    Shard = ~0u;
    Func = ~0u;
    Symbol.clear();
    Message.clear();
  }
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_DIAG_H
