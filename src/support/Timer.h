//===- support/Timer.h - Wall-clock measurement helpers ---------*- C++ -*-===//
///
/// \file
/// Minimal monotonic-clock timing utilities used by the benchmark harnesses
/// to reproduce the paper's compile-time and run-time measurements.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_TIMER_H
#define TPDE_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>
#include <ctime>

namespace tpde {

/// Returns the current monotonic time in nanoseconds.
inline std::uint64_t nowNs() {
  using namespace std::chrono;
  return static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
          .count());
}

/// Returns this process's consumed CPU time in nanoseconds. Preferred for
/// CPU-bound throughput measurements: insensitive to scheduler noise on a
/// loaded machine.
inline std::uint64_t cpuNowNs() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec TS;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &TS);
  return static_cast<std::uint64_t>(TS.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(TS.tv_nsec);
#else
  return nowNs();
#endif
}

/// Accumulating stopwatch over process CPU time (see cpuNowNs()).
class CpuTimer {
public:
  void start() { Begin = cpuNowNs(); }
  void stop() { TotalNs += cpuNowNs() - Begin; }
  void reset() { TotalNs = 0; }

  std::uint64_t ns() const { return TotalNs; }
  double ms() const { return static_cast<double>(TotalNs) / 1e6; }
  double sec() const { return static_cast<double>(TotalNs) / 1e9; }

private:
  std::uint64_t Begin = 0;
  std::uint64_t TotalNs = 0;
};

/// Accumulating stopwatch. start()/stop() pairs add to the total.
class Timer {
public:
  void start() { Begin = nowNs(); }
  void stop() { TotalNs += nowNs() - Begin; }
  void reset() { TotalNs = 0; }

  /// Total accumulated time in nanoseconds.
  std::uint64_t ns() const { return TotalNs; }
  /// Total accumulated time in milliseconds.
  double ms() const { return static_cast<double>(TotalNs) / 1e6; }
  /// Total accumulated time in seconds.
  double sec() const { return static_cast<double>(TotalNs) / 1e9; }

private:
  std::uint64_t Begin = 0;
  std::uint64_t TotalNs = 0;
};

/// RAII region timer adding the elapsed time to a Timer on destruction.
class TimeRegion {
public:
  explicit TimeRegion(Timer &T) : T(T) { T.start(); }
  ~TimeRegion() { T.stop(); }
  TimeRegion(const TimeRegion &) = delete;
  TimeRegion &operator=(const TimeRegion &) = delete;

private:
  Timer &T;
};

} // namespace tpde

#endif // TPDE_SUPPORT_TIMER_H
