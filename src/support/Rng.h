//===- support/Rng.h - Deterministic random number generation ---*- C++ -*-===//
///
/// \file
/// A small, fast, deterministic PRNG (xorshift128+) used by the synthetic
/// workload generators and property-based tests. Determinism across runs and
/// platforms matters more than statistical quality here.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_RNG_H
#define TPDE_SUPPORT_RNG_H

#include "support/Common.h"

namespace tpde {

/// Deterministic xorshift128+ generator.
class Rng {
public:
  explicit Rng(u64 Seed) {
    // SplitMix64 seeding to avoid poor low-entropy seeds.
    auto Next = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ULL;
      u64 Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      return Z ^ (Z >> 31);
    };
    S0 = Next();
    S1 = Next();
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Returns the next 64 random bits.
  u64 next() {
    u64 X = S0;
    const u64 Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Returns a uniformly distributed value in [0, Bound).
  u64 below(u64 Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Returns a uniformly distributed value in [Lo, Hi] (inclusive).
  i64 range(i64 Lo, i64 Hi) {
    assert(Lo <= Hi && "bad range");
    return Lo + static_cast<i64>(below(static_cast<u64>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(u64 Num, u64 Den) { return below(Den) < Num; }

private:
  u64 S0, S1;
};

} // namespace tpde

#endif // TPDE_SUPPORT_RNG_H
