//===- support/Sync.h - Annotated synchronization primitives ----*- C++ -*-===//
///
/// \file
/// Project-wide synchronization wrappers carrying Clang thread-safety
/// annotations, plus the annotation macro vocabulary itself. Every mutex,
/// lock guard, condition variable, and thread in the tree must come from
/// this header — `scripts/tpde_lint.py` rejects raw `std::mutex` /
/// `std::lock_guard` / `std::thread` anywhere else, because the static
/// analysis cannot see locks it has no annotations for.
///
/// The wrappers are zero-overhead pass-throughs to the `std::` primitives:
/// every method is an inline one-liner, and the `TPDE_*` annotation macros
/// compile to nothing on non-Clang compilers. Clang builds add
/// `-Wthread-safety -Werror` (see CMakeLists.txt), turning the
/// `TPDE_GUARDED_BY` / `TPDE_REQUIRES` contracts below into compile errors
/// when violated. docs/STATIC_ANALYSIS.md documents the conventions.
///
/// Lock ranking: mutexes that participate in a documented acquisition
/// order are constructed with a `LockRank`. Debug builds maintain a
/// per-thread stack of held ranks and assert strict ascending order on
/// every acquisition, so GCC builds (no `-Wthread-safety`) keep a dynamic
/// backstop for the same invariant the annotations prove statically.
/// `NDEBUG` builds compile the tracker out entirely.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_SYNC_H
#define TPDE_SUPPORT_SYNC_H

#include "support/Common.h"

// tpde-lint: allow-file(raw-sync) -- this is the one wrapping site.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

//===----------------------------------------------------------------------===//
// Thread-safety annotation macros (Clang attribute spellings).
//
// These follow the vocabulary of https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// and expand to nothing on compilers without the attributes (GCC builds the
// exact same code without the analysis).
//===----------------------------------------------------------------------===//

#if defined(__clang__) && !defined(SWIG)
#define TPDE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TPDE_THREAD_ANNOTATION(x)
#endif

#define TPDE_CAPABILITY(x) TPDE_THREAD_ANNOTATION(capability(x))
#define TPDE_SCOPED_CAPABILITY TPDE_THREAD_ANNOTATION(scoped_lockable)
#define TPDE_GUARDED_BY(x) TPDE_THREAD_ANNOTATION(guarded_by(x))
#define TPDE_PT_GUARDED_BY(x) TPDE_THREAD_ANNOTATION(pt_guarded_by(x))
#define TPDE_ACQUIRED_BEFORE(...)                                              \
  TPDE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TPDE_ACQUIRED_AFTER(...)                                               \
  TPDE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define TPDE_REQUIRES(...)                                                     \
  TPDE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TPDE_ACQUIRE(...)                                                      \
  TPDE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TPDE_RELEASE(...)                                                      \
  TPDE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TPDE_TRY_ACQUIRE(...)                                                  \
  TPDE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TPDE_EXCLUDES(...) TPDE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TPDE_ASSERT_CAPABILITY(x)                                              \
  TPDE_THREAD_ANNOTATION(assert_capability(x))
#define TPDE_RETURN_CAPABILITY(x) TPDE_THREAD_ANNOTATION(lock_returned(x))
#define TPDE_NO_THREAD_SAFETY_ANALYSIS                                         \
  TPDE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tpde {

//===----------------------------------------------------------------------===//
// Lock ranks — the project-wide acquisition-order table.
//
// A thread may only acquire a ranked mutex whose rank is strictly greater
// than every ranked mutex it already holds. Unranked (None) mutexes are
// leaves: they never participate in nesting with other locks, so they are
// exempt from the ordering check in either direction.
//
// This is the single source of truth for documented lock orders; the
// matching static encoding lives in the TPDE_ACQUIRED_BEFORE annotations
// at the mutex declarations. When adding a lock that nests with existing
// ones, add a rank here (leave numeric gaps for future insertions) and
// cite it from the declaration — see docs/STATIC_ANALYSIS.md.
//===----------------------------------------------------------------------===//

enum class LockRank : u8 {
  /// Leaf lock, never held while taking another ranked lock.
  None = 0,
  /// CompileService per-worker `ClaimsMtx` — acquired strictly before the
  /// code cache lock during batch bookkeeping and watchdog fail-over.
  ServiceClaims = 10,
  /// CodeCache `Mtx` — the innermost service-layer lock.
  ServiceCache = 20,
};

namespace detail {

#ifndef NDEBUG
/// Per-thread stack of currently held locks (debug builds only). Bounded:
/// no code path in the project holds more than a handful of locks at once;
/// overflow entries are silently untracked rather than aborting.
struct HeldLockStack {
  static constexpr unsigned MaxHeld = 16;
  const void *Mtx[MaxHeld];
  LockRank Rank[MaxHeld];
  unsigned Size = 0;
};

inline thread_local HeldLockStack TlHeldLocks;

/// Asserts the rank order and records the acquisition. Called with the
/// lock already held (std::mutex::lock has no failure path, so ordering
/// relative to the actual acquisition does not matter for correctness).
inline void debugOnAcquire(const void *M, LockRank R) {
  HeldLockStack &S = TlHeldLocks;
  if (R != LockRank::None) {
    for (unsigned I = 0; I < S.Size; ++I) {
      if (S.Rank[I] != LockRank::None && S.Rank[I] >= R) {
        std::fprintf(stderr,
                     "tpde: lock-order violation: acquiring rank %u while "
                     "holding rank %u (see LockRank in support/Sync.h)\n",
                     static_cast<unsigned>(R),
                     static_cast<unsigned>(S.Rank[I]));
        std::abort();
      }
    }
  }
  if (S.Size < HeldLockStack::MaxHeld) {
    S.Mtx[S.Size] = M;
    S.Rank[S.Size] = R;
    ++S.Size;
  }
}

/// Removes the most recent record for M (locks are released in any order).
inline void debugOnRelease(const void *M) {
  HeldLockStack &S = TlHeldLocks;
  for (unsigned I = S.Size; I-- > 0;) {
    if (S.Mtx[I] == M) {
      for (unsigned J = I + 1; J < S.Size; ++J) {
        S.Mtx[J - 1] = S.Mtx[J];
        S.Rank[J - 1] = S.Rank[J];
      }
      --S.Size;
      return;
    }
  }
}
#else
inline void debugOnAcquire(const void *, LockRank) {}
inline void debugOnRelease(const void *) {}
#endif

} // namespace detail

//===----------------------------------------------------------------------===//
// Mutex
//===----------------------------------------------------------------------===//

/// Annotated wrapper around std::mutex. The analysis treats the object
/// itself as the capability; members it protects are declared with
/// TPDE_GUARDED_BY(TheMutex).
class TPDE_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  explicit Mutex(LockRank R) : Rank(R) { (void)Rank; }

  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() TPDE_ACQUIRE() {
    M.lock();
    detail::debugOnAcquire(this, Rank);
  }

  void unlock() TPDE_RELEASE() {
    detail::debugOnRelease(this);
    M.unlock();
  }

  bool tryLock() TPDE_TRY_ACQUIRE(true) {
    if (!M.try_lock())
      return false;
    detail::debugOnAcquire(this, Rank);
    return true;
  }

  /// The underlying handle, for CondVar's adopt/release dance only.
  std::mutex &native() { return M; }

private:
  std::mutex M;
  LockRank Rank = LockRank::None;
};

//===----------------------------------------------------------------------===//
// LockGuard / UniqueLock
//===----------------------------------------------------------------------===//

/// Scoped lock-and-unlock, the default way to hold a Mutex.
class TPDE_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(Mutex &M) TPDE_ACQUIRE(M) : Mtx(M) { Mtx.lock(); }
  ~LockGuard() TPDE_RELEASE() { Mtx.unlock(); }

  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  Mutex &Mtx;
};

/// Scoped lock supporting temporary release (watchdog-style loops that
/// drop the lock around slow work and re-take it). Clang models the
/// relock correctly via the annotated lock()/unlock() methods.
class TPDE_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(Mutex &M) TPDE_ACQUIRE(M) : Mtx(M), Held(true) {
    Mtx.lock();
  }
  ~UniqueLock() TPDE_RELEASE() {
    if (Held)
      Mtx.unlock();
  }

  UniqueLock(const UniqueLock &) = delete;
  UniqueLock &operator=(const UniqueLock &) = delete;

  void lock() TPDE_ACQUIRE() {
    Mtx.lock();
    Held = true;
  }
  void unlock() TPDE_RELEASE() {
    Held = false;
    Mtx.unlock();
  }
  bool held() const { return Held; }

  Mutex &mutex() TPDE_RETURN_CAPABILITY(Mtx) { return Mtx; }

private:
  Mutex &Mtx;
  bool Held;
};

//===----------------------------------------------------------------------===//
// CondVar
//===----------------------------------------------------------------------===//

/// Annotated wrapper around std::condition_variable. wait()/waitFor() take
/// the Mutex directly (TPDE_REQUIRES proves the caller holds it) instead
/// of a std::unique_lock. Deliberately no predicate overloads: the
/// analysis treats lambdas as separate unannotated functions, so
/// predicate waits hide the guarded reads — write the standard
/// `while (!cond) CV.wait(Mtx);` loop instead, which the analysis checks.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Atomically releases M and blocks; M is re-held on return. Subject to
  /// spurious wakeups like the std primitive — always wait in a loop.
  void wait(Mutex &M) TPDE_REQUIRES(M) {
    // Borrow the already-held native mutex for the duration of the wait.
    // adopt_lock hands ownership to L without locking; release() hands it
    // back without unlocking, so the wrapper's held/rank bookkeeping never
    // observes the temporary release inside the std wait.
    std::unique_lock<std::mutex> L(M.native(), std::adopt_lock);
    CV.wait(L);
    L.release();
  }

  /// Timed wait; returns false on timeout. Same re-held guarantee.
  bool waitFor(Mutex &M, u64 Ns) TPDE_REQUIRES(M) {
    std::unique_lock<std::mutex> L(M.native(), std::adopt_lock);
    bool NotTimedOut =
        CV.wait_for(L, std::chrono::nanoseconds(Ns)) == std::cv_status::no_timeout;
    L.release();
    return NotTimedOut;
  }

  void notify_one() { CV.notify_one(); }
  void notify_all() { CV.notify_all(); }

private:
  std::condition_variable CV;
};

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

/// Thread type used throughout the project. A plain alias today; the
/// indirection exists so the linter can ban raw std::thread and so a
/// future change (naming, affinity, instrumented spawn) lands in one
/// place.
using Thread = std::thread;

inline unsigned hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

} // namespace tpde

#endif // TPDE_SUPPORT_SYNC_H
