//===- support/Common.h - Shared basic definitions --------------*- C++ -*-===//
///
/// \file
/// Fundamental integer aliases, assertion helpers, and small utilities used
/// throughout the TPDE reproduction. The project follows the LLVM coding
/// standards; library code uses assertions instead of exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_COMMON_H
#define TPDE_SUPPORT_COMMON_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace tpde {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Marks a point in the code that must never be reached; aborts with a
/// message when it is. Counterpart of llvm_unreachable.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

#define TPDE_UNREACHABLE(msg) ::tpde::unreachableImpl(msg, __FILE__, __LINE__)

/// Reports a fatal, non-recoverable error triggered by invalid input.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

/// Returns true iff \p V fits into a sign-extended 8-bit immediate.
inline bool isInt8(i64 V) { return V >= -128 && V <= 127; }
/// Returns true iff \p V fits into a sign-extended 32-bit immediate.
inline bool isInt32(i64 V) { return V >= INT32_MIN && V <= INT32_MAX; }
/// Returns true iff \p V fits into an unsigned 32-bit immediate.
inline bool isUInt32(u64 V) { return V <= UINT32_MAX; }

/// Aligns \p V up to \p Align, which must be a power of two.
inline u64 alignTo(u64 V, u64 Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  return (V + Align - 1) & ~(Align - 1);
}

/// Returns the number of trailing zero bits; \p V must be non-zero.
inline unsigned countTrailingZeros(u64 V) {
  assert(V != 0 && "ctz of zero");
  return static_cast<unsigned>(__builtin_ctzll(V));
}

/// Returns the number of set bits.
inline unsigned popCount(u64 V) {
  return static_cast<unsigned>(__builtin_popcountll(V));
}

/// Returns floor(log2(V)); \p V must be non-zero.
inline unsigned log2Floor(u64 V) {
  assert(V != 0 && "log2 of zero");
  return 63 - static_cast<unsigned>(__builtin_clzll(V));
}

/// Returns true if \p V is a power of two (and non-zero).
inline bool isPowerOf2(u64 V) { return V != 0 && (V & (V - 1)) == 0; }

/// Sign-extends the low \p Bits bits of \p V.
inline i64 signExtend(u64 V, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "bad width");
  if (Bits == 64)
    return static_cast<i64>(V);
  u64 Mask = (u64(1) << Bits) - 1;
  u64 Sign = u64(1) << (Bits - 1);
  V &= Mask;
  return static_cast<i64>((V ^ Sign) - Sign);
}

} // namespace tpde

#endif // TPDE_SUPPORT_COMMON_H
