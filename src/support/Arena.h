//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
///
/// \file
/// A slab-based bump allocator for short-lived, homogeneous-lifetime data
/// on the compile hot path. Allocation is a pointer increment; deallocation
/// only happens wholesale via reset(), which retains every slab so a
/// compiler instance reaches a steady state where per-function work touches
/// the heap zero times (docs/PERF.md).
///
/// Arena::Scope provides stack-like nesting: everything allocated after
/// the scope opened is released (pointer-rewound) when it closes. Objects
/// placed in an arena never have destructors run; only use it for
/// trivially destructible payloads.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_ARENA_H
#define TPDE_SUPPORT_ARENA_H

#include "support/Common.h"
#include "support/FaultInjector.h"

#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace tpde::support {

class Arena {
public:
  explicit Arena(size_t SlabBytes = 64 * 1024) : SlabBytes(SlabBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes with \p Align alignment (power of two).
  void *alloc(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert(isPowerOf2(Align) && "alignment must be a power of two");
    if (CurSlab < Slabs.size()) {
      // Align the absolute address — slab bases are only new[]-aligned.
      uintptr_t Base = reinterpret_cast<uintptr_t>(Slabs[CurSlab].Mem.get());
      size_t Off =
          (((Base + CurOff + Align - 1) & ~(uintptr_t(Align) - 1)) - Base);
      if (Off + Size <= Slabs[CurSlab].Size) {
        CurOff = Off + Size;
        Allocated += Size;
        return Slabs[CurSlab].Mem.get() + Off;
      }
    }
    return allocSlow(Size, Align);
  }

  /// Constructs a T in the arena. T must be trivially destructible.
  template <typename T, typename... Args> T *create(Args &&...A) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return new (alloc(sizeof(T), alignof(T))) T(std::forward<Args>(A)...);
  }

  /// Allocates an uninitialized array of \p N Ts.
  template <typename T> T *allocArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T *>(alloc(N * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty. All slabs are kept for reuse; nothing is freed.
  void reset() {
    CurSlab = 0;
    CurOff = 0;
    Allocated = 0;
  }

  /// Total bytes handed out since construction/reset (not slab capacity).
  size_t bytesAllocated() const { return Allocated; }
  size_t slabCount() const { return Slabs.size(); }

  /// RAII region: rewinds the arena to the position at construction.
  class Scope {
  public:
    explicit Scope(Arena &A)
        : A(A), Slab(A.CurSlab), Off(A.CurOff), Bytes(A.Allocated) {}
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
    ~Scope() {
      A.CurSlab = Slab;
      A.CurOff = Off;
      A.Allocated = Bytes;
    }

  private:
    Arena &A;
    size_t Slab, Off, Bytes;
  };

private:
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };

  void *allocSlow(size_t Size, size_t Align) {
    // Fault site: simulates allocation failure on slab growth. Callers on
    // the compile path treat the resulting bad_alloc as a poisoned shard.
    if (faultPoint(FaultSite::ArenaGrow))
      throw std::bad_alloc();
    // Move to the next slab that fits; allocate one only if none does.
    // (Oversized requests get a dedicated slab of exactly the right size.)
    size_t Next = CurSlab < Slabs.size() ? CurSlab + 1 : CurSlab;
    while (Next < Slabs.size() && Slabs[Next].Size < Size + Align)
      ++Next;
    if (Next == Slabs.size()) {
      size_t Bytes = Size + Align > SlabBytes ? Size + Align : SlabBytes;
      Slabs.push_back(Slab{std::make_unique<char[]>(Bytes), Bytes});
    }
    CurSlab = Next;
    uintptr_t Base = reinterpret_cast<uintptr_t>(Slabs[CurSlab].Mem.get());
    size_t Off = ((Base + Align - 1) & ~(uintptr_t(Align) - 1)) - Base;
    assert(Off + Size <= Slabs[CurSlab].Size && "slab selection failed");
    CurOff = Off + Size;
    Allocated += Size;
    return Slabs[CurSlab].Mem.get() + Off;
  }

  std::vector<Slab> Slabs;
  size_t SlabBytes;
  size_t CurSlab = 0;
  size_t CurOff = 0;
  size_t Allocated = 0;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_ARENA_H
