//===- support/AllocCounter.h - Heap allocation accounting ------*- C++ -*-===//
///
/// \file
/// A process-wide allocation counter used by the compile-throughput
/// benchmark and the state-reuse regression tests to verify the hot-path
/// allocation policy (docs/PERF.md): recompiling with reused compiler
/// state must not allocate.
///
/// The counters themselves are ordinary inline variables. The actual
/// interception happens by replacing the global `operator new`/`delete`,
/// which must be done in exactly one translation unit of the final binary:
/// expand TPDE_INSTALL_ALLOC_COUNTER there (benchmark/test main files
/// only — never in the library).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_ALLOCCOUNTER_H
#define TPDE_SUPPORT_ALLOCCOUNTER_H

#include "support/Common.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace tpde::support {

/// Running totals since process start (only meaningful in binaries that
/// expanded TPDE_INSTALL_ALLOC_COUNTER).
struct AllocCounter {
  static inline std::atomic<u64> Count{0};
  static inline std::atomic<u64> Bytes{0};

  static u64 count() { return Count.load(std::memory_order_relaxed); }
  static u64 bytes() { return Bytes.load(std::memory_order_relaxed); }
};

/// Snapshot helper: construct, run the region of interest, then query the
/// deltas.
class AllocWatch {
public:
  AllocWatch()
      : StartCount(AllocCounter::count()), StartBytes(AllocCounter::bytes()) {}
  u64 newCalls() const { return AllocCounter::count() - StartCount; }
  u64 newBytes() const { return AllocCounter::bytes() - StartBytes; }

private:
  u64 StartCount, StartBytes;
};

} // namespace tpde::support

/// Replaces the global allocation functions with counting versions.
/// Expand at namespace scope in exactly one TU per binary.
/// new and delete are BOTH replaced, and both in terms of malloc/free,
/// so freeing in delete is well-matched; the compiler cannot see that
/// pairing, and when the delete bodies get inlined GCC's post-inlining
/// -Wmismatched-new-delete flags the visible free() against the new
/// expression (and ignores suppression pragmas at that point). noinline
/// keeps the bodies opaque — which also keeps the counters honest.
#define TPDE_ALLOC_COUNTER_FN __attribute__((noinline))
#define TPDE_INSTALL_ALLOC_COUNTER                                             \
  TPDE_ALLOC_COUNTER_FN void *operator new(std::size_t Sz) {                   \
    ::tpde::support::AllocCounter::Count.fetch_add(                            \
        1, std::memory_order_relaxed);                                         \
    ::tpde::support::AllocCounter::Bytes.fetch_add(                            \
        Sz, std::memory_order_relaxed);                                        \
    if (void *P = std::malloc(Sz ? Sz : 1))                                    \
      return P;                                                                \
    throw std::bad_alloc();                                                    \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void *operator new[](std::size_t Sz) {                 \
    return ::operator new(Sz);                                                 \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void *operator new(std::size_t Sz,                     \
                                           const std::nothrow_t &) noexcept {  \
    ::tpde::support::AllocCounter::Count.fetch_add(                            \
        1, std::memory_order_relaxed);                                         \
    ::tpde::support::AllocCounter::Bytes.fetch_add(                            \
        Sz, std::memory_order_relaxed);                                        \
    return std::malloc(Sz ? Sz : 1);                                           \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void *operator new[](                                  \
      std::size_t Sz, const std::nothrow_t &T) noexcept {                      \
    return ::operator new(Sz, T);                                              \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void operator delete(void *P) noexcept {               \
    std::free(P);                                                              \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void operator delete[](void *P) noexcept {             \
    std::free(P);                                                              \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void operator delete(void *P,                          \
                                             std::size_t) noexcept {           \
    std::free(P);                                                              \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void operator delete[](void *P,                        \
                                               std::size_t) noexcept {         \
    std::free(P);                                                              \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void operator delete(void *P,                          \
                                             const std::nothrow_t &) noexcept {\
    std::free(P);                                                              \
  }                                                                            \
  TPDE_ALLOC_COUNTER_FN void operator delete[](                                 \
      void *P, const std::nothrow_t &) noexcept {                              \
    std::free(P);                                                              \
  }

#endif // TPDE_SUPPORT_ALLOCCOUNTER_H
