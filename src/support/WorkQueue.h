//===- support/WorkQueue.h - Work-stealing range queue ----------*- C++ -*-===//
///
/// \file
/// A small work-stealing queue over a dense index range [0, Count), used by
/// the parallel module compiler to distribute shards across worker threads.
///
/// Each worker owns one contiguous sub-range packed into a single atomic
/// u64 (Begin in the high half, End in the low half). The owner pops from
/// the *front* of its range with a CAS; a worker whose range ran dry steals
/// from the *back* of the largest remaining victim range. Every transition
/// is a single CAS on one word, so the queue is lock-free, every unclaimed
/// index is visible in exactly one slot at all times (pop() returning false
/// really means the range is exhausted), and the queue is allocation-free
/// after reset() has grown the slot array once (docs/PERF.md).
///
/// The queue distributes *indices*, not work items: callers map the index
/// to whatever unit they shard by. Which worker ends up claiming an index
/// is scheduling-dependent; anything that must be deterministic (e.g. where
/// a shard's output lands) must therefore be keyed on the index, never on
/// the worker.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_WORKQUEUE_H
#define TPDE_SUPPORT_WORKQUEUE_H

// tpde-lint: hot-path -- per-function compile loop; the zero-allocation
// policy (docs/PERF.md) is machine-enforced here by scripts/tpde_lint.py.

#include "support/Common.h"

#include <atomic>
#include <memory>

namespace tpde::support {

class WorkStealingRangeQueue {
public:
  WorkStealingRangeQueue() = default;

  /// Prepares the queue to hand out [0, Count) across \p NumWorkers
  /// workers. The initial partition is contiguous and even; imbalance is
  /// corrected by stealing. Must not race with pop(). Only grows the slot
  /// array (never shrinks), so repeated reset() with the same worker count
  /// does not allocate.
  void reset(u32 Count, unsigned NumWorkers) {
    assert(NumWorkers > 0 && "need at least one worker");
    if (NumWorkers > Cap) {
      Slots = std::make_unique<Slot[]>(NumWorkers);
      Cap = NumWorkers;
    }
    Workers = NumWorkers;
    u32 Chunk = Count / NumWorkers, Rem = Count % NumWorkers;
    u32 Next = 0;
    for (unsigned W = 0; W < NumWorkers; ++W) {
      u32 Take = Chunk + (W < Rem ? 1 : 0);
      Slots[W].Range.store(pack(Next, Next + Take), std::memory_order_relaxed);
      Next += Take;
    }
    assert(Next == Count && "partition must cover the range");
  }

  /// Claims the next index for \p Worker: first from the front of its own
  /// range, then by stealing from the back of the largest victim range.
  /// Returns false only once every index of the current reset() has been
  /// claimed.
  bool pop(unsigned Worker, u32 &Out) {
    assert(Worker < Workers && "worker id out of range");
    if (popOwn(Worker, Out))
      return true;
    return steal(Worker, Out);
  }

  unsigned workerCount() const { return Workers; }

private:
  struct alignas(64) Slot {
    std::atomic<u64> Range{0};
  };

  static u64 pack(u32 Begin, u32 End) {
    return (static_cast<u64>(Begin) << 32) | End;
  }
  static u32 begin(u64 R) { return static_cast<u32>(R >> 32); }
  static u32 end(u64 R) { return static_cast<u32>(R); }

  bool popOwn(unsigned Worker, u32 &Out) {
    std::atomic<u64> &R = Slots[Worker].Range;
    u64 Cur = R.load(std::memory_order_acquire);
    while (begin(Cur) < end(Cur)) {
      if (R.compare_exchange_weak(Cur, pack(begin(Cur) + 1, end(Cur)),
                                  std::memory_order_acq_rel)) {
        Out = begin(Cur);
        return true;
      }
    }
    return false;
  }

  bool steal(unsigned Thief, u32 &Out) {
    for (;;) {
      // Pick the victim with the most remaining work; retry from scratch
      // whenever the CAS loses a race, since the best victim may change.
      unsigned Victim = Workers;
      u64 VictimRange = 0;
      u32 Best = 0;
      for (unsigned W = 0; W < Workers; ++W) {
        if (W == Thief)
          continue;
        u64 Cur = Slots[W].Range.load(std::memory_order_acquire);
        u32 Size = end(Cur) - begin(Cur);
        if (begin(Cur) < end(Cur) && Size > Best) {
          Best = Size;
          Victim = W;
          VictimRange = Cur;
        }
      }
      if (Victim == Workers)
        return false; // everything claimed
      u32 B = begin(VictimRange), E = end(VictimRange);
      // Take one index off the back; owner pops stay at the front, so the
      // contention window between owner and thief is a single element.
      if (Slots[Victim].Range.compare_exchange_weak(
              VictimRange, pack(B, E - 1), std::memory_order_acq_rel)) {
        Out = E - 1;
        return true;
      }
    }
  }

  std::unique_ptr<Slot[]> Slots;
  unsigned Cap = 0;
  unsigned Workers = 0;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_WORKQUEUE_H
