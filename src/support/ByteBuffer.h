//===- support/ByteBuffer.h - Raw byte buffer for code emission -*- C++ -*-===//
///
/// \file
/// A growable byte buffer replacing std::vector<u8> for section data on
/// the emission hot path. Two properties std::vector cannot provide:
///
///  * uninitialized growth — the write-cursor API hands out raw pointers
///    into reserved space so an instruction encoder performs ONE bounds
///    check per instruction instead of one per byte, and no zero-fill;
///  * an explicit geometric growth policy (page-sized minimum) so
///    steady-state emission is amortized allocation-free (docs/PERF.md).
///
/// Allocation goes through ::operator new so the benchmark/test allocation
/// counters (support/AllocCounter.h) observe it.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_BYTEBUFFER_H
#define TPDE_SUPPORT_BYTEBUFFER_H

#include "support/Common.h"

#include <cstring>
#include <new>

namespace tpde::support {

class ByteBuffer {
public:
  using value_type = u8;
  using iterator = u8 *;
  using const_iterator = const u8 *;

  ByteBuffer() = default;
  ~ByteBuffer() { ::operator delete(Ptr); }

  ByteBuffer(const ByteBuffer &O) { append(O.Ptr, O.Sz); }
  ByteBuffer &operator=(const ByteBuffer &O) {
    if (this == &O)
      return *this;
    Sz = 0;
    append(O.Ptr, O.Sz);
    return *this;
  }
  ByteBuffer(ByteBuffer &&O) noexcept : Ptr(O.Ptr), Sz(O.Sz), Cap(O.Cap) {
    O.Ptr = nullptr;
    O.Sz = O.Cap = 0;
  }
  ByteBuffer &operator=(ByteBuffer &&O) noexcept {
    if (this == &O)
      return *this;
    ::operator delete(Ptr);
    Ptr = O.Ptr;
    Sz = O.Sz;
    Cap = O.Cap;
    O.Ptr = nullptr;
    O.Sz = O.Cap = 0;
    return *this;
  }

  u8 *data() { return Ptr; }
  const u8 *data() const { return Ptr; }
  size_t size() const { return Sz; }
  size_t capacity() const { return Cap; }
  bool empty() const { return Sz == 0; }

  u8 &operator[](size_t I) {
    assert(I < Sz && "index out of range");
    return Ptr[I];
  }
  u8 operator[](size_t I) const {
    assert(I < Sz && "index out of range");
    return Ptr[I];
  }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Sz; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Sz; }

  /// Drops the contents but keeps the allocation (docs/PERF.md).
  void clear() { Sz = 0; }

  void reserve(size_t N) {
    if (N > Cap)
      growTo(N);
  }

  /// Guarantees room for \p More extra bytes; geometric growth with a
  /// 4 KiB floor.
  void ensure(size_t More) {
    if (Sz + More > Cap)
      growFor(More);
  }

  void push_back(u8 B) {
    if (Sz == Cap)
      growFor(1);
    Ptr[Sz++] = B;
  }

  void append(const void *Src, size_t N) {
    if (!N)
      return;
    ensure(N);
    std::memcpy(Ptr + Sz, Src, N);
    Sz += N;
  }

  void appendZeros(size_t N) {
    ensure(N);
    std::memset(Ptr + Sz, 0, N);
    Sz += N;
  }

  /// Grows (zero-filling) or shrinks to exactly \p N bytes.
  void resize(size_t N) {
    if (N > Sz)
      appendZeros(N - Sz);
    else
      Sz = N;
  }

  /// Appends \p N *uninitialized* bytes and returns a pointer to them:
  /// the reserve half of a reserve-then-fill protocol (the in-place
  /// section merge in asmx::Assembler::reserveFrom). The caller promises
  /// to fill — or explicitly zero — the bytes before anything reads them.
  u8 *extendUninit(size_t N) {
    ensure(N);
    u8 *P = Ptr + Sz;
    Sz += N;
    return P;
  }

  // --- Write cursor: unchecked appends into pre-reserved space ---------
  /// Returns the current end of the buffer as a raw write pointer; the
  /// caller must have ensure()d enough space and finish with setEnd().
  u8 *writableEnd() { return Ptr + Sz; }
  void setEnd(u8 *E) {
    assert(E >= Ptr && static_cast<size_t>(E - Ptr) <= Cap &&
           "cursor out of bounds");
    Sz = static_cast<size_t>(E - Ptr);
  }

private:
  void growFor(size_t More) {
    size_t NewCap = Cap * 2;
    if (NewCap < 4096)
      NewCap = 4096;
    while (NewCap < Sz + More)
      NewCap *= 2;
    growTo(NewCap);
  }
  void growTo(size_t NewCap) {
    u8 *NewPtr = static_cast<u8 *>(::operator new(NewCap));
    if (Sz)
      std::memcpy(NewPtr, Ptr, Sz);
    ::operator delete(Ptr);
    Ptr = NewPtr;
    Cap = NewCap;
  }

  u8 *Ptr = nullptr;
  size_t Sz = 0;
  size_t Cap = 0;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_BYTEBUFFER_H
