//===- support/Histogram.h - Fixed-bucket latency histogram -----*- C++ -*-===//
///
/// \file
/// An allocation-free, thread-safe latency histogram for the compile
/// service's hit/miss latency statistics (p50/p99 in the service bench
/// and SERVICE.md). The bucket layout is log-linear, the standard
/// HdrHistogram-style compromise: one octave per power of two of
/// nanoseconds, subdivided into 8 linear sub-buckets, giving a fixed
/// 512-counter array (~4 KiB) that covers 1 ns .. ~580 years with a
/// worst-case quantile error of one sub-bucket width (12.5% relative).
///
/// record() is a single relaxed atomic increment — no locks, no
/// allocation, safe from any number of threads concurrently, which is
/// what lets the service count latencies on its hot path without
/// violating the docs/PERF.md steady-state policy. quantileNs() returns
/// a conservative *upper bound* (the inclusive upper edge of the bucket
/// containing the requested rank), so a gated p99 can only over-report,
/// never hide a regression. Quantile reads concurrent with writers are
/// approximate (counters move underneath); snapshot consistency is the
/// caller's problem (the bench quiesces before reading).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_HISTOGRAM_H
#define TPDE_SUPPORT_HISTOGRAM_H

#include "support/Common.h"

#include <atomic>
#include <bit>

namespace tpde::support {

class LatencyHistogram {
public:
  static constexpr unsigned SubBucketBits = 3; // 8 sub-buckets per octave
  static constexpr unsigned SubBuckets = 1u << SubBucketBits;
  static constexpr unsigned Octaves = 64;
  static constexpr unsigned NumBuckets = Octaves * SubBuckets;

  /// Records one sample of \p Ns nanoseconds. Lock- and allocation-free.
  void record(u64 Ns) {
    Buckets[bucketOf(Ns)].fetch_add(1, std::memory_order_relaxed);
    TotalCount.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total number of recorded samples.
  u64 count() const { return TotalCount.load(std::memory_order_relaxed); }

  /// Conservative upper bound for the \p Q quantile (0 < Q <= 1) in
  /// nanoseconds: the upper edge of the bucket holding the Q-rank
  /// sample. Returns 0 when empty.
  u64 quantileNs(double Q) const {
    u64 Total = count();
    if (Total == 0)
      return 0;
    if (Q < 0.0)
      Q = 0.0;
    if (Q > 1.0)
      Q = 1.0;
    // Rank of the target sample, 1-based, ceil(Q * Total) clamped to
    // [1, Total].
    u64 Rank = static_cast<u64>(Q * static_cast<double>(Total));
    if (Rank < 1)
      Rank = 1;
    if (Rank > Total)
      Rank = Total;
    u64 Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I].load(std::memory_order_relaxed);
      if (Seen >= Rank)
        return bucketUpperNs(I);
    }
    return bucketUpperNs(NumBuckets - 1);
  }

  /// Zeroes all counters. Not safe concurrently with record().
  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    TotalCount.store(0, std::memory_order_relaxed);
  }

private:
  /// Bucket index for a value: the top SubBucketBits+1 significant bits
  /// select octave and sub-bucket.
  static unsigned bucketOf(u64 Ns) {
    if (Ns < SubBuckets)
      return static_cast<unsigned>(Ns); // exact buckets below 8 ns
    unsigned Msb = 63 - static_cast<unsigned>(std::countl_zero(Ns));
    unsigned Octave = Msb - SubBucketBits + 1;
    unsigned Sub = static_cast<unsigned>(Ns >> (Msb - SubBucketBits)) &
                   (SubBuckets - 1);
    return Octave * SubBuckets + Sub;
  }

  /// Inclusive upper edge of bucket \p I in nanoseconds.
  static u64 bucketUpperNs(unsigned I) {
    unsigned Octave = I / SubBuckets;
    unsigned Sub = I % SubBuckets;
    if (Octave == 0)
      return Sub; // the exact low buckets
    u64 Base = u64{1} << (Octave + SubBucketBits - 1);
    u64 Width = Base / SubBuckets;
    return Base + Width * (Sub + 1) - 1;
  }

  std::atomic<u64> Buckets[NumBuckets] = {};
  std::atomic<u64> TotalCount{0};
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_HISTOGRAM_H
