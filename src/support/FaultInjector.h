//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
///
/// \file
/// Registry-driven fault injection for robustness testing. Named sites in
/// the compile hot path call faultPoint(Site); a test arms a site to fire
/// on its Nth hit and the site's caller turns that into a structured error
/// (or a thrown std::bad_alloc for arena growth).
///
/// The whole facility compiles out unless TPDE_FAULT_INJECTION is defined:
/// faultPoint() is then a constexpr `false` and the arm/disarm API is a
/// no-op, so default builds carry zero cost (verified by the bench gate —
/// see scripts/check_bench_regression.py). Site hit counters are atomics
/// and the registry never allocates, keeping armed-but-idle sweeps
/// compatible with the zero-steady-state-allocation policy (docs/PERF.md).
///
/// The sites are deliberately shared across drivers: the compile service
/// reuses ShardCompile (and the rest) through the parallel driver it
/// batches onto, so the robustness sweep in tests/robustness_test.cpp and
/// the service-path recovery test (tests/service_test.cpp,
/// ShardFaultMidBatchRecoversAllJobs) exercise the same registry — add a
/// new site only when a failure domain is reachable from neither. The
/// ServiceAdmit/ServiceRetry sites are such a case: they live in the
/// serving layer's admission and retry-scheduling paths, above the
/// parallel driver, and are swept by tests/service_test.cpp
/// (ServiceFaultSweep.*).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_FAULTINJECTOR_H
#define TPDE_SUPPORT_FAULTINJECTOR_H

#include "support/Common.h"

#ifdef TPDE_FAULT_INJECTION
#include <atomic>
#endif

namespace tpde::support {

/// Every registered injection site. Keep faultSiteName() and the sweep in
/// tests/robustness_test.cpp in sync when adding one.
enum class FaultSite : u8 {
  ArenaGrow,    ///< support::Arena::allocSlow — throws std::bad_alloc.
  ShardCompile, ///< core::ParallelModuleCompiler::compileShard — shard fails.
  SymbolCreate, ///< asmx::Assembler::createSymbol — assembler error.
  SectionMerge, ///< asmx::Assembler::mergeFrom — merge refused.
  SectionPlace, ///< asmx::Assembler::placeFrom — in-place byte placement
                ///< fails (pass 2 of the two-pass emission; docs/PERF.md).
  JitMap,       ///< asmx::JITMapper::map — mapping fails.
  ServiceAdmit, ///< service::CompileService admission — the submit path
                ///< fails before the job reaches the queue.
  ServiceRetry, ///< service::CompileService retry scheduling — a
                ///< transient-failure retry cannot be enqueued.
};

inline constexpr u32 NumFaultSites = 8;

inline const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::ArenaGrow: return "arena-grow";
  case FaultSite::ShardCompile: return "shard-compile";
  case FaultSite::SymbolCreate: return "symbol-create";
  case FaultSite::SectionMerge: return "section-merge";
  case FaultSite::SectionPlace: return "section-place";
  case FaultSite::JitMap: return "jit-map";
  case FaultSite::ServiceAdmit: return "service-admit";
  case FaultSite::ServiceRetry: return "service-retry";
  }
  return "unknown";
}

#ifdef TPDE_FAULT_INJECTION

/// Process-wide site registry. Fixed-size, atomic, allocation-free; safe to
/// arm from a test thread while worker threads hit the sites. A site fires
/// exactly once per arm(): on the Nth hit after arming.
class FaultInjector {
  struct SiteState {
    std::atomic<u64> Hits;  ///< Hits since last arm/disarm.
    std::atomic<u64> Armed; ///< 0 = disarmed, N = fire on Nth hit.
  };
  /// Value-initialized (C++20 atomics zero): all sites start disarmed.
  static inline SiteState Sites[NumFaultSites] = {};

  static SiteState &state(FaultSite S) {
    return Sites[static_cast<u32>(S)];
  }

public:
  /// Arms \p S to fire on its \p Nth hit from now (1 = next hit).
  static void arm(FaultSite S, u64 Nth = 1) {
    SiteState &St = state(S);
    St.Hits.store(0, std::memory_order_relaxed);
    St.Armed.store(Nth, std::memory_order_release);
  }

  static void disarm(FaultSite S) {
    SiteState &St = state(S);
    St.Armed.store(0, std::memory_order_release);
    St.Hits.store(0, std::memory_order_relaxed);
  }

  static void disarmAll() {
    for (u32 I = 0; I < NumFaultSites; ++I) {
      Sites[I].Armed.store(0, std::memory_order_release);
      Sites[I].Hits.store(0, std::memory_order_relaxed);
    }
  }

  /// Number of hits a site has seen since it was last (dis)armed. Lets the
  /// sweep discover how many Nth values are worth testing per site.
  static u64 hits(FaultSite S) {
    return state(S).Hits.load(std::memory_order_relaxed);
  }

  /// Called by the instrumented sites. Returns true exactly when the armed
  /// Nth hit is reached.
  static bool shouldFire(FaultSite S) {
    SiteState &St = state(S);
    u64 Hit = St.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
    return Hit == St.Armed.load(std::memory_order_acquire);
  }
};

inline bool faultPoint(FaultSite S) { return FaultInjector::shouldFire(S); }
inline constexpr bool faultInjectionEnabled() { return true; }

#else // !TPDE_FAULT_INJECTION

/// Compiled-out variant: sites fold to `if (false)` and the test API is a
/// no-op, so sweep tests still build (and skip themselves) either way.
inline constexpr bool faultPoint(FaultSite) { return false; }
inline constexpr bool faultInjectionEnabled() { return false; }

class FaultInjector {
public:
  static void arm(FaultSite, u64 = 1) {}
  static void disarm(FaultSite) {}
  static void disarmAll() {}
  static u64 hits(FaultSite) { return 0; }
};

#endif // TPDE_FAULT_INJECTION

} // namespace tpde::support

#endif // TPDE_SUPPORT_FAULTINJECTOR_H
