//===- support/MpmcQueue.h - Bounded MPMC job queue -------------*- C++ -*-===//
///
/// \file
/// A bounded multi-producer/multi-consumer FIFO. It was the compile
/// service's admission queue until the overload-control work replaced it
/// there with the tenant-aware service/Admission.h (per-tenant quotas,
/// weighted-fair dequeue, a retry lane — policies a plain FIFO cannot
/// express); it remains the general-purpose bounded job queue for
/// everything that doesn't need tenancy.
///
/// Design choice: a mutex + two condition variables over a fixed ring,
/// not a lock-free queue. Compile jobs cost microseconds to milliseconds
/// each, so queue transfer is never the bottleneck — what matters is
/// bounded memory (back-pressure on producers instead of unbounded
/// growth), correct blocking semantics (workers sleep when idle), and a
/// clean shutdown story. This is deliberately *not* subject to the
/// zero-steady-state-allocation policy's lock-free requirement: that
/// policy governs the per-function compile loop (docs/PERF.md), and the
/// service queue sits in front of it, once per job. The ring storage is
/// allocated once at construction and never grows.
///
/// Shutdown: close() wakes everyone; pop() drains remaining items and
/// then returns false; push() on a closed queue returns false and drops
/// the item.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_MPMC_QUEUE_H
#define TPDE_SUPPORT_MPMC_QUEUE_H

#include "support/Common.h"
#include "support/Sync.h"

#include <utility>
#include <vector>

namespace tpde::support {

template <typename T> class BoundedMpmcQueue {
public:
  explicit BoundedMpmcQueue(size_t Capacity)
      : Cap(Capacity ? Capacity : 1), Slots(Cap) {}

  BoundedMpmcQueue(const BoundedMpmcQueue &) = delete;
  BoundedMpmcQueue &operator=(const BoundedMpmcQueue &) = delete;

  size_t capacity() const { return Cap; }

  /// Blocks until space is available or the queue is closed. Returns
  /// false (item dropped) iff the queue was closed.
  bool push(T Item) TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      while (Count == Cap && !Closed)
        NotFull.wait(Mtx);
      if (Closed)
        return false;
      enqueueLocked(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool tryPush(T Item) TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      if (Closed || Count == Cap)
        return false;
      enqueueLocked(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained. Returns false only on closed-and-empty.
  bool pop(T &Out) TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      while (Count == 0 && !Closed)
        NotEmpty.wait(Mtx);
      if (Count == 0)
        return false;
      dequeueLocked(Out);
    }
    NotFull.notify_one();
    return true;
  }

  /// Non-blocking pop. Returns false if empty (even when more items may
  /// arrive later).
  bool tryPop(T &Out) TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      if (Count == 0)
        return false;
      dequeueLocked(Out);
    }
    NotFull.notify_one();
    return true;
  }

  /// Rejects future pushes and wakes all waiters. Items already queued
  /// remain poppable until drained. Idempotent.
  void close() TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Closed;
  }

  size_t size() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Count;
  }

private:
  void enqueueLocked(T Item) TPDE_REQUIRES(Mtx) {
    Slots[Tail] = std::move(Item);
    Tail = (Tail + 1) % Cap;
    ++Count;
  }
  void dequeueLocked(T &Out) TPDE_REQUIRES(Mtx) {
    Out = std::move(Slots[Head]);
    Head = (Head + 1) % Cap;
    --Count;
  }

  const size_t Cap;
  mutable Mutex Mtx;
  CondVar NotFull;
  CondVar NotEmpty;
  std::vector<T> Slots TPDE_GUARDED_BY(Mtx);
  size_t Head TPDE_GUARDED_BY(Mtx) = 0;
  size_t Tail TPDE_GUARDED_BY(Mtx) = 0;
  size_t Count TPDE_GUARDED_BY(Mtx) = 0;
  bool Closed TPDE_GUARDED_BY(Mtx) = false;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_MPMC_QUEUE_H
