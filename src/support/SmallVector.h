//===- support/SmallVector.h - Vector with inline storage -------*- C++ -*-===//
///
/// \file
/// A dynamically-sized array that stores its first N elements inline,
/// avoiding any heap traffic for the common small case. Used for the
/// per-instruction scratch buffers of the compile hot path (pending
/// parallel moves, operand holds, cycle temporaries) where the typical
/// cardinality is tiny but unbounded in principle.
///
/// Deliberately minimal compared to llvm::SmallVector: no insert/erase in
/// the middle, since the hot path only ever appends and clears.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_SMALLVECTOR_H
#define TPDE_SUPPORT_SMALLVECTOR_H

#include "support/Common.h"

#include <new>
#include <type_traits>
#include <utility>

namespace tpde::support {

template <typename T, unsigned N> class SmallVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;
  ~SmallVector() {
    clear();
    if (!isInline())
      ::operator delete(Ptr);
  }

  SmallVector(const SmallVector &O) { append(O.begin(), O.end()); }
  SmallVector &operator=(const SmallVector &O) {
    if (this == &O)
      return *this;
    clear();
    append(O.begin(), O.end());
    return *this;
  }

  SmallVector(SmallVector &&O) noexcept { moveFrom(std::move(O)); }
  SmallVector &operator=(SmallVector &&O) noexcept {
    if (this == &O)
      return *this;
    clear();
    if (!isInline()) {
      ::operator delete(Ptr);
      Ptr = inlineData();
      Cap = N;
    }
    moveFrom(std::move(O));
    return *this;
  }

  T *data() { return Ptr; }
  const T *data() const { return Ptr; }
  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Sz; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Sz; }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  size_t capacity() const { return Cap; }

  T &operator[](size_t I) {
    assert(I < Sz && "index out of range");
    return Ptr[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Sz && "index out of range");
    return Ptr[I];
  }
  T &front() { return (*this)[0]; }
  T &back() { return (*this)[Sz - 1]; }
  const T &back() const { return (*this)[Sz - 1]; }

  void push_back(const T &V) { emplace_back(V); }
  void push_back(T &&V) { emplace_back(std::move(V)); }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Sz == Cap)
      grow(Sz + 1);
    T *Slot = new (Ptr + Sz) T(std::forward<Args>(A)...);
    ++Sz;
    return *Slot;
  }

  void pop_back() {
    assert(Sz && "pop from empty vector");
    Ptr[--Sz].~T();
  }

  /// Destroys all elements; capacity (inline or heap) is retained.
  void clear() {
    for (size_t I = 0; I < Sz; ++I)
      Ptr[I].~T();
    Sz = 0;
  }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void resize(size_t NewSz) {
    if (NewSz < Sz) {
      for (size_t I = NewSz; I < Sz; ++I)
        Ptr[I].~T();
    } else {
      reserve(NewSz);
      for (size_t I = Sz; I < NewSz; ++I)
        new (Ptr + I) T();
    }
    Sz = static_cast<u32>(NewSz);
  }

  void assign(size_t Count, const T &V) {
    clear();
    reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      new (Ptr + I) T(V);
    Sz = static_cast<u32>(Count);
  }

  template <typename It> void append(It First, It Last) {
    for (; First != Last; ++First)
      emplace_back(*First);
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  bool isInline() const {
    return Ptr == reinterpret_cast<const T *>(Inline);
  }

  void grow(size_t Min) {
    size_t NewCap = Cap * 2;
    if (NewCap < Min)
      NewCap = Min;
    T *NewPtr = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I < Sz; ++I) {
      new (NewPtr + I) T(std::move(Ptr[I]));
      Ptr[I].~T();
    }
    if (!isInline())
      ::operator delete(Ptr);
    Ptr = NewPtr;
    Cap = static_cast<u32>(NewCap);
  }

  void moveFrom(SmallVector &&O) {
    assert(Sz == 0 && isInline() && "moveFrom requires a pristine target");
    if (O.isInline()) {
      for (size_t I = 0; I < O.Sz; ++I) {
        new (Ptr + I) T(std::move(O.Ptr[I]));
        O.Ptr[I].~T();
      }
      Sz = O.Sz;
      O.Sz = 0;
    } else {
      Ptr = O.Ptr;
      Sz = O.Sz;
      Cap = O.Cap;
      O.Ptr = O.inlineData();
      O.Sz = 0;
      O.Cap = N;
    }
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Ptr = inlineData();
  u32 Sz = 0;
  u32 Cap = N;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_SMALLVECTOR_H
