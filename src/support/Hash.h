//===- support/Hash.h - Content fingerprinting ------------------*- C++ -*-===//
///
/// \file
/// Streaming 128-bit content hashing for the compile service's
/// content-addressed code cache (src/service/, docs/SERVICE.md). The
/// soundness of fingerprint memoization rests on the determinism
/// contract (core/ParallelCompiler.h): compiled output is a pure
/// function of the module, so equal canonical serializations imply
/// byte-identical code. The hash only has to make *accidental*
/// collisions negligible — it is not cryptographic and must not be used
/// against adversarial inputs. Two independent 64-bit lanes (FNV-1a and
/// an xxhash-style rotate-multiply accumulator) with a splitmix64
/// finalizer give a 128-bit digest, putting the birthday bound near
/// 2^64 distinct modules.
///
/// Hashing is allocation-free and streaming: callers feed the module's
/// dense arrays in index order (a canonical serialization — see
/// uir::fingerprintModule / tpde_tir::fingerprintModule), tagging
/// variable-length runs with their length so distinct structures cannot
/// collide by concatenation.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SUPPORT_HASH_H
#define TPDE_SUPPORT_HASH_H

#include "support/Common.h"

#include <cstring>
#include <string_view>

namespace tpde::support {

/// A 128-bit content fingerprint. Value type; usable as a hash-map key
/// through Fp128Hash.
struct Fp128 {
  u64 Hi = 0;
  u64 Lo = 0;

  bool operator==(const Fp128 &O) const { return Hi == O.Hi && Lo == O.Lo; }
  bool operator!=(const Fp128 &O) const { return !(*this == O); }
};

/// Map-key hash for Fp128: the fingerprint is already uniformly mixed,
/// so folding the halves is enough.
struct Fp128Hash {
  size_t operator()(const Fp128 &F) const {
    return static_cast<size_t>(F.Lo ^ (F.Hi * 0x9e3779b97f4a7c15ull));
  }
};

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
inline u64 avalanche64(u64 X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

/// Streaming two-lane hasher producing an Fp128. Feed content through
/// the typed helpers; call digest() at the end (the hasher stays usable
/// for further updates — digest() is a pure read of the running state).
class Hasher128 {
public:
  /// Mixes \p N raw bytes into both lanes.
  void bytes(const void *P, size_t N) {
    const u8 *B = static_cast<const u8 *>(P);
    for (size_t I = 0; I < N; ++I) {
      // Lane A: FNV-1a.
      A = (A ^ B[I]) * 0x100000001b3ull;
      // Lane B: xxhash-style round — structurally independent of lane A
      // so a lane-A collision does not imply a lane-B collision.
      Bl = rotl(Bl + B[I] * 0xc2b2ae3d27d4eb4full, 31) * 0x9e3779b185ebca87ull;
    }
    Len += N;
  }

  void u8v(u8 V) { bytes(&V, 1); }
  void u32v(u32 V) { bytes(&V, 4); }
  void u64v(u64 V) { bytes(&V, 8); }
  void i64v(i64 V) { u64v(static_cast<u64>(V)); }
  void f64v(double V) {
    // Hash the bit pattern: -0.0 vs 0.0 and NaN payloads are distinct IR
    // constants and must fingerprint distinctly.
    u64 Bits;
    std::memcpy(&Bits, &V, 8);
    u64v(Bits);
  }
  /// Length-prefixed string: "ab" + "c" cannot collide with "a" + "bc".
  void str(std::string_view S) {
    u64v(S.size());
    bytes(S.data(), S.size());
  }
  /// Length tag for a variable-length run the caller is about to feed.
  void len(size_t N) { u64v(static_cast<u64>(N)); }

  /// The 128-bit digest of everything fed so far.
  Fp128 digest() const {
    Fp128 F;
    F.Hi = avalanche64(A ^ (Len * 0xff51afd7ed558ccdull));
    F.Lo = avalanche64(Bl + Len);
    return F;
  }

private:
  static u64 rotl(u64 X, unsigned R) { return (X << R) | (X >> (64 - R)); }

  u64 A = 0xcbf29ce484222325ull;  ///< FNV-1a offset basis.
  u64 Bl = 0x27d4eb2f165667c5ull; ///< xxhash PRIME64_5 seed.
  u64 Len = 0;
};

} // namespace tpde::support

#endif // TPDE_SUPPORT_HASH_H
