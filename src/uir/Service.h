//===- uir/Service.h - UIR compile-service binding --------------*- C++ -*-===//
///
/// \file
/// Binds the database IR to the multi-tenant compile service
/// (service/CompileService.h): canonical fingerprinting of UModules for
/// the content-addressed code cache, and batch concatenation of query
/// modules for the job-aligned parallel compile. This is the serving
/// shape of the paper's §7 scenario — many sessions submitting query
/// plans concurrently instead of one client compiling one plan at a
/// time. Sessions map naturally onto service tenants: give each session
/// (or session class) a TenantId and a quota/weight via
/// setTenantConfig(), and pass per-query deadlines in SubmitOptions so
/// an abandoned query is shed instead of compiled (docs/SERVICE.md,
/// "Overload control").
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_UIR_SERVICE_H
#define TPDE_UIR_SERVICE_H

#include "service/CompileService.h"
#include "uir/ParallelCompiler.h"

namespace tpde::uir {

/// Canonical content fingerprint of a query module. Covers everything
/// codegen reads — function names, arities, every UInst field, block
/// phi/inst/successor lists — and nothing it doesn't: UBlock::Aux is the
/// adapter's per-compile scratch slot and is deliberately excluded, so a
/// module fingerprints identically before and after being compiled.
support::Fp128 fingerprintModule(const UModule &M);

/// Service traits: see service/CompileService.h for the contract.
struct UirServiceTraits {
  using WorkerT = UirParallelWorker;

  static support::Fp128 fingerprint(const UModule &M) {
    return fingerprintModule(M);
  }

  /// Appends \p Job's queries to \p Batch. Transactional: on a function
  /// name conflict (with the batch or within the job) Batch is left
  /// untouched and the job is deferred to another batch. UIR has no
  /// module-level globals, so the batch's module fragment contributes
  /// only declarations to each job's merged output — which keeps a
  /// batched job's bytes identical to a solo compile.
  static bool appendTo(UModule &Batch, const UModule &Job);

  static void clearModule(UModule &M) { M.Funcs.clear(); }

  static bool verify(const UModule &M, std::string &Err) {
    return verifyModule(M, Err);
  }

  static constexpr asmx::JITMapper::StubArch Stub =
      asmx::JITMapper::StubArch::X64;
};

/// The database-IR compile service: submit query UModules, get mapped
/// code handles, memoized by content. See docs/SERVICE.md.
using UirCompileService = service::CompileService<UirServiceTraits>;

} // namespace tpde::uir

#endif // TPDE_UIR_SERVICE_H
