//===- uir/TpdeUir.h - TPDE adapter + compilers for Umbra-IR ----*- C++ -*-===//
///
/// \file
/// The §7 core claim: TPDE adapts directly to the database IR, skipping
/// any IR translation. The adapter is a thin wrapper over UIR's dense
/// arrays (like Umbra, which "already has unique per-function IDs for
/// instructions and blocks", §7.1.1); the instruction compilers cover the
/// small query-oriented op set including the checked-arithmetic traps.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_UIR_TPDEUIR_H
#define TPDE_UIR_TPDEUIR_H

#include "support/DenseMap.h"
#include "tir/TIR.h"
#include "tpde_tir/TirGlobals.h"
#include "uir/UIR.h"
#include "uir/Verifier.h"
#include "x64/CompilerX64.h"

#include <array>
#include <span>
#include <vector>

namespace tpde::uir {

class UirAdapter {
public:
  using FuncRef = u32;
  using BlockRef = u32;
  using ValRef = u32;

  explicit UirAdapter(UModule &M) : M(M) {
    for (const UFunc &F : M.Funcs) {
      if (F.Vals.size() > MaxValues)
        MaxValues = static_cast<u32>(F.Vals.size());
      if (F.Blocks.size() > MaxBlocks)
        MaxBlocks = static_cast<u32>(F.Blocks.size());
    }
  }

  /// Capacity hints (largest function of the module): the framework uses
  /// these to size per-function scratch once instead of growing it
  /// piecemeal while ratcheting through the functions (docs/PERF.md).
  u32 maxValueCount() const { return MaxValues; }
  u32 maxBlockCount() const { return MaxBlocks; }

  u32 funcCount() const { return static_cast<u32>(M.Funcs.size()); }
  FuncRef funcRef(u32 I) const { return I; }
  std::string_view funcName(FuncRef F) const { return M.Funcs[F].Name; }
  asmx::Linkage funcLinkage(FuncRef) const { return asmx::Linkage::External; }
  bool funcIsDefinition(FuncRef) const { return true; }

  void switchFunc(FuncRef FR) {
    F = &M.Funcs[FR];
    // Dense per-value metadata byte (ported from TirAdapter::Meta): the
    // value machinery queries bank and const-likeness for random values
    // on every use; one sequential pass here turns those into
    // single-byte reads instead of strided UInst fetches (docs/PERF.md).
    const u32 N = static_cast<u32>(F->Vals.size());
    Meta.reserve(MaxValues);
    Meta.resize(N);
    for (u32 I = 0; I < N; ++I) {
      const UInst &V = F->Vals[I];
      u8 B = 0;
      if (V.Ty == UTy::F64)
        B |= MetaFpBank;
      if (I >= 2 && (V.Op == UOp::ConstI || V.Op == UOp::ConstF))
        B |= MetaConstLike;
      if (I >= 2 && V.Op == UOp::ConstI)
        B |= MetaConstInt;
      Meta[I] = B;
    }
  }
  void finalizeFunc() {}

  u32 valueCount() const { return static_cast<u32>(F->Vals.size()); }
  u32 blockCount() const { return static_cast<u32>(F->Blocks.size()); }
  BlockRef blockRef(u32 I) const { return I; }
  u64 &blockAux(BlockRef B) { return F->Blocks[B].Aux; }
  std::span<const BlockRef> blockSuccs(BlockRef B) const {
    return F->Blocks[B].Succs;
  }
  std::span<const ValRef> blockPhis(BlockRef B) const {
    return F->Blocks[B].Phis;
  }
  std::span<const ValRef> blockInsts(BlockRef B) const {
    return F->Blocks[B].Insts;
  }
  std::span<const ValRef> funcArgs() const { return Args; }

  u32 valNumber(ValRef V) const { return V; }
  u32 valPartCount(ValRef) const { return 1; }
  u32 valPartSize(ValRef, u32) const { return 8; }
  u8 valPartBank(ValRef V, u32) const {
    return Meta[V] & MetaFpBank ? 1 : 0;
  }
  bool isConstLike(ValRef V) const { return Meta[V] & MetaConstLike; }
  /// Fast integer-constant test for immediate folding (no UInst fetch).
  bool isConstInt(ValRef V) const { return Meta[V] & MetaConstInt; }

  std::span<const ValRef> instOperands(ValRef V) const {
    // UInst::Ops is a true array (static_assert in UIR.h), so this span
    // is well-defined — it used to stride from a scalar field A into its
    // neighbor B, which only worked by layout accident (UB).
    const UInst &I = F->Vals[V];
    u32 N = I.Ops[0] == ~0u ? 0 : (I.Ops[1] == ~0u ? 1 : 2);
    return {I.Ops, N};
  }
  u32 phiIncomingCount(ValRef V) const {
    const UInst &I = F->Vals[V];
    return I.InVal[0] == ~0u ? 0 : (I.InVal[1] == ~0u ? 1 : 2);
  }
  BlockRef phiIncomingBlock(ValRef V, u32 I) const {
    return F->Vals[V].InBlock[I];
  }
  ValRef phiIncomingValue(ValRef V, u32 I) const {
    return F->Vals[V].InVal[I];
  }

  const UInst &val(ValRef V) const { return F->Vals[V]; }
  const UFunc &func() const { return *F; }

private:
  // Metadata byte layout: bit 0 FP bank, bit 1 const-like, bit 2 ConstI.
  static constexpr u8 MetaFpBank = 0x01;
  static constexpr u8 MetaConstLike = 0x02;
  static constexpr u8 MetaConstInt = 0x04;

  UModule &M;
  UFunc *F = nullptr;
  std::vector<u8> Meta;
  std::array<u32, 2> Args = {0, 1};
  u32 MaxValues = 0;
  u32 MaxBlocks = 0;
};

static_assert(core::IRAdapter<UirAdapter>);

class UirCompilerX64 : public x64::CompilerX64<UirAdapter, UirCompilerX64> {
public:
  using Base = x64::CompilerX64<UirAdapter, UirCompilerX64>;
  using VPR = Base::ValuePartRef;

  UirCompilerX64(UirAdapter &A, asmx::Assembler &Asm) : Base(A, Asm) {}

  bool compile() { return this->compileModule(); }

  /// Recompiles the module through the symbol-batching fast path
  /// (module-level reuse; the compiler rewinds the assembler itself).
  bool compileReuse() { return this->recompileModule(); }

  /// Compiles only functions [Begin, End); sparse on-demand symbol mode.
  /// Shard entry point used by the parallel module compiler.
  bool compileRange(u32 Begin, u32 End) {
    return this->compileFunctionRange(Begin, End);
  }

  /// Emits the module-level fragment only (UIR has no global data, so
  /// this is just the function declarations the merge will drop).
  bool compileGlobals() { return this->compileGlobalsOnly(); }

  /// UIR modules carry no globals; only the per-module FP constant pool
  /// has to restart with each compile.
  void defineGlobals() { FpPool.clear(); }
  /// Sparse-mode twin of defineGlobals() (shard compiles): nothing to
  /// register — the FP pool fills on demand per shard and
  /// Assembler::mergeFrom() content-deduplicates it across shards.
  void declareGlobals() { FpPool.clear(); }
  template <typename Fn> void forEachStackVar(Fn) {}

  void materializeConstLike(u32 V, u8, core::Reg Dst) {
    const UInst &Val = this->A.val(V);
    if (Val.Op == UOp::ConstF) {
      // FP-bank destination: load the f64 bits through the rodata FP
      // constant pool (same pool layout as the TIR targets, so the
      // cross-shard merge dedup applies). The old integer movRI here
      // emitted garbage for XMM register ids.
      E.fpLoadSym(8, x64::ax(Dst), fpConstSym(Val.Aux));
      return;
    }
    E.movRI(x64::ax(Dst), Val.Aux);
  }

  bool compileInst(u32 I) {
    const UInst &V = this->A.val(I);
    switch (V.Op) {
    case UOp::ColAddr: {
      VPR Base = this->valRef(V.Ops[0], 0);
      core::Reg B = Base.asReg();
      VPR Res = this->resultRef(I, 0);
      E.load(8, x64::ax(Res.allocReg()),
             x64::Mem(x64::ax(B), static_cast<i32>(8 * V.Aux)));
      Res.setModified();
      return true;
    }
    case UOp::PtrIdx: {
      VPR Base = this->valRef(V.Ops[0], 0);
      VPR Idx = this->valRef(V.Ops[1], 0);
      core::Reg B = Base.asReg(), X = Idx.asReg();
      VPR Res = this->resultRef(I, 0);
      E.lea(x64::ax(Res.allocReg()),
            x64::Mem(x64::ax(B), x64::ax(X), static_cast<u8>(V.Aux), 0));
      Res.setModified();
      return true;
    }
    case UOp::Load: {
      VPR Ptr = this->valRef(V.Ops[0], 0);
      core::Reg P = Ptr.asReg();
      VPR Res = this->resultRef(I, 0);
      E.load(8, x64::ax(Res.allocReg()), x64::Mem(x64::ax(P), 0));
      Res.setModified();
      return true;
    }
    case UOp::Add:
    case UOp::Sub:
    case UOp::Mul:
    case UOp::And:
    case UOp::SAddTrap: {
      const UInst &RV = this->A.val(V.Ops[1]);
      // isConstInt, not isConstLike: a ConstF operand must never be
      // folded as an integer immediate.
      bool RhsImm = this->A.isConstInt(V.Ops[1]) &&
                    isInt32(static_cast<i64>(RV.Aux));
      VPR Rhs = this->valRef(V.Ops[1], 0);
      VPR Res = this->resultRefReuse(I, 0, this->valRef(V.Ops[0], 0));
      if (V.Op == UOp::Mul) {
        E.imulRR(8, x64::ax(Res.curReg()), x64::ax(Rhs.asReg()));
      } else {
        x64::AluOp O = V.Op == UOp::Sub   ? x64::AluOp::Sub
                       : V.Op == UOp::And ? x64::AluOp::And
                                          : x64::AluOp::Add;
        if (RhsImm)
          E.aluRI(O, 8, x64::ax(Res.curReg()), static_cast<i64>(RV.Aux));
        else
          E.aluRR(O, 8, x64::ax(Res.curReg()), x64::ax(Rhs.asReg()));
      }
      if (V.Op == UOp::SAddTrap) {
        // Umbra semantics: overflow calls the runtime trap.
        asmx::Label Ok = this->Asm.makeLabel();
        E.jccLabel(x64::Cond::NO, Ok);
        E.ud2();
        this->Asm.bindLabel(Ok);
      }
      Res.setModified();
      return true;
    }
    case UOp::CmpLt:
    case UOp::CmpLe:
    case UOp::CmpEq:
    case UOp::CmpNe: {
      VPR Lhs = this->valRef(V.Ops[0], 0);
      VPR Rhs = this->valRef(V.Ops[1], 0);
      core::Reg L = Lhs.asReg();
      E.aluRR(x64::AluOp::Cmp, 8, x64::ax(L), x64::ax(Rhs.asReg()));
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      E.setcc(V.Op == UOp::CmpLt   ? x64::Cond::L
              : V.Op == UOp::CmpLe ? x64::Cond::LE
              : V.Op == UOp::CmpEq ? x64::Cond::E
                                   : x64::Cond::NE,
              x64::ax(R));
      E.movzxRR(1, x64::ax(R), x64::ax(R));
      Res.setModified();
      return true;
    }
    case UOp::I2F: {
      VPR Src = this->valRef(V.Ops[0], 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      E.cvtsi2fp(8, 8, x64::ax(Res.allocReg()), x64::ax(S));
      Res.setModified();
      return true;
    }
    case UOp::FAdd:
    case UOp::FMul: {
      VPR Rhs = this->valRef(V.Ops[1], 0);
      VPR Res = this->resultRefReuse(I, 0, this->valRef(V.Ops[0], 0));
      E.fpArith(V.Op == UOp::FAdd ? x64::FpOp::Add : x64::FpOp::Mul, 8,
                x64::ax(Res.curReg()), x64::ax(Rhs.asReg()));
      Res.setModified();
      return true;
    }
    case UOp::FCmpLt: {
      // a < b compiled as swapped b > a so NaN yields false via CF (same
      // trick as TirCompilerX64::compileFCmp for olt).
      VPR Lhs = this->valRef(V.Ops[1], 0);
      VPR Rhs = this->valRef(V.Ops[0], 0);
      core::Reg L = Lhs.asReg();
      E.ucomis(8, x64::ax(L), x64::ax(Rhs.asReg()));
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      E.setcc(x64::Cond::A, x64::ax(R));
      E.movzxRR(1, x64::ax(R), x64::ax(R));
      Res.setModified();
      return true;
    }
    case UOp::Br:
      this->generateBranch(this->A.func().Blocks[V.Block].Succs[0]);
      return true;
    case UOp::CondBr: {
      {
        VPR C = this->valRef(V.Ops[0], 0);
        core::Reg R = C.asReg();
        E.testRR(8, x64::ax(R), x64::ax(R));
      }
      const UBlock &B = this->A.func().Blocks[V.Block];
      this->generateCondBranch(B.Succs[0], B.Succs[1],
                               [&](asmx::Label L, bool Inv) {
                                 E.jccLabel(Inv ? x64::Cond::E
                                                : x64::Cond::NE,
                                            L);
                               });
      return true;
    }
    case UOp::Ret: {
      u32 RV = V.Ops[0];
      this->emitReturn(&RV);
      return true;
    }
    default:
      return false;
    }
  }

private:
  // --- Constant pool (shared layout with the TIR targets) ---------------

  asmx::SymRef fpConstSym(u64 Bits) {
    return tpde_tir::fpPoolConstSym(this->Asm, FpPool, Bits, /*Size=*/8);
  }

  support::DenseMap<u64, asmx::SymRef> FpPool;
};

/// Compiles UIR directly with TPDE (no IR translation). With \p Verify
/// the module is validated first (uir::verifyModule) so malformed query
/// IR never reaches the emitter; \p StatusOut (optional) receives the
/// structured diagnostic on failure.
inline bool compileTpdeUir(UModule &M, asmx::Assembler &Asm,
                           bool Verify = false,
                           support::CompileStatus *StatusOut = nullptr) {
  if (StatusOut)
    StatusOut->clear();
  if (Verify) {
    std::string Errors;
    if (!verifyModule(M, Errors)) {
      if (StatusOut) {
        StatusOut->Err = support::CompileErr::VerifyFailed;
        StatusOut->Message = std::move(Errors);
      }
      return false;
    }
  }
  UirAdapter A(M);
  UirCompilerX64 C(A, Asm);
  bool OK = false;
  try {
    OK = C.compile();
  } catch (...) { // arena growth (interned names) can throw bad_alloc
    if (StatusOut) {
      StatusOut->Err = support::CompileErr::OutOfMemory;
      StatusOut->Message = "allocation failed during module compile";
    }
    return false;
  }
  if (!OK && StatusOut)
    *StatusOut = C.status();
  return OK;
}

bool translateToTir(const UModule &M, tir::Module &Out);
bool compileDirectEmit(const UModule &M, asmx::Assembler &Asm);

} // namespace tpde::uir

#endif // TPDE_UIR_TPDEUIR_H
