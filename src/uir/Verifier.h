//===- uir/Verifier.h - Structural validation for UIR -----------*- C++ -*-===//
///
/// \file
/// Validates UIR functions before codegen: block structure and terminator
/// placement, per-op operand arity and id ranges, phi/predecessor
/// agreement, and module-level name uniqueness. The counterpart of
/// tir/Verifier.h for the database IR — the verifier-gated compile entry
/// points (compileTpdeUir, compileModuleUirParallel) run it so malformed
/// query IR is rejected with a diagnostic instead of reaching the emitter.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_UIR_VERIFIER_H
#define TPDE_UIR_VERIFIER_H

#include "uir/UIR.h"

#include <string>

namespace tpde::uir {

/// Verifies one function; appends problems to \p Errors. Returns true if
/// the function is well-formed.
bool verifyFunction(const UFunc &F, std::string &Errors);

/// Verifies every function plus module-level invariants (unique names).
bool verifyModule(const UModule &M, std::string &Errors);

} // namespace tpde::uir

#endif // TPDE_UIR_VERIFIER_H
