//===- uir/ParallelCompiler.h - UIR parallel instantiation ------*- C++ -*-===//
///
/// \file
/// Instantiates the backend-agnostic parallel module compile driver
/// (core/ParallelCompiler.h) for the database IR: Umbra-style modules
/// bundle hundreds to thousands of compiled queries, and the sharded
/// driver compiles them across workers exactly like the TIR back-ends —
/// same determinism contract (byte-identical output for any thread
/// count), same steady-state allocation guarantees, same sparse
/// on-demand symbol mode per shard. All driver logic lives in the shared
/// core template; this file only supplies the worker type (adapter +
/// assembler + compiler bundle) and the one-shot convenience entry
/// point.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_UIR_PARALLELCOMPILER_H
#define TPDE_UIR_PARALLELCOMPILER_H

#include "core/ParallelCompiler.h"
#include "uir/TpdeUir.h"

namespace tpde::uir {

using ParallelCompileOptions = core::ParallelCompileOptions;

/// Per-thread compile state for one UIR worker: private adapter,
/// assembler, and compiler instance (reset-not-freed, docs/PERF.md).
/// Satisfies core::ParallelCompileWorker.
struct UirParallelWorker {
  using ModuleT = UModule;

  explicit UirParallelWorker(UModule &M)
      : Adapter(M), Compiler(Adapter, Asm) {}

  asmx::Assembler &assembler() { return Asm; }
  bool compileGlobals() { return Compiler.compileGlobals(); }
  bool compileRange(u32 Begin, u32 End) {
    return Compiler.compileRange(Begin, End);
  }
  const support::CompileStatus &status() const { return Compiler.status(); }

  static u32 funcCount(const UModule &M) {
    return static_cast<u32>(M.Funcs.size());
  }
  /// Shard-balancing size proxy: the per-query value count is known up
  /// front and tracks compile cost closely (single pass over values).
  static u32 funcWeight(const UModule &M, u32 I) {
    return static_cast<u32>(M.Funcs[I].Vals.size());
  }
  /// Capacity hint for the driver's fragment buffers (two-pass emission);
  /// see TirParallelWorker::shardTextBound — same shape, query values
  /// lower to a few instructions each.
  static u64 shardTextBound(const UModule &M, u32 Begin, u32 End) {
    u64 Bytes = 0;
    for (u32 I = Begin; I < End; ++I)
      Bytes = Bytes + 16 * static_cast<u64>(M.Funcs[I].Vals.size()) + 64;
    return Bytes;
  }
  /// Enables the driver's ParallelCompileOptions::Verify pre-pass.
  static bool verifyModule(const UModule &M, std::string &Errors) {
    return uir::verifyModule(M, Errors);
  }

  UirAdapter Adapter;
  asmx::Assembler Asm;
  UirCompilerX64 Compiler;
};

/// The UIR instantiation of the shared driver — parallel compilation is
/// a framework property; the database back-end only pays the ~30-line
/// worker contract above.
using ParallelModuleCompilerUir =
    core::ParallelModuleCompiler<UirParallelWorker>;

/// One-shot convenience entry point mirroring compileTpdeUir(): compile
/// \p M into \p Out with \p NumThreads workers (0 = hardware
/// concurrency). With \p Verify the module runs through
/// uir::verifyModule first and malformed query IR never reaches codegen;
/// \p StatusOut (optional) receives the structured first diagnostic on
/// failure. For repeated compiles keep a ParallelModuleCompilerUir
/// around instead — this constructs and tears down the pool per call.
bool compileModuleUirParallel(UModule &M, asmx::Assembler &Out,
                              unsigned NumThreads = 0, bool Verify = false,
                              support::CompileStatus *StatusOut = nullptr);

} // namespace tpde::uir

#endif // TPDE_UIR_PARALLELCOMPILER_H
