//===- uir/Verifier.cpp - Structural validation for UIR ------------------===//

#include "uir/Verifier.h"

#include <unordered_set>

using namespace tpde;
using namespace tpde::uir;

namespace {

bool isTerminator(UOp Op) {
  return Op == UOp::Br || Op == UOp::CondBr || Op == UOp::Ret;
}

/// Expected successor count of a terminator.
u32 succCount(UOp Op) {
  switch (Op) {
  case UOp::Br: return 1;
  case UOp::CondBr: return 2;
  case UOp::Ret: return 0;
  default: break;
  }
  return 0;
}

/// Expected operand count per opcode (the Ops[] encoding: ~0u = absent).
u32 operandArity(UOp Op) {
  switch (Op) {
  case UOp::ConstI:
  case UOp::ConstF:
  case UOp::Br:
  case UOp::Phi: // incomings live in InVal/InBlock, not Ops
    return 0;
  case UOp::ColAddr:
  case UOp::I2F:
  case UOp::Load:
  case UOp::CondBr:
  case UOp::Ret:
    return 1;
  default:
    return 2; // all binary arithmetic/compare/memory-index ops
  }
}

class FuncVerifier {
public:
  FuncVerifier(const UFunc &F, std::string &Errors) : F(F), Errors(Errors) {}

  bool run() {
    const u32 NumVals = static_cast<u32>(F.Vals.size());
    const u32 NumBlocks = static_cast<u32>(F.Blocks.size());
    if (NumBlocks == 0)
      return error("function has no blocks");
    if (NumVals < F.NumArgs)
      return error("fewer values than arguments");

    // Pass 1: block lists. Every listed value id must be in range, belong
    // to exactly one list, and carry a matching Block back-reference.
    // Terminators close every block and appear nowhere else; phis live
    // only in the phi lists.
    std::vector<u8> Listed(NumVals, 0);
    for (u32 B = 0; B < NumBlocks; ++B) {
      const UBlock &Blk = F.Blocks[B];
      for (u32 V : Blk.Phis) {
        if (!checkListed(Listed, V, B, "phi"))
          return false;
        if (F.Vals[V].Op != UOp::Phi)
          return error("non-phi value in phi list of block " +
                       std::to_string(B));
      }
      if (Blk.Insts.empty())
        return error("block " + std::to_string(B) + " has no terminator");
      for (u32 I = 0; I < Blk.Insts.size(); ++I) {
        u32 V = Blk.Insts[I];
        if (!checkListed(Listed, V, B, "instruction"))
          return false;
        const UInst &Inst = F.Vals[V];
        if (Inst.Op == UOp::Phi)
          return error("phi in instruction list of block " +
                       std::to_string(B));
        bool Last = I + 1 == Blk.Insts.size();
        if (isTerminator(Inst.Op) != Last)
          return error(Last ? "block " + std::to_string(B) +
                                  " does not end in a terminator"
                            : "terminator in the middle of block " +
                                  std::to_string(B));
        if (Last && Blk.Succs.size() != succCount(Inst.Op))
          return error("block " + std::to_string(B) +
                       " successor count does not match its terminator");
      }
      for (u32 S : Blk.Succs)
        if (S >= NumBlocks)
          return error("block " + std::to_string(B) +
                       " has an out-of-range successor");
    }

    // Pass 2: operands. Every referenced id must be in range; the Ops[]
    // presence encoding (~0u = absent) must match the opcode's arity.
    // Values outside the block lists are checked too — constants are
    // legitimately kept off the lists (materialized at use), but any
    // value reachable as an operand must still be self-consistent.
    for (u32 V = 0; V < NumVals; ++V) {
      const UInst &Inst = F.Vals[V];
      if (Inst.Block >= NumBlocks)
        return error("value v" + std::to_string(V) +
                     " has an out-of-range block");
      u32 N = Inst.Ops[0] == ~0u ? 0 : (Inst.Ops[1] == ~0u ? 1 : 2);
      if (V >= F.NumArgs && !Listed[V] && Inst.Op != UOp::ConstI &&
          Inst.Op != UOp::ConstF)
        return error("value v" + std::to_string(V) +
                     " is in no block's instruction or phi list");
      if (V < F.NumArgs)
        continue; // argument placeholders carry no meaningful operands
      if (N != operandArity(Inst.Op))
        return error("value v" + std::to_string(V) +
                     " has wrong operand count for its opcode");
      for (u32 I = 0; I < N; ++I)
        if (Inst.Ops[I] >= NumVals)
          return error("value v" + std::to_string(V) +
                       " references dangling operand v" +
                       std::to_string(Inst.Ops[I]));
      if (Inst.Op == UOp::Phi && !checkPhi(V))
        return false;
    }
    return true;
  }

private:
  bool error(std::string Msg) {
    Errors += "function '" + F.Name + "': " + Msg + "\n";
    return false;
  }

  bool checkListed(std::vector<u8> &Listed, u32 V, u32 B, const char *What) {
    const u32 NumVals = static_cast<u32>(F.Vals.size());
    if (V >= NumVals)
      return error("block " + std::to_string(B) +
                   " lists out-of-range value v" + std::to_string(V));
    if (Listed[V])
      return error("value v" + std::to_string(V) +
                   " appears in more than one block list");
    Listed[V] = 1;
    if (F.Vals[V].Block != B)
      return error(std::string(What) + " v" + std::to_string(V) +
                   " has a stale block back-reference");
    return true;
  }

  /// Phi incomings must be in range and agree exactly with the block's
  /// predecessors (each predecessor contributes one incoming).
  bool checkPhi(u32 V) {
    const UInst &Inst = F.Vals[V];
    const u32 NumVals = static_cast<u32>(F.Vals.size());
    const u32 NumBlocks = static_cast<u32>(F.Blocks.size());
    u32 N = Inst.InVal[0] == ~0u ? 0 : (Inst.InVal[1] == ~0u ? 1 : 2);
    if (N == 0)
      return error("phi v" + std::to_string(V) + " has no incomings");
    for (u32 I = 0; I < N; ++I) {
      if (Inst.InBlock[I] >= NumBlocks)
        return error("phi v" + std::to_string(V) +
                     " has an out-of-range incoming block");
      if (Inst.InVal[I] >= NumVals)
        return error("phi v" + std::to_string(V) +
                     " has a dangling incoming value");
    }
    if (N == 2 && Inst.InBlock[0] == Inst.InBlock[1])
      return error("phi v" + std::to_string(V) +
                   " has duplicate incoming blocks");
    // Predecessor agreement: every predecessor of the phi's block must
    // appear among the incomings, and vice versa.
    u32 B = Inst.Block;
    u32 Preds = 0;
    for (u32 P = 0; P < NumBlocks; ++P) {
      for (u32 S : F.Blocks[P].Succs) {
        if (S != B)
          continue;
        ++Preds;
        bool Found = false;
        for (u32 I = 0; I < N; ++I)
          Found |= Inst.InBlock[I] == P;
        if (!Found)
          return error("phi v" + std::to_string(V) +
                       " is missing an incoming for predecessor block " +
                       std::to_string(P));
      }
    }
    if (Preds != N)
      return error("phi v" + std::to_string(V) +
                   " incoming count does not match predecessor count");
    return true;
  }

  const UFunc &F;
  std::string &Errors;
};

} // namespace

bool tpde::uir::verifyFunction(const UFunc &F, std::string &Errors) {
  return FuncVerifier(F, Errors).run();
}

bool tpde::uir::verifyModule(const UModule &M, std::string &Errors) {
  bool OK = true;
  std::unordered_set<std::string_view> Names;
  for (const UFunc &F : M.Funcs) {
    if (!Names.insert(F.Name).second) {
      Errors += "duplicate function name '" + F.Name + "'\n";
      OK = false;
    }
    OK &= verifyFunction(F, Errors);
  }
  return OK;
}
