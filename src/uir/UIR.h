//===- uir/UIR.h - Umbra-IR stand-in and query compiler ---------*- C++ -*-===//
///
/// \file
/// A database-oriented SSA IR standing in for Umbra IR (paper §7): a very
/// small type system (i64, f64, ptr, bool), dense per-function arrays,
/// and domain-specific instructions (saddtrap: checked addition that
/// calls a trap handler on overflow). Queries (scan-filter-aggregate over
/// a columnar table) are compiled from a plan straight into UIR — there
/// is no translation from another IR, which is exactly the latency
/// advantage the paper's §7 measures for TPDE against the LLVM path.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_UIR_UIR_H
#define TPDE_UIR_UIR_H

#include "support/Common.h"

#include <string>
#include <type_traits>
#include <vector>

namespace tpde::uir {

enum class UTy : u8 { I64, F64, Ptr, Bool, Void };

enum class UOp : u8 {
  ConstI, ConstF, ColAddr,           // column base address (Aux = column id)
  Add, Sub, Mul, SAddTrap,           // SAddTrap: i64 add, trap on overflow
  And, Or, Shl, Shr,
  CmpLt, CmpLe, CmpEq, CmpNe, FCmpLt,
  FAdd, FMul, I2F,
  Load, Store, PtrIdx,               // PtrIdx: ptr + idx*Aux
  Br, CondBr, Ret, Phi,
};

struct UInst {
  UOp Op;
  UTy Ty = UTy::I64;
  u32 Ops[2] = {~0u, ~0u}; ///< Operand value ids (~0 = absent).
  u64 Aux = 0;             ///< Constant bits / column id / scale.
  u32 Block = 0;
  // Phi incomings (2 max: database loops are simple).
  u32 InBlock[2] = {~0u, ~0u};
  u32 InVal[2] = {~0u, ~0u};
};

/// UirAdapter::instOperands() hands out std::span{I.Ops, n} — the
/// operands MUST be one true array. (They used to be two scalar fields
/// A/B, and the span from &A into B was undefined behavior that only
/// worked by layout accident.)
static_assert(std::is_same_v<decltype(UInst::Ops), u32[2]>,
              "UInst operands must be a contiguous array; "
              "instOperands() returns a span over them");

struct UBlock {
  std::vector<u32> Phis;
  std::vector<u32> Insts;
  std::vector<u32> Succs;
  u64 Aux = 0;
};

/// One query function: i64 query(ptr columns[], i64 rowCount).
struct UFunc {
  std::string Name;
  std::vector<UInst> Vals;
  std::vector<UBlock> Blocks;
  u32 NumArgs = 2; ///< value ids 0 (columns ptr) and 1 (row count)

  u32 push(UInst I) {
    Vals.push_back(I);
    return static_cast<u32>(Vals.size() - 1);
  }
};

struct UModule {
  std::vector<UFunc> Funcs;
};

// --- Query plans ----------------------------------------------------------

/// Filter predicate: column[i] <op> constant.
struct Pred {
  u32 Col;
  UOp Cmp; ///< CmpLt/CmpLe/CmpEq/CmpNe
  i64 K;
};

/// A TPC-DS-like aggregation query: SELECT SUM(colA * colB + k)
/// FROM t WHERE preds [AND float(col) < fpK].
struct QueryPlan {
  std::string Name;
  std::vector<Pred> Preds;
  u32 AggColA = 0, AggColB = 1;
  i64 AggK = 0;
  bool Checked = true; ///< use saddtrap for the sum (Umbra semantics)
  /// Optional floating-point predicate: i2f(column[FpPredCol]) < FpK.
  /// The f64 threshold is a ConstF materialized at use, so it exercises
  /// the rematerialized-FP-constant path of the back-ends.
  bool HasFpPred = false;
  u32 FpPredCol = 0;
  double FpK = 0.0;
};

/// Compiles a plan into UIR (scan loop, fused filter chain, aggregate).
u32 compilePlan(UModule &M, const QueryPlan &P);

/// Builds ~20 TPC-DS-like plan variants.
std::vector<QueryPlan> tpcdsLikePlans();

/// Synthetic columnar table: \p NumCols i64 columns of \p Rows values.
struct Table {
  u32 NumCols;
  u64 Rows;
  std::vector<std::vector<i64>> Cols;
  std::vector<const i64 *> ColPtrs;

  Table(u32 NumCols, u64 Rows, u64 Seed);
};

/// Reference (interpreted) evaluation of a plan over a table.
i64 evalPlan(const QueryPlan &P, const Table &T);

} // namespace tpde::uir

#endif // TPDE_UIR_UIR_H
