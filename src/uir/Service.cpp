//===- uir/Service.cpp - UIR compile-service binding ----------------------===//

#include "uir/Service.h"

namespace tpde::uir {

support::Fp128 fingerprintModule(const UModule &M) {
  support::Hasher128 H;
  H.len(M.Funcs.size());
  for (const UFunc &F : M.Funcs) {
    H.str(F.Name);
    H.u32v(F.NumArgs);
    H.len(F.Vals.size());
    for (const UInst &I : F.Vals) {
      H.u8v(static_cast<u8>(I.Op));
      H.u8v(static_cast<u8>(I.Ty));
      H.u32v(I.Ops[0]);
      H.u32v(I.Ops[1]);
      H.u64v(I.Aux);
      H.u32v(I.Block);
      H.u32v(I.InBlock[0]);
      H.u32v(I.InBlock[1]);
      H.u32v(I.InVal[0]);
      H.u32v(I.InVal[1]);
    }
    H.len(F.Blocks.size());
    for (const UBlock &B : F.Blocks) {
      // UBlock::Aux is adapter scratch — mutated by compilation, not part
      // of the module's content.
      H.len(B.Phis.size());
      for (u32 V : B.Phis)
        H.u32v(V);
      H.len(B.Insts.size());
      for (u32 V : B.Insts)
        H.u32v(V);
      H.len(B.Succs.size());
      for (u32 S : B.Succs)
        H.u32v(S);
    }
  }
  return H.digest();
}

bool UirServiceTraits::appendTo(UModule &Batch, const UModule &Job) {
  // Check first, mutate after: a rejected job must leave the batch usable.
  for (size_t J = 0; J < Job.Funcs.size(); ++J) {
    for (const UFunc &BF : Batch.Funcs)
      if (BF.Name == Job.Funcs[J].Name)
        return false;
    for (size_t K = J + 1; K < Job.Funcs.size(); ++K)
      if (Job.Funcs[J].Name == Job.Funcs[K].Name)
        return false;
  }
  for (const UFunc &F : Job.Funcs)
    Batch.Funcs.push_back(F);
  return true;
}

} // namespace tpde::uir
