//===- uir/Uir.cpp - Query compilation, data, DirectEmit, UIR->TIR --------===//

#include "uir/UIR.h"
#include "tir/Builder.h"
#include "x64/Encoder.h"

#include <bit>

using namespace tpde;
using namespace tpde::uir;

// --- Plan -> UIR -----------------------------------------------------------

u32 tpde::uir::compilePlan(UModule &M, const QueryPlan &P) {
  UFunc F;
  F.Name = P.Name;
  // Args: value 0 = columns array (ptr), value 1 = row count (i64).
  F.push(UInst{UOp::ConstI, UTy::Ptr});
  F.push(UInst{UOp::ConstI, UTy::I64});
  F.Blocks.resize(3);
  auto inst = [&](u32 Blk, UInst I) {
    I.Block = Blk;
    u32 V = F.push(I);
    F.Blocks[Blk].Insts.push_back(V);
    return V;
  };
  auto phi = [&](u32 Blk, UTy Ty) {
    UInst I;
    I.Op = UOp::Phi;
    I.Ty = Ty;
    I.Block = Blk;
    u32 V = F.push(I);
    F.Blocks[Blk].Phis.push_back(V);
    return V;
  };
  auto konst = [&](u32 Blk, i64 K) {
    UInst I;
    I.Op = UOp::ConstI;
    I.Ty = UTy::I64;
    I.Aux = static_cast<u64>(K);
    I.Block = Blk;
    return F.push(I); // constants are materialized at use
  };

  // b0: entry -> b1
  inst(0, UInst{UOp::Br});
  F.Blocks[0].Succs = {1};
  // b1: loop
  u32 IPhi = phi(1, UTy::I64);
  u32 SumPhi = phi(1, UTy::I64);
  u32 Pass = konst(1, 1);
  auto loadCol = [&](u32 Col) {
    UInst CA{UOp::ColAddr, UTy::Ptr};
    CA.Ops[0] = 0;
    CA.Aux = Col;
    u32 Base = inst(1, CA);
    UInst PI{UOp::PtrIdx, UTy::Ptr};
    PI.Ops[0] = Base;
    PI.Ops[1] = IPhi;
    PI.Aux = 8;
    u32 Addr = inst(1, PI);
    UInst LD{UOp::Load, UTy::I64};
    LD.Ops[0] = Addr;
    return inst(1, LD);
  };
  for (const Pred &Pr : P.Preds) {
    u32 V = loadCol(Pr.Col);
    UInst C{Pr.Cmp, UTy::I64};
    C.Ops[0] = V;
    C.Ops[1] = konst(1, Pr.K);
    u32 CV = inst(1, C);
    UInst A{UOp::And, UTy::I64};
    A.Ops[0] = Pass;
    A.Ops[1] = CV;
    Pass = inst(1, A);
  }
  if (P.HasFpPred) {
    // i2f(col) < fpK — the threshold is a ConstF that is *not* in any
    // block's instruction list: the back-ends materialize it at use
    // (the rematerialized-f64-constant path).
    u32 V = loadCol(P.FpPredCol);
    UInst Cv{UOp::I2F, UTy::F64};
    Cv.Ops[0] = V;
    u32 FV = inst(1, Cv);
    UInst KF{UOp::ConstF, UTy::F64};
    KF.Aux = std::bit_cast<u64>(P.FpK);
    KF.Block = 1;
    u32 KV = F.push(KF);
    UInst C{UOp::FCmpLt, UTy::Bool};
    C.Ops[0] = FV;
    C.Ops[1] = KV;
    u32 CV = inst(1, C);
    UInst A{UOp::And, UTy::I64};
    A.Ops[0] = Pass;
    A.Ops[1] = CV;
    Pass = inst(1, A);
  }
  u32 ValA = loadCol(P.AggColA);
  u32 ValB = loadCol(P.AggColB);
  UInst Mul{UOp::Mul, UTy::I64};
  Mul.Ops[0] = ValA;
  Mul.Ops[1] = ValB;
  u32 Prod = inst(1, Mul);
  UInst AddK{UOp::Add, UTy::I64};
  AddK.Ops[0] = Prod;
  AddK.Ops[1] = konst(1, P.AggK);
  u32 T = inst(1, AddK);
  UInst Gate{UOp::Mul, UTy::I64};
  Gate.Ops[0] = T;
  Gate.Ops[1] = Pass;
  u32 Contrib = inst(1, Gate);
  UInst Acc{P.Checked ? UOp::SAddTrap : UOp::Add, UTy::I64};
  Acc.Ops[0] = SumPhi;
  Acc.Ops[1] = Contrib;
  u32 Sum2 = inst(1, Acc);
  UInst Inc{UOp::Add, UTy::I64};
  Inc.Ops[0] = IPhi;
  Inc.Ops[1] = konst(1, 1);
  u32 I2 = inst(1, Inc);
  UInst Cmp{UOp::CmpLt, UTy::I64};
  Cmp.Ops[0] = I2;
  Cmp.Ops[1] = 1; // row count arg
  u32 Cond = inst(1, Cmp);
  UInst CB{UOp::CondBr};
  CB.Ops[0] = Cond;
  inst(1, CB);
  F.Blocks[1].Succs = {1, 2};
  // Phi incomings.
  F.Vals[IPhi].InBlock[0] = 0;
  F.Vals[IPhi].InVal[0] = konst(0, 0);
  F.Vals[IPhi].InBlock[1] = 1;
  F.Vals[IPhi].InVal[1] = I2;
  F.Vals[SumPhi].InBlock[0] = 0;
  F.Vals[SumPhi].InVal[0] = konst(0, 0);
  F.Vals[SumPhi].InBlock[1] = 1;
  F.Vals[SumPhi].InVal[1] = Sum2;
  // b2: ret sum2
  UInst Ret{UOp::Ret};
  Ret.Ops[0] = Sum2;
  inst(2, Ret);

  M.Funcs.push_back(std::move(F));
  return static_cast<u32>(M.Funcs.size() - 1);
}

std::vector<QueryPlan> tpde::uir::tpcdsLikePlans() {
  std::vector<QueryPlan> Out;
  // 20 variants mixing selectivity, predicate count, and aggregates,
  // shaped like TPC-DS scan-heavy aggregation queries.
  for (u32 Q = 0; Q < 20; ++Q) {
    QueryPlan P;
    P.Name = "q" + std::to_string(Q + 1);
    u32 NumPreds = 1 + Q % 4;
    for (u32 I = 0; I < NumPreds; ++I) {
      Pred Pr;
      Pr.Col = (Q + I) % 6;
      Pr.Cmp = I % 3 == 0 ? UOp::CmpLt : (I % 3 == 1 ? UOp::CmpNe
                                                     : UOp::CmpLe);
      Pr.K = static_cast<i64>((Q * 37 + I * 11) % 1000);
      P.Preds.push_back(Pr);
    }
    P.AggColA = Q % 6;
    P.AggColB = (Q + 3) % 6;
    P.AggK = Q;
    P.Checked = Q % 2 == 0;
    Out.push_back(std::move(P));
  }
  return Out;
}

// --- Data ------------------------------------------------------------------

tpde::uir::Table::Table(u32 NumCols, u64 Rows, u64 Seed)
    : NumCols(NumCols), Rows(Rows) {
  u64 S = Seed * 6364136223846793005ull + 1442695040888963407ull;
  Cols.resize(NumCols);
  for (u32 C = 0; C < NumCols; ++C) {
    Cols[C].resize(Rows);
    for (u64 R = 0; R < Rows; ++R) {
      S = S * 6364136223846793005ull + 1442695040888963407ull;
      Cols[C][R] = static_cast<i64>((S >> 33) % 1000);
    }
  }
  for (u32 C = 0; C < NumCols; ++C)
    ColPtrs.push_back(Cols[C].data());
}

i64 tpde::uir::evalPlan(const QueryPlan &P, const Table &T) {
  i64 Sum = 0;
  for (u64 R = 0; R < T.Rows; ++R) {
    i64 Pass = 1;
    for (const Pred &Pr : P.Preds) {
      i64 V = T.Cols[Pr.Col][R];
      bool B = Pr.Cmp == UOp::CmpLt   ? V < Pr.K
               : Pr.Cmp == UOp::CmpLe ? V <= Pr.K
               : Pr.Cmp == UOp::CmpEq ? V == Pr.K
                                      : V != Pr.K;
      Pass &= B ? 1 : 0;
    }
    if (P.HasFpPred)
      Pass &= static_cast<double>(T.Cols[P.FpPredCol][R]) < P.FpK ? 1 : 0;
    Sum += (T.Cols[P.AggColA][R] * T.Cols[P.AggColB][R] + P.AggK) * Pass;
  }
  return Sum;
}

// --- UIR -> TIR (the "LLVM path" translation of §7) -------------------------

namespace tpde::uir {

bool translateToTir(const UModule &M, tir::Module &Out) {
  for (const UFunc &F : M.Funcs) {
    tir::FunctionBuilder B(Out, F.Name, tir::Type::I64,
                           {tir::Type::Ptr, tir::Type::I64});
    std::vector<tir::ValRef> Map(F.Vals.size(), tir::InvalidRef);
    Map[0] = B.arg(0);
    Map[1] = B.arg(1);
    for (u32 Blk = 0; Blk < F.Blocks.size(); ++Blk)
      B.addBlock("b" + std::to_string(Blk));
    auto val = [&](u32 V) -> tir::ValRef {
      if (Map[V] != tir::InvalidRef)
        return Map[V];
      const UInst &I = F.Vals[V];
      assert(I.Op == UOp::ConstI || I.Op == UOp::ConstF);
      if (I.Op == UOp::ConstF)
        return Map[V] = B.constF64(std::bit_cast<double>(I.Aux));
      return Map[V] = B.constInt(tir::Type::I64, I.Aux);
    };
    // Phis first.
    for (u32 Blk = 0; Blk < F.Blocks.size(); ++Blk) {
      B.setInsertPoint(Blk);
      for (u32 P : F.Blocks[Blk].Phis)
        Map[P] = B.phi(tir::Type::I64);
    }
    for (u32 Blk = 0; Blk < F.Blocks.size(); ++Blk) {
      B.setInsertPoint(Blk);
      for (u32 VI : F.Blocks[Blk].Insts) {
        const UInst &I = F.Vals[VI];
        switch (I.Op) {
        case UOp::ColAddr: {
          tir::ValRef P =
              B.ptrAdd(val(I.Ops[0]), tir::InvalidRef, 1,
                       static_cast<i64>(8 * I.Aux));
          Map[VI] = B.load(tir::Type::Ptr, P);
          break;
        }
        case UOp::PtrIdx:
          Map[VI] = B.ptrAdd(val(I.Ops[0]), val(I.Ops[1]), I.Aux, 0);
          break;
        case UOp::Load:
          Map[VI] = B.load(tir::Type::I64, val(I.Ops[0]));
          break;
        case UOp::Add:
        case UOp::SAddTrap: // the LLVM path lowers the trap check away
          Map[VI] = B.binop(tir::Op::Add, val(I.Ops[0]), val(I.Ops[1]));
          break;
        case UOp::Sub:
          Map[VI] = B.binop(tir::Op::Sub, val(I.Ops[0]), val(I.Ops[1]));
          break;
        case UOp::Mul:
          Map[VI] = B.binop(tir::Op::Mul, val(I.Ops[0]), val(I.Ops[1]));
          break;
        case UOp::And:
          Map[VI] = B.binop(tir::Op::And, val(I.Ops[0]), val(I.Ops[1]));
          break;
        case UOp::I2F:
          Map[VI] = B.cast(tir::Op::SiToFp, tir::Type::F64, val(I.Ops[0]));
          break;
        case UOp::FAdd:
          Map[VI] = B.binop(tir::Op::FAdd, val(I.Ops[0]), val(I.Ops[1]));
          break;
        case UOp::FMul:
          Map[VI] = B.binop(tir::Op::FMul, val(I.Ops[0]), val(I.Ops[1]));
          break;
        case UOp::FCmpLt:
          Map[VI] = B.cast(tir::Op::Zext, tir::Type::I64,
                           B.fcmp(tir::FCmp::Olt, val(I.Ops[0]),
                                  val(I.Ops[1])));
          break;
        case UOp::CmpLt:
        case UOp::CmpLe:
        case UOp::CmpEq:
        case UOp::CmpNe: {
          tir::ICmp P = I.Op == UOp::CmpLt   ? tir::ICmp::Slt
                        : I.Op == UOp::CmpLe ? tir::ICmp::Sle
                        : I.Op == UOp::CmpEq ? tir::ICmp::Eq
                                             : tir::ICmp::Ne;
          Map[VI] = B.cast(tir::Op::Zext, tir::Type::I64,
                           B.icmp(P, val(I.Ops[0]), val(I.Ops[1])));
          break;
        }
        case UOp::Br:
          B.br(F.Blocks[Blk].Succs[0]);
          break;
        case UOp::CondBr: {
          tir::ValRef C = B.icmp(tir::ICmp::Ne, val(I.Ops[0]),
                                 B.constInt(tir::Type::I64, 0));
          B.condBr(C, F.Blocks[Blk].Succs[0], F.Blocks[Blk].Succs[1]);
          break;
        }
        case UOp::Ret:
          B.ret(val(I.Ops[0]));
          break;
        default:
          return false;
        }
      }
    }
    for (u32 Blk = 0; Blk < F.Blocks.size(); ++Blk) {
      for (u32 P : F.Blocks[Blk].Phis) {
        const UInst &I = F.Vals[P];
        for (int K = 0; K < 2; ++K)
          if (I.InBlock[K] != ~0u)
            B.addPhiIncoming(Map[P], I.InBlock[K], val(I.InVal[K]));
      }
    }
    B.finish();
  }
  return true;
}

// --- DirectEmit stand-in -----------------------------------------------------

/// Umbra's DirectEmit analog: a two-pass, completely specialized compiler
/// for UIR query functions. Pass 1 counts uses; pass 2 emits x86-64
/// directly, pinning the loop-carried phis into callee-saved registers
/// and evaluating the expression chain in scratch registers via a tiny
/// value->register map. No general register allocator, no IR.
bool compileDirectEmit(const UModule &M, asmx::Assembler &Asm) {
  using namespace tpde::x64;
  Emitter E(Asm);
  for (const UFunc &F : M.Funcs) {
    asmx::SymRef Sym =
        Asm.createSymbol(F.Name, asmx::Linkage::External, true);
    Asm.text().alignToBoundary(16);
    u64 Start = Asm.text().size();
    Asm.defineSymbol(Sym, asmx::SecKind::Text, Start, 0);
    Asm.resetLabels();

    // Pass 1: use counts (drives register recycling in pass 2).
    std::vector<u8> Uses(F.Vals.size(), 0);
    for (const UInst &I : F.Vals) {
      for (u32 Op : I.Ops)
        if (Op != ~0u)
          ++Uses[Op];
      for (int K = 0; K < 2; ++K)
        if (I.InVal[K] != ~0u)
          ++Uses[I.InVal[K]];
    }

    // Pass 2: direct emission. Phis live in rbx/r12 (there are exactly
    // two in a scan query: index and accumulator); expression temporaries
    // are recycled using the pass-1 use counts (Tidy-Tuples style).
    E.push(RBP);
    E.movRR(8, RBP, RSP);
    E.push(RBX);
    E.push(R12);
    // args: rdi = columns, rsi = rows
    std::vector<AsmReg> Loc(F.Vals.size(), NoReg);
    std::vector<AsmReg> Free = {RAX, RCX, RDX, R8, R9, R10, R11};
    auto alloc = [&](u32 V) {
      assert(!Free.empty() && "DirectEmit scratch pool exhausted");
      AsmReg R = Free.back();
      Free.pop_back();
      Loc[V] = R;
      return R;
    };
    auto release = [&](u32 V) {
      if (V == ~0u || V < 2 || F.Vals[V].Op == UOp::Phi)
        return;
      if (--Uses[V] == 0 && Loc[V].isValid()) {
        Free.push_back(Loc[V]);
        Loc[V] = NoReg;
      }
    };
    AsmReg PhiRegs[2] = {RBX, R12};
    asmx::Label Loop = Asm.makeLabel(), Exit = Asm.makeLabel();

    // Entry: initialize the phis.
    u32 PhiIdx = 0;
    for (u32 P : F.Blocks[1].Phis) {
      const UInst &I = F.Vals[P];
      E.movRI(PhiRegs[PhiIdx], F.Vals[I.InVal[0]].Aux);
      Loc[P] = PhiRegs[PhiIdx];
      ++PhiIdx;
    }
    Asm.bindLabel(Loop);
    u32 SumNew = ~0u, IdxNew = ~0u;
    for (u32 VI : F.Blocks[1].Insts) {
      const UInst &I = F.Vals[VI];
      auto src = [&](u32 V) -> AsmReg {
        if (Loc[V].isValid())
          return Loc[V];
        // Unmaterialized constant.
        AsmReg R = alloc(V);
        E.movRI(R, F.Vals[V].Aux);
        return R;
      };
      auto finish = [&]() {
        release(I.Ops[0]);
        release(I.Ops[1]);
      };
      switch (I.Op) {
      case UOp::ColAddr:
        E.load(8, alloc(VI), Mem(RDI, static_cast<i32>(8 * I.Aux)));
        finish();
        break;
      case UOp::PtrIdx: {
        AsmReg Base = src(I.Ops[0]), Idx = src(I.Ops[1]);
        E.lea(alloc(VI), Mem(Base, Idx, static_cast<u8>(I.Aux), 0));
        finish();
        break;
      }
      case UOp::Load: {
        AsmReg A = src(I.Ops[0]);
        E.load(8, alloc(VI), Mem(A, 0));
        finish();
        break;
      }
      case UOp::Add:
      case UOp::SAddTrap:
      case UOp::Sub:
      case UOp::Mul:
      case UOp::And: {
        AsmReg L = src(I.Ops[0]), R = src(I.Ops[1]);
        AsmReg D = alloc(VI);
        E.movRR(8, D, L);
        if (I.Op == UOp::Mul)
          E.imulRR(8, D, R);
        else
          E.aluRR(I.Op == UOp::Sub   ? AluOp::Sub
                  : I.Op == UOp::And ? AluOp::And
                                     : AluOp::Add,
                  8, D, R);
        if (I.Op == UOp::SAddTrap) {
          // Checked add: trap on overflow (ud2 analog of Umbra's trap).
          asmx::Label Ok = Asm.makeLabel();
          E.jccLabel(Cond::NO, Ok);
          E.ud2();
          Asm.bindLabel(Ok);
        }
        // Track accumulator updates: phi[1] is the sum.
        if (I.Ops[0] == F.Blocks[1].Phis[1] || I.Op == UOp::SAddTrap)
          SumNew = VI;
        if (I.Ops[0] == F.Blocks[1].Phis[0])
          IdxNew = VI;
        finish();
        break;
      }
      case UOp::CmpLt:
      case UOp::CmpLe:
      case UOp::CmpEq:
      case UOp::CmpNe: {
        AsmReg L = src(I.Ops[0]),
               R = I.Ops[1] == 1 ? RSI : src(I.Ops[1]);
        AsmReg D = alloc(VI);
        E.aluRR(AluOp::Cmp, 8, L, R);
        E.setcc(I.Op == UOp::CmpLt   ? Cond::L
                : I.Op == UOp::CmpLe ? Cond::LE
                : I.Op == UOp::CmpEq ? Cond::E
                                     : Cond::NE,
                D);
        E.movzxRR(1, D, D);
        finish();
        break;
      }
      case UOp::CondBr: {
        // Loop back-edge: move the new phi values into the pinned regs.
        if (SumNew != ~0u)
          E.movRR(8, R12, Loc[SumNew]);
        if (IdxNew != ~0u)
          E.movRR(8, RBX, Loc[IdxNew]);
        AsmReg C = Loc[I.Ops[0]];
        E.testRR(8, C, C);
        E.jccLabel(Cond::NE, Loop);
        E.jmpLabel(Exit);
        break;
      }
      default:
        return false;
      }
    }
    Asm.bindLabel(Exit);
    E.movRR(8, RAX, R12); // sum
    E.pop(R12);
    E.pop(RBX);
    E.pop(RBP);
    E.ret();
    Asm.setSymbolSize(Sym, Asm.text().size() - Start);
  }
  return !Asm.hasError();
}

} // namespace tpde::uir
