//===- uir/ParallelCompiler.cpp - One-shot UIR parallel entry point -------===//

#include "uir/ParallelCompiler.h"

using namespace tpde;
using namespace tpde::uir;

bool tpde::uir::compileModuleUirParallel(UModule &M, asmx::Assembler &Out,
                                         unsigned NumThreads) {
  ParallelCompileOptions Opts;
  Opts.NumThreads = NumThreads;
  ParallelModuleCompilerUir PC(M, Opts);
  return PC.compile(Out);
}
