//===- uir/ParallelCompiler.cpp - One-shot UIR parallel entry point -------===//

#include "uir/ParallelCompiler.h"

using namespace tpde;
using namespace tpde::uir;

bool tpde::uir::compileModuleUirParallel(UModule &M, asmx::Assembler &Out,
                                         unsigned NumThreads, bool Verify,
                                         support::CompileStatus *StatusOut) {
  ParallelCompileOptions Opts;
  Opts.NumThreads = NumThreads;
  Opts.Verify = Verify;
  ParallelModuleCompilerUir PC(M, Opts);
  bool OK = PC.compile(Out);
  if (StatusOut)
    *StatusOut = PC.status();
  return OK;
}
