//===- tpde_tir/ParallelCompiler.cpp - One-shot parallel entry points -----===//

#include "tpde_tir/ParallelCompiler.h"

using namespace tpde;
using namespace tpde::tpde_tir;

namespace {

template <typename PC>
bool compileOneShot(tir::Module &M, asmx::Assembler &Out, unsigned NumThreads,
                    bool Verify, support::CompileStatus *StatusOut) {
  ParallelCompileOptions Opts;
  Opts.NumThreads = NumThreads;
  Opts.Verify = Verify;
  PC C(M, Opts);
  bool OK = C.compile(Out);
  if (StatusOut)
    *StatusOut = C.status();
  return OK;
}

} // namespace

bool tpde::tpde_tir::compileModuleX64Parallel(tir::Module &M,
                                              asmx::Assembler &Out,
                                              unsigned NumThreads, bool Verify,
                                              support::CompileStatus *StatusOut) {
  return compileOneShot<ParallelModuleCompiler>(M, Out, NumThreads, Verify,
                                                StatusOut);
}

bool tpde::tpde_tir::compileModuleA64Parallel(tir::Module &M,
                                              asmx::Assembler &Out,
                                              unsigned NumThreads, bool Verify,
                                              support::CompileStatus *StatusOut) {
  return compileOneShot<ParallelModuleCompilerA64>(M, Out, NumThreads, Verify,
                                                   StatusOut);
}
