//===- tpde_tir/ParallelCompiler.cpp - One-shot parallel entry points -----===//

#include "tpde_tir/ParallelCompiler.h"

using namespace tpde;
using namespace tpde::tpde_tir;

bool tpde::tpde_tir::compileModuleX64Parallel(tir::Module &M,
                                              asmx::Assembler &Out,
                                              unsigned NumThreads) {
  ParallelCompileOptions Opts;
  Opts.NumThreads = NumThreads;
  ParallelModuleCompiler PC(M, Opts);
  return PC.compile(Out);
}

bool tpde::tpde_tir::compileModuleA64Parallel(tir::Module &M,
                                              asmx::Assembler &Out,
                                              unsigned NumThreads) {
  ParallelCompileOptions Opts;
  Opts.NumThreads = NumThreads;
  ParallelModuleCompilerA64 PC(M, Opts);
  return PC.compile(Out);
}
