//===- tpde_tir/ParallelCompiler.cpp - Sharded module compilation ---------===//

#include "tpde_tir/ParallelCompiler.h"

using namespace tpde;
using namespace tpde::tpde_tir;

ParallelModuleCompiler::ParallelModuleCompiler(tir::Module &M,
                                              ParallelCompileOptions Opts)
    : M(M), Opts(Opts) {
  unsigned N = Opts.NumThreads;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  if (this->Opts.FuncsPerShard == 0)
    this->Opts.FuncsPerShard = 1;
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.push_back(std::make_unique<Worker>(M));
  // Worker 0 is the calling thread; only 1..N-1 get their own thread.
  for (unsigned I = 1; I < N; ++I)
    Workers[I]->Thread = std::thread([this, I] { workerMain(I); });
}

ParallelModuleCompiler::~ParallelModuleCompiler() {
  {
    std::lock_guard<std::mutex> L(Mtx);
    Stop = true;
  }
  JobCV.notify_all();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

bool ParallelModuleCompiler::compile(asmx::Assembler &Out) {
  const u32 NumFuncs = static_cast<u32>(M.Funcs.size());
  NumShards = (NumFuncs + Opts.FuncsPerShard - 1) / Opts.FuncsPerShard;
  while (Frags.size() < NumShards)
    Frags.push_back(std::make_unique<asmx::Assembler>());
  Failed.store(false, std::memory_order_relaxed);
  Queue.reset(NumShards, threadCount());

  // Publish the job. The mutex orders the shard/fragment setup above
  // before any worker starts draining.
  {
    std::lock_guard<std::mutex> L(Mtx);
    ++JobSeq;
    Pending = threadCount() - 1;
  }
  JobCV.notify_all();

  // The calling thread produces the module-level fragment (global data +
  // declarations) and then joins shard compilation as worker 0.
  Worker &W0 = *Workers[0];
  bool GlobalsOK = W0.Compiler.compileGlobals();
  GlobalsFrag.reset();
  GlobalsFrag.mergeFrom(W0.Asm);
  if (!GlobalsOK)
    Failed.store(true, std::memory_order_relaxed);
  drainQueue(0);

  {
    std::unique_lock<std::mutex> L(Mtx);
    DoneCV.wait(L, [this] { return Pending == 0; });
  }

  // Deterministic merge: globals fragment first, then every shard in
  // shard-index order — independent of which worker compiled what.
  Out.reset();
  Out.mergeFrom(GlobalsFrag);
  for (u32 S = 0; S < NumShards; ++S)
    Out.mergeFrom(*Frags[S]);
  return !Failed.load(std::memory_order_relaxed) && !Out.hasError();
}

void ParallelModuleCompiler::workerMain(unsigned Id) {
  u64 Seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(Mtx);
      JobCV.wait(L, [&] { return Stop || JobSeq > Seen; });
      if (Stop)
        return;
      Seen = JobSeq;
    }
    drainQueue(Id);
    {
      std::lock_guard<std::mutex> L(Mtx);
      if (--Pending == 0)
        DoneCV.notify_one();
    }
  }
}

void ParallelModuleCompiler::drainQueue(unsigned Id) {
  u32 Shard;
  while (Queue.pop(Id, Shard))
    compileShard(Id, Shard);
}

void ParallelModuleCompiler::compileShard(unsigned Id, u32 Shard) {
  Worker &W = *Workers[Id];
  const u32 NumFuncs = static_cast<u32>(M.Funcs.size());
  u32 Begin = Shard * Opts.FuncsPerShard;
  u32 End = Begin + Opts.FuncsPerShard;
  if (End > NumFuncs)
    End = NumFuncs;
  // compileRange rewinds (or resets) the worker's assembler itself; after
  // the first compile this hits the symbol-batching fast path and the
  // whole shard compile is allocation-free.
  bool OK = W.Compiler.compileRange(Begin, End);
  asmx::Assembler &Frag = *Frags[Shard];
  Frag.reset();
  if (OK) {
    Frag.mergeFrom(W.Asm);
  } else {
    // A failed shard may hold half-emitted code with unbound labels; drop
    // it (the compile reports failure) instead of merging garbage.
    Failed.store(true, std::memory_order_relaxed);
  }
}

bool tpde::tpde_tir::compileModuleX64Parallel(tir::Module &M,
                                              asmx::Assembler &Out,
                                              unsigned NumThreads) {
  ParallelCompileOptions Opts;
  Opts.NumThreads = NumThreads;
  ParallelModuleCompiler PC(M, Opts);
  return PC.compile(Out);
}
