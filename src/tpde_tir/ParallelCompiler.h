//===- tpde_tir/ParallelCompiler.h - Sharded module compilation -*- C++ -*-===//
///
/// \file
/// Compiles a tir::Module's functions across N worker threads, each owning
/// a private asmx::Assembler + TPDE compiler instance (reset-not-freed, per
/// docs/PERF.md), then deterministically merges the per-shard text/rodata,
/// relocations, and symbol tables into one linkable/JIT-mappable module.
///
/// Determinism contract: the merged output is **byte-identical regardless
/// of thread count and schedule**. This falls out of three rules:
///
///  1. The shard decomposition depends only on the module (fixed functions
///     per shard), never on the thread count.
///  2. Each shard's output is snapshotted into its own fragment assembler;
///     the work-stealing queue decides *who* compiles a shard, never
///     *where* its bytes land.
///  3. The final merge walks fragments in shard-index order on the calling
///     thread (module-level globals fragment first).
///
/// Cross-shard references (calls, global addresses) work because the code
/// generators only ever reference symbols through relocations: every shard
/// declares the full module-level symbol table, and Assembler::mergeFrom()
/// binds those declarations to the defining shard's symbols by interned
/// name. The .text bytes of the merged module are identical to a
/// single-assembler serial compile; only the read-only data can differ
/// (the FP constant pool deduplicates per shard instead of per module).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_PARALLELCOMPILER_H
#define TPDE_TPDE_TIR_PARALLELCOMPILER_H

#include "support/WorkQueue.h"
#include "tpde_tir/TirCompilerX64.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tpde::tpde_tir {

struct ParallelCompileOptions {
  /// Worker threads including the calling thread; 0 means
  /// std::thread::hardware_concurrency().
  unsigned NumThreads = 0;
  /// Shard granularity in functions. Part of the determinism contract:
  /// the same module always decomposes into the same shards, whatever the
  /// thread count. Smaller shards balance better; larger shards amortize
  /// the per-shard snapshot/merge cost and share more FP-pool entries.
  u32 FuncsPerShard = 4;
};

/// Reusable parallel compilation pipeline for one module. Construction
/// spawns the worker pool; compile() may be called repeatedly (e.g. a JIT
/// recompiling on deoptimization) and is allocation-free in steady state:
/// workers reuse their compiler/assembler state via the module-level
/// symbol-batching fast path, and all fragments retain their capacity.
class ParallelModuleCompiler {
public:
  explicit ParallelModuleCompiler(tir::Module &M,
                                  ParallelCompileOptions Opts = {});
  ~ParallelModuleCompiler();
  ParallelModuleCompiler(const ParallelModuleCompiler &) = delete;
  ParallelModuleCompiler &operator=(const ParallelModuleCompiler &) = delete;

  /// Compiles the module into \p Out (which is reset first). Returns
  /// false if any function failed to compile or the merged module is
  /// inconsistent (Out.hasError() has the details).
  bool compile(asmx::Assembler &Out);

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }
  u32 shardCount() const { return NumShards; }

private:
  struct Worker {
    explicit Worker(tir::Module &M)
        : Adapter(M), Compiler(Adapter, Asm) {}
    TirAdapter Adapter;
    asmx::Assembler Asm;
    TirCompilerX64 Compiler;
    std::thread Thread; ///< Unjoinable for worker 0 (the calling thread).
  };

  void workerMain(unsigned Id);
  void drainQueue(unsigned Id);
  void compileShard(unsigned Id, u32 Shard);

  tir::Module &M;
  ParallelCompileOptions Opts;
  std::vector<std::unique_ptr<Worker>> Workers;
  /// Per-shard output snapshots, indexed by shard — the schedule-proof
  /// staging area between parallel compilation and the ordered merge.
  std::vector<std::unique_ptr<asmx::Assembler>> Frags;
  asmx::Assembler GlobalsFrag;
  support::WorkStealingRangeQueue Queue;
  u32 NumShards = 0;
  std::atomic<bool> Failed{false};

  std::mutex Mtx;
  std::condition_variable JobCV, DoneCV;
  u64 JobSeq = 0;       ///< Bumped per compile(); workers wait for it.
  unsigned Pending = 0; ///< Spawned workers still draining the current job.
  bool Stop = false;
};

/// One-shot convenience entry point mirroring compileModuleX64():
/// compiles \p M into \p Out with \p NumThreads workers (0 = hardware
/// concurrency). For repeated compiles keep a ParallelModuleCompiler
/// around instead — this constructs and tears down the pool per call.
bool compileModuleX64Parallel(tir::Module &M, asmx::Assembler &Out,
                              unsigned NumThreads = 0);

} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_PARALLELCOMPILER_H
