//===- tpde_tir/ParallelCompiler.h - TIR parallel instantiation -*- C++ -*-===//
///
/// \file
/// Instantiates the backend-agnostic parallel module compile driver
/// (core/ParallelCompiler.h) for the TIR back-ends. All driver logic —
/// worker pool, deterministic weighted sharding, fragment snapshots,
/// ordered merge — lives in the shared core template; this file only
/// supplies the per-target worker types (adapter + assembler + compiler
/// bundles) and the one-shot convenience entry points.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_PARALLELCOMPILER_H
#define TPDE_TPDE_TIR_PARALLELCOMPILER_H

#include "core/ParallelCompiler.h"
#include "tir/Verifier.h"
#include "tpde_tir/TirCompilerA64.h"
#include "tpde_tir/TirCompilerX64.h"

namespace tpde::tpde_tir {

using ParallelCompileOptions = core::ParallelCompileOptions;

/// Per-thread compile state for one TIR worker: private adapter,
/// assembler, and compiler instance (reset-not-freed, docs/PERF.md).
/// Satisfies core::ParallelCompileWorker.
template <typename CompilerT>
struct TirParallelWorker {
  using ModuleT = tir::Module;

  explicit TirParallelWorker(tir::Module &M)
      : Adapter(M), Compiler(Adapter, Asm) {}

  asmx::Assembler &assembler() { return Asm; }
  bool compileGlobals() { return Compiler.compileGlobals(); }
  bool compileRange(u32 Begin, u32 End) {
    return Compiler.compileRange(Begin, End);
  }
  const support::CompileStatus &status() const { return Compiler.status(); }

  static u32 funcCount(const tir::Module &M) {
    return static_cast<u32>(M.Funcs.size());
  }
  /// Shard-balancing size proxy: the per-function value count is known up
  /// front and tracks compile cost closely (single pass over values).
  static u32 funcWeight(const tir::Module &M, u32 I) {
    return static_cast<u32>(M.Funcs[I].Values.size());
  }
  /// Capacity hint for the driver's fragment buffers (two-pass emission):
  /// an upper-bound-ish text size for functions [Begin, End). TIR values
  /// lower to a handful of instructions each (≤ ~16 bytes on either
  /// target); the per-function constant covers prologue/epilogue and the
  /// 16-byte function alignment. Only a hint — under-estimates merely
  /// fall back to geometric buffer growth.
  static u64 shardTextBound(const tir::Module &M, u32 Begin, u32 End) {
    u64 Bytes = 0;
    for (u32 I = Begin; I < End; ++I)
      Bytes = Bytes + 16 * static_cast<u64>(M.Funcs[I].Values.size()) + 64;
    return Bytes;
  }
  /// Enables the driver's ParallelCompileOptions::Verify pre-pass.
  static bool verifyModule(const tir::Module &M, std::string &Errors) {
    return tir::verifyModule(M, Errors);
  }

  TirAdapter Adapter;
  asmx::Assembler Asm;
  CompilerT Compiler;
};

/// The x86-64 instantiation (the name predates the driver template and is
/// kept for existing users).
using ParallelModuleCompiler =
    core::ParallelModuleCompiler<TirParallelWorker<TirCompilerX64>>;
/// The AArch64 instantiation — same driver, second worker type.
using ParallelModuleCompilerA64 =
    core::ParallelModuleCompiler<TirParallelWorker<TirCompilerA64>>;

/// One-shot convenience entry points mirroring compileModuleX64() /
/// compileModuleA64(): compile \p M into \p Out with \p NumThreads
/// workers (0 = hardware concurrency). With \p Verify the module runs
/// through tir::verifyModule first and malformed IR never reaches
/// codegen; \p StatusOut (optional) receives the structured first
/// diagnostic on failure. For repeated compiles keep a
/// ParallelModuleCompiler[A64] around instead — these construct and tear
/// down the pool per call.
bool compileModuleX64Parallel(tir::Module &M, asmx::Assembler &Out,
                              unsigned NumThreads = 0, bool Verify = false,
                              support::CompileStatus *StatusOut = nullptr);
bool compileModuleA64Parallel(tir::Module &M, asmx::Assembler &Out,
                              unsigned NumThreads = 0, bool Verify = false,
                              support::CompileStatus *StatusOut = nullptr);

} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_PARALLELCOMPILER_H
