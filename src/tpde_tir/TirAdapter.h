//===- tpde_tir/TirAdapter.h - TPDE IR adapter for TIR ----------*- C++ -*-===//
///
/// \file
/// Implements the TPDE IR adapter interface (paper Fig. 2) for TIR. TIR
/// values are already densely numbered per function, blocks provide the
/// required 64-bit auxiliary storage, and all accessors are O(1) array
/// reads — the adapter is a thin veneer, demonstrating how cheap adapting
/// an array-based IR is (cf. §7.1.1 for Umbra IR).
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_TIRADAPTER_H
#define TPDE_TPDE_TIR_TIRADAPTER_H

#include "core/Adapter.h"
#include "tir/TIR.h"

#include <span>

namespace tpde::tpde_tir {

class TirAdapter {
public:
  using FuncRef = u32;
  using BlockRef = tir::BlockRef;
  using ValRef = tir::ValRef;

  explicit TirAdapter(tir::Module &M) : M(M) {
    for (const tir::Function &F : M.Funcs) {
      if (F.Values.size() > MaxValues)
        MaxValues = static_cast<u32>(F.Values.size());
      if (F.Blocks.size() > MaxBlocks)
        MaxBlocks = static_cast<u32>(F.Blocks.size());
    }
  }

  /// Capacity hints (largest function of the module): the framework uses
  /// these to size per-function scratch once instead of growing it
  /// piecemeal while ratcheting through the functions (docs/PERF.md).
  u32 maxValueCount() const { return MaxValues; }
  u32 maxBlockCount() const { return MaxBlocks; }

  tir::Module &module() { return M; }
  const tir::Function &func() const { return *F; }
  tir::Function &funcMutable() { return *F; }

  // --- Module-level ---------------------------------------------------
  u32 funcCount() const { return static_cast<u32>(M.Funcs.size()); }
  FuncRef funcRef(u32 I) const { return I; }
  std::string_view funcName(FuncRef F) const { return M.Funcs[F].Name; }
  asmx::Linkage funcLinkage(FuncRef F) const {
    switch (M.Funcs[F].Link) {
    case tir::Linkage::External:
      return asmx::Linkage::External;
    case tir::Linkage::Internal:
      return asmx::Linkage::Internal;
    case tir::Linkage::Weak:
      return asmx::Linkage::Weak;
    }
    TPDE_UNREACHABLE("bad linkage");
  }
  bool funcIsDefinition(FuncRef F) const { return !M.Funcs[F].IsDeclaration; }

  // --- Function switching ------------------------------------------------
  void switchFunc(FuncRef FR) {
    F = &M.Funcs[FR];
    const u32 N = static_cast<u32>(F->Values.size());
    Next.reserve(MaxValues);
    StackVarIdx.reserve(MaxValues);
    Meta.reserve(MaxValues);
    // Next-instruction table for fusion decisions (§3.4.4: "instruction
    // compilers will only want to look at immediately following
    // instructions; the framework provides access to this list").
    Next.assign(N, tir::InvalidRef);
    for (const tir::Block &B : F->Blocks)
      for (size_t I = 0; I + 1 < B.Insts.size(); ++I)
        Next[B.Insts[I]] = B.Insts[I + 1];
    // Stack-variable index of a value.
    StackVarIdx.assign(N, ~0u);
    for (u32 I = 0; I < F->StackVars.size(); ++I)
      StackVarIdx[F->StackVars[I]] = I;
    // Dense per-value metadata byte: the analysis and value machinery
    // query part count/size/bank and const-likeness for random values on
    // every use; one sequential pass here turns those into single-byte
    // reads instead of strided Value fetches (docs/PERF.md).
    Meta.resize(N);
    for (u32 I = 0; I < N; ++I) {
      const tir::Value &V = F->Values[I];
      u8 B = static_cast<u8>(tir::partSize(V.Ty, 0) & MetaSizeMask);
      if (V.Kind == tir::ValKind::ConstInt ||
          V.Kind == tir::ValKind::ConstFP ||
          V.Kind == tir::ValKind::GlobalAddr ||
          V.Kind == tir::ValKind::StackVar)
        B |= MetaConstLike;
      if (V.Kind == tir::ValKind::ConstInt)
        B |= MetaConstInt;
      if (V.Ty == tir::Type::I128)
        B |= MetaTwoParts;
      if (tir::isFloatType(V.Ty))
        B |= MetaFpBank;
      Meta[I] = B;
    }
  }
  void finalizeFunc() {}

  // --- Current function ----------------------------------------------------
  u32 valueCount() const { return F->valueCount(); }
  u32 blockCount() const { return static_cast<u32>(F->Blocks.size()); }
  BlockRef blockRef(u32 I) const { return I; }
  u64 &blockAux(BlockRef B) { return F->Blocks[B].Aux; }
  std::span<const BlockRef> blockSuccs(BlockRef B) const {
    return F->Blocks[B].Succs;
  }
  std::span<const ValRef> blockPhis(BlockRef B) const {
    return F->Blocks[B].Phis;
  }
  std::span<const ValRef> blockInsts(BlockRef B) const {
    return F->Blocks[B].Insts;
  }
  std::span<const ValRef> funcArgs() const { return F->Args; }

  // --- Values (all answered from the dense metadata byte) ---------------
  u32 valNumber(ValRef V) const { return V; }
  u32 valPartCount(ValRef V) const {
    return Meta[V] & MetaTwoParts ? 2 : 1;
  }
  u32 valPartSize(ValRef V, u32 P) const {
    return P ? 8 : (Meta[V] & MetaSizeMask);
  }
  u8 valPartBank(ValRef V, u32 P) const {
    return Meta[V] & MetaFpBank ? 1 : 0;
  }
  bool isConstLike(ValRef V) const { return Meta[V] & MetaConstLike; }
  /// Fast integer-constant test for immediate folding (no Value fetch).
  bool isConstInt(ValRef V) const { return Meta[V] & MetaConstInt; }

  // --- Instructions and phis ------------------------------------------------
  std::span<const ValRef> instOperands(ValRef V) const {
    const tir::Value &Val = F->val(V);
    return {F->OperandPool.data() + Val.OpBegin, Val.NumOps};
  }
  u32 phiIncomingCount(ValRef V) const { return F->val(V).NumOps; }
  BlockRef phiIncomingBlock(ValRef V, u32 I) const {
    return F->phiBlock(F->val(V), I);
  }
  ValRef phiIncomingValue(ValRef V, u32 I) const {
    return F->operand(F->val(V), I);
  }

  // --- Extras used by the TIR instruction compilers -----------------------
  const tir::Value &val(ValRef V) const { return F->val(V); }
  ValRef nextInst(ValRef V) const { return Next[V]; }
  u32 stackVarIdx(ValRef V) const { return StackVarIdx[V]; }

private:
  // Metadata byte layout: bits 0-3 part-0 size in bytes, bit 4
  // const-like, bit 5 two parts (i128), bit 6 FP bank, bit 7 ConstInt.
  static constexpr u8 MetaSizeMask = 0x0F;
  static constexpr u8 MetaConstLike = 0x10;
  static constexpr u8 MetaTwoParts = 0x20;
  static constexpr u8 MetaFpBank = 0x40;
  static constexpr u8 MetaConstInt = 0x80;

  tir::Module &M;
  tir::Function *F = nullptr;
  std::vector<ValRef> Next;
  std::vector<u32> StackVarIdx;
  std::vector<u8> Meta;
  u32 MaxValues = 0;
  u32 MaxBlocks = 0;
};

static_assert(core::IRAdapter<TirAdapter>,
              "TirAdapter must satisfy the IR adapter concept");

} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_TIRADAPTER_H
