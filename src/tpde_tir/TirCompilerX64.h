//===- tpde_tir/TirCompilerX64.h - TIR instruction compilers ----*- C++ -*-===//
///
/// \file
/// The TPDE-based back-end for TIR targeting x86-64 (the paper's §5 case
/// study, with TIR standing in for LLVM-IR). Implements an instruction
/// compiler per TIR opcode on top of the framework's value/register
/// machinery, including the two fusions the paper calls out as critical
/// (§3.4.4/§5.1.2): integer compare + conditional branch, and address
/// computations folded into memory operands.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_TIRCOMPILERX64_H
#define TPDE_TPDE_TIR_TIRCOMPILERX64_H

#include "support/DenseMap.h"
#include "tpde_tir/TirAdapter.h"
#include "tpde_tir/TirGlobals.h"
#include "x64/CompilerX64.h"

namespace tpde::tpde_tir {

class TirCompilerX64 : public x64::CompilerX64<TirAdapter, TirCompilerX64> {
public:
  using Base = x64::CompilerX64<TirAdapter, TirCompilerX64>;
  using VPR = Base::ValuePartRef;
  using Scratch = Base::ScratchReg;
  using x64::CompilerX64<TirAdapter, TirCompilerX64>::E;

  TirCompilerX64(TirAdapter &A, asmx::Assembler &Asm) : Base(A, Asm) {}

  /// Compiles the whole module; returns false on unsupported constructs.
  bool compile() {
    Fused.reserve(this->A.maxValueCount());
    return this->compileModule();
  }

  /// Recompiles the module, reusing the assembler's symbol table from the
  /// previous compile (module-level symbol batching). No Assembler::reset()
  /// needed — the compiler rewinds sections itself.
  bool compileReuse() {
    Fused.reserve(this->A.maxValueCount());
    return this->recompileModule();
  }

  /// Compiles only functions [Begin, End); everything else is declared.
  /// Shard entry point used by the parallel module compiler.
  bool compileRange(u32 Begin, u32 End) {
    Fused.reserve(this->A.maxValueCount());
    return this->compileFunctionRange(Begin, End);
  }

  /// Emits the module-level fragment (global data + declarations) only.
  bool compileGlobals() { return this->compileGlobalsOnly(); }

  /// Cache-key input for the symbol-reuse fast path (CompilerBase): a
  /// change in the module's global count must invalidate GlobalSyms.
  u32 moduleGlobalCount() {
    return static_cast<u32>(this->A.module().Globals.size());
  }

  // =====================================================================
  // Framework hooks
  // =====================================================================

  void defineGlobals() {
    // On the symbol-reuse fast path the registrations (and GlobalSyms)
    // from the previous compile are still valid; only the data emission
    // and the definitions have to be redone. The cached constant-pool
    // symbols refer into the assembler's symbol table, which restarts per
    // module compile (capacity retained).
    FpPool.clear();
    defineTirGlobals(this->Asm, this->A.module(), GlobalSyms,
                     this->moduleSymEpoch());
  }

  /// Sparse-mode variant of defineGlobals() (shard compiles): registers
  /// nothing — globalSym() materializes a global's symbol at its first
  /// reference, so a shard only pays for globals it touches.
  void declareGlobals() {
    FpPool.clear();
    GlobalSyms.prepare(this->A.module());
  }

  /// On-demand global symbol (see TirGlobals.h).
  asmx::SymRef globalSym(u32 GI) {
    return GlobalSyms.sym(this->Asm, this->A.module(), GI,
                          this->moduleSymEpoch());
  }

  template <typename Fn> void forEachStackVar(Fn Cb) {
    const tir::Function &F = this->A.func();
    for (tir::ValRef SV : F.StackVars) {
      const tir::Value &V = F.val(SV);
      Cb(V.Aux, static_cast<u32>(V.Aux2));
    }
  }

  void beginFunc(asmx::SymRef Sym) {
    Base::beginFunc(Sym);
    Fused.assign(this->A.valueCount(), 0);
  }

  void materializeConstLike(tir::ValRef V, u8 Part, core::Reg Dst) {
    const tir::Value &Val = this->A.val(V);
    switch (Val.Kind) {
    case tir::ValKind::ConstInt: {
      u64 Bits = Part == 0 ? Val.Aux : Val.Aux2;
      u32 W = tir::partSize(Val.Ty, Part);
      if (W < 8)
        Bits &= (u64(1) << (8 * W)) - 1;
      if (Val.Ty == tir::Type::I1)
        Bits &= 1;
      E.movRI(x64::ax(Dst), Bits);
      return;
    }
    case tir::ValKind::ConstFP: {
      u8 Sz = Val.Ty == tir::Type::F32 ? 4 : 8;
      E.fpLoadSym(Sz, x64::ax(Dst), fpConstSym(Val.Aux, Sz));
      return;
    }
    case tir::ValKind::GlobalAddr:
      E.leaSym(x64::ax(Dst), globalSym(static_cast<u32>(Val.Aux)));
      return;
    case tir::ValKind::StackVar:
      E.lea(x64::ax(Dst),
            x64::Mem(x64::RBP, this->stackVarOff(this->A.stackVarIdx(V))));
      return;
    default:
      TPDE_UNREACHABLE("not a constant-like value");
    }
  }

  // =====================================================================
  // Instruction dispatch
  // =====================================================================

  bool compileInst(tir::ValRef I) {
    if (Fused[I])
      return true;
    const tir::Value &V = this->A.val(I);
    switch (V.Opcode) {
    case tir::Op::Add:
    case tir::Op::Sub:
    case tir::Op::And:
    case tir::Op::Or:
    case tir::Op::Xor:
      return compileIntAlu(I, V);
    case tir::Op::Mul:
      return compileMul(I, V);
    case tir::Op::UDiv:
    case tir::Op::SDiv:
    case tir::Op::URem:
    case tir::Op::SRem:
      return compileDivRem(I, V);
    case tir::Op::Shl:
    case tir::Op::LShr:
    case tir::Op::AShr:
      return compileShift(I, V);
    case tir::Op::ICmpOp:
      return compileICmp(I, V);
    case tir::Op::FCmpOp:
      return compileFCmp(I, V);
    case tir::Op::FAdd:
    case tir::Op::FSub:
    case tir::Op::FMul:
    case tir::Op::FDiv:
      return compileFpAlu(I, V);
    case tir::Op::Neg:
    case tir::Op::Not:
      return compileIntUnary(I, V);
    case tir::Op::FNeg:
      return compileFNeg(I, V);
    case tir::Op::Zext:
    case tir::Op::Sext:
    case tir::Op::Trunc:
    case tir::Op::FpToSi:
    case tir::Op::SiToFp:
    case tir::Op::FpExt:
    case tir::Op::FpTrunc:
    case tir::Op::Bitcast:
      return compileCast(I, V);
    case tir::Op::Select:
      return compileSelect(I, V);
    case tir::Op::Load:
      return compileLoad(I, V);
    case tir::Op::Store:
      return compileStore(I, V);
    case tir::Op::PtrAdd:
      return compilePtrAdd(I, V);
    case tir::Op::Call: {
      const tir::Function &F = this->A.func();
      std::span<const tir::ValRef> Args{F.OperandPool.data() + V.OpBegin,
                                        V.NumOps};
      if (V.Ty != tir::Type::Void) {
        tir::ValRef Res = I;
        this->genCall(this->funcSym(static_cast<u32>(V.Aux)), Args, &Res);
      } else {
        this->genCall(this->funcSym(static_cast<u32>(V.Aux)), Args, nullptr);
      }
      return true;
    }
    case tir::Op::Ret: {
      if (V.NumOps) {
        tir::ValRef RV = this->A.func().operand(V, 0);
        this->emitReturn(&RV);
      } else {
        this->emitReturn(nullptr);
      }
      return true;
    }
    case tir::Op::Br:
      this->generateBranch(this->A.func().Blocks[V.Block].Succs[0]);
      return true;
    case tir::Op::CondBr:
      return compileCondBr(I, V);
    case tir::Op::Unreachable:
      E.ud2();
      return true;
    default:
      return false; // unsupported
    }
  }

private:
  const tir::Function &fn() const { return this->A.func(); }

  static u8 opSz(u32 W) { return W < 4 ? 4 : static_cast<u8>(W); }

  static x64::Cond icmpCond(tir::ICmp P) {
    using tir::ICmp;
    using x64::Cond;
    switch (P) {
    case ICmp::Eq:
      return Cond::E;
    case ICmp::Ne:
      return Cond::NE;
    case ICmp::Ult:
      return Cond::B;
    case ICmp::Ule:
      return Cond::BE;
    case ICmp::Ugt:
      return Cond::A;
    case ICmp::Uge:
      return Cond::AE;
    case ICmp::Slt:
      return Cond::L;
    case ICmp::Sle:
      return Cond::LE;
    case ICmp::Sgt:
      return Cond::G;
    case ICmp::Sge:
      return Cond::GE;
    }
    TPDE_UNREACHABLE("bad icmp predicate");
  }

  /// Predicate with swapped operands (a < b == b > a).
  static tir::ICmp swapICmp(tir::ICmp P) {
    using tir::ICmp;
    switch (P) {
    case ICmp::Eq:
    case ICmp::Ne:
      return P;
    case ICmp::Ult:
      return ICmp::Ugt;
    case ICmp::Ule:
      return ICmp::Uge;
    case ICmp::Ugt:
      return ICmp::Ult;
    case ICmp::Uge:
      return ICmp::Ule;
    case ICmp::Slt:
      return ICmp::Sgt;
    case ICmp::Sle:
      return ICmp::Sge;
    case ICmp::Sgt:
      return ICmp::Slt;
    case ICmp::Sge:
      return ICmp::Sle;
    }
    TPDE_UNREACHABLE("bad icmp predicate");
  }

  /// Can the operand be folded as a 32-bit immediate for width \p W ops?
  bool foldableImm(tir::ValRef V, u32 W, i64 *Out) {
    if (!this->A.isConstInt(V)) // metadata bit: no Value fetch
      return false;
    const tir::Value &Val = this->A.val(V);
    i64 Imm = signExtend(Val.Aux, W >= 8 ? 64 : 8 * W);
    if (W >= 8 && !isInt32(Imm))
      return false;
    *Out = Imm;
    return true;
  }

  // --- Integer ALU (add/sub/and/or/xor) -----------------------------------

  bool compileIntAlu(tir::ValRef I, const tir::Value &V) {
    if (V.Ty == tir::Type::I128)
      return compileI128Alu(I, V);
    u32 W = tir::typeSize(V.Ty);
    u8 Sz = opSz(W);
    x64::AluOp Op = V.Opcode == tir::Op::Add   ? x64::AluOp::Add
                    : V.Opcode == tir::Op::Sub ? x64::AluOp::Sub
                    : V.Opcode == tir::Op::And ? x64::AluOp::And
                    : V.Opcode == tir::Op::Or  ? x64::AluOp::Or
                                               : x64::AluOp::Xor;
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    bool Commutative = V.Opcode != tir::Op::Sub;
    i64 Imm;
    if (foldableImm(RV, W, &Imm)) {
      VPR Rhs = this->valRef(RV, 0); // consume the use
      VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
      E.aluRI(Op, Sz, x64::ax(Res.curReg()), Imm);
      Res.setModified();
      return true;
    }
    if (Commutative && foldableImm(LV, W, &Imm)) {
      VPR Lhs = this->valRef(LV, 0);
      VPR Res = this->resultRefReuse(I, 0, this->valRef(RV, 0));
      E.aluRI(Op, Sz, x64::ax(Res.curReg()), Imm);
      Res.setModified();
      return true;
    }
    VPR Rhs = this->valRef(RV, 0);
    VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
    if (!DisableFusion && !Rhs.isConstLike() && !Rhs.hasReg() && Rhs.inMemory()) {
      // Fold the spilled operand as a memory operand (§4.2).
      E.aluRM(Op, Sz, x64::ax(Res.curReg()),
              x64::Mem(x64::RBP, Rhs.frameOff()));
    } else {
      core::Reg R = Rhs.asReg();
      E.aluRR(Op, Sz, x64::ax(Res.curReg()), x64::ax(R));
    }
    Res.setModified();
    return true;
  }

  bool compileI128Alu(tir::ValRef I, const tir::Value &V) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    x64::AluOp Lo, Hi;
    switch (V.Opcode) {
    case tir::Op::Add:
      Lo = x64::AluOp::Add;
      Hi = x64::AluOp::Adc;
      break;
    case tir::Op::Sub:
      Lo = x64::AluOp::Sub;
      Hi = x64::AluOp::Sbb;
      break;
    case tir::Op::And:
      Lo = Hi = x64::AluOp::And;
      break;
    case tir::Op::Or:
      Lo = Hi = x64::AluOp::Or;
      break;
    case tir::Op::Xor:
      Lo = Hi = x64::AluOp::Xor;
      break;
    default:
      return false;
    }
    // Low and high parts must stay adjacent for the carry flag; every
    // framework operation in between only emits flag-preserving moves.
    VPR R0 = this->valRef(RV, 0), R1 = this->valRef(RV, 1);
    core::Reg RR0 = R0.asReg(), RR1 = R1.asReg();
    VPR Res0 = this->resultRefReuse(I, 0, this->valRef(LV, 0));
    VPR Res1 = this->resultRefReuse(I, 1, this->valRef(LV, 1));
    E.aluRR(Lo, 8, x64::ax(Res0.curReg()), x64::ax(RR0));
    E.aluRR(Hi, 8, x64::ax(Res1.curReg()), x64::ax(RR1));
    Res0.setModified();
    Res1.setModified();
    return true;
  }

  // --- Multiplication ------------------------------------------------------

  bool compileMul(tir::ValRef I, const tir::Value &V) {
    if (V.Ty == tir::Type::I128)
      return compileI128Mul(I, V);
    u32 W = tir::typeSize(V.Ty);
    u8 Sz = opSz(W);
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    i64 Imm;
    if (foldableImm(RV, W, &Imm) || foldableImm(LV, W, &Imm)) {
      bool RhsImm = foldableImm(RV, W, &Imm);
      tir::ValRef Var = RhsImm ? LV : RV;
      tir::ValRef Cst = RhsImm ? RV : LV;
      VPR CstRef = this->valRef(Cst, 0); // consume
      VPR Src = this->valRef(Var, 0);
      core::Reg SrcR = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg ResR = Res.allocReg();
      E.imulRRI(Sz, x64::ax(ResR), x64::ax(SrcR), static_cast<i32>(Imm));
      Res.setModified();
      return true;
    }
    VPR Rhs = this->valRef(RV, 0);
    core::Reg R = Rhs.asReg();
    VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
    E.imulRR(Sz, x64::ax(Res.curReg()), x64::ax(R));
    Res.setModified();
    return true;
  }

  bool compileI128Mul(tir::ValRef I, const tir::Value &V) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    // (a1:a0) * (b1:b0) = (a0*b0)_128 + ((a0*b1 + a1*b0) << 64)
    Scratch Rax(this), Rdx(this);
    Rax.allocSpecific(core::Reg(0));
    Rdx.allocSpecific(core::Reg(2));
    VPR A0 = this->valRef(LV, 0), A1 = this->valRef(LV, 1);
    VPR B0 = this->valRef(RV, 0), B1 = this->valRef(RV, 1);
    core::Reg RA1 = A1.asReg(), RB0 = B0.asReg(), RB1 = B1.asReg();
    this->emitToReg(core::Reg(0), A0);
    core::Reg RA0copy;
    Scratch A0Copy(this);
    RA0copy = A0Copy.alloc(0);
    E.movRR(8, x64::ax(RA0copy), x64::RAX);
    E.mulR(8, x64::ax(RB0)); // rdx:rax = a0*b0
    Scratch HiTmp(this);
    core::Reg HT = HiTmp.alloc(0);
    E.movRR(8, x64::ax(HT), x64::RDX);
    // HT += a0*b1 + a1*b0
    Scratch T(this);
    core::Reg TR = T.alloc(0);
    E.movRR(8, x64::ax(TR), x64::ax(RA0copy));
    E.imulRR(8, x64::ax(TR), x64::ax(RB1));
    E.aluRR(x64::AluOp::Add, 8, x64::ax(HT), x64::ax(TR));
    E.movRR(8, x64::ax(TR), x64::ax(RA1));
    E.imulRR(8, x64::ax(TR), x64::ax(RB0));
    E.aluRR(x64::AluOp::Add, 8, x64::ax(HT), x64::ax(TR));
    VPR Res0 = this->resultRef(I, 0), Res1 = this->resultRef(I, 1);
    E.movRR(8, x64::ax(Res0.allocReg()), x64::RAX);
    E.movRR(8, x64::ax(Res1.allocReg()), x64::ax(HT));
    Res0.setModified();
    Res1.setModified();
    return true;
  }

  // --- Division / remainder ----------------------------------------------

  bool compileDivRem(tir::ValRef I, const tir::Value &V) {
    if (V.Ty == tir::Type::I128)
      return false; // excluded from the supported subset
    u32 W = tir::typeSize(V.Ty);
    u8 Sz = opSz(W);
    bool Signed = V.Opcode == tir::Op::SDiv || V.Opcode == tir::Op::SRem;
    bool WantRem = V.Opcode == tir::Op::URem || V.Opcode == tir::Op::SRem;
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);

    Scratch Rax(this), Rdx(this);
    Rax.allocSpecific(core::Reg(0));
    Rdx.allocSpecific(core::Reg(2));
    // Divisor into a register other than rax/rdx (both locked).
    VPR Rhs = this->valRef(RV, 0);
    core::Reg Divisor = Rhs.asReg();
    Scratch DivTmp(this);
    if (W < 4) {
      // Widen the divisor so a 32-bit divide is exact.
      core::Reg T = DivTmp.alloc(0);
      if (Signed)
        E.movsxRR(static_cast<u8>(W), x64::ax(T), x64::ax(Divisor));
      else
        E.movzxRR(static_cast<u8>(W), x64::ax(T), x64::ax(Divisor));
      Divisor = T;
    }
    {
      VPR Lhs = this->valRef(LV, 0);
      if (W < 4) {
        core::Reg LR = Lhs.asReg();
        if (Signed)
          E.movsxRR(static_cast<u8>(W), x64::RAX, x64::ax(LR));
        else
          E.movzxRR(static_cast<u8>(W), x64::RAX, x64::ax(LR));
      } else {
        this->emitToReg(core::Reg(0), Lhs);
      }
    }
    if (Signed) {
      E.cwd(Sz);
      E.idivR(Sz, x64::ax(Divisor));
    } else {
      E.aluRR(x64::AluOp::Xor, 4, x64::RDX, x64::RDX);
      E.divR(Sz, x64::ax(Divisor));
    }
    VPR Res = this->resultRef(I, 0);
    core::Reg R = Res.allocReg();
    E.movRR(8, x64::ax(R), WantRem ? x64::RDX : x64::RAX);
    Res.setModified();
    return true;
  }

  // --- Shifts ---------------------------------------------------------------

  bool compileShift(tir::ValRef I, const tir::Value &V) {
    u32 W = tir::typeSize(V.Ty);
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    const tir::Value &RVal = this->A.val(RV);
    bool ConstAmt = RVal.Kind == tir::ValKind::ConstInt;
    if (V.Ty == tir::Type::I128) {
      if (!ConstAmt)
        return false; // dynamic i128 shifts are not in the subset
      return compileI128ShiftConst(I, V, static_cast<u8>(RVal.Aux & 127));
    }
    u8 Amt = ConstAmt ? static_cast<u8>(RVal.Aux & (8 * W - 1)) : 0;

    if (V.Opcode == tir::Op::Shl) {
      if (ConstAmt) {
        VPR AmtRef = this->valRef(RV, 0);
        VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
        E.shiftRI(x64::ShiftOp::Shl, opSz(W), x64::ax(Res.curReg()), Amt);
        Res.setModified();
        return true;
      }
      Scratch CL(this);
      CL.allocSpecific(core::Reg(1)); // rcx
      {
        VPR AmtRef = this->valRef(RV, 0);
        this->emitToReg(core::Reg(1), AmtRef);
      }
      VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
      E.shiftRC(x64::ShiftOp::Shl, opSz(W), x64::ax(Res.curReg()));
      Res.setModified();
      return true;
    }

    // Right shifts of sub-32-bit values need a well-defined extension.
    bool Arith = V.Opcode == tir::Op::AShr;
    x64::ShiftOp SOp = Arith ? x64::ShiftOp::Sar : x64::ShiftOp::Shr;
    if (W < 4) {
      Scratch CL(this);
      if (!ConstAmt) {
        CL.allocSpecific(core::Reg(1));
        VPR AmtRef = this->valRef(RV, 0);
        this->emitToReg(core::Reg(1), AmtRef);
      } else {
        VPR AmtRef = this->valRef(RV, 0); // consume
      }
      VPR Src = this->valRef(LV, 0);
      core::Reg SR = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      if (Arith)
        E.movsxRR(static_cast<u8>(W), x64::ax(R), x64::ax(SR));
      else
        E.movzxRR(static_cast<u8>(W), x64::ax(R), x64::ax(SR));
      if (ConstAmt)
        E.shiftRI(SOp, 4, x64::ax(R), Amt);
      else
        E.shiftRC(SOp, 4, x64::ax(R));
      Res.setModified();
      return true;
    }
    u8 Sz = static_cast<u8>(W);
    if (ConstAmt) {
      VPR AmtRef = this->valRef(RV, 0);
      VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
      E.shiftRI(SOp, Sz, x64::ax(Res.curReg()), Amt);
      Res.setModified();
      return true;
    }
    Scratch CL(this);
    CL.allocSpecific(core::Reg(1));
    {
      VPR AmtRef = this->valRef(RV, 0);
      this->emitToReg(core::Reg(1), AmtRef);
    }
    VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
    E.shiftRC(SOp, Sz, x64::ax(Res.curReg()));
    Res.setModified();
    return true;
  }

  bool compileI128ShiftConst(tir::ValRef I, const tir::Value &V, u8 Amt) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    VPR AmtRef = this->valRef(RV, 0); // consume the use
    bool Shl = V.Opcode == tir::Op::Shl;
    bool Arith = V.Opcode == tir::Op::AShr;
    if (Shl) {
      if (Amt == 0 || Amt < 64) {
        VPR L0 = this->valRef(LV, 0);
        core::Reg RL0 = L0.asReg();
        VPR Res1 = this->resultRefReuse(I, 1, this->valRef(LV, 1));
        if (Amt)
          E.shldRRI(8, x64::ax(Res1.curReg()), x64::ax(RL0), Amt);
        VPR Res0 = this->resultRefReuse(I, 0, std::move(L0));
        if (Amt)
          E.shiftRI(x64::ShiftOp::Shl, 8, x64::ax(Res0.curReg()), Amt);
        Res0.setModified();
        Res1.setModified();
        return true;
      }
      // Amt >= 64: hi = lo << (Amt-64), lo = 0.
      VPR L1Consume = this->valRef(LV, 1);
      VPR Res1 = this->resultRefReuse(I, 1, this->valRef(LV, 0));
      if (Amt > 64)
        E.shiftRI(x64::ShiftOp::Shl, 8, x64::ax(Res1.curReg()),
                  static_cast<u8>(Amt - 64));
      VPR Res0 = this->resultRef(I, 0);
      core::Reg R0 = Res0.allocReg();
      E.aluRR(x64::AluOp::Xor, 4, x64::ax(R0), x64::ax(R0));
      Res0.setModified();
      Res1.setModified();
      return true;
    }
    // Right shifts.
    if (Amt == 0 || Amt < 64) {
      VPR L1 = this->valRef(LV, 1);
      core::Reg RL1 = L1.asReg();
      VPR Res0 = this->resultRefReuse(I, 0, this->valRef(LV, 0));
      if (Amt)
        E.shrdRRI(8, x64::ax(Res0.curReg()), x64::ax(RL1), Amt);
      VPR Res1 = this->resultRefReuse(I, 1, std::move(L1));
      if (Amt)
        E.shiftRI(Arith ? x64::ShiftOp::Sar : x64::ShiftOp::Shr, 8,
                  x64::ax(Res1.curReg()), Amt);
      Res0.setModified();
      Res1.setModified();
      return true;
    }
    // Amt >= 64: lo = hi >> (Amt-64); hi = sign/zero fill.
    VPR L0Consume = this->valRef(LV, 0);
    VPR L1 = this->valRef(LV, 1);
    L1.asReg(); // materialize + lock so the reuse below lands in a register
    VPR Res0 = this->resultRefReuse(I, 0, std::move(L1));
    if (Amt > 64)
      E.shiftRI(Arith ? x64::ShiftOp::Sar : x64::ShiftOp::Shr, 8,
                x64::ax(Res0.curReg()), static_cast<u8>(Amt - 64));
    VPR Res1 = this->resultRef(I, 1);
    core::Reg R1 = Res1.allocReg();
    if (Arith) {
      E.movRR(8, x64::ax(R1), x64::ax(Res0.curReg()));
      E.shiftRI(x64::ShiftOp::Sar, 8, x64::ax(R1), 63);
    } else {
      E.aluRR(x64::AluOp::Xor, 4, x64::ax(R1), x64::ax(R1));
    }
    Res0.setModified();
    Res1.setModified();
    return true;
  }

  // --- Comparisons -----------------------------------------------------------

  /// Emits the flag-setting compare for an integer comparison and returns
  /// the condition code. Shared by the setcc path and the fused
  /// compare-branch path.
  x64::Cond emitICmpFlags(const tir::Value &CmpV) {
    tir::ValRef LV = fn().operand(CmpV, 0), RV = fn().operand(CmpV, 1);
    tir::ICmp P = static_cast<tir::ICmp>(CmpV.Aux);
    tir::Type OpTy = this->A.val(LV).Ty;
    if (OpTy == tir::Type::I128)
      return emitI128CmpFlags(CmpV);
    u32 W = tir::typeSize(OpTy);
    u8 Sz = static_cast<u8>(W);
    i64 Imm;
    if (foldableImm(RV, W, &Imm)) {
      VPR RhsConsume = this->valRef(RV, 0);
      VPR Lhs = this->valRef(LV, 0);
      E.aluRI(x64::AluOp::Cmp, Sz, x64::ax(Lhs.asReg()), Imm);
      return icmpCond(P);
    }
    if (foldableImm(LV, W, &Imm)) {
      VPR LhsConsume = this->valRef(LV, 0);
      VPR Rhs = this->valRef(RV, 0);
      E.aluRI(x64::AluOp::Cmp, Sz, x64::ax(Rhs.asReg()), Imm);
      return icmpCond(swapICmp(P));
    }
    VPR Lhs = this->valRef(LV, 0);
    VPR Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg();
    if (!DisableFusion && !Rhs.isConstLike() && !Rhs.hasReg() && Rhs.inMemory()) {
      E.aluRM(x64::AluOp::Cmp, Sz, x64::ax(L),
              x64::Mem(x64::RBP, Rhs.frameOff()));
    } else {
      E.aluRR(x64::AluOp::Cmp, Sz, x64::ax(L), x64::ax(Rhs.asReg()));
    }
    return icmpCond(P);
  }

  x64::Cond emitI128CmpFlags(const tir::Value &CmpV) {
    tir::ValRef LV = fn().operand(CmpV, 0), RV = fn().operand(CmpV, 1);
    tir::ICmp P = static_cast<tir::ICmp>(CmpV.Aux);
    if (P == tir::ICmp::Eq || P == tir::ICmp::Ne) {
      VPR L0 = this->valRef(LV, 0), L1 = this->valRef(LV, 1);
      VPR R0 = this->valRef(RV, 0), R1 = this->valRef(RV, 1);
      Scratch T0(this), T1(this);
      core::Reg A = T0.alloc(0), B = T1.alloc(0);
      this->emitToReg(A, L0);
      this->emitToReg(B, L1);
      E.aluRR(x64::AluOp::Xor, 8, x64::ax(A), x64::ax(R0.asReg()));
      E.aluRR(x64::AluOp::Xor, 8, x64::ax(B), x64::ax(R1.asReg()));
      E.aluRR(x64::AluOp::Or, 8, x64::ax(A), x64::ax(B));
      return P == tir::ICmp::Eq ? x64::Cond::E : x64::Cond::NE;
    }
    // Relational: reduce to {ult, uge, slt, sge} by swapping operands.
    bool Swap = P == tir::ICmp::Ugt || P == tir::ICmp::Ule ||
                P == tir::ICmp::Sgt || P == tir::ICmp::Sle;
    tir::ValRef A = Swap ? RV : LV, B = Swap ? LV : RV;
    tir::ICmp Q = Swap ? swapICmp(P) : P;
    // cmp a0,b0; sbb t(a1), b1 -> flags hold (a < b) style results.
    VPR A0 = this->valRef(A, 0), A1 = this->valRef(A, 1);
    VPR B0 = this->valRef(B, 0), B1 = this->valRef(B, 1);
    Scratch T(this);
    core::Reg TR = T.alloc(0);
    this->emitToReg(TR, A1);
    E.aluRR(x64::AluOp::Cmp, 8, x64::ax(A0.asReg()), x64::ax(B0.asReg()));
    E.aluRR(x64::AluOp::Sbb, 8, x64::ax(TR), x64::ax(B1.asReg()));
    switch (Q) {
    case tir::ICmp::Ult:
      return x64::Cond::B;
    case tir::ICmp::Uge:
      return x64::Cond::AE;
    case tir::ICmp::Slt:
      return x64::Cond::L;
    case tir::ICmp::Sge:
      return x64::Cond::GE;
    default:
      TPDE_UNREACHABLE("unnormalized i128 predicate");
    }
  }

  bool compileICmp(tir::ValRef I, const tir::Value &V) {
    // Compare-branch fusion (§5.1.2): if the single user is the condbr
    // immediately following, defer to the branch.
    tir::ValRef Nxt = this->A.nextInst(I);
    if (!DisableFusion && Nxt != tir::InvalidRef &&
        this->analyzer().liveness(I).RefCount == 1) {
      const tir::Value &NV = this->A.val(Nxt);
      if (NV.Opcode == tir::Op::CondBr && fn().operand(NV, 0) == I) {
        Fused[I] = 1;
        return true;
      }
    }
    x64::Cond CC = emitICmpFlags(V);
    VPR Res = this->resultRef(I, 0);
    core::Reg R = Res.allocReg();
    E.setcc(CC, x64::ax(R));
    Res.setModified();
    return true;
  }

  bool compileFCmp(tir::ValRef I, const tir::Value &V) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    tir::FCmp P = static_cast<tir::FCmp>(V.Aux);
    u8 Sz = this->A.val(LV).Ty == tir::Type::F32 ? 4 : 8;
    // olt/ole are compiled as swapped ogt/oge so NaN yields false via CF.
    bool Swap = P == tir::FCmp::Olt || P == tir::FCmp::Ole;
    VPR Lhs = this->valRef(Swap ? RV : LV, 0);
    VPR Rhs = this->valRef(Swap ? LV : RV, 0);
    core::Reg L = Lhs.asReg(), R = Rhs.asReg();
    E.ucomis(Sz, x64::ax(L), x64::ax(R));
    VPR Res = this->resultRef(I, 0);
    core::Reg RR = Res.allocReg();
    switch (P) {
    case tir::FCmp::Oeq: {
      Scratch T(this);
      core::Reg TR = T.alloc(0);
      E.setcc(x64::Cond::E, x64::ax(RR));
      E.setcc(x64::Cond::NP, x64::ax(TR));
      E.aluRR(x64::AluOp::And, 4, x64::ax(RR), x64::ax(TR));
      break;
    }
    case tir::FCmp::One: {
      Scratch T(this);
      core::Reg TR = T.alloc(0);
      E.setcc(x64::Cond::NE, x64::ax(RR));
      E.setcc(x64::Cond::NP, x64::ax(TR));
      E.aluRR(x64::AluOp::And, 4, x64::ax(RR), x64::ax(TR));
      break;
    }
    case tir::FCmp::Ogt:
    case tir::FCmp::Olt:
      E.setcc(x64::Cond::A, x64::ax(RR));
      break;
    case tir::FCmp::Oge:
    case tir::FCmp::Ole:
      E.setcc(x64::Cond::AE, x64::ax(RR));
      break;
    }
    Res.setModified();
    return true;
  }

  // --- FP arithmetic -----------------------------------------------------------

  bool compileFpAlu(tir::ValRef I, const tir::Value &V) {
    u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
    x64::FpOp Op = V.Opcode == tir::Op::FAdd   ? x64::FpOp::Add
                   : V.Opcode == tir::Op::FSub ? x64::FpOp::Sub
                   : V.Opcode == tir::Op::FMul ? x64::FpOp::Mul
                                               : x64::FpOp::Div;
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    VPR Rhs = this->valRef(RV, 0);
    VPR Res = this->resultRefReuse(I, 0, this->valRef(LV, 0));
    if (!DisableFusion && !Rhs.isConstLike() && !Rhs.hasReg() && Rhs.inMemory()) {
      E.fpArithMem(Op, Sz, x64::ax(Res.curReg()),
                   x64::Mem(x64::RBP, Rhs.frameOff()));
    } else {
      E.fpArith(Op, Sz, x64::ax(Res.curReg()), x64::ax(Rhs.asReg()));
    }
    Res.setModified();
    return true;
  }

  bool compileIntUnary(tir::ValRef I, const tir::Value &V) {
    u32 W = tir::typeSize(V.Ty);
    VPR Res = this->resultRefReuse(I, 0, this->valRef(fn().operand(V, 0), 0));
    if (V.Opcode == tir::Op::Neg)
      E.negR(opSz(W), x64::ax(Res.curReg()));
    else
      E.notR(opSz(W), x64::ax(Res.curReg()));
    Res.setModified();
    return true;
  }

  bool compileFNeg(tir::ValRef I, const tir::Value &V) {
    u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
    VPR Res = this->resultRefReuse(I, 0, this->valRef(fn().operand(V, 0), 0));
    Scratch GP(this), Mask(this);
    core::Reg G = GP.alloc(0);
    core::Reg M = Mask.alloc(1);
    E.movRI(x64::ax(G), Sz == 4 ? 0x80000000ull : 0x8000000000000000ull);
    E.movdToFp(Sz, x64::ax(M), x64::ax(G));
    E.xorps(x64::ax(Res.curReg()), x64::ax(M));
    Res.setModified();
    return true;
  }

  // --- Casts --------------------------------------------------------------------

  bool compileCast(tir::ValRef I, const tir::Value &V) {
    tir::ValRef SV = fn().operand(V, 0);
    tir::Type SrcTy = this->A.val(SV).Ty;
    u32 SrcW = tir::typeSize(SrcTy), DstW = tir::typeSize(V.Ty);
    switch (V.Opcode) {
    case tir::Op::Zext: {
      if (V.Ty == tir::Type::I128) {
        VPR Res0 = this->resultRefReuse(I, 0, this->valRef(SV, 0));
        if (SrcW < 8)
          E.movzxRR(static_cast<u8>(SrcW), x64::ax(Res0.curReg()),
                    x64::ax(Res0.curReg()));
        VPR Res1 = this->resultRef(I, 1);
        core::Reg R1 = Res1.allocReg();
        E.aluRR(x64::AluOp::Xor, 4, x64::ax(R1), x64::ax(R1));
        Res0.setModified();
        Res1.setModified();
        return true;
      }
      VPR Res = this->resultRefReuse(I, 0, this->valRef(SV, 0));
      E.movzxRR(static_cast<u8>(SrcW < 8 ? SrcW : 4), x64::ax(Res.curReg()),
                x64::ax(Res.curReg()));
      Res.setModified();
      return true;
    }
    case tir::Op::Sext: {
      if (V.Ty == tir::Type::I128) {
        VPR Res0 = this->resultRefReuse(I, 0, this->valRef(SV, 0));
        if (SrcW < 8)
          E.movsxRR(static_cast<u8>(SrcW), x64::ax(Res0.curReg()),
                    x64::ax(Res0.curReg()));
        VPR Res1 = this->resultRef(I, 1);
        core::Reg R1 = Res1.allocReg();
        E.movRR(8, x64::ax(R1), x64::ax(Res0.curReg()));
        E.shiftRI(x64::ShiftOp::Sar, 8, x64::ax(R1), 63);
        Res0.setModified();
        Res1.setModified();
        return true;
      }
      VPR Res = this->resultRefReuse(I, 0, this->valRef(SV, 0));
      E.movsxRR(static_cast<u8>(SrcW < 8 ? SrcW : 4), x64::ax(Res.curReg()),
                x64::ax(Res.curReg()));
      Res.setModified();
      return true;
    }
    case tir::Op::Trunc: {
      if (SrcTy == tir::Type::I128) {
        VPR HiConsume = this->valRef(SV, 1);
        VPR Res = this->resultRefReuse(I, 0, this->valRef(SV, 0));
        if (V.Ty == tir::Type::I1)
          E.aluRI(x64::AluOp::And, 4, x64::ax(Res.curReg()), 1);
        Res.setModified();
        return true;
      }
      VPR Res = this->resultRefReuse(I, 0, this->valRef(SV, 0));
      if (V.Ty == tir::Type::I1)
        E.aluRI(x64::AluOp::And, 4, x64::ax(Res.curReg()), 1);
      Res.setModified();
      return true;
    }
    case tir::Op::FpExt:
    case tir::Op::FpTrunc: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      E.cvtfp2fp(V.Opcode == tir::Op::FpExt ? 4 : 8, x64::ax(R), x64::ax(S));
      Res.setModified();
      return true;
    }
    case tir::Op::FpToSi: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      E.cvtfp2si(SrcW == 4 ? 4 : 8, DstW == 8 ? 8 : 4, x64::ax(R),
                 x64::ax(S));
      Res.setModified();
      return true;
    }
    case tir::Op::SiToFp: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      u8 FpSz = V.Ty == tir::Type::F32 ? 4 : 8;
      if (SrcW < 4) {
        Scratch T(this);
        core::Reg TR = T.alloc(0);
        E.movsxRR(static_cast<u8>(SrcW), x64::ax(TR), x64::ax(S));
        E.cvtsi2fp(8, FpSz, x64::ax(R), x64::ax(TR));
      } else {
        E.cvtsi2fp(static_cast<u8>(SrcW), FpSz, x64::ax(R), x64::ax(S));
      }
      Res.setModified();
      return true;
    }
    case tir::Op::Bitcast: {
      bool SrcFp = tir::isFloatType(SrcTy), DstFp = tir::isFloatType(V.Ty);
      if (SrcFp == DstFp) {
        VPR Res = this->resultRefReuse(I, 0, this->valRef(SV, 0));
        Res.setModified();
        return true;
      }
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      if (DstFp)
        E.movdToFp(static_cast<u8>(DstW), x64::ax(R), x64::ax(S));
      else
        E.movdFromFp(static_cast<u8>(DstW), x64::ax(R), x64::ax(S));
      Res.setModified();
      return true;
    }
    default:
      return false;
    }
  }

  // --- Select ------------------------------------------------------------------

  bool compileSelect(tir::ValRef I, const tir::Value &V) {
    tir::ValRef CV = fn().operand(V, 0), TV = fn().operand(V, 1),
                FV = fn().operand(V, 2);
    {
      VPR Cond = this->valRef(CV, 0);
      E.testRI(1, x64::ax(Cond.asReg()), 1);
    }
    // Everything below must only emit flag-preserving moves plus the
    // cmov/branch itself.
    if (tir::isFloatType(V.Ty)) {
      u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
      (void)Sz;
      VPR FRef = this->valRef(FV, 0);
      core::Reg FR = FRef.asReg();
      VPR Res = this->resultRefReuse(I, 0, this->valRef(TV, 0));
      asmx::Label Keep = this->Asm.makeLabel();
      E.jccLabel(x64::Cond::NE, Keep);
      E.fpMovRR(8, x64::ax(Res.curReg()), x64::ax(FR));
      this->Asm.bindLabel(Keep);
      Res.setModified();
      return true;
    }
    if (V.Ty == tir::Type::I128) {
      VPR T0 = this->valRef(TV, 0), T1 = this->valRef(TV, 1);
      core::Reg RT0 = T0.asReg(), RT1 = T1.asReg();
      VPR Res0 = this->resultRefReuse(I, 0, this->valRef(FV, 0));
      VPR Res1 = this->resultRefReuse(I, 1, this->valRef(FV, 1));
      E.cmovcc(x64::Cond::NE, 8, x64::ax(Res0.curReg()), x64::ax(RT0));
      E.cmovcc(x64::Cond::NE, 8, x64::ax(Res1.curReg()), x64::ax(RT1));
      Res0.setModified();
      Res1.setModified();
      return true;
    }
    u32 W = tir::typeSize(V.Ty);
    VPR TRef = this->valRef(TV, 0);
    core::Reg TR = TRef.asReg();
    VPR Res = this->resultRefReuse(I, 0, this->valRef(FV, 0));
    E.cmovcc(x64::Cond::NE, opSz(W), x64::ax(Res.curReg()), x64::ax(TR));
    Res.setModified();
    return true;
  }

  // --- Memory ---------------------------------------------------------------------

  /// Builds the memory operand for a pointer value, folding fused PtrAdd
  /// instructions and stack variables. The returned refs keep source
  /// registers locked until the access is emitted.
  struct Addr {
    x64::Mem M;
    VPR BaseRef, IndexRef;
  };

  Addr computeAddr(tir::ValRef Ptr) {
    Addr Out;
    const tir::Value &PV = this->A.val(Ptr);
    if (Fused[Ptr]) {
      // Fused PtrAdd: fold base + index*scale + disp (§4.2).
      tir::ValRef BaseV = fn().operand(PV, 0);
      i32 Disp = static_cast<i32>(static_cast<i64>(PV.Aux2));
      x64::AsmReg Base;
      const tir::Value &BV = this->A.val(BaseV);
      if (BV.Kind == tir::ValKind::StackVar) {
        Base = x64::RBP;
        Disp += this->stackVarOff(this->A.stackVarIdx(BaseV));
      } else {
        Out.BaseRef = this->valRef(BaseV, 0);
        Base = x64::ax(Out.BaseRef.asReg());
      }
      if (PV.NumOps > 1) {
        Out.IndexRef = this->valRef(fn().operand(PV, 1), 0);
        Out.M = x64::Mem(Base, x64::ax(Out.IndexRef.asReg()),
                         static_cast<u8>(PV.Aux), Disp);
      } else {
        Out.M = x64::Mem(Base, Disp);
      }
      return Out;
    }
    if (PV.Kind == tir::ValKind::StackVar) {
      Out.M = x64::Mem(x64::RBP, this->stackVarOff(this->A.stackVarIdx(Ptr)));
      return Out;
    }
    Out.BaseRef = this->valRef(Ptr, 0);
    Out.M = x64::Mem(x64::ax(Out.BaseRef.asReg()), 0);
    return Out;
  }

  /// Marks a PtrAdd as fused if its single use is the immediately
  /// following load/store in the same block.
  bool tryFusePtrAdd(tir::ValRef I, const tir::Value &V) {
    if (DisableFusion || this->analyzer().liveness(I).RefCount != 1)
      return false;
    if (V.NumOps > 1) {
      u64 S = V.Aux;
      if (S != 1 && S != 2 && S != 4 && S != 8)
        return false;
    }
    if (!isInt32(static_cast<i64>(V.Aux2)))
      return false;
    // The base must not itself be a fused PtrAdd.
    tir::ValRef Nxt = this->A.nextInst(I);
    if (Nxt == tir::InvalidRef)
      return false;
    const tir::Value &NV = this->A.val(Nxt);
    if (NV.Opcode == tir::Op::Load && fn().operand(NV, 0) == I) {
      Fused[I] = 1;
      return true;
    }
    if (NV.Opcode == tir::Op::Store && fn().operand(NV, 1) == I &&
        fn().operand(NV, 0) != I) {
      Fused[I] = 1;
      return true;
    }
    return false;
  }

  bool compilePtrAdd(tir::ValRef I, const tir::Value &V) {
    if (tryFusePtrAdd(I, V))
      return true;
    tir::ValRef BaseV = fn().operand(V, 0);
    i64 Disp = static_cast<i64>(V.Aux2);
    if (V.NumOps == 1) {
      if (isInt32(Disp)) {
        VPR Res = this->resultRefReuse(I, 0, this->valRef(BaseV, 0));
        if (Disp)
          E.aluRI(x64::AluOp::Add, 8, x64::ax(Res.curReg()), Disp);
        Res.setModified();
        return true;
      }
      VPR Res = this->resultRefReuse(I, 0, this->valRef(BaseV, 0));
      Scratch T(this);
      core::Reg TR = T.alloc(0);
      E.movRI(x64::ax(TR), static_cast<u64>(Disp));
      E.aluRR(x64::AluOp::Add, 8, x64::ax(Res.curReg()), x64::ax(TR));
      Res.setModified();
      return true;
    }
    tir::ValRef IdxV = fn().operand(V, 1);
    u64 Scale = V.Aux;
    bool SibScale = Scale == 1 || Scale == 2 || Scale == 4 || Scale == 8;
    if (SibScale && isInt32(Disp)) {
      VPR Base = this->valRef(BaseV, 0);
      VPR Idx = this->valRef(IdxV, 0);
      core::Reg B = Base.asReg(), X = Idx.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg R = Res.allocReg();
      E.lea(x64::ax(R), x64::Mem(x64::ax(B), x64::ax(X),
                                 static_cast<u8>(Scale),
                                 static_cast<i32>(Disp)));
      Res.setModified();
      return true;
    }
    // General form: res = base + idx*scale + disp.
    VPR Idx = this->valRef(IdxV, 0);
    core::Reg X = Idx.asReg();
    Scratch T(this);
    core::Reg TR = T.alloc(0);
    if (isInt32(static_cast<i64>(Scale))) {
      E.imulRRI(8, x64::ax(TR), x64::ax(X), static_cast<i32>(Scale));
    } else {
      E.movRI(x64::ax(TR), Scale);
      E.imulRR(8, x64::ax(TR), x64::ax(X));
    }
    VPR Res = this->resultRefReuse(I, 0, this->valRef(BaseV, 0));
    E.aluRR(x64::AluOp::Add, 8, x64::ax(Res.curReg()), x64::ax(TR));
    if (Disp) {
      if (isInt32(Disp)) {
        E.aluRI(x64::AluOp::Add, 8, x64::ax(Res.curReg()), Disp);
      } else {
        E.movRI(x64::ax(TR), static_cast<u64>(Disp));
        E.aluRR(x64::AluOp::Add, 8, x64::ax(Res.curReg()), x64::ax(TR));
      }
    }
    Res.setModified();
    return true;
  }

  bool compileLoad(tir::ValRef I, const tir::Value &V) {
    Addr A = computeAddr(fn().operand(V, 0));
    if (tir::isFloatType(V.Ty)) {
      u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
      VPR Res = this->resultRef(I, 0);
      E.fpLoad(Sz, x64::ax(Res.allocReg()), A.M);
      Res.setModified();
      return true;
    }
    if (V.Ty == tir::Type::I128) {
      VPR Res0 = this->resultRef(I, 0);
      E.load(8, x64::ax(Res0.allocReg()), A.M);
      Res0.setModified();
      x64::Mem Hi = A.M;
      Hi.Disp += 8;
      VPR Res1 = this->resultRef(I, 1);
      E.load(8, x64::ax(Res1.allocReg()), Hi);
      Res1.setModified();
      return true;
    }
    u32 W = tir::typeSize(V.Ty);
    VPR Res = this->resultRef(I, 0);
    E.loadZext(static_cast<u8>(W), x64::ax(Res.allocReg()), A.M);
    Res.setModified();
    return true;
  }

  bool compileStore(tir::ValRef I, const tir::Value &V) {
    tir::ValRef SV = fn().operand(V, 0);
    tir::Type Ty = this->A.val(SV).Ty;
    Addr A = computeAddr(fn().operand(V, 1));
    if (tir::isFloatType(Ty)) {
      u8 Sz = Ty == tir::Type::F32 ? 4 : 8;
      VPR Src = this->valRef(SV, 0);
      E.fpStore(Sz, A.M, x64::ax(Src.asReg()));
      return true;
    }
    if (Ty == tir::Type::I128) {
      VPR S0 = this->valRef(SV, 0);
      E.store(8, A.M, x64::ax(S0.asReg()));
      S0.reset();
      x64::Mem Hi = A.M;
      Hi.Disp += 8;
      VPR S1 = this->valRef(SV, 1);
      E.store(8, Hi, x64::ax(S1.asReg()));
      return true;
    }
    u32 W = tir::typeSize(Ty);
    const tir::Value &SVal = this->A.val(SV);
    if (SVal.Kind == tir::ValKind::ConstInt &&
        (W < 8 || isInt32(static_cast<i64>(SVal.Aux)))) {
      VPR Consume = this->valRef(SV, 0);
      E.storeImm(static_cast<u8>(W), A.M, static_cast<i32>(SVal.Aux));
      return true;
    }
    VPR Src = this->valRef(SV, 0);
    E.store(static_cast<u8>(W), A.M, x64::ax(Src.asReg()));
    return true;
  }

  // --- Control flow -----------------------------------------------------------------

  bool compileCondBr(tir::ValRef I, const tir::Value &V) {
    const tir::Block &B = fn().Blocks[V.Block];
    tir::BlockRef TrueB = B.Succs[0], FalseB = B.Succs[1];
    tir::ValRef CV = fn().operand(V, 0);
    if (CV < Fused.size() && Fused[CV]) {
      x64::Cond CC = emitICmpFlags(this->A.val(CV));
      this->generateCondBranch(TrueB, FalseB,
                               [&](asmx::Label L, bool Inv) {
                                 E.jccLabel(Inv ? invert(CC) : CC, L);
                               });
      return true;
    }
    {
      VPR Cond = this->valRef(CV, 0);
      E.testRI(1, x64::ax(Cond.asReg()), 1);
    }
    this->generateCondBranch(TrueB, FalseB, [&](asmx::Label L, bool Inv) {
      E.jccLabel(Inv ? x64::Cond::E : x64::Cond::NE, L);
    });
    return true;
  }

  // --- Constant pool --------------------------------------------------------

  asmx::SymRef fpConstSym(u64 Bits, u8 Size) {
    return fpPoolConstSym(this->Asm, FpPool, Bits, Size);
  }

  TirGlobalSyms GlobalSyms;
  support::DenseMap<u64, asmx::SymRef> FpPool;
  std::vector<u8> Fused;
};

} // namespace tpde::tpde_tir

#include "tir/Verifier.h"

/// Convenience entry point: compiles \p M into \p Asm with TPDE. With
/// \p Verify the module is validated first (tir::verifyModule) so
/// malformed IR never reaches the emitter; \p StatusOut (optional)
/// receives the structured diagnostic on failure.
namespace tpde::tpde_tir {
inline bool compileModuleX64(tir::Module &M, asmx::Assembler &Asm,
                             bool Verify = false,
                             support::CompileStatus *StatusOut = nullptr) {
  if (StatusOut)
    StatusOut->clear();
  if (Verify) {
    std::string Errors;
    if (!tir::verifyModule(M, Errors)) {
      if (StatusOut) {
        StatusOut->Err = support::CompileErr::VerifyFailed;
        StatusOut->Message = std::move(Errors);
      }
      return false;
    }
  }
  TirAdapter Adapter(M);
  TirCompilerX64 Compiler(Adapter, Asm);
  bool OK = false;
  try {
    OK = Compiler.compile();
  } catch (...) { // arena growth (interned names) can throw bad_alloc
    if (StatusOut) {
      StatusOut->Err = support::CompileErr::OutOfMemory;
      StatusOut->Message = "allocation failed during module compile";
    }
    return false;
  }
  if (!OK && StatusOut)
    *StatusOut = Compiler.status();
  return OK;
}
} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_TIRCOMPILERX64_H
