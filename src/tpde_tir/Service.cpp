//===- tpde_tir/Service.cpp - TIR compile-service binding -----------------===//

#include "tpde_tir/Service.h"

namespace tpde::tpde_tir {

support::Fp128 fingerprintModule(const tir::Module &M) {
  support::Hasher128 H;
  H.len(M.Funcs.size());
  for (const tir::Function &F : M.Funcs) {
    H.str(F.Name);
    H.u8v(static_cast<u8>(F.Link));
    H.u8v(F.IsDeclaration ? 1 : 0);
    H.u8v(static_cast<u8>(F.RetTy));
    H.len(F.ParamTys.size());
    for (tir::Type T : F.ParamTys)
      H.u8v(static_cast<u8>(T));
    H.len(F.Values.size());
    for (const tir::Value &V : F.Values) {
      H.u8v(static_cast<u8>(V.Kind));
      H.u8v(static_cast<u8>(V.Opcode));
      H.u8v(static_cast<u8>(V.Ty));
      H.u32v(V.NumOps);
      H.u32v(V.Block);
      H.u64v(V.Aux);
      H.u64v(V.Aux2);
      // Hash the operand *contents*, not OpBegin: two modules whose
      // operand pools are laid out differently but read identically must
      // fingerprint identically.
      for (u32 I = 0; I < V.NumOps; ++I)
        H.u32v(F.OperandPool[V.OpBegin + I]);
      if (V.Opcode == tir::Op::Phi)
        for (u32 I = 0; I < V.NumOps; ++I)
          H.u32v(F.PhiBlockPool[V.OpBegin + I]);
    }
    H.len(F.Blocks.size());
    for (const tir::Block &B : F.Blocks) {
      // Block::Aux is adapter scratch, Block::Name is debug-only — both
      // excluded (see header comment).
      H.len(B.Phis.size());
      for (u32 V : B.Phis)
        H.u32v(V);
      H.len(B.Insts.size());
      for (u32 V : B.Insts)
        H.u32v(V);
      H.len(B.Succs.size());
      for (u32 S : B.Succs)
        H.u32v(S);
    }
    H.len(F.Args.size());
    for (u32 A : F.Args)
      H.u32v(A);
    H.len(F.StackVars.size());
    for (u32 S : F.StackVars)
      H.u32v(S);
  }
  H.len(M.Globals.size());
  for (const tir::Global &G : M.Globals) {
    H.str(G.Name);
    H.u8v(static_cast<u8>(G.Link));
    H.u64v(G.Size);
    H.u32v(G.Align);
    H.u8v(G.ReadOnly ? 1 : 0);
    H.u8v(G.Defined ? 1 : 0);
    H.len(G.Init.size());
    if (!G.Init.empty())
      H.bytes(G.Init.data(), G.Init.size());
  }
  return H.digest();
}

static bool sameGlobal(const tir::Global &A, const tir::Global &B) {
  return A.Name == B.Name && A.Link == B.Link && A.Size == B.Size &&
         A.Align == B.Align && A.ReadOnly == B.ReadOnly &&
         A.Defined == B.Defined && A.Init == B.Init;
}

bool TirX64ServiceTraits::appendTo(tir::Module &Batch, const tir::Module &Job) {
  // Check first, mutate after: a rejected job must leave the batch usable.
  if (!Batch.Funcs.empty() || !Batch.Globals.empty()) {
    if (Batch.Globals.size() != Job.Globals.size())
      return false;
    for (size_t I = 0; I < Job.Globals.size(); ++I)
      if (!sameGlobal(Batch.Globals[I], Job.Globals[I]))
        return false;
  }
  for (size_t J = 0; J < Job.Funcs.size(); ++J) {
    for (const tir::Function &BF : Batch.Funcs)
      if (BF.Name == Job.Funcs[J].Name)
        return false;
    for (size_t K = J + 1; K < Job.Funcs.size(); ++K)
      if (Job.Funcs[J].Name == Job.Funcs[K].Name)
        return false;
  }

  const u32 FuncBase = static_cast<u32>(Batch.Funcs.size());
  if (Batch.Globals.empty())
    Batch.Globals = Job.Globals; // identical sets: global indices unchanged
  for (const tir::Function &F : Job.Funcs) {
    Batch.Funcs.push_back(F);
    if (FuncBase == 0)
      continue;
    // Call values name their callee by module-relative function index.
    for (tir::Value &V : Batch.Funcs.back().Values)
      if (V.Kind == tir::ValKind::Inst && V.Opcode == tir::Op::Call)
        V.Aux += FuncBase;
  }
  return true;
}

} // namespace tpde::tpde_tir
