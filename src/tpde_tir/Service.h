//===- tpde_tir/Service.h - TIR compile-service binding ---------*- C++ -*-===//
///
/// \file
/// Binds the LLVM-IR stand-in (TIR) x86-64 back-end to the multi-tenant
/// compile service (service/CompileService.h): canonical module
/// fingerprinting for the content-addressed code cache, and batch
/// concatenation with the index remapping TIR needs (Call values name
/// their callee by function index, GlobalAddr values name globals by
/// global index — both are module-relative and shift when modules are
/// concatenated).
///
/// Batching criterion: two jobs share a batch only when their **global
/// sets are identical** (same order, names, and contents). The batch's
/// module-level fragment — merged into every job's output — then equals
/// each job's own solo globals fragment, which is what keeps a batched
/// job's bytes identical to compiling it alone (the cache-identity
/// requirement, tests/service_test.cpp). Jobs with differing globals are
/// simply deferred to their own batch; the common serving case (many
/// queries over one schema's shared scratch globals) batches freely.
///
/// The overload-control layer (tenant quotas, deadlines, transient-fault
/// retry — docs/SERVICE.md "Overload control") is IR-agnostic and needs
/// nothing from this binding: SubmitOptions{Tenant, DeadlineNs} applies
/// to TIR submissions unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_SERVICE_H
#define TPDE_TPDE_TIR_SERVICE_H

#include "service/CompileService.h"
#include "tpde_tir/ParallelCompiler.h"

namespace tpde::tpde_tir {

/// Canonical content fingerprint of a TIR module. Covers function
/// signatures, values (with operand-pool and phi-block slices), block
/// structure, and globals (including initializers). Excludes everything
/// codegen does not read: Block::Aux (adapter scratch, mutated by
/// compilation), Block::Name and Function::ValueNames (debug printing
/// only) — so a module fingerprints identically before and after being
/// compiled, and renaming debug values does not fork cache entries.
support::Fp128 fingerprintModule(const tir::Module &M);

/// Service traits: see service/CompileService.h for the contract.
struct TirX64ServiceTraits {
  using WorkerT = TirParallelWorker<TirCompilerX64>;

  static support::Fp128 fingerprint(const tir::Module &M) {
    return fingerprintModule(M);
  }

  /// Appends \p Job's functions to \p Batch, remapping Call callee
  /// indices by the batch's function base. Transactional: returns false
  /// — with Batch untouched — on a function-name conflict or when the
  /// global sets differ (see the file comment for why that is the
  /// batching criterion).
  static bool appendTo(tir::Module &Batch, const tir::Module &Job);

  static void clearModule(tir::Module &M) {
    M.Funcs.clear();
    M.Globals.clear();
  }

  static bool verify(const tir::Module &M, std::string &Err) {
    return tir::verifyModule(M, Err);
  }

  static constexpr asmx::JITMapper::StubArch Stub =
      asmx::JITMapper::StubArch::X64;
};

/// The TIR/x86-64 compile service: submit tir::Modules, get mapped code
/// handles, memoized by content. See docs/SERVICE.md.
using TirCompileServiceX64 = service::CompileService<TirX64ServiceTraits>;

} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_SERVICE_H
