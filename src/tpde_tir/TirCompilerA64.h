//===- tpde_tir/TirCompilerA64.h - TIR instruction compilers ----*- C++ -*-===//
///
/// \file
/// The TPDE-based back-end for TIR targeting AArch64 — the paper's second
/// target (§5: "targeting x86-64 and AArch64"), demonstrating the
/// framework's adaptability: this file provides only the per-opcode
/// instruction compilers; register allocation, value tracking, phi moves,
/// the AAPCS64 call machinery (a64/CompilerA64.h), and the module/range
/// drivers (core/CompilerBase.h) are all shared with the x64 back-end.
/// It implements the full entry-point surface of TirCompilerX64 —
/// compile(), compileReuse(), compileRange(), compileGlobals(), the
/// declareGlobals() hook — so the backend-agnostic parallel driver
/// (core/ParallelCompiler.h) instantiates over it unchanged.
///
/// The two fusions the paper calls out as critical (§3.4.4/§5.1.2) are
/// implemented here as well: integer compare + conditional branch (via
/// B.cond on live flags) and address computations folded into the
/// load/store addressing mode (base + displacement, or base + index
/// shifted by the access size).
///
/// A64 is a load/store three-operand ISA, so unlike the x64 compilers no
/// spilled-operand memory folding exists and destructive-source register
/// reuse is rarely needed; results generally allocate a fresh register
/// while the (locked) sources stay readable.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_TIRCOMPILERA64_H
#define TPDE_TPDE_TIR_TIRCOMPILERA64_H

#include "a64/CompilerA64.h"
#include "support/DenseMap.h"
#include "tpde_tir/TirAdapter.h"
#include "tpde_tir/TirGlobals.h"

namespace tpde::tpde_tir {

class TirCompilerA64 : public a64::CompilerA64<TirAdapter, TirCompilerA64> {
public:
  using Base = a64::CompilerA64<TirAdapter, TirCompilerA64>;
  using VPR = Base::ValuePartRef;
  using Scratch = Base::ScratchReg;
  using a64::CompilerA64<TirAdapter, TirCompilerA64>::E;

  TirCompilerA64(TirAdapter &A, asmx::Assembler &Asm) : Base(A, Asm) {}

  /// Compiles the whole module; returns false on unsupported constructs.
  bool compile() {
    Fused.reserve(this->A.maxValueCount());
    return this->compileModule();
  }

  /// Recompiles the module, reusing the assembler's symbol table from the
  /// previous compile (module-level symbol batching). No Assembler::reset()
  /// needed — the compiler rewinds sections itself.
  bool compileReuse() {
    Fused.reserve(this->A.maxValueCount());
    return this->recompileModule();
  }

  /// Compiles only functions [Begin, End); everything else is declared.
  /// Shard entry point used by the parallel module compiler.
  bool compileRange(u32 Begin, u32 End) {
    Fused.reserve(this->A.maxValueCount());
    return this->compileFunctionRange(Begin, End);
  }

  /// Emits the module-level fragment (global data + declarations) only.
  bool compileGlobals() { return this->compileGlobalsOnly(); }

  /// Cache-key input for the symbol-reuse fast path (CompilerBase): a
  /// change in the module's global count must invalidate GlobalSyms.
  u32 moduleGlobalCount() {
    return static_cast<u32>(this->A.module().Globals.size());
  }

  // =====================================================================
  // Framework hooks
  // =====================================================================

  void defineGlobals() {
    // Constant-pool symbols refer into the assembler's symbol table,
    // which restarts per module compile (capacity retained).
    FpPool.clear();
    defineTirGlobals(this->Asm, this->A.module(), GlobalSyms,
                     this->moduleSymEpoch());
  }

  /// Sparse-mode variant of defineGlobals() (shard compiles): registers
  /// nothing — globalSym() materializes a global's symbol at its first
  /// reference, so a shard only pays for globals it touches.
  void declareGlobals() {
    FpPool.clear();
    GlobalSyms.prepare(this->A.module());
  }

  /// On-demand global symbol (see TirGlobals.h).
  asmx::SymRef globalSym(u32 GI) {
    return GlobalSyms.sym(this->Asm, this->A.module(), GI,
                          this->moduleSymEpoch());
  }

  template <typename Fn> void forEachStackVar(Fn Cb) {
    const tir::Function &F = this->A.func();
    for (tir::ValRef SV : F.StackVars) {
      const tir::Value &V = F.val(SV);
      Cb(V.Aux, static_cast<u32>(V.Aux2));
    }
  }

  void beginFunc(asmx::SymRef Sym) {
    Base::beginFunc(Sym);
    Fused.assign(this->A.valueCount(), 0);
  }

  void materializeConstLike(tir::ValRef V, u8 Part, core::Reg Dst) {
    const tir::Value &Val = this->A.val(V);
    switch (Val.Kind) {
    case tir::ValKind::ConstInt: {
      u64 Bits = Part == 0 ? Val.Aux : Val.Aux2;
      u32 W = tir::partSize(Val.Ty, Part);
      if (W < 8)
        Bits &= (u64(1) << (8 * W)) - 1;
      if (Val.Ty == tir::Type::I1)
        Bits &= 1;
      E.movRI(a64::ar(Dst), Bits);
      return;
    }
    case tir::ValKind::ConstFP: {
      u8 Sz = Val.Ty == tir::Type::F32 ? 4 : 8;
      // X17 is the instruction compilers' reserved scratch (never
      // allocated); the pool entry's address never outlives this load.
      E.leaSym(a64::X17, fpConstSym(Val.Aux, Sz));
      E.ldr(Sz, a64::ar(Dst), a64::Mem(a64::X17));
      return;
    }
    case tir::ValKind::GlobalAddr:
      E.leaSym(a64::ar(Dst), globalSym(static_cast<u32>(Val.Aux)));
      return;
    case tir::ValKind::StackVar:
      E.leaMem(a64::ar(Dst), a64::FP,
               this->stackVarOff(this->A.stackVarIdx(V)));
      return;
    default:
      TPDE_UNREACHABLE("not a constant-like value");
    }
  }

  // =====================================================================
  // Instruction dispatch
  // =====================================================================

  bool compileInst(tir::ValRef I) {
    if (Fused[I])
      return true;
    const tir::Value &V = this->A.val(I);
    switch (V.Opcode) {
    case tir::Op::Add:
    case tir::Op::Sub:
    case tir::Op::And:
    case tir::Op::Or:
    case tir::Op::Xor:
      return compileIntAlu(I, V);
    case tir::Op::Mul:
      return compileMul(I, V);
    case tir::Op::UDiv:
    case tir::Op::SDiv:
    case tir::Op::URem:
    case tir::Op::SRem:
      return compileDivRem(I, V);
    case tir::Op::Shl:
    case tir::Op::LShr:
    case tir::Op::AShr:
      return compileShift(I, V);
    case tir::Op::ICmpOp:
      return compileICmp(I, V);
    case tir::Op::FCmpOp:
      return compileFCmp(I, V);
    case tir::Op::FAdd:
    case tir::Op::FSub:
    case tir::Op::FMul:
    case tir::Op::FDiv:
      return compileFpAlu(I, V);
    case tir::Op::Neg:
    case tir::Op::Not:
      return compileIntUnary(I, V);
    case tir::Op::FNeg:
      return compileFNeg(I, V);
    case tir::Op::Zext:
    case tir::Op::Sext:
    case tir::Op::Trunc:
    case tir::Op::FpToSi:
    case tir::Op::SiToFp:
    case tir::Op::FpExt:
    case tir::Op::FpTrunc:
    case tir::Op::Bitcast:
      return compileCast(I, V);
    case tir::Op::Select:
      return compileSelect(I, V);
    case tir::Op::Load:
      return compileLoad(I, V);
    case tir::Op::Store:
      return compileStore(I, V);
    case tir::Op::PtrAdd:
      return compilePtrAdd(I, V);
    case tir::Op::Call: {
      const tir::Function &F = this->A.func();
      std::span<const tir::ValRef> Args{F.OperandPool.data() + V.OpBegin,
                                        V.NumOps};
      if (V.Ty != tir::Type::Void) {
        tir::ValRef Res = I;
        this->genCall(this->funcSym(static_cast<u32>(V.Aux)), Args, &Res);
      } else {
        this->genCall(this->funcSym(static_cast<u32>(V.Aux)), Args, nullptr);
      }
      return true;
    }
    case tir::Op::Ret: {
      if (V.NumOps) {
        tir::ValRef RV = this->A.func().operand(V, 0);
        this->emitReturn(&RV);
      } else {
        this->emitReturn(nullptr);
      }
      return true;
    }
    case tir::Op::Br:
      this->generateBranch(this->A.func().Blocks[V.Block].Succs[0]);
      return true;
    case tir::Op::CondBr:
      return compileCondBr(I, V);
    case tir::Op::Unreachable:
      E.brk(0);
      return true;
    default:
      return false; // unsupported
    }
  }

private:
  const tir::Function &fn() const { return this->A.func(); }

  /// Integer operand size for the W/X form selection: sub-32-bit
  /// operations run in the 32-bit form (high bits are don't-care, exactly
  /// like the x64 back-end's 32-bit ALU forms).
  static u8 opSz(u32 W) { return W < 8 ? 4 : 8; }

  static a64::Cond icmpCond(tir::ICmp P) {
    using tir::ICmp;
    using a64::Cond;
    switch (P) {
    case ICmp::Eq:
      return Cond::EQ;
    case ICmp::Ne:
      return Cond::NE;
    case ICmp::Ult:
      return Cond::LO;
    case ICmp::Ule:
      return Cond::LS;
    case ICmp::Ugt:
      return Cond::HI;
    case ICmp::Uge:
      return Cond::HS;
    case ICmp::Slt:
      return Cond::LT;
    case ICmp::Sle:
      return Cond::LE;
    case ICmp::Sgt:
      return Cond::GT;
    case ICmp::Sge:
      return Cond::GE;
    }
    TPDE_UNREACHABLE("bad icmp predicate");
  }

  /// Predicate with swapped operands (a < b == b > a).
  static tir::ICmp swapICmp(tir::ICmp P) {
    using tir::ICmp;
    switch (P) {
    case ICmp::Eq:
    case ICmp::Ne:
      return P;
    case ICmp::Ult:
      return ICmp::Ugt;
    case ICmp::Ule:
      return ICmp::Uge;
    case ICmp::Ugt:
      return ICmp::Ult;
    case ICmp::Uge:
      return ICmp::Ule;
    case ICmp::Slt:
      return ICmp::Sgt;
    case ICmp::Sle:
      return ICmp::Sge;
    case ICmp::Sgt:
      return ICmp::Slt;
    case ICmp::Sge:
      return ICmp::Sle;
    }
    TPDE_UNREACHABLE("bad icmp predicate");
  }

  static bool signedPred(tir::ICmp P) {
    return P == tir::ICmp::Slt || P == tir::ICmp::Sle ||
           P == tir::ICmp::Sgt || P == tir::ICmp::Sge;
  }

  /// Immediate-operand fold: on A64 every integer constant is usable —
  /// add/sub/cmp/logical immediates encode directly and everything else
  /// falls back to the encoder's X16 materialization — so folding is
  /// purely a question of the value being a constant (width <= 64).
  bool foldableImm(tir::ValRef V, u32 W, i64 *Out) {
    if (!this->A.isConstInt(V)) // metadata bit: no Value fetch
      return false;
    const tir::Value &Val = this->A.val(V);
    *Out = signExtend(Val.Aux, W >= 8 ? 64 : 8 * W);
    return true;
  }

  /// Zero/sign-extends the sub-32-bit value in \p Src into \p Dst.
  void extendNarrow(u32 W, bool Signed, a64::AsmReg Dst, a64::AsmReg Src) {
    if (W == 2)
      Signed ? E.sxth(Dst, Src) : E.uxth(Dst, Src);
    else
      Signed ? E.sxtb(Dst, Src) : E.uxtb(Dst, Src);
  }

  // --- Integer ALU (add/sub/and/or/xor) -----------------------------------

  bool compileIntAlu(tir::ValRef I, const tir::Value &V) {
    if (V.Ty == tir::Type::I128)
      return compileI128Alu(I, V);
    u32 W = tir::typeSize(V.Ty);
    u8 Sz = opSz(W);
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    bool Commutative = V.Opcode != tir::Op::Sub;
    i64 Imm;
    if (foldableImm(RV, W, &Imm) ||
        (Commutative && foldableImm(LV, W, &Imm))) {
      bool RhsImm = foldableImm(RV, W, &Imm);
      VPR ImmRef = this->valRef(RhsImm ? RV : LV, 0); // consume the use
      VPR Src = this->valRef(RhsImm ? LV : RV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      emitAluImm(V.Opcode, Sz, a64::ar(D), a64::ar(S), Imm);
      Res.setModified();
      return true;
    }
    VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg(), R = Rhs.asReg();
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    emitAluReg(V.Opcode, Sz, a64::ar(D), a64::ar(L), a64::ar(R));
    Res.setModified();
    return true;
  }

  void emitAluImm(tir::Op Op, u8 Sz, a64::AsmReg D, a64::AsmReg S, i64 Imm) {
    // Negation happens in the unsigned domain: Imm may be INT64_MIN,
    // whose signed negation is UB (its unsigned negation is itself, and
    // sub-by-0x8000000000000000 == add-by-it, so the result is right).
    u64 NegImm = 0 - static_cast<u64>(Imm);
    switch (Op) {
    case tir::Op::Add:
      Imm >= 0 ? E.addRI(Sz, D, S, static_cast<u64>(Imm))
               : E.subRI(Sz, D, S, NegImm);
      return;
    case tir::Op::Sub:
      Imm >= 0 ? E.subRI(Sz, D, S, static_cast<u64>(Imm))
               : E.addRI(Sz, D, S, NegImm);
      return;
    case tir::Op::And:
      E.logicRI(a64::LogicOp::And, Sz, D, S, static_cast<u64>(Imm));
      return;
    case tir::Op::Or:
      E.logicRI(a64::LogicOp::Orr, Sz, D, S, static_cast<u64>(Imm));
      return;
    case tir::Op::Xor:
      E.logicRI(a64::LogicOp::Eor, Sz, D, S, static_cast<u64>(Imm));
      return;
    default:
      TPDE_UNREACHABLE("not an ALU op");
    }
  }

  void emitAluReg(tir::Op Op, u8 Sz, a64::AsmReg D, a64::AsmReg L,
                  a64::AsmReg R) {
    switch (Op) {
    case tir::Op::Add:
      E.addRRR(Sz, D, L, R);
      return;
    case tir::Op::Sub:
      E.subRRR(Sz, D, L, R);
      return;
    case tir::Op::And:
      E.logicRRR(a64::LogicOp::And, Sz, D, L, R);
      return;
    case tir::Op::Or:
      E.logicRRR(a64::LogicOp::Orr, Sz, D, L, R);
      return;
    case tir::Op::Xor:
      E.logicRRR(a64::LogicOp::Eor, Sz, D, L, R);
      return;
    default:
      TPDE_UNREACHABLE("not an ALU op");
    }
  }

  bool compileI128Alu(tir::ValRef I, const tir::Value &V) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    VPR L0 = this->valRef(LV, 0), L1 = this->valRef(LV, 1);
    VPR R0 = this->valRef(RV, 0), R1 = this->valRef(RV, 1);
    core::Reg RL0 = L0.asReg(), RL1 = L1.asReg();
    core::Reg RR0 = R0.asReg(), RR1 = R1.asReg();
    VPR Res0 = this->resultRef(I, 0), Res1 = this->resultRef(I, 1);
    core::Reg D0 = Res0.allocReg(), D1 = Res1.allocReg();
    switch (V.Opcode) {
    case tir::Op::Add:
      // Low and high stay adjacent for the carry; register allocation
      // between them emits at most flag-preserving loads/stores.
      E.addRRR(8, a64::ar(D0), a64::ar(RL0), a64::ar(RR0), /*SetFlags=*/true);
      E.adcsRRR(8, a64::ar(D1), a64::ar(RL1), a64::ar(RR1));
      break;
    case tir::Op::Sub:
      E.subRRR(8, a64::ar(D0), a64::ar(RL0), a64::ar(RR0), /*SetFlags=*/true);
      E.sbcsRRR(8, a64::ar(D1), a64::ar(RL1), a64::ar(RR1));
      break;
    case tir::Op::And:
      E.logicRRR(a64::LogicOp::And, 8, a64::ar(D0), a64::ar(RL0), a64::ar(RR0));
      E.logicRRR(a64::LogicOp::And, 8, a64::ar(D1), a64::ar(RL1), a64::ar(RR1));
      break;
    case tir::Op::Or:
      E.logicRRR(a64::LogicOp::Orr, 8, a64::ar(D0), a64::ar(RL0), a64::ar(RR0));
      E.logicRRR(a64::LogicOp::Orr, 8, a64::ar(D1), a64::ar(RL1), a64::ar(RR1));
      break;
    case tir::Op::Xor:
      E.logicRRR(a64::LogicOp::Eor, 8, a64::ar(D0), a64::ar(RL0), a64::ar(RR0));
      E.logicRRR(a64::LogicOp::Eor, 8, a64::ar(D1), a64::ar(RL1), a64::ar(RR1));
      break;
    default:
      return false;
    }
    Res0.setModified();
    Res1.setModified();
    return true;
  }

  // --- Multiplication ------------------------------------------------------

  bool compileMul(tir::ValRef I, const tir::Value &V) {
    if (V.Ty == tir::Type::I128)
      return compileI128Mul(I, V);
    u8 Sz = opSz(tir::typeSize(V.Ty));
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    // No multiply-immediate on A64: asReg() materializes constants.
    VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg(), R = Rhs.asReg();
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    E.mulRRR(Sz, a64::ar(D), a64::ar(L), a64::ar(R));
    Res.setModified();
    return true;
  }

  bool compileI128Mul(tir::ValRef I, const tir::Value &V) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    // (a1:a0) * (b1:b0): lo = a0*b0, hi = umulh(a0,b0) + a0*b1 + a1*b0.
    VPR A0 = this->valRef(LV, 0), A1 = this->valRef(LV, 1);
    VPR B0 = this->valRef(RV, 0), B1 = this->valRef(RV, 1);
    core::Reg RA0 = A0.asReg(), RA1 = A1.asReg();
    core::Reg RB0 = B0.asReg(), RB1 = B1.asReg();
    Scratch Hi(this);
    core::Reg T = Hi.alloc(0);
    E.umulh(a64::ar(T), a64::ar(RA0), a64::ar(RB0));
    E.maddRRRR(8, a64::ar(T), a64::ar(RA0), a64::ar(RB1), a64::ar(T));
    E.maddRRRR(8, a64::ar(T), a64::ar(RA1), a64::ar(RB0), a64::ar(T));
    VPR Res0 = this->resultRef(I, 0), Res1 = this->resultRef(I, 1);
    core::Reg D0 = Res0.allocReg(), D1 = Res1.allocReg();
    E.mulRRR(8, a64::ar(D0), a64::ar(RA0), a64::ar(RB0));
    E.movRR(8, a64::ar(D1), a64::ar(T));
    Res0.setModified();
    Res1.setModified();
    return true;
  }

  // --- Division / remainder ----------------------------------------------

  bool compileDivRem(tir::ValRef I, const tir::Value &V) {
    if (V.Ty == tir::Type::I128)
      return false; // excluded from the supported subset
    u32 W = tir::typeSize(V.Ty);
    u8 Sz = opSz(W);
    bool Signed = V.Opcode == tir::Op::SDiv || V.Opcode == tir::Op::SRem;
    bool WantRem = V.Opcode == tir::Op::URem || V.Opcode == tir::Op::SRem;
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg(), R = Rhs.asReg();
    a64::AsmReg NumR = a64::ar(L), DenR = a64::ar(R);
    // Sub-32-bit division must see well-defined operands: widen to the
    // 32-bit form (the x64 back-end widens to 32 bits the same way).
    Scratch NumW(this), DenW(this);
    if (W < 4) {
      core::Reg TN = NumW.alloc(0), TD = DenW.alloc(0);
      extendNarrow(W, Signed, a64::ar(TN), NumR);
      extendNarrow(W, Signed, a64::ar(TD), DenR);
      NumR = a64::ar(TN);
      DenR = a64::ar(TD);
    }
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    if (!WantRem) {
      Signed ? E.sdivRRR(Sz, a64::ar(D), NumR, DenR)
             : E.udivRRR(Sz, a64::ar(D), NumR, DenR);
    } else {
      // rem = num - (num / den) * den (MSUB).
      Scratch Q(this);
      core::Reg TQ = Q.alloc(0);
      Signed ? E.sdivRRR(Sz, a64::ar(TQ), NumR, DenR)
             : E.udivRRR(Sz, a64::ar(TQ), NumR, DenR);
      E.msubRRRR(Sz, a64::ar(D), a64::ar(TQ), DenR, NumR);
    }
    Res.setModified();
    return true;
  }

  // --- Shifts ---------------------------------------------------------------

  bool compileShift(tir::ValRef I, const tir::Value &V) {
    u32 W = tir::typeSize(V.Ty);
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    const tir::Value &RVal = this->A.val(RV);
    bool ConstAmt = RVal.Kind == tir::ValKind::ConstInt;
    if (V.Ty == tir::Type::I128) {
      if (!ConstAmt)
        return false; // dynamic i128 shifts are not in the subset
      return compileI128ShiftConst(I, V, static_cast<u8>(RVal.Aux & 127));
    }
    u8 Sz = opSz(W);
    a64::ShiftOp SOp = V.Opcode == tir::Op::Shl    ? a64::ShiftOp::Lsl
                       : V.Opcode == tir::Op::LShr ? a64::ShiftOp::Lsr
                                                   : a64::ShiftOp::Asr;
    bool Right = V.Opcode != tir::Op::Shl;
    u8 Amt = ConstAmt ? static_cast<u8>(RVal.Aux & (8 * W - 1)) : 0;

    VPR AmtRef = this->valRef(RV, 0); // consumed either way
    core::Reg AmtR;
    if (!ConstAmt)
      AmtR = AmtRef.asReg();
    VPR Src = this->valRef(LV, 0);
    a64::AsmReg S = a64::ar(Src.asReg());
    // Right shifts of sub-32-bit values need a well-defined extension
    // before the 32-bit shift (left shifts don't care about high bits).
    Scratch Ext(this);
    if (W < 4 && Right) {
      core::Reg T = Ext.alloc(0);
      extendNarrow(W, V.Opcode == tir::Op::AShr, a64::ar(T), S);
      S = a64::ar(T);
    }
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    if (ConstAmt)
      Amt ? E.shiftRI(SOp, Sz, a64::ar(D), S, Amt)
          : E.movRR(Sz, a64::ar(D), S);
    else
      E.shiftRRR(SOp, Sz, a64::ar(D), S, a64::ar(AmtR));
    Res.setModified();
    return true;
  }

  bool compileI128ShiftConst(tir::ValRef I, const tir::Value &V, u8 Amt) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    VPR AmtRef = this->valRef(RV, 0); // consume the use
    bool Shl = V.Opcode == tir::Op::Shl;
    bool Arith = V.Opcode == tir::Op::AShr;
    VPR L0 = this->valRef(LV, 0), L1 = this->valRef(LV, 1);
    core::Reg RL0 = L0.asReg(), RL1 = L1.asReg();
    VPR Res0 = this->resultRef(I, 0), Res1 = this->resultRef(I, 1);
    core::Reg D0 = Res0.allocReg(), D1 = Res1.allocReg();
    if (Amt == 0) {
      E.movRR(8, a64::ar(D0), a64::ar(RL0));
      E.movRR(8, a64::ar(D1), a64::ar(RL1));
    } else if (Shl) {
      if (Amt < 64) {
        // hi = (hi:lo) << Amt -> EXTR(hi, lo, 64-Amt); lo <<= Amt.
        E.extrRRI(8, a64::ar(D1), a64::ar(RL1), a64::ar(RL0),
                  static_cast<u8>(64 - Amt));
        E.shiftRI(a64::ShiftOp::Lsl, 8, a64::ar(D0), a64::ar(RL0), Amt);
      } else {
        Amt > 64 ? E.shiftRI(a64::ShiftOp::Lsl, 8, a64::ar(D1), a64::ar(RL0),
                             static_cast<u8>(Amt - 64))
                 : E.movRR(8, a64::ar(D1), a64::ar(RL0));
        E.movRI(a64::ar(D0), 0);
      }
    } else {
      if (Amt < 64) {
        // lo = (hi:lo) >> Amt -> EXTR(hi, lo, Amt); hi >>=(l/a) Amt.
        E.extrRRI(8, a64::ar(D0), a64::ar(RL1), a64::ar(RL0), Amt);
        E.shiftRI(Arith ? a64::ShiftOp::Asr : a64::ShiftOp::Lsr, 8,
                  a64::ar(D1), a64::ar(RL1), Amt);
      } else {
        Amt > 64 ? E.shiftRI(Arith ? a64::ShiftOp::Asr : a64::ShiftOp::Lsr, 8,
                             a64::ar(D0), a64::ar(RL1),
                             static_cast<u8>(Amt - 64))
                 : E.movRR(8, a64::ar(D0), a64::ar(RL1));
        if (Arith)
          E.shiftRI(a64::ShiftOp::Asr, 8, a64::ar(D1), a64::ar(RL1), 63);
        else
          E.movRI(a64::ar(D1), 0);
      }
    }
    Res0.setModified();
    Res1.setModified();
    return true;
  }

  // --- Comparisons -----------------------------------------------------------

  /// Emits the flag-setting compare for an integer comparison and returns
  /// the condition code. Shared by the cset path and the fused
  /// compare-branch path.
  a64::Cond emitICmpFlags(const tir::Value &CmpV) {
    tir::ValRef LV = fn().operand(CmpV, 0), RV = fn().operand(CmpV, 1);
    tir::ICmp P = static_cast<tir::ICmp>(CmpV.Aux);
    tir::Type OpTy = this->A.val(LV).Ty;
    if (OpTy == tir::Type::I128)
      return emitI128CmpFlags(CmpV);
    u32 W = tir::typeSize(OpTy);
    if (W < 4) {
      // A64 has no 8/16-bit compare: extend both operands (by the
      // predicate's signedness) and compare in the 32-bit form.
      VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
      core::Reg L = Lhs.asReg(), R = Rhs.asReg();
      Scratch TL(this), TR(this);
      core::Reg EL = TL.alloc(0), ER = TR.alloc(0);
      extendNarrow(W, signedPred(P), a64::ar(EL), a64::ar(L));
      extendNarrow(W, signedPred(P), a64::ar(ER), a64::ar(R));
      E.cmpRR(4, a64::ar(EL), a64::ar(ER));
      return icmpCond(P);
    }
    u8 Sz = opSz(W);
    i64 Imm;
    if (foldableImm(RV, W, &Imm)) {
      VPR RhsConsume = this->valRef(RV, 0);
      VPR Lhs = this->valRef(LV, 0);
      E.cmpRI(Sz, a64::ar(Lhs.asReg()), static_cast<u64>(Imm));
      return icmpCond(P);
    }
    if (foldableImm(LV, W, &Imm)) {
      VPR LhsConsume = this->valRef(LV, 0);
      VPR Rhs = this->valRef(RV, 0);
      E.cmpRI(Sz, a64::ar(Rhs.asReg()), static_cast<u64>(Imm));
      return icmpCond(swapICmp(P));
    }
    VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg();
    E.cmpRR(Sz, a64::ar(L), a64::ar(Rhs.asReg()));
    return icmpCond(P);
  }

  a64::Cond emitI128CmpFlags(const tir::Value &CmpV) {
    tir::ValRef LV = fn().operand(CmpV, 0), RV = fn().operand(CmpV, 1);
    tir::ICmp P = static_cast<tir::ICmp>(CmpV.Aux);
    if (P == tir::ICmp::Eq || P == tir::ICmp::Ne) {
      VPR L0 = this->valRef(LV, 0), L1 = this->valRef(LV, 1);
      VPR R0 = this->valRef(RV, 0), R1 = this->valRef(RV, 1);
      core::Reg RL0 = L0.asReg(), RL1 = L1.asReg();
      core::Reg RR0 = R0.asReg(), RR1 = R1.asReg();
      Scratch T0(this), T1(this);
      core::Reg A = T0.alloc(0), B = T1.alloc(0);
      E.logicRRR(a64::LogicOp::Eor, 8, a64::ar(A), a64::ar(RL0), a64::ar(RR0));
      E.logicRRR(a64::LogicOp::Eor, 8, a64::ar(B), a64::ar(RL1), a64::ar(RR1));
      E.logicRRR(a64::LogicOp::Orr, 8, a64::ar(A), a64::ar(A), a64::ar(B));
      E.cmpRI(8, a64::ar(A), 0);
      return P == tir::ICmp::Eq ? a64::Cond::EQ : a64::Cond::NE;
    }
    // Relational: reduce to {ult, uge, slt, sge} by swapping operands,
    // then compute flags with a SUBS/SBCS borrow chain.
    bool Swap = P == tir::ICmp::Ugt || P == tir::ICmp::Ule ||
                P == tir::ICmp::Sgt || P == tir::ICmp::Sle;
    tir::ValRef A = Swap ? RV : LV, B = Swap ? LV : RV;
    tir::ICmp Q = Swap ? swapICmp(P) : P;
    VPR A0 = this->valRef(A, 0), A1 = this->valRef(A, 1);
    VPR B0 = this->valRef(B, 0), B1 = this->valRef(B, 1);
    core::Reg RA0 = A0.asReg(), RA1 = A1.asReg();
    core::Reg RB0 = B0.asReg(), RB1 = B1.asReg();
    E.cmpRR(8, a64::ar(RA0), a64::ar(RB0));
    E.sbcsRRR(8, a64::XZR, a64::ar(RA1), a64::ar(RB1));
    switch (Q) {
    case tir::ICmp::Ult:
      return a64::Cond::LO;
    case tir::ICmp::Uge:
      return a64::Cond::HS;
    case tir::ICmp::Slt:
      return a64::Cond::LT;
    case tir::ICmp::Sge:
      return a64::Cond::GE;
    default:
      TPDE_UNREACHABLE("unnormalized i128 predicate");
    }
  }

  bool compileICmp(tir::ValRef I, const tir::Value &V) {
    // Compare-branch fusion (§5.1.2): if the single user is the condbr
    // immediately following, defer to the branch.
    tir::ValRef Nxt = this->A.nextInst(I);
    if (!DisableFusion && Nxt != tir::InvalidRef &&
        this->analyzer().liveness(I).RefCount == 1) {
      const tir::Value &NV = this->A.val(Nxt);
      if (NV.Opcode == tir::Op::CondBr && fn().operand(NV, 0) == I) {
        Fused[I] = 1;
        return true;
      }
    }
    a64::Cond CC = emitICmpFlags(V);
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    E.cset(a64::ar(D), CC);
    Res.setModified();
    return true;
  }

  bool compileFCmp(tir::ValRef I, const tir::Value &V) {
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    tir::FCmp P = static_cast<tir::FCmp>(V.Aux);
    u8 Sz = this->A.val(LV).Ty == tir::Type::F32 ? 4 : 8;
    VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg(), R = Rhs.asReg();
    E.fpCmp(Sz, a64::ar(L), a64::ar(R));
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    // After FCMP, unordered sets C and V: EQ/GT/GE/MI/LS all exclude the
    // unordered case, exactly matching the ordered predicates.
    switch (P) {
    case tir::FCmp::Oeq:
      E.cset(a64::ar(D), a64::Cond::EQ);
      break;
    case tir::FCmp::One: {
      // Ordered-and-unequal has no single condition: (a < b) || (a > b).
      Scratch T(this);
      core::Reg TR = T.alloc(0);
      E.cset(a64::ar(D), a64::Cond::MI);
      E.cset(a64::ar(TR), a64::Cond::GT);
      E.logicRRR(a64::LogicOp::Orr, 4, a64::ar(D), a64::ar(D), a64::ar(TR));
      break;
    }
    case tir::FCmp::Olt:
      E.cset(a64::ar(D), a64::Cond::MI);
      break;
    case tir::FCmp::Ole:
      E.cset(a64::ar(D), a64::Cond::LS);
      break;
    case tir::FCmp::Ogt:
      E.cset(a64::ar(D), a64::Cond::GT);
      break;
    case tir::FCmp::Oge:
      E.cset(a64::ar(D), a64::Cond::GE);
      break;
    }
    Res.setModified();
    return true;
  }

  // --- FP arithmetic ---------------------------------------------------------

  bool compileFpAlu(tir::ValRef I, const tir::Value &V) {
    u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
    a64::FpOp Op = V.Opcode == tir::Op::FAdd   ? a64::FpOp::Add
                   : V.Opcode == tir::Op::FSub ? a64::FpOp::Sub
                   : V.Opcode == tir::Op::FMul ? a64::FpOp::Mul
                                               : a64::FpOp::Div;
    tir::ValRef LV = fn().operand(V, 0), RV = fn().operand(V, 1);
    VPR Lhs = this->valRef(LV, 0), Rhs = this->valRef(RV, 0);
    core::Reg L = Lhs.asReg(), R = Rhs.asReg();
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    E.fpArith(Op, Sz, a64::ar(D), a64::ar(L), a64::ar(R));
    Res.setModified();
    return true;
  }

  bool compileIntUnary(tir::ValRef I, const tir::Value &V) {
    u8 Sz = opSz(tir::typeSize(V.Ty));
    VPR Src = this->valRef(fn().operand(V, 0), 0);
    core::Reg S = Src.asReg();
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    if (V.Opcode == tir::Op::Neg)
      E.negR(Sz, a64::ar(D), a64::ar(S));
    else
      E.mvnRR(Sz, a64::ar(D), a64::ar(S));
    Res.setModified();
    return true;
  }

  bool compileFNeg(tir::ValRef I, const tir::Value &V) {
    u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
    VPR Src = this->valRef(fn().operand(V, 0), 0);
    core::Reg S = Src.asReg();
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    E.fpNeg(Sz, a64::ar(D), a64::ar(S));
    Res.setModified();
    return true;
  }

  // --- Casts -----------------------------------------------------------------

  bool compileCast(tir::ValRef I, const tir::Value &V) {
    tir::ValRef SV = fn().operand(V, 0);
    tir::Type SrcTy = this->A.val(SV).Ty;
    u32 SrcW = tir::typeSize(SrcTy), DstW = tir::typeSize(V.Ty);
    switch (V.Opcode) {
    case tir::Op::Zext: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res0 = this->resultRef(I, 0);
      core::Reg D0 = Res0.allocReg();
      emitZext(SrcW, a64::ar(D0), a64::ar(S));
      Res0.setModified();
      if (V.Ty == tir::Type::I128) {
        VPR Res1 = this->resultRef(I, 1);
        E.movRI(a64::ar(Res1.allocReg()), 0);
        Res1.setModified();
      }
      return true;
    }
    case tir::Op::Sext: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res0 = this->resultRef(I, 0);
      core::Reg D0 = Res0.allocReg();
      switch (SrcW) {
      case 1:
        E.sxtb(a64::ar(D0), a64::ar(S));
        break;
      case 2:
        E.sxth(a64::ar(D0), a64::ar(S));
        break;
      case 4:
        E.sxtw(a64::ar(D0), a64::ar(S));
        break;
      default:
        E.movRR(8, a64::ar(D0), a64::ar(S));
        break;
      }
      Res0.setModified();
      if (V.Ty == tir::Type::I128) {
        VPR Res1 = this->resultRef(I, 1);
        core::Reg D1 = Res1.allocReg();
        E.shiftRI(a64::ShiftOp::Asr, 8, a64::ar(D1), a64::ar(D0), 63);
        Res1.setModified();
      }
      return true;
    }
    case tir::Op::Trunc: {
      if (SrcTy == tir::Type::I128) {
        VPR HiConsume = this->valRef(SV, 1);
        (void)HiConsume;
      }
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      if (V.Ty == tir::Type::I1)
        E.logicRI(a64::LogicOp::And, 4, a64::ar(D), a64::ar(S), 1);
      else
        E.movRR(8, a64::ar(D), a64::ar(S));
      Res.setModified();
      return true;
    }
    case tir::Op::FpExt:
    case tir::Op::FpTrunc: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      E.fpCvt(V.Opcode == tir::Op::FpExt ? 4 : 8, a64::ar(D), a64::ar(S));
      Res.setModified();
      return true;
    }
    case tir::Op::FpToSi: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      E.cvtFpToSi(SrcW == 4 ? 4 : 8, DstW == 8 ? 8 : 4, a64::ar(D),
                  a64::ar(S));
      Res.setModified();
      return true;
    }
    case tir::Op::SiToFp: {
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      u8 FpSz = V.Ty == tir::Type::F32 ? 4 : 8;
      if (SrcW < 4) {
        Scratch T(this);
        core::Reg TR = T.alloc(0);
        extendNarrow(SrcW, /*Signed=*/true, a64::ar(TR), a64::ar(S));
        E.cvtSiToFp(8, FpSz, a64::ar(D), a64::ar(TR));
      } else {
        E.cvtSiToFp(static_cast<u8>(SrcW), FpSz, a64::ar(D), a64::ar(S));
      }
      Res.setModified();
      return true;
    }
    case tir::Op::Bitcast: {
      bool SrcFp = tir::isFloatType(SrcTy), DstFp = tir::isFloatType(V.Ty);
      VPR Src = this->valRef(SV, 0);
      core::Reg S = Src.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      if (SrcFp == DstFp) {
        if (SrcFp)
          E.fpMovRR(8, a64::ar(D), a64::ar(S));
        else
          E.movRR(8, a64::ar(D), a64::ar(S));
      } else if (DstFp) {
        E.fmovToFp(static_cast<u8>(DstW), a64::ar(D), a64::ar(S));
      } else {
        E.fmovFromFp(static_cast<u8>(DstW), a64::ar(D), a64::ar(S));
      }
      Res.setModified();
      return true;
    }
    default:
      return false;
    }
  }

  void emitZext(u32 SrcW, a64::AsmReg D, a64::AsmReg S) {
    switch (SrcW) {
    case 1:
      E.uxtb(D, S);
      return;
    case 2:
      E.uxth(D, S);
      return;
    case 4:
      E.uxtw(D, S); // 32-bit move zero-extends
      return;
    default:
      E.movRR(8, D, S);
      return;
    }
  }

  // --- Select ----------------------------------------------------------------

  bool compileSelect(tir::ValRef I, const tir::Value &V) {
    tir::ValRef CV = fn().operand(V, 0), TV = fn().operand(V, 1),
                FV = fn().operand(V, 2);
    // Sources first; everything between the TST and the CSEL only emits
    // flag-preserving loads/stores/moves.
    VPR TRef = this->valRef(TV, 0), FRef = this->valRef(FV, 0);
    core::Reg TR = TRef.asReg(), FR = FRef.asReg();
    VPR T1, F1;
    core::Reg TR1, FR1;
    bool Wide = V.Ty == tir::Type::I128;
    if (Wide) {
      T1 = this->valRef(TV, 1);
      F1 = this->valRef(FV, 1);
      TR1 = T1.asReg();
      FR1 = F1.asReg();
    }
    {
      VPR Cond = this->valRef(CV, 0);
      E.tstRI(4, a64::ar(Cond.asReg()), 1);
    }
    if (tir::isFloatType(V.Ty)) {
      u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      E.fpCsel(Sz, a64::ar(D), a64::ar(TR), a64::ar(FR), a64::Cond::NE);
      Res.setModified();
      return true;
    }
    u8 Sz = Wide ? 8 : opSz(tir::typeSize(V.Ty));
    VPR Res0 = this->resultRef(I, 0);
    core::Reg D0 = Res0.allocReg();
    E.csel(Sz, a64::ar(D0), a64::ar(TR), a64::ar(FR), a64::Cond::NE);
    Res0.setModified();
    if (Wide) {
      VPR Res1 = this->resultRef(I, 1);
      core::Reg D1 = Res1.allocReg();
      E.csel(8, a64::ar(D1), a64::ar(TR1), a64::ar(FR1), a64::Cond::NE);
      Res1.setModified();
    }
    return true;
  }

  // --- Memory ----------------------------------------------------------------

  /// Builds the memory operand for a pointer value, folding fused PtrAdd
  /// instructions and stack variables. The returned refs keep source
  /// registers locked until the access is emitted.
  struct Addr {
    a64::Mem M;
    VPR BaseRef, IndexRef;
  };

  /// \p AccSizeLog2 is log2 of the access size — the only shift amount
  /// the register-offset addressing form supports besides 0.
  Addr computeAddr(tir::ValRef Ptr, u8 AccSizeLog2) {
    Addr Out;
    const tir::Value &PV = this->A.val(Ptr);
    if (Fused[Ptr]) {
      // Fused PtrAdd: base + disp, or base + (index << log2(size)) (§4.2).
      tir::ValRef BaseV = fn().operand(PV, 0);
      i64 Disp = static_cast<i64>(PV.Aux2);
      const tir::Value &BV = this->A.val(BaseV);
      if (PV.NumOps > 1) {
        // tryFusePtrAdd guaranteed: scale is 1 or the access size, no
        // displacement, base is not a stack variable.
        Out.BaseRef = this->valRef(BaseV, 0);
        Out.IndexRef = this->valRef(fn().operand(PV, 1), 0);
        u8 Shift = PV.Aux == 1 ? 0 : AccSizeLog2;
        Out.M = a64::Mem(a64::ar(Out.BaseRef.asReg()),
                         a64::ar(Out.IndexRef.asReg()), Shift);
        return Out;
      }
      if (BV.Kind == tir::ValKind::StackVar) {
        Out.M = a64::Mem(a64::FP,
                         this->stackVarOff(this->A.stackVarIdx(BaseV)) + Disp);
        return Out;
      }
      Out.BaseRef = this->valRef(BaseV, 0);
      Out.M = a64::Mem(a64::ar(Out.BaseRef.asReg()), Disp);
      return Out;
    }
    if (PV.Kind == tir::ValKind::StackVar) {
      Out.M = a64::Mem(a64::FP, this->stackVarOff(this->A.stackVarIdx(Ptr)));
      return Out;
    }
    Out.BaseRef = this->valRef(Ptr, 0);
    Out.M = a64::Mem(a64::ar(Out.BaseRef.asReg()), 0);
    return Out;
  }

  /// Access size (bytes) of the load/store \p NV for addressing purposes;
  /// 0 if the instruction's access cannot take an index operand (i128 is
  /// split into two displaced accesses).
  u32 memAccessSize(const tir::Value &NV) {
    tir::Type Ty =
        NV.Opcode == tir::Op::Load ? NV.Ty : this->A.val(fn().operand(NV, 0)).Ty;
    if (Ty == tir::Type::I128)
      return 0;
    return tir::typeSize(Ty);
  }

  /// Marks a PtrAdd as fused if its single use is the immediately
  /// following load/store in the same block and the computation fits an
  /// A64 addressing mode (base+disp, or base+index scaled by the access
  /// size with zero displacement).
  bool tryFusePtrAdd(tir::ValRef I, const tir::Value &V) {
    if (DisableFusion || this->analyzer().liveness(I).RefCount != 1)
      return false;
    tir::ValRef Nxt = this->A.nextInst(I);
    if (Nxt == tir::InvalidRef)
      return false;
    const tir::Value &NV = this->A.val(Nxt);
    bool IsLoad = NV.Opcode == tir::Op::Load && fn().operand(NV, 0) == I;
    bool IsStore = NV.Opcode == tir::Op::Store && fn().operand(NV, 1) == I &&
                   fn().operand(NV, 0) != I;
    if (!IsLoad && !IsStore)
      return false;
    if (V.NumOps > 1) {
      // Register-offset form: scale must be 1 or the access size, and the
      // form has no displacement field.
      u32 Acc = memAccessSize(NV);
      if (Acc == 0 || (V.Aux != 1 && V.Aux != Acc) || V.Aux2 != 0)
        return false;
      // A stack-variable base would need FP+off materialized first.
      if (this->A.val(fn().operand(V, 0)).Kind == tir::ValKind::StackVar)
        return false;
    }
    Fused[I] = 1;
    return true;
  }

  bool compilePtrAdd(tir::ValRef I, const tir::Value &V) {
    if (tryFusePtrAdd(I, V))
      return true;
    tir::ValRef BaseV = fn().operand(V, 0);
    i64 Disp = static_cast<i64>(V.Aux2);
    if (V.NumOps == 1) {
      VPR Base = this->valRef(BaseV, 0);
      core::Reg B = Base.asReg();
      VPR Res = this->resultRef(I, 0);
      core::Reg D = Res.allocReg();
      E.leaMem(a64::ar(D), a64::ar(B), Disp);
      Res.setModified();
      return true;
    }
    tir::ValRef IdxV = fn().operand(V, 1);
    u64 Scale = V.Aux;
    VPR Base = this->valRef(BaseV, 0), Idx = this->valRef(IdxV, 0);
    core::Reg B = Base.asReg(), X = Idx.asReg();
    VPR Res = this->resultRef(I, 0);
    core::Reg D = Res.allocReg();
    if (Scale && (Scale & (Scale - 1)) == 0 && Scale <= (u64(1) << 63)) {
      // Power-of-two scale: one shifted-register ADD.
      u8 Shift = static_cast<u8>(countTrailingZeros(Scale));
      E.addRRR(8, a64::ar(D), a64::ar(B), a64::ar(X), /*SetFlags=*/false,
               Shift);
    } else {
      // General scale: one MADD through the compiler scratch register.
      E.movRI(a64::X17, Scale);
      E.maddRRRR(8, a64::ar(D), a64::ar(X), a64::X17, a64::ar(B));
    }
    if (Disp)
      E.leaMem(a64::ar(D), a64::ar(D), Disp);
    Res.setModified();
    return true;
  }

  bool compileLoad(tir::ValRef I, const tir::Value &V) {
    if (tir::isFloatType(V.Ty)) {
      u8 Sz = V.Ty == tir::Type::F32 ? 4 : 8;
      Addr A = computeAddr(fn().operand(V, 0), Sz == 4 ? 2 : 3);
      VPR Res = this->resultRef(I, 0);
      E.ldr(Sz, a64::ar(Res.allocReg()), A.M);
      Res.setModified();
      return true;
    }
    if (V.Ty == tir::Type::I128) {
      Addr A = computeAddr(fn().operand(V, 0), 3);
      VPR Res0 = this->resultRef(I, 0);
      E.ldr(8, a64::ar(Res0.allocReg()), A.M);
      Res0.setModified();
      a64::Mem Hi = A.M;
      Hi.Disp += 8;
      VPR Res1 = this->resultRef(I, 1);
      E.ldr(8, a64::ar(Res1.allocReg()), Hi);
      Res1.setModified();
      return true;
    }
    u32 W = tir::typeSize(V.Ty);
    u8 SzLog2 = W == 8 ? 3 : W == 4 ? 2 : W == 2 ? 1 : 0;
    Addr A = computeAddr(fn().operand(V, 0), SzLog2);
    VPR Res = this->resultRef(I, 0);
    E.ldr(static_cast<u8>(W), a64::ar(Res.allocReg()), A.M); // zero-extends
    Res.setModified();
    return true;
  }

  bool compileStore(tir::ValRef I, const tir::Value &V) {
    tir::ValRef SV = fn().operand(V, 0);
    tir::Type Ty = this->A.val(SV).Ty;
    if (tir::isFloatType(Ty)) {
      u8 Sz = Ty == tir::Type::F32 ? 4 : 8;
      Addr A = computeAddr(fn().operand(V, 1), Sz == 4 ? 2 : 3);
      VPR Src = this->valRef(SV, 0);
      E.str(Sz, A.M, a64::ar(Src.asReg()));
      return true;
    }
    if (Ty == tir::Type::I128) {
      Addr A = computeAddr(fn().operand(V, 1), 3);
      VPR S0 = this->valRef(SV, 0);
      E.str(8, A.M, a64::ar(S0.asReg()));
      S0.reset();
      a64::Mem Hi = A.M;
      Hi.Disp += 8;
      VPR S1 = this->valRef(SV, 1);
      E.str(8, Hi, a64::ar(S1.asReg()));
      return true;
    }
    u32 W = tir::typeSize(Ty);
    u8 SzLog2 = W == 8 ? 3 : W == 4 ? 2 : W == 2 ? 1 : 0;
    Addr A = computeAddr(fn().operand(V, 1), SzLog2);
    VPR Src = this->valRef(SV, 0);
    E.str(static_cast<u8>(W), A.M, a64::ar(Src.asReg()));
    return true;
  }

  // --- Control flow ----------------------------------------------------------

  bool compileCondBr(tir::ValRef I, const tir::Value &V) {
    const tir::Block &B = fn().Blocks[V.Block];
    tir::BlockRef TrueB = B.Succs[0], FalseB = B.Succs[1];
    tir::ValRef CV = fn().operand(V, 0);
    if (CV < Fused.size() && Fused[CV]) {
      a64::Cond CC = emitICmpFlags(this->A.val(CV));
      this->generateCondBranch(TrueB, FalseB,
                               [&](asmx::Label L, bool Inv) {
                                 E.bcondLabel(Inv ? invert(CC) : CC, L);
                               });
      return true;
    }
    {
      VPR Cond = this->valRef(CV, 0);
      E.tstRI(4, a64::ar(Cond.asReg()), 1);
    }
    this->generateCondBranch(TrueB, FalseB, [&](asmx::Label L, bool Inv) {
      E.bcondLabel(Inv ? a64::Cond::EQ : a64::Cond::NE, L);
    });
    return true;
  }

  // --- Constant pool ---------------------------------------------------------

  asmx::SymRef fpConstSym(u64 Bits, u8 Size) {
    return fpPoolConstSym(this->Asm, FpPool, Bits, Size);
  }

  TirGlobalSyms GlobalSyms;
  support::DenseMap<u64, asmx::SymRef> FpPool;
  std::vector<u8> Fused;
};

} // namespace tpde::tpde_tir

#include "tir/Verifier.h"

/// Convenience entry point: compiles \p M into \p Asm with TPDE/AArch64.
/// With \p Verify the module is validated first (tir::verifyModule) so
/// malformed IR never reaches the emitter; \p StatusOut (optional)
/// receives the structured diagnostic on failure.
namespace tpde::tpde_tir {
inline bool compileModuleA64(tir::Module &M, asmx::Assembler &Asm,
                             bool Verify = false,
                             support::CompileStatus *StatusOut = nullptr) {
  if (StatusOut)
    StatusOut->clear();
  if (Verify) {
    std::string Errors;
    if (!tir::verifyModule(M, Errors)) {
      if (StatusOut) {
        StatusOut->Err = support::CompileErr::VerifyFailed;
        StatusOut->Message = std::move(Errors);
      }
      return false;
    }
  }
  TirAdapter Adapter(M);
  TirCompilerA64 Compiler(Adapter, Asm);
  bool OK = false;
  try {
    OK = Compiler.compile();
  } catch (...) { // arena growth (interned names) can throw bad_alloc
    if (StatusOut) {
      StatusOut->Err = support::CompileErr::OutOfMemory;
      StatusOut->Message = "allocation failed during module compile";
    }
    return false;
  }
  if (!OK && StatusOut)
    *StatusOut = Compiler.status();
  return OK;
}
} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_TIRCOMPILERA64_H
