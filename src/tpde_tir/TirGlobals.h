//===- tpde_tir/TirGlobals.h - Shared TIR global emission -------*- C++ -*-===//
///
/// \file
/// Module-level global handling shared by the TIR instruction compilers of
/// every target (x64, a64): symbol registration, data/BSS emission, and
/// the declaration-only variant used by the parallel driver's shard
/// compiles. The logic is entirely target-independent — it only touches
/// the assembler's sections and symbol table — so keeping it in one place
/// guarantees the symbol-table layout (and thus the symbol-batching reuse
/// watermark) is identical across targets and across the define/declare
/// entry points.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_TIRGLOBALS_H
#define TPDE_TPDE_TIR_TIRGLOBALS_H

#include "asmx/Assembler.h"
#include "support/DenseMap.h"
#include "tir/TIR.h"

#include <vector>

namespace tpde::tpde_tir {

/// Ablation switch (bench/ablation_fusion): disables compare-branch
/// fusion, address-mode folding, and (on x64) memory operands for spilled
/// values, for every TIR target back-end.
inline bool DisableFusion = false;

inline asmx::Linkage tirGlobalLinkage(const tir::Global &G) {
  return G.Link == tir::Linkage::Internal
             ? asmx::Linkage::Internal
             : (G.Link == tir::Linkage::Weak ? asmx::Linkage::Weak
                                             : asmx::Linkage::External);
}

/// Epoch-guarded global-symbol cache shared by the TIR targets — the
/// global-index twin of CompilerBase::funcSym(), built on the same
/// asmx::EpochSymCache (one place owns the invalidation contract). The
/// dense module entry points register every global up front (the
/// defineTirGlobals loop), while the sparse shard path
/// (compileFunctionRange) sizes the cache only (prepare) and
/// materializes a global's symbol at its first reference (sym) — so a
/// shard that touches K globals pays O(K) symbol records, never
/// O(module). The epoch is CompilerBase::moduleSymEpoch(): one bump
/// invalidates every slot without a per-global clear, and the
/// symbol-batching reuse path (which keeps the epoch) keeps the cache.
class TirGlobalSyms {
public:
  /// Sizes the cache for sparse on-demand use; registers nothing.
  /// Steady-state no-op once the module's global count is stable.
  void prepare(const tir::Module &M) { Cache.resize(M.Globals.size()); }

  /// The symbol of global \p GI, materialized on demand (single
  /// interned-name probe via Assembler::createSymbol on a stale slot; a
  /// plain cached read otherwise).
  asmx::SymRef sym(asmx::Assembler &Asm, const tir::Module &M, u32 GI,
                   u64 Epoch) {
    return Cache.sym(GI, Epoch, [&] {
      const tir::Global &G = M.Globals[GI];
      return Asm.createSymbol(G.Name, tirGlobalLinkage(G), /*IsFunc=*/false);
    });
  }

private:
  asmx::EpochSymCache Cache;
};

/// Registers and defines every module global: data/rodata bytes, BSS
/// ranges, symbol definitions (the dense defineGlobals() hook). On the
/// symbol-batching fast path (CompilerBase keeps moduleSymEpoch()
/// unchanged) every cache slot still matches \p Epoch, so the
/// registrations are skipped and only data emission and the definitions
/// are redone — exactly the previous compile's symbol-table layout.
inline void defineTirGlobals(asmx::Assembler &Asm, tir::Module &M,
                             TirGlobalSyms &GlobalSyms, u64 Epoch) {
  GlobalSyms.prepare(M);
  for (u32 GI = 0; GI < M.Globals.size(); ++GI) {
    const tir::Global &G = M.Globals[GI];
    asmx::SymRef S = GlobalSyms.sym(Asm, M, GI, Epoch);
    if (!G.Defined)
      continue;
    if (G.Init.empty() && !G.ReadOnly) {
      asmx::Section &BSS = Asm.section(asmx::SecKind::BSS);
      u64 Al = G.Align < 1 ? 1 : G.Align;
      BSS.BssSize = alignTo(BSS.BssSize, Al);
      // Keep the section alignment >= every member's alignment, like
      // alignToBoundary() does for data sections: ELF sh_addralign and
      // the mergeFrom() rebase both rely on it.
      if (Al > BSS.Align)
        BSS.Align = Al;
      Asm.defineSymbol(S, asmx::SecKind::BSS, BSS.BssSize, G.Size);
      BSS.BssSize += G.Size;
      continue;
    }
    asmx::SecKind K =
        G.ReadOnly ? asmx::SecKind::ROData : asmx::SecKind::Data;
    asmx::Section &Sec = Asm.section(K);
    Sec.alignToBoundary(G.Align < 1 ? 1 : G.Align);
    u64 Off = Sec.size();
    Sec.append(G.Init.data(), G.Init.size());
    if (G.Init.size() < G.Size)
      Sec.appendZeros(G.Size - G.Init.size());
    Asm.defineSymbol(S, K, Off, G.Size);
  }
}

/// Returns (creating on first use) the anonymous .rodata symbol holding
/// the FP constant \p Bits of \p Size bytes (4 or 8), deduplicated per
/// module compile through \p Pool. Shared by all targets so the pool
/// layout — entry order, alignment, anonymity — is identical everywhere;
/// Assembler::mergeFrom() additionally content-deduplicates these entries
/// across shard fragments.
inline asmx::SymRef fpPoolConstSym(asmx::Assembler &Asm,
                                   support::DenseMap<u64, asmx::SymRef> &Pool,
                                   u64 Bits, u8 Size) {
  u64 Key = Bits ^ (static_cast<u64>(Size) << 56);
  if (asmx::SymRef *Known = Pool.find(Key))
    return *Known;
  asmx::Section &RO = Asm.section(asmx::SecKind::ROData);
  RO.alignToBoundary(Size);
  u64 Off = RO.size();
  for (u8 B = 0; B < Size; ++B)
    RO.appendByte(static_cast<u8>(Bits >> (8 * B)));
  asmx::SymRef S =
      Asm.createSymbol("", asmx::Linkage::Internal, /*IsFunc=*/false);
  Asm.defineSymbol(S, asmx::SecKind::ROData, Off, Size);
  Pool.insert(Key, S);
  return S;
}

} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_TIRGLOBALS_H
