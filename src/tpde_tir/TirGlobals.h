//===- tpde_tir/TirGlobals.h - Shared TIR global emission -------*- C++ -*-===//
///
/// \file
/// Module-level global handling shared by the TIR instruction compilers of
/// every target (x64, a64): symbol registration, data/BSS emission, and
/// the declaration-only variant used by the parallel driver's shard
/// compiles. The logic is entirely target-independent — it only touches
/// the assembler's sections and symbol table — so keeping it in one place
/// guarantees the symbol-table layout (and thus the symbol-batching reuse
/// watermark) is identical across targets and across the define/declare
/// entry points.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_TPDE_TIR_TIRGLOBALS_H
#define TPDE_TPDE_TIR_TIRGLOBALS_H

#include "asmx/Assembler.h"
#include "support/DenseMap.h"
#include "tir/TIR.h"

#include <vector>

namespace tpde::tpde_tir {

/// Ablation switch (bench/ablation_fusion): disables compare-branch
/// fusion, address-mode folding, and (on x64) memory operands for spilled
/// values, for every TIR target back-end.
inline bool DisableFusion = false;

inline asmx::Linkage tirGlobalLinkage(const tir::Global &G) {
  return G.Link == tir::Linkage::Internal
             ? asmx::Linkage::Internal
             : (G.Link == tir::Linkage::Weak ? asmx::Linkage::Weak
                                             : asmx::Linkage::External);
}

/// Registers and defines every module global: data/rodata bytes, BSS
/// ranges, symbol definitions. \p Reuse is the symbol-batching fast path
/// (CompilerBase::reusingModuleSymbols()): registrations and \p GlobalSyms
/// from the previous compile are still valid, only data emission and the
/// definitions are redone.
inline void defineTirGlobals(asmx::Assembler &Asm, tir::Module &M,
                             std::vector<asmx::SymRef> &GlobalSyms,
                             bool Reuse) {
  if (!Reuse)
    GlobalSyms.clear();
  for (u32 GI = 0; GI < M.Globals.size(); ++GI) {
    const tir::Global &G = M.Globals[GI];
    asmx::SymRef S;
    if (Reuse) {
      S = GlobalSyms[GI];
    } else {
      S = Asm.createSymbol(G.Name, tirGlobalLinkage(G), /*IsFunc=*/false);
      GlobalSyms.push_back(S);
    }
    if (!G.Defined)
      continue;
    if (G.Init.empty() && !G.ReadOnly) {
      asmx::Section &BSS = Asm.section(asmx::SecKind::BSS);
      u64 Al = G.Align < 1 ? 1 : G.Align;
      BSS.BssSize = alignTo(BSS.BssSize, Al);
      // Keep the section alignment >= every member's alignment, like
      // alignToBoundary() does for data sections: ELF sh_addralign and
      // the mergeFrom() rebase both rely on it.
      if (Al > BSS.Align)
        BSS.Align = Al;
      Asm.defineSymbol(S, asmx::SecKind::BSS, BSS.BssSize, G.Size);
      BSS.BssSize += G.Size;
      continue;
    }
    asmx::SecKind K =
        G.ReadOnly ? asmx::SecKind::ROData : asmx::SecKind::Data;
    asmx::Section &Sec = Asm.section(K);
    Sec.alignToBoundary(G.Align < 1 ? 1 : G.Align);
    u64 Off = Sec.size();
    Sec.append(G.Init.data(), G.Init.size());
    if (G.Init.size() < G.Size)
      Sec.appendZeros(G.Size - G.Init.size());
    Asm.defineSymbol(S, K, Off, G.Size);
  }
}

/// Range-compile variant of defineTirGlobals(): registers the same symbols
/// (so the symbol-table layout — and thus the reuse watermark — matches
/// the define path exactly) but emits no data and defines nothing. The
/// parallel driver merges the actual data from the compileGlobals()
/// fragment; references from shards bind by name during the merge.
inline void declareTirGlobals(asmx::Assembler &Asm, const tir::Module &M,
                              std::vector<asmx::SymRef> &GlobalSyms,
                              bool Reuse) {
  if (Reuse)
    return;
  GlobalSyms.clear();
  for (const tir::Global &G : M.Globals)
    GlobalSyms.push_back(
        Asm.createSymbol(G.Name, tirGlobalLinkage(G), /*IsFunc=*/false));
}

/// Returns (creating on first use) the anonymous .rodata symbol holding
/// the FP constant \p Bits of \p Size bytes (4 or 8), deduplicated per
/// module compile through \p Pool. Shared by all targets so the pool
/// layout — entry order, alignment, anonymity — is identical everywhere;
/// Assembler::mergeFrom() additionally content-deduplicates these entries
/// across shard fragments.
inline asmx::SymRef fpPoolConstSym(asmx::Assembler &Asm,
                                   support::DenseMap<u64, asmx::SymRef> &Pool,
                                   u64 Bits, u8 Size) {
  u64 Key = Bits ^ (static_cast<u64>(Size) << 56);
  if (asmx::SymRef *Known = Pool.find(Key))
    return *Known;
  asmx::Section &RO = Asm.section(asmx::SecKind::ROData);
  RO.alignToBoundary(Size);
  u64 Off = RO.size();
  for (u8 B = 0; B < Size; ++B)
    RO.appendByte(static_cast<u8>(Bits >> (8 * B)));
  asmx::SymRef S =
      Asm.createSymbol("", asmx::Linkage::Internal, /*IsFunc=*/false);
  Asm.defineSymbol(S, asmx::SecKind::ROData, Off, Size);
  Pool.insert(Key, S);
  return S;
}

} // namespace tpde::tpde_tir

#endif // TPDE_TPDE_TIR_TIRGLOBALS_H
