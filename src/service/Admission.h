//===- service/Admission.h - Tenant-fair admission control ------*- C++ -*-===//
///
/// \file
/// The compile service's overload-control layer: a bounded, multi-tenant
/// admission queue that replaces the raw BoundedMpmcQueue
/// (support/MpmcQueue.h) in front of the service workers. Three policies
/// live here, all deterministic and all enforced under one mutex (the
/// admission path is once-per-job, never the compile hot loop —
/// docs/PERF.md's zero-allocation policy does not govern it):
///
///  * **Token-bucket quotas per tenant.** Each tenant owns a bucket of
///    BurstTokens capacity refilled at TokensPerSec; a submit costs one
///    token. An exhausted bucket rejects with Admit::QuotaExceeded
///    *immediately* (quota is never waited out — back-pressure must not
///    disguise a quota violation). TokensPerSec = 0 with BurstTokens = 0
///    leaves a tenant unmetered. Refill is driven by the caller-supplied
///    NowNs, so tests control time exactly.
///
///  * **Weighted-fair dequeue.** Jobs queue per tenant and are tagged at
///    *enqueue* with start-time-fair-queuing virtual times: start
///    S = max(VClock, tenant's last finish tag), finish F = S +
///    SCALE/Weight. pop() serves the tenant whose head job has the
///    smallest F (ties to the lowest tenant id) and advances VClock to
///    that job's S, so a tenant flooding the queue gets at most its
///    weight share of worker dequeues while backlogged and can never
///    starve the others — and an idle tenant accumulates no credit
///    (its next tag starts at VClock, not in the past). Per-tenant
///    order stays FIFO. The optional MaxQueued per-tenant backstop
///    additionally caps how much of the shared ring one tenant may
///    occupy.
///
///  * **A retry lane.** pushRetry(item, DueNs) re-admits a job the
///    service decided to recompile after a transient failure
///    (docs/SERVICE.md "Overload control"); retries bypass quota and
///    capacity (the job was already admitted once and still holds its
///    single-flight claim) and are held until due — pop() sleeps until
///    the earliest due time when only undue retries remain. After
///    close() the due time is ignored so shutdown drains retries
///    immediately instead of stalling the drain.
///
/// Admission is bounded in *time* as well as space: tryPush() never
/// blocks, and pushWait() waits for ring space at most MaxWaitNs before
/// giving up with Admit::Overloaded — the block-forever producer path of
/// the raw MPMC queue does not exist here.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SERVICE_ADMISSION_H
#define TPDE_SERVICE_ADMISSION_H

#include "support/Common.h"
#include "support/Sync.h"
#include "support/Timer.h"

#include <deque>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tpde::service {

/// Tenant identity carried by every submit. Tenant 0 is the default
/// tenant (anonymous/embedded callers).
using TenantId = u32;

/// Per-tenant admission policy. The default is maximally permissive:
/// unmetered, weight 1, no per-tenant queue cap.
struct TenantConfig {
  /// Token-bucket refill rate. 0 together with BurstTokens = 0 means
  /// unmetered.
  double TokensPerSec = 0.0;
  /// Bucket capacity (burst allowance). When only TokensPerSec is set,
  /// the burst defaults to one second's worth of tokens.
  double BurstTokens = 0.0;
  /// Weighted-fair share relative to other tenants (>= 1).
  u32 Weight = 1;
  /// Max jobs this tenant may hold queued at once; 0 = bounded only by
  /// the shared capacity.
  size_t MaxQueued = 0;

  bool metered() const { return TokensPerSec > 0.0 || BurstTokens > 0.0; }
  double burst() const {
    return BurstTokens > 0.0 ? BurstTokens : TokensPerSec;
  }
};

/// Admission verdicts. Everything except Ok maps to a structured
/// CompileErr at the service layer (Overloaded / ServiceShutdown).
enum class Admit : u8 {
  Ok,            ///< Enqueued.
  Overloaded,    ///< Ring full (past the bounded wait) or per-tenant cap hit.
  QuotaExceeded, ///< Tenant token bucket empty — never waited out.
  Closed,        ///< Queue closed; the service is shutting down.
};

/// Bounded multi-tenant admission queue; see the file comment for the
/// policies. T must be movable. All operations are thread-safe.
template <typename T> class AdmissionQueue {
public:
  explicit AdmissionQueue(size_t Capacity, TenantConfig DefaultCfg = {})
      : Cap(Capacity ? Capacity : 1), Default(DefaultCfg) {}

  AdmissionQueue(const AdmissionQueue &) = delete;
  AdmissionQueue &operator=(const AdmissionQueue &) = delete;

  size_t capacity() const { return Cap; }

  /// Installs a per-tenant policy (overriding the constructor default
  /// for that tenant). Safe to call while producers run; an existing
  /// bucket is re-capped to the new burst.
  void setTenantConfig(TenantId Tid, const TenantConfig &Cfg)
      TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    TenantState &Tn = tenantLocked(Tid);
    Tn.Cfg = Cfg;
    if (Tn.Tokens > Cfg.burst())
      Tn.Tokens = Cfg.burst();
  }

  /// Non-blocking admission of \p Item for \p Tid. \p NowNs drives the
  /// token-bucket refill. On any non-Ok verdict the item is dropped.
  Admit tryPush(T Item, TenantId Tid, u64 NowNs) TPDE_EXCLUDES(Mtx) {
    Admit A;
    {
      LockGuard L(Mtx);
      bool RingFull = false;
      A = admitLocked(std::move(Item), Tid, NowNs, RingFull);
    }
    if (A == Admit::Ok)
      NotEmpty.notify_one();
    return A;
  }

  /// Bounded-wait admission: like tryPush, but waits up to \p MaxWaitNs
  /// for ring space when the queue is full. Quota exhaustion and the
  /// per-tenant cap still reject immediately — only the shared ring is
  /// worth waiting on. Returns Overloaded when the wait expires.
  Admit pushWait(T Item, TenantId Tid, u64 NowNs, u64 MaxWaitNs)
      TPDE_EXCLUDES(Mtx) {
    Admit A;
    {
      LockGuard L(Mtx);
      bool RingFull = false;
      A = admitLocked(std::move(Item), Tid, NowNs, RingFull);
      // Wait only while the *shared ring* is the obstacle. A per-tenant
      // MaxQueued rejection also reports Overloaded but must bounce
      // immediately: the tenant's own backlog clears only through its
      // weighted-fair share, so waiting here would let one tenant park
      // producers on a limit that exists to contain exactly that tenant.
      while (A == Admit::Overloaded && RingFull && MaxWaitNs > 0) {
        const u64 GiveUpNs = NowNs + MaxWaitNs;
        u64 Now = tpde::nowNs();
        if (Now >= GiveUpNs)
          break;
        NotFull.waitFor(Mtx, GiveUpNs - Now);
        RingFull = false;
        A = admitLocked(std::move(Item), Tid, tpde::nowNs(), RingFull);
      }
    }
    if (A == Admit::Ok)
      NotEmpty.notify_one();
    return A;
  }

  /// Re-admits an already-claimed job on the retry lane, held until
  /// \p DueNs. Bypasses quota and capacity; never fails (post-close
  /// retries are accepted and drained immediately — the pushing worker
  /// is still popping, so nothing is stranded).
  void pushRetry(T Item, u64 DueNs) TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      Retries.push_back({std::move(Item), DueNs});
    }
    NotEmpty.notify_all();
  }

  /// Blocks until an item is available (a due retry or any queued job)
  /// or the queue is closed *and* fully drained; returns false only on
  /// closed-and-drained. Due retries win over queued jobs (they are the
  /// oldest admitted work); queued jobs are picked weighted-fair.
  bool pop(T &Out) TPDE_EXCLUDES(Mtx) {
    bool Got = false;
    {
      LockGuard L(Mtx);
      for (;;) {
        if (popLocked(Out, tpde::nowNs())) {
          Got = true;
          break;
        }
        if (Closed && Count == 0 && Retries.empty())
          break;
        if (!Retries.empty() && Count == 0 && !Closed) {
          // Only undue retries remain: sleep until the earliest due time
          // (or a new arrival / close wakes us).
          u64 Due = earliestDueLocked();
          u64 Now = tpde::nowNs();
          if (Due > Now)
            NotEmpty.waitFor(Mtx, Due - Now);
        } else {
          NotEmpty.wait(Mtx);
        }
      }
    }
    if (Got)
      NotFull.notify_one();
    return Got;
  }

  /// Non-blocking pop (batch fill). Returns false when nothing is
  /// currently poppable — even if undue retries are pending.
  bool tryPop(T &Out) TPDE_EXCLUDES(Mtx) {
    bool Got;
    {
      LockGuard L(Mtx);
      Got = popLocked(Out, tpde::nowNs());
    }
    if (Got)
      NotFull.notify_one();
    return Got;
  }

  /// Rejects future admission and wakes all waiters. Queued jobs and
  /// retries remain poppable until drained (retries regardless of due
  /// time). Idempotent.
  void close() TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Closed;
  }

  /// Queued jobs (excluding pending retries).
  size_t size() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Count;
  }

  size_t retryCount() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Retries.size();
  }

private:
  /// Virtual-time scale: one dequeue at weight 1 advances a tenant's
  /// finish time by SCALE, at weight W by SCALE/W.
  static constexpr u64 VtScale = u64{1} << 16;

  /// A queued job with its fair-queuing tags, assigned at enqueue.
  struct Tagged {
    T Item;
    u64 S = 0; ///< Virtual start time.
    u64 F = 0; ///< Virtual finish time (dequeue order key).
  };

  struct TenantState {
    TenantConfig Cfg;
    std::deque<Tagged> Q;
    double Tokens = 0.0;
    u64 LastRefillNs = 0;
    bool BucketInit = false;
    u64 LastF = 0; ///< Finish tag of this tenant's last-enqueued job.
  };

  struct Retry {
    T Item;
    u64 DueNs;
  };

  TenantState &tenantLocked(TenantId Tid) TPDE_REQUIRES(Mtx) {
    auto [It, Inserted] = Tenants.try_emplace(Tid);
    if (Inserted)
      It->second.Cfg = Default;
    return It->second;
  }

  /// \p RingFull is set (only) when the verdict is Overloaded because the
  /// shared ring is at capacity — the one cause a bounded wait can cure.
  Admit admitLocked(T &&Item, TenantId Tid, u64 NowNs, bool &RingFull)
      TPDE_REQUIRES(Mtx) {
    if (Closed)
      return Admit::Closed;
    TenantState &Tn = tenantLocked(Tid);
    if (Tn.Cfg.metered()) {
      if (!Tn.BucketInit) {
        Tn.Tokens = Tn.Cfg.burst();
        Tn.LastRefillNs = NowNs;
        Tn.BucketInit = true;
      } else if (NowNs > Tn.LastRefillNs) {
        Tn.Tokens += static_cast<double>(NowNs - Tn.LastRefillNs) * 1e-9 *
                     Tn.Cfg.TokensPerSec;
        if (Tn.Tokens > Tn.Cfg.burst())
          Tn.Tokens = Tn.Cfg.burst();
        Tn.LastRefillNs = NowNs;
      }
      if (Tn.Tokens < 1.0)
        return Admit::QuotaExceeded;
    }
    if (Tn.Cfg.MaxQueued && Tn.Q.size() >= Tn.Cfg.MaxQueued)
      return Admit::Overloaded;
    if (Count >= Cap) {
      RingFull = true;
      return Admit::Overloaded;
    }
    if (Tn.Cfg.metered())
      Tn.Tokens -= 1.0;
    Tagged Tg;
    Tg.Item = std::move(Item);
    Tg.S = Tn.LastF > VClock ? Tn.LastF : VClock;
    u32 W = Tn.Cfg.Weight ? Tn.Cfg.Weight : 1;
    Tg.F = Tg.S + VtScale / W;
    Tn.LastF = Tg.F;
    Tn.Q.push_back(std::move(Tg));
    ++Count;
    return Admit::Ok;
  }

  u64 earliestDueLocked() const TPDE_REQUIRES(Mtx) {
    u64 Due = std::numeric_limits<u64>::max();
    for (const Retry &R : Retries)
      if (R.DueNs < Due)
        Due = R.DueNs;
    return Due;
  }

  bool popLocked(T &Out, u64 NowNs) TPDE_REQUIRES(Mtx) {
    // Due retries first (oldest admitted work; after close, everything
    // on the lane counts as due so the drain never stalls).
    for (size_t I = 0; I < Retries.size(); ++I) {
      if (Closed || Retries[I].DueNs <= NowNs) {
        Out = std::move(Retries[I].Item);
        Retries.erase(Retries.begin() + static_cast<ptrdiff_t>(I));
        return true;
      }
    }
    if (Count == 0)
      return false;
    // Start-time fair queuing: serve the smallest head finish tag.
    TenantState *Pick = nullptr;
    TenantId PickId = 0;
    for (auto &[Tid, Tn] : Tenants) {
      if (Tn.Q.empty())
        continue;
      u64 F = Tn.Q.front().F;
      if (!Pick || F < Pick->Q.front().F ||
          (F == Pick->Q.front().F && Tid < PickId)) {
        Pick = &Tn;
        PickId = Tid;
      }
    }
    Tagged &Head = Pick->Q.front();
    if (Head.S > VClock)
      VClock = Head.S;
    Out = std::move(Head.Item);
    Pick->Q.pop_front();
    --Count;
    return true;
  }

  const size_t Cap;
  const TenantConfig Default;
  mutable Mutex Mtx;
  CondVar NotEmpty;
  CondVar NotFull;
  std::unordered_map<TenantId, TenantState> Tenants TPDE_GUARDED_BY(Mtx);
  std::vector<Retry> Retries TPDE_GUARDED_BY(Mtx);
  /// Queued jobs across tenants (retries excluded).
  size_t Count TPDE_GUARDED_BY(Mtx) = 0;
  /// Global virtual time (start time of last dequeue).
  u64 VClock TPDE_GUARDED_BY(Mtx) = 0;
  bool Closed TPDE_GUARDED_BY(Mtx) = false;
};

} // namespace tpde::service

#endif // TPDE_SERVICE_ADMISSION_H
