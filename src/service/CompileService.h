//===- service/CompileService.h - Multi-tenant compile service --*- C++ -*-===//
///
/// \file
/// A multi-tenant JIT compile service: clients submit() IR modules from
/// any thread and get back a waitable ServiceResult; service workers pop
/// jobs from a tenant-fair admission queue (service/Admission.h), batch
/// small jobs into one module, compile the batch through the existing
/// parallel driver's job-aligned entry point
/// (core::ParallelModuleCompiler::compileJobs), map each job's output
/// executable, and memoize it in the content-addressed CodeCache. This
/// is ROADMAP open item 1: the determinism work of PRs 2-4 turned into a
/// serving feature (see docs/SERVICE.md and docs/ARCHITECTURE.md).
///
/// The pipeline per job:
///
///   submit()  --verify gate--> fingerprint --> cache.claim()
///      Hit:    complete immediately with the cached mapping
///      Waiter: another submit of the same fingerprint is compiling;
///              attach and wait (single-flight, no duplicate compile)
///      Owner:  enqueue; a worker batches it with up to MaxBatchJobs-1
///              queued jobs, compiles the batch in one parallel pass,
///              maps per-job code, publishes it, completes all waiters
///
/// On top of that sits the overload-control layer (docs/SERVICE.md,
/// "Overload control"):
///
///  * **Admission control.** Every submit names a tenant; per-tenant
///    token buckets and weighted-fair dequeue (AdmissionQueue) keep a
///    flooding tenant from starving the others. submit() waits at most
///    AdmitMaxWaitNs for ring space before failing with Overloaded;
///    trySubmit() never waits. A closed service reports ServiceShutdown,
///    never an ad-hoc assembler error.
///
///  * **Deadlines.** A job may carry an absolute deadline: expired jobs
///    are shed at dequeue (never compiled), and a waiter attached to an
///    in-flight fingerprint times out on its own deadline independently
///    of the owner (ServiceResult::wait self-completes, first-wins).
///
///  * **Transient-failure retry.** Jobs failing with a transient code
///    (support::compileErrTransient) are recompiled up to MaxRetries
///    times with decorrelated-jitter backoff on the queue's retry lane
///    before their waiters are failed. The single-flight claim is held
///    across retries, so waiters keep waiting instead of re-compiling.
///
///  * **Worker watchdog.** Each worker heartbeats per batch stage; a
///    watchdog thread fails over the ownership claims of a worker stuck
///    past StuckBatchTimeoutNs, completing its submitter and waiters
///    with a structured error. Ownership tokens (CodeCache) make the
///    hung worker's eventual publish a harmless no-op.
///
/// Admission reuses the PR 6 robustness plumbing: the verifier gate runs
/// on the *client* thread before the job can touch the queue or cache,
/// so a malformed module costs its submitter a structured VerifyFailed
/// diagnostic and nobody else anything. A job that fails mid-batch
/// (graceful-degradation path of the parallel driver) gets a precise
/// per-job diagnostic while the other jobs of the batch are served
/// normally — and the failed fingerprint is removed, never cached.
///
/// The service is a template over a Traits type binding it to an IR:
///
///   struct MyTraits {
///     using WorkerT = ...;   // satisfies core::ParallelCompileWorker
///     // ModuleT = WorkerT::ModuleT, default-constructible + movable
///     static support::Fp128 fingerprint(const ModuleT &M);
///     // Appends Job's functions/globals to Batch; false on a symbol
///     // conflict with what Batch already holds (Batch unusable for Job).
///     static bool appendTo(ModuleT &Batch, const ModuleT &Job);
///     static void clearModule(ModuleT &Batch);
///     static bool verify(const ModuleT &M, std::string &Err);
///     static constexpr asmx::JITMapper::StubArch Stub = ...;
///   };
///
/// Allocation discipline: the per-function compile loop inside the batch
/// compile stays allocation-free per docs/PERF.md (worker state is
/// reused). Per-*job* work — queue transfer, the CachedCode allocation,
/// the mapping syscalls — allocates; that is once per distinct module,
/// amortized away by the cache for every hit.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SERVICE_COMPILESERVICE_H
#define TPDE_SERVICE_COMPILESERVICE_H

#include "core/ParallelCompiler.h"
#include "service/Admission.h"
#include "service/CodeCache.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"
#include "support/Sync.h"
#include "support/Timer.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tpde::service {

struct ServiceOptions {
  /// Service worker threads popping and compiling batches.
  unsigned NumWorkers = 1;
  /// Threads inside each worker's parallel batch compile (1 = the worker
  /// thread compiles its batch alone; >1 shards across a private pool).
  unsigned CompileThreads = 1;
  /// Admission queue depth; a full queue back-pressures submit() for at
  /// most AdmitMaxWaitNs and rejects trySubmit() immediately.
  size_t QueueCapacity = 256;
  /// Max jobs coalesced into one batch compile.
  u32 MaxBatchJobs = 8;
  /// Shard granularity handed to the parallel driver.
  u32 FuncsPerShard = 4;
  /// Code cache byte budget (mapped sizes); epoch-LRU eviction above it.
  u64 CacheBudgetBytes = u64{64} << 20;
  /// Run the Traits verifier on the client thread before admission.
  bool Verify = true;
  /// Workers stay parked until resume() — lets tests queue a known set
  /// of jobs and get deterministic batch composition.
  bool StartPaused = false;
  /// External symbol resolver for mapping (host functions the jobs call).
  asmx::JITMapper::Resolver Resolver;

  // -- Overload control -------------------------------------------------
  /// Longest a blocking submit() waits for ring space before failing the
  /// job with Overloaded. 0 makes submit() behave like trySubmit().
  u64 AdmitMaxWaitNs = 200'000'000; // 200ms
  /// Admission policy for tenants without an explicit setTenantConfig().
  /// The default is unmetered, weight 1.
  TenantConfig DefaultTenant;
  /// Max recompiles of a job whose failure is transient
  /// (support::compileErrTransient) before its waiters are failed.
  u32 MaxRetries = 2;
  /// Decorrelated-jitter backoff between retries:
  /// next = clamp(uniform(Base, 3 * prev), Base, Cap).
  u64 RetryBackoffBaseNs = 200'000;    // 200us
  u64 RetryBackoffCapNs = 50'000'000;  // 50ms
  /// A worker whose heartbeat is older than this while inside a batch is
  /// failed over by the watchdog (its claims complete with a structured
  /// error; its eventual publish is a no-op). 0 disables the watchdog.
  u64 StuckBatchTimeoutNs = 30'000'000'000; // 30s
  /// Watchdog scan period (also its detection latency).
  u64 WatchdogPeriodNs = 100'000'000; // 100ms
  /// Test-only: runs on the worker thread after it registered its batch
  /// claims, before compiling. Lets tests stall a worker deterministically
  /// to exercise the watchdog.
  std::function<void()> TestHookPreBatch;
};

/// Per-submit parameters. Defaults preserve the pre-overload behavior:
/// the anonymous tenant, no deadline.
struct SubmitOptions {
  /// Tenant charged for this job's admission (quota + fair share).
  TenantId Tenant = 0;
  /// Absolute tpde::nowNs() deadline; 0 = none. Expired queued jobs are
  /// shed un-compiled; expired waiters self-complete in wait().
  u64 DeadlineNs = 0;
};

template <typename Traits> class CompileService {
public:
  using WorkerT = typename Traits::WorkerT;
  using ModuleT = typename WorkerT::ModuleT;

  explicit CompileService(ServiceOptions O = {})
      : Opts(sanitize(std::move(O))), Cache(Opts.CacheBudgetBytes),
        Queue(Opts.QueueCapacity, Opts.DefaultTenant), Paused(Opts.StartPaused) {
    Workers.reserve(Opts.NumWorkers);
    for (unsigned I = 0; I < Opts.NumWorkers; ++I)
      Workers.push_back(std::make_unique<WorkerState>(Opts, I));
    for (auto &WS : Workers)
      WS->Thread = tpde::Thread([this, W = WS.get()] { workerMain(*W); });
    if (Opts.StuckBatchTimeoutNs > 0)
      Watchdog = tpde::Thread([this] { watchdogMain(); });
  }

  ~CompileService() { shutdown(); }

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Installs an admission policy for \p Tid (quota, weight, queue cap),
  /// overriding ServiceOptions::DefaultTenant for that tenant.
  void setTenantConfig(TenantId Tid, const TenantConfig &Cfg) {
    Queue.setTenantConfig(Tid, Cfg);
  }

  /// Submits one module as a job. Never blocks on compilation; blocks at
  /// most ServiceOptions::AdmitMaxWaitNs when the admission queue is full
  /// (bounded back-pressure), then fails the job with Overloaded. The
  /// returned handle completes on a cache hit before submit() even
  /// returns.
  ResultPtr submit(ModuleT Mod, SubmitOptions SO = {}) {
    return admit(std::move(Mod), SO, /*NonBlocking=*/false);
  }

  /// Non-blocking submit: a full queue (or exhausted quota) fails the
  /// job with Overloaded immediately instead of waiting for space.
  ResultPtr trySubmit(ModuleT Mod, SubmitOptions SO = {}) {
    return admit(std::move(Mod), SO, /*NonBlocking=*/true);
  }

  /// Releases workers parked by ServiceOptions::StartPaused.
  void resume() TPDE_EXCLUDES(PauseMtx) {
    {
      LockGuard L(PauseMtx);
      Paused = false;
    }
    PauseCV.notify_all();
  }

  /// Stops admission, drains queued jobs, joins workers. Idempotent;
  /// called by the destructor.
  void shutdown() TPDE_EXCLUDES(WatchdogMtx) {
    {
      LockGuard L(WatchdogMtx);
      WatchdogStop = true;
    }
    WatchdogCV.notify_all();
    if (Watchdog.joinable())
      Watchdog.join();
    Queue.close();
    resume();
    for (auto &WS : Workers)
      if (WS->Thread.joinable())
        WS->Thread.join();
  }

  CodeCache &cache() { return Cache; }
  ServiceStatsSnapshot stats() const { return Cache.snapshot(); }

private:
  struct PendingJob {
    ModuleT Mod;
    support::Fp128 Fp;
    ResultPtr Res;
    u64 Token = 0;     ///< Ownership token from the cache claim.
    TenantId Tenant = 0;
    u64 DeadlineNs = 0;
    u64 EnqueueNs = 0; ///< Last enqueue time (reset per retry); the
                       ///< queue-wait histogram records pop - enqueue.
    u32 Attempt = 0;   ///< Completed compile attempts (retry counter).
    u64 PrevBackoffNs = 0; ///< Last backoff (decorrelated-jitter state).
  };

  /// Per-worker compile state: a persistent batch module with a parallel
  /// driver bound to it (worker construction is the expensive part —
  /// adapters/assemblers/compilers are reused across batches, so the
  /// steady-state batch compile hits the reuse fast paths).
  struct WorkerState {
    explicit WorkerState(const ServiceOptions &O, unsigned Index)
        : PC(BatchMod, {.NumThreads = O.CompileThreads,
                        .FuncsPerShard = O.FuncsPerShard}),
          BackoffRng(0x7065646eull ^ (u64{Index} << 32)) {}
    ModuleT BatchMod;
    core::ParallelModuleCompiler<WorkerT> PC;
    // Batch scratch, reused across batches.
    std::vector<PendingJob> Batch;
    std::vector<u32> JobBounds;
    std::vector<std::shared_ptr<CachedCode>> Codes;
    std::vector<asmx::Assembler *> Outs;
    std::vector<support::CompileStatus> JobStatus;
    std::vector<ResultPtr> Waiters;
    /// Jobs deferred to the worker's next batch: a job whose symbols
    /// conflict with the batch built so far, plus the popped tail behind
    /// it (kept here instead of re-queued, so a full ring can never fail
    /// an already-admitted job). Leads the next batch; never exceeds
    /// MaxBatchJobs - 1 entries.
    std::vector<PendingJob> CarryJobs;
    /// Deterministic per-worker jitter source for retry backoff.
    tpde::Rng BackoffRng;
    tpde::Thread Thread;

    // -- Watchdog interface (see watchdogMain) --------------------------
    std::atomic<u64> HeartbeatNs{0}; ///< Last sign of life (nowNs).
    std::atomic<bool> InBatch{false};
    /// Protects Claims. Lock order: ClaimsMtx strictly before Cache.Mtx —
    /// the rank (LockRank::ServiceClaims < ServiceCache) makes Debug
    /// builds assert that order on every acquisition; the static
    /// annotations prove each individual guard, and the order itself is
    /// re-proven by the compile-fail suite (tests/static_analysis/).
    Mutex ClaimsMtx{LockRank::ServiceClaims};
    std::vector<std::pair<support::Fp128, u64>>
        Claims TPDE_GUARDED_BY(ClaimsMtx);
  };

  static ServiceOptions sanitize(ServiceOptions O) {
    if (O.NumWorkers == 0)
      O.NumWorkers = 1;
    if (O.CompileThreads == 0)
      O.CompileThreads = 1;
    if (O.MaxBatchJobs == 0)
      O.MaxBatchJobs = 1;
    if (O.RetryBackoffBaseNs == 0)
      O.RetryBackoffBaseNs = 1;
    if (O.RetryBackoffCapNs < O.RetryBackoffBaseNs)
      O.RetryBackoffCapNs = O.RetryBackoffBaseNs;
    if (O.StuckBatchTimeoutNs > 0 && O.WatchdogPeriodNs == 0)
      O.WatchdogPeriodNs = 1'000'000;
    return O;
  }

  /// The shared submit/trySubmit path: verify, fingerprint, claim, and
  /// admission with the caller's blocking policy.
  ResultPtr admit(ModuleT Mod, const SubmitOptions &SO, bool NonBlocking) {
    auto Res = std::make_shared<ServiceResult>();
    Res->SubmitNs = tpde::nowNs();
    Res->DeadlineNs = SO.DeadlineNs;
    Res->Stats = Cache.statsPtr();
    if (Opts.Verify) {
      std::string Err; // admission path, not the compile hot loop
      if (!Traits::verify(Mod, Err)) {
        Cache.stats().VerifyRejected.fetch_add(1, std::memory_order_relaxed);
        Cache.stats().Failed.fetch_add(1, std::memory_order_relaxed);
        support::CompileStatus St;
        St.Err = support::CompileErr::VerifyFailed;
        St.Message = std::move(Err);
        Res->complete(nullptr, St, false, tpde::nowNs());
        return Res;
      }
    }
    if (support::faultPoint(support::FaultSite::ServiceAdmit)) {
      Cache.stats().Failed.fetch_add(1, std::memory_order_relaxed);
      support::CompileStatus St;
      St.Err = support::CompileErr::FaultInjected;
      St.Message = "injected admission failure";
      Res->complete(nullptr, St, false, tpde::nowNs());
      return Res;
    }
    const support::Fp128 Fp = Traits::fingerprint(Mod);
    std::shared_ptr<CachedCode> HitCode;
    u64 Token = 0;
    switch (Cache.claim(Fp, Res, HitCode, Token)) {
    case CodeCache::Claim::Hit: {
      // A hit beats an expired deadline: the code is already here.
      support::CompileStatus Ok;
      u64 Now = tpde::nowNs();
      Res->complete(std::move(HitCode), Ok, /*WasHit=*/true, Now);
      Cache.stats().HitNs.record(Res->latencyNs());
      return Res;
    }
    case CodeCache::Claim::Waiter:
      return Res; // the in-flight owner completes it (or wait() times out)
    case CodeCache::Claim::Owner:
      break;
    }
    u64 Now = tpde::nowNs();
    if (SO.DeadlineNs != 0 && Now >= SO.DeadlineNs) {
      Cache.stats().Shed.fetch_add(1, std::memory_order_relaxed);
      failJob(Fp, Token, Res, support::CompileErr::DeadlineExceeded,
              "deadline expired before admission");
      return Res;
    }
    PendingJob Job;
    Job.Mod = std::move(Mod);
    Job.Fp = Fp;
    Job.Res = Res;
    Job.Token = Token;
    Job.Tenant = SO.Tenant;
    Job.DeadlineNs = SO.DeadlineNs;
    Job.EnqueueNs = Now;
    Admit A = NonBlocking
                  ? Queue.tryPush(std::move(Job), SO.Tenant, Now)
                  : Queue.pushWait(std::move(Job), SO.Tenant, Now,
                                   Opts.AdmitMaxWaitNs);
    switch (A) {
    case Admit::Ok:
      break;
    case Admit::Closed:
      failJob(Fp, Token, Res, support::CompileErr::ServiceShutdown,
              "compile service is shut down");
      break;
    case Admit::Overloaded:
      Cache.stats().Overloaded.fetch_add(1, std::memory_order_relaxed);
      failJob(Fp, Token, Res, support::CompileErr::Overloaded,
              "admission queue full");
      break;
    case Admit::QuotaExceeded:
      Cache.stats().Overloaded.fetch_add(1, std::memory_order_relaxed);
      failJob(Fp, Token, Res, support::CompileErr::Overloaded,
              "tenant quota exhausted");
      break;
    }
    return Res;
  }

  void workerMain(WorkerState &WS) TPDE_EXCLUDES(PauseMtx) {
    {
      LockGuard L(PauseMtx);
      while (Paused)
        PauseCV.wait(PauseMtx);
    }
    for (;;) {
      WS.HeartbeatNs.store(tpde::nowNs(), std::memory_order_relaxed);
      WS.Batch.clear();
      if (!WS.CarryJobs.empty()) {
        // Carried jobs lead the next batch (they were admitted first).
        for (PendingJob &J : WS.CarryJobs)
          WS.Batch.push_back(std::move(J));
        WS.CarryJobs.clear();
      } else {
        PendingJob First;
        if (!Queue.pop(First))
          return; // closed and drained
        Cache.stats().QueueWaitNs.record(tpde::nowNs() - First.EnqueueNs);
        WS.Batch.push_back(std::move(First));
      }
      while (WS.Batch.size() < Opts.MaxBatchJobs) {
        PendingJob More;
        if (!Queue.tryPop(More))
          break;
        Cache.stats().QueueWaitNs.record(tpde::nowNs() - More.EnqueueNs);
        WS.Batch.push_back(std::move(More));
      }
      compileBatch(WS);
    }
  }

  void compileBatch(WorkerState &WS) {
    WS.InBatch.store(true, std::memory_order_release);
    WS.HeartbeatNs.store(tpde::nowNs(), std::memory_order_relaxed);
    // Concatenate the jobs into the batch module. Expired jobs are shed
    // here — at dequeue, before any compilation. A job whose symbols
    // conflict with the batch built so far is carried (with the rest of
    // the popped tail) into this worker's next batch, where it leads and
    // so compiles alone or with different neighbors; a job conflicting
    // with an *empty* batch is self-conflicting and fails.
    Traits::clearModule(WS.BatchMod);
    WS.JobBounds.clear();
    WS.JobBounds.push_back(0);
    size_t Admitted = 0;
    const u64 ShedNow = tpde::nowNs();
    for (size_t J = 0; J < WS.Batch.size(); ++J) {
      PendingJob &Job = WS.Batch[J];
      if (Job.DeadlineNs != 0 && ShedNow >= Job.DeadlineNs) {
        Cache.stats().Shed.fetch_add(1, std::memory_order_relaxed);
        failJob(Job.Fp, Job.Token, Job.Res,
                support::CompileErr::DeadlineExceeded,
                "deadline expired before compile");
        continue;
      }
      if (!Traits::appendTo(WS.BatchMod, Job.Mod)) {
        if (Admitted == 0) {
          failJob(Job.Fp, Job.Token, Job.Res,
                  support::CompileErr::AssemblerError,
                  "job defines conflicting symbols");
          continue;
        }
        for (size_t K = J; K < WS.Batch.size(); ++K)
          WS.CarryJobs.push_back(std::move(WS.Batch[K]));
        break;
      }
      if (Admitted != J)
        WS.Batch[Admitted] = std::move(WS.Batch[J]);
      ++Admitted;
      WS.JobBounds.push_back(WorkerT::funcCount(WS.BatchMod));
    }
    WS.Batch.resize(Admitted);
    if (Admitted == 0) {
      WS.InBatch.store(false, std::memory_order_release);
      return;
    }

    // Register the batch's claims for the watchdog before the (possibly
    // hanging) compile, then heartbeat and go.
    {
      LockGuard L(WS.ClaimsMtx);
      WS.Claims.clear();
      for (size_t J = 0; J < Admitted; ++J)
        WS.Claims.emplace_back(WS.Batch[J].Fp, WS.Batch[J].Token);
    }
    WS.HeartbeatNs.store(tpde::nowNs(), std::memory_order_relaxed);
    if (Opts.TestHookPreBatch)
      Opts.TestHookPreBatch();

    WS.Codes.clear();
    WS.Outs.clear();
    for (size_t J = 0; J < Admitted; ++J) {
      WS.Codes.push_back(std::make_shared<CachedCode>());
      WS.Codes.back()->Fp = WS.Batch[J].Fp;
      WS.Outs.push_back(&WS.Codes.back()->Asm);
    }
    WS.JobStatus.resize(Admitted);

    WS.PC.compileJobs(WS.JobBounds, WS.Outs,
                      std::span(WS.JobStatus.data(), Admitted));

    for (size_t J = 0; J < Admitted; ++J) {
      WS.HeartbeatNs.store(tpde::nowNs(), std::memory_order_relaxed);
      PendingJob &Job = WS.Batch[J];
      std::shared_ptr<CachedCode> &CC = WS.Codes[J];
      if (WS.JobStatus[J].ok() &&
          !CC->JIT.map(CC->Asm, Opts.Resolver, Traits::Stub))
        WS.JobStatus[J] = CC->JIT.status();
      if (!WS.JobStatus[J].ok()) {
        if (maybeRetry(WS, Job, WS.JobStatus[J]))
          continue;
        failJobStatus(Job.Fp, Job.Token, Job.Res, WS.JobStatus[J]);
        continue;
      }
      WS.Waiters.clear();
      if (!Cache.publish(Job.Fp, Job.Token, CC, WS.Waiters))
        continue; // failed over by the watchdog; everyone was completed
      u64 Now = tpde::nowNs();
      support::CompileStatus Ok;
      if (Job.Res->complete(CC, Ok, /*WasHit=*/false, Now))
        Cache.stats().MissNs.record(Job.Res->latencyNs());
      for (ResultPtr &W : WS.Waiters)
        if (W->complete(CC, Ok, /*WasHit=*/false, Now))
          Cache.stats().MissNs.record(W->latencyNs());
    }

    {
      LockGuard L(WS.ClaimsMtx);
      WS.Claims.clear();
    }
    WS.InBatch.store(false, std::memory_order_release);
  }

  /// Re-admits \p Job on the retry lane when its failure is transient,
  /// the retry budget allows, and the backoff still fits the deadline.
  /// The cache claim is kept across the retry — waiters keep waiting on
  /// the same entry. Returns false when the job must fail instead.
  bool maybeRetry(WorkerState &WS, PendingJob &Job,
                  const support::CompileStatus &St) {
    if (!support::compileErrTransient(St.Err) || Job.Attempt >= Opts.MaxRetries)
      return false;
    // Decorrelated jitter: next in [Base, 3 * prev], clamped to Cap.
    u64 Prev = Job.PrevBackoffNs ? Job.PrevBackoffNs : Opts.RetryBackoffBaseNs;
    u64 Lo = Opts.RetryBackoffBaseNs;
    u64 Hi = Prev * 3;
    if (Hi <= Lo)
      Hi = Lo + 1;
    u64 Backoff = Lo + WS.BackoffRng.below(Hi - Lo);
    if (Backoff > Opts.RetryBackoffCapNs)
      Backoff = Opts.RetryBackoffCapNs;
    u64 Now = tpde::nowNs();
    if (Job.DeadlineNs != 0 && Now + Backoff >= Job.DeadlineNs)
      return false; // the retry could not finish in time anyway
    if (support::faultPoint(support::FaultSite::ServiceRetry)) {
      support::CompileStatus FS;
      FS.Err = support::CompileErr::FaultInjected;
      FS.Message = "injected retry-scheduling failure";
      failJobStatus(Job.Fp, Job.Token, Job.Res, FS);
      return true; // handled (failed), caller must not double-fail
    }
    Job.Attempt += 1;
    Job.PrevBackoffNs = Backoff;
    Job.EnqueueNs = Now;
    Cache.stats().Retried.fetch_add(1, std::memory_order_relaxed);
    Queue.pushRetry(std::move(Job), Now + Backoff);
    return true;
  }

  void watchdogMain() TPDE_EXCLUDES(WatchdogMtx) {
    UniqueLock L(WatchdogMtx);
    while (!WatchdogStop) {
      WatchdogCV.waitFor(WatchdogMtx, Opts.WatchdogPeriodNs);
      if (WatchdogStop)
        break;
      L.unlock();
      const u64 Now = tpde::nowNs();
      for (auto &WSP : Workers) {
        WorkerState &WS = *WSP;
        if (!WS.InBatch.load(std::memory_order_acquire))
          continue;
        u64 Hb = WS.HeartbeatNs.load(std::memory_order_relaxed);
        if (Hb == 0 || Now <= Hb || Now - Hb < Opts.StuckBatchTimeoutNs)
          continue;
        failOverWorker(WS);
      }
      L.lock();
    }
  }

  /// Fails over every claim a hung worker registered for its current
  /// batch: the claims are removed from the cache (token-guarded, so the
  /// worker's eventual publish/fail is a no-op) and the owner handle plus
  /// all waiters complete with a structured error. The worker thread
  /// itself is left alone — if it ever returns it finds its claims gone.
  void failOverWorker(WorkerState &WS) {
    std::vector<std::pair<support::Fp128, u64>> Claims;
    {
      // ClaimsMtx is released before Cache.fail below; if the two ever
      // nest, the rank tracker holds them to ClaimsMtx-first.
      LockGuard L(WS.ClaimsMtx);
      Claims.swap(WS.Claims);
    }
    support::CompileStatus St;
    St.Err = support::CompileErr::DeadlineExceeded;
    St.Message = "stuck-batch watchdog failed over a hung worker";
    for (auto &[Fp, Token] : Claims) {
      std::vector<ResultPtr> Waiters;
      ResultPtr OwnerRes;
      if (!Cache.fail(Fp, Token, Waiters, &OwnerRes))
        continue; // the worker finished this one after all
      Cache.stats().StuckFailovers.fetch_add(1, std::memory_order_relaxed);
      u64 Now = tpde::nowNs();
      u64 Completed = 0;
      if (OwnerRes && OwnerRes->complete(nullptr, St, false, Now))
        ++Completed;
      for (ResultPtr &W : Waiters)
        if (W->complete(nullptr, St, false, Now))
          ++Completed;
      Cache.stats().Failed.fetch_add(Completed, std::memory_order_relaxed);
    }
  }

  void failJob(const support::Fp128 &Fp, u64 Token, const ResultPtr &Res,
               support::CompileErr E, std::string_view Msg) {
    support::CompileStatus St;
    St.Err = E;
    St.Message.assign(Msg);
    failJobStatus(Fp, Token, Res, St);
  }

  void failJobStatus(const support::Fp128 &Fp, u64 Token, const ResultPtr &Res,
                     const support::CompileStatus &St) {
    std::vector<ResultPtr> Waiters;
    Cache.fail(Fp, Token, Waiters);
    u64 Now = tpde::nowNs();
    u64 Completed = 0;
    if (Res->complete(nullptr, St, false, Now))
      ++Completed;
    for (ResultPtr &W : Waiters)
      if (W->complete(nullptr, St, false, Now))
        ++Completed;
    Cache.stats().Failed.fetch_add(Completed, std::memory_order_relaxed);
  }

  ServiceOptions Opts;
  CodeCache Cache;
  AdmissionQueue<PendingJob> Queue;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  Mutex PauseMtx;
  CondVar PauseCV;
  bool Paused TPDE_GUARDED_BY(PauseMtx) = false;
  tpde::Thread Watchdog;
  Mutex WatchdogMtx;
  CondVar WatchdogCV;
  bool WatchdogStop TPDE_GUARDED_BY(WatchdogMtx) = false;
};

} // namespace tpde::service

#endif // TPDE_SERVICE_COMPILESERVICE_H
