//===- service/CompileService.h - Multi-tenant compile service --*- C++ -*-===//
///
/// \file
/// A multi-tenant JIT compile service: clients submit() IR modules from
/// any thread and get back a waitable ServiceResult; service workers pop
/// jobs from a bounded MPMC queue (support/MpmcQueue.h), batch small
/// jobs into one module, compile the batch through the existing parallel
/// driver's job-aligned entry point
/// (core::ParallelModuleCompiler::compileJobs), map each job's output
/// executable, and memoize it in the content-addressed CodeCache. This
/// is ROADMAP open item 1: the determinism work of PRs 2-4 turned into a
/// serving feature (see docs/SERVICE.md and docs/ARCHITECTURE.md).
///
/// The pipeline per job:
///
///   submit()  --verify gate--> fingerprint --> cache.claim()
///      Hit:    complete immediately with the cached mapping
///      Waiter: another submit of the same fingerprint is compiling;
///              attach and wait (single-flight, no duplicate compile)
///      Owner:  enqueue; a worker batches it with up to MaxBatchJobs-1
///              queued jobs, compiles the batch in one parallel pass,
///              maps per-job code, publishes it, completes all waiters
///
/// Admission reuses the PR 6 robustness plumbing: the verifier gate runs
/// on the *client* thread before the job can touch the queue or cache,
/// so a malformed module costs its submitter a structured VerifyFailed
/// diagnostic and nobody else anything. A job that fails mid-batch
/// (graceful-degradation path of the parallel driver) gets a precise
/// per-job diagnostic while the other jobs of the batch are served
/// normally — and the failed fingerprint is removed, never cached.
///
/// The service is a template over a Traits type binding it to an IR:
///
///   struct MyTraits {
///     using WorkerT = ...;   // satisfies core::ParallelCompileWorker
///     // ModuleT = WorkerT::ModuleT, default-constructible + movable
///     static support::Fp128 fingerprint(const ModuleT &M);
///     // Appends Job's functions/globals to Batch; false on a symbol
///     // conflict with what Batch already holds (Batch unusable for Job).
///     static bool appendTo(ModuleT &Batch, const ModuleT &Job);
///     static void clearModule(ModuleT &Batch);
///     static bool verify(const ModuleT &M, std::string &Err);
///     static constexpr asmx::JITMapper::StubArch Stub = ...;
///   };
///
/// Allocation discipline: the per-function compile loop inside the batch
/// compile stays allocation-free per docs/PERF.md (worker state is
/// reused). Per-*job* work — queue transfer, the CachedCode allocation,
/// the mapping syscalls — allocates; that is once per distinct module,
/// amortized away by the cache for every hit.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SERVICE_COMPILESERVICE_H
#define TPDE_SERVICE_COMPILESERVICE_H

#include "core/ParallelCompiler.h"
#include "service/CodeCache.h"
#include "support/MpmcQueue.h"
#include "support/Timer.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace tpde::service {

struct ServiceOptions {
  /// Service worker threads popping and compiling batches.
  unsigned NumWorkers = 1;
  /// Threads inside each worker's parallel batch compile (1 = the worker
  /// thread compiles its batch alone; >1 shards across a private pool).
  unsigned CompileThreads = 1;
  /// Admission queue depth; full queue back-pressures submitters.
  size_t QueueCapacity = 256;
  /// Max jobs coalesced into one batch compile.
  u32 MaxBatchJobs = 8;
  /// Shard granularity handed to the parallel driver.
  u32 FuncsPerShard = 4;
  /// Code cache byte budget (mapped sizes); epoch-LRU eviction above it.
  u64 CacheBudgetBytes = u64{64} << 20;
  /// Run the Traits verifier on the client thread before admission.
  bool Verify = true;
  /// Workers stay parked until resume() — lets tests queue a known set
  /// of jobs and get deterministic batch composition.
  bool StartPaused = false;
  /// External symbol resolver for mapping (host functions the jobs call).
  asmx::JITMapper::Resolver Resolver;
};

template <typename Traits> class CompileService {
public:
  using WorkerT = typename Traits::WorkerT;
  using ModuleT = typename WorkerT::ModuleT;

  explicit CompileService(ServiceOptions O = {})
      : Opts(sanitize(std::move(O))), Cache(Opts.CacheBudgetBytes),
        Queue(Opts.QueueCapacity), Paused(Opts.StartPaused) {
    Workers.reserve(Opts.NumWorkers);
    for (unsigned I = 0; I < Opts.NumWorkers; ++I)
      Workers.push_back(std::make_unique<WorkerState>(Opts));
    for (auto &WS : Workers)
      WS->Thread = std::thread([this, W = WS.get()] { workerMain(*W); });
  }

  ~CompileService() { shutdown(); }

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Submits one module as a job. Never blocks on compilation; blocks
  /// only when the admission queue is full (back-pressure). The returned
  /// handle completes on a cache hit before submit() even returns.
  ResultPtr submit(ModuleT Mod) {
    auto Res = std::make_shared<ServiceResult>();
    Res->SubmitNs = tpde::nowNs();
    if (Opts.Verify) {
      std::string Err; // admission path, not the compile hot loop
      if (!Traits::verify(Mod, Err)) {
        Cache.stats().VerifyRejected.fetch_add(1, std::memory_order_relaxed);
        Cache.stats().Failed.fetch_add(1, std::memory_order_relaxed);
        support::CompileStatus St;
        St.Err = support::CompileErr::VerifyFailed;
        St.Message = std::move(Err);
        Res->complete(nullptr, St, false, tpde::nowNs());
        return Res;
      }
    }
    const support::Fp128 Fp = Traits::fingerprint(Mod);
    std::shared_ptr<CachedCode> HitCode;
    switch (Cache.claim(Fp, Res, HitCode)) {
    case CodeCache::Claim::Hit: {
      support::CompileStatus Ok;
      u64 Now = tpde::nowNs();
      Res->complete(std::move(HitCode), Ok, /*WasHit=*/true, Now);
      Cache.stats().HitNs.record(Res->latencyNs());
      return Res;
    }
    case CodeCache::Claim::Waiter:
      return Res; // the in-flight owner completes it
    case CodeCache::Claim::Owner:
      break;
    }
    PendingJob Job;
    Job.Mod = std::move(Mod);
    Job.Fp = Fp;
    Job.Res = Res;
    if (!Queue.push(std::move(Job))) {
      // Shut down: release the claim and report instead of hanging.
      failJob(Fp, Res, support::CompileErr::AssemblerError,
              "compile service is shut down");
    }
    return Res;
  }

  /// Releases workers parked by ServiceOptions::StartPaused.
  void resume() {
    {
      std::lock_guard<std::mutex> L(PauseMtx);
      Paused = false;
    }
    PauseCV.notify_all();
  }

  /// Stops admission, drains queued jobs, joins workers. Idempotent;
  /// called by the destructor.
  void shutdown() {
    Queue.close();
    resume();
    for (auto &WS : Workers)
      if (WS->Thread.joinable())
        WS->Thread.join();
  }

  CodeCache &cache() { return Cache; }
  ServiceStatsSnapshot stats() const { return Cache.snapshot(); }

private:
  struct PendingJob {
    ModuleT Mod;
    support::Fp128 Fp;
    ResultPtr Res;
  };

  /// Per-worker compile state: a persistent batch module with a parallel
  /// driver bound to it (worker construction is the expensive part —
  /// adapters/assemblers/compilers are reused across batches, so the
  /// steady-state batch compile hits the reuse fast paths).
  struct WorkerState {
    explicit WorkerState(const ServiceOptions &O)
        : PC(BatchMod, {.NumThreads = O.CompileThreads,
                        .FuncsPerShard = O.FuncsPerShard}) {}
    ModuleT BatchMod;
    core::ParallelModuleCompiler<WorkerT> PC;
    // Batch scratch, reused across batches.
    std::vector<PendingJob> Batch;
    std::vector<u32> JobBounds;
    std::vector<std::shared_ptr<CachedCode>> Codes;
    std::vector<asmx::Assembler *> Outs;
    std::vector<support::CompileStatus> JobStatus;
    std::vector<ResultPtr> Waiters;
    bool HasCarry = false;
    PendingJob Carry; ///< Job deferred to the next batch (name conflict).
    std::thread Thread;
  };

  static ServiceOptions sanitize(ServiceOptions O) {
    if (O.NumWorkers == 0)
      O.NumWorkers = 1;
    if (O.CompileThreads == 0)
      O.CompileThreads = 1;
    if (O.MaxBatchJobs == 0)
      O.MaxBatchJobs = 1;
    return O;
  }

  void workerMain(WorkerState &WS) {
    {
      std::unique_lock<std::mutex> L(PauseMtx);
      PauseCV.wait(L, [&] { return !Paused; });
    }
    for (;;) {
      PendingJob First;
      if (WS.HasCarry) {
        First = std::move(WS.Carry);
        WS.HasCarry = false;
      } else if (!Queue.pop(First)) {
        return; // closed and drained
      }
      WS.Batch.clear();
      WS.Batch.push_back(std::move(First));
      while (WS.Batch.size() < Opts.MaxBatchJobs) {
        PendingJob More;
        if (!Queue.tryPop(More))
          break;
        WS.Batch.push_back(std::move(More));
      }
      compileBatch(WS);
    }
  }

  void compileBatch(WorkerState &WS) {
    // Concatenate the jobs into the batch module. A job whose symbols
    // conflict with the batch built so far is carried into the next
    // batch (it will compile alone or with different neighbors); a job
    // that conflicts with an *empty* batch is self-conflicting and fails.
    Traits::clearModule(WS.BatchMod);
    WS.JobBounds.clear();
    WS.JobBounds.push_back(0);
    size_t Admitted = 0;
    for (size_t J = 0; J < WS.Batch.size(); ++J) {
      if (!Traits::appendTo(WS.BatchMod, WS.Batch[J].Mod)) {
        if (Admitted == 0) {
          failJob(WS.Batch[J].Fp, WS.Batch[J].Res,
                  support::CompileErr::AssemblerError,
                  "job defines conflicting symbols");
          continue;
        }
        WS.Carry = std::move(WS.Batch[J]);
        WS.HasCarry = true;
        // Re-queue what we popped beyond the conflicting job so carry
        // stays a single slot; tryPush never blocks the worker.
        for (size_t K = J + 1; K < WS.Batch.size(); ++K) {
          support::Fp128 Fp = WS.Batch[K].Fp;
          ResultPtr Res = WS.Batch[K].Res;
          if (!Queue.tryPush(std::move(WS.Batch[K])))
            failJob(Fp, Res, support::CompileErr::AssemblerError,
                    "admission queue full re-queuing deferred job");
        }
        WS.Batch.resize(J);
        break;
      }
      if (Admitted != J)
        WS.Batch[Admitted] = std::move(WS.Batch[J]);
      ++Admitted;
      WS.JobBounds.push_back(WorkerT::funcCount(WS.BatchMod));
    }
    WS.Batch.resize(Admitted);
    if (Admitted == 0)
      return;

    WS.Codes.clear();
    WS.Outs.clear();
    for (size_t J = 0; J < Admitted; ++J) {
      WS.Codes.push_back(std::make_shared<CachedCode>());
      WS.Codes.back()->Fp = WS.Batch[J].Fp;
      WS.Outs.push_back(&WS.Codes.back()->Asm);
    }
    WS.JobStatus.resize(Admitted);

    WS.PC.compileJobs(WS.JobBounds, WS.Outs,
                      std::span(WS.JobStatus.data(), Admitted));

    for (size_t J = 0; J < Admitted; ++J) {
      PendingJob &Job = WS.Batch[J];
      std::shared_ptr<CachedCode> &CC = WS.Codes[J];
      if (WS.JobStatus[J].ok() &&
          !CC->JIT.map(CC->Asm, Opts.Resolver, Traits::Stub))
        WS.JobStatus[J] = CC->JIT.status();
      if (!WS.JobStatus[J].ok()) {
        failJobStatus(Job.Fp, Job.Res, WS.JobStatus[J]);
        continue;
      }
      WS.Waiters.clear();
      Cache.publish(Job.Fp, CC, WS.Waiters);
      u64 Now = tpde::nowNs();
      support::CompileStatus Ok;
      Job.Res->complete(CC, Ok, /*WasHit=*/false, Now);
      Cache.stats().MissNs.record(Job.Res->latencyNs());
      for (ResultPtr &W : WS.Waiters) {
        W->complete(CC, Ok, /*WasHit=*/false, Now);
        Cache.stats().MissNs.record(W->latencyNs());
      }
    }
  }

  void failJob(const support::Fp128 &Fp, const ResultPtr &Res,
               support::CompileErr E, std::string_view Msg) {
    support::CompileStatus St;
    St.Err = E;
    St.Message.assign(Msg);
    failJobStatus(Fp, Res, St);
  }

  void failJobStatus(const support::Fp128 &Fp, const ResultPtr &Res,
                     const support::CompileStatus &St) {
    std::vector<ResultPtr> Waiters;
    Cache.fail(Fp, Waiters);
    u64 Now = tpde::nowNs();
    Cache.stats().Failed.fetch_add(1 + Waiters.size(),
                                   std::memory_order_relaxed);
    Res->complete(nullptr, St, false, Now);
    for (ResultPtr &W : Waiters)
      W->complete(nullptr, St, false, Now);
  }

  ServiceOptions Opts;
  CodeCache Cache;
  support::BoundedMpmcQueue<PendingJob> Queue;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::mutex PauseMtx;
  std::condition_variable PauseCV;
  bool Paused = false;
};

} // namespace tpde::service

#endif // TPDE_SERVICE_COMPILESERVICE_H
