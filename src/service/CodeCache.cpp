//===- service/CodeCache.cpp - Content-addressed code cache ---------------===//

#include "service/CodeCache.h"

namespace tpde::service {

CodeCache::Claim CodeCache::claim(const support::Fp128 &Fp,
                                  const ResultPtr &Res,
                                  std::shared_ptr<CachedCode> &HitCode,
                                  u64 &OwnerToken) {
  LockGuard L(Mtx);
  auto [It, Inserted] = Map.try_emplace(Fp);
  Entry &E = It->second;
  E.LastUse = ++Clock;
  if (Inserted) {
    stats().Misses.fetch_add(1, std::memory_order_relaxed);
    E.Token = OwnerToken = ++NextToken;
    E.OwnerRes = Res;
    return Claim::Owner;
  }
  if (E.St == State::Ready) {
    stats().Hits.fetch_add(1, std::memory_order_relaxed);
    HitCode = E.Code;
    return Claim::Hit;
  }
  stats().Coalesced.fetch_add(1, std::memory_order_relaxed);
  E.Waiters.push_back(Res);
  return Claim::Waiter;
}

bool CodeCache::publish(const support::Fp128 &Fp, u64 OwnerToken,
                        std::shared_ptr<CachedCode> Code,
                        std::vector<ResultPtr> &Waiters) {
  LockGuard L(Mtx);
  auto It = Map.find(Fp);
  if (It == Map.end() || It->second.St != State::Building ||
      It->second.Token != OwnerToken)
    return false; // claim was failed over; a newer owner may hold it now
  Entry &E = It->second;
  E.St = State::Ready;
  E.Code = std::move(Code);
  E.LastUse = ++Clock;
  E.OwnerRes = nullptr;
  Waiters = std::move(E.Waiters);
  E.Waiters.clear();
  stats().CachedBytes.fetch_add(E.Code->bytes(), std::memory_order_relaxed);
  stats().CachedEntries.fetch_add(1, std::memory_order_relaxed);
  evictLocked(Fp);
  return true;
}

bool CodeCache::fail(const support::Fp128 &Fp, u64 OwnerToken,
                     std::vector<ResultPtr> &Waiters, ResultPtr *OwnerRes) {
  LockGuard L(Mtx);
  auto It = Map.find(Fp);
  if (It == Map.end() || It->second.St != State::Building ||
      It->second.Token != OwnerToken)
    return false;
  Waiters = std::move(It->second.Waiters);
  if (OwnerRes)
    *OwnerRes = std::move(It->second.OwnerRes);
  Map.erase(It);
  return true;
}

void CodeCache::evictLocked(const support::Fp128 &Keep) {
  while (stats().CachedBytes.load(std::memory_order_relaxed) > Budget) {
    auto Victim = Map.end();
    for (auto It = Map.begin(); It != Map.end(); ++It) {
      if (It->second.St != State::Ready || It->first == Keep)
        continue;
      if (Victim == Map.end() || It->second.LastUse < Victim->second.LastUse)
        Victim = It;
    }
    if (Victim == Map.end())
      return; // nothing evictable: a single entry may exceed the budget
    stats().CachedBytes.fetch_sub(Victim->second.Code->bytes(),
                                  std::memory_order_relaxed);
    stats().CachedEntries.fetch_sub(1, std::memory_order_relaxed);
    stats().Evictions.fetch_add(1, std::memory_order_relaxed);
    Map.erase(Victim);
  }
}

ServiceStatsSnapshot CodeCache::snapshot() const {
  const ServiceStats &St = *StatsP;
  ServiceStatsSnapshot S;
  S.Hits = St.Hits.load(std::memory_order_relaxed);
  S.Misses = St.Misses.load(std::memory_order_relaxed);
  S.Coalesced = St.Coalesced.load(std::memory_order_relaxed);
  S.Evictions = St.Evictions.load(std::memory_order_relaxed);
  S.Failed = St.Failed.load(std::memory_order_relaxed);
  S.VerifyRejected = St.VerifyRejected.load(std::memory_order_relaxed);
  S.Overloaded = St.Overloaded.load(std::memory_order_relaxed);
  S.Shed = St.Shed.load(std::memory_order_relaxed);
  S.DeadlineTimedOut = St.DeadlineTimedOut.load(std::memory_order_relaxed);
  S.Retried = St.Retried.load(std::memory_order_relaxed);
  S.StuckFailovers = St.StuckFailovers.load(std::memory_order_relaxed);
  S.CachedBytes = St.CachedBytes.load(std::memory_order_relaxed);
  S.CachedEntries = St.CachedEntries.load(std::memory_order_relaxed);
  S.HitP50Ns = St.HitNs.quantileNs(0.50);
  S.HitP99Ns = St.HitNs.quantileNs(0.99);
  S.MissP50Ns = St.MissNs.quantileNs(0.50);
  S.MissP99Ns = St.MissNs.quantileNs(0.99);
  S.QueueWaitP50Ns = St.QueueWaitNs.quantileNs(0.50);
  S.QueueWaitP99Ns = St.QueueWaitNs.quantileNs(0.99);
  return S;
}

} // namespace tpde::service
