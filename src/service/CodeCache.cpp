//===- service/CodeCache.cpp - Content-addressed code cache ---------------===//

#include "service/CodeCache.h"

namespace tpde::service {

CodeCache::Claim CodeCache::claim(const support::Fp128 &Fp,
                                  const ResultPtr &Res,
                                  std::shared_ptr<CachedCode> &HitCode) {
  std::lock_guard<std::mutex> L(Mtx);
  auto [It, Inserted] = Map.try_emplace(Fp);
  Entry &E = It->second;
  E.LastUse = ++Clock;
  if (Inserted) {
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    return Claim::Owner;
  }
  if (E.St == State::Ready) {
    Stats.Hits.fetch_add(1, std::memory_order_relaxed);
    HitCode = E.Code;
    return Claim::Hit;
  }
  Stats.Coalesced.fetch_add(1, std::memory_order_relaxed);
  E.Waiters.push_back(Res);
  return Claim::Waiter;
}

void CodeCache::publish(const support::Fp128 &Fp,
                        std::shared_ptr<CachedCode> Code,
                        std::vector<ResultPtr> &Waiters) {
  std::lock_guard<std::mutex> L(Mtx);
  auto It = Map.find(Fp);
  assert(It != Map.end() && It->second.St == State::Building &&
         "publish without a prior Owner claim");
  Entry &E = It->second;
  E.St = State::Ready;
  E.Code = std::move(Code);
  E.LastUse = ++Clock;
  Waiters = std::move(E.Waiters);
  E.Waiters.clear();
  Stats.CachedBytes.fetch_add(E.Code->bytes(), std::memory_order_relaxed);
  Stats.CachedEntries.fetch_add(1, std::memory_order_relaxed);
  evictLocked(Fp);
}

void CodeCache::fail(const support::Fp128 &Fp,
                     std::vector<ResultPtr> &Waiters) {
  std::lock_guard<std::mutex> L(Mtx);
  auto It = Map.find(Fp);
  assert(It != Map.end() && It->second.St == State::Building &&
         "fail without a prior Owner claim");
  Waiters = std::move(It->second.Waiters);
  Map.erase(It);
}

void CodeCache::evictLocked(const support::Fp128 &Keep) {
  while (Stats.CachedBytes.load(std::memory_order_relaxed) > Budget) {
    auto Victim = Map.end();
    for (auto It = Map.begin(); It != Map.end(); ++It) {
      if (It->second.St != State::Ready || It->first == Keep)
        continue;
      if (Victim == Map.end() || It->second.LastUse < Victim->second.LastUse)
        Victim = It;
    }
    if (Victim == Map.end())
      return; // nothing evictable: a single entry may exceed the budget
    Stats.CachedBytes.fetch_sub(Victim->second.Code->bytes(),
                                std::memory_order_relaxed);
    Stats.CachedEntries.fetch_sub(1, std::memory_order_relaxed);
    Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
    Map.erase(Victim);
  }
}

ServiceStatsSnapshot CodeCache::snapshot() const {
  ServiceStatsSnapshot S;
  S.Hits = Stats.Hits.load(std::memory_order_relaxed);
  S.Misses = Stats.Misses.load(std::memory_order_relaxed);
  S.Coalesced = Stats.Coalesced.load(std::memory_order_relaxed);
  S.Evictions = Stats.Evictions.load(std::memory_order_relaxed);
  S.Failed = Stats.Failed.load(std::memory_order_relaxed);
  S.VerifyRejected = Stats.VerifyRejected.load(std::memory_order_relaxed);
  S.CachedBytes = Stats.CachedBytes.load(std::memory_order_relaxed);
  S.CachedEntries = Stats.CachedEntries.load(std::memory_order_relaxed);
  S.HitP50Ns = Stats.HitNs.quantileNs(0.50);
  S.HitP99Ns = Stats.HitNs.quantileNs(0.99);
  S.MissP50Ns = Stats.MissNs.quantileNs(0.50);
  S.MissP99Ns = Stats.MissNs.quantileNs(0.99);
  return S;
}

} // namespace tpde::service
