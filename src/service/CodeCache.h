//===- service/CodeCache.h - Content-addressed code cache -------*- C++ -*-===//
///
/// \file
/// The compile service's content-addressed code cache: a map from IR
/// fingerprint (support::Fp128 over a canonical module serialization) to
/// mapped, executable code. Soundness rests on the framework's
/// determinism contract (core/ParallelCompiler.h, docs/PERF.md): compiled
/// output is a pure function of the module, so two modules with equal
/// canonical serializations produce byte-identical code — a fingerprint
/// hit may serve the cached mapping in place of a fresh compile. The full
/// argument lives in docs/SERVICE.md.
///
/// The cache is also the service's **single-flight** point: the first
/// submitter of a fingerprint becomes the owner (and compiles), while
/// concurrent submitters of the same fingerprint attach to the in-flight
/// entry as waiters and are completed by the owner's publish — the same
/// module is never compiled twice concurrently.
///
/// Eviction is epoch-LRU under a byte budget: every claim/publish bumps a
/// logical clock and stamps the entry; publish evicts the stalest Ready
/// entries until the mapped-byte total fits the budget. Evicted code is
/// only unmapped when the last client shared_ptr drops, so eviction never
/// invalidates code a caller is still executing.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_SERVICE_CODECACHE_H
#define TPDE_SERVICE_CODECACHE_H

#include "asmx/Assembler.h"
#include "asmx/JITMapper.h"
#include "support/Diag.h"
#include "support/Hash.h"
#include "support/Histogram.h"
#include "support/Sync.h"
#include "support/Timer.h"

#include <atomic>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tpde::service {

/// One cached compile result: the merged assembler output and its
/// executable mapping. The Assembler must outlive the JITMapper (the
/// mapper resolves address() lookups through it), which is why both live
/// in one immutable object handed out by shared_ptr.
struct CachedCode {
  support::Fp128 Fp;
  asmx::Assembler Asm;
  asmx::JITMapper JIT;

  /// Entry-point lookup in the mapped code.
  void *address(std::string_view Name) const { return JIT.address(Name); }
  /// The mapped text bytes — what the byte-identity tests compare.
  std::span<const u8> textBytes() const {
    return {JIT.sectionBase(asmx::SecKind::Text),
            static_cast<size_t>(Asm.text().size())};
  }
  /// Budget-relevant footprint: the executable mapping's size.
  u64 bytes() const { return JIT.mappedSize(); }
};

/// Monotonically increasing counters + latency histograms. Counter
/// writes are relaxed atomics (allocation- and lock-free); reads are a
/// snapshot, not a consistent cut.
struct ServiceStats {
  std::atomic<u64> Hits{0};       ///< Served from cache at submit.
  std::atomic<u64> Misses{0};     ///< Entered compilation (single-flight owners).
  std::atomic<u64> Coalesced{0};  ///< Attached to an in-flight compile.
  std::atomic<u64> Evictions{0};  ///< Entries evicted under the byte budget.
  std::atomic<u64> Failed{0};     ///< Jobs completed with a diagnostic.
  std::atomic<u64> VerifyRejected{0}; ///< Rejected by the admission verifier.
  std::atomic<u64> Overloaded{0}; ///< Admission rejections: queue full past
                                  ///< the bounded wait, or quota exhausted.
  std::atomic<u64> Shed{0};       ///< Jobs whose deadline expired in the
                                  ///< queue; shed at dequeue, never compiled.
  std::atomic<u64> DeadlineTimedOut{0}; ///< Waiters that timed out on an
                                        ///< in-flight fingerprint.
  std::atomic<u64> Retried{0};    ///< Transient-failure recompiles scheduled.
  std::atomic<u64> StuckFailovers{0}; ///< Claims failed over by the worker
                                      ///< watchdog (hung-batch detector).
  std::atomic<u64> CachedBytes{0};
  std::atomic<u64> CachedEntries{0};
  support::LatencyHistogram HitNs;  ///< End-to-end latency of cache hits.
  support::LatencyHistogram MissNs; ///< End-to-end latency of compiles
                                    ///< (owners and coalesced waiters).
  support::LatencyHistogram QueueWaitNs; ///< Admission-queue residency per
                                         ///< dequeue (enqueue -> worker pop).
};

/// Plain-value snapshot of ServiceStats for reporting.
struct ServiceStatsSnapshot {
  u64 Hits = 0, Misses = 0, Coalesced = 0, Evictions = 0, Failed = 0,
      VerifyRejected = 0, Overloaded = 0, Shed = 0, DeadlineTimedOut = 0,
      Retried = 0, StuckFailovers = 0, CachedBytes = 0, CachedEntries = 0;
  u64 HitP50Ns = 0, HitP99Ns = 0, MissP50Ns = 0, MissP99Ns = 0;
  u64 QueueWaitP50Ns = 0, QueueWaitP99Ns = 0;
};

/// A waitable per-job completion handle. submit() returns one
/// immediately; wait() blocks until a service worker (or the submit fast
/// path, on a cache hit) completes it — or, for jobs submitted with a
/// deadline, until the deadline passes, at which point the handle
/// self-completes with DeadlineExceeded. Completion is first-wins: a
/// handle the waiter timed out stays timed out even if the owner later
/// publishes the code (the publish still lands in the cache for future
/// submits).
class ServiceResult {
public:
  /// Blocks until the job completed (served, failed, or rejected). If
  /// the job carries a deadline and it expires first, completes the
  /// handle with DeadlineExceeded — a waiter attached to an in-flight
  /// fingerprint therefore times out independently of the owner.
  void wait() TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    if (DeadlineNs == 0) {
      while (!Done)
        CV.wait(Mtx);
      return;
    }
    while (!Done) {
      u64 Now = tpde::nowNs();
      if (Now >= DeadlineNs) {
        completeTimeoutLocked(Now);
        break;
      }
      CV.waitFor(Mtx, DeadlineNs - Now);
    }
  }
  bool done() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Done;
  }
  /// Valid after wait(): success, served-from-cache flag, diagnostic,
  /// code handle, and end-to-end latency (completion - submit).
  ///
  /// These read guarded fields without the lock, which is safe by the
  /// handle's protocol: wait()'s lock release happens-before the caller's
  /// read, and a completed handle's fields never change again
  /// (first-wins). The reference-returning getters could not lock anyway.
  bool ok() const TPDE_NO_THREAD_SAFETY_ANALYSIS { return St.ok(); }
  bool hit() const TPDE_NO_THREAD_SAFETY_ANALYSIS { return Hit; }
  const support::CompileStatus &status() const TPDE_NO_THREAD_SAFETY_ANALYSIS {
    return St;
  }
  const std::shared_ptr<CachedCode> &code() const
      TPDE_NO_THREAD_SAFETY_ANALYSIS {
    return Code;
  }
  u64 latencyNs() const TPDE_NO_THREAD_SAFETY_ANALYSIS { return LatNs; }
  void *address(std::string_view Name) const {
    return Code ? Code->address(Name) : nullptr;
  }

  /// Completion (service-internal). NowNs is the completing thread's
  /// clock reading; latency is derived from the recorded submit time.
  /// First-wins: returns false — and changes nothing — when the handle
  /// already completed (e.g. the waiter timed out on its deadline), so
  /// callers must not record latency for a false return.
  bool complete(std::shared_ptr<CachedCode> C, const support::CompileStatus &S,
                bool WasHit, u64 NowNs) TPDE_EXCLUDES(Mtx) {
    {
      LockGuard L(Mtx);
      if (Done)
        return false;
      Code = std::move(C);
      St = S;
      Hit = WasHit;
      LatNs = NowNs >= SubmitNs ? NowNs - SubmitNs : 0;
      Done = true;
    }
    CV.notify_all();
    return true;
  }

  u64 SubmitNs = 0;   ///< Set once by submit() before the handle is shared.
  u64 DeadlineNs = 0; ///< Absolute nowNs() deadline; 0 = none. Set once by
                      ///< submit() before the handle is shared.
  /// Stats sink for the self-timeout path. A shared_ptr (not a raw
  /// pointer into the service) so a client blocked in wait() past the
  /// service's destruction still has somewhere safe to count.
  std::shared_ptr<ServiceStats> Stats;

private:
  void completeTimeoutLocked(u64 NowNs) TPDE_REQUIRES(Mtx) {
    St.clear();
    St.Err = support::CompileErr::DeadlineExceeded;
    St.Message = "deadline expired waiting for in-flight compile";
    Code = nullptr;
    Hit = false;
    LatNs = NowNs >= SubmitNs ? NowNs - SubmitNs : 0;
    Done = true;
    if (Stats)
      Stats->DeadlineTimedOut.fetch_add(1, std::memory_order_relaxed);
    CV.notify_all();
  }

  mutable Mutex Mtx;
  mutable CondVar CV;
  bool Done TPDE_GUARDED_BY(Mtx) = false;
  bool Hit TPDE_GUARDED_BY(Mtx) = false;
  support::CompileStatus St TPDE_GUARDED_BY(Mtx);
  std::shared_ptr<CachedCode> Code TPDE_GUARDED_BY(Mtx);
  u64 LatNs TPDE_GUARDED_BY(Mtx) = 0;
};

using ResultPtr = std::shared_ptr<ServiceResult>;

/// Fingerprint -> mapped code, with single-flight claim semantics.
/// Thread-safe; all state behind one mutex (operations are O(1) map
/// probes except the eviction scan, see evictLocked()). Waiter
/// completion always happens *outside* the lock: publish()/fail() hand
/// the waiter list back to the caller.
class CodeCache {
public:
  explicit CodeCache(u64 BudgetBytes)
      : Budget(BudgetBytes), StatsP(std::make_shared<ServiceStats>()) {}

  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  enum class Claim : u8 {
    Hit,    ///< Ready entry found; HitCode is set, stats bumped.
    Owner,  ///< Caller claimed the fingerprint and must compile + publish
            ///< (or fail) it.
    Waiter, ///< A compile is in flight; Res was attached and will be
            ///< completed by the owner.
  };

  /// Single-flight admission for \p Fp on behalf of result handle \p Res.
  /// An Owner claim hands back an ownership token in \p OwnerToken; the
  /// matching publish()/fail() must present it. The token lets the
  /// watchdog fail over a hung owner's claim: the stale owner's eventual
  /// publish/fail then misses (returns false) instead of clobbering a
  /// re-claimed entry.
  Claim claim(const support::Fp128 &Fp, const ResultPtr &Res,
              std::shared_ptr<CachedCode> &HitCode, u64 &OwnerToken)
      TPDE_EXCLUDES(Mtx);

  /// Publishes the owner's compiled code for \p Fp, evicts down to the
  /// byte budget, and moves the entry's waiters into \p Waiters for the
  /// caller to complete outside the lock. Returns false — with nothing
  /// changed — when the claim was failed over (token mismatch or entry
  /// gone); the caller's result handle was already completed then.
  bool publish(const support::Fp128 &Fp, u64 OwnerToken,
               std::shared_ptr<CachedCode> Code,
               std::vector<ResultPtr> &Waiters) TPDE_EXCLUDES(Mtx);

  /// Removes the in-flight entry for \p Fp after a failed compile — the
  /// cache is never poisoned by failures; a later submit of the same
  /// fingerprint compiles again. Waiters are handed back as in publish().
  /// Token-guarded like publish(). When \p OwnerRes is non-null the
  /// entry's owner handle is moved out too (the watchdog fail-over path
  /// completes the hung owner's submitter as well as the waiters).
  bool fail(const support::Fp128 &Fp, u64 OwnerToken,
            std::vector<ResultPtr> &Waiters, ResultPtr *OwnerRes = nullptr)
      TPDE_EXCLUDES(Mtx);

  ServiceStats &stats() { return *StatsP; }
  /// The stats sink as a shared handle — outlives the cache, so result
  /// handles can count self-timeouts after service teardown.
  std::shared_ptr<ServiceStats> statsPtr() const { return StatsP; }
  ServiceStatsSnapshot snapshot() const;

  u64 budgetBytes() const { return Budget; }
  size_t entryCount() const TPDE_EXCLUDES(Mtx) {
    LockGuard L(Mtx);
    return Map.size();
  }

private:
  enum class State : u8 { Building, Ready };
  struct Entry {
    State St = State::Building;
    std::shared_ptr<CachedCode> Code;
    u64 LastUse = 0;
    u64 Token = 0;      ///< Owner token while Building.
    ResultPtr OwnerRes; ///< The owner's handle while Building (fail-over).
    std::vector<ResultPtr> Waiters;
  };

  /// Evicts the lowest-LastUse Ready entries (never the one named by
  /// \p Keep, never Building entries) until CachedBytes <= Budget or
  /// nothing evictable remains. O(entries) scan per eviction — fine at
  /// cache sizes where eviction is rare; called with Mtx held.
  void evictLocked(const support::Fp128 &Keep) TPDE_REQUIRES(Mtx);

  const u64 Budget;
  /// Innermost service-layer lock. The documented acquisition order is
  /// CompileService's per-worker ClaimsMtx strictly before this; the rank
  /// makes Debug builds assert that order dynamically (the static side
  /// lives in CompileService's ClaimsMtx declaration).
  mutable Mutex Mtx{LockRank::ServiceCache};
  std::unordered_map<support::Fp128, Entry, support::Fp128Hash>
      Map TPDE_GUARDED_BY(Mtx);
  /// Epoch counter: bumped per touch, stamps LastUse.
  u64 Clock TPDE_GUARDED_BY(Mtx) = 0;
  /// Owner-token source; bumped per Owner claim.
  u64 NextToken TPDE_GUARDED_BY(Mtx) = 0;
  std::shared_ptr<ServiceStats> StatsP;
};

} // namespace tpde::service

#endif // TPDE_SERVICE_CODECACHE_H
