//===- bench/encoder_microbench.cpp - x86-64 encoder throughput -----------===//
///
/// google-benchmark micro-benchmarks for the direct x86-64 encoder. The
/// paper avoids LLVM-MC "due to its subpar performance" (§4.1.3); these
/// numbers document what the in-house encoder achieves per instruction.
///
//===----------------------------------------------------------------------===//

#include "x64/Encoder.h"

#include <benchmark/benchmark.h>

using namespace tpde;
using namespace tpde::x64;

static void BM_EncodeAluRR(benchmark::State &State) {
  asmx::Assembler A;
  Emitter E(A);
  for (auto _ : State) {
    if (A.text().size() > (1u << 20))
      A.text().Data.clear();
    E.aluRR(AluOp::Add, 8, RAX, RBX);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_EncodeAluRR);

static void BM_EncodeLoadStore(benchmark::State &State) {
  asmx::Assembler A;
  Emitter E(A);
  for (auto _ : State) {
    if (A.text().size() > (1u << 20))
      A.text().Data.clear();
    E.load(8, RAX, Mem(RBP, -40));
    E.store(8, Mem(RBP, -48), RAX);
  }
  State.SetItemsProcessed(2 * State.iterations());
}
BENCHMARK(BM_EncodeLoadStore);

static void BM_EncodeJumpWithLabel(benchmark::State &State) {
  for (auto _ : State) {
    asmx::Assembler A;
    Emitter E(A);
    asmx::Label L = A.makeLabel();
    E.jccLabel(Cond::E, L);
    E.nops(4);
    A.bindLabel(L);
    benchmark::DoNotOptimize(A.text().Data.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_EncodeJumpWithLabel);

static void BM_EncodeMovImm(benchmark::State &State) {
  asmx::Assembler A;
  Emitter E(A);
  u64 V = 1;
  for (auto _ : State) {
    if (A.text().size() > (1u << 20))
      A.text().Data.clear();
    E.movRI(RCX, V);
    V = V * 6364136223846793005ull + 1;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_EncodeMovImm);

BENCHMARK_MAIN();
