//===- bench/service_throughput.cpp - Compile-service bench ---------------===//
///
/// Open-loop workload against the UIR compile service (docs/SERVICE.md):
/// a fixed pool of distinct single-query modules is submitted repeatedly
/// at a configurable arrival rate, without waiting for results between
/// submissions — queueing delay is part of the measured latency, exactly
/// as a serving system experiences it. First touch of each pool entry is
/// a compulsory miss; every revisit must hit the content-addressed cache.
///
/// Reports hit ratio, sustained jobs/sec, hit and miss latency p50/p99
/// (from the service's allocation-free histograms), and the p50 hit
/// speedup (miss p50 / hit p50). Emits BENCH_service_throughput.json for
/// scripts/check_bench_regression.py, which gates:
///   * hit_ratio >= 0.9            (absolute),
///   * hit_speedup_p50 >= 10       (absolute — a hit must amortize),
///   * miss/hit p99 vs the committed baseline (generous relative floor),
///   * fault_injection == false    (hooks compiled out in default builds).
///
/// Flags: --jobs=N --distinct=D --workers=W --rate=R (jobs/sec, 0 = no
/// pacing) --budget-mb=B.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"
#include "support/Timer.h"
#include "uir/Service.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace tpde;

namespace {

/// Distinct single-query modules: variant-dependent plan constants give
/// each pool entry its own fingerprint and its own exported symbol.
uir::UModule makePoolModule(u32 I) {
  uir::QueryPlan P;
  P.Name = "svc_q" + std::to_string(I);
  P.Preds = {{1, uir::UOp::CmpLt, 100 + static_cast<i64>(I) * 7},
             {2 + I % 3, uir::UOp::CmpNe, 13 + static_cast<i64>(I)}};
  P.AggColA = I % 4;
  P.AggColB = 4 + I % 2;
  P.AggK = static_cast<i64>(I);
  uir::UModule M;
  uir::compilePlan(M, P);
  return M;
}

struct Options {
  unsigned Jobs = 640;
  unsigned Distinct = 32;
  unsigned Workers = 2;
  double Rate = 0.0; // jobs/sec arrival pacing; 0 = submit back-to-back
  u64 BudgetMb = 64;
};

unsigned parseU(const char *S, const char *What) {
  char *End = nullptr;
  unsigned long V = std::strtoul(S, &End, 10);
  if (!End || *End || V == 0) {
    std::fprintf(stderr, "invalid %s value '%s'\n", What, S);
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!std::strncmp(Arg, "--jobs=", 7))
      O.Jobs = parseU(Arg + 7, "--jobs");
    else if (!std::strncmp(Arg, "--distinct=", 11))
      O.Distinct = parseU(Arg + 11, "--distinct");
    else if (!std::strncmp(Arg, "--workers=", 10))
      O.Workers = parseU(Arg + 10, "--workers");
    else if (!std::strncmp(Arg, "--rate=", 7))
      O.Rate = std::atof(Arg + 7);
    else if (!std::strncmp(Arg, "--budget-mb=", 12))
      O.BudgetMb = parseU(Arg + 12, "--budget-mb");
    else {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--distinct=D] [--workers=W] "
                   "[--rate=R] [--budget-mb=B]\n",
                   argv[0]);
      return 2;
    }
  }
  if (O.Distinct > O.Jobs)
    O.Distinct = O.Jobs;

  service::ServiceOptions SO;
  SO.NumWorkers = O.Workers;
  SO.CacheBudgetBytes = O.BudgetMb * 1024 * 1024;
  uir::UirCompileService Svc(SO);

  // Deterministic interleaved arrival order: walk the pool with an
  // odd stride so distinct fingerprints mix instead of arriving in
  // D-sized runs (closer to a real query mix, and it exercises the
  // cache under interleaving rather than phased warmup).
  std::vector<service::ResultPtr> Results;
  Results.reserve(O.Jobs);
  const u64 PeriodNs =
      O.Rate > 0 ? static_cast<u64>(1e9 / O.Rate) : 0;
  const u64 StartNs = nowNs();
  u64 NextDue = StartNs;
  for (unsigned I = 0; I < O.Jobs; ++I) {
    if (PeriodNs) {
      // Open loop: arrivals are scheduled on the wall clock, never
      // delayed by a slow service (a late tick fires immediately).
      while (nowNs() < NextDue)
        std::this_thread::yield();
      NextDue += PeriodNs;
    }
    u32 Pick = static_cast<u32>((I * 7) % O.Distinct);
    Results.push_back(Svc.submit(makePoolModule(Pick)));
  }
  for (auto &R : Results)
    R->wait();
  const u64 ElapsedNs = nowNs() - StartNs;
  Svc.shutdown();

  unsigned Failed = 0;
  for (auto &R : Results)
    if (!R->ok())
      ++Failed;
  if (Failed) {
    std::fprintf(stderr, "%u job(s) failed; first: %s\n", Failed,
                 Results[0]->status().Message.c_str());
    return 1;
  }

  service::ServiceStatsSnapshot S = Svc.stats();
  const double Served = static_cast<double>(S.Hits + S.Misses + S.Coalesced);
  const double HitRatio =
      Served > 0 ? static_cast<double>(S.Hits + S.Coalesced) / Served : 0;
  const double JobsPerSec =
      static_cast<double>(O.Jobs) * 1e9 / static_cast<double>(ElapsedNs);
  const double HitSpeedup =
      S.HitP50Ns > 0 ? static_cast<double>(S.MissP50Ns) /
                           static_cast<double>(S.HitP50Ns)
                     : 0;

  std::printf("service_throughput: %u jobs over %u distinct modules, "
              "%u worker(s), rate %s\n",
              O.Jobs, O.Distinct, O.Workers,
              O.Rate > 0 ? (std::to_string(O.Rate) + "/s").c_str()
                         : "unpaced");
  std::printf("  hits %llu  misses %llu  coalesced %llu  evictions %llu  "
              "cached %llu entries / %llu bytes\n",
              (unsigned long long)S.Hits, (unsigned long long)S.Misses,
              (unsigned long long)S.Coalesced,
              (unsigned long long)S.Evictions,
              (unsigned long long)S.CachedEntries,
              (unsigned long long)S.CachedBytes);
  std::printf("  hit ratio %.3f  jobs/sec %.0f\n", HitRatio, JobsPerSec);
  std::printf("  hit  latency p50 %8llu ns   p99 %8llu ns\n",
              (unsigned long long)S.HitP50Ns, (unsigned long long)S.HitP99Ns);
  std::printf("  miss latency p50 %8llu ns   p99 %8llu ns\n",
              (unsigned long long)S.MissP50Ns,
              (unsigned long long)S.MissP99Ns);
  std::printf("  hit speedup (miss p50 / hit p50): %.1fx\n", HitSpeedup);

  FILE *F = std::fopen("BENCH_service_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_service_throughput.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"service_throughput\",\n"
               "  \"jobs\": %u,\n  \"distinct_modules\": %u,\n"
               "  \"workers\": %u,\n  \"rate_jobs_per_sec\": %.1f,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"fault_injection\": %s,\n"
               "  \"service\": {\n"
               "    \"hit_ratio\": %.4f,\n"
               "    \"hits\": %llu,\n    \"misses\": %llu,\n"
               "    \"coalesced\": %llu,\n    \"evictions\": %llu,\n"
               "    \"failed\": %llu,\n"
               "    \"jobs_per_sec\": %.1f,\n"
               "    \"hit_p50_ns\": %llu,\n    \"hit_p99_ns\": %llu,\n"
               "    \"miss_p50_ns\": %llu,\n    \"miss_p99_ns\": %llu,\n"
               "    \"hit_speedup_p50\": %.2f\n"
               "  }\n}\n",
               O.Jobs, O.Distinct, O.Workers, O.Rate,
               std::thread::hardware_concurrency(),
               support::faultInjectionEnabled() ? "true" : "false", HitRatio,
               (unsigned long long)S.Hits, (unsigned long long)S.Misses,
               (unsigned long long)S.Coalesced,
               (unsigned long long)S.Evictions,
               (unsigned long long)S.Failed, JobsPerSec,
               (unsigned long long)S.HitP50Ns, (unsigned long long)S.HitP99Ns,
               (unsigned long long)S.MissP50Ns,
               (unsigned long long)S.MissP99Ns, HitSpeedup);
  std::fclose(F);
  std::printf("wrote BENCH_service_throughput.json\n");
  return 0;
}
