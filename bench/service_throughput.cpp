//===- bench/service_throughput.cpp - Compile-service bench ---------------===//
///
/// Open-loop workload against the UIR compile service (docs/SERVICE.md):
/// a fixed pool of distinct single-query modules is submitted repeatedly
/// at a configurable arrival rate, without waiting for results between
/// submissions — queueing delay is part of the measured latency, exactly
/// as a serving system experiences it. First touch of each pool entry is
/// a compulsory miss; every revisit must hit the content-addressed cache.
///
/// Reports hit ratio, sustained jobs/sec, hit and miss latency p50/p99
/// (from the service's allocation-free histograms), and the p50 hit
/// speedup (miss p50 / hit p50).
///
/// A second phase drives a *deliberately overloaded* service: a fresh
/// instance with a small admission ring receives all-distinct jobs (no
/// hits) at twice its estimated compile capacity, each with a deadline,
/// via trySubmit. The phase measures the overload-control contract
/// (docs/SERVICE.md, "Overload control"): every job must complete — with
/// code or a *labelled* Overloaded/DeadlineExceeded error — nothing may
/// hang, and load must actually be shed.
///
/// Emits BENCH_service_throughput.json for
/// scripts/check_bench_regression.py, which gates:
///   * hit_ratio >= 0.9            (absolute),
///   * hit_speedup_p50 >= 10       (absolute — a hit must amortize),
///   * miss/hit p99 vs the committed baseline (generous relative floor),
///   * fault_injection == false    (hooks compiled out in default builds),
///   * overload: hung == 0, other_failed == 0, shed_rate > 0.
///
/// Flags: --jobs=N --distinct=D --workers=W --rate=R (jobs/sec, 0 = no
/// pacing) --budget-mb=B.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"
#include "support/Timer.h"
#include "uir/Service.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace tpde;

namespace {

/// Distinct single-query modules: variant-dependent plan constants give
/// each pool entry its own fingerprint and its own exported symbol.
uir::UModule makePoolModule(u32 I) {
  uir::QueryPlan P;
  P.Name = "svc_q" + std::to_string(I);
  P.Preds = {{1, uir::UOp::CmpLt, 100 + static_cast<i64>(I) * 7},
             {2 + I % 3, uir::UOp::CmpNe, 13 + static_cast<i64>(I)}};
  P.AggColA = I % 4;
  P.AggColB = 4 + I % 2;
  P.AggK = static_cast<i64>(I);
  uir::UModule M;
  uir::compilePlan(M, P);
  return M;
}

struct Options {
  unsigned Jobs = 640;
  unsigned Distinct = 32;
  unsigned Workers = 2;
  double Rate = 0.0; // jobs/sec arrival pacing; 0 = submit back-to-back
  u64 BudgetMb = 64;
};

unsigned parseU(const char *S, const char *What) {
  char *End = nullptr;
  unsigned long V = std::strtoul(S, &End, 10);
  if (!End || *End || V == 0) {
    std::fprintf(stderr, "invalid %s value '%s'\n", What, S);
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!std::strncmp(Arg, "--jobs=", 7))
      O.Jobs = parseU(Arg + 7, "--jobs");
    else if (!std::strncmp(Arg, "--distinct=", 11))
      O.Distinct = parseU(Arg + 11, "--distinct");
    else if (!std::strncmp(Arg, "--workers=", 10))
      O.Workers = parseU(Arg + 10, "--workers");
    else if (!std::strncmp(Arg, "--rate=", 7))
      O.Rate = std::atof(Arg + 7);
    else if (!std::strncmp(Arg, "--budget-mb=", 12))
      O.BudgetMb = parseU(Arg + 12, "--budget-mb");
    else {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--distinct=D] [--workers=W] "
                   "[--rate=R] [--budget-mb=B]\n",
                   argv[0]);
      return 2;
    }
  }
  if (O.Distinct > O.Jobs)
    O.Distinct = O.Jobs;

  service::ServiceOptions SO;
  SO.NumWorkers = O.Workers;
  SO.CacheBudgetBytes = O.BudgetMb * 1024 * 1024;
  uir::UirCompileService Svc(SO);

  // Deterministic interleaved arrival order: walk the pool with an
  // odd stride so distinct fingerprints mix instead of arriving in
  // D-sized runs (closer to a real query mix, and it exercises the
  // cache under interleaving rather than phased warmup).
  std::vector<service::ResultPtr> Results;
  Results.reserve(O.Jobs);
  const u64 PeriodNs =
      O.Rate > 0 ? static_cast<u64>(1e9 / O.Rate) : 0;
  const u64 StartNs = nowNs();
  u64 NextDue = StartNs;
  for (unsigned I = 0; I < O.Jobs; ++I) {
    if (PeriodNs) {
      // Open loop: arrivals are scheduled on the wall clock, never
      // delayed by a slow service (a late tick fires immediately).
      while (nowNs() < NextDue)
        std::this_thread::yield();
      NextDue += PeriodNs;
    }
    u32 Pick = static_cast<u32>((I * 7) % O.Distinct);
    Results.push_back(Svc.submit(makePoolModule(Pick)));
  }
  for (auto &R : Results)
    R->wait();
  const u64 ElapsedNs = nowNs() - StartNs;
  Svc.shutdown();

  unsigned Failed = 0;
  for (auto &R : Results)
    if (!R->ok())
      ++Failed;
  if (Failed) {
    std::fprintf(stderr, "%u job(s) failed; first: %s\n", Failed,
                 Results[0]->status().Message.c_str());
    return 1;
  }

  service::ServiceStatsSnapshot S = Svc.stats();
  const double Served = static_cast<double>(S.Hits + S.Misses + S.Coalesced);
  const double HitRatio =
      Served > 0 ? static_cast<double>(S.Hits + S.Coalesced) / Served : 0;
  const double JobsPerSec =
      static_cast<double>(O.Jobs) * 1e9 / static_cast<double>(ElapsedNs);
  const double HitSpeedup =
      S.HitP50Ns > 0 ? static_cast<double>(S.MissP50Ns) /
                           static_cast<double>(S.HitP50Ns)
                     : 0;

  std::printf("service_throughput: %u jobs over %u distinct modules, "
              "%u worker(s), rate %s\n",
              O.Jobs, O.Distinct, O.Workers,
              O.Rate > 0 ? (std::to_string(O.Rate) + "/s").c_str()
                         : "unpaced");
  std::printf("  hits %llu  misses %llu  coalesced %llu  evictions %llu  "
              "cached %llu entries / %llu bytes\n",
              (unsigned long long)S.Hits, (unsigned long long)S.Misses,
              (unsigned long long)S.Coalesced,
              (unsigned long long)S.Evictions,
              (unsigned long long)S.CachedEntries,
              (unsigned long long)S.CachedBytes);
  std::printf("  hit ratio %.3f  jobs/sec %.0f\n", HitRatio, JobsPerSec);
  std::printf("  hit  latency p50 %8llu ns   p99 %8llu ns\n",
              (unsigned long long)S.HitP50Ns, (unsigned long long)S.HitP99Ns);
  std::printf("  miss latency p50 %8llu ns   p99 %8llu ns\n",
              (unsigned long long)S.MissP50Ns,
              (unsigned long long)S.MissP99Ns);
  std::printf("  hit speedup (miss p50 / hit p50): %.1fx\n", HitSpeedup);

  // --- overload phase ------------------------------------------------------
  // A fresh service with a small admission ring, fed all-distinct jobs
  // (forced misses) at ~2x its compile capacity. Capacity is calibrated
  // from solo compile+map cost — the service's end-to-end miss latency
  // would overestimate it, because it includes queueing delay.
  u64 CalibNs;
  {
    const u64 T0 = nowNs();
    for (u32 I = 0; I < 8; ++I) {
      uir::UModule M = makePoolModule(2'000'000 + I);
      asmx::Assembler Asm;
      if (!uir::compileTpdeUir(M, Asm))
        return 1;
      asmx::JITMapper JIT;
      if (!JIT.map(Asm))
        return 1;
    }
    CalibNs = (nowNs() - T0) / 8;
    if (CalibNs < 1'000)
      CalibNs = 1'000;
  }
  const double CapacityJps =
      static_cast<double>(O.Workers) * 1e9 / static_cast<double>(CalibNs);
  const double ArrivalJps = 2.0 * CapacityJps;
  const unsigned OverJobs = O.Jobs;
  const u64 OverPeriodNs = static_cast<u64>(1e9 / ArrivalJps);
  const u64 OverDeadlineSpanNs = 50 * CalibNs;

  service::ServiceOptions OSO;
  OSO.NumWorkers = O.Workers;
  OSO.QueueCapacity = 64;
  OSO.CacheBudgetBytes = O.BudgetMb * 1024 * 1024;
  unsigned Hung = 0, OverServed = 0, ShedOverloaded = 0, ShedDeadline = 0,
           OtherFailed = 0;
  service::ServiceStatsSnapshot OS;
  {
    uir::UirCompileService OverSvc(OSO);
    std::vector<service::ResultPtr> OverResults;
    OverResults.reserve(OverJobs);
    u64 Due = nowNs();
    u64 LastDeadline = 0;
    for (unsigned I = 0; I < OverJobs; ++I) {
      while (nowNs() < Due)
        std::this_thread::yield();
      Due += OverPeriodNs;
      u64 Deadline = nowNs() + OverDeadlineSpanNs;
      LastDeadline = Deadline;
      // Pool offset past phase 1's modules: every job is a distinct
      // fingerprint, so nothing hides behind the cache.
      OverResults.push_back(OverSvc.trySubmit(
          makePoolModule(1'000'000 + I),
          {.Tenant = 1 + I % 4, .DeadlineNs = Deadline}));
    }
    // Hang detection: after the last deadline plus generous slack, every
    // job must have been completed by the service itself (shed, failed,
    // or served) — without any client calling wait().
    const u64 FailsafeNs = LastDeadline + 2'000'000'000;
    for (auto &R : OverResults) {
      while (!R->done() && nowNs() < FailsafeNs)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (!R->done()) {
        ++Hung;
        R->wait(); // deadline self-timeout resolves it; still counted hung
      }
      if (R->ok()) {
        ++OverServed;
      } else if (R->status().Err == support::CompileErr::Overloaded) {
        ++ShedOverloaded;
      } else if (R->status().Err == support::CompileErr::DeadlineExceeded) {
        ++ShedDeadline;
      } else {
        ++OtherFailed;
      }
    }
    OS = OverSvc.stats();
  }
  const double ShedRate =
      static_cast<double>(ShedOverloaded + ShedDeadline) / OverJobs;

  std::printf("overload phase: %u all-distinct jobs at %.0f/s "
              "(~2x capacity %.0f/s), ring 64, deadline %llu ns\n",
              OverJobs, ArrivalJps, CapacityJps,
              (unsigned long long)OverDeadlineSpanNs);
  std::printf("  served %u  shed(overloaded) %u  shed(deadline) %u  "
              "other-failed %u  hung %u  shed rate %.3f\n",
              OverServed, ShedOverloaded, ShedDeadline, OtherFailed, Hung,
              ShedRate);
  std::printf("  queue wait p50 %8llu ns   p99 %8llu ns\n",
              (unsigned long long)OS.QueueWaitP50Ns,
              (unsigned long long)OS.QueueWaitP99Ns);

  FILE *F = std::fopen("BENCH_service_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_service_throughput.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"service_throughput\",\n"
               "  \"jobs\": %u,\n  \"distinct_modules\": %u,\n"
               "  \"workers\": %u,\n  \"rate_jobs_per_sec\": %.1f,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"fault_injection\": %s,\n"
               "  \"service\": {\n"
               "    \"hit_ratio\": %.4f,\n"
               "    \"hits\": %llu,\n    \"misses\": %llu,\n"
               "    \"coalesced\": %llu,\n    \"evictions\": %llu,\n"
               "    \"failed\": %llu,\n"
               "    \"jobs_per_sec\": %.1f,\n"
               "    \"hit_p50_ns\": %llu,\n    \"hit_p99_ns\": %llu,\n"
               "    \"miss_p50_ns\": %llu,\n    \"miss_p99_ns\": %llu,\n"
               "    \"hit_speedup_p50\": %.2f\n"
               "  },\n"
               "  \"overload\": {\n"
               "    \"jobs\": %u,\n"
               "    \"arrival_jobs_per_sec\": %.1f,\n"
               "    \"capacity_est_jobs_per_sec\": %.1f,\n"
               "    \"served\": %u,\n"
               "    \"shed_overloaded\": %u,\n"
               "    \"shed_deadline\": %u,\n"
               "    \"other_failed\": %u,\n"
               "    \"hung\": %u,\n"
               "    \"shed_rate\": %.4f,\n"
               "    \"queue_wait_p50_ns\": %llu,\n"
               "    \"queue_wait_p99_ns\": %llu\n"
               "  }\n}\n",
               O.Jobs, O.Distinct, O.Workers, O.Rate,
               std::thread::hardware_concurrency(),
               support::faultInjectionEnabled() ? "true" : "false", HitRatio,
               (unsigned long long)S.Hits, (unsigned long long)S.Misses,
               (unsigned long long)S.Coalesced,
               (unsigned long long)S.Evictions,
               (unsigned long long)S.Failed, JobsPerSec,
               (unsigned long long)S.HitP50Ns, (unsigned long long)S.HitP99Ns,
               (unsigned long long)S.MissP50Ns,
               (unsigned long long)S.MissP99Ns, HitSpeedup, OverJobs,
               ArrivalJps, CapacityJps, OverServed, ShedOverloaded,
               ShedDeadline, OtherFailed, Hung, ShedRate,
               (unsigned long long)OS.QueueWaitP50Ns,
               (unsigned long long)OS.QueueWaitP99Ns);
  std::fclose(F);
  std::printf("wrote BENCH_service_throughput.json\n");
  return 0;
}
