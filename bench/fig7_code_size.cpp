//===- bench/fig7_code_size.cpp - Paper Fig. 7 reproduction ---------------===//
///
/// .text size of TPDE- and copy-and-patch-generated code relative to the
/// baseline -O0 back-end. Expected shape (paper Fig. 7): TPDE moderately
/// larger (geomean +43% on x86-64, driven by pessimistic prologues that
/// reserve space for all callee-saved registers); copy-and-patch several
/// times larger (geomean 4.44x).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  std::printf("=== Fig. 7: .text size relative to baseline -O0 ===\n");
  std::printf("%-16s %12s %12s %12s | %8s %8s\n", "benchmark", "base-O0[B]",
              "TPDE[B]", "C&P[B]", "TPDE x", "C&P x");
  std::vector<double> TpdeR, CpR;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/true)) {
    tir::Module M;
    workloads::genModule(M, NP.P);
    Measurement B0 = measure(Backend::BaselineO0, M, 1, 0);
    Measurement Tp = measure(Backend::Tpde, M, 1, 0);
    Measurement Cp = measure(Backend::CopyPatch, M, 1, 0);
    double R1 = double(Tp.TextBytes) / double(B0.TextBytes);
    double R2 = double(Cp.TextBytes) / double(B0.TextBytes);
    TpdeR.push_back(R1);
    CpR.push_back(R2);
    std::printf("%-16s %12llu %12llu %12llu | %8.2f %8.2f\n", NP.Name,
                (unsigned long long)B0.TextBytes,
                (unsigned long long)Tp.TextBytes,
                (unsigned long long)Cp.TextBytes, R1, R2);
  }
  std::printf("%-16s %12s %12s %12s | %8.2f %8.2f\n", "geomean", "", "", "",
              geomean(TpdeR), geomean(CpR));
  std::printf("\npaper: TPDE 1.43x (x86-64); copy-and-patch 4.44x.\n");
  return 0;
}
