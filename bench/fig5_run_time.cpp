//===- bench/fig5_run_time.cpp - Paper Fig. 5b reproduction ---------------===//
///
/// Run-time speedup of generated code relative to the baseline -O0
/// back-end on unoptimized IR. Expected shape (paper Fig. 5b): TPDE code
/// on par with -O0 (±9% in the paper); copy-and-patch code substantially
/// slower (geomean 2.38x slowdown in the paper) due to fixed registers
/// and the missing liveness analysis.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  std::printf("=== Fig. 5b: run-time speedup vs baseline -O0 "
              "(unoptimized IR, x86-64) ===\n");
  std::printf("%-16s %12s %12s %12s | %8s %8s\n", "benchmark", "base-O0[ms]",
              "TPDE[ms]", "C&P[ms]", "TPDE x", "C&P x");
  std::vector<double> TpdeSp, CpSp;
  const unsigned Reps = 600;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/true)) {
    tir::Module M;
    workloads::genModule(M, NP.P);
    Measurement B0 = measure(Backend::BaselineO0, M, 1, Reps);
    Measurement Tp = measure(Backend::Tpde, M, 1, Reps);
    Measurement Cp = measure(Backend::CopyPatch, M, 1, Reps);
    double S1 = B0.RunMs / Tp.RunMs;
    double S2 = B0.RunMs / Cp.RunMs;
    TpdeSp.push_back(S1);
    CpSp.push_back(S2);
    std::printf("%-16s %12.3f %12.3f %12.3f | %8.2f %8.2f\n", NP.Name,
                B0.RunMs, Tp.RunMs, Cp.RunMs, S1, S2);
  }
  std::printf("%-16s %12s %12s %12s | %8.2f %8.2f\n", "geomean", "", "", "",
              geomean(TpdeSp), geomean(CpSp));
  std::printf("\npaper: TPDE within +-9%% of LLVM -O0; copy-and-patch "
              "geomean 2.38x slower.\n");
  return 0;
}
