//===- bench/BenchCommon.h - Shared figure-reproduction helpers -*- C++ -*-===//
///
/// \file
/// Helpers shared by the benchmark binaries that regenerate the paper's
/// figures: backend-uniform compile/run/size measurement over the
/// SPEC-like workload modules.
///
//===----------------------------------------------------------------------===//

#ifndef TPDE_BENCH_BENCHCOMMON_H
#define TPDE_BENCH_BENCHCOMMON_H

#include "asmx/JITMapper.h"
#include "baseline/Baseline.h"
#include "copypatch/CopyPatch.h"
#include "support/Timer.h"
#include "tpde_tir/TirCompilerX64.h"
#include "workloads/Generator.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace tpde::bench {

enum class Backend { BaselineO0, BaselineO1, Tpde, CopyPatch };

inline const char *backendName(Backend B) {
  switch (B) {
  case Backend::BaselineO0:
    return "Baseline-O0";
  case Backend::BaselineO1:
    return "Baseline-O1";
  case Backend::Tpde:
    return "TPDE";
  case Backend::CopyPatch:
    return "Copy&Patch";
  }
  return "?";
}

inline bool compileWith(Backend B, tir::Module &M, asmx::Assembler &Asm) {
  switch (B) {
  case Backend::BaselineO0:
    return baseline::compileModule(M, Asm, baseline::OptLevel::O0);
  case Backend::BaselineO1:
    return baseline::compileModule(M, Asm, baseline::OptLevel::O1);
  case Backend::Tpde:
    return tpde_tir::compileModuleX64(M, Asm);
  case Backend::CopyPatch:
    return copypatch::compileModule(M, Asm);
  }
  return false;
}

struct Measurement {
  double CompileMs = 0;
  u64 TextBytes = 0;
  double RunMs = 0;
};

/// Median compile time over \p Iters fresh compilations plus one
/// measured execution of main_entry.
inline Measurement measure(Backend B, tir::Module &M, unsigned CompileIters,
                           unsigned RunIters) {
  Measurement Out;
  std::vector<double> Times;
  for (unsigned I = 0; I < CompileIters; ++I) {
    asmx::Assembler Asm;
    Timer T;
    T.start();
    bool OK = compileWith(B, M, Asm);
    T.stop();
    if (!OK) {
      std::fprintf(stderr, "compilation failed (%s)\n", backendName(B));
      std::exit(1);
    }
    Times.push_back(T.ms());
    if (I == 0)
      Out.TextBytes = Asm.text().size();
  }
  std::sort(Times.begin(), Times.end());
  Out.CompileMs = Times[Times.size() / 2];

  if (RunIters) {
    asmx::Assembler Asm;
    compileWith(B, M, Asm);
    asmx::JITMapper JIT;
    if (!JIT.map(Asm)) {
      std::fprintf(stderr, "mapping failed (%s)\n", backendName(B));
      std::exit(1);
    }
    auto *F = reinterpret_cast<u64 (*)(u64, u64)>(JIT.address("main_entry"));
    volatile u64 Sink = 0;
    // Warmup.
    for (unsigned I = 0; I < RunIters / 10 + 1; ++I)
      Sink = Sink ^ F(I, I * 3 + 1);
    Timer T;
    T.start();
    for (unsigned I = 0; I < RunIters; ++I)
      Sink = Sink ^ F(I, I * 3 + 1);
    T.stop();
    (void)Sink;
    Out.RunMs = T.ms();
  }
  return Out;
}

inline double geomean(const std::vector<double> &V) {
  double S = 0;
  for (double X : V)
    S += std::log(X);
  return std::exp(S / static_cast<double>(V.size()));
}

} // namespace tpde::bench

#endif // TPDE_BENCH_BENCHCOMMON_H
