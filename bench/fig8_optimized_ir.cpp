//===- bench/fig8_optimized_ir.cpp - Paper Fig. 8 reproduction ------------===//
///
/// Compile-time and run-time on optimized ("-O1 flavor", SSA-form) IR,
/// normalized to the baseline -O1 back-end. Expected shape (paper Fig. 8):
/// TPDE's compile-time speedup grows further (the -O1 pipeline runs
/// liveness + global linear scan); TPDE's code is slightly faster than
/// -O0-quality output but clearly slower than -O1 output (paper: 1.54x
/// slower on x86-64).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  std::printf("=== Fig. 8: optimized (-O1 flavor) IR, vs baseline -O1 ===\n");
  std::printf("%-16s | %10s %10s | %10s %10s %10s\n", "benchmark",
              "ct-O1[ms]", "ct-TPDE", "rt-O1[ms]", "rt-O0[ms]", "rt-TPDE");
  std::vector<double> CtSp, RtVsO1, RtVsO0;
  const unsigned Reps = 600;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/false)) {
    tir::Module M;
    workloads::genModule(M, NP.P);
    Measurement B1 = measure(Backend::BaselineO1, M, 5, Reps);
    Measurement B0 = measure(Backend::BaselineO0, M, 1, Reps);
    Measurement Tp = measure(Backend::Tpde, M, 5, Reps);
    CtSp.push_back(B1.CompileMs / Tp.CompileMs);
    RtVsO1.push_back(B1.RunMs / Tp.RunMs);
    RtVsO0.push_back(B0.RunMs / Tp.RunMs);
    std::printf("%-16s | %10.3f %10.3f | %10.3f %10.3f %10.3f\n", NP.Name,
                B1.CompileMs, Tp.CompileMs, B1.RunMs, B0.RunMs, Tp.RunMs);
  }
  std::printf("\ngeomean compile-time speedup vs -O1: %.2fx "
              "(paper: 85.8x vs LLVM -O1)\n",
              geomean(CtSp));
  std::printf("geomean run-time vs -O1: %.2fx (paper: TPDE 1/1.54x = 0.65)\n",
              geomean(RtVsO1));
  std::printf("geomean run-time vs -O0: %.2fx (paper: 1.05x)\n",
              geomean(RtVsO0));
  return 0;
}
