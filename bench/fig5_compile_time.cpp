//===- bench/fig5_compile_time.cpp - Paper Fig. 5a reproduction -----------===//
///
/// Back-end compile-time speedup over the baseline -O0 pipeline on
/// unoptimized ("-O0 flavor") IR for the nine SPECint-2017-like workloads.
/// Expected shape (paper Fig. 5a): TPDE substantially faster than the
/// multi-pass baseline on every benchmark; copy-and-patch faster still.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  std::printf("=== Fig. 5a: compile-time speedup vs baseline -O0 "
              "(unoptimized IR, x86-64) ===\n");
  std::printf("%-16s %12s %12s %12s | %8s %8s\n", "benchmark", "base-O0[ms]",
              "TPDE[ms]", "C&P[ms]", "TPDE x", "C&P x");
  std::vector<double> TpdeSp, CpSp;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/true)) {
    tir::Module M;
    workloads::genModule(M, NP.P);
    Measurement B0 = measure(Backend::BaselineO0, M, 5, 0);
    Measurement Tp = measure(Backend::Tpde, M, 5, 0);
    Measurement Cp = measure(Backend::CopyPatch, M, 5, 0);
    double S1 = B0.CompileMs / Tp.CompileMs;
    double S2 = B0.CompileMs / Cp.CompileMs;
    TpdeSp.push_back(S1);
    CpSp.push_back(S2);
    std::printf("%-16s %12.3f %12.3f %12.3f | %8.2f %8.2f\n", NP.Name,
                B0.CompileMs, Tp.CompileMs, Cp.CompileMs, S1, S2);
  }
  std::printf("%-16s %12s %12s %12s | %8.2f %8.2f\n", "geomean", "", "", "",
              geomean(TpdeSp), geomean(CpSp));
  std::printf("\npaper: TPDE 8-24x vs LLVM -O0 (geomean 12.15x x86-64); "
              "copy-and-patch geomean 18.6x.\n");
  return 0;
}
