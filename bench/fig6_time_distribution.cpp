//===- bench/fig6_time_distribution.cpp - Paper Fig. 6 reproduction -------===//
///
/// Time distribution when compiling all SPEC-like workloads with TPDE:
/// front-end (here: TIR construction, standing in for Clang) vs back-end,
/// and within the back-end the preparation pass (adapter tables), the
/// analysis pass (loops + liveness), and the code generation pass.
/// Expected shape (paper Fig. 6): the back-end is a tiny fraction of the
/// end-to-end pipeline (2% in the paper); within TPDE, codegen dominates,
/// followed by preparation and analysis.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"
#include "core/Analyzer.h"
#include "tpde_tir/TirAdapter.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  double FrontendMs = 0, PrepareMs = 0, AnalysisMs = 0, BackendMs = 0;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/true)) {
    // Front-end: module construction.
    Timer TF;
    TF.start();
    tir::Module M;
    workloads::genModule(M, NP.P);
    TF.stop();
    FrontendMs += TF.ms();

    // Whole back-end.
    {
      Timer TB;
      TB.start();
      asmx::Assembler Asm;
      if (!tpde_tir::compileModuleX64(M, Asm))
        return 1;
      TB.stop();
      BackendMs += TB.ms();
    }
    // Preparation pass alone (adapter table construction).
    {
      tpde_tir::TirAdapter A(M);
      Timer TP;
      TP.start();
      for (u32 F = 0; F < A.funcCount(); ++F)
        if (A.funcIsDefinition(F))
          A.switchFunc(F);
      TP.stop();
      PrepareMs += TP.ms();
    }
    // Analysis pass alone.
    {
      tpde_tir::TirAdapter A(M);
      core::Analyzer<tpde_tir::TirAdapter> An(A);
      Timer TA;
      TA.start();
      for (u32 F = 0; F < A.funcCount(); ++F) {
        if (!A.funcIsDefinition(F))
          continue;
        A.switchFunc(F);
        An.analyze();
      }
      TA.stop();
      AnalysisMs += TA.ms();
    }
  }
  double CodegenMs = BackendMs - PrepareMs - AnalysisMs;
  double Total = FrontendMs + BackendMs;
  std::printf("=== Fig. 6: time distribution compiling all SPEC-like "
              "workloads with TPDE ===\n");
  std::printf("end-to-end:  front-end (IR construction) %7.2f ms (%5.1f%%)\n",
              FrontendMs, 100 * FrontendMs / Total);
  std::printf("             back-end (TPDE)             %7.2f ms (%5.1f%%)\n",
              BackendMs, 100 * BackendMs / Total);
  std::printf("within TPDE: preparation pass            %7.2f ms (%5.1f%%)\n",
              PrepareMs, 100 * PrepareMs / BackendMs);
  std::printf("             analysis pass               %7.2f ms (%5.1f%%)\n",
              AnalysisMs, 100 * AnalysisMs / BackendMs);
  std::printf("             code generation pass        %7.2f ms (%5.1f%%)\n",
              CodegenMs, 100 * CodegenMs / BackendMs);
  std::printf("\npaper: back-end 2%% of end-to-end; within TPDE: codegen "
              "49%%, preparation 14%%, analysis 12%%.\n");
  return 0;
}
