//===- bench/fig10_umbra.cpp - Paper Fig. 10 reproduction -----------------===//
///
/// Database query compile and run time accumulated over the TPC-DS-like
/// query set, for five back-end configurations (paper Fig. 10):
///
///   TPDE       = TPDE adapted directly to the database IR (no translation)
///   DirectEmit = the specialized two-pass direct emitter
///   LLVM-O0    = UIR -> TIR translation + baseline -O0 pipeline
///   TPDE-LLVM  = UIR -> TIR translation + TPDE back-end for TIR
///   LLVM-Opt   = UIR -> TIR translation + baseline -O1 pipeline
///
/// Expected shape: TPDE ~ DirectEmit (fastest compile), TPDE-LLVM clearly
/// faster than LLVM-O0 but burdened by the IR translation, LLVM-Opt
/// slowest to compile; run times all similar (LLVM-Opt slightly best).
/// Every configuration's query results are checked against the
/// interpreted reference.
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "baseline/Baseline.h"
#include "support/Timer.h"
#include "tpde_tir/TirCompilerX64.h"
#include "uir/TpdeUir.h"

#include <cstdio>
#include <vector>

using namespace tpde;
using namespace tpde::uir;

namespace {

enum class Cfg { Tpde, DirectEmit, LlvmO0, TpdeLlvm, LlvmOpt };
const char *cfgName(Cfg C) {
  switch (C) {
  case Cfg::Tpde:
    return "TPDE";
  case Cfg::DirectEmit:
    return "DirectEmit";
  case Cfg::LlvmO0:
    return "LLVM-O0";
  case Cfg::TpdeLlvm:
    return "TPDE-LLVM";
  case Cfg::LlvmOpt:
    return "LLVM-Opt";
  }
  return "?";
}

bool compileCfg(Cfg C, const QueryPlan &P, asmx::Assembler &Asm) {
  UModule U;
  compilePlan(U, P);
  switch (C) {
  case Cfg::Tpde:
    return compileTpdeUir(U, Asm);
  case Cfg::DirectEmit:
    return compileDirectEmit(U, Asm);
  default: {
    tir::Module T;
    if (!translateToTir(U, T))
      return false;
    if (C == Cfg::TpdeLlvm)
      return tpde_tir::compileModuleX64(T, Asm);
    return baseline::compileModule(T, Asm,
                                   C == Cfg::LlvmOpt
                                       ? baseline::OptLevel::O1
                                       : baseline::OptLevel::O0);
  }
  }
}

} // namespace

int main() {
  Table T(8, 400000, /*Seed=*/42);
  auto Plans = tpcdsLikePlans();

  std::printf("=== Fig. 10: TPC-DS-like queries, accumulated over %zu "
              "queries, %llu rows ===\n",
              Plans.size(), (unsigned long long)T.Rows);
  std::printf("%-12s %14s %14s\n", "back-end", "compile[ms]", "run[ms]");

  for (Cfg C : {Cfg::TpdeLlvm, Cfg::DirectEmit, Cfg::LlvmO0, Cfg::Tpde,
                Cfg::LlvmOpt}) {
    double CompileMs = 0, RunMs = 0;
    bool ResultsOk = true;
    for (const QueryPlan &P : Plans) {
      // Compilation repeated (the paper uses 20 repetitions).
      const unsigned CompileReps = 10;
      Timer TC;
      TC.start();
      for (unsigned R = 0; R < CompileReps; ++R) {
        asmx::Assembler Asm;
        if (!compileCfg(C, P, Asm)) {
          std::fprintf(stderr, "compile failed (%s)\n", cfgName(C));
          return 1;
        }
      }
      TC.stop();
      CompileMs += TC.ms() / CompileReps;

      asmx::Assembler Asm;
      compileCfg(C, P, Asm);
      asmx::JITMapper JIT;
      if (!JIT.map(Asm))
        return 1;
      auto *Q = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
          JIT.address(P.Name));
      i64 Got = Q(T.ColPtrs.data(), static_cast<i64>(T.Rows));
      if (Got != evalPlan(P, T)) {
        ResultsOk = false;
      }
      Timer TR;
      TR.start();
      volatile i64 Sink = 0;
      for (int R = 0; R < 5; ++R)
        Sink = Sink ^ Q(T.ColPtrs.data(), static_cast<i64>(T.Rows));
      TR.stop();
      (void)Sink;
      RunMs += TR.ms() / 5;
    }
    std::printf("%-12s %14.3f %14.3f%s\n", cfgName(C), CompileMs, RunMs,
                ResultsOk ? "" : "   !! WRONG RESULTS");
  }
  std::printf("\npaper (x86-64, seconds): compile TPDE 0.087, DirectEmit "
              "0.11, TPDE-LLVM 0.29, LLVM-O0 2.504, LLVM-Opt 16.193;\n"
              "       run ~0.65 for all.\n");
  return 0;
}
