//===- bench/ablation_fixed_regs.cpp - §3.4.5 fixed-register ablation -----===//
///
/// Ablation for the design choice the paper motivates in §3.4.5: values
/// live across multiple blocks of their innermost loop get a fixed
/// callee-saved register, avoiding repeated spill/reload of loop-carried
/// values (especially induction-variable phis). Run-time of generated
/// code is compared with the heuristic on and off; loop-heavy SSA
/// workloads should slow down with the heuristic disabled.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"
#include "core/CompilerBase.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  std::printf("=== Ablation: fixed-register loop heuristic (§3.4.5) ===\n");
  std::printf("%-16s %12s %12s | %10s\n", "benchmark", "on[ms]", "off[ms]",
              "off/on");
  std::vector<double> Ratio;
  const unsigned Reps = 1000;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/false)) {
    tir::Module M;
    workloads::genModule(M, NP.P);
    core::DisableFixedRegHeuristic = false;
    Measurement On = measure(Backend::Tpde, M, 1, Reps);
    core::DisableFixedRegHeuristic = true;
    Measurement Off = measure(Backend::Tpde, M, 1, Reps);
    core::DisableFixedRegHeuristic = false;
    double R = Off.RunMs / On.RunMs;
    Ratio.push_back(R);
    std::printf("%-16s %12.3f %12.3f | %10.3f\n", NP.Name, On.RunMs,
                Off.RunMs, R);
  }
  std::printf("geomean run-time penalty without fixed registers: %.3fx\n",
              geomean(Ratio));
  return 0;
}
