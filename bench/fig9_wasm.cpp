//===- bench/fig9_wasm.cpp - Paper Fig. 9 reproduction --------------------===//
///
/// WebAssembly compile- and run-time across four back-ends, normalized to
/// the Cranelift stand-in (multi-pass, backtracking-quality allocator):
///
///   Cranelift       = wasm->IR translation + baseline -O1 pipeline
///   Cranelift(fast) = wasm->IR translation + baseline -O0 pipeline
///   TPDE            = wasm->IR translation + TPDE single-pass back-end
///   Winch           = direct single-pass compilation, no IR translation
///
/// Expected shape (paper Fig. 9): compile time Winch > TPDE > fast-alloc >
/// Cranelift (TPDE 4.27x faster than Cranelift, 1.74x slower than Winch);
/// run time Cranelift > TPDE > fast-alloc ~ Winch. All back-ends must
/// produce identical kernel checksums (verified here).
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "baseline/Baseline.h"
#include "support/Timer.h"
#include "tpde_tir/TirCompilerX64.h"
#include "wasm/Workloads.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace tpde;
using namespace tpde::wasm;

namespace {

struct Result {
  double CompileMs;
  double RunMs;
  u64 Checksum;
};

enum class WBackend { Cranelift, CraneliftFast, Tpde, Winch };

Result measure(WBackend B, const WModule &W, unsigned RunIters) {
  Result Out{};
  Timer TC;
  asmx::Assembler Asm;
  TC.start();
  bool OK = true;
  if (B == WBackend::Winch) {
    OK = compileWinch(W, Asm);
  } else {
    tir::Module M;
    OK = translateToTir(W, M); // translation counts into compile time
    if (OK) {
      if (B == WBackend::Tpde)
        OK = tpde_tir::compileModuleX64(M, Asm);
      else
        OK = baseline::compileModule(M, Asm,
                                     B == WBackend::Cranelift
                                         ? baseline::OptLevel::O1
                                         : baseline::OptLevel::O0);
    }
  }
  TC.stop();
  if (!OK) {
    std::fprintf(stderr, "wasm compilation failed\n");
    std::exit(1);
  }
  Out.CompileMs = TC.ms();

  asmx::JITMapper JIT;
  if (!JIT.map(Asm)) {
    std::fprintf(stderr, "mapping failed\n");
    std::exit(1);
  }
  auto *Init = reinterpret_cast<void (*)()>(JIT.address("init"));
  auto *Kernel = reinterpret_cast<u64 (*)(u64, u64)>(JIT.address("kernel"));
  Init();
  Out.Checksum = Kernel(0, 0);
  Timer TR;
  TR.start();
  volatile u64 Sink = 0;
  for (unsigned I = 0; I < RunIters; ++I)
    Sink = Sink ^ Kernel(0, 0);
  TR.stop();
  (void)Sink;
  Out.RunMs = TR.ms();
  return Out;
}

double geomean(const std::vector<double> &V) {
  double S = 0;
  for (double X : V)
    S += std::log(X);
  return std::exp(S / static_cast<double>(V.size()));
}

} // namespace

int main() {
  std::printf("=== Fig. 9: wasm compile/run time, normalized to Cranelift "
              "(stand-in) ===\n");
  std::printf("%-16s | compile speedup vs CL:  %-8s %-8s %-8s | run "
              "speedup vs CL: %-8s %-8s %-8s\n",
              "benchmark", "fast", "TPDE", "Winch", "fast", "TPDE", "Winch");
  std::vector<double> CtF, CtT, CtW, RtF, RtT, RtW;
  for (auto &NM : wasmBenchModules()) {
    const unsigned Reps = 30;
    Result CL = measure(WBackend::Cranelift, NM.Module, Reps);
    Result FA = measure(WBackend::CraneliftFast, NM.Module, Reps);
    Result TP = measure(WBackend::Tpde, NM.Module, Reps);
    Result WI = measure(WBackend::Winch, NM.Module, Reps);
    if (FA.Checksum != CL.Checksum || TP.Checksum != CL.Checksum ||
        WI.Checksum != CL.Checksum)
      std::printf("!! checksum mismatch on %s (%llu %llu %llu %llu)\n",
                  NM.Name, (unsigned long long)CL.Checksum,
                  (unsigned long long)FA.Checksum,
                  (unsigned long long)TP.Checksum,
                  (unsigned long long)WI.Checksum);
    CtF.push_back(CL.CompileMs / FA.CompileMs);
    CtT.push_back(CL.CompileMs / TP.CompileMs);
    CtW.push_back(CL.CompileMs / WI.CompileMs);
    RtF.push_back(CL.RunMs / FA.RunMs);
    RtT.push_back(CL.RunMs / TP.RunMs);
    RtW.push_back(CL.RunMs / WI.RunMs);
    std::printf("%-16s | %24.2f %8.2f %8.2f | %22.2f %8.2f %8.2f\n", NM.Name,
                CtF.back(), CtT.back(), CtW.back(), RtF.back(), RtT.back(),
                RtW.back());
  }
  std::printf("%-16s | %24.2f %8.2f %8.2f | %22.2f %8.2f %8.2f\n", "geomean",
              geomean(CtF), geomean(CtT), geomean(CtW), geomean(RtF),
              geomean(RtT), geomean(RtW));
  std::printf("\npaper: TPDE compiles 4.27x faster than Cranelift, 2.68x "
              "faster than fast-alloc, 1.74x slower than Winch;\n"
              "       TPDE code 1.64x slower than Cranelift, 1.14x faster "
              "than Winch, 1.31x faster than fast-alloc.\n");
  return 0;
}
