//===- bench/ablation_fusion.cpp - §3.4.4/§4.2 fusion ablation ------------===//
///
/// Ablation for instruction fusing (compare+branch, §5.1.2) and operand
/// folding (address expressions into memory operands, memory operands for
/// spilled values, §4.2). The paper calls compare-branch fusion "very
/// important for performance" and notes that merging expressions into
/// memory operands "has a large impact on code size and performance".
/// Both run-time and code size are reported with fusion on and off.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"
#include "tpde_tir/TirCompilerX64.h"

using namespace tpde;
using namespace tpde::bench;

int main() {
  std::printf("=== Ablation: fusion and operand folding (§3.4.4, §4.2) "
              "===\n");
  std::printf("%-16s %10s %10s %10s | %9s %9s\n", "benchmark", "on[ms]",
              "off[ms]", "rt off/on", "sz-on[B]", "sz-off/on");
  std::vector<double> RtRatio, SzRatio;
  const unsigned Reps = 1000;
  for (auto &NP : workloads::specLikeProfiles(/*O0Flavor=*/true)) {
    tir::Module M;
    workloads::genModule(M, NP.P);
    tpde_tir::DisableFusion = false;
    Measurement On = measure(Backend::Tpde, M, 1, Reps);
    tpde_tir::DisableFusion = true;
    Measurement Off = measure(Backend::Tpde, M, 1, Reps);
    tpde_tir::DisableFusion = false;
    double R = Off.RunMs / On.RunMs;
    double S = double(Off.TextBytes) / double(On.TextBytes);
    RtRatio.push_back(R);
    SzRatio.push_back(S);
    std::printf("%-16s %10.3f %10.3f %10.3f | %9llu %9.3f\n", NP.Name,
                On.RunMs, Off.RunMs, R, (unsigned long long)On.TextBytes, S);
  }
  std::printf("geomean: run-time %.3fx, code size %.3fx without fusion\n",
              geomean(RtRatio), geomean(SzRatio));
  return 0;
}
