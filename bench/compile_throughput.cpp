//===- bench/compile_throughput.cpp - Hot-path allocation benchmark -------===//
///
/// Measures the compile hot path the paper's speed claims rest on:
/// functions compiled per second and heap allocations per compiled
/// function, for every back-end. Two scenarios:
///
///  * fresh:  a new assembler per module compile (the classic batch mode).
///  * reused: one compiler instance recompiling the same module with
///            reset-not-freed state; after warmup this must be
///            allocation-free (docs/PERF.md).
///
/// Emits BENCH_compile_throughput.json for CI artifact upload.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/AllocCounter.h"

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;
using namespace tpde::bench;
using support::AllocWatch;

namespace {

struct Result {
  const char *Backend;
  const char *Scenario;
  double FuncsPerSec = 0;
  double NewCallsPerFunc = 0;
  double NewBytesPerFunc = 0;
};

/// Iterations so one measurement takes a meaningful amount of time without
/// dragging out CI; each scenario takes the best of Reps measurements to
/// shake off scheduler noise; throughput uses CPU time (CpuTimer), which
/// is stable on loaded machines.
constexpr unsigned Iters = 40;
constexpr unsigned Reps = 3;

template <typename Fn> Result bestOf(Fn Measure) {
  Result Best = Measure();
  for (unsigned R = 1; R < Reps; ++R) {
    Result Cur = Measure();
    if (Cur.FuncsPerSec > Best.FuncsPerSec)
      Best = Cur;
  }
  return Best;
}

Result measureFresh(Backend B, tir::Module &M, u32 NumFuncs) {
  // Warmup (first compile pays one-time costs: template caches etc).
  {
    asmx::Assembler Asm;
    if (!compileWith(B, M, Asm)) {
      std::fprintf(stderr, "compilation failed (%s)\n", backendName(B));
      std::exit(1);
    }
  }
  AllocWatch W;
  CpuTimer T;
  T.start();
  for (unsigned I = 0; I < Iters; ++I) {
    asmx::Assembler Asm;
    compileWith(B, M, Asm);
  }
  T.stop();
  Result R{backendName(B), "fresh"};
  double Funcs = static_cast<double>(NumFuncs) * Iters;
  R.FuncsPerSec = Funcs / (T.ms() / 1000.0);
  R.NewCallsPerFunc = static_cast<double>(W.newCalls()) / Funcs;
  R.NewBytesPerFunc = static_cast<double>(W.newBytes()) / Funcs;
  return R;
}

/// TPDE with full state reuse: one adapter/compiler/assembler, reset
/// between compiles. Steady state must not touch the heap.
Result measureReused(tir::Module &M, u32 NumFuncs) {
  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  // Warmup grows all scratch buffers to their high-water mark.
  for (unsigned I = 0; I < 4; ++I) {
    Asm.reset();
    if (!Compiler.compile()) {
      std::fprintf(stderr, "compilation failed (TPDE reused)\n");
      std::exit(1);
    }
  }
  AllocWatch W;
  CpuTimer T;
  T.start();
  for (unsigned I = 0; I < Iters; ++I) {
    Asm.reset();
    Compiler.compile();
  }
  T.stop();
  Result R{"TPDE", "reused"};
  double Funcs = static_cast<double>(NumFuncs) * Iters;
  R.FuncsPerSec = Funcs / (T.ms() / 1000.0);
  R.NewCallsPerFunc = static_cast<double>(W.newCalls()) / Funcs;
  R.NewBytesPerFunc = static_cast<double>(W.newBytes()) / Funcs;
  return R;
}

} // namespace

int main() {
  // A mid-size module: enough functions that per-function costs dominate,
  // both IR flavors mixed in (O0-like stack traffic + SSA loops).
  tir::Module M;
  workloads::Profile P;
  P.Seed = 7;
  P.NumFuncs = 48;
  P.RegionBudget = 10;
  P.InstsPerBlock = 8;
  P.SSAForm = true;
  workloads::genModule(M, P);
  u32 NumFuncs = static_cast<u32>(M.Funcs.size());

  std::vector<Result> Results;
  for (Backend B : {Backend::Tpde, Backend::CopyPatch, Backend::BaselineO0,
                    Backend::BaselineO1})
    Results.push_back(bestOf([&] { return measureFresh(B, M, NumFuncs); }));
  Results.push_back(bestOf([&] { return measureReused(M, NumFuncs); }));

  std::printf("%-12s %-7s %14s %12s %12s\n", "backend", "mode", "funcs/sec",
              "new/func", "bytes/func");
  for (const Result &R : Results)
    std::printf("%-12s %-7s %14.0f %12.2f %12.1f\n", R.Backend, R.Scenario,
                R.FuncsPerSec, R.NewCallsPerFunc, R.NewBytesPerFunc);

  FILE *F = std::fopen("BENCH_compile_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_compile_throughput.json\n");
    return 1;
  }
  std::fprintf(F, "{\n  \"benchmark\": \"compile_throughput\",\n"
                  "  \"module_functions\": %u,\n  \"iterations\": %u,\n"
                  "  \"results\": [\n",
               NumFuncs, Iters);
  for (size_t I = 0; I < Results.size(); ++I) {
    const Result &R = Results[I];
    std::fprintf(F,
                 "    {\"backend\": \"%s\", \"scenario\": \"%s\", "
                 "\"funcs_per_sec\": %.1f, \"new_calls_per_func\": %.3f, "
                 "\"new_bytes_per_func\": %.1f}%s\n",
                 R.Backend, R.Scenario, R.FuncsPerSec, R.NewCallsPerFunc,
                 R.NewBytesPerFunc, I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return 0;
}
