//===- bench/compile_throughput.cpp - Hot-path allocation benchmark -------===//
///
/// Measures the compile hot path the paper's speed claims rest on:
/// functions compiled per second and heap allocations per compiled
/// function, for every back-end. Scenarios:
///
///  * fresh:    a new assembler per module compile (classic batch mode).
///  * reused:   one compiler instance recompiling the same module with
///              reset-not-freed state and module-level symbol batching;
///              after warmup this must be allocation-free (docs/PERF.md).
///  * parallel: the sharded parallel module compiler with a reused worker
///              pool, one row per --threads entry. Measured on wall-clock
///              time (the other scenarios use process-CPU time, which by
///              construction cannot show a parallel speedup). Each
///              parallel row also records the driver's per-phase
///              merge-cost breakdown (compile / reserve / place / stitch
///              mean ns per compile, stitch reloc count, bytes placed in
///              parallel) so the O(relocs)-stitch claim of docs/PERF.md
///              "Two-pass emission" is visible in the trajectory.
///
/// The TPDE scenarios run for BOTH targets: "TPDE" rows are x86-64,
/// "TPDE-A64" rows are AArch64 through the same driver template. The a64
/// output is validated once on the instruction-set simulator (compile
/// throughput itself is native either way — only execution needs the
/// simulator on this machine). "TPDE-UIR" rows compile generated
/// many-query database-IR modules (the §7 Umbra scenario) through the
/// same serial and parallel entry points — the third instantiation of
/// the driver template.
///
/// A second, large-module series ("fresh_large"/"reused_large"/
/// "parallel_large", --funcs-large, default 10000 functions) measures the
/// scale where any per-shard O(module) symbol work would dominate: these
/// rows guard the on-demand symbol materialization policy (docs/PERF.md
/// "Symbol materialization") — per-shard symbol cost is O(defined +
/// referenced), so large-module throughput must track the small-module
/// rows instead of collapsing quadratically.
///
/// Every scenario is measured --repeat times and reported with mean,
/// stddev, and min so the CI regression gate can derive a noise threshold
/// instead of comparing single samples (see scripts/
/// check_bench_regression.py). Emits BENCH_compile_throughput.json.
///
/// Usage: compile_throughput [--repeat=N] [--threads=1,2,4,8] [--funcs=N]
///                           [--funcs-large=N]
///
//===----------------------------------------------------------------------===//

#include "a64/Sim.h"
#include "bench/BenchCommon.h"
#include "support/AllocCounter.h"
#include "tpde_tir/ParallelCompiler.h"
#include "uir/ParallelCompiler.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;
using namespace tpde::bench;
using support::AllocWatch;

namespace {

/// Iterations per measurement so one sample takes a meaningful amount of
/// time without dragging out CI; throughput of the serial scenarios uses
/// CPU time (CpuTimer), which is stable on loaded machines.
constexpr unsigned Iters = 40;

struct Dispersion {
  double Mean = 0, Stddev = 0, Min = 0;
};

Dispersion disperse(const std::vector<double> &Samples) {
  Dispersion D;
  D.Min = Samples[0];
  for (double S : Samples) {
    D.Mean += S;
    if (S < D.Min)
      D.Min = S;
  }
  D.Mean /= static_cast<double>(Samples.size());
  double Var = 0;
  for (double S : Samples)
    Var += (S - D.Mean) * (S - D.Mean);
  if (Samples.size() > 1)
    Var /= static_cast<double>(Samples.size() - 1);
  D.Stddev = std::sqrt(Var);
  return D;
}

struct Result {
  std::string Backend;
  std::string Scenario;
  unsigned Threads = 0; ///< 0 = not a threaded scenario.
  const char *Clock = "cpu";
  Dispersion FuncsPerSec;
  double NewCallsPerFunc = 0;
  double NewBytesPerFunc = 0;
  /// Per-phase merge-cost breakdown (parallel rows only): mean
  /// nanoseconds per compile from the driver's EmitStats, plus the
  /// stitch volume — the O(relocs)-not-O(bytes) claim of docs/PERF.md
  /// "Two-pass emission" made visible in the committed baseline.
  bool HasEmit = false;
  const char *EmitMode = "copy";
  double CompileNs = 0, ReserveNs = 0, PlaceNs = 0, StitchNs = 0;
  double StitchRelocs = 0, PlacedBytes = 0;
};

/// Runs \p Measure (returning funcs/sec for one sample) Repeat times and
/// folds the samples into a dispersion summary.
template <typename Fn>
Dispersion sample(unsigned Repeat, Fn Measure) {
  std::vector<double> Samples;
  Samples.reserve(Repeat);
  for (unsigned R = 0; R < Repeat; ++R)
    Samples.push_back(Measure());
  return disperse(Samples);
}

Result measureFresh(Backend B, tir::Module &M, u32 NumFuncs,
                    unsigned Repeat) {
  // Warmup (first compile pays one-time costs: template caches etc).
  {
    asmx::Assembler Asm;
    if (!compileWith(B, M, Asm)) {
      std::fprintf(stderr, "compilation failed (%s)\n", backendName(B));
      std::exit(1);
    }
  }
  Result R;
  R.Backend = backendName(B);
  R.Scenario = "fresh";
  AllocWatch W;
  u64 Funcs = 0;
  bool OK = true;
  R.FuncsPerSec = sample(Repeat, [&] {
    CpuTimer T;
    T.start();
    for (unsigned I = 0; I < Iters; ++I) {
      asmx::Assembler Asm;
      OK &= compileWith(B, M, Asm);
    }
    T.stop();
    Funcs += static_cast<u64>(NumFuncs) * Iters;
    return static_cast<double>(NumFuncs) * Iters / (T.ms() / 1000.0);
  });
  if (!OK) {
    std::fprintf(stderr, "compilation failed mid-measurement (%s)\n",
                 backendName(B));
    std::exit(1);
  }
  R.NewCallsPerFunc = static_cast<double>(W.newCalls()) / Funcs;
  R.NewBytesPerFunc = static_cast<double>(W.newBytes()) / Funcs;
  return R;
}

/// TPDE with a fresh assembler per compile, for any back-end's serial
/// entry point (x64: compileModuleX64, a64: compileModuleA64, uir:
/// compileTpdeUir — the module type follows the compile function).
/// \p Scenario names the JSON row ("fresh" / "fresh_large"); \p NIters
/// scales the per-sample loop so large-module rows stay affordable.
template <typename CompileFn, typename ModuleT>
Result measureFreshTpde(const char *Name, const char *Scenario,
                        CompileFn Compile, ModuleT &M, u32 NumFuncs,
                        unsigned Repeat, unsigned NIters) {
  {
    asmx::Assembler Asm;
    if (!Compile(M, Asm)) {
      std::fprintf(stderr, "compilation failed (%s %s)\n", Name, Scenario);
      std::exit(1);
    }
  }
  Result R;
  R.Backend = Name;
  R.Scenario = Scenario;
  AllocWatch W;
  u64 Funcs = 0;
  bool OK = true;
  R.FuncsPerSec = sample(Repeat, [&] {
    CpuTimer T;
    T.start();
    for (unsigned I = 0; I < NIters; ++I) {
      asmx::Assembler Asm;
      OK &= Compile(M, Asm);
    }
    T.stop();
    Funcs += static_cast<u64>(NumFuncs) * NIters;
    return static_cast<double>(NumFuncs) * NIters / (T.ms() / 1000.0);
  });
  if (!OK) {
    std::fprintf(stderr, "compilation failed mid-measurement (%s)\n", Name);
    std::exit(1);
  }
  R.NewCallsPerFunc = static_cast<double>(W.newCalls()) / Funcs;
  R.NewBytesPerFunc = static_cast<double>(W.newBytes()) / Funcs;
  return R;
}

/// TPDE with full state reuse: one adapter/compiler/assembler, recompiled
/// through the module-level symbol-batching fast path. Steady state must
/// not touch the heap — for both targets and any module size (the
/// "reused_large" row guards the 10k-function steady state).
template <typename CompilerT>
Result measureReused(const char *Name, const char *Scenario, tir::Module &M,
                     u32 NumFuncs, unsigned Repeat, unsigned NIters) {
  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  CompilerT Compiler(Adapter, Asm);
  // Warmup grows all scratch buffers to their high-water mark.
  for (unsigned I = 0; I < 4; ++I) {
    if (!Compiler.compileReuse()) {
      std::fprintf(stderr, "compilation failed (%s %s)\n", Name, Scenario);
      std::exit(1);
    }
  }
  Result R;
  R.Backend = Name;
  R.Scenario = Scenario;
  AllocWatch W;
  u64 Funcs = 0;
  bool OK = true; // accumulated, checked after timing: a silent failure
                  // would otherwise feed bogus numbers to the CI gate
  R.FuncsPerSec = sample(Repeat, [&] {
    CpuTimer T;
    T.start();
    for (unsigned I = 0; I < NIters; ++I)
      OK &= Compiler.compileReuse();
    T.stop();
    Funcs += static_cast<u64>(NumFuncs) * NIters;
    return static_cast<double>(NumFuncs) * NIters / (T.ms() / 1000.0);
  });
  if (!OK) {
    std::fprintf(stderr, "compilation failed mid-measurement (%s %s)\n",
                 Name, Scenario);
    std::exit(1);
  }
  R.NewCallsPerFunc = static_cast<double>(W.newCalls()) / Funcs;
  R.NewBytesPerFunc = static_cast<double>(W.newBytes()) / Funcs;
  return R;
}

/// Sharded compilation with a persistent worker pool (any back-end's
/// instantiation of the core driver template; the module type follows
/// the pipeline). Wall-clock time: the whole point is spending more
/// CPUs to finish sooner.
template <typename PipelineT, typename ModuleT>
Result measureParallel(const char *Name, const char *Scenario, ModuleT &M,
                       u32 NumFuncs, unsigned Threads, unsigned Repeat,
                       unsigned NIters) {
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = Threads;
  PipelineT PC(M, Opts);
  asmx::Assembler Out;
  for (unsigned I = 0; I < 4; ++I) {
    if (!PC.compile(Out)) {
      std::fprintf(stderr, "compilation failed (%s %s)\n", Name, Scenario);
      std::exit(1);
    }
  }
  Result R;
  R.Backend = Name;
  R.Scenario = Scenario;
  R.Threads = Threads;
  R.Clock = "wall";
  AllocWatch W;
  u64 Funcs = 0;
  u64 NumCompiles = 0;
  core::EmitStats Acc;
  bool OK = true;
  R.FuncsPerSec = sample(Repeat, [&] {
    Timer T;
    T.start();
    for (unsigned I = 0; I < NIters; ++I) {
      OK &= PC.compile(Out);
      const core::EmitStats &ES = PC.emitStats();
      Acc.CompileNs += ES.CompileNs;
      Acc.ReserveNs += ES.ReserveNs;
      Acc.PlaceNs += ES.PlaceNs;
      Acc.StitchNs += ES.StitchNs;
      Acc.StitchRelocs += ES.StitchRelocs;
      Acc.PlacedBytes += ES.PlacedBytes;
      Acc.InPlace = ES.InPlace;
    }
    T.stop();
    Funcs += static_cast<u64>(NumFuncs) * NIters;
    NumCompiles += NIters;
    return static_cast<double>(NumFuncs) * NIters / (T.ms() / 1000.0);
  });
  if (!OK) {
    std::fprintf(stderr, "compilation failed mid-measurement (%s %s)\n",
                 Name, Scenario);
    std::exit(1);
  }
  R.NewCallsPerFunc = static_cast<double>(W.newCalls()) / Funcs;
  R.NewBytesPerFunc = static_cast<double>(W.newBytes()) / Funcs;
  R.HasEmit = true;
  R.EmitMode = Acc.InPlace ? "in_place" : "copy";
  double N = static_cast<double>(NumCompiles);
  R.CompileNs = static_cast<double>(Acc.CompileNs) / N;
  R.ReserveNs = static_cast<double>(Acc.ReserveNs) / N;
  R.PlaceNs = static_cast<double>(Acc.PlaceNs) / N;
  R.StitchNs = static_cast<double>(Acc.StitchNs) / N;
  R.StitchRelocs = static_cast<double>(Acc.StitchRelocs) / N;
  R.PlacedBytes = static_cast<double>(Acc.PlacedBytes) / N;
  return R;
}

/// One-time sanity execution of the a64 output on the instruction-set
/// simulator (a small module: the simulator is ~100x slower than
/// native). Aborts if the compiled code traps — the throughput numbers
/// would be meaningless for broken output.
void validateA64OnSimulator() {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 3;
  P.NumFuncs = 6;
  P.RegionBudget = 3;
  P.MaxLoopTrip = 2;
  P.SSAForm = true;
  workloads::genModule(M, P);
  asmx::Assembler Asm;
  if (!tpde_tir::compileModuleA64Parallel(M, Asm, 2)) {
    std::fprintf(stderr, "a64 validation compile failed\n");
    std::exit(1);
  }
  a64::Sim S;
  a64::SimModule Mod;
  if (!Mod.map(Asm, S)) {
    std::fprintf(stderr, "a64 validation mapping failed\n");
    std::exit(1);
  }
  S.call(Mod.address("main_entry"), {7, 9});
  if (S.Trapped) {
    std::fprintf(stderr, "a64 validation execution trapped\n");
    std::exit(1);
  }
  std::printf("a64 simulator validation: ok (%llu insts)\n",
              static_cast<unsigned long long>(S.InstCount));
}

} // namespace

namespace {

/// Parses a positive integer in [1, Max]; exits with a usage error on
/// anything else. threads=0 in particular must be rejected: 0 is this
/// benchmark's JSON sentinel for "not a threaded scenario" and would
/// collide with the serial rows in the regression gate.
unsigned parsePositive(const char *What, const char *S, const char **End,
                       unsigned Max) {
  char *P = nullptr;
  unsigned long V = std::strtoul(S, &P, 10);
  if (P == S || V < 1 || V > Max) {
    std::fprintf(stderr, "invalid %s value '%s' (expect 1..%u)\n", What, S,
                 Max);
    std::exit(2);
  }
  *End = P;
  return static_cast<unsigned>(V);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Repeat = 5;
  u32 NumFuncsOpt = 48;
  u32 LargeFuncsOpt = 10000;
  std::vector<unsigned> ThreadCounts = {1, 2, 4, 8};
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    const char *End = nullptr;
    if (std::strncmp(Arg, "--repeat=", 9) == 0) {
      Repeat = parsePositive("--repeat", Arg + 9, &End, 1000);
      if (*End) {
        std::fprintf(stderr, "invalid --repeat value '%s'\n", Arg + 9);
        return 2;
      }
    } else if (std::strncmp(Arg, "--funcs=", 8) == 0) {
      NumFuncsOpt = parsePositive("--funcs", Arg + 8, &End, 100000);
      if (*End) {
        std::fprintf(stderr, "invalid --funcs value '%s'\n", Arg + 8);
        return 2;
      }
    } else if (std::strncmp(Arg, "--funcs-large=", 14) == 0) {
      LargeFuncsOpt = parsePositive("--funcs-large", Arg + 14, &End, 1000000);
      if (*End) {
        std::fprintf(stderr, "invalid --funcs-large value '%s'\n", Arg + 14);
        return 2;
      }
    } else if (std::strncmp(Arg, "--threads=", 10) == 0) {
      ThreadCounts.clear();
      for (const char *P = Arg + 10; *P;) {
        ThreadCounts.push_back(parsePositive("--threads", P, &P, 256));
        if (*P == ',')
          ++P;
        else if (*P) {
          std::fprintf(stderr, "invalid --threads list '%s'\n", Arg + 10);
          return 2;
        }
      }
      if (ThreadCounts.empty()) {
        std::fprintf(stderr, "--threads needs at least one entry\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--repeat=N] [--threads=1,2,4] [--funcs=N] "
                   "[--funcs-large=N]\n",
                   argv[0]);
      return 2;
    }
  }

  // A mid-size module: enough functions that per-function costs dominate,
  // both IR flavors mixed in (O0-like stack traffic + SSA loops).
  tir::Module M;
  workloads::Profile P;
  P.Seed = 7;
  P.NumFuncs = NumFuncsOpt;
  P.RegionBudget = 10;
  P.InstsPerBlock = 8;
  P.SSAForm = true;
  workloads::genModule(M, P);
  u32 NumFuncs = static_cast<u32>(M.Funcs.size());
  unsigned HwThreads = std::thread::hardware_concurrency();

  // The parallel series runs on a 4x larger module: with the default
  // FuncsPerShard that is ~48 shards instead of 12, so the worker pool
  // has scaling headroom and the per-compile job handshake amortizes —
  // keeping the CI speedup assertion meaningful on modest multicore
  // runners. Its rows are self-consistent (funcs/sec over its own
  // function count); the serial rows keep the smaller module.
  tir::Module ParM;
  workloads::Profile ParP = P;
  ParP.NumFuncs = NumFuncsOpt * 4;
  workloads::genModule(ParM, ParP);
  u32 ParFuncs = static_cast<u32>(ParM.Funcs.size());

  // The large-module scaling scenario (>= 10k functions by default): the
  // module size where any per-shard O(module) symbol work dominates the
  // compile. Small functions with call density keep generation and each
  // sample affordable while every shard still references cross-shard
  // symbols; throughput here is the paper-scale claim the "_large" gate
  // rows guard — symbol cost must stay O(defined + referenced) per
  // shard, not O(module).
  tir::Module LargeM;
  workloads::Profile LargeP;
  LargeP.Seed = 29;
  LargeP.NumFuncs = LargeFuncsOpt;
  LargeP.RegionBudget = 3;
  LargeP.InstsPerBlock = 5;
  LargeP.CallPct = 12;
  LargeP.SSAForm = true;
  workloads::genModule(LargeM, LargeP);
  u32 LargeFuncs = static_cast<u32>(LargeM.Funcs.size());
  // One sample ~= one compile of the large module (vs Iters compiles of
  // the mid-size one): scale the loop so a sample stays in the same
  // time envelope regardless of --funcs-large.
  unsigned LargeIters = Iters * NumFuncs > LargeFuncs
                            ? (Iters * NumFuncs + LargeFuncs - 1) / LargeFuncs
                            : 1;

  // UIR query modules (the §7 Umbra scenario): many small generated
  // query functions, FP predicates mixed in (FP-pool traffic). The small
  // module matches the parallel TIR module's function count; the large
  // one reuses --funcs-large so both back-ends' *_large rows measure the
  // same scale.
  workloads::QueryProfile UirP;
  UirP.Seed = 17;
  UirP.NumQueries = NumFuncsOpt * 4;
  uir::UModule UirM;
  workloads::genQueryModule(UirM, UirP);
  u32 UirFuncs = static_cast<u32>(UirM.Funcs.size());

  workloads::QueryProfile UirLargeP;
  UirLargeP.Seed = 43;
  UirLargeP.NumQueries = LargeFuncsOpt;
  uir::UModule UirLargeM;
  workloads::genQueryModule(UirLargeM, UirLargeP);
  u32 UirLargeFuncs = static_cast<u32>(UirLargeM.Funcs.size());
  unsigned UirLargeIters =
      Iters * UirFuncs > UirLargeFuncs
          ? (Iters * UirFuncs + UirLargeFuncs - 1) / UirLargeFuncs
          : 1;

  validateA64OnSimulator();

  std::vector<Result> Results;
  for (Backend B : {Backend::Tpde, Backend::CopyPatch, Backend::BaselineO0,
                    Backend::BaselineO1})
    Results.push_back(measureFresh(B, M, NumFuncs, Repeat));
  auto FreshX64 = [](tir::Module &Mod, asmx::Assembler &Asm) {
    return tpde_tir::compileModuleX64(Mod, Asm);
  };
  auto FreshA64 = [](tir::Module &Mod, asmx::Assembler &Asm) {
    return tpde_tir::compileModuleA64(Mod, Asm);
  };
  Results.push_back(
      measureFreshTpde("TPDE-A64", "fresh", FreshA64, M, NumFuncs, Repeat,
                       Iters));
  Results.push_back(measureReused<tpde_tir::TirCompilerX64>(
      "TPDE", "reused", M, NumFuncs, Repeat, Iters));
  Results.push_back(measureReused<tpde_tir::TirCompilerA64>(
      "TPDE-A64", "reused", M, NumFuncs, Repeat, Iters));
  for (unsigned T : ThreadCounts)
    Results.push_back(measureParallel<tpde_tir::ParallelModuleCompiler>(
        "TPDE", "parallel", ParM, ParFuncs, T, Repeat, Iters));
  for (unsigned T : ThreadCounts)
    Results.push_back(measureParallel<tpde_tir::ParallelModuleCompilerA64>(
        "TPDE-A64", "parallel", ParM, ParFuncs, T, Repeat, Iters));

  // Database-IR rows: serial (fresh assembler per compile) + parallel,
  // on the generated many-query module.
  auto FreshUir = [](uir::UModule &Mod, asmx::Assembler &Asm) {
    return uir::compileTpdeUir(Mod, Asm);
  };
  Results.push_back(measureFreshTpde("TPDE-UIR", "fresh", FreshUir, UirM,
                                     UirFuncs, Repeat, Iters));
  for (unsigned T : ThreadCounts)
    Results.push_back(measureParallel<uir::ParallelModuleCompilerUir>(
        "TPDE-UIR", "parallel", UirM, UirFuncs, T, Repeat, Iters));

  // Large-module series: fresh/reused/parallel for both targets on the
  // >= 10k-function module.
  Results.push_back(measureFreshTpde("TPDE", "fresh_large", FreshX64, LargeM,
                                     LargeFuncs, Repeat, LargeIters));
  Results.push_back(measureFreshTpde("TPDE-A64", "fresh_large", FreshA64,
                                     LargeM, LargeFuncs, Repeat, LargeIters));
  Results.push_back(measureReused<tpde_tir::TirCompilerX64>(
      "TPDE", "reused_large", LargeM, LargeFuncs, Repeat, LargeIters));
  Results.push_back(measureReused<tpde_tir::TirCompilerA64>(
      "TPDE-A64", "reused_large", LargeM, LargeFuncs, Repeat, LargeIters));
  for (unsigned T : ThreadCounts)
    Results.push_back(measureParallel<tpde_tir::ParallelModuleCompiler>(
        "TPDE", "parallel_large", LargeM, LargeFuncs, T, Repeat, LargeIters));
  for (unsigned T : ThreadCounts)
    Results.push_back(measureParallel<tpde_tir::ParallelModuleCompilerA64>(
        "TPDE-A64", "parallel_large", LargeM, LargeFuncs, T, Repeat,
        LargeIters));
  Results.push_back(measureFreshTpde("TPDE-UIR", "fresh_large", FreshUir,
                                     UirLargeM, UirLargeFuncs, Repeat,
                                     UirLargeIters));
  for (unsigned T : ThreadCounts)
    Results.push_back(measureParallel<uir::ParallelModuleCompilerUir>(
        "TPDE-UIR", "parallel_large", UirLargeM, UirLargeFuncs, T, Repeat,
        UirLargeIters));

  std::printf("%-12s %-15s %3s %5s %12s %12s %12s %10s %11s\n", "backend",
              "mode", "thr", "clock", "f/s mean", "f/s stddev", "f/s min",
              "new/func", "bytes/func");
  for (const Result &R : Results)
    std::printf("%-12s %-15s %3u %5s %12.0f %12.0f %12.0f %10.2f %11.1f\n",
                R.Backend.c_str(), R.Scenario.c_str(), R.Threads, R.Clock,
                R.FuncsPerSec.Mean, R.FuncsPerSec.Stddev, R.FuncsPerSec.Min,
                R.NewCallsPerFunc, R.NewBytesPerFunc);

  // Parallel scaling summary per backend (the CI gate asserts this when
  // the machine has enough hardware threads; see
  // scripts/check_bench_regression.py).
  for (const char *BE : {"TPDE", "TPDE-A64", "TPDE-UIR"}) {
    double Par1 = 0;
    for (const Result &R : Results)
      if (R.Backend == BE && R.Scenario == "parallel" && R.Threads == 1)
        Par1 = R.FuncsPerSec.Mean;
    if (Par1 > 0)
      for (const Result &R : Results)
        if (R.Backend == BE && R.Scenario == "parallel" && R.Threads > 1)
          std::printf("%s parallel speedup @%u threads: %.2fx "
                      "(hw threads: %u)\n",
                      BE, R.Threads, R.FuncsPerSec.Mean / Par1, HwThreads);
  }

  // Merge-cost breakdown per compile: with in-place emission the serial
  // part of producing the output is reserve + stitch, and the stitch
  // scales with the relocation count, never the section bytes (the bytes
  // move in the parallel place phase).
  std::printf("\n%-12s %-15s %3s %-9s %10s %10s %10s %10s %12s %12s\n",
              "backend", "mode", "thr", "emit", "compile_us", "reserve_us",
              "place_us", "stitch_us", "stitch_reloc", "placed_bytes");
  for (const Result &R : Results)
    if (R.HasEmit)
      std::printf("%-12s %-15s %3u %-9s %10.1f %10.1f %10.1f %10.1f %12.0f "
                  "%12.0f\n",
                  R.Backend.c_str(), R.Scenario.c_str(), R.Threads,
                  R.EmitMode, R.CompileNs / 1e3, R.ReserveNs / 1e3,
                  R.PlaceNs / 1e3, R.StitchNs / 1e3, R.StitchRelocs,
                  R.PlacedBytes);

  FILE *F = std::fopen("BENCH_compile_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_compile_throughput.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n  \"benchmark\": \"compile_throughput\",\n"
               "  \"module_functions\": %u,\n"
               "  \"parallel_module_functions\": %u,\n"
               "  \"large_module_functions\": %u,\n"
               "  \"uir_module_functions\": %u,\n"
               "  \"uir_large_module_functions\": %u,\n"
               "  \"iterations\": %u,\n"
               "  \"repeat\": %u,\n  \"hardware_concurrency\": %u,\n"
               "  \"fault_injection\": %s,\n"
               "  \"results\": [\n",
               NumFuncs, ParFuncs, LargeFuncs, UirFuncs, UirLargeFuncs, Iters,
               Repeat, HwThreads,
               support::faultInjectionEnabled() ? "true" : "false");
  for (size_t I = 0; I < Results.size(); ++I) {
    const Result &R = Results[I];
    std::fprintf(F,
                 "    {\"backend\": \"%s\", \"scenario\": \"%s\", "
                 "\"threads\": %u, \"clock\": \"%s\", "
                 "\"funcs_per_sec\": %.1f, \"funcs_per_sec_stddev\": %.1f, "
                 "\"funcs_per_sec_min\": %.1f, "
                 "\"new_calls_per_func\": %.3f, "
                 "\"new_bytes_per_func\": %.1f",
                 R.Backend.c_str(), R.Scenario.c_str(), R.Threads, R.Clock,
                 R.FuncsPerSec.Mean, R.FuncsPerSec.Stddev, R.FuncsPerSec.Min,
                 R.NewCallsPerFunc, R.NewBytesPerFunc);
    if (R.HasEmit)
      std::fprintf(F,
                   ", \"emit_mode\": \"%s\", \"compile_ns\": %.0f, "
                   "\"reserve_ns\": %.0f, \"place_ns\": %.0f, "
                   "\"stitch_ns\": %.0f, \"stitch_relocs\": %.0f, "
                   "\"placed_bytes\": %.0f",
                   R.EmitMode, R.CompileNs, R.ReserveNs, R.PlaceNs,
                   R.StitchNs, R.StitchRelocs, R.PlacedBytes);
    std::fprintf(F, "}%s\n", I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return 0;
}
