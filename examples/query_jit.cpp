//===- examples/query_jit.cpp - Database query JIT (Umbra scenario) -------===//
///
/// The §7 scenario: an aggregation query plan is compiled straight from
/// the database IR (UIR) with TPDE and with the specialized DirectEmit
/// back-end, then executed over a columnar table; results are checked
/// against the interpreted reference.
///
/// Second act, the Umbra-at-scale scenario: a module bundling hundreds of
/// generated query functions is compiled serially and through the sharded
/// parallel driver (compileModuleUirParallel) — the outputs are verified
/// byte-identical and a sample of queries is executed against the
/// interpreter.
///
/// Run:  ./build/example_query_jit
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "support/Timer.h"
#include "uir/ParallelCompiler.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <cstdio>

using namespace tpde;
using namespace tpde::uir;

int main() {
  // SELECT SUM(c0 * c3 + 5) FROM t WHERE c1 < 500 AND c2 != 250
  QueryPlan P;
  P.Name = "example_query";
  P.Preds = {{1, UOp::CmpLt, 500}, {2, UOp::CmpNe, 250}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = 5;

  Table T(6, 1'000'000, /*Seed=*/7);
  i64 Expected = evalPlan(P, T);

  bool AllCorrect = true;
  auto runOne = [&](const char *Name, auto Compile) {
    UModule U;
    compilePlan(U, P);
    Timer TC;
    asmx::Assembler Asm;
    TC.start();
    if (!Compile(U, Asm))
      std::exit(1);
    TC.stop();
    asmx::JITMapper JIT;
    if (!JIT.map(Asm))
      std::exit(1);
    auto *Q = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        JIT.address("example_query"));
    if (!Q)
      std::exit(1);
    Timer TR;
    TR.start();
    i64 Got = Q(T.ColPtrs.data(), static_cast<i64>(T.Rows));
    TR.stop();
    AllCorrect &= Got == Expected;
    std::printf("%-12s compile %7.3f ms, run %7.3f ms, sum=%lld (%s)\n",
                Name, TC.ms(), TR.ms(), (long long)Got,
                Got == Expected ? "correct" : "WRONG");
  };

  std::printf("query: SUM(c0*c3+5) WHERE c1<500 AND c2!=250 over %llu rows\n",
              (unsigned long long)T.Rows);
  runOne("TPDE", [](UModule &U, asmx::Assembler &A) {
    return compileTpdeUir(U, A);
  });
  runOne("DirectEmit", [](UModule &U, asmx::Assembler &A) {
    return compileDirectEmit(U, A);
  });
  std::printf("reference (interpreted) sum = %lld\n", (long long)Expected);

  // --- Many-query module: serial vs parallel sharded compile -------------
  workloads::QueryProfile QP;
  QP.Seed = 12;
  QP.NumQueries = 512;
  QP.NumCols = T.NumCols;
  auto Plans = workloads::genQueryPlans(QP);
  UModule U;
  for (const QueryPlan &Plan : Plans)
    compilePlan(U, Plan);

  asmx::Assembler SerialAsm;
  Timer TS;
  TS.start();
  if (!compileTpdeUir(U, SerialAsm))
    return 1;
  TS.stop();

  asmx::Assembler ParAsm;
  Timer TP;
  TP.start();
  if (!compileModuleUirParallel(U, ParAsm, /*NumThreads=*/0))
    return 1;
  TP.stop();

  bool Identical =
      SerialAsm.text().Data.size() == ParAsm.text().Data.size() &&
      std::equal(SerialAsm.text().Data.begin(), SerialAsm.text().Data.end(),
                 ParAsm.text().Data.begin());
  std::printf("\n%u-query module: serial %7.3f ms, parallel %7.3f ms, "
              ".text %s\n",
              QP.NumQueries, TS.ms(), TP.ms(),
              Identical ? "byte-identical" : "DIVERGED");

  asmx::JITMapper ParJIT;
  if (!ParJIT.map(ParAsm))
    return 1;
  unsigned Checked = 0, Wrong = 0;
  for (size_t I = 0; I < Plans.size(); I += 97) {
    auto *Q = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        ParJIT.address(Plans[I].Name));
    if (!Q) {
      std::fprintf(stderr, "missing symbol %s\n", Plans[I].Name.c_str());
      return 1;
    }
    i64 Got = Q(T.ColPtrs.data(), static_cast<i64>(T.Rows));
    ++Checked;
    if (Got != evalPlan(Plans[I], T))
      ++Wrong;
  }
  std::printf("sampled %u parallel-compiled queries against the "
              "interpreter: %s\n",
              Checked, Wrong ? "WRONG RESULTS" : "all correct");
  return AllCorrect && Identical && !Wrong ? 0 : 1;
}
