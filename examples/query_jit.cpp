//===- examples/query_jit.cpp - Database query JIT (Umbra scenario) -------===//
///
/// The §7 scenario: an aggregation query plan is compiled straight from
/// the database IR (UIR) with TPDE and with the specialized DirectEmit
/// back-end, then executed over a columnar table; results are checked
/// against the interpreted reference.
///
/// Run:  ./build/examples/query_jit
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "support/Timer.h"
#include "uir/TpdeUir.h"

#include <cstdio>

using namespace tpde;
using namespace tpde::uir;

int main() {
  // SELECT SUM(c0 * c3 + 5) FROM t WHERE c1 < 500 AND c2 != 250
  QueryPlan P;
  P.Name = "example_query";
  P.Preds = {{1, UOp::CmpLt, 500}, {2, UOp::CmpNe, 250}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = 5;

  Table T(6, 1'000'000, /*Seed=*/7);
  i64 Expected = evalPlan(P, T);

  auto runOne = [&](const char *Name, auto Compile) {
    UModule U;
    compilePlan(U, P);
    Timer TC;
    asmx::Assembler Asm;
    TC.start();
    if (!Compile(U, Asm))
      std::exit(1);
    TC.stop();
    asmx::JITMapper JIT;
    if (!JIT.map(Asm))
      std::exit(1);
    auto *Q = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        JIT.address("example_query"));
    Timer TR;
    TR.start();
    i64 Got = Q(T.ColPtrs.data(), static_cast<i64>(T.Rows));
    TR.stop();
    std::printf("%-12s compile %7.3f ms, run %7.3f ms, sum=%lld (%s)\n",
                Name, TC.ms(), TR.ms(), (long long)Got,
                Got == Expected ? "correct" : "WRONG");
  };

  std::printf("query: SUM(c0*c3+5) WHERE c1<500 AND c2!=250 over %llu rows\n",
              (unsigned long long)T.Rows);
  runOne("TPDE", [](UModule &U, asmx::Assembler &A) {
    return compileTpdeUir(U, A);
  });
  runOne("DirectEmit", [](UModule &U, asmx::Assembler &A) {
    return compileDirectEmit(U, A);
  });
  std::printf("reference (interpreted) sum = %lld\n", (long long)Expected);
  return 0;
}
