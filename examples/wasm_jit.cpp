//===- examples/wasm_jit.cpp - Wasm kernel through four back-ends ---------===//
///
/// The §6 scenario in miniature: one wasm kernel (gemm) compiled with all
/// four wasm back-ends — Winch-style direct, TPDE, and the two baseline
/// pipelines — printing compile time, code size, and the (identical)
/// checksums.
///
/// Run:  ./build/examples/wasm_jit
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "baseline/Baseline.h"
#include "support/Timer.h"
#include "tpde_tir/TirCompilerX64.h"
#include "wasm/Workloads.h"

#include <cstdio>

using namespace tpde;
using namespace tpde::wasm;

int main() {
  auto Modules = wasmBenchModules();
  const WModule &W = Modules[0].Module; // gemm
  std::printf("kernel: %s\n", Modules[0].Name);

  struct Row {
    const char *Name;
    double Ms;
    size_t Text;
    u64 Sum;
  };
  std::vector<Row> Rows;

  auto runOne = [&](const char *Name, auto Compile) {
    Timer T;
    asmx::Assembler Asm;
    T.start();
    if (!Compile(Asm)) {
      std::fprintf(stderr, "%s failed\n", Name);
      std::exit(1);
    }
    T.stop();
    asmx::JITMapper JIT;
    if (!JIT.map(Asm))
      std::exit(1);
    reinterpret_cast<void (*)()>(JIT.address("init"))();
    u64 Sum = reinterpret_cast<u64 (*)(u64, u64)>(JIT.address("kernel"))(0, 0);
    Rows.push_back(Row{Name, T.ms(), Asm.text().Data.size(), Sum});
  };

  runOne("winch (direct)", [&](asmx::Assembler &A) {
    return compileWinch(W, A);
  });
  runOne("TPDE (translated)", [&](asmx::Assembler &A) {
    tir::Module M;
    return translateToTir(W, M) && tpde_tir::compileModuleX64(M, A);
  });
  runOne("baseline -O0", [&](asmx::Assembler &A) {
    tir::Module M;
    return translateToTir(W, M) &&
           baseline::compileModule(M, A, baseline::OptLevel::O0);
  });
  runOne("baseline -O1", [&](asmx::Assembler &A) {
    tir::Module M;
    return translateToTir(W, M) &&
           baseline::compileModule(M, A, baseline::OptLevel::O1);
  });

  std::printf("%-20s %12s %10s %16s\n", "back-end", "compile[ms]", ".text[B]",
              "checksum");
  for (const Row &R : Rows)
    std::printf("%-20s %12.3f %10zu %16llu\n", R.Name, R.Ms, R.Text,
                (unsigned long long)R.Sum);
  return 0;
}
