//===- examples/expr_jit.cpp - A tiny expression-language JIT -------------===//
///
/// Domain-specific scenario: a calculator language `f(x, y) = <expr>` is
/// parsed, lowered to TIR, and JIT-compiled with TPDE — the "custom
/// front-end keeps its own representation, TPDE does the machine code"
/// usage the paper advocates for runtime systems.
///
/// Run:  ./build/examples/expr_jit "x*x + 3*y - 7" 5 2
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "tir/Builder.h"
#include "tpde_tir/TirCompilerX64.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace tpde;
using namespace tpde::tir;

namespace {

/// Recursive-descent parser for + - * / ( ) x y and integer literals.
class Parser {
public:
  Parser(const char *Src, FunctionBuilder &B) : P(Src), B(B) {}

  ValRef parse() { return expr(); }
  bool ok() const {
    const char *Q = P;
    while (*Q && std::isspace(static_cast<unsigned char>(*Q)))
      ++Q;
    return !Failed && *Q == 0;
  }

private:
  const char *P;
  FunctionBuilder &B;
  bool Failed = false;

  void skip() {
    while (*P && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }
  bool eat(char C) {
    skip();
    if (*P != C)
      return false;
    ++P;
    return true;
  }

  ValRef expr() {
    ValRef L = term();
    for (;;) {
      if (eat('+'))
        L = B.binop(Op::Add, L, term());
      else if (eat('-'))
        L = B.binop(Op::Sub, L, term());
      else
        return L;
    }
  }
  ValRef term() {
    ValRef L = factor();
    for (;;) {
      if (eat('*'))
        L = B.binop(Op::Mul, L, factor());
      else if (eat('/')) {
        // Guarded division: |divisor| or 1.
        ValRef R = factor();
        R = B.binop(Op::Or, R, B.constInt(Type::I64, 1));
        L = B.binop(Op::SDiv, L, R);
      } else
        return L;
    }
  }
  ValRef factor() {
    skip();
    if (eat('(')) {
      ValRef V = expr();
      if (!eat(')'))
        Failed = true;
      return V;
    }
    if (*P == 'x') {
      ++P;
      return B.arg(0);
    }
    if (*P == 'y') {
      ++P;
      return B.arg(1);
    }
    if (std::isdigit(static_cast<unsigned char>(*P))) {
      long V = std::strtol(P, const_cast<char **>(&P), 10);
      return B.constInt(Type::I64, V);
    }
    Failed = true;
    return B.constInt(Type::I64, 0);
  }
};

} // namespace

int main(int argc, char **argv) {
  const char *Src = argc > 1 ? argv[1] : "x*x + 3*y - 7";
  long X = argc > 2 ? std::atol(argv[2]) : 5;
  long Y = argc > 3 ? std::atol(argv[3]) : 2;

  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock("entry"));
  Parser Ps(Src, B);
  ValRef Result = Ps.parse();
  if (!Ps.ok()) {
    std::fprintf(stderr, "parse error in '%s'\n", Src);
    return 1;
  }
  B.ret(Result);
  B.finish();

  asmx::Assembler Asm;
  if (!tpde_tir::compileModuleX64(M, Asm))
    return 1;
  asmx::JITMapper JIT;
  if (!JIT.map(Asm))
    return 1;
  auto *F = reinterpret_cast<long (*)(long, long)>(JIT.address("f"));
  std::printf("f(x,y) = %s\nf(%ld, %ld) = %ld\n", Src, X, Y, F(X, Y));
  return 0;
}
