//===- examples/quickstart.cpp - Build IR, compile with TPDE, run ---------===//
///
/// Minimal end-to-end tour: construct a function in TIR (the repository's
/// SSA IR), compile it with the TPDE back-end, map it into memory, and
/// call it. This is the "fast baseline JIT" usage the paper targets.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "tir/Builder.h"
#include "tir/Printer.h"
#include "tpde_tir/ParallelCompiler.h"
#include "tpde_tir/TirCompilerX64.h"

#include <cstdio>

using namespace tpde;
using namespace tpde::tir;

int main() {
  // i64 fib(i64 n) — iterative Fibonacci with loop phis.
  Module M;
  FunctionBuilder B(M, "fib", Type::I64, {Type::I64});
  BlockRef Entry = B.addBlock("entry"), Loop = B.addBlock("loop"),
           Exit = B.addBlock("exit");
  B.setInsertPoint(Entry);
  B.br(Loop);
  B.setInsertPoint(Loop);
  ValRef I = B.phi(Type::I64);
  ValRef A = B.phi(Type::I64);
  ValRef Bv = B.phi(Type::I64);
  ValRef Next = B.binop(Op::Add, A, Bv);
  ValRef I2 = B.binop(Op::Add, I, B.constInt(Type::I64, 1));
  ValRef C = B.icmp(ICmp::Slt, I2, B.arg(0));
  B.condBr(C, Loop, Exit);
  B.setInsertPoint(Exit);
  B.ret(Next);
  B.addPhiIncoming(I, Entry, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, Loop, I2);
  B.addPhiIncoming(A, Entry, B.constInt(Type::I64, 0));
  B.addPhiIncoming(A, Loop, Bv);
  B.addPhiIncoming(Bv, Entry, B.constInt(Type::I64, 1));
  B.addPhiIncoming(Bv, Loop, Next);
  B.finish();

  std::printf("--- input IR ---\n%s\n", printFunction(M, M.Funcs[0]).c_str());

  // Compile with TPDE (analysis pass + single codegen pass) and map. The
  // parallel entry point shards the module's functions across one
  // compiler per hardware thread and merges the results; the output is
  // byte-identical whatever the thread count (for a single-function
  // module like this one it simply degenerates to a serial compile —
  // tpde_tir::compileModuleX64(M, Asm) is the single-threaded
  // equivalent).
  asmx::Assembler Asm;
  if (!tpde_tir::compileModuleX64Parallel(M, Asm)) {
    std::fprintf(stderr, "compilation failed\n");
    return 1;
  }
  asmx::JITMapper JIT;
  if (!JIT.map(Asm)) {
    std::fprintf(stderr, "mapping failed\n");
    return 1;
  }
  auto *Fib = reinterpret_cast<long (*)(long)>(JIT.address("fib"));
  std::printf("machine code: %zu bytes of .text\n", Asm.text().Data.size());
  for (long N : {1, 5, 10, 20, 50})
    std::printf("fib(%ld) = %ld\n", N, Fib(N));
  return 0;
}
